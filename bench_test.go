// Package bench regenerates every table and figure of the paper's
// evaluation (§6): BenchmarkTable1* times the compilation phases of each
// benchmark program (Table 1), and BenchmarkFig14* runs the weak-scaling
// experiments of Fig. 14a–e, reporting throughput-per-node and parallel
// efficiency as benchmark metrics.
//
// Run with:
//
//	go test -bench=. -benchmem
package bench

import (
	"testing"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// benchCompile times the full pipeline on one benchmark program and
// reports the per-phase breakdown (Table 1's rows) as metrics.
func benchCompile(b *testing.B, src string, wantLoops int) {
	b.Helper()
	var c *autopart.Compiled
	var err error
	for i := 0; i < b.N; i++ {
		c, err = autopart.Compile(src, autopart.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(c.Parallel) != wantLoops {
		b.Fatalf("parallel loops = %d, want %d", len(c.Parallel), wantLoops)
	}
	b.ReportMetric(float64(c.Timing.Inference.Microseconds()), "inference-µs")
	b.ReportMetric(float64(c.Timing.Solver.Microseconds()), "solver-µs")
	b.ReportMetric(float64(c.Timing.Rewrite.Microseconds()), "rewrite-µs")
	b.ReportMetric(float64(wantLoops), "loops")
}

func BenchmarkTable1SpMV(b *testing.B)     { benchCompile(b, spmv.Source, 1) }
func BenchmarkTable1Stencil(b *testing.B)  { benchCompile(b, stencil.Source(), 2) }
func BenchmarkTable1Circuit(b *testing.B)  { benchCompile(b, circuit.Source, 3) }
func BenchmarkTable1MiniAero(b *testing.B) { benchCompile(b, miniaero.Source(), 26) }
func BenchmarkTable1PENNANT(b *testing.B)  { benchCompile(b, pennant.Source(), 37) }

// reportFigure publishes each series' parallel efficiency.
func reportFigure(b *testing.B, fig sim.Figure) {
	b.Helper()
	for _, s := range fig.Series {
		b.ReportMetric(100*s.Efficiency(), s.Label+"-eff-%")
	}
	b.Logf("\n%s", fig.Render())
}

var benchNodes = []int{1, 2, 4, 8, 16, 32, 64}

func BenchmarkFig14aSpMV(b *testing.B) {
	cfg := spmv.DefaultConfig()
	model := sim.ModelFor(float64(cfg.RowsPerNode*cfg.NnzPerRow), spmv.RealIterSeconds)
	var fig sim.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = spmv.Figure14a(cfg, model, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig14bStencil(b *testing.B) {
	cfg := stencil.DefaultConfig()
	model := sim.ModelFor(float64(cfg.PointsPerNode())*9, stencil.RealIterSeconds)
	var fig sim.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = stencil.Figure14b(cfg, model, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig14cMiniAero(b *testing.B) {
	cfg := miniaero.DefaultConfig()
	model := sim.ModelFor(float64(cfg.CellsPerNode())*30, miniaero.RealIterSeconds)
	var fig sim.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = miniaero.Figure14c(cfg, model, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig14dCircuit(b *testing.B) {
	cfg := circuit.DefaultConfig()
	model := sim.ModelFor(float64(cfg.WiresPerCluster)*10, circuit.RealIterSeconds)
	var fig sim.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = circuit.Figure14d(cfg, model, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

func BenchmarkFig14ePENNANT(b *testing.B) {
	cfg := pennant.Config{W: 32, ZonesPerPiece: 1600, Jitter: 64}
	model := sim.ModelFor(float64(cfg.ZonesPerPiece)*4*20, pennant.RealIterSeconds)
	var fig sim.Figure
	var err error
	for i := 0; i < b.N; i++ {
		fig, err = pennant.Figure14e(cfg, model, benchNodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	reportFigure(b, fig)
}

// Ablation benches: the §5 optimizations on/off (design-choice ablations
// called out in DESIGN.md).

func BenchmarkAblationRelaxationOff(b *testing.B) {
	// MiniAero without §5.1: reduction buffers reappear.
	cfg := miniaero.Config{DX: 8, DY: 8, DZ: 16}
	model := sim.ModelFor(float64(cfg.CellsPerNode())*30, miniaero.RealIterSeconds)
	for _, opts := range []struct {
		name string
		o    autopart.Options
	}{
		{"relaxed", autopart.Options{}},
		{"buffered", autopart.Options{DisableRelaxation: true}},
	} {
		c, err := autopart.Compile(miniaero.Source(), opts.o)
		if err != nil {
			b.Fatal(err)
		}
		var p sim.Point
		for i := 0; i < b.N; i++ {
			p, err = miniaero.AutoPoint(cfg, model, c, 8)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(p.Throughput, opts.name+"-cells/s")
	}
}

func BenchmarkAblationPrivateSubPartitionsOff(b *testing.B) {
	// Circuit without §5.2: reduction buffers cover whole subregions.
	cfg := circuit.Config{WiresPerCluster: 1000, NodesPerCluster: 500, SharedFraction: 0.02, CrossFraction: 0.2}
	model := sim.ModelFor(float64(cfg.WiresPerCluster)*10, circuit.RealIterSeconds)
	for _, opts := range []struct {
		name string
		o    autopart.Options
	}{
		{"private", autopart.Options{}},
		{"full-buffers", autopart.Options{DisablePrivateSubPartitions: true}},
	} {
		c, err := autopart.Compile(circuit.HintSource, opts.o)
		if err != nil {
			b.Fatal(err)
		}
		var p sim.Point
		for i := 0; i < b.N; i++ {
			p, err = circuit.AutoPoint(cfg, model, c, 16, true)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(p.Throughput, opts.name+"-wires/s")
	}
}
