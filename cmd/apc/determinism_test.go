package main

import (
	"testing"

	"autopart/pkg/autopart"
)

// builtinSources mirrors loadSource's builtin table for the benchmark
// programs under golden test.
func builtinSources(t *testing.T) map[string]string {
	t.Helper()
	out := map[string]string{}
	for _, b := range []string{"spmv", "stencil", "circuit", "miniaero", "pennant"} {
		src, _, err := loadSource(b, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		out[b] = src
	}
	return out
}

// TestParallelSequentialDeterminism proves the parallel unification path
// is deterministic: compiling with the process-wide sequential switch on
// and off yields identical canonicalization maps and byte-identical
// -constraints/-launches output for every builtin benchmark. The
// parallel candidate checks pick their winner by candidate order, not
// completion order, so the two modes must never diverge.
func TestParallelSequentialDeterminism(t *testing.T) {
	for name, src := range builtinSources(t) {
		t.Run(name, func(t *testing.T) {
			autopart.SequentialEvaluation(true)
			seq, err := autopart.Compile(src, autopart.Options{})
			autopart.SequentialEvaluation(false)
			if err != nil {
				t.Fatalf("sequential compile: %v", err)
			}
			par, err := autopart.Compile(src, autopart.Options{})
			if err != nil {
				t.Fatalf("parallel compile: %v", err)
			}

			if len(seq.Solution.Canon) != len(par.Solution.Canon) {
				t.Fatalf("Canon size differs: sequential %d vs parallel %d",
					len(seq.Solution.Canon), len(par.Solution.Canon))
			}
			for sym, want := range seq.Solution.Canon {
				if got, ok := par.Solution.Canon[sym]; !ok || got != want {
					t.Errorf("Canon[%q]: sequential %q, parallel %q (present=%v)", sym, want, got, ok)
				}
			}
			if s, p := seq.Solution.Program.String(), par.Solution.Program.String(); s != p {
				t.Errorf("DPL program differs:\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
			}

			// Full driver output (constraints + launches), timing stripped.
			autopart.SequentialEvaluation(true)
			seqOut, seqErr, code := runAPC(t, "", "-builtin", name, "-constraints", "-launches")
			autopart.SequentialEvaluation(false)
			if code != 0 {
				t.Fatalf("sequential apc exit %d:\n%s", code, seqErr)
			}
			parOut, parErr, code := runAPC(t, "", "-builtin", name, "-constraints", "-launches")
			if code != 0 {
				t.Fatalf("parallel apc exit %d:\n%s", code, parErr)
			}
			if s, p := stripTiming(seqOut), stripTiming(parOut); s != p {
				t.Errorf("-constraints/-launches output differs between modes\n--- sequential ---\n%s\n--- parallel ---\n%s", s, p)
			}
		})
	}
}
