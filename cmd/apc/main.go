// Command apc is the auto-partitioning compiler driver: it reads a loop
// DSL program, runs the staged pass pipeline — constraint inference
// (§2), the solver (§3), the §5 optimizations — and prints the inferred
// constraints, the synthesized DPL program, and the parallel launch
// structure.
//
// Usage:
//
//	apc [-constraints] [-launches] [-trace] file.dsl
//	apc -builtin spmv|stencil|circuit|miniaero|pennant
//	apc -incremental base.dsl edited.dsl
//	apc -explain P001
//	apc -seed 42 [-tier tiny|small]
//	cat file.dsl | apc
//
// -seed reproduces one differential-fuzzing scenario (internal/gen): it
// prints the scenario's self-contained reproducer and runs both oracles
// on it, exiting 1 if either finds a divergence.
//
// -incremental compiles the baseline file first, then recompiles the
// input against it through the incremental frontend: unedited loops
// reuse the baseline's parse/check/normalize/infer artifacts, and a
// reuse summary line reports the clean/dirty split. Output is
// byte-identical to a plain compile of the input.
//
// Compile errors are reported as structured diagnostics with a source
// position and a stable code, e.g.
//
//	apc: prog.dsl:3:7: error[C014]: unknown region "Cels"
//
// and -explain documents any code. With -trace (or AUTOPART_TRACE=1 in
// the environment) the compiler emits one JSON line per pass to stderr
// with wall time and artifact metrics.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/diag"
	"autopart/internal/gen"
	"autopart/internal/pipeline"
	"autopart/internal/runtime"
	"autopart/pkg/autopart"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

// run is the driver body, factored out of main so tests can exercise
// the full command in-process with captured streams.
func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("apc", flag.ContinueOnError)
	fs.SetOutput(stderr)
	showConstraints := fs.Bool("constraints", false, "print the inferred partitioning constraints per loop")
	showLaunches := fs.Bool("launches", false, "print the parallel launch structure (region requirements)")
	builtin := fs.String("builtin", "", "compile a builtin benchmark program (spmv, stencil, circuit, miniaero, pennant)")
	noRelax := fs.Bool("no-relax", false, "disable the §5.1 disjointness relaxation")
	noPrivate := fs.Bool("no-private", false, "disable §5.2 private sub-partitions")
	incrBase := fs.String("incremental", "", "baseline program file: compile it first, then recompile the input incrementally against it, reporting per-loop reuse")
	trace := fs.Bool("trace", false, "emit one JSON line per compiler pass to stderr (wall time, artifact metrics)")
	explain := fs.String("explain", "", "explain a diagnostic code (e.g. P001) and exit; 'all' lists every code")
	fuzzSeed := fs.Int64("seed", -1, "generate the fuzz scenario for this seed, print its reproducer, and run the differential oracles on it")
	fuzzTier := fs.String("tier", "small", "generator tier for -seed (tiny, small)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *explain != "" {
		return runExplain(*explain, stdout, stderr)
	}
	if *fuzzSeed >= 0 {
		return runSeed(*fuzzSeed, *fuzzTier, stdout, stderr)
	}

	src, file, err := loadSource(*builtin, fs.Args(), stdin)
	if err != nil {
		fmt.Fprintln(stderr, "apc:", err)
		return 1
	}

	opts := autopart.Options{
		DisableRelaxation:           *noRelax,
		DisablePrivateSubPartitions: *noPrivate,
	}
	if *trace {
		opts.Trace = stderr
	}
	var c *autopart.Compiled
	if *incrBase != "" {
		// Incremental mode: seed a keyed session with the baseline, then
		// recompile the input against it. Output is byte-identical to a
		// cold compile; only the work performed (and the reuse line
		// below) differs.
		base, err := os.ReadFile(*incrBase)
		if err != nil {
			fmt.Fprintln(stderr, "apc:", err)
			return 1
		}
		sv := autopart.NewService(autopart.ServiceOptions{Base: opts})
		if _, err := sv.CompileIncremental("apc", string(base)); err != nil {
			fmt.Fprintf(stderr, "apc: baseline %s: %v\n", *incrBase, err)
			return 1
		}
		seeded := sv.Stats()
		c, err = sv.CompileIncremental("apc", src)
		if err != nil {
			fmt.Fprintln(stderr, "apc:", err)
			return 1
		}
		st := sv.Stats()
		if st.IncrementalCold > seeded.IncrementalCold {
			fmt.Fprintf(stdout, "incremental vs %s: cold fallback (program not diffable against baseline)\n", *incrBase)
		} else {
			fmt.Fprintf(stdout, "incremental vs %s: %d clean / %d dirty loops\n", *incrBase,
				st.IncrementalCleanLoops-seeded.IncrementalCleanLoops,
				st.IncrementalDirtyLoops-seeded.IncrementalDirtyLoops)
		}
	} else {
		var session *pipeline.Session
		c, session, err = autopart.CompileSession(src, opts)
		if err != nil {
			if session != nil && len(session.Diags) > 0 {
				for _, d := range session.Diags {
					fmt.Fprintf(stderr, "apc: %s\n", d.Format(file))
				}
			} else {
				fmt.Fprintln(stderr, "apc:", err)
			}
			return 1
		}
	}

	if *showConstraints {
		for i, plan := range c.Plans {
			relaxed := ""
			if plan.Relaxed {
				relaxed = " (relaxed per §5.1)"
			}
			fmt.Fprintf(stdout, "loop %d: for %s in %s%s\n", i, c.Loops[i].Var, c.Loops[i].Region, relaxed)
			fmt.Fprintf(stdout, "  %s\n", plan.Sys)
		}
		fmt.Fprintln(stdout)
	}

	fmt.Fprintln(stdout, "synthesized DPL program:")
	fmt.Fprintln(stdout, indent(c.Solution.Program.String()))
	if c.Private != nil && len(c.Private.Extra.Stmts) > 0 {
		fmt.Fprintln(stdout, "private sub-partitions (§5.2, Theorem 5.1):")
		fmt.Fprintln(stdout, indent(c.Private.Extra.String()))
	}

	if *showLaunches {
		fmt.Fprintln(stdout, "parallel launches:")
		for i, pl := range c.Parallel {
			l := runtime.FromParallelLoop(fmt.Sprintf("loop%d", i), pl)
			fmt.Fprintf(stdout, "  %s\n", l)
		}
	}

	fmt.Fprintf(stdout, "\ncompile time: parse %v, inference %v, solver %v, rewrite %v (total %v)\n",
		c.Timing.Parse, c.Timing.Inference, c.Timing.Solver, c.Timing.Rewrite, c.Timing.Total())
	return 0
}

// runSeed implements -seed: reproduce one fuzz scenario end to end. The
// reproducer is printed first so a failing seed can be saved to a .dsl
// file directly, then both differential oracles report their verdicts.
// Exit status 1 means an oracle found a divergence.
func runSeed(seed int64, tierName string, stdout, stderr io.Writer) int {
	var tier gen.Tier
	switch tierName {
	case "tiny":
		tier = gen.Tiny
	case "small":
		tier = gen.Small
	default:
		fmt.Fprintf(stderr, "apc: unknown tier %q (want tiny or small)\n", tierName)
		return 2
	}
	sc := gen.Generate(seed, tier)
	fmt.Fprint(stdout, sc.Repro())
	fmt.Fprintln(stdout)

	execRep := gen.RunExecOracle(sc)
	fmt.Fprintf(stdout, "exec oracle:   %s\n", execRep)
	solverRep := gen.RunSolverOracle(sc)
	fmt.Fprintf(stdout, "solver oracle: %s\n", solverRep)
	if execRep.Failed() || solverRep.Failed() {
		return 1
	}
	return 0
}

// runExplain implements -explain: document one diagnostic code, or all
// of them.
func runExplain(code string, stdout, stderr io.Writer) int {
	if code == "all" {
		for _, info := range diag.Codes() {
			fmt.Fprintf(stdout, "%s: %s\n", info.Code, info.Summary)
		}
		return 0
	}
	info, ok := diag.Explain(code)
	if !ok {
		fmt.Fprintf(stderr, "apc: unknown diagnostic code %q (use -explain all to list)\n", code)
		return 1
	}
	fmt.Fprintf(stdout, "%s: %s\n\n%s\n", info.Code, info.Summary, info.Detail)
	return 0
}

// loadSource resolves the program text plus the display name used in
// diagnostics ("builtin:spmv", the file path, or "<stdin>").
func loadSource(builtin string, args []string, stdin io.Reader) (src, file string, err error) {
	switch builtin {
	case "spmv":
		return spmv.Source, "builtin:spmv", nil
	case "stencil":
		return stencil.Source(), "builtin:stencil", nil
	case "circuit":
		return circuit.Source, "builtin:circuit", nil
	case "circuit-hint":
		return circuit.HintSource, "builtin:circuit-hint", nil
	case "miniaero":
		return miniaero.Source(), "builtin:miniaero", nil
	case "pennant":
		return pennant.Source(), "builtin:pennant", nil
	case "":
	default:
		return "", "", fmt.Errorf("unknown builtin %q", builtin)
	}
	if len(args) > 0 {
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", "", err
		}
		return string(data), args[0], nil
	}
	data, err := io.ReadAll(stdin)
	if err != nil {
		return "", "", err
	}
	return string(data), "<stdin>", nil
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}
