// Command apc is the auto-partitioning compiler driver: it reads a loop
// DSL program, runs constraint inference (§2) and the solver (§3) with
// the §5 optimizations, and prints the inferred constraints, the
// synthesized DPL program, and the parallel launch structure.
//
// Usage:
//
//	apc [-constraints] [-launches] file.dsl
//	apc -builtin spmv|stencil|circuit|miniaero|pennant
//	cat file.dsl | apc
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/runtime"
	"autopart/pkg/autopart"
)

func main() {
	showConstraints := flag.Bool("constraints", false, "print the inferred partitioning constraints per loop")
	showLaunches := flag.Bool("launches", false, "print the parallel launch structure (region requirements)")
	builtin := flag.String("builtin", "", "compile a builtin benchmark program (spmv, stencil, circuit, miniaero, pennant)")
	noRelax := flag.Bool("no-relax", false, "disable the §5.1 disjointness relaxation")
	noPrivate := flag.Bool("no-private", false, "disable §5.2 private sub-partitions")
	flag.Parse()

	src, err := loadSource(*builtin, flag.Args())
	if err != nil {
		fmt.Fprintln(os.Stderr, "apc:", err)
		os.Exit(1)
	}

	c, err := autopart.Compile(src, autopart.Options{
		DisableRelaxation:           *noRelax,
		DisablePrivateSubPartitions: *noPrivate,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "apc:", err)
		os.Exit(1)
	}

	if *showConstraints {
		for i, plan := range c.Plans {
			relaxed := ""
			if plan.Relaxed {
				relaxed = " (relaxed per §5.1)"
			}
			fmt.Printf("loop %d: for %s in %s%s\n", i, c.Loops[i].Var, c.Loops[i].Region, relaxed)
			fmt.Printf("  %s\n", plan.Sys)
		}
		fmt.Println()
	}

	fmt.Println("synthesized DPL program:")
	fmt.Println(indent(c.Solution.Program.String()))
	if c.Private != nil && len(c.Private.Extra.Stmts) > 0 {
		fmt.Println("private sub-partitions (§5.2, Theorem 5.1):")
		fmt.Println(indent(c.Private.Extra.String()))
	}

	if *showLaunches {
		fmt.Println("parallel launches:")
		for i, pl := range c.Parallel {
			l := runtime.FromParallelLoop(fmt.Sprintf("loop%d", i), pl)
			fmt.Printf("  %s\n", l)
		}
	}

	fmt.Printf("\ncompile time: parse %v, inference %v, solver %v, rewrite %v (total %v)\n",
		c.Timing.Parse, c.Timing.Inference, c.Timing.Solver, c.Timing.Rewrite, c.Timing.Total())
}

func loadSource(builtin string, args []string) (string, error) {
	switch builtin {
	case "spmv":
		return spmv.Source, nil
	case "stencil":
		return stencil.Source(), nil
	case "circuit":
		return circuit.Source, nil
	case "circuit-hint":
		return circuit.HintSource, nil
	case "miniaero":
		return miniaero.Source(), nil
	case "pennant":
		return pennant.Source(), nil
	case "":
	default:
		return "", fmt.Errorf("unknown builtin %q", builtin)
	}
	if len(args) > 0 {
		data, err := os.ReadFile(args[0])
		if err != nil {
			return "", err
		}
		return string(data), nil
	}
	data, err := io.ReadAll(os.Stdin)
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func indent(s string) string {
	out := "  "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "  "
		}
	}
	return out
}
