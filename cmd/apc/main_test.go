package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// runAPC drives the full command in-process with captured streams.
func runAPC(t *testing.T, stdin string, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, strings.NewReader(stdin), &out, &errb)
	return out.String(), errb.String(), code
}

// stripTiming drops the wall-clock line, the only nondeterministic part
// of apc's output. The goldens were captured with the same rule.
func stripTiming(s string) string {
	lines := strings.Split(s, "\n")
	out := lines[:0]
	for _, l := range lines {
		if strings.HasPrefix(l, "compile time:") {
			continue
		}
		out = append(out, l)
	}
	return strings.Join(out, "\n")
}

// TestGoldenBuiltins proves that -constraints -launches output for every
// builtin benchmark is byte-identical to the goldens captured before the
// pass-pipeline refactor.
func TestGoldenBuiltins(t *testing.T) {
	for _, b := range []string{"spmv", "stencil", "circuit", "miniaero", "pennant"} {
		t.Run(b, func(t *testing.T) {
			want, err := os.ReadFile(filepath.Join("testdata", b+".golden"))
			if err != nil {
				t.Fatal(err)
			}
			stdout, stderr, code := runAPC(t, "", "-builtin", b, "-constraints", "-launches")
			if code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr)
			}
			if got := stripTiming(stdout); got != string(want) {
				t.Errorf("output differs from golden\n--- got ---\n%s\n--- want ---\n%s", got, want)
			}
		})
	}
}

// TestMalformedInputDiagnostics asserts that compile errors carry a
// file:line:col position and a stable diagnostic code on stderr.
func TestMalformedInputDiagnostics(t *testing.T) {
	cases := []struct {
		name    string
		src     string
		wantPos string
		want    []string
	}{
		{
			name:    "parse error",
			src:     "region R { x: scalar }\nfor i in R {\n  R[i].x = $\n}\n",
			wantPos: "<stdin>:3:12",
			want:    []string{"error[L004]", "unexpected character"},
		},
		{
			name:    "semantic error",
			src:     "region R { x: scalar }\nfor i in Q {\n  R[i].x = 1\n}\n",
			wantPos: "<stdin>:2:1",
			want:    []string{"error[C011]", "unknown region"},
		},
		{
			name:    "inference error",
			src:     "region R { p: index(R), x: scalar }\nfor i in R {\n  j = R[i].p\n  R[j].x = R[j].x\n}\n",
			wantPos: "<stdin>:",
			want:    []string{"error[I", "uncentered"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runAPC(t, tc.src)
			if code == 0 {
				t.Fatalf("expected failure, got success:\n%s", stdout)
			}
			for _, w := range append(tc.want, tc.wantPos) {
				if !strings.Contains(stderr, w) {
					t.Errorf("stderr missing %q:\n%s", w, stderr)
				}
			}
		})
	}
}

// TestFileDiagnosticUsesPath asserts diagnostics name the input file.
func TestFileDiagnosticUsesPath(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.dsl")
	if err := os.WriteFile(path, []byte("region R { x: scalar }\nfor i in Q { R[i].x = 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, stderr, code := runAPC(t, "", path)
	if code == 0 {
		t.Fatal("expected failure")
	}
	if want := path + ":2:1: error[C011]"; !strings.Contains(stderr, want) {
		t.Errorf("stderr missing %q:\n%s", want, stderr)
	}
}

// TestTraceEmitsOneJSONLinePerPass asserts -trace produces one parseable
// JSON line per pipeline pass, in order, with wall time and metrics.
func TestTraceEmitsOneJSONLinePerPass(t *testing.T) {
	wantPasses := []string{"parse", "check", "normalize", "infer", "relax", "solve", "private", "rewrite"}
	for _, b := range []string{"spmv", "stencil", "circuit", "miniaero", "pennant"} {
		t.Run(b, func(t *testing.T) {
			_, stderr, code := runAPC(t, "", "-builtin", b, "-trace")
			if code != 0 {
				t.Fatalf("exit %d, stderr:\n%s", code, stderr)
			}
			lines := strings.Split(strings.TrimSpace(stderr), "\n")
			if len(lines) != len(wantPasses) {
				t.Fatalf("got %d trace lines, want %d:\n%s", len(lines), len(wantPasses), stderr)
			}
			for i, line := range lines {
				var rec struct {
					Pass    string         `json:"pass"`
					Index   int            `json:"index"`
					WallUS  *int64         `json:"wall_us"`
					Metrics map[string]int `json:"metrics"`
				}
				if err := json.Unmarshal([]byte(line), &rec); err != nil {
					t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
				}
				if rec.Pass != wantPasses[i] || rec.Index != i {
					t.Errorf("line %d: got pass %q index %d, want %q index %d", i, rec.Pass, rec.Index, wantPasses[i], i)
				}
				if rec.WallUS == nil {
					t.Errorf("line %d: missing wall_us", i)
				}
				if rec.Metrics == nil {
					t.Errorf("line %d: missing metrics", i)
				}
			}
			// The final line reflects the completed compilation.
			var last struct {
				Metrics map[string]int `json:"metrics"`
			}
			if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
				t.Fatal(err)
			}
			if last.Metrics["launches"] == 0 {
				t.Errorf("final trace line reports no launches: %s", lines[len(lines)-1])
			}
		})
	}
}

// TestExplain covers the -explain code documentation path.
func TestExplain(t *testing.T) {
	stdout, _, code := runAPC(t, "", "-explain", "S001")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(stdout, "S001") || !strings.Contains(stdout, "no solution") {
		t.Errorf("unexpected -explain output:\n%s", stdout)
	}

	stdout, _, code = runAPC(t, "", "-explain", "all")
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	for _, want := range []string{"L001", "P001", "C001", "N001", "I001", "S001"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("-explain all missing %s", want)
		}
	}

	_, stderr, code := runAPC(t, "", "-explain", "Z999")
	if code == 0 {
		t.Fatal("expected failure for unknown code")
	}
	if !strings.Contains(stderr, "unknown diagnostic code") {
		t.Errorf("unexpected stderr:\n%s", stderr)
	}
}

// TestUnknownBuiltin keeps the pre-refactor CLI error behavior.
func TestUnknownBuiltin(t *testing.T) {
	_, stderr, code := runAPC(t, "", "-builtin", "nope")
	if code == 0 {
		t.Fatal("expected failure")
	}
	if !strings.Contains(stderr, `unknown builtin "nope"`) {
		t.Errorf("unexpected stderr:\n%s", stderr)
	}
}
