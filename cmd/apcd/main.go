// Command apcd is the auto-partitioning compile daemon: the pkg/autopart
// Service exposed over HTTP. Clients POST programs to compile —
// concurrent requests share one solver memo cache and one pooled,
// epoch-managed intern table, so a warm daemon answers most solver
// verdict lookups from cache — and then query the retained results
// through the structured view facade (program, constraints, launches,
// diagnostics, metrics) with field projection, filtering, and
// pagination.
//
// Usage:
//
//	apcd [-addr :8177] [-max-concurrent N] [-memo-cap N] [-intern-max N]
//	     [-results N] [-trace]
//
// API:
//
//	POST /v1/compile            {"source": "..."} or {"builtin": "spmv"};
//	                            add {"key": "myprog"} to recompile
//	                            incrementally against the previous
//	                            compile of the same key
//	GET  /v1/results            list retained results
//	GET  /v1/results/{id}       one result's summary
//	GET  /v1/results/{id}/{view}?fields=a,b&filter=kind=DISJ&limit=10&offset=0
//	GET  /v1/stats              service + cache + intern-table counters
//	GET  /v1/healthz
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"autopart/internal/apps/builtins"
	"autopart/pkg/autopart"
)

func main() {
	addr := flag.String("addr", ":8177", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "max concurrent compiles (0 = GOMAXPROCS)")
	memoCap := flag.Int("memo-cap", 0, "shared solver memo cache capacity in entries (0 = default)")
	internMax := flag.Int("intern-max", 0, "intern table entry budget (0 = unbounded)")
	maxResults := flag.Int("results", 128, "retained compile results before the oldest is dropped")
	trace := flag.Bool("trace", false, "emit one JSON line per compiler pass to stderr")
	flag.Parse()

	opts := autopart.ServiceOptions{
		MaxConcurrent:    *maxConcurrent,
		MemoCacheCap:     *memoCap,
		InternMaxEntries: *internMax,
	}
	if *trace {
		opts.Base.Trace = os.Stderr
	}
	srv := newServer(autopart.NewService(opts), *maxResults)

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(shutdownCtx)
	}()

	log.Printf("apcd listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
}

// server is the HTTP facade over one compile service plus a bounded
// store of retained results.
type server struct {
	sv  *autopart.Service
	mux *http.ServeMux

	mu         sync.Mutex
	results    map[string]*storedResult
	order      []string // insertion order, for eviction and listing
	nextID     int
	maxResults int

	viewHits   atomic.Uint64
	viewMisses atomic.Uint64
}

// storedResult is one retained compile: the query facade's input plus
// summary fields and a cache of rendered query views. The cache lives
// on the result, so evicting the result invalidates every cached view
// with it; compiled artifacts are immutable, so a cached rendering
// never goes stale while the result is retained.
type storedResult struct {
	ID      string
	Key     string // incremental recompile key, "" for one-shot compiles
	View    autopart.ResultView
	Elapsed time.Duration

	viewMu    sync.Mutex
	viewCache map[string]*autopart.QueryResult
}

// maxCachedViews bounds the per-result view cache; an unlikely flood of
// distinct queries resets the cache rather than growing it.
const maxCachedViews = 64

// cachedQuery runs a query against the result, serving an identical
// earlier query's rendering from cache. Returns whether it was a hit.
func (res *storedResult) cachedQuery(q autopart.Query) (*autopart.QueryResult, bool, error) {
	key := viewCacheKey(q)
	res.viewMu.Lock()
	if out, ok := res.viewCache[key]; ok {
		res.viewMu.Unlock()
		return out, true, nil
	}
	res.viewMu.Unlock()
	out, err := autopart.RunQuery(res.View, q)
	if err != nil {
		return nil, false, err
	}
	res.viewMu.Lock()
	if len(res.viewCache) >= maxCachedViews {
		res.viewCache = nil
	}
	if res.viewCache == nil {
		res.viewCache = map[string]*autopart.QueryResult{}
	}
	res.viewCache[key] = out
	res.viewMu.Unlock()
	return out, false, nil
}

// viewCacheKey canonicalizes a query's parameters: filters are order-
// insensitive (sorted here), everything else is significant.
func viewCacheKey(q autopart.Query) string {
	var b strings.Builder
	b.WriteString(q.View)
	b.WriteByte(0)
	b.WriteString(strings.Join(q.Fields, ","))
	b.WriteByte(0)
	filters := make([]string, 0, len(q.Filter))
	for k, v := range q.Filter {
		filters = append(filters, k+"="+v)
	}
	sort.Strings(filters)
	b.WriteString(strings.Join(filters, "&"))
	fmt.Fprintf(&b, "\x00%d\x00%d", q.Limit, q.Offset)
	return b.String()
}

func newServer(sv *autopart.Service, maxResults int) *server {
	if maxResults <= 0 {
		maxResults = 128
	}
	s := &server{
		sv:         sv,
		mux:        http.NewServeMux(),
		results:    map[string]*storedResult{},
		maxResults: maxResults,
	}
	s.mux.HandleFunc("POST /v1/compile", s.handleCompile)
	s.mux.HandleFunc("GET /v1/results", s.handleList)
	s.mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	s.mux.HandleFunc("GET /v1/results/{id}/{view}", s.handleQuery)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return s
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// compileRequest is the POST /v1/compile body. Exactly one of Source
// and Builtin must be set.
type compileRequest struct {
	Source  string `json:"source,omitempty"`
	Builtin string `json:"builtin,omitempty"`
	// Key, when set, routes the compile to the incremental session that
	// last built this key: unedited loops reuse the previous compile's
	// parse/check/normalize/infer artifacts wholesale. Results are
	// byte-identical to a keyless compile; only the latency differs.
	Key     string `json:"key,omitempty"`
	Options struct {
		DisableRelaxation           bool `json:"disable_relaxation,omitempty"`
		DisablePrivateSubPartitions bool `json:"disable_private_sub_partitions,omitempty"`
	} `json:"options"`
}

// compileResponse summarizes a stored result.
type compileResponse struct {
	ID          string   `json:"id"`
	Key         string   `json:"key,omitempty"`
	File        string   `json:"file"`
	Views       []string `json:"views"`
	Launches    int      `json:"launches"`
	Partitions  int      `json:"partitions"`
	Diagnostics int      `json:"diagnostics"`
	ElapsedUS   int64    `json:"elapsed_us"`
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 4<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading body: %v", err))
		return
	}
	var req compileRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("parsing body: %v", err))
		return
	}
	src, file := req.Source, "<input>"
	switch {
	case req.Source != "" && req.Builtin != "":
		writeError(w, http.StatusBadRequest, "set exactly one of source and builtin")
		return
	case req.Builtin != "":
		var ok bool
		if src, file, ok = builtins.Source(req.Builtin); !ok {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown builtin %q (have %s)",
				req.Builtin, strings.Join(builtins.Names(), ", ")))
			return
		}
	case req.Source == "":
		writeError(w, http.StatusBadRequest, "set one of source and builtin")
		return
	}

	log := &autopart.PassLog{}
	opts := autopart.Options{
		DisableRelaxation:           req.Options.DisableRelaxation,
		DisablePrivateSubPartitions: req.Options.DisablePrivateSubPartitions,
		Observers:                   []autopart.Observer{log},
	}
	start := time.Now()
	var c *autopart.Compiled
	if req.Key != "" {
		c, err = s.sv.CompileIncrementalWith(req.Key, src, opts)
	} else {
		c, err = s.sv.CompileWith(src, opts)
	}
	elapsed := time.Since(start)
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error": err.Error(),
			"file":  file,
		})
		return
	}

	res := &storedResult{
		Key:     req.Key,
		View:    autopart.ResultView{Compiled: c, File: file, Passes: log.Events},
		Elapsed: elapsed,
	}
	s.mu.Lock()
	s.nextID++
	res.ID = fmt.Sprintf("r%d", s.nextID)
	s.results[res.ID] = res
	s.order = append(s.order, res.ID)
	for len(s.order) > s.maxResults {
		delete(s.results, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()

	writeJSON(w, http.StatusOK, summarize(res))
}

func summarize(res *storedResult) compileResponse {
	c := res.View.Compiled
	return compileResponse{
		ID:          res.ID,
		Key:         res.Key,
		File:        res.View.File,
		Views:       autopart.Views(),
		Launches:    len(c.Parallel),
		Partitions:  len(c.DPLProgram().Stmts),
		Diagnostics: len(c.Diagnostics),
		ElapsedUS:   res.Elapsed.Microseconds(),
	}
}

func (s *server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	out := make([]compileResponse, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, summarize(s.results[id]))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"results": out})
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) (*storedResult, bool) {
	id := r.PathValue("id")
	s.mu.Lock()
	res, ok := s.results[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("no result %q", id))
	}
	return res, ok
}

func (s *server) handleResult(w http.ResponseWriter, r *http.Request) {
	if res, ok := s.lookup(w, r); ok {
		writeJSON(w, http.StatusOK, summarize(res))
	}
}

// handleQuery serves GET /v1/results/{id}/{view}. Query parameters:
// fields (comma-separated projection), filter (repeatable "field=value"
// exact matches), limit, offset.
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	res, ok := s.lookup(w, r)
	if !ok {
		return
	}
	q := autopart.Query{View: r.PathValue("view")}
	params := r.URL.Query()
	if f := params.Get("fields"); f != "" {
		q.Fields = strings.Split(f, ",")
	}
	for _, kv := range params["filter"] {
		k, v, found := strings.Cut(kv, "=")
		if !found {
			writeError(w, http.StatusBadRequest, fmt.Sprintf("filter %q is not field=value", kv))
			return
		}
		if q.Filter == nil {
			q.Filter = map[string]string{}
		}
		q.Filter[k] = v
	}
	var err error
	if q.Limit, err = intParam(params.Get("limit")); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("limit: %v", err))
		return
	}
	if q.Offset, err = intParam(params.Get("offset")); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("offset: %v", err))
		return
	}

	out, hit, err := res.cachedQuery(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if hit {
		s.viewHits.Add(1)
	} else {
		s.viewMisses.Add(1)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.sv.Stats()
	hits, misses := s.viewHits.Load(), s.viewMisses.Load()
	s.mu.Lock()
	retained := len(s.order)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"compiles":       st.Compiles,
		"failures":       st.Failures,
		"in_flight":      st.InFlight,
		"max_concurrent": st.MaxConcurrent,
		"memo": map[string]any{
			"hits":        st.Memo.Hits,
			"misses":      st.Memo.Misses,
			"hit_rate":    st.Memo.HitRate(),
			"node_hits":   st.Memo.NodeHits,
			"node_misses": st.Memo.NodeMisses,
			"evictions":   st.Memo.Evictions,
			"entries":     st.Memo.Entries,
		},
		"intern": map[string]any{
			"entries":    st.InternEntries,
			"generation": st.InternGeneration,
			"reclaims":   st.InternReclaims,
		},
		"incremental": map[string]any{
			"compiles":    st.IncrementalCompiles,
			"cold":        st.IncrementalCold,
			"clean_loops": st.IncrementalCleanLoops,
			"dirty_loops": st.IncrementalDirtyLoops,
			"sessions":    st.IncrementalSessions,
		},
		"view_cache": map[string]any{
			"hits":     hits,
			"misses":   misses,
			"hit_rate": viewHitRate(hits, misses),
		},
		"retained_results": retained,
	})
}

// viewHitRate is hits/(hits+misses), 0 when no queries ran.
func viewHitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

func intParam(v string) (int, error) {
	if v == "" {
		return 0, nil
	}
	return strconv.Atoi(v)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
