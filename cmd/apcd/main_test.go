package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"autopart/internal/apps/builtins"
	"autopart/pkg/autopart"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(newServer(autopart.NewService(autopart.ServiceOptions{MaxConcurrent: 4}), 32))
	t.Cleanup(srv.Close)
	return srv
}

func postCompile(t *testing.T, base string, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/compile", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, out
}

// TestCompileAndQuery drives the full daemon flow: compile a builtin,
// then query its program view and check it matches a direct in-process
// compile of the same source.
func TestCompileAndQuery(t *testing.T) {
	srv := newTestServer(t)

	code, res := postCompile(t, srv.URL, `{"builtin": "spmv"}`)
	if code != http.StatusOK {
		t.Fatalf("compile: status %d: %v", code, res)
	}
	id := res["id"].(string)
	if id == "" || res["launches"].(float64) == 0 {
		t.Fatalf("compile response incomplete: %v", res)
	}

	code, q := getJSON(t, srv.URL+"/v1/results/"+id+"/program")
	if code != http.StatusOK {
		t.Fatalf("query: status %d: %v", code, q)
	}

	// The daemon's program view must match a direct compile.
	src, _, _ := builtins.Source("spmv")
	c, err := autopart.Compile(src, autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := c.DPLProgram().Stmts
	rows := q["rows"].([]any)
	if len(rows) != len(want) {
		t.Fatalf("program view has %d rows, direct compile has %d statements", len(rows), len(want))
	}
	for i, raw := range rows {
		row := raw.(map[string]any)
		if row["text"] != want[i].String() {
			t.Errorf("row %d: %q, want %q", i, row["text"], want[i].String())
		}
	}
}

// TestQueryParameters checks projection, filtering, and pagination
// through the HTTP layer.
func TestQueryParameters(t *testing.T) {
	srv := newTestServer(t)
	_, res := postCompile(t, srv.URL, `{"builtin": "circuit"}`)
	id := res["id"].(string)

	code, q := getJSON(t, srv.URL+"/v1/results/"+id+"/constraints?fields=index,kind&filter=kind=DISJ&limit=2")
	if code != http.StatusOK {
		t.Fatalf("status %d: %v", code, q)
	}
	rows := q["rows"].([]any)
	if len(rows) == 0 || len(rows) > 2 {
		t.Fatalf("limit 2 returned %d rows", len(rows))
	}
	for _, raw := range rows {
		row := raw.(map[string]any)
		if len(row) != 2 || row["kind"] != "DISJ" {
			t.Errorf("projection/filter violated: %v", row)
		}
	}
	if total := q["total"].(float64); total >= 2 && q["next_offset"].(float64) != 2 {
		t.Errorf("total %v but next_offset %v", total, q["next_offset"])
	}

	// Unknown view and field map to 400; unknown id to 404.
	if code, _ := getJSON(t, srv.URL+"/v1/results/"+id+"/nope"); code != http.StatusBadRequest {
		t.Errorf("unknown view: status %d, want 400", code)
	}
	if code, _ := getJSON(t, srv.URL+"/v1/results/"+id+"/program?fields=bogus"); code != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", code)
	}
	if code, _ := getJSON(t, srv.URL+"/v1/results/zzz/program"); code != http.StatusNotFound {
		t.Errorf("unknown id: status %d, want 404", code)
	}
}

// TestCompileErrors covers request validation and compile failures.
func TestCompileErrors(t *testing.T) {
	srv := newTestServer(t)
	if code, _ := postCompile(t, srv.URL, `{}`); code != http.StatusBadRequest {
		t.Errorf("empty request: status %d, want 400", code)
	}
	if code, _ := postCompile(t, srv.URL, `{"builtin": "nope"}`); code != http.StatusBadRequest {
		t.Errorf("unknown builtin: status %d, want 400", code)
	}
	if code, _ := postCompile(t, srv.URL, `{"source": "x", "builtin": "spmv"}`); code != http.StatusBadRequest {
		t.Errorf("both source and builtin: status %d, want 400", code)
	}
	code, res := postCompile(t, srv.URL, `{"source": "region R { v: scalar }\nfor i in Q { }\n"}`)
	if code != http.StatusUnprocessableEntity {
		t.Errorf("bad program: status %d, want 422", code)
	}
	if res["error"] == nil {
		t.Errorf("bad program response lacks error: %v", res)
	}
}

// TestConcurrentCompiles hits the daemon from many clients at once and
// checks the stats endpoint adds up afterwards.
func TestConcurrentCompiles(t *testing.T) {
	srv := newTestServer(t)
	names := builtins.Names()
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			body := fmt.Sprintf(`{"builtin": %q}`, names[i%len(names)])
			resp, err := http.Post(srv.URL+"/v1/compile", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	code, st := getJSON(t, srv.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if got := st["compiles"].(float64); got != clients {
		t.Errorf("stats compiles = %v, want %d", got, clients)
	}
	if st["retained_results"].(float64) != clients {
		t.Errorf("retained_results = %v, want %d", st["retained_results"], clients)
	}

	code, list := getJSON(t, srv.URL+"/v1/results")
	if code != http.StatusOK || len(list["results"].([]any)) != clients {
		t.Errorf("results list: status %d, %v", code, list)
	}
}

// TestResultEviction bounds the store.
func TestResultEviction(t *testing.T) {
	srv := httptest.NewServer(newServer(autopart.NewService(autopart.ServiceOptions{}), 2))
	defer srv.Close()
	var last string
	for i := 0; i < 4; i++ {
		_, res := postCompile(t, srv.URL, `{"builtin": "spmv"}`)
		last = res["id"].(string)
	}
	_, list := getJSON(t, srv.URL+"/v1/results")
	results := list["results"].([]any)
	if len(results) != 2 {
		t.Fatalf("retained %d results, want 2", len(results))
	}
	if got := results[1].(map[string]any)["id"]; got != last {
		t.Errorf("newest retained id %v, want %v", got, last)
	}
	if code, _ := getJSON(t, srv.URL+"/v1/results/r1/program"); code != http.StatusNotFound {
		t.Errorf("evicted result still queryable: status %d", code)
	}
}

// TestHealthz pins the liveness endpoint.
func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	code, body := getJSON(t, srv.URL+"/v1/healthz")
	if code != http.StatusOK || body["status"] != "ok" {
		t.Errorf("healthz: %d %v", code, body)
	}
}

// TestIncrementalKeyRouting drives the recompile flow: a second compile
// under the same key reuses the keyed session's retained artifacts, and
// its result is byte-identical to the keyless compile of the same
// source (checked via the program view).
func TestIncrementalKeyRouting(t *testing.T) {
	srv := newTestServer(t)

	code, res := postCompile(t, srv.URL, `{"builtin": "spmv", "key": "edit-loop"}`)
	if code != http.StatusOK {
		t.Fatalf("compile: status %d: %v", code, res)
	}
	if res["key"] != "edit-loop" {
		t.Fatalf("response key = %v, want edit-loop", res["key"])
	}
	code, res2 := postCompile(t, srv.URL, `{"builtin": "spmv", "key": "edit-loop"}`)
	if code != http.StatusOK {
		t.Fatalf("recompile: status %d: %v", code, res2)
	}
	code, keyless := postCompile(t, srv.URL, `{"builtin": "spmv"}`)
	if code != http.StatusOK {
		t.Fatalf("keyless compile: status %d: %v", code, keyless)
	}

	_, incView := getJSON(t, fmt.Sprintf("%s/v1/results/%s/program", srv.URL, res2["id"]))
	_, coldView := getJSON(t, fmt.Sprintf("%s/v1/results/%s/program", srv.URL, keyless["id"]))
	if fmt.Sprint(incView["rows"]) != fmt.Sprint(coldView["rows"]) {
		t.Errorf("incremental program view differs from keyless:\n%v\n%v", incView["rows"], coldView["rows"])
	}

	_, stats := getJSON(t, srv.URL+"/v1/stats")
	incr := stats["incremental"].(map[string]any)
	if incr["compiles"].(float64) != 2 {
		t.Errorf("incremental compiles = %v, want 2", incr["compiles"])
	}
	if incr["clean_loops"].(float64) == 0 {
		t.Errorf("recompile reused no loops: %v", incr)
	}
	if incr["sessions"].(float64) != 1 {
		t.Errorf("incremental sessions = %v, want 1", incr["sessions"])
	}
}

// TestViewCache checks that identical query parameters are answered
// from the per-result view cache and that the hit counters surface in
// /v1/stats.
func TestViewCache(t *testing.T) {
	srv := newTestServer(t)

	code, res := postCompile(t, srv.URL, `{"builtin": "spmv"}`)
	if code != http.StatusOK {
		t.Fatalf("compile: status %d: %v", code, res)
	}
	url := fmt.Sprintf("%s/v1/results/%s/program?fields=symbol,expr&limit=3", srv.URL, res["id"])
	_, first := getJSON(t, url)
	_, second := getJSON(t, url)
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Fatalf("cached query differs from fresh query:\n%v\n%v", first, second)
	}
	// A different projection is a distinct cache entry, not a hit.
	getJSON(t, fmt.Sprintf("%s/v1/results/%s/program?fields=symbol", srv.URL, res["id"]))

	_, stats := getJSON(t, srv.URL+"/v1/stats")
	vc := stats["view_cache"].(map[string]any)
	if vc["hits"].(float64) != 1 || vc["misses"].(float64) != 2 {
		t.Errorf("view cache hits/misses = %v/%v, want 1/2", vc["hits"], vc["misses"])
	}
	if rate := vc["hit_rate"].(float64); rate <= 0 || rate >= 1 {
		t.Errorf("hit_rate = %v, want in (0,1)", rate)
	}
}
