// Command compilebench measures compile-time performance of the builtin
// benchmark programs: it compiles each one N times, records the median
// (p50) wall time of every pipeline pass and of the Table-1 phase
// grouping, and snapshots the solver's cache and search counters from
// the final run. It then measures compile-service throughput — N
// concurrent clients compiling the benchmark set through one shared
// Service — cold (empty memo cache, freshly reset intern table) and
// warm (cache pre-seeded by one uncounted pass), reporting compiles/sec
// and the warm verdict hit rate. Results are written as JSON
// (BENCH_compile.json by default) so CI can archive them and successive
// commits can be compared.
//
// Usage:
//
//	compilebench [-runs N] [-o BENCH_compile.json] [-sequential]
//
// The benchmark is observational, not gating: no thresholds are
// enforced here.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/dpl"
	"autopart/internal/lang"
	"autopart/internal/pipeline"
	"autopart/pkg/autopart"
)

// passObserver records one wall-time sample per pass per run.
type passObserver struct {
	samples map[string][]time.Duration
}

func (p *passObserver) OnPassStart(string, int) {}
func (p *passObserver) OnPassEnd(ev pipeline.PassEvent) {
	p.samples[ev.Pass] = append(p.samples[ev.Pass], ev.Wall)
}

// p50 returns the median of a sample set (lower middle for even sizes,
// so a single outlier run cannot shift the reported value).
func p50(ds []time.Duration) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

// solverStats is the JSON shape of the solver's cache/search counters.
type solverStats struct {
	MemoHits     int `json:"memo_hits"`
	MemoMisses   int `json:"memo_misses"`
	ClosedHits   int `json:"closed_hits"`
	ClosedMisses int `json:"closed_misses"`
	NodeHits     int `json:"node_hits"`
	Nodes        int `json:"nodes"`
	// GraphBuilds/GraphExtends count full Algorithm 3 graph rebuilds vs
	// incremental extensions of the cached accumulated graph; a healthy
	// run extends far more than it builds.
	GraphBuilds  int `json:"graph_builds"`
	GraphExtends int `json:"graph_extends"`
}

// internShardJSON is one intern-table shard's size and hit profile over
// a single stats-enabled compile.
type internShardJSON struct {
	Shard   string  `json:"shard"`
	Entries int     `json:"entries"`
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// appResult is one benchmark program's measurements.
type appResult struct {
	Name      string           `json:"name"`
	Loops     int              `json:"loops"`
	PassP50US map[string]int64 `json:"pass_p50_us"`
	// PhaseP50US groups passes into Table 1's rows (inference =
	// normalize+infer, solver = relax+solve+private, etc.), each the p50
	// of the per-run phase sums.
	PhaseP50US map[string]int64 `json:"phase_p50_us"`
	// UnifyP50US is the p50 wall time spent inside UnifyAndSolve
	// (Algorithm 3 matching + solvability checks), a subset of the solve
	// pass.
	UnifyP50US int64       `json:"unify_p50_us"`
	Solver     solverStats `json:"solver"`
	// Intern profiles the expression intern table during one extra
	// stats-enabled compile after the timed runs (so counter upkeep
	// cannot perturb the p50s). Entries are process-global; hits and
	// misses are per-compile.
	Intern []internShardJSON `json:"intern"`
}

// throughputRow is one compile-service throughput measurement: clients
// concurrent goroutines each compiling the full benchmark set once
// through a shared Service.
type throughputRow struct {
	Clients int `json:"clients"`
	// Mode is "cold" (empty memo cache, freshly reset intern table) or
	// "warm" (one uncounted pre-seeding pass over the benchmark set).
	Mode     string `json:"mode"`
	Compiles int    `json:"compiles"`
	WallUS   int64  `json:"wall_us"`
	// CompilesPerSec is the headline service throughput.
	CompilesPerSec float64 `json:"compiles_per_sec"`
	// MemoHitRate is the shared cache's verdict hit rate over the timed
	// batch (solvable + closed-conjunct lookups; refuted-subtree
	// blocklist lookups are excluded by design).
	MemoHitRate float64 `json:"memo_hit_rate"`
}

// editRecompileRow measures edit-heavy traffic: after each single-loop
// edit, the same warm service recompiles the program both ways — full
// pipeline (Compile) and incrementally (CompileIncremental, diffing
// against the previous version under one key). Both share the warm
// solver memo cache, so the delta isolates the front half of the
// pipeline that incremental compiles skip for clean loops.
type editRecompileRow struct {
	Name  string `json:"name"`
	Loops int    `json:"loops"`
	Edits int    `json:"edits"`
	// WarmFullP50US is the p50 wall time of a warm-service full-pipeline
	// recompile of the edited source.
	WarmFullP50US int64 `json:"warm_full_p50_us"`
	// IncrementalP50US is the p50 wall time of the incremental recompile
	// of the same edit.
	IncrementalP50US int64 `json:"incremental_p50_us"`
	// Speedup is WarmFullP50US / IncrementalP50US.
	Speedup float64 `json:"speedup"`
	// CleanLoops/DirtyLoops total the loops reused vs re-run across the
	// measured incremental recompiles.
	CleanLoops uint64 `json:"clean_loops"`
	DirtyLoops uint64 `json:"dirty_loops"`
}

// report is the top-level JSON document.
type report struct {
	Runs          int                `json:"runs"`
	Sequential    bool               `json:"sequential"`
	GoOS          string             `json:"goos"`
	GoArch        string             `json:"goarch"`
	Apps          []appResult        `json:"apps"`
	Throughput    []throughputRow    `json:"throughput"`
	EditRecompile []editRecompileRow `json:"edit_recompile"`
}

// measureThroughput runs one timed batch: clients goroutines, each
// compiling every source once (rotated start offsets so programs
// interleave), against a fresh Service. The intern table is reset
// first so every row starts from the same table state; warm rows then
// pre-seed the memo cache with one uncounted pass.
func measureThroughput(srcs []string, clients int, warm bool) throughputRow {
	dpl.Default().Reset()
	sv := autopart.NewService(autopart.ServiceOptions{MaxConcurrent: clients})
	if warm {
		for _, src := range srcs {
			if _, err := sv.Compile(src); err != nil {
				fmt.Fprintf(os.Stderr, "compilebench: warm seed: %v\n", err)
				os.Exit(1)
			}
		}
	}
	before := sv.Stats().Memo
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range srcs {
				if _, err := sv.Compile(srcs[(i+c)%len(srcs)]); err != nil {
					fmt.Fprintf(os.Stderr, "compilebench: throughput: %v\n", err)
					os.Exit(1)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	after := sv.Stats().Memo

	mode := "cold"
	if warm {
		mode = "warm"
	}
	compiles := clients * len(srcs)
	dh, dm := after.Hits-before.Hits, after.Misses-before.Misses
	rate := 0.0
	if dh+dm > 0 {
		rate = float64(dh) / float64(dh+dm)
	}
	return throughputRow{
		Clients:        clients,
		Mode:           mode,
		Compiles:       compiles,
		WallUS:         wall.Microseconds(),
		CompilesPerSec: float64(compiles) / wall.Seconds(),
		MemoHitRate:    rate,
	}
}

// synthLoops generates an n-loop program whose loops are long scalar
// temporary chains bracketed by one region read and one region write:
// front-half (parse/check/normalize/infer) work dominates, while each
// loop contributes only a handful of constraints, modeling a large
// edit-heavy source where full recompiles are front-half-bound.
func synthLoops(n int) string {
	const stmts = 60
	var b strings.Builder
	b.WriteString("region Grid { a: scalar, b: scalar }\n")
	for l := 0; l < n; l++ {
		b.WriteString("for i in Grid {\n")
		fmt.Fprintf(&b, "  t0 = Grid[i].a + %d\n", l)
		for k := 1; k < stmts; k++ {
			fmt.Fprintf(&b, "  t%d = t%d * t%d + %d\n", k, k-1, k-1, k)
		}
		fmt.Fprintf(&b, "  Grid[i].b = t%d\n", stmts-1)
		b.WriteString("}\n")
	}
	return b.String()
}

// editLoop edits the (i mod loops)-th top-level loop of src by
// duplicating its first plain statement line — a realistic one-loop
// edit that changes the loop's token fingerprint.
func editLoop(src string, i int) (string, error) {
	seg, err := lang.SplitSource(src)
	if err != nil {
		return "", err
	}
	if len(seg.Loops) == 0 {
		return "", fmt.Errorf("no loops to edit")
	}
	s := seg.LoopSeg(i % len(seg.Loops))
	loop := src[s.Start:s.End]
	for _, line := range strings.SplitAfter(loop, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || !strings.HasSuffix(line, "\n") || strings.ContainsAny(t, "{}") || strings.HasPrefix(t, "//") {
			continue
		}
		loop = strings.Replace(loop, line, line+line, 1)
		return src[:s.Start] + loop + src[s.End:], nil
	}
	return "", fmt.Errorf("loop %d has no editable statement", i%len(seg.Loops))
}

// measureEditRecompile replays runs single-loop edits against two warm
// services — one serving full-pipeline recompiles, one serving
// incremental recompiles under a single key — timing both compiles of
// every edited version. Separate services mean separate solver memo
// caches: neither path warms the other's cache mid-measurement, so each
// side's p50 is what a dedicated service of that kind would deliver for
// the same edit-heavy traffic.
func measureEditRecompile(name, src string, runs int) editRecompileRow {
	dpl.Default().Reset()
	svFull := autopart.NewService(autopart.ServiceOptions{})
	svIncr := autopart.NewService(autopart.ServiceOptions{})
	const key = "bench"
	c, err := svIncr.CompileIncremental(key, src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "compilebench: edit-recompile %s: %v\n", name, err)
		os.Exit(1)
	}
	loops := len(c.Parallel)
	if _, err := svFull.Compile(src); err != nil {
		fmt.Fprintf(os.Stderr, "compilebench: edit-recompile %s: %v\n", name, err)
		os.Exit(1)
	}

	cur := src
	var incrS, fullS []time.Duration
	before := svIncr.Stats()
	for i := 0; i < runs; i++ {
		edited, err := editLoop(cur, i)
		if err != nil {
			fmt.Fprintf(os.Stderr, "compilebench: edit-recompile %s: %v\n", name, err)
			os.Exit(1)
		}
		start := time.Now()
		if _, err := svFull.Compile(edited); err != nil {
			fmt.Fprintf(os.Stderr, "compilebench: edit-recompile %s: %v\n", name, err)
			os.Exit(1)
		}
		fullS = append(fullS, time.Since(start))
		start = time.Now()
		if _, err := svIncr.CompileIncremental(key, edited); err != nil {
			fmt.Fprintf(os.Stderr, "compilebench: edit-recompile %s: %v\n", name, err)
			os.Exit(1)
		}
		incrS = append(incrS, time.Since(start))
		cur = edited
	}
	after := svIncr.Stats()

	full, incr := p50(fullS), p50(incrS)
	speedup := 0.0
	if incr > 0 {
		speedup = float64(full) / float64(incr)
	}
	return editRecompileRow{
		Name:             name,
		Loops:            loops,
		Edits:            runs,
		WarmFullP50US:    full.Microseconds(),
		IncrementalP50US: incr.Microseconds(),
		Speedup:          speedup,
		CleanLoops:       after.IncrementalCleanLoops - before.IncrementalCleanLoops,
		DirtyLoops:       after.IncrementalDirtyLoops - before.IncrementalDirtyLoops,
	}
}

func main() {
	runs := flag.Int("runs", 10, "compile runs per program (one extra warm-up run is not counted)")
	out := flag.String("o", "BENCH_compile.json", "output JSON path (- for stdout)")
	sequential := flag.Bool("sequential", false, "force sequential unification/evaluation")
	flag.Parse()
	if *runs < 1 {
		fmt.Fprintln(os.Stderr, "compilebench: -runs must be >= 1")
		os.Exit(2)
	}
	if *sequential {
		autopart.SequentialEvaluation(true)
	}

	apps := []struct {
		name string
		src  string
	}{
		{"SpMV", spmv.Source},
		{"Stencil", stencil.Source()},
		{"Circuit", circuit.Source},
		{"MiniAero", miniaero.Source()},
		{"PENNANT", pennant.Source()},
	}

	phases := map[string][]string{
		"parse":     {"parse", "check"},
		"inference": {"normalize", "infer"},
		"solver":    {"relax", "solve", "private"},
		"rewrite":   {"rewrite"},
	}

	rep := report{Runs: *runs, Sequential: *sequential, GoOS: runtime.GOOS, GoArch: runtime.GOARCH}
	for _, app := range apps {
		obs := &passObserver{samples: map[string][]time.Duration{}}
		var last *autopart.Compiled
		var unifySamples []time.Duration
		// One uncounted warm-up run fills caches (interning, page cache)
		// so the measured runs reflect steady-state compiles.
		for i := 0; i <= *runs; i++ {
			o := autopart.Options{}
			if i > 0 {
				o.Observers = []pipeline.Observer{obs}
			}
			c, err := autopart.Compile(app.src, o)
			if err != nil {
				fmt.Fprintf(os.Stderr, "compilebench: %s: %v\n", app.name, err)
				os.Exit(1)
			}
			if i > 0 {
				unifySamples = append(unifySamples, time.Duration(c.Solution.Stats.UnifyNS))
			}
			last = c
		}

		// One extra compile with intern-table stats enabled, after the
		// timed runs so the counter upkeep cannot perturb the p50s.
		dpl.EnableInternStats(true)
		if _, err := autopart.Compile(app.src, autopart.Options{}); err != nil {
			fmt.Fprintf(os.Stderr, "compilebench: %s: %v\n", app.name, err)
			os.Exit(1)
		}
		internStats := dpl.InternStats()
		dpl.EnableInternStats(false)

		r := appResult{
			Name:       app.name,
			Loops:      len(last.Parallel),
			PassP50US:  map[string]int64{},
			PhaseP50US: map[string]int64{},
			UnifyP50US: p50(unifySamples).Microseconds(),
			Solver: solverStats{
				MemoHits:     last.Solution.Stats.MemoHits,
				MemoMisses:   last.Solution.Stats.MemoMisses,
				ClosedHits:   last.Solution.Stats.ClosedHits,
				ClosedMisses: last.Solution.Stats.ClosedMisses,
				NodeHits:     last.Solution.Stats.NodeHits,
				Nodes:        last.Solution.Stats.Nodes,
				GraphBuilds:  last.Solution.Stats.GraphBuilds,
				GraphExtends: last.Solution.Stats.GraphExtends,
			},
		}
		for _, st := range internStats {
			rate := 0.0
			if st.Hits+st.Misses > 0 {
				rate = float64(st.Hits) / float64(st.Hits+st.Misses)
			}
			r.Intern = append(r.Intern, internShardJSON{
				Shard:   st.Shard,
				Entries: st.Entries,
				Hits:    st.Hits,
				Misses:  st.Misses,
				HitRate: rate,
			})
		}
		for pass, ds := range obs.samples {
			r.PassP50US[pass] = p50(ds).Microseconds()
		}
		for phase, passes := range phases {
			sums := make([]time.Duration, *runs)
			for _, pass := range passes {
				for i, d := range obs.samples[pass] {
					sums[i] += d
				}
			}
			r.PhaseP50US[phase] = p50(sums).Microseconds()
		}
		rep.Apps = append(rep.Apps, r)
	}

	// Service throughput: cold vs warm at increasing client counts. The
	// sources are compiled through a shared Service exactly as cmd/apcd
	// serves them.
	srcs := make([]string, len(apps))
	for i, app := range apps {
		srcs[i] = app.src
	}
	for _, clients := range []int{1, 4, 16} {
		for _, warm := range []bool{false, true} {
			rep.Throughput = append(rep.Throughput, measureThroughput(srcs, clients, warm))
		}
	}

	// Edit-recompile latency: the five builtins plus a 50-loop synthetic
	// whose compile time is front-half-bound, the shape incremental
	// recompilation targets. Edit rounds are floored at 40 so the p50s
	// are stable even at the default -runs.
	editRounds := *runs
	if editRounds < 40 {
		editRounds = 40
	}
	for _, app := range apps {
		rep.EditRecompile = append(rep.EditRecompile, measureEditRecompile(app.name, app.src, editRounds))
	}
	rep.EditRecompile = append(rep.EditRecompile, measureEditRecompile("Synth50", synthLoops(50), editRounds))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "compilebench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "compilebench:", err)
		os.Exit(1)
	}
	fmt.Printf("compilebench: wrote %s (%d apps, %d runs each)\n", *out, len(rep.Apps), *runs)
	for _, a := range rep.Apps {
		fmt.Printf("  %-9s solver p50 %6.1fms  unify p50 %6.1fms  graphs %d+%dext  (memo %d/%d, closed %d/%d, nodes %d)\n",
			a.Name, float64(a.PhaseP50US["solver"])/1000, float64(a.UnifyP50US)/1000,
			a.Solver.GraphBuilds, a.Solver.GraphExtends,
			a.Solver.MemoHits, a.Solver.MemoMisses,
			a.Solver.ClosedHits, a.Solver.ClosedMisses, a.Solver.Nodes)
	}
	for _, row := range rep.Throughput {
		fmt.Printf("  service %2d clients %-4s %7.1f compiles/sec  (memo hit rate %.3f)\n",
			row.Clients, row.Mode, row.CompilesPerSec, row.MemoHitRate)
	}
	for _, row := range rep.EditRecompile {
		fmt.Printf("  edit-recompile %-9s full p50 %8.1fus  incremental p50 %8.1fus  speedup %5.2fx  (%d clean / %d dirty loops)\n",
			row.Name, float64(row.WarmFullP50US), float64(row.IncrementalP50US),
			row.Speedup, row.CleanLoops, row.DirtyLoops)
	}
}
