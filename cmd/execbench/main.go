// Command execbench runs weak-scaling sweeps of the distributed SPMD
// executor (internal/exec): every builtin program at a doubling ladder
// of node counts, measuring shipped bytes, message counts, the
// compute-communication overlap ratio of the dependency-driven
// scheduler, and the p50 per-launch wall clock. Results are written as
// JSON (BENCH_exec.json by default) so CI can archive them and
// successive commits can be compared.
//
// The apps size themselves per node (weak scaling), so the sweep holds
// per-node work constant while the node count grows; execbench uses
// reduced per-node configurations to keep the interpreted shards
// affordable at 256 nodes.
//
// Every run cross-checks the executor's measured per-node, per-launch
// communication counters against the analytic model (internal/sim) —
// any inexact counter is a hard failure, because prediction error is
// the quantity the repo exists to test. Runs at small node counts also
// verify bit-identity against the sequential executor.
//
// Usage:
//
//	execbench [-o BENCH_exec.json] [-max-nodes 256] [-steps 2]
//	          [-transport inproc] [-check-nodes 8] [-proc-nodes 2,4]
//
// -transport proc runs the whole sweep multi-process: each node is a
// spawned worker process (execbench re-execs itself, like cmd/run) and
// the coordinator distributes the program over the bootstrap protocol.
// A full 256-node ladder spawns 256 processes per run, so pass a small
// -max-nodes with it. Independently, -proc-nodes (default 2,4) appends
// multi-process rows at those node counts to every in-process sweep,
// so the default BENCH_exec.json always carries a few proc rows whose
// byte/message counters can be diffed against the inproc rows (they
// must be identical; wall times will not be, which is the point).
//
// The benchmark is observational, not gating: no performance
// thresholds are enforced here (the correctness cross-checks are).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/exec"
	"autopart/internal/exec/cluster"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// benchApp is one builtin at its bench-scale (reduced) configuration.
type benchApp struct {
	name  string
	build func(nodes int) (*exec.Program, error)
}

// benchApps compiles each source once and returns per-node-sized
// builders. The configurations are deliberately small: the shard
// interpreter is the bottleneck, and the sweep's subject is protocol
// traffic and scheduling, which depend on the partition geometry, not
// the element count.
func benchApps() ([]benchApp, error) {
	type src struct {
		name string
		text string
	}
	srcs := []src{
		{"stencil", stencil.Source()},
		{"circuit", circuit.Source},
		{"circuit-hint", circuit.HintSource},
		{"spmv", spmv.Source},
		{"miniaero", miniaero.Source()},
		{"pennant-h2", pennant.HintSource(2)},
	}
	compiledBy := map[string]*autopart.Compiled{}
	for _, s := range srcs {
		c, err := autopart.Compile(s.text, autopart.Options{})
		if err != nil {
			return nil, fmt.Errorf("compile %s: %w", s.name, err)
		}
		compiledBy[s.name] = c
	}
	return []benchApp{
		{"stencil", func(n int) (*exec.Program, error) {
			return stencil.Executable(stencil.Config{Width: 128, RowsPerNode: 4}, compiledBy["stencil"], n)
		}},
		{"circuit", func(n int) (*exec.Program, error) {
			cfg := circuit.Config{WiresPerCluster: 200, NodesPerCluster: 100, SharedFraction: 0.02, CrossFraction: 0.20}
			return circuit.Executable(cfg, compiledBy["circuit"], n, false)
		}},
		{"circuit-hint", func(n int) (*exec.Program, error) {
			cfg := circuit.Config{WiresPerCluster: 200, NodesPerCluster: 100, SharedFraction: 0.02, CrossFraction: 0.20}
			return circuit.Executable(cfg, compiledBy["circuit-hint"], n, true)
		}},
		{"spmv", func(n int) (*exec.Program, error) {
			return spmv.Executable(spmv.Config{RowsPerNode: 128, NnzPerRow: 8}, compiledBy["spmv"], n)
		}},
		{"miniaero", func(n int) (*exec.Program, error) {
			return miniaero.Executable(miniaero.Config{DX: 4, DY: 4, DZ: 4}, compiledBy["miniaero"], n)
		}},
		{"pennant-h2", func(n int) (*exec.Program, error) {
			return pennant.Executable(pennant.Config{W: 16, ZonesPerPiece: 128, Jitter: 16}, compiledBy["pennant-h2"], n, 2)
		}},
	}, nil
}

type launchBench struct {
	Name         string  `json:"name"`
	Bytes        float64 `json:"bytes"`
	Msgs         int     `json:"msgs"`
	OverlapRatio float64 `json:"overlap_ratio"`
	// WallP50NS is the median per-node wall time of the launch across
	// all (step, node) samples.
	WallP50NS int64 `json:"wall_p50_ns"`
}

type runBench struct {
	App          string        `json:"app"`
	Transport    string        `json:"transport"`
	Nodes        int           `json:"nodes"`
	Steps        int           `json:"steps"`
	Bytes        float64       `json:"bytes"`
	Msgs         int           `json:"msgs"`
	OverlapRatio float64       `json:"overlap_ratio"`
	WallNS       int64         `json:"wall_ns"`
	SimExact     bool          `json:"sim_counters_exact"`
	Checked      bool          `json:"checked_vs_sequential"`
	Launches     []launchBench `json:"launches"`
}

type report struct {
	GOOS      string     `json:"goos"`
	GOARCH    string     `json:"goarch"`
	NumCPU    int        `json:"num_cpu"`
	GoVersion string     `json:"go_version"`
	Transport string     `json:"transport"`
	Runs      []runBench `json:"runs"`
}

func p50(ds []int64) int64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]int64(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[(len(sorted)-1)/2]
}

func ratio(overlap, compute int64) float64 {
	if compute <= 0 {
		return 0
	}
	return float64(overlap) / float64(compute)
}

// crossCheck replays the analytic model over the same steps and
// compares every per-node, per-launch counter the executor measured.
// Exactness is the contract: both sides derive traffic from the same
// partition geometry, so any drift is a protocol bug.
func crossCheck(prog *exec.Program, res *exec.Result, steps int) error {
	model := sim.Default()
	launches := prog.Plan.Launches()
	for step := 0; step < steps; step++ {
		its, err := model.RunIteration(launches, prog.Parts, prog.Owners)
		if err != nil {
			return fmt.Errorf("step %d: sim: %w", step, err)
		}
		for li, ls := range its.Launches {
			measured := res.Steps[step].Launches[li]
			for j := range ls.Nodes {
				want, got := ls.Nodes[j], measured.Nodes[j]
				want.ComputeUnits, got.ComputeUnits = 0, 0
				if want != got {
					return fmt.Errorf("step %d launch %s node %d: sim predicts %+v, executor measured %+v",
						step, ls.Name, j, want, got)
				}
			}
		}
	}
	return nil
}

func main() {
	out := flag.String("o", "BENCH_exec.json", "output JSON path")
	maxNodes := flag.Int("max-nodes", 256, "largest node count in the doubling ladder")
	steps := flag.Int("steps", 2, "main-loop iterations per run")
	transport := flag.String("transport", "inproc", "message transport: inproc, tcp, flaky, or proc (one worker process per node)")
	checkNodes := flag.Int("check-nodes", 8, "verify bit-identity against the sequential executor up to this node count")
	procNodesFlag := flag.String("proc-nodes", "2,4", "append multi-process rows at these node counts (comma list; empty disables; ignored with -transport proc)")
	procWorker := flag.Bool("proc-worker", false, "internal: run as a spawned worker process")
	listen := flag.String("listen", "127.0.0.1:0", "worker mode: control listen address")
	flag.Parse()

	if *procWorker {
		err := cluster.WorkerMain(*listen, os.Stdout, cluster.WorkerOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "execbench worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var tf exec.TransportFactory
	var err error
	if *transport != "proc" {
		tf, err = exec.TransportByName(*transport)
		if err != nil {
			fatal(err)
		}
	}
	apps, err := benchApps()
	if err != nil {
		fatal(err)
	}
	var ladder []int
	for n := 1; n <= *maxNodes; n *= 2 {
		ladder = append(ladder, n)
	}
	var procNodes []int
	if *transport != "proc" {
		procNodes, err = parseNodeList(*procNodesFlag)
		if err != nil {
			fatal(err)
		}
	}

	rep := report{
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		GoVersion: runtime.Version(),
		Transport: *transport,
	}
	for _, app := range apps {
		for _, nodes := range ladder {
			run, err := benchOne(app, *transport, tf, nodes, *steps, *checkNodes)
			if err != nil {
				fatal(err)
			}
			rep.Runs = append(rep.Runs, run)
		}
		// The multi-process rows for this app: same programs, every node a
		// spawned worker process, same exactness contract.
		for _, nodes := range procNodes {
			run, err := benchOne(app, "proc", nil, nodes, *steps, *checkNodes)
			if err != nil {
				fatal(err)
			}
			rep.Runs = append(rep.Runs, run)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "execbench: wrote %s (%d runs)\n", *out, len(rep.Runs))
}

// benchOne builds and runs one (app, transport, nodes) cell, cross
// checks it, and condenses the measurements into a runBench row.
// transportName "proc" ignores tf and spawns one worker process per
// node via the cluster coordinator.
func benchOne(app benchApp, transportName string, tf exec.TransportFactory, nodes, steps, checkNodes int) (runBench, error) {
	prog, err := app.build(nodes)
	if err != nil {
		return runBench{}, fmt.Errorf("%s at %d nodes: build: %w", app.name, nodes, err)
	}
	start := time.Now()
	var res *exec.Result
	if transportName == "proc" {
		res, err = procRun(prog, nodes, steps)
	} else {
		res, err = exec.Run(prog, exec.Config{Nodes: nodes, Steps: steps, Transport: tf})
	}
	if err != nil {
		return runBench{}, fmt.Errorf("%s at %d nodes (%s): %w", app.name, nodes, transportName, err)
	}
	wall := time.Since(start)

	// prog.Owners is untouched by Run, so it can seed the model's
	// valid-instance replay for the cross-check.
	if err := crossCheck(prog, res, steps); err != nil {
		return runBench{}, fmt.Errorf("%s at %d nodes (%s): counter cross-check: %w", app.name, nodes, transportName, err)
	}
	checked := false
	if nodes <= checkNodes {
		want, err := exec.RunSequentialReference(prog, steps)
		if err != nil {
			return runBench{}, fmt.Errorf("%s at %d nodes: sequential reference: %w", app.name, nodes, err)
		}
		for name, wr := range want.Regions {
			if same, diff := wr.SameData(res.Machine.Regions[name]); !same {
				return runBench{}, fmt.Errorf("%s at %d nodes (%s): region %s diverges from sequential: %s",
					app.name, nodes, transportName, name, diff)
			}
		}
		checked = true
	}

	run := runBench{
		App: app.name, Transport: transportName, Nodes: nodes, Steps: steps,
		Bytes: res.TotalBytes(), Msgs: res.TotalMsgs(),
		WallNS: wall.Nanoseconds(), SimExact: true, Checked: checked,
	}
	nLaunches := len(prog.Plan.Tasks)
	var totOv, totCp int64
	for li := 0; li < nLaunches; li++ {
		lb := launchBench{Name: res.Steps[0].Launches[li].Name}
		var walls []int64
		var ov, cp int64
		for _, sc := range res.Steps {
			lc := sc.Launches[li]
			lb.Bytes += lc.TotalBytes
			lb.Msgs += lc.TotalMsgs
			for _, nt := range lc.Times {
				walls = append(walls, nt.WallNS)
				ov += nt.OverlapNS
				cp += nt.ComputeNS
			}
		}
		lb.OverlapRatio = ratio(ov, cp)
		lb.WallP50NS = p50(walls)
		totOv += ov
		totCp += cp
		run.Launches = append(run.Launches, lb)
	}
	run.OverlapRatio = ratio(totOv, totCp)
	fmt.Fprintf(os.Stderr, "execbench: %-12s %-6s nodes=%-3d bytes=%10.0f msgs=%6d overlap=%.3f wall=%v\n",
		app.name, transportName, nodes, run.Bytes, run.Msgs, run.OverlapRatio, wall.Round(time.Millisecond))
	return run, nil
}

// procRun executes prog with each node in its own worker process, the
// benchmark twin of cmd/run's proc transport: execbench re-execs
// itself with -proc-worker, so one build serves both roles.
func procRun(prog *exec.Program, nodes, steps int) (*exec.Result, error) {
	self, err := os.Executable()
	if err != nil {
		return nil, fmt.Errorf("locate own binary for worker re-exec: %w", err)
	}
	return cluster.Spawn(prog, exec.Config{Nodes: nodes, Steps: steps},
		cluster.SpawnOptions{Command: []string{self, "-proc-worker"}})
}

func parseNodeList(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -proc-nodes entry %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "execbench: %v\n", err)
	os.Exit(1)
}
