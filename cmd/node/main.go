// Command node is one worker of a multi-process executor run. It
// listens for a coordinator (internal/exec/cluster, typically behind
// `run -transport proc -node-bin ./node` or cluster.Join), completes
// the versioned bootstrap handshake — hello with its assigned node id,
// data-plane address exchange, serialized program + partitions — runs
// its node of the plan against the full-mesh socket transport, streams
// its stats and final shards back, and exits.
//
// Usage:
//
//	node [-listen 127.0.0.1:0] [-quiet]
//
// On startup it prints one line to stdout:
//
//	NODE_LISTEN <host:port>
//
// which is the control address a coordinator dials (spawning
// coordinators scan stdout for it; with Join, pass it by hand). The
// process serves exactly one run: supervisors that want a resident
// worker pool should restart it per run, keeping the failure model
// trivial — a worker is alive exactly as long as its run.
//
// -crash-at-launch N makes the process exit abruptly (status 3) the
// first time its node sends a step-0 message for launch index N. This
// is the deterministic mid-run death the failure-semantics drills and
// CI use; it has no production purpose.
package main

import (
	"flag"
	"fmt"
	"os"

	"autopart/internal/exec/cluster"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:0", "control listen address (port 0 = ephemeral)")
	crashAtLaunch := flag.Int("crash-at-launch", -1, "exit abruptly when first sending for this launch index (failure drill)")
	quiet := flag.Bool("quiet", false, "suppress progress logging on stderr")
	flag.Parse()

	opts := cluster.WorkerOptions{
		CrashFn: func() { os.Exit(3) },
	}
	if *crashAtLaunch >= 0 {
		opts.CrashAtLaunch = crashAtLaunch
	}
	if !*quiet {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "node: "+format+"\n", args...)
		}
	}
	if err := cluster.WorkerMain(*listen, os.Stdout, opts); err != nil {
		fmt.Fprintf(os.Stderr, "node: %v\n", err)
		os.Exit(1)
	}
}
