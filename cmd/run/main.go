// Command run executes one of the builtin benchmark programs on the
// distributed SPMD executor (internal/exec): it compiles the program,
// solves its partitions for the requested node count, runs the task
// plan on that many goroutine-backed nodes with message-passing ghost
// exchange, verifies the result against the sequential executor, and
// prints the measured per-node communication statistics as JSON.
//
// Usage:
//
//	run -app circuit [-nodes 4] [-steps 2] [-min-bytes 1] [-no-check]
//
// Apps: stencil, circuit, circuit-hint, spmv, miniaero, pennant-h2.
//
// -min-bytes N exits nonzero unless at least N bytes of ghost/reduction
// traffic moved (CI smoke tests assert nonzero traffic this way).
// -no-check skips the bit-identity comparison against the sequential
// reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/exec"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// builders maps app names to program constructors. Each compiles the
// app's source and instantiates it at the requested node count.
var builders = map[string]func(nodes int) (*exec.Program, error){
	"stencil": func(n int) (*exec.Program, error) {
		c, err := autopart.Compile(stencil.Source(), autopart.Options{})
		if err != nil {
			return nil, err
		}
		return stencil.Executable(stencil.DefaultConfig(), c, n)
	},
	"circuit": func(n int) (*exec.Program, error) {
		c, err := autopart.Compile(circuit.Source, autopart.Options{})
		if err != nil {
			return nil, err
		}
		return circuit.Executable(circuit.DefaultConfig(), c, n, false)
	},
	"circuit-hint": func(n int) (*exec.Program, error) {
		c, err := autopart.Compile(circuit.HintSource, autopart.Options{})
		if err != nil {
			return nil, err
		}
		return circuit.Executable(circuit.DefaultConfig(), c, n, true)
	},
	"spmv": func(n int) (*exec.Program, error) {
		c, err := autopart.Compile(spmv.Source, autopart.Options{})
		if err != nil {
			return nil, err
		}
		return spmv.Executable(spmv.DefaultConfig(), c, n)
	},
	"miniaero": func(n int) (*exec.Program, error) {
		c, err := autopart.Compile(miniaero.Source(), autopart.Options{})
		if err != nil {
			return nil, err
		}
		return miniaero.Executable(miniaero.DefaultConfig(), c, n)
	},
	"pennant-h2": func(n int) (*exec.Program, error) {
		c, err := autopart.Compile(pennant.HintSource(2), autopart.Options{})
		if err != nil {
			return nil, err
		}
		return pennant.Executable(pennant.DefaultConfig(), c, n, 2)
	},
}

// nodeStatsJSON is sim.NodeStats with JSON names (ComputeUnits is
// omitted: the executor measures communication, not compute).
type nodeStatsJSON struct {
	Node        int     `json:"node"`
	BufferElems float64 `json:"buffer_elems,omitempty"`
	BytesIn     float64 `json:"bytes_in"`
	BytesOut    float64 `json:"bytes_out"`
	MsgsIn      int     `json:"msgs_in"`
	MsgsOut     int     `json:"msgs_out"`
	FragsIn     int     `json:"frags_in"`
	FragsOut    int     `json:"frags_out"`
}

type launchJSON struct {
	Name       string          `json:"name"`
	TotalBytes float64         `json:"total_bytes"`
	TotalMsgs  int             `json:"total_msgs"`
	Nodes      []nodeStatsJSON `json:"nodes"`
}

type stepJSON struct {
	Step       int          `json:"step"`
	TotalBytes float64      `json:"total_bytes"`
	TotalMsgs  int          `json:"total_msgs"`
	Launches   []launchJSON `json:"launches"`
}

type reportJSON struct {
	App        string     `json:"app"`
	Nodes      int        `json:"nodes"`
	Steps      int        `json:"steps"`
	TotalBytes float64    `json:"total_bytes"`
	TotalMsgs  int        `json:"total_msgs"`
	Checked    bool       `json:"checked_vs_sequential"`
	PerStep    []stepJSON `json:"per_step"`
}

func nodeRows(nodes []sim.NodeStats) []nodeStatsJSON {
	rows := make([]nodeStatsJSON, len(nodes))
	for j, ns := range nodes {
		rows[j] = nodeStatsJSON{
			Node:        j,
			BufferElems: ns.BufferElems,
			BytesIn:     ns.BytesIn,
			BytesOut:    ns.BytesOut,
			MsgsIn:      ns.MsgsIn,
			MsgsOut:     ns.MsgsOut,
			FragsIn:     ns.FragsIn,
			FragsOut:    ns.FragsOut,
		}
	}
	return rows
}

func main() {
	app := flag.String("app", "", "builtin program to run (required)")
	nodes := flag.Int("nodes", 4, "number of executor nodes")
	steps := flag.Int("steps", 1, "main-loop iterations")
	minBytes := flag.Float64("min-bytes", 0, "fail unless at least this many bytes moved")
	noCheck := flag.Bool("no-check", false, "skip bit-identity check against the sequential executor")
	flag.Parse()

	build, ok := builders[*app]
	if !ok {
		names := make([]string, 0, len(builders))
		for name := range builders {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "run: unknown -app %q (have %v)\n", *app, names)
		os.Exit(2)
	}

	prog, err := build(*nodes)
	if err != nil {
		fatal(err)
	}
	res, err := exec.Run(prog, exec.Config{Nodes: *nodes, Steps: *steps})
	if err != nil {
		fatal(err)
	}

	if !*noCheck {
		want, err := exec.RunSequentialReference(prog, *steps)
		if err != nil {
			fatal(fmt.Errorf("sequential reference: %w", err))
		}
		for name, wr := range want.Regions {
			if same, diff := wr.SameData(res.Machine.Regions[name]); !same {
				fatal(fmt.Errorf("region %s diverges from sequential executor: %s", name, diff))
			}
		}
	}

	rep := reportJSON{
		App:        *app,
		Nodes:      *nodes,
		Steps:      *steps,
		TotalBytes: res.TotalBytes(),
		TotalMsgs:  res.TotalMsgs(),
		Checked:    !*noCheck,
	}
	for si, sc := range res.Steps {
		sj := stepJSON{Step: si, TotalBytes: sc.TotalBytes, TotalMsgs: sc.TotalMsgs}
		for _, lc := range sc.Launches {
			sj.Launches = append(sj.Launches, launchJSON{
				Name:       lc.Name,
				TotalBytes: lc.TotalBytes,
				TotalMsgs:  lc.TotalMsgs,
				Nodes:      nodeRows(lc.Nodes),
			})
		}
		rep.PerStep = append(rep.PerStep, sj)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	if rep.TotalBytes < *minBytes {
		fmt.Fprintf(os.Stderr, "run: moved %.0f bytes, below -min-bytes %.0f\n", rep.TotalBytes, *minBytes)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "run: %v\n", err)
	os.Exit(1)
}
