// Command run executes one of the builtin benchmark programs on the
// distributed SPMD executor (internal/exec): it compiles the program,
// solves its partitions for the requested node count, runs the task
// plan on that many goroutine-backed nodes with message-passing ghost
// exchange, verifies the result against the sequential executor, and
// prints the measured per-node communication statistics as JSON.
//
// Usage:
//
//	run -app circuit [-nodes 4] [-steps 2] [-transport inproc] [-size default] [-min-bytes 1] [-no-check]
//
// Apps: stencil, circuit, circuit-hint, spmv, miniaero, pennant-h2.
// Transports: inproc (default), tcp (loopback sockets with the compact
// wire encoding), flaky (inproc plus seeded random per-message latency,
// for chaos-testing delivery-order independence), proc (each node in
// its own OS process, bootstrapped by the internal/exec/cluster
// coordinator).
//
// -transport proc re-execs this binary as the worker (or the binary
// named by -node-bin, typically cmd/node). -crash-node N, with
// -crash-at-launch L, makes worker N exit abruptly when it first sends
// for launch L — the failure drill CI uses to assert a clean abort.
//
// A run that starts but fails (transport error, worker crash,
// divergence from the sequential reference) still prints the JSON
// report with its "error" field set, and exits nonzero.
//
// -size small selects the reduced per-node configurations the wide
// test matrix and cmd/execbench use, making high node counts (and the
// race detector) affordable; the partition geometry and protocol paths
// are the same as at default size.
// -min-bytes N exits nonzero unless at least N bytes of ghost/reduction
// traffic moved (CI smoke tests assert nonzero traffic this way).
// -no-check skips the bit-identity comparison against the sequential
// reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/exec"
	"autopart/internal/exec/cluster"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// builders maps app names to program constructors. Each compiles the
// app's source and instantiates it at the requested node count, at
// either the paper-scale default configuration or the reduced "small"
// one (same geometry and protocol paths, far fewer elements).
var builders = map[string]func(nodes int, small bool) (*exec.Program, error){
	"stencil": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(stencil.Source(), autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := stencil.DefaultConfig()
		if small {
			cfg = stencil.Config{Width: 128, RowsPerNode: 4}
		}
		return stencil.Executable(cfg, c, n)
	},
	"circuit": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(circuit.Source, autopart.Options{})
		if err != nil {
			return nil, err
		}
		return circuit.Executable(circuitConfig(small), c, n, false)
	},
	"circuit-hint": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(circuit.HintSource, autopart.Options{})
		if err != nil {
			return nil, err
		}
		return circuit.Executable(circuitConfig(small), c, n, true)
	},
	"spmv": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(spmv.Source, autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := spmv.DefaultConfig()
		if small {
			cfg = spmv.Config{RowsPerNode: 128, NnzPerRow: 8}
		}
		return spmv.Executable(cfg, c, n)
	},
	"miniaero": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(miniaero.Source(), autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := miniaero.DefaultConfig()
		if small {
			cfg = miniaero.Config{DX: 4, DY: 4, DZ: 4}
		}
		return miniaero.Executable(cfg, c, n)
	},
	"pennant-h2": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(pennant.HintSource(2), autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := pennant.DefaultConfig()
		if small {
			cfg = pennant.Config{W: 16, ZonesPerPiece: 128, Jitter: 16}
		}
		return pennant.Executable(cfg, c, n, 2)
	},
}

func circuitConfig(small bool) circuit.Config {
	if small {
		return circuit.Config{WiresPerCluster: 200, NodesPerCluster: 100, SharedFraction: 0.02, CrossFraction: 0.20}
	}
	return circuit.DefaultConfig()
}

// nodeStatsJSON is sim.NodeStats with JSON names (ComputeUnits is
// omitted: the executor measures communication, not compute).
type nodeStatsJSON struct {
	Node        int     `json:"node"`
	BufferElems float64 `json:"buffer_elems,omitempty"`
	BytesIn     float64 `json:"bytes_in"`
	BytesOut    float64 `json:"bytes_out"`
	MsgsIn      int     `json:"msgs_in"`
	MsgsOut     int     `json:"msgs_out"`
	FragsIn     int     `json:"frags_in"`
	FragsOut    int     `json:"frags_out"`
	WallNS      int64   `json:"wall_ns"`
	ComputeNS   int64   `json:"compute_ns"`
	OverlapNS   int64   `json:"overlap_ns"`
}

type launchJSON struct {
	Name       string  `json:"name"`
	TotalBytes float64 `json:"total_bytes"`
	TotalMsgs  int     `json:"total_msgs"`
	// OverlapRatio is compute time spent while at least one expected
	// receive was still outstanding, over total compute time, across
	// the launch's nodes.
	OverlapRatio float64         `json:"overlap_ratio"`
	Nodes        []nodeStatsJSON `json:"nodes"`
}

type stepJSON struct {
	Step       int          `json:"step"`
	TotalBytes float64      `json:"total_bytes"`
	TotalMsgs  int          `json:"total_msgs"`
	Launches   []launchJSON `json:"launches"`
}

type reportJSON struct {
	App          string  `json:"app"`
	Nodes        int     `json:"nodes"`
	Steps        int     `json:"steps"`
	Transport    string  `json:"transport"`
	TotalBytes   float64 `json:"total_bytes"`
	TotalMsgs    int     `json:"total_msgs"`
	OverlapRatio float64 `json:"overlap_ratio"`
	Checked      bool    `json:"checked_vs_sequential"`
	// Error is set when the run started but failed — a deferred
	// transport socket error, a crashed worker process, or divergence
	// from the sequential reference — and the exit status is nonzero.
	Error   string     `json:"error,omitempty"`
	PerStep []stepJSON `json:"per_step,omitempty"`
}

func nodeRows(nodes []sim.NodeStats, times []exec.NodeTiming) []nodeStatsJSON {
	rows := make([]nodeStatsJSON, len(nodes))
	for j, ns := range nodes {
		rows[j] = nodeStatsJSON{
			Node:        j,
			BufferElems: ns.BufferElems,
			BytesIn:     ns.BytesIn,
			BytesOut:    ns.BytesOut,
			MsgsIn:      ns.MsgsIn,
			MsgsOut:     ns.MsgsOut,
			FragsIn:     ns.FragsIn,
			FragsOut:    ns.FragsOut,
			WallNS:      times[j].WallNS,
			ComputeNS:   times[j].ComputeNS,
			OverlapNS:   times[j].OverlapNS,
		}
	}
	return rows
}

// overlapRatio is overlapped compute over total compute (0 when no
// compute was measured).
func overlapRatio(overlapNS, computeNS int64) float64 {
	if computeNS <= 0 {
		return 0
	}
	return float64(overlapNS) / float64(computeNS)
}

func main() {
	app := flag.String("app", "", "builtin program to run (required)")
	nodes := flag.Int("nodes", 4, "number of executor nodes")
	steps := flag.Int("steps", 1, "main-loop iterations")
	transport := flag.String("transport", "inproc", "message transport: inproc, tcp, flaky, or proc")
	size := flag.String("size", "default", "app configuration: default (paper scale) or small (test scale)")
	minBytes := flag.Float64("min-bytes", 0, "fail unless at least this many bytes moved")
	noCheck := flag.Bool("no-check", false, "skip bit-identity check against the sequential executor")
	nodeBin := flag.String("node-bin", "", "proc transport: worker binary (default: re-exec this binary)")
	crashNode := flag.Int("crash-node", -1, "proc transport: worker to crash mid-run (failure drill)")
	crashAtLaunch := flag.Int("crash-at-launch", -1, "launch index at which -crash-node dies (worker mode: this worker's own crash point)")
	procWorker := flag.Bool("proc-worker", false, "internal: serve as a spawned worker process")
	listen := flag.String("listen", "127.0.0.1:0", "worker mode: control listen address")
	flag.Parse()

	if *procWorker {
		os.Exit(workerMode(*listen, *crashAtLaunch))
	}

	build, ok := builders[*app]
	if !ok {
		names := make([]string, 0, len(builders))
		for name := range builders {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "run: unknown -app %q (have %v)\n", *app, names)
		os.Exit(2)
	}

	var tf exec.TransportFactory
	if *transport != "proc" {
		var err error
		tf, err = exec.TransportByName(*transport)
		if err != nil {
			fatal(err)
		}
	}
	if *size != "default" && *size != "small" {
		fmt.Fprintf(os.Stderr, "run: unknown -size %q (have default, small)\n", *size)
		os.Exit(2)
	}
	prog, err := build(*nodes, *size == "small")
	if err != nil {
		fatal(err)
	}

	rep := reportJSON{
		App:       *app,
		Nodes:     *nodes,
		Steps:     *steps,
		Transport: *transport,
	}
	var res *exec.Result
	if *transport == "proc" {
		res, err = procRun(prog, *nodes, *steps, *nodeBin, *crashNode, *crashAtLaunch)
	} else {
		res, err = exec.Run(prog, exec.Config{Nodes: *nodes, Steps: *steps, Transport: tf})
	}
	if err != nil {
		failJSON(rep, err)
	}

	if !*noCheck {
		want, err := exec.RunSequentialReference(prog, *steps)
		if err != nil {
			failJSON(rep, fmt.Errorf("sequential reference: %w", err))
		}
		for _, name := range sortedRegionNames(want.Regions) {
			if same, diff := want.Regions[name].SameData(res.Machine.Regions[name]); !same {
				failJSON(rep, fmt.Errorf("region %s diverges from sequential executor: %s", name, diff))
			}
		}
	}

	rep.TotalBytes = res.TotalBytes()
	rep.TotalMsgs = res.TotalMsgs()
	rep.Checked = !*noCheck
	var totOverlap, totCompute int64
	for si, sc := range res.Steps {
		sj := stepJSON{Step: si, TotalBytes: sc.TotalBytes, TotalMsgs: sc.TotalMsgs}
		for _, lc := range sc.Launches {
			var ov, cp int64
			for _, nt := range lc.Times {
				ov += nt.OverlapNS
				cp += nt.ComputeNS
			}
			totOverlap += ov
			totCompute += cp
			sj.Launches = append(sj.Launches, launchJSON{
				Name:         lc.Name,
				TotalBytes:   lc.TotalBytes,
				TotalMsgs:    lc.TotalMsgs,
				OverlapRatio: overlapRatio(ov, cp),
				Nodes:        nodeRows(lc.Nodes, lc.Times),
			})
		}
		rep.PerStep = append(rep.PerStep, sj)
	}
	rep.OverlapRatio = overlapRatio(totOverlap, totCompute)

	emitJSON(rep)

	if rep.TotalBytes < *minBytes {
		fmt.Fprintf(os.Stderr, "run: moved %.0f bytes, below -min-bytes %.0f\n", rep.TotalBytes, *minBytes)
		os.Exit(1)
	}
}

// workerMode is the hidden -proc-worker entry point: the process the
// proc transport spawns when no -node-bin is given re-execs this same
// binary, so a single build serves both roles.
func workerMode(listen string, crashAtLaunch int) int {
	opts := cluster.WorkerOptions{
		CrashFn: func() { os.Exit(3) },
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "run worker: "+format+"\n", args...)
		},
	}
	if crashAtLaunch >= 0 {
		opts.CrashAtLaunch = &crashAtLaunch
	}
	err := cluster.WorkerMain(listen, os.Stdout, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "run worker: %v\n", err)
		return 1
	}
	return 0
}

// procRun executes prog with each node in its own worker process.
func procRun(prog *exec.Program, nodes, steps int, nodeBin string, crashNode, crashAtLaunch int) (*exec.Result, error) {
	var command []string
	if nodeBin != "" {
		command = []string{nodeBin}
	} else {
		self, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("locate own binary for worker re-exec: %w", err)
		}
		command = []string{self, "-proc-worker"}
	}
	opts := cluster.SpawnOptions{Command: command}
	if crashNode >= 0 {
		if crashAtLaunch < 0 {
			crashAtLaunch = 0
		}
		opts.ExtraArgs = func(id int) []string {
			if id == crashNode {
				return []string{"-crash-at-launch", strconv.Itoa(crashAtLaunch)}
			}
			return nil
		}
	}
	return cluster.Spawn(prog, exec.Config{Nodes: nodes, Steps: steps}, opts)
}

func sortedRegionNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func emitJSON(rep reportJSON) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// failJSON renders the failure into the run's JSON report — so callers
// parsing stdout see the error, not just a silent nonzero exit — and
// exits nonzero.
func failJSON(rep reportJSON, err error) {
	rep.Error = err.Error()
	emitJSON(rep)
	fmt.Fprintf(os.Stderr, "run: %v\n", err)
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "run: %v\n", err)
	os.Exit(1)
}
