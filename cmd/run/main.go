// Command run executes one of the builtin benchmark programs on the
// distributed SPMD executor (internal/exec): it compiles the program,
// solves its partitions for the requested node count, runs the task
// plan on that many goroutine-backed nodes with message-passing ghost
// exchange, verifies the result against the sequential executor, and
// prints the measured per-node communication statistics as JSON.
//
// Usage:
//
//	run -app circuit [-nodes 4] [-steps 2] [-transport inproc] [-size default] [-min-bytes 1] [-no-check]
//
// Apps: stencil, circuit, circuit-hint, spmv, miniaero, pennant-h2.
// Transports: inproc (default), tcp (loopback sockets with the compact
// wire encoding), flaky (inproc plus seeded random per-message latency,
// for chaos-testing delivery-order independence).
//
// -size small selects the reduced per-node configurations the wide
// test matrix and cmd/execbench use, making high node counts (and the
// race detector) affordable; the partition geometry and protocol paths
// are the same as at default size.
// -min-bytes N exits nonzero unless at least N bytes of ghost/reduction
// traffic moved (CI smoke tests assert nonzero traffic this way).
// -no-check skips the bit-identity comparison against the sequential
// reference.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/exec"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// builders maps app names to program constructors. Each compiles the
// app's source and instantiates it at the requested node count, at
// either the paper-scale default configuration or the reduced "small"
// one (same geometry and protocol paths, far fewer elements).
var builders = map[string]func(nodes int, small bool) (*exec.Program, error){
	"stencil": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(stencil.Source(), autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := stencil.DefaultConfig()
		if small {
			cfg = stencil.Config{Width: 128, RowsPerNode: 4}
		}
		return stencil.Executable(cfg, c, n)
	},
	"circuit": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(circuit.Source, autopart.Options{})
		if err != nil {
			return nil, err
		}
		return circuit.Executable(circuitConfig(small), c, n, false)
	},
	"circuit-hint": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(circuit.HintSource, autopart.Options{})
		if err != nil {
			return nil, err
		}
		return circuit.Executable(circuitConfig(small), c, n, true)
	},
	"spmv": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(spmv.Source, autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := spmv.DefaultConfig()
		if small {
			cfg = spmv.Config{RowsPerNode: 128, NnzPerRow: 8}
		}
		return spmv.Executable(cfg, c, n)
	},
	"miniaero": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(miniaero.Source(), autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := miniaero.DefaultConfig()
		if small {
			cfg = miniaero.Config{DX: 4, DY: 4, DZ: 4}
		}
		return miniaero.Executable(cfg, c, n)
	},
	"pennant-h2": func(n int, small bool) (*exec.Program, error) {
		c, err := autopart.Compile(pennant.HintSource(2), autopart.Options{})
		if err != nil {
			return nil, err
		}
		cfg := pennant.DefaultConfig()
		if small {
			cfg = pennant.Config{W: 16, ZonesPerPiece: 128, Jitter: 16}
		}
		return pennant.Executable(cfg, c, n, 2)
	},
}

func circuitConfig(small bool) circuit.Config {
	if small {
		return circuit.Config{WiresPerCluster: 200, NodesPerCluster: 100, SharedFraction: 0.02, CrossFraction: 0.20}
	}
	return circuit.DefaultConfig()
}

// nodeStatsJSON is sim.NodeStats with JSON names (ComputeUnits is
// omitted: the executor measures communication, not compute).
type nodeStatsJSON struct {
	Node        int     `json:"node"`
	BufferElems float64 `json:"buffer_elems,omitempty"`
	BytesIn     float64 `json:"bytes_in"`
	BytesOut    float64 `json:"bytes_out"`
	MsgsIn      int     `json:"msgs_in"`
	MsgsOut     int     `json:"msgs_out"`
	FragsIn     int     `json:"frags_in"`
	FragsOut    int     `json:"frags_out"`
	WallNS      int64   `json:"wall_ns"`
	ComputeNS   int64   `json:"compute_ns"`
	OverlapNS   int64   `json:"overlap_ns"`
}

type launchJSON struct {
	Name       string  `json:"name"`
	TotalBytes float64 `json:"total_bytes"`
	TotalMsgs  int     `json:"total_msgs"`
	// OverlapRatio is compute time spent while at least one expected
	// receive was still outstanding, over total compute time, across
	// the launch's nodes.
	OverlapRatio float64         `json:"overlap_ratio"`
	Nodes        []nodeStatsJSON `json:"nodes"`
}

type stepJSON struct {
	Step       int          `json:"step"`
	TotalBytes float64      `json:"total_bytes"`
	TotalMsgs  int          `json:"total_msgs"`
	Launches   []launchJSON `json:"launches"`
}

type reportJSON struct {
	App          string     `json:"app"`
	Nodes        int        `json:"nodes"`
	Steps        int        `json:"steps"`
	Transport    string     `json:"transport"`
	TotalBytes   float64    `json:"total_bytes"`
	TotalMsgs    int        `json:"total_msgs"`
	OverlapRatio float64    `json:"overlap_ratio"`
	Checked      bool       `json:"checked_vs_sequential"`
	PerStep      []stepJSON `json:"per_step"`
}

func nodeRows(nodes []sim.NodeStats, times []exec.NodeTiming) []nodeStatsJSON {
	rows := make([]nodeStatsJSON, len(nodes))
	for j, ns := range nodes {
		rows[j] = nodeStatsJSON{
			Node:        j,
			BufferElems: ns.BufferElems,
			BytesIn:     ns.BytesIn,
			BytesOut:    ns.BytesOut,
			MsgsIn:      ns.MsgsIn,
			MsgsOut:     ns.MsgsOut,
			FragsIn:     ns.FragsIn,
			FragsOut:    ns.FragsOut,
			WallNS:      times[j].WallNS,
			ComputeNS:   times[j].ComputeNS,
			OverlapNS:   times[j].OverlapNS,
		}
	}
	return rows
}

// overlapRatio is overlapped compute over total compute (0 when no
// compute was measured).
func overlapRatio(overlapNS, computeNS int64) float64 {
	if computeNS <= 0 {
		return 0
	}
	return float64(overlapNS) / float64(computeNS)
}

func main() {
	app := flag.String("app", "", "builtin program to run (required)")
	nodes := flag.Int("nodes", 4, "number of executor nodes")
	steps := flag.Int("steps", 1, "main-loop iterations")
	transport := flag.String("transport", "inproc", "message transport: inproc, tcp, or flaky")
	size := flag.String("size", "default", "app configuration: default (paper scale) or small (test scale)")
	minBytes := flag.Float64("min-bytes", 0, "fail unless at least this many bytes moved")
	noCheck := flag.Bool("no-check", false, "skip bit-identity check against the sequential executor")
	flag.Parse()

	build, ok := builders[*app]
	if !ok {
		names := make([]string, 0, len(builders))
		for name := range builders {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(os.Stderr, "run: unknown -app %q (have %v)\n", *app, names)
		os.Exit(2)
	}

	tf, err := exec.TransportByName(*transport)
	if err != nil {
		fatal(err)
	}
	if *size != "default" && *size != "small" {
		fmt.Fprintf(os.Stderr, "run: unknown -size %q (have default, small)\n", *size)
		os.Exit(2)
	}
	prog, err := build(*nodes, *size == "small")
	if err != nil {
		fatal(err)
	}
	res, err := exec.Run(prog, exec.Config{Nodes: *nodes, Steps: *steps, Transport: tf})
	if err != nil {
		fatal(err)
	}

	if !*noCheck {
		want, err := exec.RunSequentialReference(prog, *steps)
		if err != nil {
			fatal(fmt.Errorf("sequential reference: %w", err))
		}
		for name, wr := range want.Regions {
			if same, diff := wr.SameData(res.Machine.Regions[name]); !same {
				fatal(fmt.Errorf("region %s diverges from sequential executor: %s", name, diff))
			}
		}
	}

	rep := reportJSON{
		App:        *app,
		Nodes:      *nodes,
		Steps:      *steps,
		Transport:  *transport,
		TotalBytes: res.TotalBytes(),
		TotalMsgs:  res.TotalMsgs(),
		Checked:    !*noCheck,
	}
	var totOverlap, totCompute int64
	for si, sc := range res.Steps {
		sj := stepJSON{Step: si, TotalBytes: sc.TotalBytes, TotalMsgs: sc.TotalMsgs}
		for _, lc := range sc.Launches {
			var ov, cp int64
			for _, nt := range lc.Times {
				ov += nt.OverlapNS
				cp += nt.ComputeNS
			}
			totOverlap += ov
			totCompute += cp
			sj.Launches = append(sj.Launches, launchJSON{
				Name:         lc.Name,
				TotalBytes:   lc.TotalBytes,
				TotalMsgs:    lc.TotalMsgs,
				OverlapRatio: overlapRatio(ov, cp),
				Nodes:        nodeRows(lc.Nodes, lc.Times),
			})
		}
		rep.PerStep = append(rep.PerStep, sj)
	}
	rep.OverlapRatio = overlapRatio(totOverlap, totCompute)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	if rep.TotalBytes < *minBytes {
		fmt.Fprintf(os.Stderr, "run: moved %.0f bytes, below -min-bytes %.0f\n", rep.TotalBytes, *minBytes)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "run: %v\n", err)
	os.Exit(1)
}
