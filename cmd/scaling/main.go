// Command scaling regenerates the weak-scaling figures of the paper's
// evaluation (Fig. 14a–e) on the simulated cluster and prints the series
// as a text table.
//
// Usage:
//
//	scaling -fig 14a [-nodes 1,2,4,...,256]
//	scaling -fig all
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/sim"
)

func main() {
	figFlag := flag.String("fig", "all", "figure to regenerate: 14a, 14b, 14c, 14d, 14e, or all")
	nodesFlag := flag.String("nodes", "1,2,4,8,16,32,64", "comma-separated node counts")
	flag.Parse()

	nodes, err := parseNodes(*nodesFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "scaling:", err)
		os.Exit(1)
	}

	figs := []string{"14a", "14b", "14c", "14d", "14e"}
	if *figFlag != "all" {
		figs = []string{*figFlag}
	}
	for _, id := range figs {
		fig, err := run(id, nodes)
		if err != nil {
			fmt.Fprintln(os.Stderr, "scaling:", err)
			os.Exit(1)
		}
		fmt.Println(fig.Render())
	}
}

func run(id string, nodes []int) (sim.Figure, error) {
	switch id {
	case "14a":
		cfg := spmv.DefaultConfig()
		model := sim.ModelFor(float64(cfg.RowsPerNode*cfg.NnzPerRow), spmv.RealIterSeconds)
		return spmv.Figure14a(cfg, model, nodes)
	case "14b":
		cfg := stencil.DefaultConfig()
		model := sim.ModelFor(float64(cfg.PointsPerNode())*9, stencil.RealIterSeconds)
		return stencil.Figure14b(cfg, model, nodes)
	case "14c":
		cfg := miniaero.DefaultConfig()
		model := sim.ModelFor(float64(cfg.CellsPerNode())*30, miniaero.RealIterSeconds)
		return miniaero.Figure14c(cfg, model, nodes)
	case "14d":
		cfg := circuit.DefaultConfig()
		model := sim.ModelFor(float64(cfg.WiresPerCluster)*10, circuit.RealIterSeconds)
		return circuit.Figure14d(cfg, model, nodes)
	case "14e":
		cfg := pennant.DefaultConfig()
		model := sim.ModelFor(float64(cfg.ZonesPerPiece)*4*20, pennant.RealIterSeconds)
		return pennant.Figure14e(cfg, model, nodes)
	default:
		return sim.Figure{}, fmt.Errorf("unknown figure %q", id)
	}
}

func parseNodes(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad node count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}
