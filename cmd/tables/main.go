// Command tables regenerates Table 1 of the paper: the compile-time
// breakdown (constraint inference, constraint solver, code rewrite) for
// each benchmark program, along with the number of auto-parallelized
// loops. Binary generation is not reproduced (no GPU backend) and is
// reported as n/a.
package main

import (
	"fmt"
	"os"
	"time"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/pkg/autopart"
)

func main() {
	apps := []struct {
		name string
		src  string
	}{
		{"SpMV", spmv.Source},
		{"Stencil", stencil.Source()},
		{"Circuit", circuit.Source},
		{"MiniAero", miniaero.Source()},
		{"PENNANT", pennant.Source()},
	}

	type row struct {
		name   string
		timing autopart.Timing
		loops  int
	}
	rows := make([]row, 0, len(apps))
	for _, app := range apps {
		// Warm once, then measure the best of three runs (compile times
		// jitter at the microsecond scale).
		var best autopart.Timing
		var loops int
		for i := 0; i < 4; i++ {
			c, err := autopart.Compile(app.src, autopart.Options{})
			if err != nil {
				fmt.Fprintf(os.Stderr, "tables: %s: %v\n", app.name, err)
				os.Exit(1)
			}
			loops = len(c.Parallel)
			if i == 1 || (i > 1 && c.Timing.Total() < best.Total()) {
				best = c.Timing
			}
		}
		rows = append(rows, row{app.name, best, loops})
	}

	fmt.Println("Table 1: Compilation time breakdown")
	fmt.Printf("%-22s", "")
	for _, r := range rows {
		fmt.Printf(" %10s", r.name)
	}
	fmt.Println()
	line := func(label string, f func(row) string) {
		fmt.Printf("%-22s", label)
		for _, r := range rows {
			fmt.Printf(" %10s", f(r))
		}
		fmt.Println()
	}
	ms := func(d time.Duration) string { return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000) }
	line("Constraint inference", func(r row) string { return ms(r.timing.Inference) })
	line("Constraint solver", func(r row) string { return ms(r.timing.Solver) })
	line("Code rewrite", func(r row) string { return ms(r.timing.Rewrite) })
	line("Binary generation", func(row) string { return "n/a" })
	line("Total", func(r row) string { return ms(r.timing.Total()) })
	line("Num. parallel loops", func(r row) string { return fmt.Sprintf("%d", r.loops) })
}
