// External demonstrates §3.3: composing auto-parallelized code with
// manually parallelized parts through external constraints. Without
// hints, the solver synthesizes fresh equal partitions; with the Fig. 4
// invariant asserted on user-provided partitions, it reuses them and
// derives only the halo (Example 6).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/pkg/autopart"
)

const plain = `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells

for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`

// hinted adds the Fig. 4 invariant: pCells[i] contains every cell the
// particles of pParticles[i] point to. The manual particle-exchange code
// (modeled below in Go) maintains it.
const hinted = plain + `
extern partition pParticles of Particles
extern partition pCells of Cells
assert image(pParticles, Particles.cell, Cells) <= pCells
assert disjoint(pParticles)
assert complete(pParticles, Particles)
assert disjoint(pCells)
assert complete(pCells, Cells)
`

func buildMachine(nParticles, nCells int64) *ir.Machine {
	rng := rand.New(rand.NewSource(7))
	particles := region.New("Particles", nParticles)
	particles.AddIndexField("cell")
	particles.AddScalarField("pos")
	cells := region.New("Cells", nCells)
	cells.AddScalarField("vel")
	cells.AddScalarField("acc")
	cellOf := particles.Index("cell")
	for i := range cellOf {
		cellOf[i] = rng.Int63n(nCells)
	}
	m := ir.NewMachine().AddRegion(particles).AddRegion(cells)
	m.AddFunc("h", geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: nCells})
	return m
}

// exchangeParticles is the manually parallelized part (Fig. 4): it
// "sends" each particle to the owner of its cell by rebuilding
// pParticles as the preimage of pCells — exactly the invariant the
// assertion states.
func exchangeParticles(m *ir.Machine, pCells *region.Partition) *region.Partition {
	particles := m.Regions["Particles"]
	return region.Preimage("pParticles", particles, particles.PointerMap("cell"), pCells)
}

func main() {
	cPlain, err := autopart.Compile(plain, autopart.Options{})
	if err != nil {
		log.Fatal(err)
	}
	cHinted, err := autopart.Compile(hinted, autopart.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Without external constraints, the solver creates fresh partitions:")
	fmt.Println(cPlain.Solution.Program.String())

	fmt.Println("\nWith the Fig. 4 invariant, it reuses pParticles/pCells and")
	fmt.Println("derives only the halo (Example 6):")
	fmt.Println(cHinted.Solution.Program.String())

	// Run the hinted version: the manual exchange maintains the
	// invariant, the auto-parallelized loops use the user partitions.
	const colors = 4
	m := buildMachine(300, 60)
	pCells := region.Equal("pCells", m.Regions["Cells"], colors)
	pParticles := exchangeParticles(m, pCells)

	seq := buildMachine(300, 60)
	if err := cHinted.RunSequential(seq); err != nil {
		log.Fatal(err)
	}
	err = cHinted.RunParallel(m, colors, map[string]*region.Partition{
		"pParticles": pParticles,
		"pCells":     pCells,
	})
	if err != nil {
		log.Fatal(err)
	}
	for name, r := range seq.Regions {
		if same, diff := r.SameData(m.Regions[name]); !same {
			log.Fatalf("divergence on %s: %s", name, diff)
		}
	}
	fmt.Println("\nMixed manual + auto-parallelized execution matches sequential ✓")
}
