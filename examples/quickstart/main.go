// Quickstart walks through the paper's running example (Fig. 1): a
// particles-and-cells program is auto-parallelized end to end — the
// constraints of Fig. 1c are inferred, the solver synthesizes the
// fewest-partitions strategy of Fig. 2b (program B), the partitions are
// evaluated on concrete data, and the parallel execution is checked
// against the sequential reference.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/pkg/autopart"
)

const source = `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells

for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`

func buildMachine(nParticles, nCells int64) *ir.Machine {
	rng := rand.New(rand.NewSource(42))
	particles := region.New("Particles", nParticles)
	particles.AddIndexField("cell")
	particles.AddScalarField("pos")
	cells := region.New("Cells", nCells)
	cells.AddScalarField("vel")
	cells.AddScalarField("acc")
	cellOf := particles.Index("cell")
	for i := range cellOf {
		cellOf[i] = rng.Int63n(nCells)
	}
	vel := cells.Scalar("vel")
	acc := cells.Scalar("acc")
	for i := range vel {
		vel[i] = float64(rng.Intn(100))
		acc[i] = float64(rng.Intn(100))
	}
	m := ir.NewMachine().AddRegion(particles).AddRegion(cells)
	m.AddFunc("h", geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: nCells})
	return m
}

func main() {
	// 1. Compile: infer the partitioning constraints and solve them.
	c, err := autopart.Compile(source, autopart.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Inferred constraints (Fig. 1c):")
	for i, plan := range c.Plans {
		fmt.Printf("  loop %d: %s\n", i, plan.Sys)
	}
	fmt.Println("\nSynthesized DPL program (Fig. 2b, program B):")
	fmt.Println(c.Solution.Program.String())

	// 2. Evaluate the partitions on concrete data with 4 colors.
	const colors = 4
	m := buildMachine(200, 50)
	ctx, err := c.NewContext(colors, m)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := c.Evaluate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nEvaluated partitions:")
	for _, st := range c.Solution.Program.Stmts {
		p := parts[st.Name]
		fmt.Printf("  %s of %s: disjoint=%v complete=%v\n",
			st.Name, p.Parent().Name(), p.IsDisjoint(), p.IsComplete())
	}

	// 3. Run in parallel and compare with the sequential reference.
	seq := buildMachine(200, 50)
	if err := c.RunSequential(seq); err != nil {
		log.Fatal(err)
	}
	if err := c.RunParallel(m, colors, nil); err != nil {
		log.Fatal(err)
	}
	for name, r := range seq.Regions {
		if same, diff := r.SameData(m.Regions[name]); !same {
			log.Fatalf("parallel execution diverged on %s: %s", name, diff)
		}
	}
	fmt.Println("\nParallel execution matches the sequential reference ✓")
}
