// Reductions demonstrates the §5 optimizations. A loop with two
// uncentered reductions (Fig. 11a) normally needs a disjoint iteration
// partition and reduction buffers; the §5.1 relaxation instead guards
// the reductions and lets the iteration space be an aliased union of
// preimages, eliminating the buffers. When relaxation is off, the §5.2
// private sub-partitions (Theorem 5.1) shrink the buffers to the truly
// shared elements.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/pkg/autopart"
)

const multiReduce = `
region R { v: scalar }
region S { w: scalar }
function f : R -> S
function g : R -> S
for i in R {
  S[f(i)].w += R[i].v
  S[g(i)].w += R[i].v
}
`

const pointerReduce = `
region Faces { c1: index(Cells), flux: scalar }
region Cells { res: scalar }
for fc in Faces {
  Cells[Faces[fc].c1].res += Faces[fc].flux
}
for fc2 in Faces {
  Faces[fc2].flux = damp(Faces[fc2].flux)
}
`

func main() {
	// --- §5.1: relaxation.
	relaxed, err := autopart.Compile(multiReduce, autopart.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 11a loop with two uncentered reductions, relaxed (§5.1):")
	fmt.Printf("  relaxed: %v, guarded reductions: %v\n",
		relaxed.Plans[0].Relaxed, relaxed.Plans[0].GuardedSyms)
	fmt.Println("  iteration partition is an aliased union of preimages:")
	fmt.Println("  " + relaxed.Solution.Program.String())

	buffered, err := autopart.Compile(multiReduce, autopart.Options{DisableRelaxation: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSame loop with relaxation disabled (buffers + DISJ iteration):")
	fmt.Println("  " + buffered.Solution.Program.String())

	// Both must agree with the sequential execution.
	for name, c := range map[string]*autopart.Compiled{"relaxed": relaxed, "buffered": buffered} {
		seq := buildMulti(90)
		par := buildMulti(90)
		if err := c.RunSequential(seq); err != nil {
			log.Fatal(err)
		}
		if err := c.RunParallel(par, 5, nil); err != nil {
			log.Fatal(err)
		}
		for rn, r := range seq.Regions {
			if same, diff := r.SameData(par.Regions[rn]); !same {
				log.Fatalf("%s diverged on %s: %s", name, rn, diff)
			}
		}
		fmt.Printf("  %s execution matches sequential ✓\n", name)
	}

	// --- §5.2: private sub-partitions. The second loop iterating Faces
	// has no reduction, so the Faces group cannot be relaxed and the
	// reduction partition gets a Theorem 5.1 private sub-partition.
	priv, err := autopart.Compile(pointerReduce, autopart.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nPointer-chain reduction (unrelaxable): Theorem 5.1 applies:")
	fmt.Println("  " + priv.Solution.Program.String())
	fmt.Println("  private sub-partitions:")
	fmt.Println("  " + priv.Private.Extra.String())

	// Evaluate and show how much of the reduction partition is private
	// (needs no buffer).
	m := buildFaces(120, 40)
	ctx, err := priv.NewContext(4, m)
	if err != nil {
		log.Fatal(err)
	}
	parts, err := priv.Evaluate(ctx)
	if err != nil {
		log.Fatal(err)
	}
	for sym, privSym := range priv.Private.PrivateOf {
		full := parts[sym]
		sub := parts[privSym]
		var fullN, privN int64
		for i := 0; i < full.NumSubs(); i++ {
			fullN += full.Sub(i).Len()
			privN += sub.Sub(i).Len()
		}
		fmt.Printf("  reduction partition %s: %d elements, %d private (buffer shrinks to %d)\n",
			sym, fullN, privN, fullN-privN)
	}
}

func buildMulti(n int64) *ir.Machine {
	rng := rand.New(rand.NewSource(1))
	r := region.New("R", n)
	r.AddScalarField("v")
	s := region.New("S", n)
	s.AddScalarField("w")
	for i := range r.Scalar("v") {
		r.Scalar("v")[i] = float64(rng.Intn(50))
	}
	m := ir.NewMachine().AddRegion(r).AddRegion(s)
	m.AddFunc("f", geometry.AffineMap{Name: "f", Stride: 1, Offset: 3, Modulo: n})
	m.AddFunc("g", geometry.AffineMap{Name: "g", Stride: 1, Offset: -5, Modulo: n})
	return m
}

func buildFaces(nFaces, nCells int64) *ir.Machine {
	rng := rand.New(rand.NewSource(2))
	faces := region.New("Faces", nFaces)
	faces.AddIndexField("c1")
	faces.AddScalarField("flux")
	cells := region.New("Cells", nCells)
	cells.AddScalarField("res")
	c1 := faces.Index("c1")
	for i := range c1 {
		c1[i] = rng.Int63n(nCells)
	}
	return ir.NewMachine().AddRegion(faces).AddRegion(cells)
}
