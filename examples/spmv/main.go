// SpMV demonstrates the generalized IMAGE operator (§4): the CSR kernel
// of Fig. 10a has a data-dependent inner loop, and the solver derives
// the matrix and vector partitions through the Ranges map, reproducing
// the DPL program of Fig. 10b. The example then runs the simulated
// weak-scaling experiment of Fig. 14a.
package main

import (
	"fmt"
	"log"

	"autopart/internal/apps/spmv"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

func main() {
	c, err := autopart.Compile(spmv.Source, autopart.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SpMV kernel (Fig. 10a):")
	fmt.Print(spmv.Source)
	fmt.Println("Synthesized DPL program (Fig. 10b):")
	fmt.Println(c.Solution.Program.String())

	// Validate against the sequential reference on a small matrix.
	cfg := spmv.Config{RowsPerNode: 64, NnzPerRow: 8}
	seq := spmv.BuildMachine(cfg, 2)
	par := spmv.BuildMachine(cfg, 2)
	if err := c.RunSequential(seq); err != nil {
		log.Fatal(err)
	}
	if err := c.RunParallel(par, 4, nil); err != nil {
		log.Fatal(err)
	}
	for name, r := range seq.Regions {
		if same, diff := r.SameData(par.Regions[name]); !same {
			log.Fatalf("divergence on %s: %s", name, diff)
		}
	}
	fmt.Println("Parallel SpMV matches the sequential reference ✓")

	// Weak scaling (Fig. 14a).
	full := spmv.DefaultConfig()
	model := sim.ModelFor(float64(full.RowsPerNode*full.NnzPerRow), spmv.RealIterSeconds)
	fig, err := spmv.Figure14a(full, model, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(fig.Render())
}
