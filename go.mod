module autopart

go 1.22
