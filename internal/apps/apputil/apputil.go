// Package apputil provides the scaffolding the five benchmark
// applications share: running the auto-parallelization pipeline against
// a concrete workload and extracting the launches and partitions the
// cost model consumes.
package apputil

import (
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/runtime"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// Auto bundles an auto-parallelized benchmark instance: the compiled
// program, its evaluated partitions at a node count, and the runtime
// launches.
type Auto struct {
	Compiled *autopart.Compiled
	Parts    map[string]*region.Partition
	Launches []*runtime.Launch
	// Plan pairs each launch with its rewritten loop for the distributed
	// executor; Launches aliases its launch list.
	Plan *runtime.Plan
}

// BuildAuto compiles src, evaluates its partitions over machine m with
// one color per node, and converts every parallel loop to a launch.
func BuildAuto(src string, m *ir.Machine, nodes int, external map[string]*region.Partition, opts autopart.Options) (*Auto, error) {
	c, err := autopart.Compile(src, opts)
	if err != nil {
		return nil, err
	}
	return InstantiateAuto(c, m, nodes, external)
}

// InstantiateAuto evaluates an already-compiled program against a
// machine (compilation is node-count independent; evaluation is not).
func InstantiateAuto(c *autopart.Compiled, m *ir.Machine, nodes int, external map[string]*region.Partition) (*Auto, error) {
	ctx, err := c.NewContext(nodes, m)
	if err != nil {
		return nil, err
	}
	for sym, p := range external {
		ctx.Bind(sym, p)
	}
	parts, err := c.Evaluate(ctx)
	if err != nil {
		return nil, err
	}
	a := &Auto{Compiled: c, Parts: parts, Plan: runtime.NewPlan(c.Parallel)}
	a.Launches = a.Plan.Launches()
	return a, nil
}

// IterSym returns the canonical iteration partition symbol of a loop.
func (a *Auto) IterSym(loop int) string {
	return a.Compiled.Parallel[loop].IterSym
}

// AccessSym finds the canonical partition symbol of the first access in
// a loop matching region (and kind, unless kind is -1).
func (a *Auto) AccessSym(loop int, regionName string, kind infer.AccessKind) (string, bool) {
	for _, info := range a.Compiled.Parallel[loop].Access {
		if info.Region == regionName && (kind < 0 || info.Kind == kind) {
			return info.Sym, true
		}
	}
	return "", false
}

// Partition looks up an evaluated partition by canonical symbol.
func (a *Auto) Partition(sym string) (*region.Partition, bool) {
	p, ok := a.Parts[sym]
	return p, ok
}

// MeasureIterations runs warmup+1 iterations of the launches and returns
// the steady-state iteration stats (the paper measures after programs
// reach a steady state).
func MeasureIterations(model sim.Model, launches []*runtime.Launch, parts map[string]*region.Partition, st *sim.State, warmup int) (sim.IterationStats, error) {
	var stats sim.IterationStats
	var err error
	for i := 0; i <= warmup; i++ {
		stats, err = model.RunIteration(launches, parts, st)
		if err != nil {
			return stats, err
		}
	}
	return stats, nil
}
