package apputil

import (
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

const src = `
region R { v: scalar, w: scalar }
function h : R -> R
for i in R {
  R[i].v += R[h(i)].w
}
`

func machine(n int64) *ir.Machine {
	r := region.New("R", n)
	r.AddScalarField("v")
	r.AddScalarField("w")
	m := ir.NewMachine().AddRegion(r)
	m.AddFunc("h", geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: n})
	return m
}

func TestBuildAuto(t *testing.T) {
	m := machine(64)
	auto, err := BuildAuto(src, m, 4, nil, autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(auto.Launches) != 1 {
		t.Fatalf("launches = %d", len(auto.Launches))
	}
	iter := auto.IterSym(0)
	p, ok := auto.Partition(iter)
	if !ok || p.NumSubs() != 4 {
		t.Fatalf("iteration partition: %v, %v", p, ok)
	}
	if !p.IsDisjoint() || !p.IsComplete() {
		t.Error("iteration partition must be disjoint and complete")
	}
	if _, ok := auto.Partition("nope"); ok {
		t.Error("unknown partition lookup should fail")
	}
	if sym, ok := auto.AccessSym(0, "R", infer.ReadAccess); !ok || sym == "" {
		t.Errorf("AccessSym = %q, %v", sym, ok)
	}
	if _, ok := auto.AccessSym(0, "Nope", -1); ok {
		t.Error("AccessSym for unknown region should fail")
	}
}

func TestMeasureIterations(t *testing.T) {
	m := machine(64)
	auto, err := BuildAuto(src, m, 4, nil, autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	iter := auto.Parts[auto.IterSym(0)]
	st := sim.NewState().OwnAll("R", []string{"v", "w"}, iter)
	model := sim.ModelFor(64, 0.05)
	stats, err := MeasureIterations(model, auto.Launches, auto.Parts, st, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Time <= 0 {
		t.Error("iteration time should be positive")
	}
}

func TestBuildAutoErrors(t *testing.T) {
	if _, err := BuildAuto("region R {", machine(8), 2, nil, autopart.Options{}); err == nil {
		t.Error("parse error should propagate")
	}
	// Machine missing the region.
	if _, err := BuildAuto(src, ir.NewMachine(), 2, nil, autopart.Options{}); err == nil {
		t.Error("missing region should propagate")
	}
}
