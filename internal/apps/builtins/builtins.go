// Package builtins names the benchmark programs baked into the tree so
// drivers (cmd/apc, cmd/apcd, benchmarks, tests) resolve them uniformly
// without each re-importing the five application packages.
package builtins

import (
	"sort"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
)

// sources maps builtin names to DSL source text. The thunks exist
// because some applications generate their source.
var sources = map[string]func() string{
	"spmv":         func() string { return spmv.Source },
	"stencil":      stencil.Source,
	"circuit":      func() string { return circuit.Source },
	"circuit-hint": func() string { return circuit.HintSource },
	"miniaero":     miniaero.Source,
	"pennant":      pennant.Source,
}

// Source resolves a builtin name to its DSL source and display file
// name ("builtin:spmv").
func Source(name string) (src, file string, ok bool) {
	f, ok := sources[name]
	if !ok {
		return "", "", false
	}
	return f(), "builtin:" + name, true
}

// Names lists the builtin names in sorted order.
func Names() []string {
	out := make([]string, 0, len(sources))
	for name := range sources {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
