// Package circuit is the Circuit benchmark of §6.4 (Fig. 14d): current
// simulation over an unstructured graph of wires and nodes. The graph
// generator reproduces the paper's layout: circuit nodes form clusters
// (one per compute node in weak scaling), at most 20% of wires touch
// "shared" nodes, and the shared nodes occupy the first ~1% of the node
// region — which is exactly what sinks the hint-less auto version: an
// equal partition of nodes concentrates every shared node in the first
// subregion, making its owner a communication bottleneck.
//
// Three parallel loops form the main loop (Table 1): calculate new
// currents, distribute charge (two uncentered reductions through the
// wire endpoints), and update voltages.
package circuit

import (
	"fmt"

	"autopart/internal/apps/apputil"
	"autopart/internal/exec"
	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/runtime"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// Source is the three-loop circuit kernel.
const Source = `
region Wires { in_node: index(Nodes), out_node: index(Nodes), current: scalar, resistance: scalar }
region Nodes { voltage: scalar, charge: scalar, capacitance: scalar }

for w in Wires {
  Wires[w].current = cur(Nodes[Wires[w].in_node].voltage, Nodes[Wires[w].out_node].voltage, Wires[w].resistance)
}
for w in Wires {
  Nodes[Wires[w].in_node].charge += Wires[w].current
  Nodes[Wires[w].out_node].charge += 0 - Wires[w].current
}
for n in Nodes {
  Nodes[n].voltage = vlt(Nodes[n].voltage, Nodes[n].charge, Nodes[n].capacitance)
  Nodes[n].charge = 0
}
`

// HintSource is Source plus the §6.4 user constraint: the generator's
// private/shared node partitions form a disjoint, complete partition of
// Nodes.
const HintSource = Source + `
extern partition pn_private of Nodes
extern partition pn_shared of Nodes
assert disjoint(pn_private + pn_shared)
assert complete(pn_private + pn_shared, Nodes)
`

// RealIterSeconds is the real system's per-node iteration time implied
// by Fig. 14d (1e5 wires/node at ~5e6 wires/s/node).
const RealIterSeconds = 0.02

// Config sizes the workload.
type Config struct {
	// WiresPerCluster is the wire count per cluster (= per node).
	WiresPerCluster int64
	// NodesPerCluster is the circuit-node count per cluster.
	NodesPerCluster int64
	// SharedFraction is the fraction of each cluster's nodes that are
	// shared (boundary) nodes, placed at the front of the region (the
	// paper's ~1%).
	SharedFraction float64
	// CrossFraction is the fraction of wires connecting to shared nodes
	// (the paper's ≤20%).
	CrossFraction float64
}

// DefaultConfig stands in for the paper's 1e5 wires per node.
func DefaultConfig() Config {
	return Config{
		WiresPerCluster: 2000,
		NodesPerCluster: 1000,
		SharedFraction:  0.02,
		CrossFraction:   0.20,
	}
}

// Graph is the generated circuit with the generator's partitions.
type Graph struct {
	Machine *ir.Machine
	// PnPrivate/PnShared are the generator's node partitions (the hint).
	PnPrivate, PnShared *region.Partition
	// NodeOwner is the disjoint complete owner distribution of nodes
	// (private ∪ shared per cluster).
	NodeOwner *region.Partition
	// WireOwner is the per-cluster wire partition.
	WireOwner *region.Partition
}

// lcg is a small deterministic random sequence (the graph must be
// reproducible across the sequential and parallel builds).
type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 17
}

func (l *lcg) intn(n int64) int64 { return int64(l.next() % uint64(n)) }

// Build generates the clustered circuit graph for a node count.
func Build(cfg Config, clusters int) *Graph {
	sharedPerCluster := int64(cfg.SharedFraction * float64(cfg.NodesPerCluster))
	if sharedPerCluster < 1 {
		sharedPerCluster = 1
	}
	privatePerCluster := cfg.NodesPerCluster - sharedPerCluster
	totalShared := sharedPerCluster * int64(clusters)
	totalNodes := cfg.NodesPerCluster * int64(clusters)
	totalWires := cfg.WiresPerCluster * int64(clusters)

	nodes := region.New("Nodes", totalNodes)
	nodes.AddScalarField("voltage")
	nodes.AddScalarField("charge")
	nodes.AddScalarField("capacitance")
	wires := region.New("Wires", totalWires)
	wires.AddIndexField("in_node")
	wires.AddIndexField("out_node")
	wires.AddScalarField("current")
	wires.AddScalarField("resistance")

	// Layout: shared nodes first (grouped by cluster), then private
	// nodes grouped by cluster.
	sharedOf := func(cluster, k int64) int64 { return cluster*sharedPerCluster + k }
	privateOf := func(cluster, k int64) int64 {
		return totalShared + cluster*privatePerCluster + k
	}

	rng := &lcg{s: 20191117}
	in := wires.Index("in_node")
	out := wires.Index("out_node")
	res := wires.Scalar("resistance")
	volt := nodes.Scalar("voltage")
	capa := nodes.Scalar("capacitance")
	for i := range volt {
		volt[i] = float64(i%11 + 1)
		capa[i] = float64(i%7 + 1)
	}

	crossEvery := int64(1)
	if cfg.CrossFraction > 0 {
		crossEvery = int64(1 / cfg.CrossFraction)
	}
	for c := int64(0); c < int64(clusters); c++ {
		for k := int64(0); k < cfg.WiresPerCluster; k++ {
			w := c*cfg.WiresPerCluster + k
			res[w] = float64(w%13 + 1)
			in[w] = privateOf(c, rng.intn(privatePerCluster))
			if cfg.CrossFraction > 0 && k%crossEvery == 0 {
				// A cross-cluster wire: its far endpoint is a shared node
				// of this cluster or a neighbor.
				nc := c
				if clusters > 1 && rng.intn(2) == 0 {
					nc = (c + 1) % int64(clusters)
				}
				out[w] = sharedOf(nc, rng.intn(sharedPerCluster))
			} else {
				out[w] = privateOf(c, rng.intn(privatePerCluster))
			}
		}
	}

	// Generator partitions (the hint): per cluster, its shared block and
	// its private block.
	privSubs := make([]geometry.IndexSet, clusters)
	sharedSubs := make([]geometry.IndexSet, clusters)
	ownerSubs := make([]geometry.IndexSet, clusters)
	wireSubs := make([]geometry.IndexSet, clusters)
	for c := int64(0); c < int64(clusters); c++ {
		sharedSubs[c] = geometry.Range(sharedOf(c, 0), sharedOf(c, sharedPerCluster))
		privSubs[c] = geometry.Range(privateOf(c, 0), privateOf(c, privatePerCluster))
		ownerSubs[c] = sharedSubs[c].Union(privSubs[c])
		wireSubs[c] = geometry.Range(c*cfg.WiresPerCluster, (c+1)*cfg.WiresPerCluster)
	}

	m := ir.NewMachine().AddRegion(nodes).AddRegion(wires)
	return &Graph{
		Machine:   m,
		PnPrivate: region.NewPartition("pn_private", nodes, privSubs),
		PnShared:  region.NewPartition("pn_shared", nodes, sharedSubs),
		NodeOwner: region.NewPartition("nodeOwner", nodes, ownerSubs),
		WireOwner: region.NewPartition("wireOwner", wires, wireSubs),
	}
}

// wireFields and nodeFields for owner setup.
var (
	wireFields = []string{"in_node", "out_node", "current", "resistance"}
	nodeFields = []string{"voltage", "charge", "capacitance"}
)

// externs returns the generator partitions a hinted compile binds.
func (g *Graph) externs(hinted bool) map[string]*region.Partition {
	if !hinted {
		return nil
	}
	return map[string]*region.Partition{
		"pn_private": g.PnPrivate,
		"pn_shared":  g.PnShared,
	}
}

// ownerState is the initial valid-instance distribution the generator
// produces: cluster blocks for both regions.
func (g *Graph) ownerState() *sim.State {
	return sim.NewState().
		OwnAll("Nodes", nodeFields, g.NodeOwner).
		OwnAll("Wires", wireFields, g.WireOwner)
}

// Executable instantiates the compiled program for the distributed
// executor at a node count. Pass hinted=true when c was compiled from
// HintSource (the §5.2 generator-partition hints must then be bound).
func Executable(cfg Config, c *autopart.Compiled, nodes int, hinted bool) (*exec.Program, error) {
	g := Build(cfg, nodes)
	auto, err := apputil.InstantiateAuto(c, g.Machine, nodes, g.externs(hinted))
	if err != nil {
		return nil, err
	}
	return &exec.Program{Machine: g.Machine, Plan: auto.Plan, Parts: auto.Parts, Owners: g.ownerState()}, nil
}

// AutoPoint prices the hint-less auto version: node data is distributed
// by the generator (owner = cluster blocks), but the synthesized
// partitions use equal partitions of both regions.
func AutoPoint(cfg Config, model sim.Model, c *autopart.Compiled, nodes int, hinted bool) (sim.Point, error) {
	g := Build(cfg, nodes)
	auto, err := apputil.InstantiateAuto(c, g.Machine, nodes, g.externs(hinted))
	if err != nil {
		return sim.Point{}, err
	}
	st := g.ownerState()

	stats, err := apputil.MeasureIterations(model, auto.Launches, auto.Parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      nodes,
		Time:       stats.Time,
		Throughput: float64(cfg.WiresPerCluster) / stats.Time,
	}, nil
}

// ManualPoint prices the hand-optimized version: cluster-aligned
// partitions with explicit ghost node reads; its reduction instances
// cover each cluster's whole shared allocation (the generator's
// conservative over-allocation the paper describes), modeled by an
// oversized buffer without a private sub-partition.
func ManualPoint(cfg Config, model sim.Model, c *autopart.Compiled, nodes int) (sim.Point, error) {
	g := Build(cfg, nodes)
	m := g.Machine
	nodesRegion := m.Regions["Nodes"]

	// Ghost partition: own nodes plus own + neighbor shared blocks (what
	// the wires can touch).
	ghostSubs := make([]geometry.IndexSet, nodes)
	reduceSubs := make([]geometry.IndexSet, nodes)
	touchedSubs := make([]geometry.IndexSet, nodes)
	allShared := g.PnShared.UnionAll()
	inMap := m.Regions["Wires"].PointerMap("in_node")
	outMap := m.Regions["Wires"].PointerMap("out_node")
	space := nodesRegion.Space()
	for j := 0; j < nodes; j++ {
		next := (j + 1) % nodes
		touch := g.NodeOwner.Sub(j).Union(g.PnShared.Sub(next))
		ghostSubs[j] = touch
		// The paper: the hand-optimized code "always requests reduction
		// buffers for the entire subset reserved for shared circuit
		// nodes even when only a few nodes in this subset are shared".
		reduceSubs[j] = allShared
		// The elements its wires actually reduce into.
		wires := g.WireOwner.Sub(j)
		touchedSubs[j] = geometry.Image(wires, inMap, space).
			Union(geometry.Image(wires, outMap, space)).
			Intersect(allShared)
	}
	ghost := region.NewPartition("ghost", nodesRegion, ghostSubs)
	reduceInst := region.NewPartition("reduceInst", nodesRegion, reduceSubs)
	touchedInst := region.NewPartition("touched", nodesRegion, touchedSubs)

	parts := map[string]*region.Partition{
		"wires":   g.WireOwner,
		"owner":   g.NodeOwner,
		"ghost":   ghost,
		"reduce":  reduceInst,
		"touched": touchedInst,
		"priv":    g.PnPrivate,
	}
	work := func(i int) float64 { return float64(len(c.Parallel[i].Access)) }
	launches := []*runtime.Launch{
		{
			Name: "currents", IterSym: "wires", WorkPerElement: work(0),
			Reqs: []runtime.Requirement{
				{Region: "Wires", Fields: []string{"in_node", "out_node", "resistance"}, Priv: runtime.ReadOnly, Sym: "wires"},
				{Region: "Nodes", Fields: []string{"voltage"}, Priv: runtime.ReadOnly, Sym: "ghost"},
				{Region: "Wires", Fields: []string{"current"}, Priv: runtime.WriteDiscard, Sym: "wires"},
			},
		},
		{
			Name: "charge", IterSym: "wires", WorkPerElement: work(1),
			Reqs: []runtime.Requirement{
				{Region: "Wires", Fields: []string{"in_node", "out_node", "current"}, Priv: runtime.ReadOnly, Sym: "wires"},
				// Private charge contributions apply in place...
				{Region: "Nodes", Fields: []string{"charge"}, Priv: runtime.ReadWrite, Sym: "priv"},
				// ...while the shared ones use the oversized instance.
				{Region: "Nodes", Fields: []string{"charge"}, Priv: runtime.Reduce, Sym: "reduce", ReduceOp: "+=", TouchedSym: "touched"},
			},
		},
		{
			Name: "voltages", IterSym: "owner", WorkPerElement: work(2),
			Reqs: []runtime.Requirement{
				{Region: "Nodes", Fields: nodeFields, Priv: runtime.ReadWrite, Sym: "owner"},
			},
		},
	}
	st := sim.NewState().
		OwnAll("Nodes", nodeFields, g.NodeOwner).
		OwnAll("Wires", wireFields, g.WireOwner)

	stats, err := apputil.MeasureIterations(model, launches, parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      nodes,
		Time:       stats.Time,
		Throughput: float64(cfg.WiresPerCluster) / stats.Time,
	}, nil
}

// Figure14d produces the Manual, Auto+Hint, and Auto series.
func Figure14d(cfg Config, model sim.Model, nodeCounts []int) (sim.Figure, error) {
	plain, err := autopart.Compile(Source, autopart.Options{})
	if err != nil {
		return sim.Figure{}, err
	}
	hinted, err := autopart.Compile(HintSource, autopart.Options{})
	if err != nil {
		return sim.Figure{}, err
	}
	manual := sim.Series{Label: "Manual"}
	autoHint := sim.Series{Label: "Auto+Hint"}
	auto := sim.Series{Label: "Auto"}
	type triple struct{ manual, hint, auto sim.Point }
	points, err := sim.Sweep(nodeCounts, func(n int) (triple, error) {
		mp, err := ManualPoint(cfg, model, plain, n)
		if err != nil {
			return triple{}, fmt.Errorf("circuit manual nodes=%d: %w", n, err)
		}
		hp, err := AutoPoint(cfg, model, hinted, n, true)
		if err != nil {
			return triple{}, fmt.Errorf("circuit auto+hint nodes=%d: %w", n, err)
		}
		ap, err := AutoPoint(cfg, model, plain, n, false)
		if err != nil {
			return triple{}, fmt.Errorf("circuit auto nodes=%d: %w", n, err)
		}
		return triple{manual: mp, hint: hp, auto: ap}, nil
	})
	if err != nil {
		return sim.Figure{}, err
	}
	for _, p := range points {
		manual.Points = append(manual.Points, p.manual)
		autoHint.Points = append(autoHint.Points, p.hint)
		auto.Points = append(auto.Points, p.auto)
	}
	return sim.Figure{
		ID:       "14d",
		Title:    fmt.Sprintf("Circuit (%d wires/node)", cfg.WiresPerCluster),
		WorkUnit: "wires/s",
		Series:   []sim.Series{manual, autoHint, auto},
	}, nil
}

// CompileOnly compiles the hint-less kernel (for Table 1).
func CompileOnly() (*autopart.Compiled, error) {
	return autopart.Compile(Source, autopart.Options{})
}
