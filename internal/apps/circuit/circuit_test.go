package circuit

import (
	"strings"
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/region"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

func TestSourceCompiles(t *testing.T) {
	c, err := CompileOnly()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parallel) != 3 {
		t.Errorf("parallel loops = %d, want 3 (Table 1)", len(c.Parallel))
	}
	// The distribute-charge loop is NOT relaxed (the currents loop
	// blocks the Wires group), so §5.2 private sub-partitions apply.
	for _, p := range c.Plans {
		if p.Relaxed {
			t.Errorf("no circuit loop should be relaxed")
		}
	}
	if len(c.Private.PrivateOf) == 0 {
		t.Error("expected private sub-partitions for the charge reductions")
	}
}

func TestHintSourceCompiles(t *testing.T) {
	c, err := autopart.Compile(HintSource, autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The voltage-update loop's iteration partition must reuse the
	// asserted union instead of a fresh equal partition.
	text := c.Solution.Program.String()
	if !strings.Contains(text, "(pn_private ∪ pn_shared)") {
		t.Errorf("hint not exploited:\n%s", text)
	}
}

func TestGraphLayout(t *testing.T) {
	cfg := Config{WiresPerCluster: 100, NodesPerCluster: 50, SharedFraction: 0.04, CrossFraction: 0.2}
	g := Build(cfg, 4)
	nodes := g.Machine.Regions["Nodes"]
	wires := g.Machine.Regions["Wires"]
	if nodes.Size() != 200 || wires.Size() != 400 {
		t.Fatalf("sizes: %d nodes, %d wires", nodes.Size(), wires.Size())
	}
	// Shared nodes occupy the first entries.
	totalShared := int64(4 * 2) // 4% of 50 = 2 per cluster
	if !g.PnShared.UnionAll().Equal(geometry.Range(0, totalShared)) {
		t.Errorf("shared nodes not at the front: %s", g.PnShared.UnionAll())
	}
	// Private/shared partitions are disjoint and together complete.
	union := g.PnPrivate.UnionAll().Union(g.PnShared.UnionAll())
	if !union.Equal(nodes.Space()) {
		t.Error("pn_private ∪ pn_shared must cover all nodes")
	}
	if !g.NodeOwner.IsDisjoint() || !g.NodeOwner.IsComplete() {
		t.Error("node owner must be disjoint and complete")
	}
	// All wire endpoints valid.
	for _, f := range []string{"in_node", "out_node"} {
		for _, v := range wires.Index(f) {
			if v < 0 || v >= nodes.Size() {
				t.Fatalf("%s out of range: %d", f, v)
			}
		}
	}
}

func TestDifferentialSmall(t *testing.T) {
	cfg := Config{WiresPerCluster: 60, NodesPerCluster: 30, SharedFraction: 0.05, CrossFraction: 0.2}
	c, err := autopart.Compile(Source, autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqG := Build(cfg, 3)
	parG := Build(cfg, 3)
	if err := c.RunSequential(seqG.Machine); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(parG.Machine, 3, nil); err != nil {
		t.Fatal(err)
	}
	for name, r := range seqG.Machine.Regions {
		if same, diff := r.SameData(parG.Machine.Regions[name]); !same {
			t.Fatalf("region %s differs: %s", name, diff)
		}
	}
}

func TestDifferentialHinted(t *testing.T) {
	cfg := Config{WiresPerCluster: 60, NodesPerCluster: 30, SharedFraction: 0.05, CrossFraction: 0.2}
	c, err := autopart.Compile(HintSource, autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqG := Build(cfg, 3)
	parG := Build(cfg, 3)
	if err := c.RunSequential(seqG.Machine); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(parG.Machine, 3, map[string]*region.Partition{
		"pn_private": parG.PnPrivate,
		"pn_shared":  parG.PnShared,
	}); err != nil {
		t.Fatal(err)
	}
	for name, r := range seqG.Machine.Regions {
		if same, diff := r.SameData(parG.Machine.Regions[name]); !same {
			t.Fatalf("region %s differs: %s", name, diff)
		}
	}
}

func TestFigure14dShape(t *testing.T) {
	cfg := DefaultConfig()
	model := sim.ModelFor(float64(cfg.WiresPerCluster)*10, RealIterSeconds)
	fig, err := Figure14d(cfg, model, []int{1, 2, 4, 8, 16, 32, 64})
	if err != nil {
		t.Fatal(err)
	}
	manual, _ := fig.SeriesByLabel("Manual")
	hint, _ := fig.SeriesByLabel("Auto+Hint")
	auto, _ := fig.SeriesByLabel("Auto")

	// Paper shape: Auto matches within ~7% up to 8 nodes, then collapses
	// (the equal partition of nodes concentrates every shared node in
	// subregion 0, whose owner becomes the bottleneck).
	a8, _ := auto.At(8)
	h8, _ := hint.At(8)
	if a8.Throughput < 0.88*h8.Throughput {
		t.Errorf("Auto should hold up to 8 nodes: auto=%.4g hint=%.4g\n%s",
			a8.Throughput, h8.Throughput, fig.Render())
	}
	a64, _ := auto.At(64)
	h64, _ := hint.At(64)
	if a64.Throughput > 0.75*h64.Throughput {
		t.Errorf("Auto should collapse at scale: auto=%.4g hint=%.4g\n%s",
			a64.Throughput, h64.Throughput, fig.Render())
	}
	// Auto+Hint stays within 5% of Manual and is slightly better (tight
	// §5.2 reduction buffers vs. the generator's over-allocation).
	m64, _ := manual.At(64)
	ratio := h64.Throughput / m64.Throughput
	if ratio < 0.95 {
		t.Errorf("Auto+Hint/Manual at 64 nodes = %.3f, want ≥0.95\n%s", ratio, fig.Render())
	}
	if h64.Throughput < m64.Throughput {
		t.Errorf("Auto+Hint should slightly beat Manual\n%s", fig.Render())
	}
	if eff := hint.Efficiency(); eff < 0.95 {
		t.Errorf("Auto+Hint efficiency = %.3f\n%s", eff, fig.Render())
	}
}
