// Package miniaero is the MiniAero benchmark of §6.3 (Fig. 14c): a
// Navier-Stokes proxy on a 3D hexahedral mesh. Faces carry flux between
// the two cells they touch; every face loop reads cell state through the
// c1/c2 pointers and updates cell residuals via uncentered reductions,
// so the §5.1 relaxation applies and eliminates reduction buffers
// completely.
//
// Two mesh generators mirror the paper's setup: the sequential generator
// orders faces by direction (the input the auto-parallelized code runs
// on, which makes each node's derived face subregions non-contiguous),
// while the parallel generator used by the hand-optimized code groups —
// and duplicates — faces per node so each subregion is one contiguous
// block.
package miniaero

import (
	"fmt"
	"strings"

	"autopart/internal/apps/apputil"
	"autopart/internal/exec"
	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/runtime"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// cellFields are the per-cell quantities.
var cellFields = []string{
	"rho", "mom", "ene", // conserved
	"prim_v", "prim_p", // primitives
	"lim",                           // limiter
	"res_rho", "res_mom", "res_ene", // residuals
	"rho0", // RK stage base
}

// Source builds the 26-loop DSL program: 2 setup loops plus 4 RK stages
// of (2 face-flux loops + 4 cell loops), matching Table 1's loop count.
func Source() string {
	var sb strings.Builder
	sb.WriteString("region Faces { c1: index(Cells), c2: index(Cells), area: scalar, flux_rho: scalar, flux_mom: scalar, flux_ene: scalar }\n")
	sb.WriteString("region Cells { ")
	for i, f := range cellFields {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: scalar", f)
	}
	sb.WriteString(" }\n")

	// Setup: save the stage base and compute initial primitives.
	sb.WriteString(`
for c in Cells {
  Cells[c].rho0 = Cells[c].rho
}
for c in Cells {
  Cells[c].prim_v = pv(Cells[c].rho, Cells[c].mom)
  Cells[c].prim_p = pp(Cells[c].rho, Cells[c].ene)
}
`)
	for stage := 0; stage < 4; stage++ {
		// Inviscid flux + residual accumulation (one loop: reads cell
		// primitives through the face pointers, reduces into residuals).
		fmt.Fprintf(&sb, `
for f in Faces {
  fr%[1]d = inv_r(Cells[Faces[f].c1].prim_v, Cells[Faces[f].c2].prim_v, Faces[f].area)
  Faces[f].flux_rho = fr%[1]d
  Cells[Faces[f].c1].res_rho += fr%[1]d
  Cells[Faces[f].c2].res_rho += fr%[1]d
  fm%[1]d = inv_m(Cells[Faces[f].c1].prim_p, Cells[Faces[f].c2].prim_p, Faces[f].area)
  Faces[f].flux_mom = fm%[1]d
  Cells[Faces[f].c1].res_mom += fm%[1]d
  Cells[Faces[f].c2].res_mom += fm%[1]d
}
for f in Faces {
  fe%[1]d = vis_e(Cells[Faces[f].c1].lim, Cells[Faces[f].c2].lim, Faces[f].area)
  Faces[f].flux_ene = fe%[1]d
  Cells[Faces[f].c1].res_ene += fe%[1]d
  Cells[Faces[f].c2].res_ene += fe%[1]d
}
for c in Cells {
  Cells[c].rho = rk(Cells[c].rho0, Cells[c].res_rho)
  Cells[c].mom = rk(Cells[c].mom, Cells[c].res_mom)
  Cells[c].ene = rk(Cells[c].ene, Cells[c].res_ene)
}
for c in Cells {
  Cells[c].prim_v = pv(Cells[c].rho, Cells[c].mom)
  Cells[c].prim_p = pp(Cells[c].rho, Cells[c].ene)
}
for c in Cells {
  Cells[c].lim = lm(Cells[c].prim_v, Cells[c].prim_p)
}
for c in Cells {
  Cells[c].res_rho = 0
  Cells[c].res_mom = 0
  Cells[c].res_ene = 0
}
`, stage)
	}
	return sb.String()
}

// RealIterSeconds is the real system's per-node iteration time implied
// by Fig. 14c (2.1e6 cells/node at ~5e6 cells/s/node).
const RealIterSeconds = 0.42

// Config sizes the workload: each node owns a DX×DY×DZ brick of cells,
// bricks stacked along z.
type Config struct {
	DX, DY, DZ int64
}

// DefaultConfig stands in for the paper's 2.1e6 cells per node.
func DefaultConfig() Config { return Config{DX: 12, DY: 12, DZ: 12} }

// CellsPerNode returns the weak-scaling work unit count.
func (c Config) CellsPerNode() int64 { return c.DX * c.DY * c.DZ }

// cellIndex linearizes (x, y, gz) with the z-layer outermost so each
// node's cells are contiguous.
func (c Config) cellIndex(x, y, gz int64) int64 {
	return gz*c.DX*c.DY + y*c.DX + x
}

// BuildMachineSequential generates the mesh the way a sequential code
// would: faces grouped by direction (x, then y, then z), each direction
// enumerated x-outer/y-mid/z-inner so runs along z are contiguous.
func BuildMachineSequential(cfg Config, nodes int) *ir.Machine {
	gz := cfg.DZ * int64(nodes)
	nCells := cfg.DX * cfg.DY * gz

	type facePair struct{ a, b int64 }
	var pairs []facePair
	// x-faces.
	for x := int64(0); x < cfg.DX-1; x++ {
		for y := int64(0); y < cfg.DY; y++ {
			for z := int64(0); z < gz; z++ {
				pairs = append(pairs, facePair{cfg.cellIndex(x, y, z), cfg.cellIndex(x+1, y, z)})
			}
		}
	}
	// y-faces.
	for x := int64(0); x < cfg.DX; x++ {
		for y := int64(0); y < cfg.DY-1; y++ {
			for z := int64(0); z < gz; z++ {
				pairs = append(pairs, facePair{cfg.cellIndex(x, y, z), cfg.cellIndex(x, y+1, z)})
			}
		}
	}
	// z-faces (these cross node boundaries).
	for x := int64(0); x < cfg.DX; x++ {
		for y := int64(0); y < cfg.DY; y++ {
			for z := int64(0); z < gz-1; z++ {
				pairs = append(pairs, facePair{cfg.cellIndex(x, y, z), cfg.cellIndex(x, y, z+1)})
			}
		}
	}

	faces := region.New("Faces", int64(len(pairs)))
	faces.AddIndexField("c1")
	faces.AddIndexField("c2")
	for _, f := range []string{"area", "flux_rho", "flux_mom", "flux_ene"} {
		faces.AddScalarField(f)
	}
	c1 := faces.Index("c1")
	c2 := faces.Index("c2")
	area := faces.Scalar("area")
	for i, p := range pairs {
		c1[i] = p.a
		c2[i] = p.b
		area[i] = float64(i%5 + 1)
	}

	cells := region.New("Cells", nCells)
	for _, f := range cellFields {
		cells.AddScalarField(f)
	}
	rho := cells.Scalar("rho")
	mom := cells.Scalar("mom")
	ene := cells.Scalar("ene")
	for i := int64(0); i < nCells; i++ {
		rho[i] = float64(i%19 + 1)
		mom[i] = float64(i%23 + 1)
		ene[i] = float64(i%29 + 1)
	}
	return ir.NewMachine().AddRegion(faces).AddRegion(cells)
}

// ownerState is the initial valid-instance distribution: cells by the
// cell-loop iteration partition (equal blocks); face data lives where
// the face loops use it, so its owner is the (disjointified) face
// iteration partition.
func ownerState(c *autopart.Compiled, auto *apputil.Auto) *sim.State {
	cellIter := auto.Parts[auto.IterSym(0)]
	faceIterSym := ""
	for i, pl := range c.Parallel {
		if pl.Loop.Region == "Faces" {
			faceIterSym = auto.IterSym(i)
			break
		}
	}
	faceOwner := region.Disjointify("faceOwner", auto.Parts[faceIterSym])
	return sim.NewState().
		OwnAll("Cells", cellFields, cellIter).
		OwnAll("Faces", []string{"c1", "c2", "area", "flux_rho", "flux_mom", "flux_ene"}, faceOwner)
}

// Executable instantiates the compiled program for the distributed
// executor at a node count.
func Executable(cfg Config, c *autopart.Compiled, nodes int) (*exec.Program, error) {
	m := BuildMachineSequential(cfg, nodes)
	auto, err := apputil.InstantiateAuto(c, m, nodes, nil)
	if err != nil {
		return nil, err
	}
	return &exec.Program{Machine: m, Plan: auto.Plan, Parts: auto.Parts, Owners: ownerState(c, auto)}, nil
}

// AutoPoint prices the auto-parallelized version at one node count.
func AutoPoint(cfg Config, model sim.Model, c *autopart.Compiled, nodes int) (sim.Point, error) {
	m := BuildMachineSequential(cfg, nodes)
	auto, err := apputil.InstantiateAuto(c, m, nodes, nil)
	if err != nil {
		return sim.Point{}, err
	}
	st := ownerState(c, auto)

	stats, err := apputil.MeasureIterations(model, auto.Launches, auto.Parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      nodes,
		Time:       stats.Time,
		Throughput: float64(cfg.CellsPerNode()) / stats.Time,
	}, nil
}

// ManualPoint prices the hand-optimized version: per-node contiguous
// face blocks with boundary faces duplicated, ghost-layer cell reads,
// reductions applied locally (no reduction instances at all).
func ManualPoint(cfg Config, model sim.Model, c *autopart.Compiled, nodes int) (sim.Point, error) {
	perNodeCells := cfg.CellsPerNode()
	nCells := perNodeCells * int64(nodes)
	layer := cfg.DX * cfg.DY

	// Region sizes only matter for partition bounds; the manual mesh has
	// the same faces as the sequential one plus one duplicated boundary
	// layer per node boundary.
	gz := cfg.DZ * int64(nodes)
	totalFaces := (cfg.DX-1)*cfg.DY*gz + cfg.DX*(cfg.DY-1)*gz + cfg.DX*cfg.DY*(gz-1)
	totalManualFaces := totalFaces + layer*int64(nodes-1)
	perNodeFaces := totalManualFaces / int64(nodes)
	facesRegion := region.New("Faces", perNodeFaces*int64(nodes))
	cellsRegion := region.New("Cells", nCells)

	faceSubs := make([]geometry.IndexSet, nodes)
	cellSubs := make([]geometry.IndexSet, nodes)
	ghostSubs := make([]geometry.IndexSet, nodes)
	for j := 0; j < nodes; j++ {
		faceSubs[j] = geometry.Range(int64(j)*perNodeFaces, int64(j+1)*perNodeFaces)
		lo := int64(j) * perNodeCells
		hi := lo + perNodeCells
		cellSubs[j] = geometry.Range(lo, hi)
		glo := lo - layer
		ghi := hi + layer
		if glo < 0 {
			glo = 0
		}
		if ghi > nCells {
			ghi = nCells
		}
		ghostSubs[j] = geometry.Range(glo, ghi)
	}
	parts := map[string]*region.Partition{
		"faces": region.NewPartition("faces", facesRegion, faceSubs),
		"cells": region.NewPartition("cells", cellsRegion, cellSubs),
		"ghost": region.NewPartition("ghost", cellsRegion, ghostSubs),
	}

	// Mirror the auto launches' shapes with manual partitions: face
	// loops read the ghost layer and write residuals locally (duplicated
	// faces make reductions node-local); cell loops are fully local.
	var launches []*runtime.Launch
	for i, pl := range c.Parallel {
		work := float64(len(pl.Access))
		if pl.Loop.Region == "Faces" {
			launches = append(launches, &runtime.Launch{
				Name: fmt.Sprintf("face%d", i), IterSym: "faces", WorkPerElement: work,
				Reqs: []runtime.Requirement{
					{Region: "Cells", Fields: []string{"prim_v", "prim_p", "lim"}, Priv: runtime.ReadOnly, Sym: "ghost"},
					{Region: "Faces", Fields: []string{"flux_rho", "flux_mom", "flux_ene"}, Priv: runtime.WriteDiscard, Sym: "faces"},
					{Region: "Cells", Fields: []string{"res_rho", "res_mom", "res_ene"}, Priv: runtime.ReadWrite, Sym: "cells"},
				},
			})
		} else {
			launches = append(launches, &runtime.Launch{
				Name: fmt.Sprintf("cell%d", i), IterSym: "cells", WorkPerElement: work,
				Reqs: []runtime.Requirement{
					{Region: "Cells", Fields: cellFields, Priv: runtime.ReadWrite, Sym: "cells"},
				},
			})
		}
	}

	st := sim.NewState().
		OwnAll("Cells", cellFields, parts["cells"]).
		OwnAll("Faces", []string{"flux_rho", "flux_mom", "flux_ene"}, parts["faces"])

	stats, err := apputil.MeasureIterations(model, launches, parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      nodes,
		Time:       stats.Time,
		Throughput: float64(perNodeCells) / stats.Time,
	}, nil
}

// Figure14c produces the Manual and Auto weak-scaling series.
func Figure14c(cfg Config, model sim.Model, nodeCounts []int) (sim.Figure, error) {
	c, err := autopart.Compile(Source(), autopart.Options{})
	if err != nil {
		return sim.Figure{}, err
	}
	manual := sim.Series{Label: "Manual"}
	auto := sim.Series{Label: "Auto"}
	type pair struct{ auto, manual sim.Point }
	points, err := sim.Sweep(nodeCounts, func(n int) (pair, error) {
		ap, err := AutoPoint(cfg, model, c, n)
		if err != nil {
			return pair{}, fmt.Errorf("miniaero auto nodes=%d: %w", n, err)
		}
		mp, err := ManualPoint(cfg, model, c, n)
		if err != nil {
			return pair{}, fmt.Errorf("miniaero manual nodes=%d: %w", n, err)
		}
		return pair{auto: ap, manual: mp}, nil
	})
	if err != nil {
		return sim.Figure{}, err
	}
	for _, p := range points {
		auto.Points = append(auto.Points, p.auto)
		manual.Points = append(manual.Points, p.manual)
	}
	return sim.Figure{
		ID:       "14c",
		Title:    fmt.Sprintf("MiniAero (%d cells/node)", cfg.CellsPerNode()),
		WorkUnit: "cells/s",
		Series:   []sim.Series{manual, auto},
	}, nil
}

// CompileOnly compiles the kernel (for Table 1).
func CompileOnly() (*autopart.Compiled, error) {
	return autopart.Compile(Source(), autopart.Options{})
}
