package miniaero

import (
	"testing"

	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

func TestSourceCompiles(t *testing.T) {
	c, err := CompileOnly()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parallel) != 26 {
		t.Errorf("parallel loops = %d, want 26 (Table 1)", len(c.Parallel))
	}
	// Every face loop must be relaxed (§5.1 applies to all of them, so
	// the whole Faces group relaxes).
	faceLoops, relaxed := 0, 0
	for i, plan := range c.Plans {
		if c.Loops[i].Region == "Faces" {
			faceLoops++
			if plan.Relaxed {
				relaxed++
			}
		}
	}
	if faceLoops != 8 {
		t.Errorf("face loops = %d, want 8", faceLoops)
	}
	if relaxed != faceLoops {
		t.Errorf("relaxed face loops = %d/%d; reduction buffers were not eliminated", relaxed, faceLoops)
	}
	// No private sub-partitions should be needed (everything relaxed).
	if len(c.Private.PrivateOf) != 0 {
		t.Errorf("unexpected private sub-partitions: %v", c.Private.PrivateOf)
	}
}

func TestDifferentialSmall(t *testing.T) {
	cfg := Config{DX: 3, DY: 3, DZ: 2}
	c, err := autopart.Compile(Source(), autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqM := BuildMachineSequential(cfg, 2)
	parM := BuildMachineSequential(cfg, 2)
	if err := c.RunSequential(seqM); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(parM, 2, nil); err != nil {
		t.Fatal(err)
	}
	for name, r := range seqM.Regions {
		if same, diff := r.SameData(parM.Regions[name]); !same {
			t.Fatalf("region %s differs: %s", name, diff)
		}
	}
}

func TestMeshShape(t *testing.T) {
	cfg := Config{DX: 3, DY: 3, DZ: 2}
	m := BuildMachineSequential(cfg, 2)
	cells := m.Regions["Cells"]
	faces := m.Regions["Faces"]
	if cells.Size() != 3*3*4 {
		t.Errorf("cells = %d", cells.Size())
	}
	// x: 2·3·4, y: 3·2·4, z: 3·3·3.
	if want := int64(2*3*4 + 3*2*4 + 3*3*3); faces.Size() != want {
		t.Errorf("faces = %d, want %d", faces.Size(), want)
	}
	// All pointers valid and adjacent.
	c1 := faces.Index("c1")
	c2 := faces.Index("c2")
	for i := range c1 {
		if c1[i] < 0 || c2[i] >= cells.Size() || c1[i] >= c2[i] {
			t.Fatalf("face %d: %d -> %d", i, c1[i], c2[i])
		}
	}
}

func TestFigure14cShape(t *testing.T) {
	// A taller brick keeps the ghost-layer-to-volume ratio near the
	// paper's regime.
	cfg := Config{DX: 8, DY: 8, DZ: 32}
	model := sim.ModelFor(float64(cfg.CellsPerNode())*30, RealIterSeconds)
	fig, err := Figure14c(cfg, model, []int{1, 2, 4, 8})
	if err != nil {
		t.Fatal(err)
	}
	manual, _ := fig.SeriesByLabel("Manual")
	auto, _ := fig.SeriesByLabel("Auto")
	// Paper: both ≈98% efficiency, auto ≈2% slower on average.
	if eff := manual.Efficiency(); eff < 0.93 {
		t.Errorf("manual efficiency = %.3f\n%s", eff, fig.Render())
	}
	if eff := auto.Efficiency(); eff < 0.88 {
		t.Errorf("auto efficiency = %.3f\n%s", eff, fig.Render())
	}
	am, _ := auto.At(8)
	mm, _ := manual.At(8)
	ratio := am.Throughput / mm.Throughput
	if ratio >= 1.0 || ratio < 0.90 {
		t.Errorf("auto/manual at 8 nodes = %.3f, want slightly below 1\n%s", ratio, fig.Render())
	}
}
