// Package pennant is the PENNANT benchmark of §6.5 (Fig. 14e):
// Lagrangian hydrodynamics on a 2D mesh of polygonal zones, triangular
// sides, and points. Each side carries five pointers: the previous and
// next side of the same zone (mapss3/mapss4), its zone (mapsz), and the
// two points at its corners (mapsp1/mapsp2).
//
// Mirroring the paper's parallel mesh generator, points shared between
// pieces occupy the initial entries of the point region (grouped by
// piece boundary), which is what breaks the hint-less auto version: an
// equal partition of points piles every shared point onto the first
// subregions. The generator also distributes zones unevenly across
// pieces (real PENNANT meshes are not divisible), so the equal side
// partitions the solver synthesizes drift away from piece boundaries —
// Hint1 (the point partition alone) cannot fix that, which is why it
// stops scaling; Hint2 additionally reuses the generator's side and zone
// partitions and its private-point partition, matching the
// hand-optimized version.
package pennant

import (
	"fmt"
	"strings"

	"autopart/internal/apps/apputil"
	"autopart/internal/exec"
	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/runtime"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// zoneFields, sideFields, pointFields list the physics state.
var (
	zoneFields = []string{
		"zr", "ze", "zp", // density, energy, pressure
		"zvol", "zvol0", "zm", // volumes, mass
		"zw", "zdu", // work, velocity delta
	}
	sideFieldsScalar = []string{"sarea", "svol", "smf", "sft"}
	pointFields      = []string{
		"px", "py", "px0", "py0", // coordinates
		"pu", "pv", // velocity
		"pf", "pg", // force accumulators
		"pmass", // mass accumulator
	}
)

// Source builds the 37-loop DSL program: PENNANT's per-cycle phases with
// point-centered, zone-centered, and side-centered loops.
func Source() string {
	var sb strings.Builder
	sb.WriteString("region Zones { ")
	for i, f := range zoneFields {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: scalar", f)
	}
	sb.WriteString(" }\n")
	sb.WriteString("region Sides { mapsz: index(Zones), mapss3: index(Sides), mapss4: index(Sides), mapsp1: index(Points), mapsp2: index(Points)")
	for _, f := range sideFieldsScalar {
		fmt.Fprintf(&sb, ", %s: scalar", f)
	}
	sb.WriteString(" }\n")
	sb.WriteString("region Points { ")
	for i, f := range pointFields {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s: scalar", f)
	}
	sb.WriteString(" }\n")

	// Phase 1: save state (3 point loops + 2 zone loops).
	sb.WriteString(`
for p1 in Points {
  Points[p1].px0 = Points[p1].px
  Points[p1].py0 = Points[p1].py
}
for p2 in Points {
  Points[p2].pf = 0
  Points[p2].pg = 0
}
for p3 in Points {
  Points[p3].pmass = 0
}
for z1 in Zones {
  Zones[z1].zvol0 = Zones[z1].zvol
}
for z2 in Zones {
  Zones[z2].zw = 0
}
`)
	// Phase 2: two corrector half-steps, each with side-centered
	// geometry/force loops and reductions (2 × 12 side loops).
	for half := 0; half < 2; half++ {
		fmt.Fprintf(&sb, `
for s1%[1]d in Sides {
  Sides[s1%[1]d].sarea = ar(Points[Sides[s1%[1]d].mapsp1].px, Points[Sides[s1%[1]d].mapsp2].px, Points[Sides[s1%[1]d].mapsp1].py)
}
for s2%[1]d in Sides {
  Sides[s2%[1]d].svol = vl(Sides[s2%[1]d].sarea, Sides[Sides[s2%[1]d].mapss3].sarea, Sides[Sides[s2%[1]d].mapss4].sarea)
}
for s3%[1]d in Sides {
  Zones[Sides[s3%[1]d].mapsz].zvol += Sides[s3%[1]d].svol
}
for s4%[1]d in Sides {
  Zones[Sides[s4%[1]d].mapsz].zw += wk(Sides[s4%[1]d].svol, Sides[s4%[1]d].smf)
}
for z3%[1]d in Zones {
  Zones[z3%[1]d].zr = rh(Zones[z3%[1]d].zm, Zones[z3%[1]d].zvol)
  Zones[z3%[1]d].zp = pr(Zones[z3%[1]d].zr, Zones[z3%[1]d].ze)
}
for s5%[1]d in Sides {
  Sides[s5%[1]d].sft = fc(Zones[Sides[s5%[1]d].mapsz].zp, Sides[s5%[1]d].sarea)
}
for s6%[1]d in Sides {
  Points[Sides[s6%[1]d].mapsp1].pf += Sides[s6%[1]d].sft
}
for s7%[1]d in Sides {
  Points[Sides[s7%[1]d].mapsp2].pg += Sides[s7%[1]d].sft
}
for s8%[1]d in Sides {
  Points[Sides[s8%[1]d].mapsp1].pmass += ms(Sides[s8%[1]d].smf, Sides[s8%[1]d].svol)
}
for p4%[1]d in Points {
  Points[p4%[1]d].pu = ac(Points[p4%[1]d].pu, Points[p4%[1]d].pf, Points[p4%[1]d].pmass)
  Points[p4%[1]d].pv = ac(Points[p4%[1]d].pv, Points[p4%[1]d].pg, Points[p4%[1]d].pmass)
}
for p5%[1]d in Points {
  Points[p5%[1]d].px = mv(Points[p5%[1]d].px0, Points[p5%[1]d].pu)
  Points[p5%[1]d].py = mv(Points[p5%[1]d].py0, Points[p5%[1]d].pv)
}
for z4%[1]d in Zones {
  Zones[z4%[1]d].ze = en(Zones[z4%[1]d].ze, Zones[z4%[1]d].zw, Zones[z4%[1]d].zm)
}
`, half)
	}
	// Phase 3: diagnostics (4 zone loops + 4 side loops).
	sb.WriteString(`
for z5 in Zones {
  Zones[z5].zdu = du(Zones[z5].zp, Zones[z5].zr)
}
for z6 in Zones {
  Zones[z6].zw = 0
}
for s9 in Sides {
  Sides[s9].smf = mf(Sides[s9].sarea, Zones[Sides[s9].mapsz].zr)
}
for s10 in Sides {
  Zones[Sides[s10].mapsz].zw += Sides[s10].smf
}
for z7 in Zones {
  Zones[z7].zvol = cv(Zones[z7].zvol, Zones[z7].zw)
}
for s11 in Sides {
  Sides[s11].sft = fc(Zones[Sides[s11].mapsz].zdu, Sides[s11].sarea)
}
for s12 in Sides {
  Points[Sides[s12].mapsp1].pf += Sides[s12].sft
}
for p6 in Points {
  Points[p6].pu = ac(Points[p6].pu, Points[p6].pf, Points[p6].pmass)
}
`)
	return sb.String()
}

// hint1Asserts is the §6.5 Hint1: the generator's point partitions.
const hint1Asserts = `
extern partition pp_private of Points
extern partition pp_shared of Points
assert disjoint(pp_private + pp_shared)
assert complete(pp_private + pp_shared, Points)
`

// hint2Asserts is Hint2: additionally reuse the generator's side and
// zone partitions (with the recursive same-piece side constraints) and
// the private point partition for reduction buffers.
const hint2Asserts = hint1Asserts + `
extern partition rs_p of Sides
extern partition rz_p of Zones
assert disjoint(rs_p)
assert complete(rs_p, Sides)
assert disjoint(rz_p)
assert complete(rz_p, Zones)
assert image(rs_p, Sides.mapsz, Zones) <= rz_p
assert image(rs_p, Sides.mapss3, Sides) <= rs_p
assert image(rs_p, Sides.mapss4, Sides) <= rs_p
assert preimage(Sides, Sides.mapsp1, pp_private) <= rs_p
`

// HintSource builds the program with the requested hint level (0, 1, 2).
func HintSource(level int) string {
	switch level {
	case 1:
		return Source() + hint1Asserts
	case 2:
		return Source() + hint2Asserts
	default:
		return Source()
	}
}

// RealIterSeconds is the real system's per-node iteration time implied
// by Fig. 14e (1.8e6 zones/node at ~1.6e8 zones/s/node).
const RealIterSeconds = 0.011

// Config sizes the workload: each piece holds roughly ZonesPerPiece
// quad zones in a strip W zones wide.
type Config struct {
	// W is the strip width in zones.
	W int64
	// ZonesPerPiece is the average zone count per piece (weak scaling).
	ZonesPerPiece int64
	// Jitter is the per-piece zone-count variation (the paper's meshes
	// are not evenly divisible; this is what makes equal side partitions
	// drift off piece boundaries).
	Jitter int64
}

// DefaultConfig stands in for the paper's 1.8e6 zones per node. The
// boundary-to-interior point ratio (~1%) matches the paper's mesh, which
// keeps every shared point inside the first few equal chunks — the
// regime where the hint-less auto version bottlenecks.
func DefaultConfig() Config { return Config{W: 64, ZonesPerPiece: 6400, Jitter: 256} }

// Mesh is a generated PENNANT mesh with the generator's partitions.
type Mesh struct {
	Machine *ir.Machine
	// PpPrivate/PpShared are the generator's point partitions (Hint1).
	PpPrivate, PpShared *region.Partition
	// RsP/RzP are the generator's side and zone partitions (Hint2).
	RsP, RzP *region.Partition
	// PointOwner is the disjoint complete point distribution.
	PointOwner *region.Partition
	// ZonesOf holds the zone count per piece.
	ZonesOf []int64
}

// Build generates the mesh for a piece count. Zones form a W-wide strip;
// piece k owns zonesOf[k] consecutive zone rows-worth of zones. Sides: 4
// per zone (quad). Points: (W+1) × (rows+1) grid; points on rows at
// piece boundaries are shared and stored first (grouped per boundary),
// interior points follow grouped per piece.
func Build(cfg Config, pieces int) *Mesh {
	zonesOf := make([]int64, pieces)
	var totalZones int64
	for k := range zonesOf {
		j := cfg.Jitter * int64(k%3-1) // -J, 0, +J pattern; sums ≈ 0
		if k == pieces-1 {
			// Balance the total.
			j = cfg.ZonesPerPiece*int64(pieces) - totalZones - cfg.ZonesPerPiece
		}
		zonesOf[k] = cfg.ZonesPerPiece + j
		totalZones += zonesOf[k]
	}
	totalSides := 4 * totalZones

	// Points: one boundary row of W+1 points between consecutive pieces
	// (shared), plus interior points per piece. The precise interior
	// count does not affect partitioning behaviour; we allocate one
	// point per zone plus one boundary row per piece.
	ptsPerBoundary := cfg.W + 1
	numBoundaries := int64(pieces - 1)
	sharedTotal := ptsPerBoundary * numBoundaries
	interiorOf := make([]int64, pieces)
	var interiorTotal int64
	for k := range interiorOf {
		interiorOf[k] = zonesOf[k] + ptsPerBoundary
		interiorTotal += interiorOf[k]
	}
	totalPoints := sharedTotal + interiorTotal

	zones := region.New("Zones", totalZones)
	for _, f := range zoneFields {
		zones.AddScalarField(f)
	}
	sides := region.New("Sides", totalSides)
	for _, f := range []string{"mapsz", "mapss3", "mapss4", "mapsp1", "mapsp2"} {
		sides.AddIndexField(f)
	}
	for _, f := range sideFieldsScalar {
		sides.AddScalarField(f)
	}
	points := region.New("Points", totalPoints)
	for _, f := range pointFields {
		points.AddScalarField(f)
	}

	// Piece boundaries in zone/side/point index space.
	zoneStart := make([]int64, pieces+1)
	interiorStart := make([]int64, pieces+1)
	for k := 0; k < pieces; k++ {
		zoneStart[k+1] = zoneStart[k] + zonesOf[k]
		interiorStart[k+1] = interiorStart[k] + interiorOf[k]
	}
	interiorBase := sharedTotal

	// Pointer fields.
	mapsz := sides.Index("mapsz")
	mapss3 := sides.Index("mapss3")
	mapss4 := sides.Index("mapss4")
	mapsp1 := sides.Index("mapsp1")
	mapsp2 := sides.Index("mapsp2")

	pieceOfZone := func(z int64) int {
		for k := 0; k < pieces; k++ {
			if z < zoneStart[k+1] {
				return k
			}
		}
		return pieces - 1
	}
	rng := &lcg{s: 3}
	for z := int64(0); z < totalZones; z++ {
		k := pieceOfZone(z)
		zl := z - zoneStart[k] // zone index within the piece
		for c := int64(0); c < 4; c++ {
			s := 4*z + c
			mapsz[s] = z
			mapss3[s] = 4*z + (c+3)%4
			mapss4[s] = 4*z + (c+1)%4
			// Zones in the first/last row of a piece touch boundary
			// (shared) points; interior zones use the piece's own points.
			onLowBoundary := k > 0 && zl < cfg.W
			onHighBoundary := k < pieces-1 && zl >= zonesOf[k]-cfg.W
			p1 := interiorBase + interiorStart[k] + (zl+c)%interiorOf[k]
			p2 := interiorBase + interiorStart[k] + (zl+c+1)%interiorOf[k]
			if onLowBoundary && c == 0 {
				b := int64(k - 1)
				p1 = b*ptsPerBoundary + (zl % ptsPerBoundary)
			}
			if onHighBoundary && c == 2 {
				b := int64(k)
				p2 = b*ptsPerBoundary + ((zl + rng.intn(2)) % ptsPerBoundary)
			}
			mapsp1[s] = p1
			mapsp2[s] = p2
		}
	}

	// Initial state.
	for _, f := range []string{"zvol", "zm", "ze"} {
		data := zones.Scalar(f)
		for i := range data {
			data[i] = float64(i%9 + 1)
		}
	}
	for _, f := range []string{"px", "py", "pu", "pv"} {
		data := points.Scalar(f)
		for i := range data {
			data[i] = float64(i%13 + 1)
		}
	}
	smf := sides.Scalar("smf")
	for i := range smf {
		smf[i] = float64(i%5 + 1)
	}

	// Generator partitions.
	ppPriv := make([]geometry.IndexSet, pieces)
	ppShared := make([]geometry.IndexSet, pieces)
	owner := make([]geometry.IndexSet, pieces)
	rsSubs := make([]geometry.IndexSet, pieces)
	rzSubs := make([]geometry.IndexSet, pieces)
	for k := 0; k < pieces; k++ {
		ppPriv[k] = geometry.Range(interiorBase+interiorStart[k], interiorBase+interiorStart[k+1])
		// Piece k owns the boundary below it (boundary k-1... assign
		// boundary b to piece b).
		if k < pieces-1 {
			ppShared[k] = geometry.Range(int64(k)*ptsPerBoundary, int64(k+1)*ptsPerBoundary)
		} else {
			ppShared[k] = geometry.EmptySet()
		}
		owner[k] = ppPriv[k].Union(ppShared[k])
		rzSubs[k] = geometry.Range(zoneStart[k], zoneStart[k+1])
		rsSubs[k] = geometry.Range(4*zoneStart[k], 4*zoneStart[k+1])
	}

	m := ir.NewMachine().AddRegion(zones).AddRegion(sides).AddRegion(points)
	return &Mesh{
		Machine:    m,
		PpPrivate:  region.NewPartition("pp_private", points, ppPriv),
		PpShared:   region.NewPartition("pp_shared", points, ppShared),
		RsP:        region.NewPartition("rs_p", sides, rsSubs),
		RzP:        region.NewPartition("rz_p", zones, rzSubs),
		PointOwner: region.NewPartition("pointOwner", points, owner),
		ZonesOf:    zonesOf,
	}
}

type lcg struct{ s uint64 }

func (l *lcg) next() uint64 {
	l.s = l.s*6364136223846793005 + 1442695040888963407
	return l.s >> 17
}

func (l *lcg) intn(n int64) int64 { return int64(l.next() % uint64(n)) }

// externs returns the external partitions for a hint level.
func (mesh *Mesh) externs(level int) map[string]*region.Partition {
	switch level {
	case 1:
		return map[string]*region.Partition{
			"pp_private": mesh.PpPrivate,
			"pp_shared":  mesh.PpShared,
		}
	case 2:
		return map[string]*region.Partition{
			"pp_private": mesh.PpPrivate,
			"pp_shared":  mesh.PpShared,
			"rs_p":       mesh.RsP,
			"rz_p":       mesh.RzP,
		}
	default:
		return nil
	}
}

// Executable instantiates the compiled program for the distributed
// executor at a piece count. The level must match the hint level c was
// compiled with (it selects the generator partitions to bind).
func Executable(cfg Config, c *autopart.Compiled, pieces, level int) (*exec.Program, error) {
	mesh := Build(cfg, pieces)
	auto, err := apputil.InstantiateAuto(c, mesh.Machine, pieces, mesh.externs(level))
	if err != nil {
		return nil, err
	}
	return &exec.Program{Machine: mesh.Machine, Plan: auto.Plan, Parts: auto.Parts, Owners: ownerState(mesh)}, nil
}

// AutoPoint prices the auto-parallelized version at a hint level.
func AutoPoint(cfg Config, model sim.Model, c *autopart.Compiled, mesh *Mesh, pieces, level int) (sim.Point, error) {
	auto, err := apputil.InstantiateAuto(c, mesh.Machine, pieces, mesh.externs(level))
	if err != nil {
		return sim.Point{}, err
	}
	st := ownerState(mesh)
	stats, err := apputil.MeasureIterations(model, auto.Launches, auto.Parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      pieces,
		Time:       stats.Time,
		Throughput: float64(cfg.ZonesPerPiece) / stats.Time,
	}, nil
}

func ownerState(mesh *Mesh) *sim.State {
	return sim.NewState().
		OwnAll("Zones", zoneFields, mesh.RzP).
		OwnAll("Sides", append([]string{"mapsz", "mapss3", "mapss4", "mapsp1", "mapsp2"}, sideFieldsScalar...), mesh.RsP).
		OwnAll("Points", pointFields, mesh.PointOwner)
}

// ManualPoint prices the hand-optimized version: piece-aligned
// partitions, ghost points (own + both adjacent boundary groups),
// private-point reductions in place, shared ones via tight instances.
func ManualPoint(cfg Config, model sim.Model, c *autopart.Compiled, mesh *Mesh, pieces int) (sim.Point, error) {
	points := mesh.Machine.Regions["Points"]
	ghost := make([]geometry.IndexSet, pieces)
	sharedInst := make([]geometry.IndexSet, pieces)
	for k := 0; k < pieces; k++ {
		g := mesh.PpPrivate.Sub(k).Union(mesh.PpShared.Sub(k))
		s := mesh.PpShared.Sub(k)
		if k > 0 {
			g = g.Union(mesh.PpShared.Sub(k - 1))
			s = s.Union(mesh.PpShared.Sub(k - 1))
		}
		ghost[k] = g
		sharedInst[k] = s
	}
	parts := map[string]*region.Partition{
		"zones":  mesh.RzP,
		"sides":  mesh.RsP,
		"points": mesh.PointOwner,
		"priv":   mesh.PpPrivate,
		"ghost":  region.NewPartition("ghost", points, ghost),
		"shared": region.NewPartition("shared", points, sharedInst),
	}

	var launches []*runtime.Launch
	for i, pl := range c.Parallel {
		work := float64(len(pl.Access))
		switch pl.Loop.Region {
		case "Points":
			launches = append(launches, &runtime.Launch{
				Name: fmt.Sprintf("pt%d", i), IterSym: "points", WorkPerElement: work,
				Reqs: []runtime.Requirement{
					{Region: "Points", Fields: pointFields, Priv: runtime.ReadWrite, Sym: "points"},
				},
			})
		case "Zones":
			launches = append(launches, &runtime.Launch{
				Name: fmt.Sprintf("zn%d", i), IterSym: "zones", WorkPerElement: work,
				Reqs: []runtime.Requirement{
					{Region: "Zones", Fields: zoneFields, Priv: runtime.ReadWrite, Sym: "zones"},
				},
			})
		default: // Sides
			reqs := []runtime.Requirement{
				{Region: "Sides", Fields: append([]string{"mapsz", "mapss3", "mapss4", "mapsp1", "mapsp2"}, sideFieldsScalar...), Priv: runtime.ReadWrite, Sym: "sides"},
				{Region: "Zones", Fields: []string{"zp", "zr", "zdu", "zvol", "zw"}, Priv: runtime.ReadWrite, Sym: "zones"},
			}
			// Side loops touching points read ghosts, reduce privately
			// in place, and use a tight shared instance.
			if touchesPoints(c, i) {
				reqs = append(reqs,
					runtime.Requirement{Region: "Points", Fields: []string{"px", "py"}, Priv: runtime.ReadOnly, Sym: "ghost"},
					runtime.Requirement{Region: "Points", Fields: []string{"pf"}, Priv: runtime.Reduce, Sym: "shared", ReduceOp: "+="},
				)
			}
			launches = append(launches, &runtime.Launch{
				Name: fmt.Sprintf("sd%d", i), IterSym: "sides", WorkPerElement: work, Reqs: reqs,
			})
		}
	}
	st := ownerState(mesh)
	stats, err := apputil.MeasureIterations(model, launches, parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      pieces,
		Time:       stats.Time,
		Throughput: float64(cfg.ZonesPerPiece) / stats.Time,
	}, nil
}

// touchesPoints reports whether a loop accesses the point region.
func touchesPoints(c *autopart.Compiled, loop int) bool {
	for _, info := range c.Parallel[loop].Access {
		if info.Region == "Points" {
			return true
		}
	}
	return false
}

// Figure14e produces the Manual, Auto+Hint2, Auto+Hint1, and Auto
// series.
func Figure14e(cfg Config, model sim.Model, nodeCounts []int) (sim.Figure, error) {
	compiled := make([]*autopart.Compiled, 3)
	for level := 0; level <= 2; level++ {
		c, err := autopart.Compile(HintSource(level), autopart.Options{})
		if err != nil {
			return sim.Figure{}, fmt.Errorf("pennant hint%d: %w", level, err)
		}
		compiled[level] = c
	}
	series := []sim.Series{
		{Label: "Manual"},
		{Label: "Auto+Hint2"},
		{Label: "Auto+Hint1"},
		{Label: "Auto"},
	}
	points, err := sim.Sweep(nodeCounts, func(n int) ([4]sim.Point, error) {
		var out [4]sim.Point
		mesh := Build(cfg, n)
		mp, err := ManualPoint(cfg, model, compiled[0], mesh, n)
		if err != nil {
			return out, fmt.Errorf("pennant manual nodes=%d: %w", n, err)
		}
		out[0] = mp
		for level := 2; level >= 0; level-- {
			p, err := AutoPoint(cfg, model, compiled[level], mesh, n, level)
			if err != nil {
				return out, fmt.Errorf("pennant hint%d nodes=%d: %w", level, n, err)
			}
			out[3-level] = p
		}
		return out, nil
	})
	if err != nil {
		return sim.Figure{}, err
	}
	for _, p := range points {
		for i := range series {
			series[i].Points = append(series[i].Points, p[i])
		}
	}
	return sim.Figure{
		ID:       "14e",
		Title:    fmt.Sprintf("PENNANT (%d zones/node)", cfg.ZonesPerPiece),
		WorkUnit: "zones/s",
		Series:   series,
	}, nil
}

// CompileOnly compiles the hint-less kernel (for Table 1).
func CompileOnly() (*autopart.Compiled, error) {
	return autopart.Compile(Source(), autopart.Options{})
}
