package pennant

import (
	"strings"
	"testing"

	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

func TestSourceCompiles(t *testing.T) {
	c, err := CompileOnly()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parallel) != 37 {
		t.Errorf("parallel loops = %d, want 37 (Table 1)", len(c.Parallel))
	}
	// Side loops are not relaxed (geometry loops block the group), so
	// the point reductions carry §5.2 private sub-partitions.
	for _, p := range c.Plans {
		if p.Relaxed {
			t.Error("no PENNANT loop should be relaxed")
		}
	}
	if len(c.Private.PrivateOf) == 0 {
		t.Error("expected private sub-partitions for the point/zone reductions")
	}
}

func TestHint2ReusesGeneratorPartitions(t *testing.T) {
	c, err := autopart.Compile(HintSource(2), autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := c.Solution.Program.String()
	for _, frag := range []string{
		"= rs_p",
		"= rz_p",
		"image(rs_p, Sides[·].mapsz, Zones)",
		"(pp_private ∪ pp_shared)",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("Hint2 solution missing %q:\n%s", frag, text)
		}
	}
	// No fresh equal partitions of Sides or Zones.
	if strings.Contains(text, "equal(Sides)") || strings.Contains(text, "equal(Zones)") {
		t.Errorf("Hint2 should reuse the generator partitions:\n%s", text)
	}
}

func TestHint1KeepsEqualSides(t *testing.T) {
	c, err := autopart.Compile(HintSource(1), autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	text := c.Solution.Program.String()
	if !strings.Contains(text, "equal(Sides)") {
		t.Errorf("Hint1 has no side partition hint and must synthesize one:\n%s", text)
	}
	if !strings.Contains(text, "(pp_private ∪ pp_shared)") {
		t.Errorf("Hint1 should reuse the point partitions:\n%s", text)
	}
}

func TestMeshShape(t *testing.T) {
	cfg := Config{W: 8, ZonesPerPiece: 64, Jitter: 8}
	mesh := Build(cfg, 4)
	zones := mesh.Machine.Regions["Zones"]
	sides := mesh.Machine.Regions["Sides"]
	points := mesh.Machine.Regions["Points"]

	if zones.Size() != 4*64 {
		t.Errorf("zones = %d", zones.Size())
	}
	if sides.Size() != 4*zones.Size() {
		t.Errorf("sides = %d", sides.Size())
	}
	var total int64
	for _, z := range mesh.ZonesOf {
		total += z
	}
	if total != zones.Size() {
		t.Errorf("zonesOf sums to %d", total)
	}
	// Jitter must make pieces uneven.
	if mesh.ZonesOf[0] == mesh.ZonesOf[1] {
		t.Error("pieces should be uneven")
	}

	// Pointers valid; mapss3/4 stay within the same zone's sides.
	mapsz := sides.Index("mapsz")
	mapss3 := sides.Index("mapss3")
	for s := int64(0); s < sides.Size(); s++ {
		if mapsz[s] != s/4 {
			t.Fatalf("mapsz[%d] = %d", s, mapsz[s])
		}
		if mapss3[s]/4 != s/4 {
			t.Fatalf("mapss3 escapes the zone: side %d -> %d", s, mapss3[s])
		}
	}
	for _, f := range []string{"mapsp1", "mapsp2"} {
		for _, v := range sides.Index(f) {
			if v < 0 || v >= points.Size() {
				t.Fatalf("%s out of range: %d", f, v)
			}
		}
	}

	// Generator partitions: disjoint complete owner; rs_p/rz_p aligned.
	if !mesh.PointOwner.IsDisjoint() || !mesh.PointOwner.IsComplete() {
		t.Error("point owner must be disjoint and complete")
	}
	if !mesh.RsP.IsDisjoint() || !mesh.RsP.IsComplete() {
		t.Error("rs_p must be disjoint and complete")
	}
	if !mesh.RzP.IsDisjoint() || !mesh.RzP.IsComplete() {
		t.Error("rz_p must be disjoint and complete")
	}
}

func TestDifferentialSmall(t *testing.T) {
	cfg := Config{W: 8, ZonesPerPiece: 48, Jitter: 8}
	for level := 0; level <= 2; level++ {
		c, err := autopart.Compile(HintSource(level), autopart.Options{})
		if err != nil {
			t.Fatalf("hint%d: %v", level, err)
		}
		seqMesh := Build(cfg, 3)
		parMesh := Build(cfg, 3)
		if err := c.RunSequential(seqMesh.Machine); err != nil {
			t.Fatalf("hint%d sequential: %v", level, err)
		}
		if err := c.RunParallel(parMesh.Machine, 3, parMesh.externs(level)); err != nil {
			t.Fatalf("hint%d parallel: %v", level, err)
		}
		for name, r := range seqMesh.Machine.Regions {
			if same, diff := r.SameData(parMesh.Machine.Regions[name]); !same {
				t.Fatalf("hint%d region %s differs: %s", level, name, diff)
			}
		}
	}
}

func TestFigure14eShape(t *testing.T) {
	cfg := Config{W: 32, ZonesPerPiece: 1600, Jitter: 64}
	model := sim.ModelFor(float64(cfg.ZonesPerPiece)*4*20, RealIterSeconds)
	fig, err := Figure14e(cfg, model, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	manual, _ := fig.SeriesByLabel("Manual")
	hint2, _ := fig.SeriesByLabel("Auto+Hint2")
	hint1, _ := fig.SeriesByLabel("Auto+Hint1")
	auto, _ := fig.SeriesByLabel("Auto")

	// Paper shape: Auto keeps up only to ~4 nodes then drops; Hint1 sits
	// between Auto and Hint2; Hint2 matches Manual.
	a4, _ := auto.At(4)
	h4, _ := hint2.At(4)
	if a4.Throughput < 0.85*h4.Throughput {
		t.Errorf("Auto should keep up to 4 nodes\n%s", fig.Render())
	}
	a32, _ := auto.At(32)
	h32, _ := hint2.At(32)
	if a32.Throughput > 0.85*h32.Throughput {
		t.Errorf("Auto should drop at scale\n%s", fig.Render())
	}
	h132, _ := hint1.At(32)
	if h132.Throughput > h32.Throughput {
		t.Errorf("Hint1 should not beat Hint2\n%s", fig.Render())
	}
	m32, _ := manual.At(32)
	if h32.Throughput < 0.95*m32.Throughput {
		t.Errorf("Hint2 should match Manual\n%s", fig.Render())
	}
	if eff := hint2.Efficiency(); eff < 0.85 {
		t.Errorf("Hint2 efficiency = %.3f\n%s", eff, fig.Render())
	}
}
