// Package spmv is the SpMV microbenchmark of §6.1 (Fig. 10 / Fig. 14a):
// CSR sparse matrix-vector multiplication over a banded ("diagonal")
// matrix with a fixed number of nonzeros per row, auto-parallelized via
// the generalized IMAGE operator of §4.
package spmv

import (
	"fmt"

	"autopart/internal/apps/apputil"
	"autopart/internal/exec"
	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// Source is the SpMV kernel of Fig. 10a in DSL syntax.
const Source = `
region Y { val: scalar }
region Ranges : Y { span: range(Mat) }
region Mat { val: scalar, ind: index(X) }
region X : Y { val: scalar }

for i in Y {
  for k in Ranges[i].span {
    Y[i].val += Mat[k].val * X[Mat[k].ind].val
  }
}
`

// RealIterSeconds is the real system's per-node iteration time implied
// by Fig. 14a (0.4e9 nonzeros/node at ~8e9 nonzeros/s/node).
const RealIterSeconds = 0.05

// Config sizes the workload.
type Config struct {
	// RowsPerNode is the number of matrix rows per node (weak scaling).
	RowsPerNode int64
	// NnzPerRow is the fixed nonzero count per row (the band width).
	NnzPerRow int64
}

// DefaultConfig is a laptop-scale stand-in for the paper's 0.4e9
// nonzeros per node.
func DefaultConfig() Config {
	return Config{RowsPerNode: 4096, NnzPerRow: 8}
}

// BuildMachine generates the banded CSR matrix for a node count: row i
// has nonzeros in columns i-b .. i+b-1 clipped to the matrix.
func BuildMachine(cfg Config, nodes int) *ir.Machine {
	rows := cfg.RowsPerNode * int64(nodes)
	half := cfg.NnzPerRow / 2

	y := region.New("Y", rows)
	y.AddScalarField("val")
	ranges := region.New("Ranges", rows)
	ranges.AddRangeField("span")
	x := region.New("X", rows)
	x.AddScalarField("val")

	// Count nonzeros first.
	var nnz int64
	colsOf := func(i int64) (int64, int64) {
		lo := i - half
		hi := i + (cfg.NnzPerRow - half)
		if lo < 0 {
			lo = 0
		}
		if hi > rows {
			hi = rows
		}
		return lo, hi
	}
	for i := int64(0); i < rows; i++ {
		lo, hi := colsOf(i)
		nnz += hi - lo
	}

	mat := region.New("Mat", nnz)
	mat.AddScalarField("val")
	mat.AddIndexField("ind")
	spans := ranges.Ranges("span")
	vals := mat.Scalar("val")
	inds := mat.Index("ind")
	xv := x.Scalar("val")

	var off int64
	for i := int64(0); i < rows; i++ {
		lo, hi := colsOf(i)
		spans[i] = geometry.Interval{Lo: off, Hi: off + (hi - lo)}
		for c := lo; c < hi; c++ {
			vals[off] = float64((i+c)%7 + 1)
			inds[off] = c
			off++
		}
		xv[i] = float64(i%13 + 1)
	}

	return ir.NewMachine().AddRegion(y).AddRegion(ranges).AddRegion(mat).AddRegion(x)
}

// instantiate evaluates the compiled program at a node count, applies
// SpMV's nonzero-weighted compute model, and builds the initial owner
// distribution (the row partition and its same-spaced views, plus the
// matrix partition).
func instantiate(c *autopart.Compiled, m *ir.Machine, nodes int) (*apputil.Auto, *sim.State, error) {
	auto, err := apputil.InstantiateAuto(c, m, nodes, nil)
	if err != nil {
		return nil, nil, err
	}

	// Weight each task's compute by its share of the matrix, not its row
	// count.
	matSym, ok := auto.AccessSym(0, "Mat", -1)
	if !ok {
		return nil, nil, fmt.Errorf("spmv: no Mat access")
	}
	auto.Launches[0].WorkSym = matSym
	// One inner-loop iteration ≈ 1 work unit per nonzero.
	auto.Launches[0].WorkPerElement = 1

	iter := auto.Parts[auto.IterSym(0)]
	matPart := auto.Parts[matSym]
	st := sim.NewState().
		Own("Y", "val", iter).
		Own("Ranges", "span", rename(iter, m.Regions["Ranges"])).
		OwnAll("Mat", []string{"val", "ind"}, matPart).
		Own("X", "val", rename(iter, m.Regions["X"]))
	return auto, st, nil
}

// Executable instantiates the compiled program for the distributed
// executor at a node count.
func Executable(cfg Config, c *autopart.Compiled, nodes int) (*exec.Program, error) {
	m := BuildMachine(cfg, nodes)
	auto, st, err := instantiate(c, m, nodes)
	if err != nil {
		return nil, err
	}
	return &exec.Program{Machine: m, Plan: auto.Plan, Parts: auto.Parts, Owners: st}, nil
}

// AutoPoint prices one node count with the auto-parallelized code.
func AutoPoint(cfg Config, model sim.Model, c *autopart.Compiled, nodes int) (sim.Point, error) {
	m := BuildMachine(cfg, nodes)
	auto, st, err := instantiate(c, m, nodes)
	if err != nil {
		return sim.Point{}, err
	}

	stats, err := apputil.MeasureIterations(model, auto.Launches, auto.Parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	nnz := float64(m.Regions["Mat"].Size())
	return sim.Point{
		Nodes:      nodes,
		Time:       stats.Time,
		Throughput: nnz / float64(nodes) / stats.Time,
	}, nil
}

// rename views a partition of one region as the owner distribution of a
// same-spaced region (Y, Ranges, and X share an index space).
func rename(p *region.Partition, r *region.Region) *region.Partition {
	subs := make([]geometry.IndexSet, p.NumSubs())
	for i := range subs {
		subs[i] = p.Sub(i)
	}
	return region.NewPartition(p.Name()+"@"+r.Name(), r, subs)
}

// Figure14a produces the weak-scaling series of Fig. 14a (Auto only, as
// in the paper).
func Figure14a(cfg Config, model sim.Model, nodeCounts []int) (sim.Figure, error) {
	c, err := autopart.Compile(Source, autopart.Options{})
	if err != nil {
		return sim.Figure{}, err
	}
	points, err := sim.Sweep(nodeCounts, func(n int) (sim.Point, error) {
		p, err := AutoPoint(cfg, model, c, n)
		if err != nil {
			return sim.Point{}, fmt.Errorf("spmv nodes=%d: %w", n, err)
		}
		return p, nil
	})
	if err != nil {
		return sim.Figure{}, err
	}
	auto := sim.Series{Label: "Auto", Points: points}
	return sim.Figure{
		ID:       "14a",
		Title:    fmt.Sprintf("SpMV (%d non-zeros/node)", cfg.RowsPerNode*cfg.NnzPerRow),
		WorkUnit: "non-zeros/s",
		Series:   []sim.Series{auto},
	}, nil
}

// CompileOnly compiles the kernel (for Table 1).
func CompileOnly() (*autopart.Compiled, error) {
	return autopart.Compile(Source, autopart.Options{})
}
