package spmv

import (
	"testing"

	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

func TestBuildMachineShape(t *testing.T) {
	cfg := Config{RowsPerNode: 16, NnzPerRow: 4}
	m := BuildMachine(cfg, 2)
	rows := int64(32)
	if m.Regions["Y"].Size() != rows || m.Regions["X"].Size() != rows {
		t.Fatal("vector sizes wrong")
	}
	mat := m.Regions["Mat"]
	// Interior rows have exactly NnzPerRow entries; boundary rows fewer.
	spans := m.Regions["Ranges"].Ranges("span")
	if spans[16].Len() != 4 {
		t.Errorf("interior row nnz = %d", spans[16].Len())
	}
	if spans[0].Len() >= 4 {
		t.Errorf("boundary row should be clipped: %d", spans[0].Len())
	}
	// Column indices stay in range.
	for _, c := range mat.Index("ind") {
		if c < 0 || c >= rows {
			t.Fatalf("column %d out of range", c)
		}
	}
}

func TestDifferentialSmall(t *testing.T) {
	cfg := Config{RowsPerNode: 12, NnzPerRow: 4}
	c, err := autopart.Compile(Source, autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqM := BuildMachine(cfg, 2)
	parM := BuildMachine(cfg, 2)
	if err := c.RunSequential(seqM); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(parM, 3, nil); err != nil {
		t.Fatal(err)
	}
	for name, r := range seqM.Regions {
		if same, diff := r.SameData(parM.Regions[name]); !same {
			t.Fatalf("region %s differs: %s", name, diff)
		}
	}
}

func TestFigure14aShape(t *testing.T) {
	cfg := Config{RowsPerNode: 512, NnzPerRow: 8}
	fig, err := Figure14a(cfg, sim.ModelFor(float64(cfg.RowsPerNode*cfg.NnzPerRow), RealIterSeconds), []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	auto, ok := fig.SeriesByLabel("Auto")
	if !ok || len(auto.Points) != 5 {
		t.Fatalf("series = %+v", fig.Series)
	}
	// The paper reports 99% parallel efficiency: the banded matrix keeps
	// X reads almost entirely local. Allow a generous margin but demand
	// near-flat scaling.
	if eff := auto.Efficiency(); eff < 0.90 || eff > 1.02 {
		t.Errorf("parallel efficiency = %.3f, want ≈0.99\n%s", eff, fig.Render())
	}
}

func TestCompileOnly(t *testing.T) {
	c, err := CompileOnly()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parallel) != 1 {
		t.Errorf("parallel loops = %d, want 1 (Table 1)", len(c.Parallel))
	}
}
