// Package stencil is the Stencil benchmark of §6.2 (Fig. 14b): a 9-point
// stencil on a 2D grid (PRK Stencil), linearized row-major. The
// auto-parallelized version derives one image partition per neighbor
// offset (eight distinct subset constraints); the hand-optimized version
// maintains a consolidated halo, so it moves the same boundary rows with
// fewer, larger transfers — the source of the paper's ~3% gap.
package stencil

import (
	"fmt"
	"strings"

	"autopart/internal/apps/apputil"
	"autopart/internal/exec"
	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/runtime"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// neighborOffsets are the eight non-center points of the 9-point stencil
// on a row-major grid of the given width.
func neighborOffsets(width int64) map[string]int64 {
	return map[string]int64{
		"nw": -width - 1, "nn": -width, "ne": -width + 1,
		"ww": -1, "ee": 1,
		"sw": width - 1, "ss": width, "se": width + 1,
	}
}

var neighborNames = []string{"nw", "nn", "ne", "ww", "ee", "sw", "ss", "se"}

// Source builds the two-loop DSL program (compute + copy-back; Table 1
// lists 2 parallel loops for Stencil).
func Source() string {
	var sb strings.Builder
	sb.WriteString("region Grid { vin: scalar, vout: scalar }\n")
	for _, n := range neighborNames {
		fmt.Fprintf(&sb, "function %s : Grid -> Grid\n", n)
	}
	sb.WriteString("for i in Grid {\n")
	sb.WriteString("  Grid[i].vout = Grid[i].vin\n")
	for _, n := range neighborNames {
		fmt.Fprintf(&sb, "  if (%s(i) in Grid) {\n    Grid[i].vout += Grid[%s(i)].vin\n  }\n", n, n)
	}
	sb.WriteString("}\n")
	sb.WriteString("for j in Grid {\n  Grid[j].vin = Grid[j].vout\n}\n")
	return sb.String()
}

// RealIterSeconds is the real system's per-node iteration time implied
// by Fig. 14b (0.9e9 points/node at ~1e10 points/s/node).
const RealIterSeconds = 0.09

// Config sizes the workload.
type Config struct {
	// Width is the global grid width (fixed across node counts).
	Width int64
	// RowsPerNode is the block height per node (weak scaling).
	RowsPerNode int64
}

// DefaultConfig stands in for the paper's 0.9e9 points per node. The
// aspect ratio (wide, short blocks) is chosen so the halo-to-compute
// ratio lands in the regime where the paper's manual-vs-auto gap is
// visible.
func DefaultConfig() Config { return Config{Width: 1024, RowsPerNode: 16} }

// PointsPerNode returns the weak-scaling work unit count.
func (c Config) PointsPerNode() int64 { return c.Width * c.RowsPerNode }

// BuildMachine creates the grid and neighbor functions for a node count.
func BuildMachine(cfg Config, nodes int) *ir.Machine {
	size := cfg.PointsPerNode() * int64(nodes)
	g := region.New("Grid", size)
	g.AddScalarField("vin")
	g.AddScalarField("vout")
	vin := g.Scalar("vin")
	for i := range vin {
		vin[i] = float64(i%17 + 1)
	}
	m := ir.NewMachine().AddRegion(g)
	clamp := geometry.Interval{Lo: 0, Hi: size}
	for name, off := range neighborOffsets(cfg.Width) {
		m.AddFunc(name, geometry.AffineMap{Name: name, Stride: 1, Offset: off, Clamp: &clamp})
	}
	return m
}

// ownerState is the initial valid-instance distribution: all grid
// fields live where the compute loop iterates.
func ownerState(auto *apputil.Auto) *sim.State {
	iter := auto.Parts[auto.IterSym(0)]
	return sim.NewState().OwnAll("Grid", []string{"vin", "vout"}, iter)
}

// Executable instantiates the compiled program for the distributed
// executor at a node count.
func Executable(cfg Config, c *autopart.Compiled, nodes int) (*exec.Program, error) {
	m := BuildMachine(cfg, nodes)
	auto, err := apputil.InstantiateAuto(c, m, nodes, nil)
	if err != nil {
		return nil, err
	}
	return &exec.Program{Machine: m, Plan: auto.Plan, Parts: auto.Parts, Owners: ownerState(auto)}, nil
}

// AutoPoint prices the auto-parallelized version at one node count.
func AutoPoint(cfg Config, model sim.Model, c *autopart.Compiled, nodes int) (sim.Point, error) {
	m := BuildMachine(cfg, nodes)
	auto, err := apputil.InstantiateAuto(c, m, nodes, nil)
	if err != nil {
		return sim.Point{}, err
	}
	st := ownerState(auto)
	stats, err := apputil.MeasureIterations(model, auto.Launches, auto.Parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      nodes,
		Time:       stats.Time,
		Throughput: float64(cfg.PointsPerNode()) / stats.Time,
	}, nil
}

// ManualPoint prices the hand-optimized version: a block partition plus a
// single consolidated halo partition (block ± one row), one read
// requirement instead of eight.
func ManualPoint(cfg Config, model sim.Model, workCompute, workCopy float64, nodes int) (sim.Point, error) {
	m := BuildMachine(cfg, nodes)
	g := m.Regions["Grid"]
	block := region.Equal("block", g, nodes)
	size := g.Size()

	halos := make([]geometry.IndexSet, nodes)
	for j := 0; j < nodes; j++ {
		b, ok := block.Sub(j).Bounds()
		if !ok {
			halos[j] = geometry.EmptySet()
			continue
		}
		lo := b.Lo - cfg.Width
		hi := b.Hi + cfg.Width
		if lo < 0 {
			lo = 0
		}
		if hi > size {
			hi = size
		}
		halos[j] = geometry.Range(lo, hi)
	}
	halo := region.NewPartition("halo", g, halos)

	parts := map[string]*region.Partition{"block": block, "halo": halo}
	launches := []*runtime.Launch{
		{
			Name: "compute", IterSym: "block", WorkPerElement: workCompute,
			Reqs: []runtime.Requirement{
				{Region: "Grid", Fields: []string{"vin"}, Priv: runtime.ReadOnly, Sym: "halo"},
				{Region: "Grid", Fields: []string{"vout"}, Priv: runtime.ReadWrite, Sym: "block"},
			},
		},
		{
			Name: "copy", IterSym: "block", WorkPerElement: workCopy,
			Reqs: []runtime.Requirement{
				{Region: "Grid", Fields: []string{"vout"}, Priv: runtime.ReadOnly, Sym: "block"},
				{Region: "Grid", Fields: []string{"vin"}, Priv: runtime.ReadWrite, Sym: "block"},
			},
		},
	}
	st := sim.NewState().OwnAll("Grid", []string{"vin", "vout"}, block)
	stats, err := apputil.MeasureIterations(model, launches, parts, st, 1)
	if err != nil {
		return sim.Point{}, err
	}
	return sim.Point{
		Nodes:      nodes,
		Time:       stats.Time,
		Throughput: float64(cfg.PointsPerNode()) / stats.Time,
	}, nil
}

// Figure14b produces the Manual and Auto weak-scaling series.
func Figure14b(cfg Config, model sim.Model, nodeCounts []int) (sim.Figure, error) {
	c, err := autopart.Compile(Source(), autopart.Options{})
	if err != nil {
		return sim.Figure{}, err
	}
	manual := sim.Series{Label: "Manual"}
	auto := sim.Series{Label: "Auto"}
	type pair struct{ auto, manual sim.Point }
	points, err := sim.Sweep(nodeCounts, func(n int) (pair, error) {
		ap, err := AutoPoint(cfg, model, c, n)
		if err != nil {
			return pair{}, fmt.Errorf("stencil auto nodes=%d: %w", n, err)
		}
		// The manual kernel does the same arithmetic: reuse the auto
		// launches' work estimates for a fair comparison.
		workCompute := workOfLoop(c, 0)
		workCopy := workOfLoop(c, 1)
		mp, err := ManualPoint(cfg, model, workCompute, workCopy, n)
		if err != nil {
			return pair{}, fmt.Errorf("stencil manual nodes=%d: %w", n, err)
		}
		return pair{auto: ap, manual: mp}, nil
	})
	if err != nil {
		return sim.Figure{}, err
	}
	for _, p := range points {
		auto.Points = append(auto.Points, p.auto)
		manual.Points = append(manual.Points, p.manual)
	}
	return sim.Figure{
		ID:       "14b",
		Title:    fmt.Sprintf("Stencil (%d points/node)", cfg.PointsPerNode()),
		WorkUnit: "points/s",
		Series:   []sim.Series{manual, auto},
	}, nil
}

// workOfLoop mirrors runtime.FromParallelLoop's work estimate.
func workOfLoop(c *autopart.Compiled, loop int) float64 {
	return float64(len(c.Parallel[loop].Access))
}

// CompileOnly compiles the kernel (for Table 1).
func CompileOnly() (*autopart.Compiled, error) {
	return autopart.Compile(Source(), autopart.Options{})
}
