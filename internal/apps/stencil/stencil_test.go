package stencil

import (
	"testing"

	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

func TestSourceCompiles(t *testing.T) {
	c, err := CompileOnly()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Parallel) != 2 {
		t.Errorf("parallel loops = %d, want 2 (Table 1)", len(c.Parallel))
	}
	// Eight distinct image partitions plus the iteration partition:
	// count distinct symbols in the first loop.
	syms := map[string]bool{}
	for _, info := range c.Parallel[0].Access {
		syms[info.Sym] = true
	}
	if len(syms) < 9 {
		t.Errorf("distinct partitions in compute loop = %d, want ≥9 (8 neighbors + center)", len(syms))
	}
}

func TestDifferentialSmall(t *testing.T) {
	cfg := Config{Width: 8, RowsPerNode: 4}
	c, err := autopart.Compile(Source(), autopart.Options{})
	if err != nil {
		t.Fatal(err)
	}
	seqM := BuildMachine(cfg, 3)
	parM := BuildMachine(cfg, 3)
	if err := c.RunSequential(seqM); err != nil {
		t.Fatal(err)
	}
	if err := c.RunParallel(parM, 4, nil); err != nil {
		t.Fatal(err)
	}
	for name, r := range seqM.Regions {
		if same, diff := r.SameData(parM.Regions[name]); !same {
			t.Fatalf("region %s differs: %s", name, diff)
		}
	}
}

func TestFigure14bShape(t *testing.T) {
	cfg := DefaultConfig()
	model := sim.ModelFor(float64(cfg.PointsPerNode())*9, RealIterSeconds)
	fig, err := Figure14b(cfg, model, []int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	manual, _ := fig.SeriesByLabel("Manual")
	auto, _ := fig.SeriesByLabel("Auto")

	// Paper: manual ≈98% efficiency, auto ≈93%, auto ≈3% slower.
	if eff := manual.Efficiency(); eff < 0.90 {
		t.Errorf("manual efficiency = %.3f\n%s", eff, fig.Render())
	}
	if eff := auto.Efficiency(); eff < 0.80 {
		t.Errorf("auto efficiency = %.3f\n%s", eff, fig.Render())
	}
	// Auto must lag manual at scale, but not catastrophically (within
	// ~15%).
	am, _ := auto.At(16)
	mm, _ := manual.At(16)
	ratio := am.Throughput / mm.Throughput
	if ratio >= 1.0 || ratio < 0.85 {
		t.Errorf("auto/manual at 16 nodes = %.3f, want slightly below 1\n%s", ratio, fig.Render())
	}
}
