package constraint

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"autopart/internal/dpl"
)

// Label interning: region and function-symbol names are mapped to dense
// int32 ids in a small process-wide table (copy-on-write, like
// dpl.SymID but in a separate namespace so graph labels never consume
// partition-symbol ids). Graph matching compares labels by id — two
// int32 compares replace two string compares on the hottest loop of
// CommonSubgraphs.
var (
	labelMu    sync.Mutex // serializes writers only
	labelIDs   atomic.Pointer[map[string]int32]
	labelNames atomic.Pointer[[]string]
)

func init() {
	empty := map[string]int32{}
	labelIDs.Store(&empty)
	noNames := []string{}
	labelNames.Store(&noNames)
}

// labelID interns a region or function name, assigning the next dense id
// on first sight. Safe for concurrent use.
func labelID(name string) int32 {
	if id, ok := (*labelIDs.Load())[name]; ok {
		return id
	}
	labelMu.Lock()
	defer labelMu.Unlock()
	old := *labelIDs.Load()
	if id, ok := old[name]; ok {
		return id
	}
	id := int32(len(old))
	next := make(map[string]int32, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = id
	names := append(append([]string(nil), (*labelNames.Load())...), name)
	labelNames.Store(&names)
	labelIDs.Store(&next)
	return id
}

// labelName returns the name behind an interned label id.
func labelName(id int32) string { return (*labelNames.Load())[id] }

// Predicate-signature bits (Graph.sig): a node's signature records which
// DISJ/COMP predicates constrain it. The bitmask replaces the former
// "D"/"C"/"DC" concatenated string — it is order-insensitive, so a system
// listing COMP before DISJ gets the same signature as one listing DISJ
// before COMP (the strings "CD" and "DC" compared unequal).
const (
	sigDisj uint8 = 1 << iota
	sigComp
)

// Edge is one edge of a constraint graph in its printable form: an
// unlabeled edge From→To encodes From ⊆ To; an edge labeled with a
// function symbol encodes image(From, Func, R) ⊆ To (Fig. 9). Multi
// marks generalized IMAGE edges. Internally the graph stores edges as
// interned ids (rawEdge/csrEdge); Edge is materialized for rendering and
// tests only.
type Edge struct {
	From, To string
	Func     string // "" for plain subset edges
	Multi    bool
}

func (e Edge) String() string {
	if e.Func == "" {
		return fmt.Sprintf("%s → %s", e.From, e.To)
	}
	op := "image"
	if e.Multi {
		op = "IMAGE"
	}
	return fmt.Sprintf("%s →[%s %s] %s", e.From, op, e.Func, e.To)
}

// rawEdge is an edge in system (Subsets) order with interned symbol-id
// endpoints; the canonical edge storage, independent of node numbering.
type rawEdge struct {
	from, to int32 // dpl.SymID of the endpoints
	fn       int32 // interned function label id; -1 for plain subset edges
	multi    bool
}

// csrEdge is one adjacency entry: raw edges grouped by From node into a
// flat array (CSR layout), with the target as a node index so the
// matching loops read regions and signatures by direct indexing.
type csrEdge struct {
	to    int32 // node index in the owning graph
	fn    int32 // interned function label id; -1 for plain subset edges
	multi bool
}

// Graph is the constraint-graph view of a system: nodes are partition
// symbols (tagged with their regions), edges are the two subset-
// constraint forms the inference algorithm generates. Subset constraints
// of other shapes (e.g. involving external expressions) are not
// represented and therefore never unified away.
//
// The representation is fully interned: nodes are dense indexes into
// sorted-name order, regions and edge labels are interned label ids, the
// predicate signature is a 2-bit mask, and adjacency is a flat CSR
// array. Matching (CommonSubgraphs) runs entirely on int32 compares —
// no string hashing, no map iteration.
type Graph struct {
	names  []string // node names, sorted; the node handle is the index
	ids    []int32  // dpl.SymID per node, aligned with names
	region []int32  // interned region label id per node; -1 when none
	sig    []uint8  // sigDisj|sigComp bits per node

	// nodeOf maps dpl.SymID to node index (-1 when absent), dense over
	// the symbol ids the graph has seen.
	nodeOf []int32
	// byRegion lists node indexes per region id, ascending — the
	// candidate buckets of CommonSubgraphs' pair scan.
	byRegion map[int32][]int32

	raw   []rawEdge // edges in system (Subsets) order
	csr   []csrEdge // raw edges grouped by From node, raw order within
	start []int32   // len(names)+1 CSR offsets into csr

	// nPreds/nSubsets record how many conjuncts of the source system are
	// folded in; Extended grows the graph from that watermark.
	nPreds, nSubsets int
}

// BuildGraph constructs the constraint graph of a system.
func BuildGraph(sys *System) *Graph {
	return extendGraph(nil, sys, 0, 0)
}

// Covers reports whether the graph already folds in exactly the
// conjuncts of sys (by count; callers maintain the prefix invariant).
func (g *Graph) Covers(sys *System) bool {
	return g.nPreds == len(sys.Preds) && g.nSubsets == len(sys.Subsets)
}

// CanExtend reports whether sys has at least as many conjuncts as the
// graph folds in. Together with the caller-maintained invariant that
// sys's first nPreds/nSubsets conjuncts equal the ones the graph was
// built from, this makes Extended sound.
func (g *Graph) CanExtend(sys *System) bool {
	return g.nPreds <= len(sys.Preds) && g.nSubsets <= len(sys.Subsets)
}

// Extended returns the graph of sys, reusing this graph's node and edge
// tables and folding in only the conjuncts past its watermark. The
// receiver must have been built from a system whose Preds/Subsets are a
// prefix of sys's (content-wise) — the accumulated systems of
// Algorithm 3 grow by appending, so the solver maintains that invariant
// by construction and asserts it under AUTOPART_DEBUG_GRAPHCACHE=1. The
// receiver is not mutated; when sys adds nothing, the receiver itself is
// returned.
func (g *Graph) Extended(sys *System) *Graph {
	if !g.CanExtend(sys) {
		return BuildGraph(sys)
	}
	if g.Covers(sys) {
		return g
	}
	return extendGraph(g, sys, g.nPreds, g.nSubsets)
}

// extendGraph builds the graph of sys, either from scratch (base == nil)
// or by folding sys.Preds[fromPred:] and sys.Subsets[fromSub:] into a
// copy of base's tables. One pass over the delta, O(nodes+edges) table
// rebuilds, and a sort over only the *new* node names — no per-round
// re-sort of the full symbol set.
func extendGraph(base *Graph, sys *System, fromPred, fromSub int) *Graph {
	g := &Graph{nPreds: len(sys.Preds), nSubsets: len(sys.Subsets)}

	// Collect the delta's symbols (interned free-variable lists: no
	// traversal, no string hashing beyond first sight).
	var newNames []string
	var newIDs []int32
	maxID := int32(-1)
	if base != nil {
		maxID = int32(len(base.nodeOf)) - 1
	}
	seen := map[int32]bool{}
	note := func(fvs []string, ids []int32) {
		for i, id := range ids {
			if id > maxID {
				maxID = id
			}
			if base != nil && int(id) < len(base.nodeOf) && base.nodeOf[id] >= 0 {
				continue
			}
			if !seen[id] {
				seen[id] = true
				newNames = append(newNames, fvs[i])
				newIDs = append(newIDs, id)
			}
		}
	}
	for _, p := range sys.Preds[fromPred:] {
		_, fvs, ids := dpl.FvInfo(p.E)
		note(fvs, ids)
	}
	for _, c := range sys.Subsets[fromSub:] {
		_, fvs, ids := dpl.FvInfo(c.L)
		note(fvs, ids)
		_, fvs, ids = dpl.FvInfo(c.R)
		note(fvs, ids)
	}

	// Merge the (sorted) new names into the base node tables, remapping
	// base node indexes as they shift.
	ord := make([]int, len(newNames))
	for i := range ord {
		ord[i] = i
	}
	sort.Slice(ord, func(i, j int) bool { return newNames[ord[i]] < newNames[ord[j]] })
	nOld := 0
	if base != nil {
		nOld = len(base.names)
	}
	n := nOld + len(newNames)
	g.names = make([]string, 0, n)
	g.ids = make([]int32, 0, n)
	g.region = make([]int32, 0, n)
	g.sig = make([]uint8, 0, n)
	bi, ni := 0, 0
	for bi < nOld || ni < len(ord) {
		takeNew := bi >= nOld
		if !takeNew && ni < len(ord) {
			takeNew = newNames[ord[ni]] < base.names[bi]
		}
		if takeNew {
			k := ord[ni]
			g.names = append(g.names, newNames[k])
			g.ids = append(g.ids, newIDs[k])
			g.region = append(g.region, -1)
			g.sig = append(g.sig, 0)
			ni++
		} else {
			g.names = append(g.names, base.names[bi])
			g.ids = append(g.ids, base.ids[bi])
			g.region = append(g.region, base.region[bi])
			g.sig = append(g.sig, base.sig[bi])
			bi++
		}
	}
	g.nodeOf = make([]int32, maxID+1)
	for i := range g.nodeOf {
		g.nodeOf[i] = -1
	}
	for i, id := range g.ids {
		g.nodeOf[id] = int32(i)
	}

	// Fold in the delta predicates: regions from PART (later predicates
	// win, as in the former map build), signature bits from DISJ/COMP.
	for _, p := range sys.Preds[fromPred:] {
		v, ok := p.E.(dpl.Var)
		if !ok {
			continue
		}
		node := g.nodeOf[dpl.SymID(v.Name)]
		switch p.Kind {
		case Part:
			g.region[node] = labelID(p.Region)
		case Disj:
			g.sig[node] |= sigDisj
		case Comp:
			g.sig[node] |= sigComp
		}
	}

	// Append the delta edges, then rebuild the CSR index (counting sort
	// over node indexes keeps raw order within each From bucket).
	if base != nil {
		g.raw = append(make([]rawEdge, 0, len(base.raw)+len(sys.Subsets)-fromSub), base.raw...)
	}
	for _, c := range sys.Subsets[fromSub:] {
		to, ok := c.R.(dpl.Var)
		if !ok {
			continue
		}
		switch l := c.L.(type) {
		case dpl.Var:
			g.raw = append(g.raw, rawEdge{from: dpl.SymID(l.Name), to: dpl.SymID(to.Name), fn: -1})
		case dpl.ImageExpr:
			if from, ok := l.Of.(dpl.Var); ok {
				g.raw = append(g.raw, rawEdge{from: dpl.SymID(from.Name), to: dpl.SymID(to.Name), fn: labelID(l.Func)})
			}
		case dpl.ImageMultiExpr:
			if from, ok := l.Of.(dpl.Var); ok {
				g.raw = append(g.raw, rawEdge{from: dpl.SymID(from.Name), to: dpl.SymID(to.Name), fn: labelID(l.Func), multi: true})
			}
		}
	}
	g.start = make([]int32, n+1)
	for _, e := range g.raw {
		g.start[g.nodeOf[e.from]+1]++
	}
	for i := 0; i < n; i++ {
		g.start[i+1] += g.start[i]
	}
	g.csr = make([]csrEdge, len(g.raw))
	fill := append([]int32(nil), g.start[:n]...)
	for _, e := range g.raw {
		f := g.nodeOf[e.from]
		g.csr[fill[f]] = csrEdge{to: g.nodeOf[e.to], fn: e.fn, multi: e.multi}
		fill[f]++
	}

	g.byRegion = make(map[int32][]int32)
	for i, r := range g.region {
		if r >= 0 {
			g.byRegion[r] = append(g.byRegion[r], int32(i))
		}
	}
	return g
}

// out returns the CSR adjacency slice of a node.
func (g *Graph) out(node int32) []csrEdge {
	return g.csr[g.start[node]:g.start[node+1]]
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.names) }

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.raw) }

// NodeNames returns the node names in node order (sorted). The slice is
// a copy.
func (g *Graph) NodeNames() []string {
	return append([]string(nil), g.names...)
}

// RegionName returns the region of a node ("" when the node has no PART
// predicate or is absent).
func (g *Graph) RegionName(node string) string {
	i := sort.SearchStrings(g.names, node)
	if i >= len(g.names) || g.names[i] != node || g.region[i] < 0 {
		return ""
	}
	return labelName(g.region[i])
}

// edgeOf materializes one raw edge in printable form.
func (g *Graph) edgeOf(e rawEdge) Edge {
	out := Edge{From: dpl.SymName(e.from), To: dpl.SymName(e.to), Multi: e.multi}
	if e.fn >= 0 {
		out.Func = labelName(e.fn)
	}
	return out
}

// Edges materializes every edge in system order, for rendering and
// tests; the matching loops never touch this form.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.raw))
	for i, e := range g.raw {
		out[i] = g.edgeOf(e)
	}
	return out
}

// OutEdges returns the edges leaving a node, in system order.
func (g *Graph) OutEdges(node string) []Edge {
	i := sort.SearchStrings(g.names, node)
	if i >= len(g.names) || g.names[i] != node {
		return nil
	}
	var out []Edge
	for _, e := range g.out(int32(i)) {
		oe := Edge{From: node, To: g.names[e.to], Multi: e.multi}
		if e.fn >= 0 {
			oe.Func = labelName(e.fn)
		}
		out = append(out, oe)
	}
	return out
}

func (g *Graph) String() string {
	var sb strings.Builder
	for i, e := range g.raw {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(g.edgeOf(e).String())
	}
	return sb.String()
}

// Fingerprint returns a 128-bit structural fingerprint of the graph's
// semantic content — node names with regions and signatures (in node
// order) and edges (in system order, by endpoint names and label). Two
// graphs of the same system fingerprint identically regardless of how
// they were built (BuildGraph vs Extended); the solver's
// AUTOPART_DEBUG_GRAPHCACHE assertion relies on exactly that.
func (g *Graph) Fingerprint() [2]uint64 {
	var h [2]uint64
	fold := func(p [2]uint64) {
		h[0] = mix64(h[0] ^ p[0])
		h[1] = mix64(h[1] + p[1])
	}
	for i, name := range g.names {
		fold(dpl.HashString128(name))
		if g.region[i] >= 0 {
			fold(dpl.HashString128(labelName(g.region[i])))
		}
		fold([2]uint64{uint64(g.sig[i]) + 1, uint64(g.sig[i]) + 3})
	}
	for _, e := range g.raw {
		fold(dpl.HashString128(dpl.SymName(e.from)))
		fold(dpl.HashString128(dpl.SymName(e.to)))
		if e.fn >= 0 {
			fold(dpl.HashString128(labelName(e.fn)))
		}
		m := uint64(5)
		if e.multi {
			m = 7
		}
		fold([2]uint64{m, m})
	}
	return h
}

// Mapping is a candidate unification: pairs of symbols to be equated,
// keyed by the symbol from the second graph.
type Mapping map[string]string

// rawMapping is one grown candidate before Mapping materialization:
// (a-node, b-node) index pairs in growth order plus the count of
// signature mismatches used as the sort tiebreak.
type rawMapping struct {
	pairs      [][2]int32
	mismatches int
}

// materialize converts a rawMapping into the caller-facing name-keyed
// Mapping.
func (r rawMapping) materialize(a, b *Graph) Mapping {
	mp := make(Mapping, len(r.pairs))
	for _, p := range r.pairs {
		mp[b.names[p[1]]] = a.names[p[0]]
	}
	return mp
}

// mapSet is an open-addressed set of 128-bit mapping hashes, used for
// duplicate elimination. The built-in map spent measurable time hashing
// the [2]uint64 keys through the runtime; here a probe is two word
// compares.
type mapSet struct {
	keys [][2]uint64
	occ  []bool
	mask uint64
}

func newMapSet(n int) *mapSet {
	size := 16
	for size < 2*n {
		size *= 2
	}
	return &mapSet{
		keys: make([][2]uint64, size),
		occ:  make([]bool, size),
		mask: uint64(size - 1),
	}
}

// insert adds h and reports whether it was absent.
func (s *mapSet) insert(h [2]uint64) bool {
	for i := (h[0] ^ h[1]) & s.mask; ; i = (i + 1) & s.mask {
		if !s.occ[i] {
			s.occ[i] = true
			s.keys[i] = h
			return true
		}
		if s.keys[i] == h {
			return false
		}
	}
}

// CommonSubgraphs enumerates candidate unifications between the symbols
// of two constraint (sub)systems, largest first. A candidate maps nodes
// of b onto nodes of a such that regions match and every mapped edge of b
// has an identically-labeled counterpart in a. This is the product-graph
// construction the paper describes (§3.2); we enumerate maximal greedy
// matches rather than solving maximum-common-subgraph exactly.
//
// The enumeration is deterministic by construction: seed pairs are
// generated in (b-node, a-node) sorted-name order with exact-signature
// pairs first, and each seed grows through an insertion-ordered worklist
// (see grow). Seeds that would equate a symbol with itself are skipped —
// identity renames are discarded by the solver anyway (filterCand), so
// they only cost dedup work.
func CommonSubgraphs(a, b *Graph) []Mapping {
	raw := commonSubgraphsRaw(a, b)
	out := make([]Mapping, len(raw))
	for i, r := range raw {
		out[i] = r.materialize(a, b)
	}
	return out
}

// EachCommonSubgraph visits the same candidates in the same order as
// CommonSubgraphs but materializes each name-keyed Mapping only when
// reached; yield returning false stops the walk. The solver's greedy
// loop usually commits one of the first few candidates, so the (string-
// keyed map) materialization cost of the long tail is never paid.
func EachCommonSubgraph(a, b *Graph, yield func(Mapping) bool) {
	for _, r := range commonSubgraphsRaw(a, b) {
		if !yield(r.materialize(a, b)) {
			return
		}
	}
}

func commonSubgraphsRaw(a, b *Graph) []rawMapping {
	type pair struct{ an, bn int32 }
	var pairs []pair
	for exact := 0; exact < 2; exact++ {
		for bn := 0; bn < len(b.names); bn++ {
			rid := b.region[bn]
			if rid < 0 {
				continue
			}
			for _, an := range a.byRegion[rid] {
				if a.ids[an] == b.ids[bn] {
					continue // identity seed: nothing to unify
				}
				match := a.sig[an] == b.sig[bn]
				if (exact == 0) == match {
					pairs = append(pairs, pair{an, int32(bn)})
				}
			}
		}
	}

	// Grow a mapping greedily from each seed pair. The scratch state is
	// index-addressed and reset via the worklist (every mapped b-node is
	// on it exactly once), so a seed costs O(grown mapping), not
	// O(graph).
	m := make([]int32, len(b.names))
	for i := range m {
		m[i] = -1
	}
	used := make([]bool, len(a.names))
	var wl []int32

	var results []rawMapping
	seen := newMapSet(len(pairs))
	for _, seed := range pairs {
		for _, bn := range wl {
			used[m[bn]] = false
			m[bn] = -1
		}
		wl = wl[:0]
		m[seed.bn] = seed.an
		used[seed.an] = true
		wl = grow(a, b, m, used, append(wl, seed.bn))

		// Duplicate elimination: a commutative sum of whitened per-pair
		// id hashes (mappings are equal as pair sets). Same 128-bit
		// collision policy as the solver memo.
		var h [2]uint64
		mm := 0
		for _, bn := range wl {
			an := m[bn]
			key := uint64(uint32(a.ids[an]))<<32 | uint64(uint32(b.ids[bn]))
			h[0] += mix64(key + 0x9e3779b97f4a7c15)
			h[1] += mix64(key ^ 0x6a09e667f3bcc909)
			if a.sig[an] != b.sig[bn] {
				mm++
			}
		}
		if !seen.insert(h) {
			continue
		}
		ps := make([][2]int32, len(wl))
		for i, bn := range wl {
			ps[i] = [2]int32{m[bn], bn}
		}
		results = append(results, rawMapping{pairs: ps, mismatches: mm})
	}

	sort.SliceStable(results, func(i, j int) bool {
		if len(results[i].pairs) != len(results[j].pairs) {
			return len(results[i].pairs) > len(results[j].pairs)
		}
		return results[i].mismatches < results[j].mismatches
	})
	return results
}

// grow expands a seeded mapping: each mapped b-node's outgoing edges are
// matched against its a-image's outgoing edges (same label, same
// multiplicity, target regions equal), preferring a target with the same
// predicate signature and falling back to the first structurally
// compatible one. The worklist is processed in insertion order (breadth-
// first from the seed) and each b-node exactly once, which defines the
// growth order completely: when two b-nodes compete for the same a-node,
// the one discovered first wins. (The former implementation ranged over
// the mapping map while inserting into it, so that winner depended on
// Go's randomized map iteration order.) A single pass suffices: the
// mapped and used sets only grow, so an edge that finds no counterpart
// now never finds one later.
func grow(a, b *Graph, m []int32, used []bool, wl []int32) []int32 {
	for qi := 0; qi < len(wl); qi++ {
		bn := wl[qi]
		an := m[bn]
		for _, be := range b.out(bn) {
			if m[be.to] >= 0 {
				continue
			}
			fallback := int32(-1)
			found := false
			for _, ae := range a.out(an) {
				if used[ae.to] || ae.fn != be.fn || ae.multi != be.multi {
					continue
				}
				if a.region[ae.to] != b.region[be.to] {
					continue
				}
				if a.sig[ae.to] == b.sig[be.to] {
					m[be.to] = ae.to
					used[ae.to] = true
					wl = append(wl, be.to)
					found = true
					break
				}
				if fallback < 0 {
					fallback = ae.to
				}
			}
			if !found && fallback >= 0 {
				m[be.to] = fallback
				used[fallback] = true
				wl = append(wl, be.to)
			}
		}
	}
	return wl
}
