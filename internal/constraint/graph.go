package constraint

import (
	"fmt"
	"sort"
	"strings"

	"autopart/internal/dpl"
)

// Edge is one edge of a constraint graph: an unlabeled edge From→To
// encodes From ⊆ To; an edge labeled with a function symbol encodes
// image(From, Func, R) ⊆ To (Fig. 9). Multi marks generalized IMAGE
// edges.
type Edge struct {
	From, To string
	Func     string // "" for plain subset edges
	Multi    bool
}

func (e Edge) String() string {
	if e.Func == "" {
		return fmt.Sprintf("%s → %s", e.From, e.To)
	}
	op := "image"
	if e.Multi {
		op = "IMAGE"
	}
	return fmt.Sprintf("%s →[%s %s] %s", e.From, op, e.Func, e.To)
}

// Graph is the constraint-graph view of a system: nodes are partition
// symbols (tagged with their regions), edges are the two subset-
// constraint forms the inference algorithm generates. Subset constraints
// of other shapes (e.g. involving external expressions) are not
// represented and therefore never unified away.
type Graph struct {
	Nodes  []string          // sorted symbols
	Region map[string]string // node -> region (from PART predicates)
	// Sig is the node's predicate signature ("", "D", "C", or "DC").
	// Unification prefers same-signature pairings (mapping a plain read
	// partition onto a reduction target strengthens constraints
	// needlessly when an exact twin exists) but does not require them —
	// Example 5 merges a pred-less read partition with a COMP iteration
	// partition.
	Sig   map[string]string
	Edges []Edge
	// out indexes Edges by From node, in Edges order.
	out map[string][]Edge
}

// BuildGraph constructs the constraint graph of a system.
func BuildGraph(sys *System) *Graph {
	// Region shares the system index's map (graphs only read it).
	g := &Graph{Region: sys.partOfShared(), Sig: make(map[string]string, len(sys.Preds))}
	for _, p := range sys.Preds {
		v, ok := p.E.(dpl.Var)
		if !ok {
			continue
		}
		switch p.Kind {
		case Disj:
			g.Sig[v.Name] += "D"
		case Comp:
			g.Sig[v.Name] += "C"
		}
	}
	// Symbols() is already sorted and deduplicated.
	g.Nodes = sys.Symbols()
	for _, c := range sys.Subsets {
		to, ok := c.R.(dpl.Var)
		if !ok {
			continue
		}
		switch l := c.L.(type) {
		case dpl.Var:
			g.Edges = append(g.Edges, Edge{From: l.Name, To: to.Name})
		case dpl.ImageExpr:
			if from, ok := l.Of.(dpl.Var); ok {
				g.Edges = append(g.Edges, Edge{From: from.Name, To: to.Name, Func: l.Func})
			}
		case dpl.ImageMultiExpr:
			if from, ok := l.Of.(dpl.Var); ok {
				g.Edges = append(g.Edges, Edge{From: from.Name, To: to.Name, Func: l.Func, Multi: true})
			}
		}
	}
	g.out = make(map[string][]Edge, len(g.Edges))
	for _, e := range g.Edges {
		g.out[e.From] = append(g.out[e.From], e)
	}
	return g
}

// OutEdges returns edges leaving a node, in Edges order (indexed).
func (g *Graph) OutEdges(node string) []Edge {
	if g.out != nil {
		return g.out[node]
	}
	var out []Edge
	for _, e := range g.Edges {
		if e.From == node {
			out = append(out, e)
		}
	}
	return out
}

func (g *Graph) String() string {
	var sb strings.Builder
	for i, e := range g.Edges {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(e.String())
	}
	return sb.String()
}

// Mapping is a candidate unification: pairs of symbols to be equated,
// keyed by the symbol from the second graph.
type Mapping map[string]string

// CommonSubgraphs enumerates candidate unifications between the symbols
// of two constraint (sub)systems, largest first. A candidate maps nodes
// of b onto nodes of a such that regions match and every mapped edge of b
// has an identically-labeled counterpart in a. This is the product-graph
// construction the paper describes (§3.2); we enumerate maximal greedy
// matches rather than solving maximum-common-subgraph exactly.
func CommonSubgraphs(a, b *Graph) []Mapping {
	// Candidate node pairs: same region; exact-signature pairs first.
	// Bucketing a's nodes by region (in a.Nodes order) turns the pair
	// scan from |a|×|b| map lookups into per-region lists.
	aByRegion := map[string][]string{}
	for _, an := range a.Nodes {
		if r := a.Region[an]; r != "" {
			aByRegion[r] = append(aByRegion[r], an)
		}
	}
	type pair struct{ an, bn string }
	var pairs []pair
	for exact := 0; exact < 2; exact++ {
		for _, bn := range b.Nodes {
			for _, an := range aByRegion[b.Region[bn]] {
				match := a.Sig[an] == b.Sig[bn]
				if (exact == 0) == match {
					pairs = append(pairs, pair{an, bn})
				}
			}
		}
	}

	// Grow a mapping greedily from each seed pair, following matching
	// edges in both directions. Most seeds regrow a mapping already seen,
	// so the scratch maps are cleared and reused until a seed produces a
	// novel result (which keeps its maps and forces fresh ones).
	var results []Mapping
	var mismatches []int
	seen := map[[2]uint64]bool{}
	var m Mapping
	var used map[string]bool
	for _, seed := range pairs {
		if m == nil {
			m = Mapping{}
			used = map[string]bool{}
		} else {
			clear(m)
			clear(used)
		}
		m[seed.bn] = seed.an
		used[seed.an] = true
		grow(a, b, m, used)
		if len(m) == 0 {
			continue
		}
		key := mappingHash(m)
		if !seen[key] {
			seen[key] = true
			results = append(results, m)
			mm := 0
			for bn, an := range m {
				if a.Sig[an] != b.Sig[bn] {
					mm++
				}
			}
			mismatches = append(mismatches, mm)
			m, used = nil, nil
		}
	}
	order := make([]int, len(results))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool {
		i, j := order[x], order[y]
		if len(results[i]) != len(results[j]) {
			return len(results[i]) > len(results[j])
		}
		return mismatches[i] < mismatches[j]
	})
	out := make([]Mapping, len(results))
	for x, i := range order {
		out[x] = results[i]
	}
	return out
}

func grow(a, b *Graph, m Mapping, used map[string]bool) {
	changed := true
	for changed {
		changed = false
		for bn, an := range m {
			for _, be := range b.OutEdges(bn) {
				if _, mapped := m[be.To]; mapped {
					continue
				}
				// Prefer a target with the same predicate signature; fall
				// back to any structurally compatible one.
				var fallback string
				found := false
				for _, ae := range a.OutEdges(an) {
					if used[ae.To] || ae.Func != be.Func || ae.Multi != be.Multi {
						continue
					}
					if a.Region[ae.To] != b.Region[be.To] {
						continue
					}
					if a.Sig[ae.To] == b.Sig[be.To] {
						m[be.To] = ae.To
						used[ae.To] = true
						changed = true
						found = true
						break
					}
					if fallback == "" {
						fallback = ae.To
					}
				}
				if !found && fallback != "" {
					m[be.To] = fallback
					used[fallback] = true
					changed = true
				}
			}
		}
	}
}

// mappingHash fingerprints a mapping for duplicate elimination: a
// commutative sum of whitened per-pair hashes, so no sorted key string
// is built. Same 128-bit collision policy as the solver memo.
func mappingHash(m Mapping) [2]uint64 {
	var h [2]uint64
	for k, v := range m {
		hk := dpl.HashString128(k)
		hv := dpl.HashString128(v)
		h[0] += mix64(hk[0] + 3*hv[0] + 0x9e3779b97f4a7c15)
		h[1] += mix64(hk[1] + 3*hv[1] + 0x6a09e667f3bcc909)
	}
	return h
}
