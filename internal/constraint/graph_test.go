package constraint

import (
	"strings"
	"testing"

	"autopart/internal/dpl"
)

// figure9System builds the constraint of Example 5 / Fig. 9a:
//
//	image(P1, cell, Cells) ⊆ P2, image(P2, h, Cells) ⊆ P3,
//	image(P4, h, Cells) ⊆ P5
func figure9System() *System {
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: v("P1"), Region: "Particles"})
	for _, p := range []string{"P2", "P3", "P4", "P5"} {
		sys.AddPred(Pred{Kind: Part, E: v(p), Region: "Cells"})
	}
	sys.AddSubset(Subset{L: img(v("P1"), "cell", "Cells"), R: v("P2")})
	sys.AddSubset(Subset{L: img(v("P2"), "h", "Cells"), R: v("P3")})
	sys.AddSubset(Subset{L: img(v("P4"), "h", "Cells"), R: v("P5")})
	return sys
}

func TestBuildGraph(t *testing.T) {
	g := BuildGraph(figure9System())
	if len(g.Nodes) != 5 {
		t.Fatalf("nodes = %v", g.Nodes)
	}
	if len(g.Edges) != 3 {
		t.Fatalf("edges = %v", g.Edges)
	}
	if g.Region["P1"] != "Particles" || g.Region["P2"] != "Cells" {
		t.Errorf("regions = %v", g.Region)
	}
	out := g.OutEdges("P2")
	if len(out) != 1 || out[0].To != "P3" || out[0].Func != "h" {
		t.Errorf("OutEdges(P2) = %v", out)
	}
	s := g.String()
	if !strings.Contains(s, "P1 →[image cell] P2") {
		t.Errorf("graph string = %q", s)
	}
}

func TestBuildGraphPlainAndMultiEdges(t *testing.T) {
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: v("A"), Region: "R"})
	sys.AddPred(Pred{Kind: Part, E: v("B"), Region: "R"})
	sys.AddPred(Pred{Kind: Part, E: v("M"), Region: "Mat"})
	sys.AddSubset(Subset{L: v("A"), R: v("B")})
	sys.AddSubset(Subset{L: dpl.ImageMultiExpr{Of: v("A"), Func: "F", Region: "Mat"}, R: v("M")})
	// Non-graph constraint shapes are skipped.
	sys.AddSubset(Subset{L: pre("R", "f", v("B")), R: v("A")})
	sys.AddSubset(Subset{L: v("A"), R: eq("R")})

	g := BuildGraph(sys)
	if len(g.Edges) != 2 {
		t.Fatalf("edges = %v", g.Edges)
	}
	if !g.Edges[1].Multi {
		t.Error("IMAGE edge should be marked Multi")
	}
	if got := g.Edges[0].String(); got != "A → B" {
		t.Errorf("plain edge = %q", got)
	}
	if got := g.Edges[1].String(); got != "A →[IMAGE F] M" {
		t.Errorf("multi edge = %q", got)
	}
}

func TestCommonSubgraphsFigure9(t *testing.T) {
	// Split Fig. 9a into the two loops' systems: loop 1 contributes
	// P1→P2→P3, loop 2 contributes P4→P5. The subgraph P2→P3 in loop 1
	// is isomorphic to P4→P5 in loop 2.
	loop1 := &System{}
	loop1.AddPred(Pred{Kind: Part, E: v("P1"), Region: "Particles"})
	loop1.AddPred(Pred{Kind: Part, E: v("P2"), Region: "Cells"})
	loop1.AddPred(Pred{Kind: Part, E: v("P3"), Region: "Cells"})
	loop1.AddSubset(Subset{L: img(v("P1"), "cell", "Cells"), R: v("P2")})
	loop1.AddSubset(Subset{L: img(v("P2"), "h", "Cells"), R: v("P3")})

	loop2 := &System{}
	loop2.AddPred(Pred{Kind: Part, E: v("P4"), Region: "Cells"})
	loop2.AddPred(Pred{Kind: Part, E: v("P5"), Region: "Cells"})
	loop2.AddSubset(Subset{L: img(v("P4"), "h", "Cells"), R: v("P5")})

	maps := CommonSubgraphs(BuildGraph(loop1), BuildGraph(loop2))
	if len(maps) == 0 {
		t.Fatal("no common subgraphs found")
	}
	// The biggest candidate must unify P4 with P2 and P5 with P3.
	best := maps[0]
	if len(best) != 2 || best["P4"] != "P2" || best["P5"] != "P3" {
		t.Errorf("best mapping = %v", best)
	}
}

func TestCommonSubgraphsRegionMismatch(t *testing.T) {
	a := &System{}
	a.AddPred(Pred{Kind: Part, E: v("A"), Region: "R"})
	b := &System{}
	b.AddPred(Pred{Kind: Part, E: v("B"), Region: "S"})
	if maps := CommonSubgraphs(BuildGraph(a), BuildGraph(b)); len(maps) != 0 {
		t.Errorf("cross-region unification must not be proposed: %v", maps)
	}
}

func TestCommonSubgraphsEdgeLabelsMatter(t *testing.T) {
	a := &System{}
	a.AddPred(Pred{Kind: Part, E: v("A1"), Region: "R"})
	a.AddPred(Pred{Kind: Part, E: v("A2"), Region: "R"})
	a.AddSubset(Subset{L: img(v("A1"), "f", "R"), R: v("A2")})

	b := &System{}
	b.AddPred(Pred{Kind: Part, E: v("B1"), Region: "R"})
	b.AddPred(Pred{Kind: Part, E: v("B2"), Region: "R"})
	b.AddSubset(Subset{L: img(v("B1"), "g", "R"), R: v("B2")})

	maps := CommonSubgraphs(BuildGraph(a), BuildGraph(b))
	// Node pairs still unify individually (singletons), but no mapping
	// may pair the f-edge with the g-edge, i.e. no mapping of size 2
	// containing both endpoints via edge growth... verify none maps B2 to
	// A2 while mapping B1 to A1.
	for _, m := range maps {
		if m["B1"] == "A1" && m["B2"] == "A2" {
			t.Errorf("edge labels ignored in mapping %v", m)
		}
	}
}

func TestCommonSubgraphsLargestFirst(t *testing.T) {
	maps := CommonSubgraphs(BuildGraph(figure9System()), BuildGraph(figure9System()))
	for i := 1; i < len(maps); i++ {
		if len(maps[i]) > len(maps[i-1]) {
			t.Fatal("mappings not sorted by size descending")
		}
	}
	// Self-unification must offer the identity-ish full mapping first:
	// P1→P2→P3 chain has 3 nodes.
	if len(maps[0]) < 3 {
		t.Errorf("largest self-mapping = %v", maps[0])
	}
}
