package constraint

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"autopart/internal/dpl"
)

// figure9System builds the constraint of Example 5 / Fig. 9a:
//
//	image(P1, cell, Cells) ⊆ P2, image(P2, h, Cells) ⊆ P3,
//	image(P4, h, Cells) ⊆ P5
func figure9System() *System {
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: v("P1"), Region: "Particles"})
	for _, p := range []string{"P2", "P3", "P4", "P5"} {
		sys.AddPred(Pred{Kind: Part, E: v(p), Region: "Cells"})
	}
	sys.AddSubset(Subset{L: img(v("P1"), "cell", "Cells"), R: v("P2")})
	sys.AddSubset(Subset{L: img(v("P2"), "h", "Cells"), R: v("P3")})
	sys.AddSubset(Subset{L: img(v("P4"), "h", "Cells"), R: v("P5")})
	return sys
}

func TestBuildGraph(t *testing.T) {
	g := BuildGraph(figure9System())
	if g.NumNodes() != 5 {
		t.Fatalf("nodes = %v", g.NodeNames())
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %v", g.Edges())
	}
	if g.RegionName("P1") != "Particles" || g.RegionName("P2") != "Cells" {
		t.Errorf("regions: P1=%q P2=%q", g.RegionName("P1"), g.RegionName("P2"))
	}
	out := g.OutEdges("P2")
	if len(out) != 1 || out[0].To != "P3" || out[0].Func != "h" {
		t.Errorf("OutEdges(P2) = %v", out)
	}
	s := g.String()
	if !strings.Contains(s, "P1 →[image cell] P2") {
		t.Errorf("graph string = %q", s)
	}
}

func TestBuildGraphPlainAndMultiEdges(t *testing.T) {
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: v("A"), Region: "R"})
	sys.AddPred(Pred{Kind: Part, E: v("B"), Region: "R"})
	sys.AddPred(Pred{Kind: Part, E: v("M"), Region: "Mat"})
	sys.AddSubset(Subset{L: v("A"), R: v("B")})
	sys.AddSubset(Subset{L: dpl.ImageMultiExpr{Of: v("A"), Func: "F", Region: "Mat"}, R: v("M")})
	// Non-graph constraint shapes are skipped.
	sys.AddSubset(Subset{L: pre("R", "f", v("B")), R: v("A")})
	sys.AddSubset(Subset{L: v("A"), R: eq("R")})

	g := BuildGraph(sys)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %v", edges)
	}
	if !edges[1].Multi {
		t.Error("IMAGE edge should be marked Multi")
	}
	if got := edges[0].String(); got != "A → B" {
		t.Errorf("plain edge = %q", got)
	}
	if got := edges[1].String(); got != "A →[IMAGE F] M" {
		t.Errorf("multi edge = %q", got)
	}
}

func TestCommonSubgraphsFigure9(t *testing.T) {
	// Split Fig. 9a into the two loops' systems: loop 1 contributes
	// P1→P2→P3, loop 2 contributes P4→P5. The subgraph P2→P3 in loop 1
	// is isomorphic to P4→P5 in loop 2.
	loop1 := &System{}
	loop1.AddPred(Pred{Kind: Part, E: v("P1"), Region: "Particles"})
	loop1.AddPred(Pred{Kind: Part, E: v("P2"), Region: "Cells"})
	loop1.AddPred(Pred{Kind: Part, E: v("P3"), Region: "Cells"})
	loop1.AddSubset(Subset{L: img(v("P1"), "cell", "Cells"), R: v("P2")})
	loop1.AddSubset(Subset{L: img(v("P2"), "h", "Cells"), R: v("P3")})

	loop2 := &System{}
	loop2.AddPred(Pred{Kind: Part, E: v("P4"), Region: "Cells"})
	loop2.AddPred(Pred{Kind: Part, E: v("P5"), Region: "Cells"})
	loop2.AddSubset(Subset{L: img(v("P4"), "h", "Cells"), R: v("P5")})

	maps := CommonSubgraphs(BuildGraph(loop1), BuildGraph(loop2))
	if len(maps) == 0 {
		t.Fatal("no common subgraphs found")
	}
	// The biggest candidate must unify P4 with P2 and P5 with P3.
	best := maps[0]
	if len(best) != 2 || best["P4"] != "P2" || best["P5"] != "P3" {
		t.Errorf("best mapping = %v", best)
	}
}

func TestCommonSubgraphsRegionMismatch(t *testing.T) {
	a := &System{}
	a.AddPred(Pred{Kind: Part, E: v("A"), Region: "R"})
	b := &System{}
	b.AddPred(Pred{Kind: Part, E: v("B"), Region: "S"})
	if maps := CommonSubgraphs(BuildGraph(a), BuildGraph(b)); len(maps) != 0 {
		t.Errorf("cross-region unification must not be proposed: %v", maps)
	}
}

func TestCommonSubgraphsEdgeLabelsMatter(t *testing.T) {
	a := &System{}
	a.AddPred(Pred{Kind: Part, E: v("A1"), Region: "R"})
	a.AddPred(Pred{Kind: Part, E: v("A2"), Region: "R"})
	a.AddSubset(Subset{L: img(v("A1"), "f", "R"), R: v("A2")})

	b := &System{}
	b.AddPred(Pred{Kind: Part, E: v("B1"), Region: "R"})
	b.AddPred(Pred{Kind: Part, E: v("B2"), Region: "R"})
	b.AddSubset(Subset{L: img(v("B1"), "g", "R"), R: v("B2")})

	maps := CommonSubgraphs(BuildGraph(a), BuildGraph(b))
	// Node pairs still unify individually (singletons), but no mapping
	// may pair the f-edge with the g-edge, i.e. no mapping of size 2
	// containing both endpoints via edge growth... verify none maps B2 to
	// A2 while mapping B1 to A1.
	for _, m := range maps {
		if m["B1"] == "A1" && m["B2"] == "A2" {
			t.Errorf("edge labels ignored in mapping %v", m)
		}
	}
}

func TestCommonSubgraphsLargestFirst(t *testing.T) {
	// A disjoint renamed copy of the Fig. 9a system: the whole Q-graph is
	// isomorphic to the P-graph, so the full 5-node mapping must be
	// offered before any smaller one.
	renamed := &System{}
	renamed.AddPred(Pred{Kind: Part, E: v("Q1"), Region: "Particles"})
	for _, p := range []string{"Q2", "Q3", "Q4", "Q5"} {
		renamed.AddPred(Pred{Kind: Part, E: v(p), Region: "Cells"})
	}
	renamed.AddSubset(Subset{L: img(v("Q1"), "cell", "Cells"), R: v("Q2")})
	renamed.AddSubset(Subset{L: img(v("Q2"), "h", "Cells"), R: v("Q3")})
	renamed.AddSubset(Subset{L: img(v("Q4"), "h", "Cells"), R: v("Q5")})

	maps := CommonSubgraphs(BuildGraph(figure9System()), BuildGraph(renamed))
	for i := 1; i < len(maps); i++ {
		if len(maps[i]) > len(maps[i-1]) {
			t.Fatal("mappings not sorted by size descending")
		}
	}
	if len(maps) == 0 {
		t.Fatal("no mappings")
	}
	best := maps[0]
	if len(best) < 3 || best["Q1"] != "P1" || best["Q2"] != "P2" || best["Q3"] != "P3" {
		t.Errorf("largest mapping = %v", best)
	}
}

// TestCommonSubgraphsSkipsIdentitySeeds pins the seed-generation rule:
// a pair equating a symbol with itself is never used as a seed (the
// solver discards identity renames anyway), so every proposed mapping
// contains at least one non-identity pair.
func TestCommonSubgraphsSkipsIdentitySeeds(t *testing.T) {
	g := BuildGraph(figure9System())
	maps := CommonSubgraphs(g, g)
	for _, m := range maps {
		nonIdentity := 0
		for from, to := range m {
			if from != to {
				nonIdentity++
			}
		}
		if nonIdentity == 0 {
			t.Errorf("pure identity mapping proposed: %v", m)
		}
	}
}

// competitionSystems builds a pair of graphs where two b-nodes compete
// for the same a-node: both B1 and B2 (mapped to A1 and A2) have an
// h-edge whose only compatible target in a is A3. The winner is decided
// purely by growth order — exactly the situation where the former
// map-ranging grow produced run-dependent results.
func competitionSystems() (*System, *System) {
	a := &System{}
	for _, p := range []string{"A0", "A1", "A2", "A3"} {
		a.AddPred(Pred{Kind: Part, E: v(p), Region: "R"})
	}
	a.AddSubset(Subset{L: img(v("A0"), "f", "R"), R: v("A1")})
	a.AddSubset(Subset{L: img(v("A0"), "g", "R"), R: v("A2")})
	a.AddSubset(Subset{L: img(v("A1"), "h", "R"), R: v("A3")})
	a.AddSubset(Subset{L: img(v("A2"), "h", "R"), R: v("A3")})

	b := &System{}
	for _, p := range []string{"B0", "B1", "B2", "B3", "B4"} {
		b.AddPred(Pred{Kind: Part, E: v(p), Region: "R"})
	}
	b.AddSubset(Subset{L: img(v("B0"), "f", "R"), R: v("B1")})
	b.AddSubset(Subset{L: img(v("B0"), "g", "R"), R: v("B2")})
	b.AddSubset(Subset{L: img(v("B1"), "h", "R"), R: v("B3")})
	b.AddSubset(Subset{L: img(v("B2"), "h", "R"), R: v("B4")})
	return a, b
}

// TestCommonSubgraphsDeterministic is the regression test for the
// map-iteration nondeterminism in grow: with two same-region,
// same-signature b-nodes competing for one a-node, repeated runs must
// return identical mappings (the former implementation ranged over the
// mapping map while inserting, so the winner flipped between runs).
func TestCommonSubgraphsDeterministic(t *testing.T) {
	sysA, sysB := competitionSystems()
	ga, gb := BuildGraph(sysA), BuildGraph(sysB)
	first := CommonSubgraphs(ga, gb)
	if len(first) == 0 {
		t.Fatal("no mappings")
	}
	for run := 1; run < 50; run++ {
		got := CommonSubgraphs(ga, gb)
		if !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d differs:\n got %v\nwant %v", run, got, first)
		}
	}
	// The growth order is defined: breadth-first from the seed, edges in
	// system order. From seed (A0,B0), B1 is discovered before B2, so
	// B1's h-edge claims A3 and B2's h-edge finds no target.
	best := first[0]
	if best["B3"] != "A3" {
		t.Errorf("defined growth order must map B3 to A3, got %v", best)
	}
	if _, mapped := best["B4"]; mapped {
		t.Errorf("B4 must stay unmapped (A3 already claimed), got %v", best)
	}
}

// TestCommonSubgraphsSignaturePreference verifies that an exact
// predicate-signature pairing wins over a structurally compatible
// mismatch when both exist, even when the mismatching target comes
// first in edge order.
func TestCommonSubgraphsSignaturePreference(t *testing.T) {
	a := &System{}
	a.AddPred(Pred{Kind: Part, E: v("A0"), Region: "S"})
	a.AddPred(Pred{Kind: Part, E: v("T1"), Region: "R"})
	a.AddPred(Pred{Kind: Part, E: v("T2"), Region: "R"})
	a.AddPred(Pred{Kind: Disj, E: v("T2")})
	// The plain target T1 comes first; the DISJ twin T2 second.
	a.AddSubset(Subset{L: img(v("A0"), "f", "R"), R: v("T1")})
	a.AddSubset(Subset{L: img(v("A0"), "f", "R"), R: v("T2")})

	b := &System{}
	b.AddPred(Pred{Kind: Part, E: v("B0"), Region: "S"})
	b.AddPred(Pred{Kind: Part, E: v("B1"), Region: "R"})
	b.AddPred(Pred{Kind: Disj, E: v("B1")})
	b.AddSubset(Subset{L: img(v("B0"), "f", "R"), R: v("B1")})

	maps := CommonSubgraphs(BuildGraph(a), BuildGraph(b))
	if len(maps) == 0 {
		t.Fatal("no mappings")
	}
	best := maps[0]
	if best["B0"] != "A0" || best["B1"] != "T2" {
		t.Errorf("exact-signature target must win: %v", best)
	}

	// And the fallback still fires when no exact twin exists: remove the
	// DISJ twin and B1 must pair with the structurally compatible T1.
	a2 := &System{}
	a2.AddPred(Pred{Kind: Part, E: v("A0"), Region: "S"})
	a2.AddPred(Pred{Kind: Part, E: v("T1"), Region: "R"})
	a2.AddSubset(Subset{L: img(v("A0"), "f", "R"), R: v("T1")})
	maps = CommonSubgraphs(BuildGraph(a2), BuildGraph(b))
	if len(maps) == 0 {
		t.Fatal("no fallback mappings")
	}
	if best := maps[0]; best["B1"] != "T1" {
		t.Errorf("fallback pairing expected B1→T1: %v", best)
	}
}

// TestGraphExtended verifies the incremental build: extending a graph
// with appended conjuncts must produce exactly the graph a fresh
// BuildGraph of the full system produces (fingerprint, rendering, and
// matching behavior).
func TestGraphExtended(t *testing.T) {
	full := figure9System()
	prefix := &System{
		Preds:   full.Preds[:3],
		Subsets: full.Subsets[:1],
	}
	base := BuildGraph(prefix)
	ext := base.Extended(full)
	fresh := BuildGraph(full)
	if ext.Fingerprint() != fresh.Fingerprint() {
		t.Fatalf("extended fingerprint differs:\next:   %s\nfresh: %s", ext, fresh)
	}
	if ext.String() != fresh.String() {
		t.Errorf("extended rendering differs:\n%s\nvs\n%s", ext, fresh)
	}
	other := BuildGraph(figure9System())
	if !reflect.DeepEqual(CommonSubgraphs(ext, other), CommonSubgraphs(fresh, other)) {
		t.Error("extended graph matches differently from fresh build")
	}
	// Covering extension is the identity; an impossible extension falls
	// back to a fresh build.
	if got := ext.Extended(full); got != ext {
		t.Error("covering Extended must return the receiver")
	}
	if got := fresh.Extended(prefix); got.Fingerprint() != base.Fingerprint() {
		t.Error("non-extension must fall back to BuildGraph")
	}
}

// TestGraphSignatureBitsOrderInsensitive pins the bitmask semantics:
// DISJ-then-COMP and COMP-then-DISJ predicates yield the same signature
// (the former string concatenation distinguished "DC" from "CD").
func TestGraphSignatureBitsOrderInsensitive(t *testing.T) {
	mk := func(first, second PredKind) *System {
		sys := &System{}
		sys.AddPred(Pred{Kind: Part, E: v("X"), Region: "R"})
		sys.AddPred(Pred{Kind: first, E: v("X"), Region: "R"})
		sys.AddPred(Pred{Kind: second, E: v("X"), Region: "R"})
		sys.AddPred(Pred{Kind: Part, E: v("Y"), Region: "R"})
		sys.AddSubset(Subset{L: img(v("Y"), "f", "R"), R: v("X")})
		return sys
	}
	dc := BuildGraph(mk(Disj, Comp))
	cd := BuildGraph(mk(Comp, Disj))
	if dc.Fingerprint() != cd.Fingerprint() {
		t.Error("signature must not depend on predicate order")
	}
}

// syntheticSystem builds a MiniAero-shaped system: loops chains of
// image constraints over a handful of regions and functions, with an
// iteration symbol per loop carrying DISJ/COMP predicates.
func syntheticSystem(loops, chain int) *System {
	regions := []string{"Cells", "Faces", "Nodes", "Edges"}
	funcs := []string{"f0", "f1", "f2", "f3", "f4", "f5"}
	sys := &System{}
	for l := 0; l < loops; l++ {
		iter := fmt.Sprintf("I%02d", l)
		sys.AddPred(Pred{Kind: Part, E: v(iter), Region: regions[l%len(regions)]})
		sys.AddPred(Pred{Kind: Disj, E: v(iter)})
		sys.AddPred(Pred{Kind: Comp, E: v(iter), Region: regions[l%len(regions)]})
		prev := iter
		for k := 0; k < chain; k++ {
			cur := fmt.Sprintf("P%02d_%d", l, k)
			sys.AddPred(Pred{Kind: Part, E: v(cur), Region: regions[(l+k)%len(regions)]})
			sys.AddSubset(Subset{L: img(v(prev), funcs[(l+k)%len(funcs)], regions[(l+k)%len(regions)]), R: v(cur)})
			prev = cur
		}
	}
	return sys
}

func BenchmarkBuildGraph(b *testing.B) {
	sys := syntheticSystem(25, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BuildGraph(sys)
	}
}

func BenchmarkGraphExtended(b *testing.B) {
	full := syntheticSystem(25, 5)
	prefix := &System{
		Preds:   full.Preds[:len(full.Preds)-8],
		Subsets: full.Subsets[:len(full.Subsets)-5],
	}
	base := BuildGraph(prefix)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		base.Extended(full)
	}
}

func BenchmarkCommonSubgraphs(b *testing.B) {
	b.Run("Figure9", func(b *testing.B) {
		ga := BuildGraph(figure9System())
		gb := BuildGraph(figure9System())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CommonSubgraphs(ga, gb)
		}
	})
	b.Run("MiniAeroSized", func(b *testing.B) {
		// Accumulated graph of ~25 unified loops vs one incoming loop —
		// the shape of an Algorithm 3 round late in a MiniAero compile.
		acc := BuildGraph(syntheticSystem(25, 5))
		loop := BuildGraph(syntheticSystem(1, 5))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			CommonSubgraphs(acc, loop)
		}
	})
}
