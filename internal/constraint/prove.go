package constraint

import (
	"autopart/internal/dpl"
)

// Prover decides entailment of individual constraints from a set of
// hypotheses using the DPL lemmas of Fig. 8 (plus monotonicity of the
// operators). It is sound but deliberately incomplete, mirroring the
// paper's resolution check: every rule applied is a valid lemma, and a
// failed proof simply means "not known to hold".
type Prover struct {
	// partOf maps partition symbols to the regions they partition
	// (from PART predicates).
	partOf map[string]string
	// hypSubsets are subset hypotheses (other conjuncts, external
	// constraints). skipSubset is the index of one occurrence every scan
	// ignores (-1 for none): WithoutSubset marks instead of copying.
	hypSubsets []Subset
	skipSubset int
	// disjVars/compVars hold predicate hypotheses on symbols as
	// occurrence counts, so a goal can be excluded and restored in O(1)
	// while structurally identical copies (e.g. external assumptions)
	// stay usable.
	disjVars map[string]int
	compVars map[string]map[string]int // symbol -> region -> count
	// hypDisjExprs holds DISJ hypotheses on non-variable expressions
	// (e.g. the Circuit hint DISJ(pn_private ∪ pn_shared)); value
	// structs are structurally unique under ==, so counting by the
	// expression (or the whole predicate) is exact.
	hypDisjExprs map[dpl.Expr]int
	hypCompExprs map[Pred]int

	// partialFns names the index functions declared `partial`. Lemmas
	// that require totality (L7) must not apply to them: the preimage of
	// a complete partition under a partial function misses every element
	// where the function is undefined, so COMP(preimage(R,f,E), R) does
	// not follow from COMP(E, R1) unless f is total on R.
	partialFns map[string]bool

	maxDepth int
}

// NewProver builds a prover whose hypotheses are all conjuncts of sys
// except the one being proven (the caller excludes it), plus any external
// assumptions already inside sys.
func NewProver(sys *System) *Prover { return NewProverOver(sys, nil) }

// SetPartialFns records which index functions are declared partial, so
// totality-dependent lemmas refuse them. Returns the prover for
// chaining. A nil map means every function is total (the language
// default).
func (p *Prover) SetPartialFns(fns map[string]bool) *Prover {
	p.partialFns = fns
	return p
}

// NewProverOver builds a prover over the conjuncts of sys followed by
// those of extra (may be nil), without materializing the conjunction —
// the solver proves against "working system plus external assumptions"
// on every closed-conjunct check, and cloning the combination dominated
// those checks.
func NewProverOver(sys, extra *System) *Prover {
	p := &Prover{
		skipSubset: -1,
		disjVars:   map[string]int{},
		compVars:   map[string]map[string]int{},
		maxDepth:   10,
	}
	// The region map is shared with the systems' indexes (the prover
	// only reads it). With two systems the maps are merged, extra's
	// entries last — the override order conjunction would produce.
	if extra == nil || len(extra.partOfShared()) == 0 {
		p.partOf = sys.partOfShared()
	} else {
		sp, ep := sys.partOfShared(), extra.partOfShared()
		merged := make(map[string]string, len(sp)+len(ep))
		for k, v := range sp {
			merged[k] = v
		}
		for k, v := range ep {
			merged[k] = v
		}
		p.partOf = merged
	}
	ingest := func(preds []Pred) {
		for _, pred := range preds {
			switch pred.Kind {
			case Disj:
				if v, ok := pred.E.(dpl.Var); ok {
					p.disjVars[v.Name]++
				} else {
					if p.hypDisjExprs == nil {
						p.hypDisjExprs = map[dpl.Expr]int{}
					}
					p.hypDisjExprs[pred.E]++
				}
			case Comp:
				if v, ok := pred.E.(dpl.Var); ok {
					if p.compVars[v.Name] == nil {
						p.compVars[v.Name] = map[string]int{}
					}
					p.compVars[v.Name][pred.Region]++
				} else {
					if p.hypCompExprs == nil {
						p.hypCompExprs = map[Pred]int{}
					}
					p.hypCompExprs[Pred{Kind: Comp, E: pred.E, Region: pred.Region}]++
				}
			}
		}
	}
	ingest(sys.Preds)
	n := len(sys.Subsets)
	if extra != nil {
		ingest(extra.Preds)
		n += len(extra.Subsets)
	}
	p.hypSubsets = append(make([]Subset, 0, n), sys.Subsets...)
	if extra != nil {
		p.hypSubsets = append(p.hypSubsets, extra.Subsets...)
	}
	return p
}

// adjustPred changes the multiplicity of a non-PART predicate hypothesis
// by delta. PART predicates are region-typing facts the callers never
// exclude; they are ignored here.
func (p *Prover) adjustPred(pred Pred, delta int) {
	switch pred.Kind {
	case Disj:
		if v, ok := pred.E.(dpl.Var); ok {
			p.disjVars[v.Name] += delta
		} else {
			if p.hypDisjExprs == nil {
				p.hypDisjExprs = map[dpl.Expr]int{}
			}
			p.hypDisjExprs[pred.E] += delta
		}
	case Comp:
		if v, ok := pred.E.(dpl.Var); ok {
			if p.compVars[v.Name] == nil {
				p.compVars[v.Name] = map[string]int{}
			}
			p.compVars[v.Name][pred.Region] += delta
		} else {
			if p.hypCompExprs == nil {
				p.hypCompExprs = map[Pred]int{}
			}
			p.hypCompExprs[Pred{Kind: Comp, E: pred.E, Region: pred.Region}] += delta
		}
	}
}

// ExcludePredOnce removes one occurrence of a predicate hypothesis, so a
// goal is not used to prove itself. PART predicates are ignored (callers
// keep them: they are region-typing facts).
func (p *Prover) ExcludePredOnce(pred Pred) { p.adjustPred(pred, -1) }

// RestorePredOnce re-adds an occurrence removed by ExcludePredOnce.
func (p *Prover) RestorePredOnce(pred Pred) { p.adjustPred(pred, 1) }

// WithoutSubset returns a copy of the prover lacking one occurrence of a
// subset hypothesis (so a conjunct is not used to prove itself; a second
// structurally identical copy — e.g. an external assumption — remains
// usable). The copy shares all hypothesis storage and just marks the
// first matching occurrence as skipped.
func (p *Prover) WithoutSubset(c Subset) *Prover {
	q := *p
	q.skipSubset = -1
	for i, h := range p.hypSubsets {
		if dpl.Equal(h.L, c.L) && dpl.Equal(h.R, c.R) {
			q.skipSubset = i
			break
		}
	}
	return &q
}

// ProvePred attempts to prove a predicate.
func (p *Prover) ProvePred(pred Pred) bool {
	switch pred.Kind {
	case Part:
		return p.provePart(pred.E, pred.Region)
	case Disj:
		return p.ProveDisj(pred.E)
	case Comp:
		return p.ProveComp(pred.E, pred.Region)
	default:
		return false
	}
}

// provePart checks PART(E, R) via lemmas L1–L4 and hypotheses.
func (p *Prover) provePart(e dpl.Expr, region string) bool {
	switch x := e.(type) {
	case dpl.Var:
		return p.partOf[x.Name] == region
	case dpl.EqualExpr:
		return x.Region == region // L1
	case dpl.ImageExpr:
		return x.Region == region // L2
	case dpl.PreimageExpr:
		return x.Region == region // L3
	case dpl.ImageMultiExpr:
		return x.Region == region
	case dpl.PreimageMultiExpr:
		return x.Region == region
	case dpl.BinExpr:
		if x.Op == dpl.OpMinus {
			return p.provePart(x.L, region) // L4 (difference needs only LHS)
		}
		return p.provePart(x.L, region) && p.provePart(x.R, region) // L4
	default:
		return false
	}
}

// ProveDisj checks DISJ(E) via L1, L8–L12 and hypotheses.
func (p *Prover) ProveDisj(e dpl.Expr) bool {
	return p.proveDisj(e, p.maxDepth)
}

func (p *Prover) proveDisj(e dpl.Expr, depth int) bool {
	if depth <= 0 {
		return false
	}
	// Hypothesis on the exact expression.
	if p.hypDisjExprs[e] > 0 {
		return true
	}
	switch x := e.(type) {
	case dpl.Var:
		if p.disjVars[x.Name] > 0 {
			return true
		}
	case dpl.EqualExpr:
		return true // L1
	case dpl.BinExpr:
		switch x.Op {
		case dpl.OpIntersect: // L9
			if p.proveDisj(x.L, depth-1) || p.proveDisj(x.R, depth-1) {
				return true
			}
		case dpl.OpMinus: // L10
			if p.proveDisj(x.L, depth-1) {
				return true
			}
		case dpl.OpUnion:
			// No lemma concludes DISJ of a union except via L8 below.
		}
	case dpl.PreimageExpr: // L12 (single-valued preimage only)
		if p.proveDisj(x.Of, depth-1) {
			return true
		}
	}
	// L8: E ⊆ E2 with DISJ(E2).
	for i, h := range p.hypSubsets {
		if i != p.skipSubset && dpl.Equal(h.L, e) && p.proveDisj(h.R, depth-1) {
			return true
		}
	}
	return false
}

// ProveComp checks COMP(E, R) via L1, L5–L7 and hypotheses.
func (p *Prover) ProveComp(e dpl.Expr, region string) bool {
	return p.proveComp(e, region, p.maxDepth)
}

func (p *Prover) proveComp(e dpl.Expr, region string, depth int) bool {
	if depth <= 0 {
		return false
	}
	if p.hypCompExprs[Pred{Kind: Comp, E: e, Region: region}] > 0 {
		return true
	}
	switch x := e.(type) {
	case dpl.Var:
		if p.compVars[x.Name][region] > 0 {
			return true
		}
	case dpl.EqualExpr:
		return x.Region == region // L1
	case dpl.BinExpr:
		if x.Op == dpl.OpUnion { // L6
			if p.proveComp(x.L, region, depth-1) || p.proveComp(x.R, region, depth-1) {
				return true
			}
		}
	case dpl.PreimageExpr: // L7 — total functions only
		// L7 is only valid when f is total on R: every element of R must
		// have an image, or the preimage of even a complete partition
		// misses the elements where f is undefined. Differential fuzzing
		// found a relaxed solve assigning an iteration partition
		// P1 = preimage(R, h, P) for a clamped (partial) h; the prover
		// accepted COMP(P1, R) unconditionally and the distributed run
		// dropped the uncovered iterations. Functions are total by
		// language convention unless declared `partial`.
		if x.Region == region && !p.partialFns[x.Func] {
			// COMP(E1, R1) for the source partition; its region is the
			// region E1 partitions.
			if r1, ok := dpl.RegionOf(x.Of, p.partOf); ok && p.proveComp(x.Of, r1, depth-1) {
				return true
			}
		}
	case dpl.PreimageMultiExpr:
		// L7 extends to PREIMAGE under the paper's convention that range
		// maps are total with non-empty ranges; we do NOT rely on it.
	}
	// L5: E1 ⊆ E with COMP(E1, R) and PART(E, R).
	if p.provePart(e, region) {
		for i, h := range p.hypSubsets {
			if i != p.skipSubset && dpl.Equal(h.R, e) && p.proveComp(h.L, region, depth-1) {
				return true
			}
		}
	}
	return false
}

// proofState tracks subset proof-search progress: in-progress goals fail
// (cycle cut) while proven goals succeed on re-query.
type proofState int

const (
	proofInProgress proofState = iota + 1
	proofProven
)

// ProveSubset attempts to prove L ⊆ R using structural rules,
// monotonicity, hypotheses with transitivity, and L14.
func (p *Prover) ProveSubset(c Subset) bool {
	return p.proveSubset(c.L, c.R, p.maxDepth, map[string]proofState{})
}

func (p *Prover) proveSubset(a, b dpl.Expr, depth int, visited map[string]proofState) (proven bool) {
	if depth <= 0 {
		return false
	}
	if dpl.Equal(a, b) {
		return true
	}
	key := dpl.Key(a) + " ⊆ " + dpl.Key(b)
	switch visited[key] {
	case proofProven:
		return true
	case proofInProgress:
		return false
	}
	visited[key] = proofInProgress
	defer func() {
		if proven {
			visited[key] = proofProven
		} else {
			delete(visited, key)
		}
	}()

	// L13 and friends: decompose the left-hand side.
	if x, ok := a.(dpl.BinExpr); ok {
		switch x.Op {
		case dpl.OpUnion: // L13
			if p.proveSubset(x.L, b, depth-1, visited) && p.proveSubset(x.R, b, depth-1, visited) {
				return true
			}
		case dpl.OpIntersect:
			if p.proveSubset(x.L, b, depth-1, visited) || p.proveSubset(x.R, b, depth-1, visited) {
				return true
			}
		case dpl.OpMinus:
			if p.proveSubset(x.L, b, depth-1, visited) {
				return true
			}
		}
	}

	// Decompose the right-hand side union.
	if y, ok := b.(dpl.BinExpr); ok && y.Op == dpl.OpUnion {
		if p.proveSubset(a, y.L, depth-1, visited) || p.proveSubset(a, y.R, depth-1, visited) {
			return true
		}
	}

	// Monotonicity of image/preimage in their partition argument.
	switch x := a.(type) {
	case dpl.ImageExpr:
		if y, ok := b.(dpl.ImageExpr); ok && x.Func == y.Func && x.Region == y.Region {
			if p.proveSubset(x.Of, y.Of, depth-1, visited) {
				return true
			}
		}
	case dpl.PreimageExpr:
		if y, ok := b.(dpl.PreimageExpr); ok && x.Func == y.Func && x.Region == y.Region {
			if p.proveSubset(x.Of, y.Of, depth-1, visited) {
				return true
			}
		}
	case dpl.ImageMultiExpr:
		if y, ok := b.(dpl.ImageMultiExpr); ok && x.Func == y.Func && x.Region == y.Region {
			if p.proveSubset(x.Of, y.Of, depth-1, visited) {
				return true
			}
		}
	case dpl.PreimageMultiExpr:
		if y, ok := b.(dpl.PreimageMultiExpr); ok && x.Func == y.Func && x.Region == y.Region {
			if p.proveSubset(x.Of, y.Of, depth-1, visited) {
				return true
			}
		}
	}

	// L14: image(E1, f, R2) ⊆ E2 if E1 ⊆ preimage(R1, f, E2) and
	// PART(E2, R2). Holds for single-valued image only.
	if x, ok := a.(dpl.ImageExpr); ok {
		if p.provePart(b, x.Region) {
			if r1, ok := dpl.RegionOf(x.Of, p.partOf); ok {
				goal := dpl.PreimageExpr{Region: r1, Func: x.Func, Of: b}
				if p.proveSubset(x.Of, goal, depth-1, visited) {
					return true
				}
			}
		}
	}

	// Hypotheses with transitivity: a ⊆ h.R whenever a == h.L and
	// h.R ⊆ b; also a ⊆ b via a ⊆ h.L chains is covered by recursion.
	for i, h := range p.hypSubsets {
		if i != p.skipSubset && dpl.Equal(h.L, a) && p.proveSubset(h.R, b, depth-1, visited) {
			return true
		}
	}
	return false
}

// CheckResolved verifies the final consistency condition of Algorithm 2:
// every conjunct of the (fully substituted) obligation system is entailed
// by the other conjuncts, the assumptions (external constraints, §3.3),
// and the DPL lemmas. It returns the first unprovable conjunct on
// failure.
func CheckResolved(obligations, assumptions *System) (bool, string) {
	return CheckResolvedWith(obligations, assumptions, nil)
}

// CheckResolvedWith is CheckResolved with the program's declared-partial
// function set, which totality-dependent lemmas must respect.
func CheckResolvedWith(obligations, assumptions *System, partialFns map[string]bool) (bool, string) {
	prover := NewProverOver(obligations, assumptions).SetPartialFns(partialFns)
	for _, pred := range obligations.Preds {
		// A goal must not be used as its own hypothesis: drop one
		// occurrence while proving it. PART predicates are exempt (they
		// are region-typing facts, and provePart on a Var needs the PART
		// hypothesis to know the symbol's region).
		exclude := pred.Kind != Part
		if exclude {
			prover.ExcludePredOnce(pred)
		}
		ok := prover.ProvePred(pred)
		if exclude {
			prover.RestorePredOnce(pred)
		}
		if !ok {
			return false, pred.String()
		}
	}
	for _, c := range obligations.Subsets {
		if !prover.WithoutSubset(c).ProveSubset(c) {
			return false, c.String()
		}
	}
	return true, ""
}
