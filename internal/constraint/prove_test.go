package constraint

import (
	"testing"

	"autopart/internal/dpl"
)

// proverFor builds a prover over a hypothesis system.
func proverFor(hyps *System) *Prover { return NewProver(hyps) }

func TestProvePartStructural(t *testing.T) {
	hyps := &System{}
	hyps.AddPred(Pred{Kind: Part, E: v("P"), Region: "R"})
	p := proverFor(hyps)

	cases := []struct {
		e    dpl.Expr
		reg  string
		want bool
	}{
		{eq("R"), "R", true},                // L1
		{eq("R"), "S", false},               // wrong region
		{v("P"), "R", true},                 // hypothesis
		{v("P"), "S", false},                // wrong region
		{v("Q"), "R", false},                // unknown symbol
		{img(v("P"), "f", "S"), "S", true},  // L2
		{img(v("P"), "f", "S"), "R", false}, // wrong region
		{pre("S", "f", v("P")), "S", true},  // L3
		{union(eq("R"), v("P")), "R", true}, // L4
		{union(eq("R"), v("Q")), "R", false},
		{dpl.BinExpr{Op: dpl.OpMinus, L: v("P"), R: v("Q")}, "R", true}, // L4 difference
		{dpl.ImageMultiExpr{Of: v("P"), Func: "F", Region: "M"}, "M", true},
		{dpl.PreimageMultiExpr{Region: "Y", Func: "F", Of: v("P")}, "Y", true},
	}
	for _, tc := range cases {
		if got := p.ProvePred(Pred{Kind: Part, E: tc.e, Region: tc.reg}); got != tc.want {
			t.Errorf("PART(%s, %s) = %v, want %v", tc.e, tc.reg, got, tc.want)
		}
	}
}

func TestProveDisj(t *testing.T) {
	hyps := &System{}
	hyps.AddPred(Pred{Kind: Part, E: v("P"), Region: "R"})
	hyps.AddPred(Pred{Kind: Disj, E: v("D")})
	hyps.AddSubset(Subset{L: v("X"), R: v("D")}) // X ⊆ D
	p := proverFor(hyps)

	cases := []struct {
		e    dpl.Expr
		want bool
	}{
		{eq("R"), true}, // L1
		{v("D"), true},  // hypothesis
		{v("P"), false}, // PART alone does not give DISJ
		{v("X"), true},  // L8 through X ⊆ D
		{dpl.BinExpr{Op: dpl.OpIntersect, L: v("P"), R: v("D")}, true},  // L9
		{dpl.BinExpr{Op: dpl.OpIntersect, L: v("P"), R: v("Q")}, false}, // neither disjoint
		{dpl.BinExpr{Op: dpl.OpMinus, L: v("D"), R: v("P")}, true},      // L10
		{dpl.BinExpr{Op: dpl.OpMinus, L: v("P"), R: v("D")}, false},
		{union(v("D"), v("D")), false}, // unions are not disjoint in general
		{pre("S", "f", v("D")), true},  // L12
		{pre("S", "f", v("P")), false},
		{dpl.PreimageMultiExpr{Region: "S", Func: "F", Of: v("D")}, false}, // L12 excluded for PREIMAGE
	}
	for _, tc := range cases {
		if got := p.ProveDisj(tc.e); got != tc.want {
			t.Errorf("DISJ(%s) = %v, want %v", tc.e, got, tc.want)
		}
	}
}

func TestProveDisjExprHypothesis(t *testing.T) {
	// The Circuit hint: DISJ(pn_private ∪ pn_shared) as a hypothesis on a
	// compound expression, from which DISJ of each side follows (L11 via
	// L8: side ⊆ union).
	u := union(v("pn_private"), v("pn_shared"))
	hyps := &System{}
	hyps.AddPred(Pred{Kind: Disj, E: u})
	hyps.AddSubset(Subset{L: v("pn_private"), R: u})
	hyps.AddSubset(Subset{L: v("pn_shared"), R: u})
	p := proverFor(hyps)

	if !p.ProveDisj(u) {
		t.Error("hypothesis on the union itself should hold")
	}
	if !p.ProveDisj(v("pn_private")) || !p.ProveDisj(v("pn_shared")) {
		t.Error("sides of a disjoint union should be provably disjoint via L8")
	}
}

func TestProveComp(t *testing.T) {
	hyps := &System{}
	hyps.AddPred(Pred{Kind: Part, E: v("P"), Region: "R"})
	hyps.AddPred(Pred{Kind: Part, E: v("C"), Region: "R"})
	hyps.AddPred(Pred{Kind: Comp, E: v("C"), Region: "R"})
	hyps.AddSubset(Subset{L: v("C"), R: v("P")}) // C ⊆ P
	p := proverFor(hyps)

	cases := []struct {
		e    dpl.Expr
		reg  string
		want bool
	}{
		{eq("R"), "R", true}, // L1
		{eq("S"), "R", false},
		{v("C"), "R", true},                  // hypothesis
		{v("C"), "S", false},                 // wrong region
		{v("P"), "R", true},                  // L5: C ⊆ P, COMP(C,R), PART(P,R)
		{union(v("C"), v("Q")), "R", true},   // L6 (no PART side condition)
		{union(v("C"), v("P")), "R", true},   // L6
		{pre("S", "f", v("C")), "S", true},   // L7
		{pre("S", "f", v("Q")), "S", false},  // source completeness unknown
		{pre("S", "f", eq("R2")), "S", true}, // L7 with closed complete source
	}
	for _, tc := range cases {
		if got := p.ProveComp(tc.e, tc.reg); got != tc.want {
			t.Errorf("COMP(%s, %s) = %v, want %v", tc.e, tc.reg, got, tc.want)
		}
	}
}

func TestProveSubsetStructural(t *testing.T) {
	hyps := &System{}
	hyps.AddPred(Pred{Kind: Part, E: v("A"), Region: "R"})
	hyps.AddPred(Pred{Kind: Part, E: v("B"), Region: "R"})
	hyps.AddSubset(Subset{L: v("A"), R: v("B")})
	p := proverFor(hyps)

	inter := dpl.BinExpr{Op: dpl.OpIntersect, L: v("A"), R: v("X")}
	minus := dpl.BinExpr{Op: dpl.OpMinus, L: v("A"), R: v("X")}

	cases := []struct {
		a, b dpl.Expr
		want bool
	}{
		{v("A"), v("A"), true},                                // reflexivity
		{v("A"), v("B"), true},                                // hypothesis
		{v("B"), v("A"), false},                               // not symmetric
		{v("A"), union(v("B"), v("X")), true},                 // RHS union, via hyp
		{v("A"), union(v("X"), v("B")), true},                 // other side
		{union(v("A"), v("A")), v("B"), true},                 // L13
		{union(v("A"), v("X")), v("B"), false},                // X unrelated
		{inter, v("B"), true},                                 // intersection shrink
		{minus, v("B"), true},                                 // difference shrink
		{img(v("A"), "f", "S"), img(v("B"), "f", "S"), true},  // monotone
		{img(v("A"), "f", "S"), img(v("B"), "g", "S"), false}, // different func
		{pre("S", "f", v("A")), pre("S", "f", v("B")), true},  // monotone
		{dpl.ImageMultiExpr{Of: v("A"), Func: "F", Region: "M"},
			dpl.ImageMultiExpr{Of: v("B"), Func: "F", Region: "M"}, true},
		{dpl.PreimageMultiExpr{Region: "Y", Func: "F", Of: v("A")},
			dpl.PreimageMultiExpr{Region: "Y", Func: "F", Of: v("B")}, true},
	}
	for _, tc := range cases {
		if got := p.ProveSubset(Subset{L: tc.a, R: tc.b}); got != tc.want {
			t.Errorf("%s ⊆ %s = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestProveSubsetL14(t *testing.T) {
	// Example 3's key step: P1 = preimage(R, g, P2) discharges
	// image(P1, g, S) ⊆ P2 via L14, given PART(P2, S).
	hyps := &System{}
	hyps.AddPred(Pred{Kind: Part, E: v("P2"), Region: "S"})
	p := proverFor(hyps)

	p1 := pre("R", "g", v("P2"))
	goal := Subset{L: img(p1, "g", "S"), R: v("P2")}
	if !p.ProveSubset(goal) {
		t.Error("L14 should discharge image(preimage(R,g,P2), g, S) ⊆ P2")
	}

	// Wrong function: not provable.
	bad := Subset{L: img(pre("R", "h", v("P2")), "g", "S"), R: v("P2")}
	if p.ProveSubset(bad) {
		t.Error("L14 must require matching functions")
	}

	// L14 is excluded for the generalized IMAGE.
	badMulti := Subset{
		L: dpl.ImageMultiExpr{Of: dpl.PreimageMultiExpr{Region: "R", Func: "G", Of: v("P2")}, Func: "G", Region: "S"},
		R: v("P2"),
	}
	if p.ProveSubset(badMulti) {
		t.Error("L14 must not apply to IMAGE/PREIMAGE")
	}
}

func TestProveSubsetTransitivity(t *testing.T) {
	hyps := &System{}
	hyps.AddSubset(Subset{L: v("A"), R: v("B")})
	hyps.AddSubset(Subset{L: v("B"), R: v("C")})
	p := proverFor(hyps)
	if !p.ProveSubset(Subset{L: v("A"), R: v("C")}) {
		t.Error("transitive chain A ⊆ B ⊆ C should prove A ⊆ C")
	}
	if p.ProveSubset(Subset{L: v("C"), R: v("A")}) {
		t.Error("no reverse entailment")
	}
}

func TestCheckResolvedExample2(t *testing.T) {
	// Example 2 after substitution: P1 = equal(R), P2 = image(equal(R), g, S),
	// P3 = equal(R). Remaining constraint (with equalities substituted in):
	//   PART(equal(R),R) ∧ COMP(equal(R),R) ∧ DISJ(equal(R)) ∧
	//   PART(image(equal(R),g,S), S) ∧ image(equal(R),g,S) ⊆ image(equal(R),g,S)[dropped]
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: eq("R"), Region: "R"})
	sys.AddPred(Pred{Kind: Comp, E: eq("R"), Region: "R"})
	sys.AddPred(Pred{Kind: Disj, E: eq("R")})
	sys.AddPred(Pred{Kind: Part, E: img(eq("R"), "g", "S"), Region: "S"})

	ok, failed := CheckResolved(sys, nil)
	if !ok {
		t.Errorf("Example 2 resolution should check out; failed on %s", failed)
	}
}

func TestCheckResolvedExample3(t *testing.T) {
	// Example 3: P2 = equal(S), P1 = preimage(R, g, P2). After
	// substitution the interesting conjuncts are:
	//   DISJ(preimage(R,g,equal(S)))           (L12+L1)
	//   COMP(preimage(R,g,equal(S)), R)        (L7+L1)
	//   DISJ(equal(S))                         (L1)
	//   image(preimage(R,g,equal(S)), g, S) ⊆ equal(S)   (L14)
	p1 := pre("R", "g", eq("S"))
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: p1, Region: "R"})
	sys.AddPred(Pred{Kind: Comp, E: p1, Region: "R"})
	sys.AddPred(Pred{Kind: Disj, E: p1})
	sys.AddPred(Pred{Kind: Part, E: eq("S"), Region: "S"})
	sys.AddPred(Pred{Kind: Disj, E: eq("S")})
	sys.AddSubset(Subset{L: img(p1, "g", "S"), R: eq("S")})

	ok, failed := CheckResolved(sys, nil)
	if !ok {
		t.Errorf("Example 3 resolution should check out; failed on %s", failed)
	}
}

func TestCheckResolvedFailure(t *testing.T) {
	// An image partition is not disjoint in general.
	sys := &System{}
	sys.AddPred(Pred{Kind: Disj, E: img(eq("R"), "f", "S")})
	ok, failed := CheckResolved(sys, nil)
	if ok {
		t.Fatal("DISJ(image(...)) must not be provable")
	}
	if failed == "" {
		t.Error("failure should name the conjunct")
	}
}

func TestCheckResolvedWithAssumptions(t *testing.T) {
	// External partitions pP, pC with the Fig. 4 invariant. Obligation:
	// the invariant itself reused for an inferred constraint
	// image(pP, cell, Cells) ⊆ pC, provable only from the assumption.
	assume := &System{}
	assume.AddPred(Pred{Kind: Part, E: v("pP"), Region: "Particles"})
	assume.AddPred(Pred{Kind: Part, E: v("pC"), Region: "Cells"})
	assume.AddPred(Pred{Kind: Disj, E: v("pC")})
	assume.AddSubset(Subset{L: img(v("pP"), "cell", "Cells"), R: v("pC")})

	obl := &System{}
	obl.AddPred(Pred{Kind: Disj, E: v("pC")})
	obl.AddSubset(Subset{L: img(v("pP"), "cell", "Cells"), R: v("pC")})

	ok, failed := CheckResolved(obl, assume)
	if !ok {
		t.Errorf("assumption-backed obligations should check; failed on %s", failed)
	}

	// Without assumptions they must fail.
	if ok, _ := CheckResolved(obl, nil); ok {
		t.Error("obligations should not self-prove")
	}
}

func TestCheckResolvedRecursiveExternal(t *testing.T) {
	// PENNANT Hint2: recursive constraint image(rs_p, mapss3, rs) ⊆ rs_p
	// is consistent when rs_p is a provided (external) partition — the
	// assumption discharges the obligation.
	assume := &System{}
	assume.AddPred(Pred{Kind: Part, E: v("rs_p"), Region: "rs"})
	assume.AddSubset(Subset{L: img(v("rs_p"), "mapss3", "rs"), R: v("rs_p")})

	obl := &System{}
	obl.AddSubset(Subset{L: img(v("rs_p"), "mapss3", "rs"), R: v("rs_p")})

	if ok, failed := CheckResolved(obl, assume); !ok {
		t.Errorf("recursive external constraint should check; failed on %s", failed)
	}
}
