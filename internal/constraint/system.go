// Package constraint implements the partitioning constraint language of
// Fig. 5: subset constraints between partition expressions and the
// PART/DISJ/COMP predicates, together with the lemma library of Fig. 8 as
// an entailment prover and the constraint-graph view used by unification.
//
// Expressions are shared with package dpl, exactly as in the paper where
// DPL operators appear syntactically inside constraints.
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"autopart/internal/dpl"
)

// PredKind identifies a predicate.
type PredKind int

// Predicate kinds.
const (
	// Part is PART(E, R): E is a partition of region R.
	Part PredKind = iota
	// Disj is DISJ(E): E's subregions are pairwise disjoint.
	Disj
	// Comp is COMP(E, R): E's subregions cover R.
	Comp
)

func (k PredKind) String() string {
	switch k {
	case Part:
		return "PART"
	case Disj:
		return "DISJ"
	case Comp:
		return "COMP"
	default:
		return fmt.Sprintf("PredKind(%d)", int(k))
	}
}

// Pred is a predicate on a partition expression.
type Pred struct {
	Kind   PredKind
	E      dpl.Expr
	Region string // for Part and Comp
}

func (p Pred) String() string {
	switch p.Kind {
	case Disj:
		return fmt.Sprintf("DISJ(%s)", p.E)
	default:
		return fmt.Sprintf("%s(%s, %s)", p.Kind, p.E, p.Region)
	}
}

// Subset is the constraint L ⊆ R (subregion-wise).
type Subset struct {
	L, R dpl.Expr
}

func (s Subset) String() string { return fmt.Sprintf("%s ⊆ %s", s.L, s.R) }

// Key returns a canonical string identifying the predicate up to
// structural equality. Expression keys are interned (package dpl), so a
// predicate key is two or three string concatenations.
func (p Pred) Key() string {
	switch p.Kind {
	case Part:
		return "P\x00" + dpl.Key(p.E) + "\x00" + p.Region
	case Disj:
		return "D\x00" + dpl.Key(p.E)
	default:
		return "C\x00" + dpl.Key(p.E) + "\x00" + p.Region
	}
}

// Key returns a canonical string identifying the constraint up to
// structural equality.
func (c Subset) Key() string { return dpl.Key(c.L) + "\x00⊆\x00" + dpl.Key(c.R) }

// System is a conjunction of predicates and subset constraints.
//
// The exported slices may be filled directly when building a system, but
// once an accessor (PartOf, HasPred, SubsetsInto) has been called the
// system must only be mutated through methods: accessors are backed by a
// lazily built index that methods invalidate and direct writes would not.
type System struct {
	Preds   []Pred
	Subsets []Subset

	// idx is the lazily built id-keyed view of the system and strIdx the
	// string-keyed symbol→region view. Both are immutable once built
	// (accessors copy anything callers may mutate), so clones share
	// them; any mutation drops both. The solver's trail restores the
	// pointers on undo, making backtracking-node index reuse free.
	idx    *sysIndex
	strIdx map[string]string

	// fp is the lazily computed 128-bit conjunct-multiset fingerprint
	// (see Fingerprint128); fpOK marks it valid. Trail mutations update
	// it incrementally (a wrapping sum over conjunct hashes is a
	// commutative group, so additions and removals are O(1)), making the
	// per-search-node fingerprint the solver memoizes on effectively
	// free. Wholesale mutations just clear fpOK.
	fp   [2]uint64
	fpOK bool

	// predMask/subMask are lazily built per-conjunct free-variable Bloom
	// masks (dpl.FvMask): predMask[i] covers Preds[i].E, subMask[i][0]
	// and [1] cover Subsets[i].L and .R. They let the solver's hottest
	// scans (substitution and closed-conjunct detection) skip conjuncts
	// without hashing whole expression trees. predFvs/subFvs carry the
	// corresponding interned free-variable lists and predFvIDs/subFvIDs
	// the aligned dense symbol ids (all shared, read-only), so
	// closed-conjunct and depth scans never re-hash expressions into the
	// intern table — and the solver's id-keyed paths never hash strings
	// at all. maskOK marks all of them valid; the trail mutators
	// maintain them per touched conjunct, wholesale mutations clear
	// maskOK.
	predMask  []uint64
	subMask   [][2]uint64
	predFvs   [][]string
	subFvs    [][2][]string
	predFvIDs [][]int32
	subFvIDs  [][2][]int32
	maskOK    bool
}

// sysIndex is the symbol-keyed view backing RegionOfSymID, HasPredID,
// and SubsetsIntoIdxID, built in one pass and never mutated after. The
// solver's search rebuilds this index on every backtracking node whose
// parent substituted and probes it in every rule loop, so everything in
// it is keyed by dense interned symbol id (dpl.SymID) — the build and
// the probes hash no strings at all. Disjointness/completeness
// predicates live in bitsets rather than maps: two word-slice
// allocations replace a map of every DISJ/COMP symbol. The string-keyed
// partOf view feeding the prover and graph builder (dpl.RegionOf works
// on names) is cached separately (strIdx): those consumers run once per
// closed-conjunct proof, not once per search node, and the hot rebuild
// must not pay their name hashing.
type sysIndex struct {
	partOfID    map[int32]string
	disj, comp  dpl.SymSet
	subsetsInto map[int32][]int // ascending indices into Subsets
}

// ensureIdx builds the id index if the system has been mutated (or never
// indexed). Not safe for concurrent first use on a shared system; the
// solver pre-warms shared read-only systems before going parallel.
func (s *System) ensureIdx() *sysIndex {
	if s.idx != nil {
		return s.idx
	}
	// Size hints avoid incremental map growth: rehash-on-grow was a
	// visible fraction of the rebuild cost. Symbol ids come from the
	// cached per-conjunct free-variable lists (a Var's list is exactly
	// its own id).
	s.ensureMasks()
	idx := &sysIndex{
		partOfID:    make(map[int32]string, len(s.Preds)),
		subsetsInto: make(map[int32][]int, len(s.Subsets)),
	}
	for i, p := range s.Preds {
		if _, ok := p.E.(dpl.Var); !ok {
			continue
		}
		id := s.predFvIDs[i][0]
		switch p.Kind {
		case Part:
			idx.partOfID[id] = p.Region
		case Disj:
			idx.disj.Add(id)
		case Comp:
			idx.comp.Add(id)
		}
	}
	for i, c := range s.Subsets {
		if _, ok := c.R.(dpl.Var); ok {
			id := s.subFvIDs[i][1][0]
			idx.subsetsInto[id] = append(idx.subsetsInto[id], i)
		}
	}
	s.idx = idx
	return idx
}

// ensureStrIdx builds the string-keyed symbol→region view on demand.
// Same first-use caveat as ensureIdx.
func (s *System) ensureStrIdx() map[string]string {
	if s.strIdx != nil {
		return s.strIdx
	}
	partOf := make(map[string]string, len(s.Preds))
	for _, p := range s.Preds {
		if v, ok := p.E.(dpl.Var); ok && p.Kind == Part {
			partOf[v.Name] = p.Region
		}
	}
	s.strIdx = partOf
	return partOf
}

// invalidate drops the indexes after a mutation.
func (s *System) invalidate() {
	s.idx = nil
	s.strIdx = nil
}

// ensureMasks builds the per-conjunct free-variable masks if missing.
func (s *System) ensureMasks() {
	if s.maskOK {
		return
	}
	s.predMask = make([]uint64, len(s.Preds))
	s.predFvs = make([][]string, len(s.Preds))
	s.predFvIDs = make([][]int32, len(s.Preds))
	for i, p := range s.Preds {
		s.predMask[i], s.predFvs[i], s.predFvIDs[i] = dpl.FvInfo(p.E)
	}
	s.subMask = make([][2]uint64, len(s.Subsets))
	s.subFvs = make([][2][]string, len(s.Subsets))
	s.subFvIDs = make([][2][]int32, len(s.Subsets))
	for i, c := range s.Subsets {
		lm, lf, li := dpl.FvInfo(c.L)
		rm, rf, ri := dpl.FvInfo(c.R)
		s.subMask[i] = [2]uint64{lm, rm}
		s.subFvs[i] = [2][]string{lf, rf}
		s.subFvIDs[i] = [2][]int32{li, ri}
	}
	s.maskOK = true
}

// PredMasks returns the per-predicate free-variable Bloom masks, aligned
// with Preds. The slice is shared with the system: callers must treat it
// as read-only and must not hold it across mutations.
func (s *System) PredMasks() []uint64 {
	s.ensureMasks()
	return s.predMask
}

// SubsetMasks returns the per-subset free-variable Bloom masks ([0]=L,
// [1]=R), aligned with Subsets, under the same sharing contract as
// PredMasks.
func (s *System) SubsetMasks() [][2]uint64 {
	s.ensureMasks()
	return s.subMask
}

// PredFvs returns the per-predicate interned free-variable lists,
// aligned with Preds, under the same sharing contract as PredMasks.
// The inner slices are interned and must never be mutated.
func (s *System) PredFvs() [][]string {
	s.ensureMasks()
	return s.predFvs
}

// SubsetFvs returns the per-subset interned free-variable lists
// ([0]=L, [1]=R), aligned with Subsets, under the same sharing contract
// as PredMasks. The inner slices are interned and must never be mutated.
func (s *System) SubsetFvs() [][2][]string {
	s.ensureMasks()
	return s.subFvs
}

// PredFvIDs returns the per-predicate interned free-variable symbol-id
// lists (dpl.SymID), aligned with Preds and with PredFvs entry by
// entry, under the same sharing contract as PredMasks.
func (s *System) PredFvIDs() [][]int32 {
	s.ensureMasks()
	return s.predFvIDs
}

// SubsetFvIDs returns the per-subset interned free-variable symbol-id
// lists ([0]=L, [1]=R), aligned with Subsets and with SubsetFvs entry
// by entry, under the same sharing contract as PredMasks.
func (s *System) SubsetFvIDs() [][2][]int32 {
	s.ensureMasks()
	return s.subFvIDs
}

// Clone returns a deep-enough copy (expressions are immutable). The
// index, if built, is shared: it is immutable and both systems currently
// have identical content; whichever mutates first drops its own pointer.
// Masks are copied (the trail mutates them in place).
func (s *System) Clone() *System {
	out := &System{
		Preds:   append([]Pred(nil), s.Preds...),
		Subsets: append([]Subset(nil), s.Subsets...),
		idx:     s.idx,
		strIdx:  s.strIdx,
		fp:      s.fp,
		fpOK:    s.fpOK,
		maskOK:  s.maskOK,
	}
	if s.maskOK {
		out.predMask = append([]uint64(nil), s.predMask...)
		out.subMask = append([][2]uint64(nil), s.subMask...)
		out.predFvs = append([][]string(nil), s.predFvs...)
		out.subFvs = append([][2][]string(nil), s.subFvs...)
		out.predFvIDs = append([][]int32(nil), s.predFvIDs...)
		out.subFvIDs = append([][2][]int32(nil), s.subFvIDs...)
	}
	return out
}

// And appends the conjuncts of other.
func (s *System) And(other *System) {
	s.invalidate()
	s.fpOK = false
	s.maskOK = false
	s.Preds = append(s.Preds, other.Preds...)
	s.Subsets = append(s.Subsets, other.Subsets...)
}

// AddPred appends a predicate, skipping exact duplicates.
func (s *System) AddPred(p Pred) {
	for _, q := range s.Preds {
		if q.Kind == p.Kind && q.Region == p.Region && dpl.Equal(q.E, p.E) {
			return
		}
	}
	s.invalidate()
	if s.fpOK {
		s.fpAdd(p.hash128())
	}
	if s.maskOK {
		m, f, ids := dpl.FvInfo(p.E)
		s.predMask = append(s.predMask, m)
		s.predFvs = append(s.predFvs, f)
		s.predFvIDs = append(s.predFvIDs, ids)
	}
	s.Preds = append(s.Preds, p)
}

// AddSubset appends a subset constraint, skipping duplicates and
// tautologies.
func (s *System) AddSubset(c Subset) {
	if dpl.Equal(c.L, c.R) {
		return
	}
	for _, q := range s.Subsets {
		if dpl.Equal(q.L, c.L) && dpl.Equal(q.R, c.R) {
			return
		}
	}
	s.invalidate()
	if s.fpOK {
		s.fpAdd(c.hash128())
	}
	if s.maskOK {
		lm, lf, li := dpl.FvInfo(c.L)
		rm, rf, ri := dpl.FvInfo(c.R)
		s.subMask = append(s.subMask, [2]uint64{lm, rm})
		s.subFvs = append(s.subFvs, [2][]string{lf, rf})
		s.subFvIDs = append(s.subFvIDs, [2][]int32{li, ri})
	}
	s.Subsets = append(s.Subsets, c)
}

// Fingerprint returns a canonical, order-independent identifier of the
// system's conjunct set: two systems with the same conjuncts (in any
// order) share a fingerprint. Conjunct keys are built from interned
// expression keys, so the cost is one sort plus concatenation. This is
// the exact (collision-free) form; the solver's memo tables use the
// cheaper Fingerprint128.
func (s *System) Fingerprint() string {
	parts := make([]string, 0, len(s.Preds)+len(s.Subsets))
	for _, p := range s.Preds {
		parts = append(parts, p.Key())
	}
	for _, c := range s.Subsets {
		parts = append(parts, c.Key())
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// mix64 is the splitmix64 finalizer, used to whiten conjunct hashes so
// the fingerprint's wrapping sum sees near-random contributions.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hash128 combines the interned expression hashes with the predicate
// kind and region into one whitened conjunct contribution.
func (p Pred) hash128() [2]uint64 {
	eh := dpl.Hash128(p.E)
	rh := dpl.HashString128(p.Region)
	k := uint64(p.Kind) + 1
	return [2]uint64{
		mix64(eh[0] ^ rh[0]*0x9e3779b97f4a7c15 ^ k*0xa24baed4963ee407),
		mix64(eh[1] ^ rh[1]*0xc2b2ae3d27d4eb4f ^ k*0x165667b19e3779f9),
	}
}

// hash128 combines the side hashes asymmetrically (L ⊆ R and R ⊆ L must
// differ) into one whitened conjunct contribution.
func (c Subset) hash128() [2]uint64 {
	lh, rh := dpl.Hash128(c.L), dpl.Hash128(c.R)
	return [2]uint64{
		mix64(lh[0]*0x9e3779b97f4a7c15 ^ rh[0] ^ 0xd6e8feb86659fd93),
		mix64(lh[1]*0xc2b2ae3d27d4eb4f ^ rh[1] ^ 0xff51afd7ed558ccd),
	}
}

// fpAdd and fpSub update the incremental fingerprint; the per-limb
// wrapping sum makes conjunct addition and removal commutative inverses.
func (s *System) fpAdd(h [2]uint64) { s.fp[0] += h[0]; s.fp[1] += h[1] }
func (s *System) fpSub(h [2]uint64) { s.fp[0] -= h[0]; s.fp[1] -= h[1] }

// Fingerprint128 returns a 128-bit order-independent fingerprint of the
// system's conjunct multiset: the wrapping sum of whitened per-conjunct
// hashes. Computed lazily in one pass, then maintained incrementally by
// the trail mutators, so the solver's per-node memo lookups are O(1).
// Two systems with the same conjuncts (in any order) share the value;
// distinct conjunct multisets collide with probability ~2^-128, which
// the solver's memo tables accept.
func (s *System) Fingerprint128() [2]uint64 {
	if !s.fpOK {
		var f [2]uint64
		for _, p := range s.Preds {
			h := p.hash128()
			f[0] += h[0]
			f[1] += h[1]
		}
		for _, c := range s.Subsets {
			h := c.hash128()
			f[0] += h[0]
			f[1] += h[1]
		}
		s.fp, s.fpOK = f, true
	}
	return s.fp
}

// OrderedFingerprint128 returns a 128-bit fingerprint of the conjunct
// *sequence*: unlike Fingerprint128 it distinguishes orderings of the
// same multiset. The solver's unification-round memo needs that
// sensitivity because Algorithm 3's greedy winner depends on graph
// construction order, which follows conjunct order. Computed in one
// pass over the cached per-conjunct hashes; not cached on the system
// (callers memoize by pointer where it matters).
func (s *System) OrderedFingerprint128() [2]uint64 {
	const p1, p2 = 0x9e3779b97f4a7c15, 0xc2b2ae3d27d4eb4f
	f := [2]uint64{uint64(len(s.Preds)) + 1, uint64(len(s.Subsets)) + 1}
	for _, p := range s.Preds {
		h := p.hash128()
		f[0] = (f[0] ^ h[0]) * p1
		f[1] = (f[1] ^ h[1]) * p2
	}
	for _, c := range s.Subsets {
		h := c.hash128()
		f[0] = (f[0] ^ h[0]) * p1
		f[1] = (f[1] ^ h[1]) * p2
	}
	return f
}

// Subst replaces a partition symbol with an expression throughout the
// system and drops resulting tautologies and duplicates. Deduplication
// matters for soundness: the final entailment check removes a conjunct
// before proving it, and a surviving identical copy would let any
// conjunct prove itself. Only conjuncts that mention the substituted
// symbol can newly collide, so only those are checked (against the
// whole list).
func (s *System) Subst(name string, e dpl.Expr) {
	s.invalidate()
	s.fpOK = false
	s.maskOK = false
	mentions := func(x dpl.Expr) bool { return dpl.Mentions(x, name) }

	predChanged := make([]bool, len(s.Preds))
	for i := range s.Preds {
		if mentions(s.Preds[i].E) {
			s.Preds[i].E = dpl.Subst(s.Preds[i].E, name, e)
			predChanged[i] = true
		}
	}
	preds := s.Preds[:0]
	kept := 0
	for i, p := range s.Preds {
		dup := false
		for j := 0; j < kept; j++ {
			q := preds[j]
			if (predChanged[i] || predChanged[j]) && q.Kind == p.Kind && q.Region == p.Region && dpl.Equal(q.E, p.E) {
				dup = true
				break
			}
		}
		if !dup {
			preds = append(preds, p)
			predChanged[kept] = predChanged[i]
			kept++
		}
	}
	s.Preds = preds

	subChanged := make([]bool, len(s.Subsets))
	for i := range s.Subsets {
		if mentions(s.Subsets[i].L) || mentions(s.Subsets[i].R) {
			s.Subsets[i].L = dpl.Subst(s.Subsets[i].L, name, e)
			s.Subsets[i].R = dpl.Subst(s.Subsets[i].R, name, e)
			subChanged[i] = true
		}
	}
	out := s.Subsets[:0]
	kept = 0
	for i, c := range s.Subsets {
		if dpl.Equal(c.L, c.R) {
			continue
		}
		dup := false
		for j := 0; j < kept; j++ {
			q := out[j]
			if (subChanged[i] || subChanged[j]) && dpl.Equal(q.L, c.L) && dpl.Equal(q.R, c.R) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
			subChanged[kept] = subChanged[i]
			kept++
		}
	}
	s.Subsets = out
}

// RenamedSyms returns a copy of the system with a simultaneous
// symbol-to-symbol renaming applied, dropping resulting tautologies and
// duplicates exactly as repeated Subst calls would (simultaneous and
// sequential application agree whenever no renamed-to symbol is itself
// renamed — callers must ensure that). One pass over the system replaces
// one full Subst pass per renamed symbol.
func (s *System) RenamedSyms(renames map[string]string) *System {
	out := &System{
		Preds:   make([]Pred, 0, len(s.Preds)),
		Subsets: make([]Subset, 0, len(s.Subsets)),
	}
	predChanged := make([]bool, 0, len(s.Preds))
	kept := 0
	for _, p := range s.Preds {
		e := dpl.RenameVars(p.E, renames)
		changed := !dpl.Equal(e, p.E)
		p.E = e
		dup := false
		for j := 0; j < kept; j++ {
			q := out.Preds[j]
			if (changed || predChanged[j]) && q.Kind == p.Kind && q.Region == p.Region && dpl.Equal(q.E, p.E) {
				dup = true
				break
			}
		}
		if !dup {
			out.Preds = append(out.Preds, p)
			predChanged = append(predChanged, changed)
			kept++
		}
	}
	subChanged := make([]bool, 0, len(s.Subsets))
	kept = 0
	for _, c := range s.Subsets {
		l := dpl.RenameVars(c.L, renames)
		r := dpl.RenameVars(c.R, renames)
		changed := !dpl.Equal(l, c.L) || !dpl.Equal(r, c.R)
		c.L, c.R = l, r
		if dpl.Equal(c.L, c.R) {
			continue
		}
		dup := false
		for j := 0; j < kept; j++ {
			q := out.Subsets[j]
			if (changed || subChanged[j]) && dpl.Equal(q.L, c.L) && dpl.Equal(q.R, c.R) {
				dup = true
				break
			}
		}
		if !dup {
			out.Subsets = append(out.Subsets, c)
			subChanged = append(subChanged, changed)
			kept++
		}
	}
	return out
}

// Symbols returns all partition symbols appearing in the system, sorted.
// It concatenates the interned per-expression free-variable lists and
// sorts once — cheaper than map-based dedup for the call frequency this
// sees (every graph build and solvability check walks the symbols).
func (s *System) Symbols() []string {
	n := 0
	for _, p := range s.Preds {
		n += len(dpl.FreeVars(p.E))
	}
	for _, c := range s.Subsets {
		n += len(dpl.FreeVars(c.L)) + len(dpl.FreeVars(c.R))
	}
	all := make([]string, 0, n)
	for _, p := range s.Preds {
		all = append(all, dpl.FreeVars(p.E)...)
	}
	for _, c := range s.Subsets {
		all = append(all, dpl.FreeVars(c.L)...)
		all = append(all, dpl.FreeVars(c.R)...)
	}
	sort.Strings(all)
	out := all[:0]
	for _, v := range all {
		if len(out) == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// PartOf returns the region of each symbol P that has a PART(P, R)
// predicate; the map feeds dpl.RegionOf. The returned map is a copy the
// caller may extend.
func (s *System) PartOf() map[string]string {
	shared := s.ensureStrIdx()
	out := make(map[string]string, len(shared))
	for k, v := range shared {
		out[k] = v
	}
	return out
}

// partOfShared returns the cached symbol→region map itself, avoiding
// PartOf's defensive copy. Callers (same package only) must treat it as
// read-only: the map is shared with the cache and with clones.
func (s *System) partOfShared() map[string]string {
	return s.ensureStrIdx()
}

// RegionOfSym returns the region of a symbol with a PART predicate
// (index lookup, no map copy).
func (s *System) RegionOfSym(symbol string) (string, bool) {
	r, ok := s.ensureStrIdx()[symbol]
	return r, ok
}

// RegionOfSymID is RegionOfSym keyed by dense interned symbol id — the
// solver's search resolves regions without hashing names.
func (s *System) RegionOfSymID(id int32) (string, bool) {
	r, ok := s.ensureIdx().partOfID[id]
	return r, ok
}

// HasPred reports whether the system contains a predicate of the given
// kind on a symbol (index lookup).
func (s *System) HasPred(kind PredKind, symbol string) bool {
	return s.HasPredID(kind, dpl.SymID(symbol))
}

// HasPredID is HasPred keyed by dense interned symbol id.
func (s *System) HasPredID(kind PredKind, id int32) bool {
	idx := s.ensureIdx()
	switch kind {
	case Disj:
		return idx.disj.Has(id)
	case Comp:
		return idx.comp.Has(id)
	default:
		_, ok := idx.partOfID[id]
		return ok
	}
}

// SubsetsInto returns the subset constraints whose right-hand side is
// exactly the symbol, in system order (index lookup).
// SubsetsIntoIdx returns the ascending indices into Subsets whose
// right-hand side is exactly the symbol. The slice is shared with the
// index: callers must treat it as read-only and must not hold it across
// mutations.
func (s *System) SubsetsIntoIdx(symbol string) []int {
	return s.SubsetsIntoIdxID(dpl.SymID(symbol))
}

// SubsetsIntoIdxID is SubsetsIntoIdx keyed by dense interned symbol id,
// under the same sharing contract.
func (s *System) SubsetsIntoIdxID(id int32) []int {
	return s.ensureIdx().subsetsInto[id]
}

func (s *System) SubsetsInto(symbol string) []Subset {
	ids := s.SubsetsIntoIdx(symbol)
	if len(ids) == 0 {
		return nil
	}
	out := make([]Subset, len(ids))
	for i, j := range ids {
		out[i] = s.Subsets[j]
	}
	return out
}

func (s *System) String() string {
	parts := make([]string, 0, len(s.Preds)+len(s.Subsets))
	for _, p := range s.Preds {
		parts = append(parts, p.String())
	}
	for _, c := range s.Subsets {
		parts = append(parts, c.String())
	}
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

// Conjuncts returns every conjunct as a printable unit (predicates first,
// then subsets), used by the final entailment check.
type Conjunct struct {
	Pred    *Pred
	Subset  *Subset
	Summary string
}

// Conjuncts lists the system's conjuncts.
func (s *System) Conjuncts() []Conjunct {
	out := make([]Conjunct, 0, len(s.Preds)+len(s.Subsets))
	for i := range s.Preds {
		p := s.Preds[i]
		out = append(out, Conjunct{Pred: &p, Summary: p.String()})
	}
	for i := range s.Subsets {
		c := s.Subsets[i]
		out = append(out, Conjunct{Subset: &c, Summary: c.String()})
	}
	return out
}
