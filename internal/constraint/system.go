// Package constraint implements the partitioning constraint language of
// Fig. 5: subset constraints between partition expressions and the
// PART/DISJ/COMP predicates, together with the lemma library of Fig. 8 as
// an entailment prover and the constraint-graph view used by unification.
//
// Expressions are shared with package dpl, exactly as in the paper where
// DPL operators appear syntactically inside constraints.
package constraint

import (
	"fmt"
	"sort"
	"strings"

	"autopart/internal/dpl"
)

// PredKind identifies a predicate.
type PredKind int

// Predicate kinds.
const (
	// Part is PART(E, R): E is a partition of region R.
	Part PredKind = iota
	// Disj is DISJ(E): E's subregions are pairwise disjoint.
	Disj
	// Comp is COMP(E, R): E's subregions cover R.
	Comp
)

func (k PredKind) String() string {
	switch k {
	case Part:
		return "PART"
	case Disj:
		return "DISJ"
	case Comp:
		return "COMP"
	default:
		return fmt.Sprintf("PredKind(%d)", int(k))
	}
}

// Pred is a predicate on a partition expression.
type Pred struct {
	Kind   PredKind
	E      dpl.Expr
	Region string // for Part and Comp
}

func (p Pred) String() string {
	switch p.Kind {
	case Disj:
		return fmt.Sprintf("DISJ(%s)", p.E)
	default:
		return fmt.Sprintf("%s(%s, %s)", p.Kind, p.E, p.Region)
	}
}

// Subset is the constraint L ⊆ R (subregion-wise).
type Subset struct {
	L, R dpl.Expr
}

func (s Subset) String() string { return fmt.Sprintf("%s ⊆ %s", s.L, s.R) }

// System is a conjunction of predicates and subset constraints.
type System struct {
	Preds   []Pred
	Subsets []Subset
}

// Clone returns a deep-enough copy (expressions are immutable).
func (s *System) Clone() *System {
	return &System{
		Preds:   append([]Pred(nil), s.Preds...),
		Subsets: append([]Subset(nil), s.Subsets...),
	}
}

// And appends the conjuncts of other.
func (s *System) And(other *System) {
	s.Preds = append(s.Preds, other.Preds...)
	s.Subsets = append(s.Subsets, other.Subsets...)
}

// AddPred appends a predicate, skipping exact duplicates.
func (s *System) AddPred(p Pred) {
	for _, q := range s.Preds {
		if q.Kind == p.Kind && q.Region == p.Region && dpl.Equal(q.E, p.E) {
			return
		}
	}
	s.Preds = append(s.Preds, p)
}

// AddSubset appends a subset constraint, skipping duplicates and
// tautologies.
func (s *System) AddSubset(c Subset) {
	if dpl.Equal(c.L, c.R) {
		return
	}
	for _, q := range s.Subsets {
		if dpl.Equal(q.L, c.L) && dpl.Equal(q.R, c.R) {
			return
		}
	}
	s.Subsets = append(s.Subsets, c)
}

// Subst replaces a partition symbol with an expression throughout the
// system and drops resulting tautologies and duplicates. Deduplication
// matters for soundness: the final entailment check removes a conjunct
// before proving it, and a surviving identical copy would let any
// conjunct prove itself. Only conjuncts that mention the substituted
// symbol can newly collide, so only those are checked (against the
// whole list).
func (s *System) Subst(name string, e dpl.Expr) {
	mentions := func(x dpl.Expr) bool {
		for _, v := range dpl.FreeVars(x) {
			if v == name {
				return true
			}
		}
		return false
	}

	predChanged := make([]bool, len(s.Preds))
	for i := range s.Preds {
		if mentions(s.Preds[i].E) {
			s.Preds[i].E = dpl.Subst(s.Preds[i].E, name, e)
			predChanged[i] = true
		}
	}
	preds := s.Preds[:0]
	kept := 0
	for i, p := range s.Preds {
		dup := false
		for j := 0; j < kept; j++ {
			q := preds[j]
			if (predChanged[i] || predChanged[j]) && q.Kind == p.Kind && q.Region == p.Region && dpl.Equal(q.E, p.E) {
				dup = true
				break
			}
		}
		if !dup {
			preds = append(preds, p)
			predChanged[kept] = predChanged[i]
			kept++
		}
	}
	s.Preds = preds

	subChanged := make([]bool, len(s.Subsets))
	for i := range s.Subsets {
		if mentions(s.Subsets[i].L) || mentions(s.Subsets[i].R) {
			s.Subsets[i].L = dpl.Subst(s.Subsets[i].L, name, e)
			s.Subsets[i].R = dpl.Subst(s.Subsets[i].R, name, e)
			subChanged[i] = true
		}
	}
	out := s.Subsets[:0]
	kept = 0
	for i, c := range s.Subsets {
		if dpl.Equal(c.L, c.R) {
			continue
		}
		dup := false
		for j := 0; j < kept; j++ {
			q := out[j]
			if (subChanged[i] || subChanged[j]) && dpl.Equal(q.L, c.L) && dpl.Equal(q.R, c.R) {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, c)
			subChanged[kept] = subChanged[i]
			kept++
		}
	}
	s.Subsets = out
}

// Symbols returns all partition symbols appearing in the system, sorted.
func (s *System) Symbols() []string {
	seen := map[string]bool{}
	add := func(e dpl.Expr) {
		for _, v := range dpl.FreeVars(e) {
			seen[v] = true
		}
	}
	for _, p := range s.Preds {
		add(p.E)
	}
	for _, c := range s.Subsets {
		add(c.L)
		add(c.R)
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// PartOf returns the region of each symbol P that has a PART(P, R)
// predicate; the map feeds dpl.RegionOf.
func (s *System) PartOf() map[string]string {
	out := map[string]string{}
	for _, p := range s.Preds {
		if p.Kind == Part {
			if v, ok := p.E.(dpl.Var); ok {
				out[v.Name] = p.Region
			}
		}
	}
	return out
}

// HasPred reports whether the system contains a predicate of the given
// kind on a symbol.
func (s *System) HasPred(kind PredKind, symbol string) bool {
	for _, p := range s.Preds {
		if p.Kind == kind {
			if v, ok := p.E.(dpl.Var); ok && v.Name == symbol {
				return true
			}
		}
	}
	return false
}

// SubsetsInto returns the subset constraints whose right-hand side is
// exactly the symbol.
func (s *System) SubsetsInto(symbol string) []Subset {
	var out []Subset
	for _, c := range s.Subsets {
		if v, ok := c.R.(dpl.Var); ok && v.Name == symbol {
			out = append(out, c)
		}
	}
	return out
}

func (s *System) String() string {
	parts := make([]string, 0, len(s.Preds)+len(s.Subsets))
	for _, p := range s.Preds {
		parts = append(parts, p.String())
	}
	for _, c := range s.Subsets {
		parts = append(parts, c.String())
	}
	if len(parts) == 0 {
		return "⊤"
	}
	return strings.Join(parts, " ∧ ")
}

// Conjuncts returns every conjunct as a printable unit (predicates first,
// then subsets), used by the final entailment check.
type Conjunct struct {
	Pred    *Pred
	Subset  *Subset
	Summary string
}

// Conjuncts lists the system's conjuncts.
func (s *System) Conjuncts() []Conjunct {
	out := make([]Conjunct, 0, len(s.Preds)+len(s.Subsets))
	for i := range s.Preds {
		p := s.Preds[i]
		out = append(out, Conjunct{Pred: &p, Summary: p.String()})
	}
	for i := range s.Subsets {
		c := s.Subsets[i]
		out = append(out, Conjunct{Subset: &c, Summary: c.String()})
	}
	return out
}
