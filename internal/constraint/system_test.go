package constraint

import (
	"strings"
	"testing"

	"autopart/internal/dpl"
)

func v(name string) dpl.Expr { return dpl.Var{Name: name} }

func img(of dpl.Expr, f, r string) dpl.Expr {
	return dpl.ImageExpr{Of: of, Func: f, Region: r}
}

func pre(r, f string, of dpl.Expr) dpl.Expr {
	return dpl.PreimageExpr{Region: r, Func: f, Of: of}
}

func eq(r string) dpl.Expr { return dpl.EqualExpr{Region: r} }

func union(l, r dpl.Expr) dpl.Expr { return dpl.BinExpr{Op: dpl.OpUnion, L: l, R: r} }

func TestSystemAddAndDedup(t *testing.T) {
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: v("P1"), Region: "R"})
	sys.AddPred(Pred{Kind: Part, E: v("P1"), Region: "R"}) // dup
	sys.AddPred(Pred{Kind: Disj, E: v("P1")})
	sys.AddSubset(Subset{L: v("P1"), R: v("P2")})
	sys.AddSubset(Subset{L: v("P1"), R: v("P2")}) // dup
	sys.AddSubset(Subset{L: v("P1"), R: v("P1")}) // tautology

	if len(sys.Preds) != 2 {
		t.Errorf("Preds = %d, want 2", len(sys.Preds))
	}
	if len(sys.Subsets) != 1 {
		t.Errorf("Subsets = %d, want 1", len(sys.Subsets))
	}
}

func TestSystemString(t *testing.T) {
	sys := &System{}
	if sys.String() != "⊤" {
		t.Errorf("empty system = %q", sys.String())
	}
	sys.AddPred(Pred{Kind: Part, E: v("P1"), Region: "R"})
	sys.AddPred(Pred{Kind: Comp, E: v("P1"), Region: "R"})
	sys.AddPred(Pred{Kind: Disj, E: v("P1")})
	sys.AddSubset(Subset{L: img(v("P1"), "g", "S"), R: v("P2")})
	got := sys.String()
	for _, frag := range []string{"PART(P1, R)", "COMP(P1, R)", "DISJ(P1)", "image(P1, g, S) ⊆ P2"} {
		if !strings.Contains(got, frag) {
			t.Errorf("String missing %q: %s", frag, got)
		}
	}
}

func TestSystemSubst(t *testing.T) {
	sys := &System{}
	sys.AddPred(Pred{Kind: Disj, E: v("P1")})
	sys.AddSubset(Subset{L: v("P1"), R: v("P3")})
	sys.AddSubset(Subset{L: img(v("P1"), "g", "S"), R: v("P2")})

	sys.Subst("P1", eq("R"))
	if got := sys.Preds[0].E.String(); got != "equal(R)" {
		t.Errorf("pred after subst = %s", got)
	}
	if got := sys.Subsets[0].String(); got != "equal(R) ⊆ P3" {
		t.Errorf("subset after subst = %s", got)
	}

	// Substituting P3 with equal(R) makes the first subset a tautology,
	// which must be dropped.
	sys.Subst("P3", eq("R"))
	if len(sys.Subsets) != 1 {
		t.Fatalf("tautology not dropped: %s", sys)
	}
	if got := sys.Subsets[0].String(); got != "image(equal(R), g, S) ⊆ P2" {
		t.Errorf("remaining subset = %s", got)
	}
}

func TestSymbolsAndPartOf(t *testing.T) {
	sys := &System{}
	sys.AddPred(Pred{Kind: Part, E: v("P1"), Region: "R"})
	sys.AddPred(Pred{Kind: Part, E: v("P2"), Region: "S"})
	sys.AddSubset(Subset{L: img(v("P1"), "g", "S"), R: v("P2")})
	sys.AddSubset(Subset{L: v("Q"), R: v("P1")})

	syms := sys.Symbols()
	if len(syms) != 3 || syms[0] != "P1" || syms[1] != "P2" || syms[2] != "Q" {
		t.Errorf("Symbols = %v", syms)
	}
	po := sys.PartOf()
	if po["P1"] != "R" || po["P2"] != "S" || po["Q"] != "" {
		t.Errorf("PartOf = %v", po)
	}
	if !sys.HasPred(Part, "P1") || sys.HasPred(Disj, "P1") || sys.HasPred(Part, "Q") {
		t.Error("HasPred wrong")
	}
	into := sys.SubsetsInto("P2")
	if len(into) != 1 || into[0].L.String() != "image(P1, g, S)" {
		t.Errorf("SubsetsInto = %v", into)
	}
}

func TestCloneAndAnd(t *testing.T) {
	a := &System{}
	a.AddPred(Pred{Kind: Disj, E: v("P")})
	b := a.Clone()
	b.AddPred(Pred{Kind: Comp, E: v("P"), Region: "R"})
	if len(a.Preds) != 1 || len(b.Preds) != 2 {
		t.Error("Clone should not share predicate storage")
	}
	a.And(b)
	if len(a.Preds) != 3 {
		t.Errorf("And: %d preds", len(a.Preds))
	}
}

func TestConjuncts(t *testing.T) {
	sys := &System{}
	sys.AddPred(Pred{Kind: Disj, E: v("P")})
	sys.AddSubset(Subset{L: v("P"), R: v("Q")})
	cj := sys.Conjuncts()
	if len(cj) != 2 || cj[0].Pred == nil || cj[1].Subset == nil {
		t.Fatalf("Conjuncts = %+v", cj)
	}
	if cj[0].Summary != "DISJ(P)" || cj[1].Summary != "P ⊆ Q" {
		t.Errorf("summaries: %q, %q", cj[0].Summary, cj[1].Summary)
	}
}

func TestPredKindStrings(t *testing.T) {
	if Part.String() != "PART" || Disj.String() != "DISJ" || Comp.String() != "COMP" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(PredKind(9).String(), "9") {
		t.Error("unknown kind string")
	}
	p := Pred{Kind: Comp, E: v("P"), Region: "R"}
	if p.String() != "COMP(P, R)" {
		t.Errorf("Pred.String = %q", p.String())
	}
}
