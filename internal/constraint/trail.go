package constraint

import (
	"autopart/internal/dpl"
)

// Trail is an undo log over one System: the solver's backtracking search
// mutates its working system in place through the *T methods and rewinds
// to a mark on backtrack, so a search node costs O(delta) — the conjuncts
// the substitution actually touched — instead of the O(system) full
// Clone+Subst it replaced. Undo also restores the system's lazily built
// index pointer, so index reuse across sibling nodes is free.
//
// A Trail is bound to a single System and is not safe for concurrent use;
// parallel solvability checks each run their own trail over their own
// system.
type Trail struct {
	sys *System
	ops []trailOp
	// SubstT scratch, reused across calls (a Trail is single-threaded).
	// Substitutions touch few conjuncts, so tracking only the changed
	// ones keeps the hot path allocation-free after warm-up.
	chPredIdx []int
	chPredVal []Pred
	chSubIdx  []int
	chSubVal  []Subset
	remIdx    []int
	keptCh    []int
}

// trailOp is one reversible mutation. Exactly one of the op kinds below
// applies; i is always an index into the slice at the time the op ran.
type trailOp struct {
	kind uint8
	i    int
	pred Pred
	sub  Subset
}

const (
	opPredSet    uint8 = iota // pred holds the previous value at index i
	opPredRemove              // pred holds the removed value; re-insert at i
	opSubsetSet
	opSubsetRemove
)

// NewTrail creates an undo log over sys.
func NewTrail(sys *System) *Trail { return &Trail{sys: sys} }

// Mark captures the current state: the op count, the system's index
// pointers (both are immutable once built, so restoring the pointers
// restores index validity for free), and the fingerprint cache.
type Mark struct {
	n      int
	idx    *sysIndex
	strIdx map[string]string
	fp     [2]uint64
	fpOK   bool
}

// Mark returns a rewind point for UndoTo.
func (t *Trail) Mark() Mark {
	return Mark{n: len(t.ops), idx: t.sys.idx, strIdx: t.sys.strIdx, fp: t.sys.fp, fpOK: t.sys.fpOK}
}

// UndoTo rewinds every mutation recorded after the mark, restoring the
// system to its exact state (content, order, index, and fingerprint) at
// Mark time.
func (t *Trail) UndoTo(m Mark) {
	s := t.sys
	for k := len(t.ops) - 1; k >= m.n; k-- {
		op := t.ops[k]
		switch op.kind {
		case opPredSet:
			s.Preds[op.i] = op.pred
			if s.maskOK {
				s.predMask[op.i], s.predFvs[op.i], s.predFvIDs[op.i] = dpl.FvInfo(op.pred.E)
			}
		case opPredRemove:
			s.Preds = append(s.Preds, Pred{})
			copy(s.Preds[op.i+1:], s.Preds[op.i:])
			s.Preds[op.i] = op.pred
			if s.maskOK {
				s.predMask = append(s.predMask, 0)
				copy(s.predMask[op.i+1:], s.predMask[op.i:])
				s.predFvs = append(s.predFvs, nil)
				copy(s.predFvs[op.i+1:], s.predFvs[op.i:])
				s.predFvIDs = append(s.predFvIDs, nil)
				copy(s.predFvIDs[op.i+1:], s.predFvIDs[op.i:])
				s.predMask[op.i], s.predFvs[op.i], s.predFvIDs[op.i] = dpl.FvInfo(op.pred.E)
			}
		case opSubsetSet:
			s.Subsets[op.i] = op.sub
			if s.maskOK {
				lm, lf, li := dpl.FvInfo(op.sub.L)
				rm, rf, ri := dpl.FvInfo(op.sub.R)
				s.subMask[op.i] = [2]uint64{lm, rm}
				s.subFvs[op.i] = [2][]string{lf, rf}
				s.subFvIDs[op.i] = [2][]int32{li, ri}
			}
		case opSubsetRemove:
			s.Subsets = append(s.Subsets, Subset{})
			copy(s.Subsets[op.i+1:], s.Subsets[op.i:])
			s.Subsets[op.i] = op.sub
			if s.maskOK {
				s.subMask = append(s.subMask, [2]uint64{})
				copy(s.subMask[op.i+1:], s.subMask[op.i:])
				s.subFvs = append(s.subFvs, [2][]string{})
				copy(s.subFvs[op.i+1:], s.subFvs[op.i:])
				s.subFvIDs = append(s.subFvIDs, [2][]int32{})
				copy(s.subFvIDs[op.i+1:], s.subFvIDs[op.i:])
				lm, lf, li := dpl.FvInfo(op.sub.L)
				rm, rf, ri := dpl.FvInfo(op.sub.R)
				s.subMask[op.i] = [2]uint64{lm, rm}
				s.subFvs[op.i] = [2][]string{lf, rf}
				s.subFvIDs[op.i] = [2][]int32{li, ri}
			}
		}
	}
	t.ops = t.ops[:m.n]
	s.idx = m.idx
	s.strIdx = m.strIdx
	s.fp, s.fpOK = m.fp, m.fpOK
}

// setPred overwrites Preds[i], recording the old value.
func (t *Trail) setPred(i int, p Pred) {
	s := t.sys
	t.ops = append(t.ops, trailOp{kind: opPredSet, i: i, pred: s.Preds[i]})
	if s.fpOK {
		s.fpSub(s.Preds[i].hash128())
		s.fpAdd(p.hash128())
	}
	if s.maskOK {
		s.predMask[i], s.predFvs[i], s.predFvIDs[i] = dpl.FvInfo(p.E)
	}
	s.Preds[i] = p
}

// removePredAt deletes Preds[i], recording the removed value.
func (t *Trail) removePredAt(i int) {
	s := t.sys
	t.ops = append(t.ops, trailOp{kind: opPredRemove, i: i, pred: s.Preds[i]})
	if s.fpOK {
		s.fpSub(s.Preds[i].hash128())
	}
	if s.maskOK {
		copy(s.predMask[i:], s.predMask[i+1:])
		s.predMask = s.predMask[:len(s.predMask)-1]
		copy(s.predFvs[i:], s.predFvs[i+1:])
		s.predFvs = s.predFvs[:len(s.predFvs)-1]
		copy(s.predFvIDs[i:], s.predFvIDs[i+1:])
		s.predFvIDs = s.predFvIDs[:len(s.predFvIDs)-1]
	}
	copy(s.Preds[i:], s.Preds[i+1:])
	s.Preds = s.Preds[:len(s.Preds)-1]
}

// setSubset overwrites Subsets[i], recording the old value.
func (t *Trail) setSubset(i int, c Subset) {
	s := t.sys
	t.ops = append(t.ops, trailOp{kind: opSubsetSet, i: i, sub: s.Subsets[i]})
	if s.fpOK {
		s.fpSub(s.Subsets[i].hash128())
		s.fpAdd(c.hash128())
	}
	if s.maskOK {
		lm, lf, li := dpl.FvInfo(c.L)
		rm, rf, ri := dpl.FvInfo(c.R)
		s.subMask[i] = [2]uint64{lm, rm}
		s.subFvs[i] = [2][]string{lf, rf}
		s.subFvIDs[i] = [2][]int32{li, ri}
	}
	s.Subsets[i] = c
}

// removeSubsetAt deletes Subsets[i], recording the removed value.
func (t *Trail) removeSubsetAt(i int) {
	s := t.sys
	t.ops = append(t.ops, trailOp{kind: opSubsetRemove, i: i, sub: s.Subsets[i]})
	if s.fpOK {
		s.fpSub(s.Subsets[i].hash128())
	}
	if s.maskOK {
		copy(s.subMask[i:], s.subMask[i+1:])
		s.subMask = s.subMask[:len(s.subMask)-1]
		copy(s.subFvs[i:], s.subFvs[i+1:])
		s.subFvs = s.subFvs[:len(s.subFvs)-1]
		copy(s.subFvIDs[i:], s.subFvIDs[i+1:])
		s.subFvIDs = s.subFvIDs[:len(s.subFvIDs)-1]
	}
	copy(s.Subsets[i:], s.Subsets[i+1:])
	s.Subsets = s.Subsets[:len(s.Subsets)-1]
}

// RemovePredsT deletes the predicates at the given ascending indices.
func (s *System) RemovePredsT(t *Trail, idx []int) {
	if len(idx) == 0 {
		return
	}
	s.invalidate()
	for k := len(idx) - 1; k >= 0; k-- {
		t.removePredAt(idx[k])
	}
}

// RemoveSubsetsT deletes the subset constraints at the given ascending
// indices.
func (s *System) RemoveSubsetsT(t *Trail, idx []int) {
	if len(idx) == 0 {
		return
	}
	s.invalidate()
	for k := len(idx) - 1; k >= 0; k-- {
		t.removeSubsetAt(idx[k])
	}
}

// SubstT is Subst on the trail: it replaces a partition symbol with an
// expression throughout the system, dropping resulting tautologies and
// duplicates exactly as Subst does, but records every edit so UndoTo can
// rewind it. Conjuncts that do not mention the symbol are neither
// touched nor copied, so the cost (and the trail growth) is O(delta).
func (s *System) SubstT(t *Trail, name string, e dpl.Expr) {
	// Phase 1: compute substituted values without mutating, tracking only
	// the entries that change (ascending index order). The dedup below
	// must compare exactly what Subst compares: the post-substitution
	// values. The per-conjunct free-variable masks rule most conjuncts
	// out with one bit test (a clear bit proves the symbol absent); only
	// possible hits pay the exact Mentions lookup.
	s.ensureMasks()
	bit := dpl.SymBit(name)
	chPredIdx, chPredVal := t.chPredIdx[:0], t.chPredVal[:0]
	for i, p := range s.Preds {
		if s.predMask[i]&bit != 0 && dpl.Mentions(p.E, name) {
			p.E = dpl.Subst(p.E, name, e)
			chPredIdx = append(chPredIdx, i)
			chPredVal = append(chPredVal, p)
		}
	}
	chSubIdx, chSubVal := t.chSubIdx[:0], t.chSubVal[:0]
	for i, c := range s.Subsets {
		m := s.subMask[i]
		if (m[0]|m[1])&bit != 0 && (dpl.Mentions(c.L, name) || dpl.Mentions(c.R, name)) {
			c.L = dpl.Subst(c.L, name, e)
			c.R = dpl.Subst(c.R, name, e)
			chSubIdx = append(chSubIdx, i)
			chSubVal = append(chSubVal, c)
		}
	}
	t.chPredIdx, t.chPredVal = chPredIdx, chPredVal
	t.chSubIdx, t.chSubVal = chSubIdx, chSubVal
	if len(chPredIdx) == 0 && len(chSubIdx) == 0 {
		return
	}
	s.invalidate()

	// Phase 2: replicate Subst's compaction — a conjunct is dropped when
	// an earlier *kept* conjunct equals it and at least one of the two
	// changed (only changed conjuncts can newly collide), or (subsets)
	// when it became a tautology. Unchanged-vs-unchanged pairs can never
	// newly collide, so each conjunct is compared against the kept
	// changed ones, and each changed conjunct additionally against the
	// earlier kept unchanged ones — O(n·changed), not O(n²). Pred and
	// Subset are comparable value structs whose fields are exactly what
	// Subst compares, so == is the structural-equality check.
	rem := t.remIdx[:0]    // removed original indices, ascending
	keptCh := t.keptCh[:0] // kept changed conjuncts, as offsets into chPredIdx
	ci := 0
	for i, orig := range s.Preds {
		changed := ci < len(chPredIdx) && chPredIdx[ci] == i
		v := orig
		if changed {
			v = chPredVal[ci]
		}
		dup := false
		for _, k := range keptCh {
			if chPredVal[k] == v {
				dup = true
				break
			}
		}
		if !dup && changed {
			rj, cj := 0, 0
			for j := 0; j < i && !dup; j++ {
				isRem := rj < len(rem) && rem[rj] == j
				if isRem {
					rj++
				}
				isCh := cj < len(chPredIdx) && chPredIdx[cj] == j
				if isCh {
					cj++
				}
				if isRem || isCh {
					continue
				}
				if s.Preds[j] == v {
					dup = true
				}
			}
		}
		if dup {
			rem = append(rem, i)
		} else if changed {
			keptCh = append(keptCh, ci)
		}
		if changed {
			ci++
		}
	}

	// Apply preds: overwrite surviving changed entries at their original
	// positions (indices still original — nothing has moved yet), then
	// delete removed entries from highest index down so earlier indices
	// stay valid. UndoTo replays this exactly in reverse.
	for _, k := range keptCh {
		t.setPred(chPredIdx[k], chPredVal[k])
	}
	for k := len(rem) - 1; k >= 0; k-- {
		t.removePredAt(rem[k])
	}

	// Subsets: same scheme, plus Subst's tautology drop, which applies
	// to every conjunct (changed or not).
	rem = rem[:0]
	keptCh = keptCh[:0]
	ci = 0
	for i, orig := range s.Subsets {
		changed := ci < len(chSubIdx) && chSubIdx[ci] == i
		v := orig
		if changed {
			v = chSubVal[ci]
		}
		dup := dpl.Equal(v.L, v.R)
		if !dup {
			for _, k := range keptCh {
				if chSubVal[k] == v {
					dup = true
					break
				}
			}
		}
		if !dup && changed {
			rj, cj := 0, 0
			for j := 0; j < i && !dup; j++ {
				isRem := rj < len(rem) && rem[rj] == j
				if isRem {
					rj++
				}
				isCh := cj < len(chSubIdx) && chSubIdx[cj] == j
				if isCh {
					cj++
				}
				if isRem || isCh {
					continue
				}
				if s.Subsets[j] == v {
					dup = true
				}
			}
		}
		if dup {
			rem = append(rem, i)
		} else if changed {
			keptCh = append(keptCh, ci)
		}
		if changed {
			ci++
		}
	}
	for _, k := range keptCh {
		t.setSubset(chSubIdx[k], chSubVal[k])
	}
	for k := len(rem) - 1; k >= 0; k-- {
		t.removeSubsetAt(rem[k])
	}
	t.remIdx, t.keptCh = rem, keptCh
}
