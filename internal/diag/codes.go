package diag

import "sort"

// CodeInfo documents one stable diagnostic code for `apc -explain`.
type CodeInfo struct {
	Code    string
	Summary string
	Detail  string
}

// The code namespaces follow the pass that raises them: Lxxx lexer,
// Pxxx parser, Cxxx semantic check, Nxxx normalization, Ixxx constraint
// inference, Sxxx constraint solver. The x000 code of each namespace is
// the generic fallback used when a pass fails with an uncoded error.
var codeTable = []CodeInfo{
	{"L000", "lexical error", "The lexer failed without a more specific code."},
	{"L001", "malformed number", "A numeric literal contains more than one decimal point."},
	{"L002", "unexpected '<'", "Standalone '<' is not an operator in the DSL; only the subset operator '<=' is supported."},
	{"L003", "unexpected '!'", "Standalone '!' is not an operator in the DSL; the only use of '!' is the comparison '!='."},
	{"L004", "unexpected character", "The character cannot start any DSL token."},

	{"P000", "parse error", "The parser failed without a more specific code."},
	{"P001", "unexpected token", "The parser expected a specific token kind and found another. The message names both."},
	{"P002", "expected top-level item", "Only region/function/extern declarations, for loops, and assert statements may appear at the top level."},
	{"P003", "bad field kind", "A region field must be declared as 'scalar', 'index(R)', or 'range(R)'."},
	{"P004", "unexpected end of input", "The input ended inside a braced block; a closing '}' is missing."},
	{"P005", "bad inner loop range", "The iteration space of an inner loop must be a range-field access such as Ranges[i].span (§4)."},
	{"P006", "bad assignment target", "The left-hand side of a field assignment must be a field access R[idx].f."},
	{"P007", "expected assignment operator", "A field access in statement position must be followed by '=', '+=', '*=', 'max=', or 'min='."},
	{"P008", "expected statement", "Loop bodies contain variable bindings, field assignments, inner loops, and guards."},
	{"P009", "bad guard condition", "Guard conditions are 'x in S' membership tests or '=='/'!=' comparisons."},
	{"P010", "expected expression", "An expression was required here."},
	{"P011", "unknown partition operator", "Assert expressions use image, preimage, IMAGE, or PREIMAGE applications and '+' unions."},
	{"P012", "nesting too deep", "Expressions, blocks, and assert expressions may nest at most 200 levels deep; deeper input is rejected instead of risking a stack overflow."},

	{"C000", "semantic check error", "Semantic validation failed without a more specific code."},
	{"C001", "duplicate region", "Two region declarations share a name."},
	{"C002", "duplicate field", "A region declares the same field twice."},
	{"C003", "index-space cycle", "Region index-space sharing (region R : S) must form a forest; a cycle was found."},
	{"C004", "unknown shared space", "A region shares its index space with an undeclared region."},
	{"C005", "unknown field target", "An index/range field points into an undeclared region."},
	{"C006", "duplicate function", "Two index-function declarations share a name."},
	{"C007", "unknown function domain", "An index function's domain region is undeclared."},
	{"C008", "unknown function codomain", "An index function's codomain region is undeclared."},
	{"C009", "duplicate extern partition", "Two extern partition declarations share a name."},
	{"C010", "unknown extern region", "An extern partition is declared over an undeclared region."},
	{"C011", "unknown loop region", "A top-level loop iterates over an undeclared region."},
	{"C012", "inner range not a range field", "The inner-loop iteration space must be a declared range field."},
	{"C013", "unknown guard space", "A membership guard tests against a name that is neither a region nor an extern partition."},
	{"C014", "unknown region", "A field access names an undeclared region."},
	{"C015", "unknown field", "A field access names a field the region does not declare."},
	{"C016", "assert: unknown region", "An assert references an undeclared region."},
	{"C017", "assert: unknown partition", "An assert references a partition symbol with no 'extern partition' declaration."},

	{"N000", "normalization error", "IR normalization failed without a more specific code."},
	{"N001", "assignment to range field", "Range fields describe iteration spaces and cannot be stored to."},
	{"N002", "inner range not a range field", "The inner-loop iteration space must normalize to a range field."},
	{"N003", "unsupported condition", "Only membership tests and scalar comparisons are supported as guards."},
	{"N004", "unsupported statement", "The statement form is not part of the normalized IR."},
	{"N005", "undefined variable", "The variable is used before any binding."},
	{"N006", "not an index", "A region subscript must be an index-valued variable (Algorithm 1's normal form)."},
	{"N007", "undeclared index function", "Calls in index position must name a declared index function."},
	{"N008", "wrong index-function arity", "Declared index functions take exactly one argument."},
	{"N009", "index-function domain mismatch", "The argument indexes a region outside the function's declared domain space."},
	{"N010", "unknown region", "An access names an undeclared region."},
	{"N011", "unknown field", "An access names a field the region does not declare."},
	{"N012", "not an index field", "Only index fields can be dereferenced in index position."},
	{"N013", "expression not an index", "The expression cannot be normalized to an index computation."},
	{"N014", "malformed number", "The numeric literal does not parse as a float."},
	{"N015", "range field read as scalar", "Range fields cannot be loaded as scalar values."},
	{"N016", "unsupported expression", "The expression form is not part of the normalized IR."},
	{"N017", "index region mismatch", "The subscript variable indexes a different region (index spaces must match)."},

	{"I000", "inference error", "Constraint inference failed without a more specific code."},
	{"I001", "uncentered reduction with read", "A region field with an uncentered reduction must have no other read access; the loop is not parallelizable (§2)."},
	{"I002", "mixed reduction operators", "A region field reduced through more than one operator is not parallelizable."},
	{"I003", "uncentered read with write", "A region field with an uncentered read must have no write access; the loop is not parallelizable (§2)."},
	{"I004", "no environment entry", "An index variable is not derived from the loop variable, so no image expression exists for it (Algorithm 1)."},
	{"I005", "stale pointer-field load", "An index field is loaded after being stored in the same loop; partitions computed before the launch would be stale. Split the loop (Fig. 4 keeps stores after all loads)."},
	{"I006", "uncentered write", "Plain writes must be centered (indexed by the loop variable); the loop is not parallelizable."},
	{"I007", "unknown index function", "The IR references an undeclared index function."},
	{"I008", "unknown IR statement", "Internal error: the inference walker saw an unknown IR statement form."},
	{"I009", "plain write with uncentered reduction", "A region field with both a plain write and an uncentered reduction is not parallelizable: stores flush at task end but buffered contributions fold after the launch, while sequential execution interleaves them per iteration."},

	{"S000", "solver error", "Constraint solving failed without a more specific code."},
	{"S001", "no solution", "Algorithm 2 exhausted its rules and backtracking without a consistent assignment of DPL expressions to partition symbols. The message shows the unsolved system."},
	{"S002", "solver internal error", "The synthesized DPL program failed its topological sanity check; this is a bug in the solver."},

	{"O000", "optimization error", "The relaxation/private-sub-partition pass failed."},
	{"R000", "rewrite error", "Parallel-loop rewriting failed."},
}

var codeIndex = func() map[string]CodeInfo {
	m := make(map[string]CodeInfo, len(codeTable))
	for _, c := range codeTable {
		m[c.Code] = c
	}
	return m
}()

// Explain looks up a diagnostic code.
func Explain(code string) (CodeInfo, bool) {
	c, ok := codeIndex[code]
	return c, ok
}

// Codes lists every registered code, sorted.
func Codes() []CodeInfo {
	out := append([]CodeInfo(nil), codeTable...)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}
