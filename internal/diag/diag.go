// Package diag defines the compiler's structured diagnostics: every
// user-facing error carries a severity, a source span, a stable code
// (see codes.go for the registry), and optional notes. Errors produced
// by the frontend and middle passes (*lang.Error and anything wrapping
// one) convert losslessly via From; rendering helpers produce the
// canonical "file:line:col: error[CODE]: message" form used by cmd/apc.
package diag

import (
	"errors"
	"fmt"
	"strings"

	"autopart/internal/lang"
)

// Severity classifies a diagnostic.
type Severity int

// Severities.
const (
	SevError Severity = iota
	SevWarning
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	case SevInfo:
		return "info"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one structured compiler diagnostic.
type Diagnostic struct {
	Severity Severity
	// Pos is the source span; the zero span means the diagnostic is not
	// anchored to a source location (e.g. whole-program solver failures).
	Pos lang.Span
	// Code is the stable diagnostic code ("P001", "S001", ...); see
	// Explain for the registry.
	Code string
	// Message is the human-readable message, without position prefix.
	Message string
	// Notes carry secondary information (contexts, hints).
	Notes []string
}

// Error implements the error interface: "3:5: error[P001]: message".
func (d Diagnostic) Error() string { return d.Format("") }

// HasPos reports whether the diagnostic is anchored to a source span.
func (d Diagnostic) HasPos() bool { return d.Pos.Valid() }

// Format renders the diagnostic with an optional file name prefix:
// "file:3:5: error[P001]: message". Notes follow on indented lines.
func (d Diagnostic) Format(file string) string {
	var sb strings.Builder
	if d.HasPos() {
		if file != "" {
			sb.WriteString(file)
			sb.WriteByte(':')
		}
		sb.WriteString(d.Pos.Start.String())
		sb.WriteString(": ")
	} else if file != "" {
		sb.WriteString(file)
		sb.WriteString(": ")
	}
	sb.WriteString(d.Severity.String())
	if d.Code != "" {
		fmt.Fprintf(&sb, "[%s]", d.Code)
	}
	sb.WriteString(": ")
	sb.WriteString(d.Message)
	for _, n := range d.Notes {
		sb.WriteString("\n\tnote: ")
		sb.WriteString(n)
	}
	return sb.String()
}

// New builds an error-severity diagnostic.
func New(code string, span lang.Span, format string, args ...any) Diagnostic {
	return Diagnostic{
		Severity: SevError,
		Pos:      span,
		Code:     code,
		Message:  fmt.Sprintf(format, args...),
	}
}

// The interfaces positioned errors implement (satisfied by *lang.Error).
type spanned interface{ DiagSpan() lang.Span }
type coded interface{ DiagCode() string }
type bareMessage interface{ DiagMessage() string }
type notes interface{ DiagNotes() []string }

// From converts an arbitrary error into a Diagnostic, walking the
// Unwrap chain for span, code, and note information. Wrapping context
// added around a positioned error ("infer: loop 0 (...): ...") is kept
// in the message, but the inner error's own position prefix is elided so
// the position renders exactly once. fallbackCode is used when no coded
// error is found in the chain.
func From(err error, fallbackCode string) Diagnostic {
	var d Diagnostic
	if errors.As(err, &d) {
		return d
	}
	d = Diagnostic{Severity: SevError, Code: fallbackCode, Message: err.Error()}
	for e := err; e != nil; e = errors.Unwrap(e) {
		if s, ok := e.(spanned); ok && !d.HasPos() {
			d.Pos = s.DiagSpan()
		}
		if c, ok := e.(coded); ok && c.DiagCode() != "" {
			d.Code = c.DiagCode()
			// Rebuild the message with the inner position prefix elided:
			// the chain's Error() includes "line:col: msg" for the inner
			// error; substitute the bare message under the same context.
			if b, okMsg := e.(bareMessage); okMsg {
				if inner, okErr := e.(error); okErr {
					full := err.Error()
					if idx := strings.LastIndex(full, inner.Error()); idx >= 0 {
						d.Message = full[:idx] + b.DiagMessage()
					}
				}
			}
			if n, okNotes := e.(notes); okNotes {
				d.Notes = append(d.Notes, n.DiagNotes()...)
			}
			break
		}
	}
	return d
}
