package diag

import (
	"fmt"
	"strings"
	"testing"

	"autopart/internal/lang"
)

func TestFormat(t *testing.T) {
	d := Diagnostic{
		Severity: SevError,
		Pos:      lang.SpanAt(lang.Pos{Line: 3, Col: 5}),
		Code:     "P001",
		Message:  "expected ')', found '}'",
		Notes:    []string{"while parsing an assert expression"},
	}
	got := d.Format("prog.dsl")
	want := "prog.dsl:3:5: error[P001]: expected ')', found '}'\n\tnote: while parsing an assert expression"
	if got != want {
		t.Errorf("Format = %q, want %q", got, want)
	}
	if d.Error() != d.Format("") {
		t.Errorf("Error() = %q, want Format(\"\")", d.Error())
	}

	// Without a position the file still prefixes the message.
	bare := Diagnostic{Severity: SevError, Code: "S001", Message: "no solution"}
	if got := bare.Format("prog.dsl"); got != "prog.dsl: error[S001]: no solution" {
		t.Errorf("Format = %q", got)
	}
	if bare.HasPos() {
		t.Error("position-less diagnostic reports HasPos")
	}
}

func TestFromLangError(t *testing.T) {
	le := lang.Errorf("C014", lang.SpanAt(lang.Pos{Line: 2, Col: 9}), "unknown region %q", "Q")
	d := From(le, "C000")
	if d.Code != "C014" || d.Pos.Start != (lang.Pos{Line: 2, Col: 9}) {
		t.Errorf("From = code %q pos %v", d.Code, d.Pos)
	}
	// The message carries no position prefix — rendering adds it once.
	if strings.Contains(d.Message, "2:9") {
		t.Errorf("message %q duplicates the position", d.Message)
	}
}

func TestFromWrappedError(t *testing.T) {
	le := lang.Errorf("I005", lang.SpanAt(lang.Pos{Line: 7, Col: 3}), "stale pointer-field load")
	wrapped := fmt.Errorf("loop 0 (for i in R): %w", le)
	d := From(wrapped, "I000")
	if d.Code != "I005" {
		t.Errorf("code = %q, want I005", d.Code)
	}
	if !d.HasPos() || d.Pos.Start.Line != 7 {
		t.Errorf("pos = %v, want line 7", d.Pos)
	}
	// Wrap context survives; the inner position prefix is elided.
	if d.Message != "loop 0 (for i in R): stale pointer-field load" {
		t.Errorf("message = %q", d.Message)
	}
}

func TestFromPlainError(t *testing.T) {
	d := From(fmt.Errorf("something odd"), "O000")
	if d.Code != "O000" || d.HasPos() || d.Message != "something odd" {
		t.Errorf("From = %+v", d)
	}
}

func TestExplainRegistry(t *testing.T) {
	info, ok := Explain("S001")
	if !ok || info.Summary == "" || info.Detail == "" {
		t.Errorf("Explain(S001) = %+v, %v", info, ok)
	}
	if _, ok := Explain("Z999"); ok {
		t.Error("Explain accepted an unknown code")
	}
	codes := Codes()
	if len(codes) < 50 {
		t.Errorf("only %d codes registered", len(codes))
	}
	for i := 1; i < len(codes); i++ {
		if codes[i-1].Code >= codes[i].Code {
			t.Errorf("codes not sorted/unique at %s >= %s", codes[i-1].Code, codes[i].Code)
		}
	}
}
