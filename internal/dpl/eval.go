package dpl

import (
	"fmt"

	"autopart/internal/geometry"
	"autopart/internal/region"
)

// Context supplies everything needed to evaluate DPL expressions against
// concrete data: the regions, the index maps referenced by name inside
// image/preimage operators, the color count for equal partitions, and the
// partition bindings accumulated so far (including externally provided
// partitions, §3.3).
type Context struct {
	// Colors is the number of subregions equal(R) creates; it is also the
	// color space every evaluated partition uses.
	Colors int

	regions   map[string]*region.Region
	maps      map[string]geometry.IndexMap
	multiMaps map[string]geometry.MultiMap
	bindings  map[string]*region.Partition
	// memo caches evaluated partitions keyed by the expression's
	// canonical string, so shared subexpressions inside BinExpr trees
	// (and across program statements) evaluate once per context. The
	// cache is invalidated whenever an existing name is re-registered
	// (Bind of a bound symbol, AddMap/AddMultiMap/AddRegion of any
	// name): a cached result may have depended on the old meaning.
	// First-time Binds keep the cache — no successfully cached
	// expression can have referenced a previously unbound symbol.
	memo map[string]*region.Partition
}

// NewContext creates an evaluation context with the given color count.
func NewContext(colors int) *Context {
	return &Context{
		Colors:    colors,
		regions:   map[string]*region.Region{},
		maps:      map[string]geometry.IndexMap{},
		multiMaps: map[string]geometry.MultiMap{},
		bindings:  map[string]*region.Partition{},
		memo:      map[string]*region.Partition{},
	}
}

func (c *Context) invalidate() {
	if len(c.memo) > 0 {
		c.memo = map[string]*region.Partition{}
	}
}

// AddRegion registers a region under its own name.
func (c *Context) AddRegion(r *region.Region) *Context {
	c.invalidate()
	c.regions[r.Name()] = r
	return c
}

// Region looks up a region by name.
func (c *Context) Region(name string) (*region.Region, bool) {
	r, ok := c.regions[name]
	return r, ok
}

// AddMap registers a single-valued index map under the name DPL
// expressions use to reference it.
func (c *Context) AddMap(name string, m geometry.IndexMap) *Context {
	c.invalidate()
	c.maps[name] = m
	return c
}

// AddMultiMap registers a multi-valued map (for IMAGE/PREIMAGE).
func (c *Context) AddMultiMap(name string, m geometry.MultiMap) *Context {
	c.invalidate()
	c.multiMaps[name] = m
	return c
}

// Bind associates a partition symbol with a concrete partition; used both
// for program evaluation and for external partitions. Re-binding an
// already-bound symbol clears the memo cache (cached expressions may
// reference the old binding); a first-time Bind cannot.
func (c *Context) Bind(name string, p *region.Partition) *Context {
	if _, rebind := c.bindings[name]; rebind {
		c.invalidate()
	}
	c.bindings[name] = p
	return c
}

// Binding looks up a bound partition.
func (c *Context) Binding(name string) (*region.Partition, bool) {
	p, ok := c.bindings[name]
	return p, ok
}

func (c *Context) lookupMap(name string) (geometry.IndexMap, error) {
	if name == "id" {
		return geometry.IdentityMap{}, nil
	}
	m, ok := c.maps[name]
	if !ok {
		return nil, fmt.Errorf("dpl: unknown index map %q", name)
	}
	return m, nil
}

func (c *Context) lookupMultiMap(name string) (geometry.MultiMap, error) {
	if m, ok := c.multiMaps[name]; ok {
		return m, nil
	}
	// A single-valued map may appear in a generalized operator; lift it.
	if m, ok := c.maps[name]; ok {
		return geometry.Lift(m), nil
	}
	return nil, fmt.Errorf("dpl: unknown multi-valued map %q", name)
}

func (c *Context) lookupRegion(name string) (*region.Region, error) {
	r, ok := c.regions[name]
	if !ok {
		return nil, fmt.Errorf("dpl: unknown region %q", name)
	}
	return r, nil
}

// Eval computes the concrete partition denoted by e. The resulting
// partition is named by the expression's syntax. Results of non-Var
// expressions are memoized per context (see the memo field), so a
// BinExpr tree with repeated subtrees — e.g. the Theorem 5.1 private
// sub-partition construction, where the image partition appears on both
// sides of the difference — pays for each distinct subexpression once.
func (c *Context) Eval(e Expr) (*region.Partition, error) {
	if _, isVar := e.(Var); !isVar && c.memo != nil {
		if p, ok := c.memo[Key(e)]; ok {
			return p, nil
		}
	}
	p, err := c.evalUncached(e)
	if err == nil && c.memo != nil {
		if _, isVar := e.(Var); !isVar {
			c.memo[Key(e)] = p
		}
	}
	return p, err
}

// evalUncached evaluates one node; subexpressions still go through the
// memoizing Eval.
func (c *Context) evalUncached(e Expr) (*region.Partition, error) {
	switch x := e.(type) {
	case Var:
		p, ok := c.bindings[x.Name]
		if !ok {
			return nil, fmt.Errorf("dpl: unbound partition symbol %q", x.Name)
		}
		return p, nil

	case EqualExpr:
		r, err := c.lookupRegion(x.Region)
		if err != nil {
			return nil, err
		}
		return region.Equal(e.String(), r, c.Colors), nil

	case ImageExpr:
		of, err := c.Eval(x.Of)
		if err != nil {
			return nil, err
		}
		f, err := c.lookupMap(x.Func)
		if err != nil {
			return nil, err
		}
		r, err := c.lookupRegion(x.Region)
		if err != nil {
			return nil, err
		}
		return region.Image(e.String(), of, f, r), nil

	case PreimageExpr:
		of, err := c.Eval(x.Of)
		if err != nil {
			return nil, err
		}
		f, err := c.lookupMap(x.Func)
		if err != nil {
			return nil, err
		}
		r, err := c.lookupRegion(x.Region)
		if err != nil {
			return nil, err
		}
		return region.Preimage(e.String(), r, f, of), nil

	case ImageMultiExpr:
		of, err := c.Eval(x.Of)
		if err != nil {
			return nil, err
		}
		f, err := c.lookupMultiMap(x.Func)
		if err != nil {
			return nil, err
		}
		r, err := c.lookupRegion(x.Region)
		if err != nil {
			return nil, err
		}
		return region.ImageMulti(e.String(), of, f, r), nil

	case PreimageMultiExpr:
		of, err := c.Eval(x.Of)
		if err != nil {
			return nil, err
		}
		f, err := c.lookupMultiMap(x.Func)
		if err != nil {
			return nil, err
		}
		r, err := c.lookupRegion(x.Region)
		if err != nil {
			return nil, err
		}
		return region.PreimageMulti(e.String(), r, f, of), nil

	case BinExpr:
		l, err := c.Eval(x.L)
		if err != nil {
			return nil, err
		}
		r, err := c.Eval(x.R)
		if err != nil {
			return nil, err
		}
		switch x.Op {
		case OpUnion:
			return region.Union(e.String(), l, r), nil
		case OpIntersect:
			return region.Intersect(e.String(), l, r), nil
		case OpMinus:
			return region.Subtract(e.String(), l, r), nil
		default:
			return nil, fmt.Errorf("dpl: unknown operator %v", x.Op)
		}

	default:
		return nil, fmt.Errorf("dpl: unknown expression %T", e)
	}
}
