package dpl

import (
	"math/rand"
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/region"
)

// figure1Context builds the Particles/Cells configuration of Fig. 1: each
// particle points to a cell, and h is the +1 neighbor function on cells.
func figure1Context(t *testing.T, nParticles, nCells int64, colors int) (*Context, *region.Region, *region.Region) {
	t.Helper()
	particles := region.New("Particles", nParticles)
	particles.AddIndexField("cell")
	particles.AddScalarField("pos")
	cells := region.New("Cells", nCells)
	cells.AddScalarField("vel")
	cells.AddScalarField("acc")

	rng := rand.New(rand.NewSource(7))
	cellOf := particles.Index("cell")
	for i := range cellOf {
		cellOf[i] = rng.Int63n(nCells)
	}

	ctx := NewContext(colors)
	ctx.AddRegion(particles).AddRegion(cells)
	ctx.AddMap("Particles[·].cell", particles.PointerMap("cell"))
	ctx.AddMap("h", geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: nCells})
	return ctx, particles, cells
}

func TestEvalProgramA(t *testing.T) {
	// Program A of Fig. 2a.
	ctx, particles, cells := figure1Context(t, 40, 10, 4)
	var prog Program
	prog.Append("P1", EqualExpr{Region: "Particles"})
	prog.Append("P2", ImageExpr{Of: Var{Name: "P1"}, Func: "Particles[·].cell", Region: "Cells"})
	prog.Append("P3", ImageExpr{Of: Var{Name: "P2"}, Func: "h", Region: "Cells"})
	prog.Append("P4", EqualExpr{Region: "Cells"})
	prog.Append("P5", ImageExpr{Of: Var{Name: "P4"}, Func: "h", Region: "Cells"})

	parts, err := prog.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p1, p2, p3, p4, p5 := parts["P1"], parts["P2"], parts["P3"], parts["P4"], parts["P5"]

	// Fig. 1c constraints must hold.
	if !p1.IsComplete() || !p4.IsComplete() {
		t.Error("iteration-space partitions must be complete")
	}
	cellOf := particles.PointerMap("cell")
	for i := 0; i < ctx.Colors; i++ {
		img := geometry.Image(p1.Sub(i), cellOf, cells.Space())
		if !img.SubsetOf(p2.Sub(i)) {
			t.Errorf("image(P1,cell)[%d] ⊄ P2[%d]", i, i)
		}
	}
	h := geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: cells.Size()}
	for i := 0; i < ctx.Colors; i++ {
		if !geometry.Image(p2.Sub(i), h, cells.Space()).SubsetOf(p3.Sub(i)) {
			t.Errorf("image(P2,h)[%d] ⊄ P3[%d]", i, i)
		}
		if !geometry.Image(p4.Sub(i), h, cells.Space()).SubsetOf(p5.Sub(i)) {
			t.Errorf("image(P4,h)[%d] ⊄ P5[%d]", i, i)
		}
	}
}

func TestEvalProgramB(t *testing.T) {
	// Program B of Fig. 2b: derive P1 by preimage.
	ctx, particles, cells := figure1Context(t, 40, 10, 4)
	var prog Program
	prog.Append("P2", EqualExpr{Region: "Cells"})
	prog.Append("P4", Var{Name: "P2"})
	prog.Append("P1", PreimageExpr{Region: "Particles", Func: "Particles[·].cell", Of: Var{Name: "P2"}})
	prog.Append("P3", ImageExpr{Of: Var{Name: "P2"}, Func: "h", Region: "Cells"})
	prog.Append("P5", Var{Name: "P3"})

	parts, err := prog.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	p1 := parts["P1"]
	// P1 is a preimage of a disjoint complete partition under a total
	// function: must be disjoint and complete (lemmas L7, L12).
	if !p1.IsDisjoint() || !p1.IsComplete() {
		t.Error("P1 must be a disjoint complete partition of Particles")
	}
	if p1.Parent() != particles {
		t.Error("P1 should partition Particles")
	}
	if parts["P4"].Parent() != cells {
		t.Error("P4 should partition Cells")
	}
	// Aliased statements share subregions.
	if !parts["P4"].SamePartition(parts["P2"]) || !parts["P5"].SamePartition(parts["P3"]) {
		t.Error("aliases must denote the same partition")
	}
}

func TestEvalErrors(t *testing.T) {
	ctx := NewContext(2)
	r := region.New("R", 4)
	ctx.AddRegion(r)

	cases := []Expr{
		Var{Name: "missing"},
		EqualExpr{Region: "nope"},
		ImageExpr{Of: EqualExpr{Region: "R"}, Func: "nope", Region: "R"},
		ImageExpr{Of: EqualExpr{Region: "R"}, Func: "id", Region: "nope"},
		PreimageExpr{Region: "nope", Func: "id", Of: EqualExpr{Region: "R"}},
		PreimageExpr{Region: "R", Func: "nope", Of: EqualExpr{Region: "R"}},
		ImageMultiExpr{Of: EqualExpr{Region: "R"}, Func: "nope", Region: "R"},
		PreimageMultiExpr{Region: "R", Func: "nope", Of: EqualExpr{Region: "R"}},
		BinExpr{Op: OpUnion, L: Var{Name: "missing"}, R: EqualExpr{Region: "R"}},
		BinExpr{Op: OpUnion, L: EqualExpr{Region: "R"}, R: Var{Name: "missing"}},
	}
	for _, e := range cases {
		if _, err := ctx.Eval(e); err == nil {
			t.Errorf("Eval(%s) should fail", e)
		}
	}
}

func TestEvalIdentityAndLiftedMulti(t *testing.T) {
	ctx := NewContext(2)
	r := region.New("R", 6)
	s := region.New("S", 6)
	ctx.AddRegion(r).AddRegion(s)
	ctx.AddMap("f", geometry.AffineMap{Name: "f", Stride: 1, Offset: 0})

	// "id" is built in.
	p, err := ctx.Eval(ImageExpr{Of: EqualExpr{Region: "R"}, Func: "id", Region: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Sub(0).String(); got != "{0..2}" {
		t.Errorf("identity image = %s", got)
	}

	// A single-valued map used in IMAGE is lifted automatically.
	q, err := ctx.Eval(ImageMultiExpr{Of: EqualExpr{Region: "R"}, Func: "f", Region: "S"})
	if err != nil {
		t.Fatal(err)
	}
	if !q.SamePartition(p.Rename(q.Name())) {
		t.Error("lifted IMAGE should agree with image for single-valued maps")
	}
}

func TestEvalBinaryOps(t *testing.T) {
	ctx := NewContext(2)
	r := region.New("R", 8)
	ctx.AddRegion(r)
	ctx.AddMap("shift", geometry.AffineMap{Name: "shift", Stride: 1, Offset: 2, Modulo: 8})

	eq := EqualExpr{Region: "R"}
	sh := ImageExpr{Of: eq, Func: "shift", Region: "R"}
	union, err := ctx.Eval(BinExpr{Op: OpUnion, L: eq, R: sh})
	if err != nil {
		t.Fatal(err)
	}
	inter, err := ctx.Eval(BinExpr{Op: OpIntersect, L: eq, R: sh})
	if err != nil {
		t.Fatal(err)
	}
	minus, err := ctx.Eval(BinExpr{Op: OpMinus, L: eq, R: sh})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if !inter.Sub(i).SubsetOf(union.Sub(i)) || !minus.Sub(i).SubsetOf(union.Sub(i)) {
			t.Error("intersection and difference must be inside the union")
		}
		if !minus.Sub(i).Disjoint(inter.Sub(i)) {
			t.Error("difference and intersection must be disjoint")
		}
	}
}

func TestProgramCSE(t *testing.T) {
	img := ImageExpr{Of: Var{Name: "P1"}, Func: "h", Region: "Cells"}
	var prog Program
	prog.Append("P1", EqualExpr{Region: "Cells"})
	prog.Append("P3", img)
	prog.Append("P5", img) // duplicate of P3
	prog.Append("P6", ImageExpr{Of: Var{Name: "P5"}, Func: "h", Region: "Cells"})

	out := prog.CSE()
	if got, ok := out.Lookup("P5"); !ok || got.String() != "P3" {
		t.Errorf("P5 should alias P3, got %v", got)
	}
	// P6 should now reference P3, not P5.
	if got, _ := out.Lookup("P6"); got.String() != "image(P3, h, Cells)" {
		t.Errorf("P6 = %s", got)
	}
	if err := out.TopoCheck(nil); err != nil {
		t.Errorf("TopoCheck after CSE: %v", err)
	}
}

func TestProgramCSEChainedAliases(t *testing.T) {
	var prog Program
	prog.Append("A", EqualExpr{Region: "R"})
	prog.Append("B", Var{Name: "A"})
	prog.Append("C", Var{Name: "B"})
	prog.Append("D", ImageExpr{Of: Var{Name: "C"}, Func: "f", Region: "R"})
	out := prog.CSE()
	if got, _ := out.Lookup("C"); got.String() != "A" {
		t.Errorf("C should canonicalize to A, got %s", got)
	}
	if got, _ := out.Lookup("D"); got.String() != "image(A, f, R)" {
		t.Errorf("D = %s", got)
	}
}

func TestProgramTopoCheck(t *testing.T) {
	var prog Program
	prog.Append("P2", ImageExpr{Of: Var{Name: "P1"}, Func: "f", Region: "R"})
	if err := prog.TopoCheck(nil); err == nil {
		t.Error("use-before-def should fail TopoCheck")
	}
	if err := prog.TopoCheck(map[string]bool{"P1": true}); err != nil {
		t.Errorf("external symbol should satisfy TopoCheck: %v", err)
	}
}

func TestNumPartitionOps(t *testing.T) {
	var prog Program
	prog.Append("P1", EqualExpr{Region: "R"})                                 // 1 op
	prog.Append("P2", Var{Name: "P1"})                                        // alias: free
	prog.Append("P3", ImageExpr{Of: Var{Name: "P1"}, Func: "f", Region: "R"}) // 2 nodes
	if got := prog.NumPartitionOps(); got != 3 {
		t.Errorf("NumPartitionOps = %d, want 3", got)
	}
}

func TestProgramString(t *testing.T) {
	var prog Program
	prog.Append("P1", EqualExpr{Region: "R"})
	prog.Append("P2", Var{Name: "P1"})
	want := "P1 = equal(R)\nP2 = P1"
	if got := prog.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestEvalExternalBinding(t *testing.T) {
	ctx := NewContext(2)
	r := region.New("R", 6)
	ctx.AddRegion(r)
	ext := region.Equal("mine", r, 2)
	ctx.Bind("pExt", ext)

	var prog Program
	prog.Append("P", Var{Name: "pExt"})
	parts, err := prog.Eval(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !parts["P"].SamePartition(ext) {
		t.Error("external binding should flow into the program")
	}
	if got, ok := ctx.Binding("P"); !ok || got != parts["P"] {
		t.Error("program results should be bound in the context")
	}
	if _, ok := ctx.Binding("nope"); ok {
		t.Error("unknown binding lookup should fail")
	}
	if _, ok := ctx.Region("R"); !ok {
		t.Error("region lookup should succeed")
	}
	if _, ok := ctx.Region("nope"); ok {
		t.Error("unknown region lookup should fail")
	}
}
