// Package dpl implements the Dependent Partitioning Language: the
// partition-constructing expressions of Fig. 5 (equal, image, preimage,
// the generalized IMAGE/PREIMAGE of §4, and the subregion-wise set
// operators), programs made of P = E statements, an evaluator that
// computes concrete partitions, and program-level cleanups (common
// subexpression elimination, simplification).
//
// The same expression type doubles as the expression sublanguage of
// partitioning constraints (package constraint), exactly as in the paper
// where DPL operators appear syntactically inside constraints.
package dpl

import (
	"fmt"
	"strings"
)

// Expr is a DPL partition expression. Implementations are immutable;
// building a new expression never mutates subexpressions.
type Expr interface {
	// String renders the expression in the paper's concrete syntax.
	String() string
	// isExpr restricts implementations to this package.
	isExpr()
}

// Var references a partition symbol (P1, pCells, ...).
type Var struct {
	Name string
}

// EqualExpr is equal(R): a fresh complete, disjoint partition of R with
// approximately equal subregions. Color counts are elided in constraints
// (they do not affect solving) and supplied at evaluation time.
type EqualExpr struct {
	Region string
}

// ImageExpr is image(Of, Func, Region) for a single-valued index map.
type ImageExpr struct {
	Of     Expr
	Func   string
	Region string
}

// PreimageExpr is preimage(Region, Func, Of) for a single-valued map.
type PreimageExpr struct {
	Region string
	Func   string
	Of     Expr
}

// ImageMultiExpr is IMAGE(Of, Func, Region) for a multi-valued map (§4).
type ImageMultiExpr struct {
	Of     Expr
	Func   string
	Region string
}

// PreimageMultiExpr is PREIMAGE(Region, Func, Of) for a multi-valued map.
type PreimageMultiExpr struct {
	Region string
	Func   string
	Of     Expr
}

// BinOp identifies a subregion-wise set operator.
type BinOp int

// Subregion-wise set operators.
const (
	OpUnion BinOp = iota
	OpIntersect
	OpMinus
)

func (op BinOp) String() string {
	switch op {
	case OpUnion:
		return "∪"
	case OpIntersect:
		return "∩"
	case OpMinus:
		return "−"
	default:
		return fmt.Sprintf("BinOp(%d)", int(op))
	}
}

// BinExpr is the subregion-wise union, intersection, or difference of two
// partition expressions.
type BinExpr struct {
	Op   BinOp
	L, R Expr
}

func (Var) isExpr()               {}
func (EqualExpr) isExpr()         {}
func (ImageExpr) isExpr()         {}
func (PreimageExpr) isExpr()      {}
func (ImageMultiExpr) isExpr()    {}
func (PreimageMultiExpr) isExpr() {}
func (BinExpr) isExpr()           {}

// The String methods return the interned canonical rendering: computed
// once per distinct expression, O(1) afterwards (see intern.go).
func (e Var) String() string               { return e.Name }
func (e EqualExpr) String() string         { return info(e).key }
func (e ImageExpr) String() string         { return info(e).key }
func (e PreimageExpr) String() string      { return info(e).key }
func (e ImageMultiExpr) String() string    { return info(e).key }
func (e PreimageMultiExpr) String() string { return info(e).key }
func (e BinExpr) String() string           { return info(e).key }

// Equal reports structural equality of two expressions. Every Expr
// implementation is a comparable value struct, so structural equality is
// exactly Go's interface equality — one recursive comparison with early
// mismatch exit, no allocation.
func Equal(a, b Expr) bool {
	if a == nil || b == nil {
		return false
	}
	return a == b
}

// FreeVars returns the partition symbols occurring in e, sorted and
// deduplicated. The slice is interned and shared: callers must not
// mutate it.
func FreeVars(e Expr) []string { return info(e).fvs }

// Closed reports whether e contains no partition symbols (the solver's
// notion of a closed expression, Algorithm 2).
func Closed(e Expr) bool { return len(info(e).fvs) == 0 }

// Subst replaces every occurrence of the symbol name in e with repl.
// Subtrees that do not mention the symbol (an interned-metadata check)
// are returned unchanged without traversal.
func Subst(e Expr, name string, repl Expr) Expr {
	if !Mentions(e, name) {
		return e
	}
	switch x := e.(type) {
	case Var:
		if x.Name == name {
			return repl
		}
		return x
	case ImageExpr:
		return ImageExpr{Of: Subst(x.Of, name, repl), Func: x.Func, Region: x.Region}
	case PreimageExpr:
		return PreimageExpr{Region: x.Region, Func: x.Func, Of: Subst(x.Of, name, repl)}
	case ImageMultiExpr:
		return ImageMultiExpr{Of: Subst(x.Of, name, repl), Func: x.Func, Region: x.Region}
	case PreimageMultiExpr:
		return PreimageMultiExpr{Region: x.Region, Func: x.Func, Of: Subst(x.Of, name, repl)}
	case BinExpr:
		return BinExpr{Op: x.Op, L: Subst(x.L, name, repl), R: Subst(x.R, name, repl)}
	default:
		return e
	}
}

// RenameVars applies a simultaneous symbol-to-symbol renaming. It
// returns e unchanged (no rebuild, no allocation) when e mentions none
// of the renamed symbols. Equivalent to applying Subst once per entry
// when no renamed-to symbol is itself renamed.
func RenameVars(e Expr, renames map[string]string) Expr {
	hit := false
	for _, v := range FreeVars(e) {
		if _, ok := renames[v]; ok {
			hit = true
			break
		}
	}
	if !hit {
		return e
	}
	switch x := e.(type) {
	case Var:
		if to, ok := renames[x.Name]; ok {
			return Var{Name: to}
		}
		return x
	case ImageExpr:
		return ImageExpr{Of: RenameVars(x.Of, renames), Func: x.Func, Region: x.Region}
	case PreimageExpr:
		return PreimageExpr{Region: x.Region, Func: x.Func, Of: RenameVars(x.Of, renames)}
	case ImageMultiExpr:
		return ImageMultiExpr{Of: RenameVars(x.Of, renames), Func: x.Func, Region: x.Region}
	case PreimageMultiExpr:
		return PreimageMultiExpr{Region: x.Region, Func: x.Func, Of: RenameVars(x.Of, renames)}
	case BinExpr:
		return BinExpr{Op: x.Op, L: RenameVars(x.L, renames), R: RenameVars(x.R, renames)}
	default:
		return e
	}
}

// Size returns the number of AST nodes in e; used by solver heuristics to
// prefer smaller solutions. O(1) via the interned metadata.
func Size(e Expr) int { return info(e).size }

// RegionOf returns the region an expression partitions, given the regions
// of free partition symbols (from PART predicates). ok is false when the
// region cannot be determined (unknown symbol, or a set operation over
// partitions of different regions).
func RegionOf(e Expr, partOf map[string]string) (string, bool) {
	switch x := e.(type) {
	case Var:
		r, ok := partOf[x.Name]
		return r, ok
	case EqualExpr:
		return x.Region, true
	case ImageExpr:
		return x.Region, true
	case PreimageExpr:
		return x.Region, true
	case ImageMultiExpr:
		return x.Region, true
	case PreimageMultiExpr:
		return x.Region, true
	case BinExpr:
		lr, lok := RegionOf(x.L, partOf)
		rr, rok := RegionOf(x.R, partOf)
		if lok && rok && lr == rr {
			return lr, true
		}
		// The difference A − B partitions A's region even if B's region is
		// unknown.
		if x.Op == OpMinus && lok {
			return lr, true
		}
		return "", false
	default:
		return "", false
	}
}

// Simplify applies semantics-preserving rewrites:
//
//	image(E, id, R) = E    when E partitions R (used by Algorithm 1)
//	E ∪ E = E ∩ E = E
//	E − E = E ∩ (E' − E') ... not introduced; only identical-operand cases
//
// partOf gives the regions of free symbols as in RegionOf.
func Simplify(e Expr, partOf map[string]string) Expr {
	switch x := e.(type) {
	case ImageExpr:
		of := Simplify(x.Of, partOf)
		if x.Func == "id" {
			if r, ok := RegionOf(of, partOf); ok && r == x.Region {
				return of
			}
		}
		return ImageExpr{Of: of, Func: x.Func, Region: x.Region}
	case PreimageExpr:
		return PreimageExpr{Region: x.Region, Func: x.Func, Of: Simplify(x.Of, partOf)}
	case ImageMultiExpr:
		return ImageMultiExpr{Of: Simplify(x.Of, partOf), Func: x.Func, Region: x.Region}
	case PreimageMultiExpr:
		return PreimageMultiExpr{Region: x.Region, Func: x.Func, Of: Simplify(x.Of, partOf)}
	case BinExpr:
		l := Simplify(x.L, partOf)
		r := Simplify(x.R, partOf)
		if (x.Op == OpUnion || x.Op == OpIntersect) && Equal(l, r) {
			return l
		}
		return BinExpr{Op: x.Op, L: l, R: r}
	default:
		return e
	}
}

// UnionAll folds expressions into a right-balanced union; it returns nil
// for an empty list.
func UnionAll(es []Expr) Expr {
	if len(es) == 0 {
		return nil
	}
	out := es[0]
	for _, e := range es[1:] {
		if Equal(out, e) {
			continue
		}
		out = BinExpr{Op: OpUnion, L: out, R: e}
	}
	return out
}

// Key returns a canonical string usable as a map key for structural
// equality (the rendering is injective for this AST since region,
// function and symbol names cannot contain the syntax characters). The
// string is interned: one O(size) construction per distinct expression,
// O(1) afterwards.
func Key(e Expr) string { return info(e).key }

// JoinExprs renders a list of expressions for diagnostics.
func JoinExprs(es []Expr, sep string) string {
	parts := make([]string, len(es))
	for i, e := range es {
		parts[i] = e.String()
	}
	return strings.Join(parts, sep)
}
