package dpl

import (
	"testing"
)

func TestExprString(t *testing.T) {
	e := ImageExpr{Of: Var{Name: "P1"}, Func: "Particles[·].cell", Region: "Cells"}
	if got, want := e.String(), "image(P1, Particles[·].cell, Cells)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	p := PreimageExpr{Region: "Particles", Func: "f", Of: Var{Name: "P2"}}
	if got, want := p.String(), "preimage(Particles, f, P2)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	b := BinExpr{Op: OpMinus, L: Var{Name: "A"}, R: Var{Name: "B"}}
	if got, want := b.String(), "(A − B)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	im := ImageMultiExpr{Of: Var{Name: "P"}, Func: "Ranges[·]", Region: "Mat"}
	if got, want := im.String(), "IMAGE(P, Ranges[·], Mat)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	pm := PreimageMultiExpr{Region: "Y", Func: "Ranges[·]", Of: Var{Name: "P"}}
	if got, want := pm.String(), "PREIMAGE(Y, Ranges[·], P)"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if (EqualExpr{Region: "R"}).String() != "equal(R)" {
		t.Error("equal print wrong")
	}
	for _, op := range []BinOp{OpUnion, OpIntersect, OpMinus} {
		if op.String() == "" {
			t.Error("empty op string")
		}
	}
	if BinOp(9).String() != "BinOp(9)" {
		t.Error("unknown op string")
	}
}

func TestExprEqual(t *testing.T) {
	a := ImageExpr{Of: Var{Name: "P"}, Func: "f", Region: "R"}
	b := ImageExpr{Of: Var{Name: "P"}, Func: "f", Region: "R"}
	c := ImageExpr{Of: Var{Name: "Q"}, Func: "f", Region: "R"}
	if !Equal(a, b) {
		t.Error("identical expressions should be Equal")
	}
	if Equal(a, c) {
		t.Error("different expressions should not be Equal")
	}
	if Equal(a, Var{Name: "P"}) {
		t.Error("different kinds should not be Equal")
	}
	if !Equal(
		BinExpr{Op: OpUnion, L: a, R: c},
		BinExpr{Op: OpUnion, L: b, R: c},
	) {
		t.Error("structural equality should recurse")
	}
	if Equal(BinExpr{Op: OpUnion, L: a, R: c}, BinExpr{Op: OpIntersect, L: a, R: c}) {
		t.Error("different ops should not be Equal")
	}
	if !Equal(PreimageExpr{Region: "R", Func: "f", Of: a}, PreimageExpr{Region: "R", Func: "f", Of: b}) {
		t.Error("preimage equality should recurse")
	}
	if !Equal(EqualExpr{Region: "R"}, EqualExpr{Region: "R"}) {
		t.Error("equal exprs should be Equal")
	}
}

func TestFreeVarsAndClosed(t *testing.T) {
	e := BinExpr{
		Op: OpUnion,
		L:  ImageExpr{Of: Var{Name: "P2"}, Func: "f", Region: "R"},
		R: BinExpr{
			Op: OpMinus,
			L:  Var{Name: "P1"},
			R:  PreimageExpr{Region: "S", Func: "g", Of: Var{Name: "P2"}},
		},
	}
	got := FreeVars(e)
	if len(got) != 2 || got[0] != "P1" || got[1] != "P2" {
		t.Errorf("FreeVars = %v", got)
	}
	if Closed(e) {
		t.Error("expression with vars should not be closed")
	}
	if !Closed(EqualExpr{Region: "R"}) {
		t.Error("equal(R) is closed")
	}
	if !Closed(ImageExpr{Of: EqualExpr{Region: "R"}, Func: "f", Region: "S"}) {
		t.Error("image of closed is closed")
	}
}

func TestSubst(t *testing.T) {
	e := BinExpr{
		Op: OpIntersect,
		L:  Var{Name: "P"},
		R:  ImageExpr{Of: Var{Name: "P"}, Func: "f", Region: "R"},
	}
	got := Subst(e, "P", EqualExpr{Region: "R"})
	want := "(equal(R) ∩ image(equal(R), f, R))"
	if got.String() != want {
		t.Errorf("Subst = %s, want %s", got, want)
	}
	// Non-matching name is identity.
	if !Equal(Subst(e, "Q", EqualExpr{Region: "R"}), e) {
		t.Error("Subst of absent symbol should not change expression")
	}
	// Multi-valued operators substitute too.
	me := ImageMultiExpr{Of: Var{Name: "P"}, Func: "F", Region: "R"}
	if Subst(me, "P", Var{Name: "Q"}).String() != "IMAGE(Q, F, R)" {
		t.Error("Subst through IMAGE failed")
	}
	pe := PreimageMultiExpr{Region: "R", Func: "F", Of: Var{Name: "P"}}
	if Subst(pe, "P", Var{Name: "Q"}).String() != "PREIMAGE(R, F, Q)" {
		t.Error("Subst through PREIMAGE failed")
	}
}

func TestSize(t *testing.T) {
	if Size(Var{Name: "P"}) != 1 {
		t.Error("Size(Var) != 1")
	}
	e := BinExpr{
		Op: OpUnion,
		L:  ImageExpr{Of: Var{Name: "P"}, Func: "f", Region: "R"},
		R:  PreimageExpr{Region: "S", Func: "g", Of: EqualExpr{Region: "S"}},
	}
	if got := Size(e); got != 5 {
		t.Errorf("Size = %d, want 5", got)
	}
}

func TestRegionOf(t *testing.T) {
	partOf := map[string]string{"P": "R", "Q": "S"}
	cases := []struct {
		e    Expr
		want string
		ok   bool
	}{
		{Var{Name: "P"}, "R", true},
		{Var{Name: "X"}, "", false},
		{EqualExpr{Region: "R"}, "R", true},
		{ImageExpr{Of: Var{Name: "P"}, Func: "f", Region: "S"}, "S", true},
		{PreimageExpr{Region: "T", Func: "f", Of: Var{Name: "P"}}, "T", true},
		{ImageMultiExpr{Of: Var{Name: "P"}, Func: "F", Region: "M"}, "M", true},
		{PreimageMultiExpr{Region: "Y", Func: "F", Of: Var{Name: "P"}}, "Y", true},
		{BinExpr{Op: OpUnion, L: Var{Name: "P"}, R: Var{Name: "P"}}, "R", true},
		{BinExpr{Op: OpUnion, L: Var{Name: "P"}, R: Var{Name: "Q"}}, "", false},
		{BinExpr{Op: OpMinus, L: Var{Name: "P"}, R: Var{Name: "X"}}, "R", true},
	}
	for _, tc := range cases {
		got, ok := RegionOf(tc.e, partOf)
		if got != tc.want || ok != tc.ok {
			t.Errorf("RegionOf(%s) = %q, %v; want %q, %v", tc.e, got, ok, tc.want, tc.ok)
		}
	}
}

func TestSimplify(t *testing.T) {
	partOf := map[string]string{"P": "R"}
	// image(P, id, R) simplifies to P when P partitions R.
	e := ImageExpr{Of: Var{Name: "P"}, Func: "id", Region: "R"}
	if got := Simplify(e, partOf); got.String() != "P" {
		t.Errorf("Simplify = %s, want P", got)
	}
	// image(P, id, S) does not simplify (different region).
	e2 := ImageExpr{Of: Var{Name: "P"}, Func: "id", Region: "S"}
	if got := Simplify(e2, partOf); got.String() != e2.String() {
		t.Errorf("Simplify = %s, want unchanged", got)
	}
	// P ∪ P simplifies to P.
	u := BinExpr{Op: OpUnion, L: Var{Name: "P"}, R: Var{Name: "P"}}
	if got := Simplify(u, partOf); got.String() != "P" {
		t.Errorf("Simplify union = %s", got)
	}
	// Nested simplification.
	n := BinExpr{Op: OpIntersect, L: e, R: Var{Name: "P"}}
	if got := Simplify(n, partOf); got.String() != "P" {
		t.Errorf("Simplify nested = %s", got)
	}
	// Minus of identical operands is preserved (empty partition is a
	// valid value; we do not constant-fold it).
	m := BinExpr{Op: OpMinus, L: Var{Name: "P"}, R: Var{Name: "P"}}
	if got := Simplify(m, partOf); got.String() != m.String() {
		t.Errorf("Simplify minus = %s", got)
	}
}

func TestUnionAll(t *testing.T) {
	if UnionAll(nil) != nil {
		t.Error("UnionAll(nil) should be nil")
	}
	one := []Expr{Var{Name: "A"}}
	if UnionAll(one).String() != "A" {
		t.Error("singleton union should be the element")
	}
	three := []Expr{Var{Name: "A"}, Var{Name: "B"}, Var{Name: "A"}, Var{Name: "C"}}
	got := UnionAll(three).String()
	// Consecutive duplicates collapse only when equal to the accumulated
	// expression; A B A C keeps both As apart... the second A is not equal
	// to (A ∪ B), so it is kept.
	want := "(((A ∪ B) ∪ A) ∪ C)"
	if got != want {
		t.Errorf("UnionAll = %q, want %q", got, want)
	}
	dup := []Expr{Var{Name: "A"}, Var{Name: "A"}}
	if UnionAll(dup).String() != "A" {
		t.Error("immediate duplicate should collapse")
	}
}
