package dpl

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Expression interning (hash-consing).
//
// Every Expr implementation is an immutable value struct, and the interner
// maps each distinct expression to an exprInfo carrying everything the
// solver repeatedly recomputes — the canonical string (Key/String), the
// sorted free-variable list, the node count, and a stable numeric id used
// to fingerprint constraint systems. Each is computed once per distinct
// expression instead of once per query, which turns Key, FreeVars, Size,
// and Closed into O(1) lookups on the solver's hot paths (Algorithm 2
// backtracking, the Algorithm 3 solvability checks).
//
// The table is sharded per constructor: instead of one map keyed by the
// Expr interface value (whose lookups must hash the full nested struct
// through reflection-driven interface hashing), each constructor has its
// own map keyed by the fields that determine structural identity, with
// child expressions represented by their interned ids. A Var interns on
// its name, an ImageExpr on (Of.id, Func, Region), a BinExpr on
// (Op, L.id, R.id), and so on. Because equal children share an id by
// induction, these flat keys are equivalent to structural equality on the
// full tree — but a lookup hashes a couple of words and a short string
// instead of walking the whole expression.
//
// Table instances and lifetime: the interner is an instance type (Table)
// rather than package-global state, so a long-lived compile service can
// bound it. One process-wide Default table backs the package-level
// functions; all compiles in a process share it, which is the point —
// the thousandth compile of a near-identical program finds its
// expressions already interned. Each table's shard set is an atomically
// published immutable snapshot (the struct and the one modified shard map
// are copied on insert) and safe for concurrent use; the parallel
// unification checks intern from multiple goroutines.
//
// Epoch-based reclamation bounds a table. Interned ids (expression ids
// and dense symbol ids) are only meaningful relative to one table
// generation: after a reclamation the table restarts empty and reassigns
// ids, so two expressions from different generations may share an id. A
// compile therefore pins the generation for its whole duration by holding
// an Epoch (Enter/Leave); reclamation requested by SetMaxEntries overflow
// is deferred until the last active epoch leaves, at which point the
// shard maps and the symbol table are swapped for empty ones and the
// generation counter advances. Content hashes (Hash128) depend only on
// the canonical rendering, so caches keyed by them — the solver's
// cross-compile memo cache in particular — survive reclamation unharmed.
// Code that interns outside any epoch is only safe against an unbounded
// table (the default); bounded tables are a compile-service concern, and
// the service wraps every compile in an epoch.

// Table is one expression + symbol intern table instance: the sharded
// expression maps, the dense symbol-id table, per-instance stats
// counters, and the epoch/reclamation machinery. The zero value is not
// usable; call NewTable.
type Table struct {
	symMu    sync.Mutex // serializes symbol writers only
	symIDs   atomic.Pointer[map[string]int32]
	symNames atomic.Pointer[[]string]

	internMu sync.Mutex // serializes expression writers only
	shards   atomic.Pointer[internShards]
	seq      uint64
	entries  int // total expression entries, maintained under internMu

	// statsOn gates the per-shard hit/miss counters. Off by default so
	// the hot path pays only one atomic bool load. statsGen advances on
	// every EnableStats(true) so Stats can detect a concurrent reset and
	// return a snapshot-consistent view.
	statsOn  atomic.Bool
	statsGen atomic.Uint64
	hits     [numShards]atomic.Uint64
	misses   [numShards]atomic.Uint64

	// Epoch state, all under epochMu. maxEntries and reclaims are
	// atomics so the insert path and stats readers need no lock.
	epochMu    sync.Mutex
	active     int64 // epochs currently held
	needsReset bool  // reclamation requested, waiting for active == 0
	generation uint64
	maxEntries atomic.Int64
	reclaims   atomic.Uint64
}

// NewTable returns an empty, unbounded intern table.
func NewTable() *Table {
	t := &Table{}
	t.shards.Store(freshShards())
	emptySyms := map[string]int32{}
	t.symIDs.Store(&emptySyms)
	noNames := []string{}
	t.symNames.Store(&noNames)
	return t
}

func freshShards() *internShards {
	return &internShards{
		vars:           map[string]*exprInfo{},
		equals:         map[string]*exprInfo{},
		images:         map[opKey]*exprInfo{},
		preimages:      map[opKey]*exprInfo{},
		imagesMulti:    map[opKey]*exprInfo{},
		preimagesMulti: map[opKey]*exprInfo{},
		bins:           map[binKey]*exprInfo{},
	}
}

// defaultTable backs the package-level functions. Every compile in the
// process shares it unless a caller threads its own Table explicitly.
var defaultTable = NewTable()

// Default returns the shared process-wide intern table.
func Default() *Table { return defaultTable }

// Epoch pins one table generation: while any epoch is held, the table
// will not reclaim, so every id observed inside the epoch stays unique
// and coherent. Compiles hold exactly one epoch for their duration.
type Epoch struct {
	t    *Table
	gen  uint64
	done atomic.Bool
}

// Enter opens an epoch on the table. The caller must Leave it.
func (t *Table) Enter() *Epoch {
	t.epochMu.Lock()
	t.active++
	gen := t.generation
	t.epochMu.Unlock()
	return &Epoch{t: t, gen: gen}
}

// Leave closes the epoch. When the last active epoch leaves and a
// reclamation is pending, the table resets there and then. Leave is
// idempotent.
func (e *Epoch) Leave() {
	if !e.done.CompareAndSwap(false, true) {
		return
	}
	t := e.t
	t.epochMu.Lock()
	t.active--
	if t.active == 0 && t.needsReset {
		t.resetLocked()
	}
	t.epochMu.Unlock()
}

// Generation reports the table generation the epoch pinned.
func (e *Epoch) Generation() uint64 { return e.gen }

// Generation returns the table's current generation (it advances by one
// per reclamation).
func (t *Table) Generation() uint64 {
	t.epochMu.Lock()
	defer t.epochMu.Unlock()
	return t.generation
}

// Reclaims reports how many times the table has been reclaimed.
func (t *Table) Reclaims() uint64 { return t.reclaims.Load() }

// Entries reports the current number of interned expressions.
func (t *Table) Entries() int {
	t.internMu.Lock()
	defer t.internMu.Unlock()
	return t.entries
}

// SetMaxEntries bounds the table: once the expression entry count
// exceeds n, a reclamation is scheduled and performed as soon as no
// epoch is active. A table already over the new bound is scheduled
// immediately. n <= 0 means unbounded (the default).
func (t *Table) SetMaxEntries(n int) {
	t.maxEntries.Store(int64(n))
	if n <= 0 {
		return
	}
	t.internMu.Lock()
	total := t.entries
	t.internMu.Unlock()
	t.noteGrowth(total)
}

// Reset discards every entry immediately, bumping the generation. It
// refuses (returning false) while any epoch is active, because live
// compiles hold ids of the current generation. Intended for benchmarks
// ("cold cache" batches) and tests.
func (t *Table) Reset() bool {
	t.epochMu.Lock()
	defer t.epochMu.Unlock()
	if t.active > 0 {
		return false
	}
	t.resetLocked()
	return true
}

// resetLocked swaps in empty tables. Caller holds epochMu with
// active == 0, so no epoch-holding reader can observe the swap midway;
// readers outside any epoch must tolerate id reassignment (only safe on
// unbounded tables, where this path never runs spontaneously).
func (t *Table) resetLocked() {
	t.internMu.Lock()
	t.shards.Store(freshShards())
	t.seq = 0
	t.entries = 0
	t.internMu.Unlock()
	t.symMu.Lock()
	emptySyms := map[string]int32{}
	t.symIDs.Store(&emptySyms)
	noNames := []string{}
	t.symNames.Store(&noNames)
	t.symMu.Unlock()
	t.generation++
	t.reclaims.Add(1)
	t.needsReset = false
}

// noteGrowth checks the bound after an insert raised the entry count to
// total, scheduling (or, with no active epochs, performing) a
// reclamation on overflow. Called without internMu held — resetLocked
// takes it, and lock order is epochMu before internMu everywhere.
func (t *Table) noteGrowth(total int) {
	max := t.maxEntries.Load()
	if max <= 0 || int64(total) <= max {
		return
	}
	t.epochMu.Lock()
	t.needsReset = true
	if t.active == 0 {
		t.resetLocked()
	}
	t.epochMu.Unlock()
}

// Symbol interning: every partition symbol name maps to a dense int32
// id (0, 1, 2, ... in first-sight order). The solver's backtracking
// search keys its per-node maps and sets by these ids instead of by
// name — int32 hashing beats string hashing on the hot paths, and the
// density admits bitsets (SymSet). Like expression ids, symbol ids are
// stable within a table generation but not across runs or reclamations;
// they never appear in output.

// SymID returns the dense interned id of a symbol name, assigning the
// next id on first sight. Safe for concurrent use (copy-on-write, like
// the expression table).
func (t *Table) SymID(name string) int32 {
	if id, ok := (*t.symIDs.Load())[name]; ok {
		return id
	}
	t.symMu.Lock()
	defer t.symMu.Unlock()
	old := *t.symIDs.Load()
	if id, ok := old[name]; ok {
		return id
	}
	id := int32(len(old))
	next := make(map[string]int32, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = id
	names := append(append([]string(nil), (*t.symNames.Load())...), name)
	t.symNames.Store(&names)
	t.symIDs.Store(&next)
	return id
}

// SymName returns the name behind an interned symbol id.
func (t *Table) SymName(id int32) string { return (*t.symNames.Load())[id] }

// SymID interns a symbol name in the default table.
func SymID(name string) int32 { return defaultTable.SymID(name) }

// SymName resolves a symbol id against the default table.
func SymName(id int32) string { return defaultTable.SymName(id) }

// SymSet is a bitset over dense symbol ids. The zero value is empty.
type SymSet []uint64

// Add inserts an id, growing the set as needed.
func (s *SymSet) Add(id int32) {
	w := int(id >> 6)
	for len(*s) <= w {
		*s = append(*s, 0)
	}
	(*s)[w] |= 1 << (uint(id) & 63)
}

// Has reports membership; ids beyond the set's capacity are absent.
func (s SymSet) Has(id int32) bool {
	w := int(id >> 6)
	return w < len(s) && s[w]&(1<<(uint(id)&63)) != 0
}

// exprInfo is the interned metadata of one distinct expression value.
type exprInfo struct {
	// id is an identifier unique within one table generation; equal
	// expressions share it. Assignment order depends on evaluation
	// order, so ids are stable within a generation but not across runs —
	// they feed in-memory fingerprints only, never persisted or printed
	// output.
	id uint64
	// key is the canonical rendering (identical to the paper syntax the
	// String methods produce).
	key string
	// fvs lists the free partition symbols, sorted and deduplicated.
	// Callers must not mutate it.
	fvs []string
	// fvIDs holds the interned ids of fvs, aligned entry by entry.
	// Callers must not mutate it.
	fvIDs []int32
	// size is the AST node count.
	size int
	// h is a 128-bit content hash of the canonical key, computed from
	// two independent FNV-1a passes. It feeds the constraint-system
	// fingerprints: unlike id, it is stable across runs and independent
	// of interning order.
	h [2]uint64
	// fvMask is a 64-bit Bloom filter over fvs (one SymBit per symbol).
	// A clear bit certainly excludes a symbol; a set bit means "maybe".
	fvMask uint64
}

// SymBit returns the Bloom-filter bit of a symbol name (FNV-1a of the
// name reduced to one of 64 bit positions). Mask tests using it are
// one-sided: mask&SymBit(name) == 0 proves name absent, a set bit only
// suggests presence and callers must confirm with Mentions.
func SymBit(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return 1 << (h & 63)
}

// FvMask returns the interned free-variable Bloom mask of e. Mask zero
// means e is ground (no free symbols) — that direction is exact.
func FvMask(e Expr) uint64 { return info(e).fvMask }

// FvData returns the mask and the free-variable list with a single
// intern-table lookup, for callers caching both per conjunct. The slice
// is interned and shared: callers must not mutate it.
func FvData(e Expr) (uint64, []string) {
	in := info(e)
	return in.fvMask, in.fvs
}

// FvInfo returns the mask, the free-variable list, and the aligned
// interned symbol ids with a single intern-table lookup. Both slices
// are interned and shared: callers must not mutate them.
func FvInfo(e Expr) (uint64, []string, []int32) {
	in := info(e)
	return in.fvMask, in.fvs, in.fvIDs
}

// FvIDs returns the interned symbol ids of e's free variables, aligned
// with FreeVars. The slice is interned: callers must not mutate it.
func FvIDs(e Expr) []int32 { return info(e).fvIDs }

// hash128 derives the two content hashes from the canonical key: FNV-1a
// with the standard parameters, and a second pass with a different
// offset basis and multiplier so collisions in one hash are independent
// of collisions in the other.
func hash128(key string) [2]uint64 {
	const (
		offset1 = 14695981039346656037
		prime1  = 1099511628211
		offset2 = 0x9e3779b97f4a7c15
		prime2  = 0x00000100000001b5
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	for i := 0; i < len(key); i++ {
		b := uint64(key[i])
		h1 = (h1 ^ b) * prime1
		h2 = (h2 ^ b) * prime2
	}
	return [2]uint64{h1, h2}
}

// Hash128 returns the interned 128-bit content hash of e, stable across
// processes and table generations (it depends only on the canonical
// rendering).
func Hash128(e Expr) [2]uint64 { return info(e).h }

// HashString128 hashes an arbitrary string with the same pair of hash
// functions, for callers combining expression hashes with other fields
// (e.g. predicate regions).
func HashString128(s string) [2]uint64 { return hash128(s) }

// Hasher128 is the streaming form of HashString128: feeding it bytes
// piecewise yields exactly HashString128 of their concatenation,
// without materializing the concatenation. The zero value is not ready
// for use; construct with NewHasher128.
type Hasher128 struct {
	h1, h2 uint64
}

// NewHasher128 returns a streaming hasher in its initial state.
func NewHasher128() Hasher128 {
	return Hasher128{h1: 14695981039346656037, h2: 0x9e3779b97f4a7c15}
}

// WriteString folds s into the running hashes.
func (h *Hasher128) WriteString(s string) {
	const (
		prime1 = 1099511628211
		prime2 = 0x00000100000001b5
	)
	h1, h2 := h.h1, h.h2
	for i := 0; i < len(s); i++ {
		b := uint64(s[i])
		h1 = (h1 ^ b) * prime1
		h2 = (h2 ^ b) * prime2
	}
	h.h1, h.h2 = h1, h2
}

// WriteByte folds one byte into the running hashes. The error is always
// nil; the signature matches io.ByteWriter.
func (h *Hasher128) WriteByte(b byte) error {
	const (
		prime1 = 1099511628211
		prime2 = 0x00000100000001b5
	)
	h.h1 = (h.h1 ^ uint64(b)) * prime1
	h.h2 = (h.h2 ^ uint64(b)) * prime2
	return nil
}

// Sum128 returns the hash of everything written so far.
func (h *Hasher128) Sum128() [2]uint64 { return [2]uint64{h.h1, h.h2} }

// opKey identifies an image/preimage expression by its interned child
// and the two string fields. All four unary-op shards share this shape.
type opKey struct {
	of  uint64 // interned id of the operand expression
	fn  string
	reg string
}

// binKey identifies a BinExpr by operator and interned operand ids.
type binKey struct {
	op   BinOp
	l, r uint64
}

// internShards is one immutable snapshot of the whole intern table,
// split per constructor. Readers load the snapshot with one atomic
// pointer load and index the shard matching the expression's type;
// writers copy the struct plus the single shard they modify.
type internShards struct {
	vars           map[string]*exprInfo
	equals         map[string]*exprInfo
	images         map[opKey]*exprInfo
	preimages      map[opKey]*exprInfo
	imagesMulti    map[opKey]*exprInfo
	preimagesMulti map[opKey]*exprInfo
	bins           map[binKey]*exprInfo
}

// Shard indices for the stats counters, ordered as in internShards.
const (
	shardVar = iota
	shardEqual
	shardImage
	shardPreimage
	shardImageMulti
	shardPreimageMulti
	shardBin
	numShards
)

var shardNames = [numShards]string{
	"var", "equal", "image", "preimage", "imageMulti", "preimageMulti", "bin",
}

// EnableStats toggles per-shard hit/miss counting on the intern fast
// path of this table. Enabling resets the counters, so a caller can
// bracket one workload and read a clean profile with Stats. The
// counters are per-table-instance: toggling one table never perturbs
// another (the old package-global toggle raced against concurrent
// compiles on unrelated tables).
func (t *Table) EnableStats(on bool) {
	if on {
		t.statsGen.Add(1)
		for i := range t.hits {
			t.hits[i].Store(0)
			t.misses[i].Store(0)
		}
	}
	t.statsOn.Store(on)
}

// EnableInternStats toggles stats on the default table.
func EnableInternStats(on bool) { defaultTable.EnableStats(on) }

// InternShardStat reports one shard's size and (if stats were enabled)
// fast-path hit/miss counts.
type InternShardStat struct {
	Shard   string `json:"shard"`
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// Stats returns a per-shard snapshot of the table, ordered by shard
// name. Entry counts are always live; hit/miss counts reflect lookups
// since the last EnableStats(true). The read is snapshot-consistent
// against concurrent EnableStats resets: if a reset lands mid-read the
// whole read retries, so a snapshot never mixes counters from two
// enable windows.
func (t *Table) Stats() []InternShardStat {
	for {
		gen := t.statsGen.Load()
		tab := t.shards.Load()
		sizes := [numShards]int{
			len(tab.vars), len(tab.equals), len(tab.images), len(tab.preimages),
			len(tab.imagesMulti), len(tab.preimagesMulti), len(tab.bins),
		}
		out := make([]InternShardStat, numShards)
		for i := range out {
			out[i] = InternShardStat{
				Shard:   shardNames[i],
				Entries: sizes[i],
				Hits:    t.hits[i].Load(),
				Misses:  t.misses[i].Load(),
			}
		}
		if t.statsGen.Load() == gen {
			return out
		}
	}
}

// InternStats returns the default table's per-shard snapshot.
func InternStats() []InternShardStat { return defaultTable.Stats() }

// info returns the interned metadata for e against the default table.
func info(e Expr) *exprInfo { return defaultTable.info(e) }

// ID returns e's interned identifier in this table.
func (t *Table) ID(e Expr) uint64 { return t.info(e).id }

// Key returns e's canonical rendering via this table.
func (t *Table) Key(e Expr) string { return t.info(e).key }

// info returns the interned metadata for e, computing and caching it on
// first sight. e must be non-nil.
//
// The fast path interns composite expressions bottom-up: looking up an
// ImageExpr first interns its operand (usually a hit) to obtain the id
// the shard key needs. That keeps every map lookup flat — no interface
// hashing of nested trees — at the cost of one recursion level per AST
// node on the first sight of each subtree.
func (t *Table) info(e Expr) *exprInfo {
	statsOn := t.statsOn.Load()
	switch x := e.(type) {
	case Var:
		if in, ok := shardLookup(t, t.shards.Load().vars, x.Name, shardVar, statsOn); ok {
			return in
		}
	case EqualExpr:
		if in, ok := shardLookup(t, t.shards.Load().equals, x.Region, shardEqual, statsOn); ok {
			return in
		}
	case ImageExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(t, t.shards.Load().images, k, shardImage, statsOn); ok {
			return in
		}
	case PreimageExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(t, t.shards.Load().preimages, k, shardPreimage, statsOn); ok {
			return in
		}
	case ImageMultiExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(t, t.shards.Load().imagesMulti, k, shardImageMulti, statsOn); ok {
			return in
		}
	case PreimageMultiExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(t, t.shards.Load().preimagesMulti, k, shardPreimageMulti, statsOn); ok {
			return in
		}
	case BinExpr:
		k := binKey{op: x.Op, l: t.info(x.L).id, r: t.info(x.R).id}
		if in, ok := shardLookup(t, t.shards.Load().bins, k, shardBin, statsOn); ok {
			return in
		}
	}
	return t.internSlow(e)
}

// shardLookup is the generic body behind Table.shardLookup; split out
// because methods cannot have type parameters.
func shardLookup[K comparable](t *Table, m map[K]*exprInfo, k K, shard int, statsOn bool) (*exprInfo, bool) {
	in, ok := m[k]
	if statsOn {
		if ok {
			t.hits[shard].Add(1)
		} else {
			t.misses[shard].Add(1)
		}
	}
	return in, ok
}

// copyInsert clones a shard map with one extra entry.
func copyInsert[K comparable](m map[K]*exprInfo, k K, in *exprInfo) map[K]*exprInfo {
	next := make(map[K]*exprInfo, len(m)+1)
	for kk, vv := range m {
		next[kk] = vv
	}
	next[k] = in
	return next
}

// internSlow inserts a newly seen expression. The metadata is computed
// before the lock is taken — computeInfo recursively interns every
// child, so the shard keys below are guaranteed hits and cannot
// re-enter the lock.
func (t *Table) internSlow(e Expr) *exprInfo {
	in := t.computeInfo(e)
	t.internMu.Lock()
	tab := *t.shards.Load() // shallow struct copy; shard maps still shared
	switch x := e.(type) {
	case Var:
		if prior, ok := tab.vars[x.Name]; ok {
			t.internMu.Unlock()
			return prior
		}
		tab.vars = copyInsert(tab.vars, x.Name, in)
	case EqualExpr:
		if prior, ok := tab.equals[x.Region]; ok {
			t.internMu.Unlock()
			return prior
		}
		tab.equals = copyInsert(tab.equals, x.Region, in)
	case ImageExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := tab.images[k]; ok {
			t.internMu.Unlock()
			return prior
		}
		tab.images = copyInsert(tab.images, k, in)
	case PreimageExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := tab.preimages[k]; ok {
			t.internMu.Unlock()
			return prior
		}
		tab.preimages = copyInsert(tab.preimages, k, in)
	case ImageMultiExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := tab.imagesMulti[k]; ok {
			t.internMu.Unlock()
			return prior
		}
		tab.imagesMulti = copyInsert(tab.imagesMulti, k, in)
	case PreimageMultiExpr:
		k := opKey{of: t.info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := tab.preimagesMulti[k]; ok {
			t.internMu.Unlock()
			return prior
		}
		tab.preimagesMulti = copyInsert(tab.preimagesMulti, k, in)
	case BinExpr:
		k := binKey{op: x.Op, l: t.info(x.L).id, r: t.info(x.R).id}
		if prior, ok := tab.bins[k]; ok {
			t.internMu.Unlock()
			return prior
		}
		tab.bins = copyInsert(tab.bins, k, in)
	default:
		// Unreachable (isExpr restricts implementations to this package);
		// hand back the computed metadata without caching it.
		t.seq++
		in.id = t.seq
		t.internMu.Unlock()
		return in
	}
	t.seq++
	in.id = t.seq
	t.shards.Store(&tab)
	t.entries++
	total := t.entries
	t.internMu.Unlock()
	t.noteGrowth(total)
	return in
}

// computeInfo builds the metadata for e from its (recursively interned)
// children. It runs outside the intern lock; duplicate concurrent
// computation is harmless because insertion is first-writer-wins.
func (t *Table) computeInfo(e Expr) *exprInfo {
	in := t.computeInfoNoHash(e)
	in.h = hash128(in.key)
	if len(in.fvs) > 0 {
		in.fvIDs = make([]int32, len(in.fvs))
	}
	for i, v := range in.fvs {
		in.fvMask |= SymBit(v)
		in.fvIDs[i] = t.SymID(v)
	}
	return in
}

func (t *Table) computeInfoNoHash(e Expr) *exprInfo {
	var sb strings.Builder
	switch x := e.(type) {
	case Var:
		return &exprInfo{key: x.Name, fvs: []string{x.Name}, size: 1}
	case EqualExpr:
		sb.WriteString("equal(")
		sb.WriteString(x.Region)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), size: 1}
	case ImageExpr:
		of := t.info(x.Of)
		sb.WriteString("image(")
		sb.WriteString(of.key)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(x.Region)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case PreimageExpr:
		of := t.info(x.Of)
		sb.WriteString("preimage(")
		sb.WriteString(x.Region)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(of.key)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case ImageMultiExpr:
		of := t.info(x.Of)
		sb.WriteString("IMAGE(")
		sb.WriteString(of.key)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(x.Region)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case PreimageMultiExpr:
		of := t.info(x.Of)
		sb.WriteString("PREIMAGE(")
		sb.WriteString(x.Region)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(of.key)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case BinExpr:
		l, r := t.info(x.L), t.info(x.R)
		sb.WriteString("(")
		sb.WriteString(l.key)
		sb.WriteString(" ")
		sb.WriteString(x.Op.String())
		sb.WriteString(" ")
		sb.WriteString(r.key)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: mergeVars(l.fvs, r.fvs), size: 1 + l.size + r.size}
	default:
		// Unreachable: isExpr restricts implementations to this package.
		return &exprInfo{key: "?", size: 1}
	}
}

// mergeVars merges two sorted deduplicated symbol lists.
func mergeVars(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ID returns the interned identifier of e: equal expressions share an id,
// distinct expressions never do. Ids are stable within a table
// generation (they feed in-memory fingerprints) but not across runs or
// reclamations.
func ID(e Expr) uint64 { return info(e).id }

// Mentions reports whether the symbol name occurs free in e, using the
// interned (sorted) free-variable list.
func Mentions(e Expr, name string) bool {
	fvs := info(e).fvs
	i := sort.SearchStrings(fvs, name)
	return i < len(fvs) && fvs[i] == name
}
