package dpl

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Expression interning (hash-consing).
//
// Every Expr implementation is an immutable value struct, and the interner
// maps each distinct expression to an exprInfo carrying everything the
// solver repeatedly recomputes — the canonical string (Key/String), the
// sorted free-variable list, the node count, and a stable numeric id used
// to fingerprint constraint systems. Each is computed once per distinct
// expression instead of once per query, which turns Key, FreeVars, Size,
// and Closed into O(1) lookups on the solver's hot paths (Algorithm 2
// backtracking, the Algorithm 3 solvability checks).
//
// The table is sharded per constructor: instead of one map keyed by the
// Expr interface value (whose lookups must hash the full nested struct
// through reflection-driven interface hashing), each constructor has its
// own map keyed by the fields that determine structural identity, with
// child expressions represented by their interned ids. A Var interns on
// its name, an ImageExpr on (Of.id, Func, Region), a BinExpr on
// (Op, L.id, R.id), and so on. Because equal children share an id by
// induction, these flat keys are equivalent to structural equality on the
// full tree — but a lookup hashes a couple of words and a short string
// instead of walking the whole expression.
//
// The shard set is an atomically published immutable snapshot (the struct
// and the one modified shard map are copied on insert) and safe for
// concurrent use; the parallel unification checks intern from multiple
// goroutines. Entries are never evicted: the set of distinct expressions
// a compile builds is small (hundreds), and a long-lived process
// compiling many programs grows the table only with genuinely new
// expressions.

// Symbol interning: every partition symbol name maps to a dense int32
// id (0, 1, 2, ... in first-sight order). The solver's backtracking
// search keys its per-node maps and sets by these ids instead of by
// name — int32 hashing beats string hashing on the hot paths, and the
// density admits bitsets (SymSet). Like expression ids, symbol ids are
// stable within a process but not across runs; they never appear in
// output.
var (
	symMu    sync.Mutex // serializes writers only
	symIDs   atomic.Pointer[map[string]int32]
	symNames atomic.Pointer[[]string]
)

// SymID returns the dense interned id of a symbol name, assigning the
// next id on first sight. Safe for concurrent use (copy-on-write, like
// the expression table).
func SymID(name string) int32 {
	if id, ok := (*symIDs.Load())[name]; ok {
		return id
	}
	symMu.Lock()
	defer symMu.Unlock()
	old := *symIDs.Load()
	if id, ok := old[name]; ok {
		return id
	}
	id := int32(len(old))
	next := make(map[string]int32, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = id
	names := append(append([]string(nil), (*symNames.Load())...), name)
	symNames.Store(&names)
	symIDs.Store(&next)
	return id
}

// SymName returns the name behind an interned symbol id.
func SymName(id int32) string { return (*symNames.Load())[id] }

// SymSet is a bitset over dense symbol ids. The zero value is empty.
type SymSet []uint64

// Add inserts an id, growing the set as needed.
func (s *SymSet) Add(id int32) {
	w := int(id >> 6)
	for len(*s) <= w {
		*s = append(*s, 0)
	}
	(*s)[w] |= 1 << (uint(id) & 63)
}

// Has reports membership; ids beyond the set's capacity are absent.
func (s SymSet) Has(id int32) bool {
	w := int(id >> 6)
	return w < len(s) && s[w]&(1<<(uint(id)&63)) != 0
}

// exprInfo is the interned metadata of one distinct expression value.
type exprInfo struct {
	// id is a process-unique identifier; equal expressions share it.
	// Assignment order depends on evaluation order, so ids are stable
	// within a process but not across runs — they feed in-memory
	// fingerprints only, never persisted or printed output.
	id uint64
	// key is the canonical rendering (identical to the paper syntax the
	// String methods produce).
	key string
	// fvs lists the free partition symbols, sorted and deduplicated.
	// Callers must not mutate it.
	fvs []string
	// fvIDs holds the interned ids of fvs, aligned entry by entry.
	// Callers must not mutate it.
	fvIDs []int32
	// size is the AST node count.
	size int
	// h is a 128-bit content hash of the canonical key, computed from
	// two independent FNV-1a passes. It feeds the constraint-system
	// fingerprints: unlike id, it is stable across runs and independent
	// of interning order.
	h [2]uint64
	// fvMask is a 64-bit Bloom filter over fvs (one SymBit per symbol).
	// A clear bit certainly excludes a symbol; a set bit means "maybe".
	fvMask uint64
}

// SymBit returns the Bloom-filter bit of a symbol name (FNV-1a of the
// name reduced to one of 64 bit positions). Mask tests using it are
// one-sided: mask&SymBit(name) == 0 proves name absent, a set bit only
// suggests presence and callers must confirm with Mentions.
func SymBit(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * 1099511628211
	}
	return 1 << (h & 63)
}

// FvMask returns the interned free-variable Bloom mask of e. Mask zero
// means e is ground (no free symbols) — that direction is exact.
func FvMask(e Expr) uint64 { return info(e).fvMask }

// FvData returns the mask and the free-variable list with a single
// intern-table lookup, for callers caching both per conjunct. The slice
// is interned and shared: callers must not mutate it.
func FvData(e Expr) (uint64, []string) {
	in := info(e)
	return in.fvMask, in.fvs
}

// FvInfo returns the mask, the free-variable list, and the aligned
// interned symbol ids with a single intern-table lookup. Both slices
// are interned and shared: callers must not mutate them.
func FvInfo(e Expr) (uint64, []string, []int32) {
	in := info(e)
	return in.fvMask, in.fvs, in.fvIDs
}

// FvIDs returns the interned symbol ids of e's free variables, aligned
// with FreeVars. The slice is interned: callers must not mutate it.
func FvIDs(e Expr) []int32 { return info(e).fvIDs }

// hash128 derives the two content hashes from the canonical key: FNV-1a
// with the standard parameters, and a second pass with a different
// offset basis and multiplier so collisions in one hash are independent
// of collisions in the other.
func hash128(key string) [2]uint64 {
	const (
		offset1 = 14695981039346656037
		prime1  = 1099511628211
		offset2 = 0x9e3779b97f4a7c15
		prime2  = 0x00000100000001b5
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	for i := 0; i < len(key); i++ {
		b := uint64(key[i])
		h1 = (h1 ^ b) * prime1
		h2 = (h2 ^ b) * prime2
	}
	return [2]uint64{h1, h2}
}

// Hash128 returns the interned 128-bit content hash of e, stable across
// processes (it depends only on the canonical rendering).
func Hash128(e Expr) [2]uint64 { return info(e).h }

// HashString128 hashes an arbitrary string with the same pair of hash
// functions, for callers combining expression hashes with other fields
// (e.g. predicate regions).
func HashString128(s string) [2]uint64 { return hash128(s) }

// opKey identifies an image/preimage expression by its interned child
// and the two string fields. All four unary-op shards share this shape.
type opKey struct {
	of  uint64 // interned id of the operand expression
	fn  string
	reg string
}

// binKey identifies a BinExpr by operator and interned operand ids.
type binKey struct {
	op   BinOp
	l, r uint64
}

// internShards is one immutable snapshot of the whole intern table,
// split per constructor. Readers load the snapshot with one atomic
// pointer load and index the shard matching the expression's type;
// writers copy the struct plus the single shard they modify.
type internShards struct {
	vars           map[string]*exprInfo
	equals         map[string]*exprInfo
	images         map[opKey]*exprInfo
	preimages      map[opKey]*exprInfo
	imagesMulti    map[opKey]*exprInfo
	preimagesMulti map[opKey]*exprInfo
	bins           map[binKey]*exprInfo
}

// Shard indices for the stats counters, ordered as in internShards.
const (
	shardVar = iota
	shardEqual
	shardImage
	shardPreimage
	shardImageMulti
	shardPreimageMulti
	shardBin
	numShards
)

var shardNames = [numShards]string{
	"var", "equal", "image", "preimage", "imageMulti", "preimageMulti", "bin",
}

// The interning table is read on every Key/FreeVars/Mentions/FvMask
// call — millions of times per compile — and written only when a
// genuinely new expression appears (hundreds of times). It is therefore
// published as an immutable snapshot through an atomic pointer: readers
// pay one atomic load and one flat-keyed map lookup, no lock. Writers
// copy the target shard under a mutex (copy-on-write); after the first
// few compile iterations the table is warm and writes stop entirely.
var (
	internMu  sync.Mutex // serializes writers only
	internTab atomic.Pointer[internShards]
	internSeq uint64

	// internStatsOn gates the per-shard hit/miss counters below. Off by
	// default so the hot path pays only one atomic bool load.
	internStatsOn atomic.Bool
	internHits    [numShards]atomic.Uint64
	internMisses  [numShards]atomic.Uint64
)

func init() {
	internTab.Store(&internShards{
		vars:           map[string]*exprInfo{},
		equals:         map[string]*exprInfo{},
		images:         map[opKey]*exprInfo{},
		preimages:      map[opKey]*exprInfo{},
		imagesMulti:    map[opKey]*exprInfo{},
		preimagesMulti: map[opKey]*exprInfo{},
		bins:           map[binKey]*exprInfo{},
	})
	emptySyms := map[string]int32{}
	symIDs.Store(&emptySyms)
	noNames := []string{}
	symNames.Store(&noNames)
}

// EnableInternStats toggles per-shard hit/miss counting on the intern
// fast path. Enabling resets the counters, so a caller can bracket one
// workload and read a clean profile with InternStats.
func EnableInternStats(on bool) {
	if on {
		for i := range internHits {
			internHits[i].Store(0)
			internMisses[i].Store(0)
		}
	}
	internStatsOn.Store(on)
}

// InternShardStat reports one shard's size and (if stats were enabled)
// fast-path hit/miss counts.
type InternShardStat struct {
	Shard   string `json:"shard"`
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// InternStats returns a per-shard snapshot of the intern table, ordered
// by shard name. Entry counts are always live; hit/miss counts reflect
// lookups since the last EnableInternStats(true).
func InternStats() []InternShardStat {
	t := internTab.Load()
	sizes := [numShards]int{
		len(t.vars), len(t.equals), len(t.images), len(t.preimages),
		len(t.imagesMulti), len(t.preimagesMulti), len(t.bins),
	}
	out := make([]InternShardStat, numShards)
	for i := range out {
		out[i] = InternShardStat{
			Shard:   shardNames[i],
			Entries: sizes[i],
			Hits:    internHits[i].Load(),
			Misses:  internMisses[i].Load(),
		}
	}
	return out
}

// shardLookup reads one shard, ticking the stats counters when enabled.
func shardLookup[K comparable](m map[K]*exprInfo, k K, shard int, statsOn bool) (*exprInfo, bool) {
	in, ok := m[k]
	if statsOn {
		if ok {
			internHits[shard].Add(1)
		} else {
			internMisses[shard].Add(1)
		}
	}
	return in, ok
}

// info returns the interned metadata for e, computing and caching it on
// first sight. e must be non-nil.
//
// The fast path interns composite expressions bottom-up: looking up an
// ImageExpr first interns its operand (usually a hit) to obtain the id
// the shard key needs. That keeps every map lookup flat — no interface
// hashing of nested trees — at the cost of one recursion level per AST
// node on the first sight of each subtree.
func info(e Expr) *exprInfo {
	statsOn := internStatsOn.Load()
	switch x := e.(type) {
	case Var:
		if in, ok := shardLookup(internTab.Load().vars, x.Name, shardVar, statsOn); ok {
			return in
		}
	case EqualExpr:
		if in, ok := shardLookup(internTab.Load().equals, x.Region, shardEqual, statsOn); ok {
			return in
		}
	case ImageExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(internTab.Load().images, k, shardImage, statsOn); ok {
			return in
		}
	case PreimageExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(internTab.Load().preimages, k, shardPreimage, statsOn); ok {
			return in
		}
	case ImageMultiExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(internTab.Load().imagesMulti, k, shardImageMulti, statsOn); ok {
			return in
		}
	case PreimageMultiExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if in, ok := shardLookup(internTab.Load().preimagesMulti, k, shardPreimageMulti, statsOn); ok {
			return in
		}
	case BinExpr:
		k := binKey{op: x.Op, l: info(x.L).id, r: info(x.R).id}
		if in, ok := shardLookup(internTab.Load().bins, k, shardBin, statsOn); ok {
			return in
		}
	}
	return internSlow(e)
}

// copyInsert clones a shard map with one extra entry.
func copyInsert[K comparable](m map[K]*exprInfo, k K, in *exprInfo) map[K]*exprInfo {
	next := make(map[K]*exprInfo, len(m)+1)
	for kk, vv := range m {
		next[kk] = vv
	}
	next[k] = in
	return next
}

// internSlow inserts a newly seen expression. The metadata is computed
// before the lock is taken — computeInfo recursively interns every
// child, so the shard keys below are guaranteed hits and cannot
// re-enter the lock.
func internSlow(e Expr) *exprInfo {
	in := computeInfo(e)
	internMu.Lock()
	defer internMu.Unlock()
	t := *internTab.Load() // shallow struct copy; shard maps still shared
	switch x := e.(type) {
	case Var:
		if prior, ok := t.vars[x.Name]; ok {
			return prior
		}
		t.vars = copyInsert(t.vars, x.Name, in)
	case EqualExpr:
		if prior, ok := t.equals[x.Region]; ok {
			return prior
		}
		t.equals = copyInsert(t.equals, x.Region, in)
	case ImageExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := t.images[k]; ok {
			return prior
		}
		t.images = copyInsert(t.images, k, in)
	case PreimageExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := t.preimages[k]; ok {
			return prior
		}
		t.preimages = copyInsert(t.preimages, k, in)
	case ImageMultiExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := t.imagesMulti[k]; ok {
			return prior
		}
		t.imagesMulti = copyInsert(t.imagesMulti, k, in)
	case PreimageMultiExpr:
		k := opKey{of: info(x.Of).id, fn: x.Func, reg: x.Region}
		if prior, ok := t.preimagesMulti[k]; ok {
			return prior
		}
		t.preimagesMulti = copyInsert(t.preimagesMulti, k, in)
	case BinExpr:
		k := binKey{op: x.Op, l: info(x.L).id, r: info(x.R).id}
		if prior, ok := t.bins[k]; ok {
			return prior
		}
		t.bins = copyInsert(t.bins, k, in)
	default:
		// Unreachable (isExpr restricts implementations to this package);
		// hand back the computed metadata without caching it.
		internSeq++
		in.id = internSeq
		return in
	}
	internSeq++
	in.id = internSeq
	internTab.Store(&t)
	return in
}

// computeInfo builds the metadata for e from its (recursively interned)
// children. It runs outside the intern lock; duplicate concurrent
// computation is harmless because insertion is first-writer-wins.
func computeInfo(e Expr) *exprInfo {
	in := computeInfoNoHash(e)
	in.h = hash128(in.key)
	if len(in.fvs) > 0 {
		in.fvIDs = make([]int32, len(in.fvs))
	}
	for i, v := range in.fvs {
		in.fvMask |= SymBit(v)
		in.fvIDs[i] = SymID(v)
	}
	return in
}

func computeInfoNoHash(e Expr) *exprInfo {
	var sb strings.Builder
	switch x := e.(type) {
	case Var:
		return &exprInfo{key: x.Name, fvs: []string{x.Name}, size: 1}
	case EqualExpr:
		sb.WriteString("equal(")
		sb.WriteString(x.Region)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), size: 1}
	case ImageExpr:
		of := info(x.Of)
		sb.WriteString("image(")
		sb.WriteString(of.key)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(x.Region)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case PreimageExpr:
		of := info(x.Of)
		sb.WriteString("preimage(")
		sb.WriteString(x.Region)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(of.key)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case ImageMultiExpr:
		of := info(x.Of)
		sb.WriteString("IMAGE(")
		sb.WriteString(of.key)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(x.Region)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case PreimageMultiExpr:
		of := info(x.Of)
		sb.WriteString("PREIMAGE(")
		sb.WriteString(x.Region)
		sb.WriteString(", ")
		sb.WriteString(x.Func)
		sb.WriteString(", ")
		sb.WriteString(of.key)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: of.fvs, size: 1 + of.size}
	case BinExpr:
		l, r := info(x.L), info(x.R)
		sb.WriteString("(")
		sb.WriteString(l.key)
		sb.WriteString(" ")
		sb.WriteString(x.Op.String())
		sb.WriteString(" ")
		sb.WriteString(r.key)
		sb.WriteString(")")
		return &exprInfo{key: sb.String(), fvs: mergeVars(l.fvs, r.fvs), size: 1 + l.size + r.size}
	default:
		// Unreachable: isExpr restricts implementations to this package.
		return &exprInfo{key: "?", size: 1}
	}
}

// mergeVars merges two sorted deduplicated symbol lists.
func mergeVars(a, b []string) []string {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// ID returns the interned identifier of e: equal expressions share an id,
// distinct expressions never do. Ids are stable within a process (they
// feed constraint-system fingerprints) but not across runs.
func ID(e Expr) uint64 { return info(e).id }

// Mentions reports whether the symbol name occurs free in e, using the
// interned (sorted) free-variable list.
func Mentions(e Expr, name string) bool {
	fvs := info(e).fvs
	i := sort.SearchStrings(fvs, name)
	return i < len(fvs) && fvs[i] == name
}
