package dpl

import (
	"fmt"
	"sync"
	"testing"
)

// TestInternStructuralIdentity pins the sharded interner's contract:
// structurally equal expressions share one id no matter how they were
// constructed, and structurally distinct expressions never do.
func TestInternStructuralIdentity(t *testing.T) {
	mk := func() Expr {
		return ImageExpr{Of: Var{Name: "P1"}, Func: "cell", Region: "Cells"}
	}
	a, b := mk(), mk()
	if ID(a) != ID(b) {
		t.Error("equal ImageExprs got distinct ids")
	}

	nested1 := BinExpr{Op: OpUnion, L: mk(), R: Var{Name: "P2"}}
	nested2 := BinExpr{Op: OpUnion, L: mk(), R: Var{Name: "P2"}}
	if ID(nested1) != ID(nested2) {
		t.Error("equal BinExprs got distinct ids")
	}
	if ID(nested1) == ID(a) {
		t.Error("distinct expressions share an id")
	}

	// Same fields, different constructor: image vs IMAGE must not collide
	// even though their shard keys are identical word-for-word.
	multi := ImageMultiExpr{Of: Var{Name: "P1"}, Func: "cell", Region: "Cells"}
	if ID(multi) == ID(a) {
		t.Error("ImageExpr and ImageMultiExpr with equal fields share an id")
	}

	// preimage argument order: same strings, different roles.
	pre1 := PreimageExpr{Region: "Cells", Func: "cell", Of: Var{Name: "P1"}}
	if ID(pre1) == ID(a) {
		t.Error("preimage collides with image")
	}

	if Hash128(a) != Hash128(b) {
		t.Error("equal expressions got distinct content hashes")
	}
}

// TestInternConcurrent hammers the COW shards from many goroutines to
// catch lost inserts or duplicate ids under the race detector.
func TestInternConcurrent(t *testing.T) {
	const goroutines = 8
	const exprs = 64
	ids := make([][]uint64, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ids[g] = make([]uint64, exprs)
			for i := 0; i < exprs; i++ {
				e := ImageExpr{
					Of:     Var{Name: fmt.Sprintf("C%02d", i)},
					Func:   "f",
					Region: "R",
				}
				ids[g][i] = ID(e)
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < exprs; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d saw id %d for expr %d, goroutine 0 saw %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
}

func TestInternStats(t *testing.T) {
	EnableInternStats(true)
	defer EnableInternStats(false)

	e := ImageExpr{Of: Var{Name: "StatsP"}, Func: "sf", Region: "SR"}
	ID(e) // miss or hit depending on prior tests — just prime it
	EnableInternStats(true)
	for i := 0; i < 10; i++ {
		ID(e)
	}
	stats := InternStats()
	var img, vars *InternShardStat
	for i := range stats {
		switch stats[i].Shard {
		case "image":
			img = &stats[i]
		case "var":
			vars = &stats[i]
		}
	}
	if img == nil || vars == nil {
		t.Fatalf("missing shards in %v", stats)
	}
	if img.Hits < 10 {
		t.Errorf("image shard hits = %d, want >= 10", img.Hits)
	}
	// Each ImageExpr lookup interns its operand first.
	if vars.Hits < 10 {
		t.Errorf("var shard hits = %d, want >= 10", vars.Hits)
	}
	if img.Entries == 0 || vars.Entries == 0 {
		t.Errorf("empty shard entry counts: %+v %+v", img, vars)
	}
	if img.Misses != 0 {
		t.Errorf("warm lookups recorded %d misses", img.Misses)
	}
}

func BenchmarkInternHit(b *testing.B) {
	e := BinExpr{
		Op: OpIntersect,
		L:  ImageExpr{Of: Var{Name: "BP1"}, Func: "bf", Region: "BR"},
		R:  PreimageExpr{Region: "BR", Func: "bg", Of: Var{Name: "BP2"}},
	}
	ID(e)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ID(e)
	}
}
