package dpl

// Property tests for the DPL resolution lemmas of Fig. 8 (L1–L14). Each
// lemma is a fact about the DPL operators the constraint solver relies on
// for soundness; here we check every one of them against the evaluator on
// randomized regions, partitions, and index maps.

import (
	"math/rand"
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/region"
)

const (
	lemmaRegionSize = 64
	lemmaColors     = 4
	lemmaTrials     = 120
)

// randPartition builds a random (possibly aliased, possibly incomplete)
// partition: each element lands in 0–2 colors.
func randPartition(r *rand.Rand, parent *region.Region, name string) *region.Partition {
	builders := make([]geometry.Builder, lemmaColors)
	for k := int64(0); k < parent.Size(); k++ {
		for c := 0; c < lemmaColors; c++ {
			if r.Intn(3) == 0 {
				builders[c].Add(k)
			}
		}
	}
	subs := make([]geometry.IndexSet, lemmaColors)
	for c := range builders {
		subs[c] = builders[c].Build()
	}
	return region.NewPartition(name, parent, subs)
}

// randDisjointPartition builds a random disjoint (possibly incomplete)
// partition: each element lands in at most one color.
func randDisjointPartition(r *rand.Rand, parent *region.Region, name string) *region.Partition {
	builders := make([]geometry.Builder, lemmaColors)
	for k := int64(0); k < parent.Size(); k++ {
		c := r.Intn(lemmaColors + 1)
		if c < lemmaColors {
			builders[c].Add(k)
		}
	}
	subs := make([]geometry.IndexSet, lemmaColors)
	for c := range builders {
		subs[c] = builders[c].Build()
	}
	return region.NewPartition(name, parent, subs)
}

// randSuperset builds a partition Q with P ⊆ Q by adding random extra
// elements to each subregion of P.
func randSuperset(r *rand.Rand, p *region.Partition, name string) *region.Partition {
	subs := make([]geometry.IndexSet, p.NumSubs())
	for i := range subs {
		var b geometry.Builder
		b.AddSet(p.Sub(i))
		for n := r.Intn(10); n > 0; n-- {
			b.Add(r.Int63n(p.Parent().Size()))
		}
		subs[i] = b.Build()
	}
	return region.NewPartition(name, p.Parent(), subs)
}

// randTotalMap is a random total function [0,size) → [0,size).
func randTotalMap(r *rand.Rand, size int64) geometry.TableMap {
	tbl := make([]int64, size)
	for i := range tbl {
		tbl[i] = r.Int63n(size)
	}
	return geometry.TableMap{Name: "f", Table: tbl}
}

func forTrials(t *testing.T, fn func(r *rand.Rand, trial int)) {
	t.Helper()
	r := rand.New(rand.NewSource(20190317))
	for trial := 0; trial < lemmaTrials; trial++ {
		fn(r, trial)
	}
}

func TestLemmaL1EqualIsPartDisjComp(t *testing.T) {
	// L1: PART(equal(R), R) ∧ DISJ(equal(R)) ∧ COMP(equal(R), R).
	for _, size := range []int64{1, 2, 7, 64, 101} {
		r := region.New("R", size)
		p := region.Equal("P", r, lemmaColors)
		if !p.IsDisjoint() {
			t.Errorf("size %d: equal partition not disjoint", size)
		}
		if !p.IsComplete() {
			t.Errorf("size %d: equal partition not complete", size)
		}
		if !p.UnionAll().SubsetOf(r.Space()) {
			t.Errorf("size %d: equal partition escapes region", size)
		}
	}
}

func TestLemmaL2L3ImagePreimageArePartitions(t *testing.T) {
	// L2: PART(image(E, f, R), R); L3: PART(preimage(R, f, E), R).
	// NewPartition panics if a subregion escapes, so reaching the checks
	// below means PART holds; we assert containment explicitly anyway.
	forTrials(t, func(r *rand.Rand, _ int) {
		src := region.New("S", lemmaRegionSize)
		dst := region.New("R", lemmaRegionSize)
		p := randPartition(r, src, "P")
		f := randTotalMap(r, lemmaRegionSize)
		img := region.Image("img", p, f, dst)
		if !img.UnionAll().SubsetOf(dst.Space()) {
			t.Fatal("L2 violated: image escapes target region")
		}
		q := randPartition(r, dst, "Q")
		pre := region.Preimage("pre", src, f, q)
		if !pre.UnionAll().SubsetOf(src.Space()) {
			t.Fatal("L3 violated: preimage escapes domain region")
		}
	})
}

func TestLemmaL4SetOpsPreservePart(t *testing.T) {
	// L4: PART(P1, R) ∧ PART(P2, R) ⟹ PART(P1 ⋄ P2, R).
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		p1 := randPartition(r, reg, "P1")
		p2 := randPartition(r, reg, "P2")
		space := reg.Space()
		for _, combined := range []*region.Partition{
			region.Union("u", p1, p2),
			region.Intersect("i", p1, p2),
			region.Subtract("d", p1, p2),
		} {
			if !combined.UnionAll().SubsetOf(space) {
				t.Fatalf("L4 violated for %s", combined.Name())
			}
		}
	})
}

func TestLemmaL5SupersetOfCompleteIsComplete(t *testing.T) {
	// L5: E1 ⊆ E2 ∧ COMP(E1, R) ∧ PART(E2, R) ⟹ COMP(E2, R).
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		e1 := region.Equal("E1", reg, lemmaColors) // complete
		e2 := randSuperset(r, e1, "E2")
		if !e2.IsComplete() {
			t.Fatal("L5 violated: superset of complete partition not complete")
		}
	})
}

func TestLemmaL6UnionWithCompleteIsComplete(t *testing.T) {
	// L6: COMP(E1, R) ∨ COMP(E2, R) ⟹ COMP(E1 ∪ E2, R).
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		complete := region.Equal("E1", reg, lemmaColors)
		other := randPartition(r, reg, "E2")
		if !region.Union("u1", complete, other).IsComplete() {
			t.Fatal("L6 violated (complete on left)")
		}
		if !region.Union("u2", other, complete).IsComplete() {
			t.Fatal("L6 violated (complete on right)")
		}
	})
}

func TestLemmaL7PreimageOfCompleteIsComplete(t *testing.T) {
	// L7: COMP(E1, R1) ⟹ COMP(preimage(R2, f, E1), R2) for total f.
	forTrials(t, func(r *rand.Rand, _ int) {
		r1 := region.New("R1", lemmaRegionSize)
		r2 := region.New("R2", lemmaRegionSize)
		e1 := region.Equal("E1", r1, lemmaColors)
		f := randTotalMap(r, lemmaRegionSize)
		pre := region.Preimage("pre", r2, f, e1)
		if !pre.IsComplete() {
			t.Fatal("L7 violated: preimage of complete partition under total map not complete")
		}
	})
}

func TestLemmaL8SubsetOfDisjointIsDisjoint(t *testing.T) {
	// L8: DISJ(E2) ∧ E1 ⊆ E2 ⟹ DISJ(E1).
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		e2 := randDisjointPartition(r, reg, "E2")
		// Build E1 ⊆ E2 by randomly thinning each subregion.
		subs := make([]geometry.IndexSet, e2.NumSubs())
		for i := range subs {
			var b geometry.Builder
			e2.Sub(i).Each(func(k int64) bool {
				if r.Intn(2) == 0 {
					b.Add(k)
				}
				return true
			})
			subs[i] = b.Build()
		}
		e1 := region.NewPartition("E1", reg, subs)
		if !e1.SubsetOf(e2) {
			t.Fatal("test bug: E1 not a subset of E2")
		}
		if !e1.IsDisjoint() {
			t.Fatal("L8 violated: subset of disjoint partition not disjoint")
		}
	})
}

func TestLemmaL9IntersectWithDisjointIsDisjoint(t *testing.T) {
	// L9: DISJ(E1) ∨ DISJ(E2) ⟹ DISJ(E1 ∩ E2).
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		disjoint := randDisjointPartition(r, reg, "E1")
		other := randPartition(r, reg, "E2")
		if !region.Intersect("i1", disjoint, other).IsDisjoint() {
			t.Fatal("L9 violated (disjoint on left)")
		}
		if !region.Intersect("i2", other, disjoint).IsDisjoint() {
			t.Fatal("L9 violated (disjoint on right)")
		}
	})
}

func TestLemmaL10DifferenceFromDisjointIsDisjoint(t *testing.T) {
	// L10: DISJ(E1) ⟹ DISJ(E1 − E2).
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		e1 := randDisjointPartition(r, reg, "E1")
		e2 := randPartition(r, reg, "E2")
		if !region.Subtract("d", e1, e2).IsDisjoint() {
			t.Fatal("L10 violated")
		}
	})
}

func TestLemmaL11DisjointUnionImpliesDisjointParts(t *testing.T) {
	// L11: DISJ(E1 ∪ E2) ⟹ DISJ(E1) ∧ DISJ(E2).
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		e1 := randPartition(r, reg, "E1")
		e2 := randPartition(r, reg, "E2")
		if region.Union("u", e1, e2).IsDisjoint() {
			if !e1.IsDisjoint() || !e2.IsDisjoint() {
				t.Fatal("L11 violated")
			}
		}
	})
}

func TestLemmaL12PreimagePreservesDisjointness(t *testing.T) {
	// L12: DISJ(E1) ⟹ DISJ(preimage(R, f, E1)) — single-valued f only
	// (the paper notes L12 does not hold for generalized PREIMAGE).
	forTrials(t, func(r *rand.Rand, _ int) {
		r1 := region.New("R1", lemmaRegionSize)
		r2 := region.New("R2", lemmaRegionSize)
		e1 := randDisjointPartition(r, r1, "E1")
		f := randTotalMap(r, lemmaRegionSize)
		if !region.Preimage("pre", r2, f, e1).IsDisjoint() {
			t.Fatal("L12 violated")
		}
	})
}

func TestLemmaL12FailsForMultiMaps(t *testing.T) {
	// Counterexample documenting why L12 is disabled for PREIMAGE: two
	// domain elements' ranges can overlap two different target colors.
	dom := region.New("Y", 2)
	tgt := region.New("Mat", 4)
	f := geometry.RangeTableMap{Name: "F", Ranges: []geometry.Interval{{Lo: 0, Hi: 3}, {Lo: 2, Hi: 4}}}
	// Disjoint target partition: {0,1} and {2,3}.
	e := region.NewPartition("E", tgt, []geometry.IndexSet{
		geometry.Range(0, 2), geometry.Range(2, 4),
	})
	pre := region.PreimageMulti("pre", dom, f, e)
	if pre.IsDisjoint() {
		t.Fatal("expected PREIMAGE to break disjointness in this example")
	}
}

func TestLemmaL13UnionOfSubsetsIsSubset(t *testing.T) {
	// L13: E1 ⊆ E3 ∧ E2 ⊆ E3 ⟹ E1 ∪ E2 ⊆ E3.
	forTrials(t, func(r *rand.Rand, _ int) {
		reg := region.New("R", lemmaRegionSize)
		e1 := randPartition(r, reg, "E1")
		e2 := randPartition(r, reg, "E2")
		e3 := randSuperset(r, region.Union("u0", e1, e2), "E3")
		if !e1.SubsetOf(e3) || !e2.SubsetOf(e3) {
			t.Fatal("test bug: not subsets")
		}
		if !region.Union("u", e1, e2).SubsetOf(e3) {
			t.Fatal("L13 violated")
		}
	})
}

func TestLemmaL14PreimageDischargesImageConstraint(t *testing.T) {
	// L14: E1 ⊆ preimage(R1, f, E2) ∧ PART(E2, R2) ⟹ image(E1, f, R2) ⊆ E2.
	forTrials(t, func(r *rand.Rand, _ int) {
		r1 := region.New("R1", lemmaRegionSize)
		r2 := region.New("R2", lemmaRegionSize)
		e2 := randPartition(r, r2, "E2")
		f := randTotalMap(r, lemmaRegionSize)
		pre := region.Preimage("pre", r1, f, e2)
		// Thin the preimage to get a strict E1 ⊆ preimage(R1, f, E2).
		subs := make([]geometry.IndexSet, pre.NumSubs())
		for i := range subs {
			var b geometry.Builder
			pre.Sub(i).Each(func(k int64) bool {
				if r.Intn(3) > 0 {
					b.Add(k)
				}
				return true
			})
			subs[i] = b.Build()
		}
		e1 := region.NewPartition("E1", r1, subs)
		if !region.Image("img", e1, f, r2).SubsetOf(e2) {
			t.Fatal("L14 violated")
		}
	})
}

func TestTheorem51PrivateSubPartition(t *testing.T) {
	// Theorem 5.1: for disjoint P of R,
	//   priv = f_S(P) − f_S(f_R⁻¹(f_S(P)) − P)
	// is a private (disjoint) sub-partition of f_S(P).
	forTrials(t, func(r *rand.Rand, _ int) {
		rr := region.New("R", lemmaRegionSize)
		ss := region.New("S", lemmaRegionSize)
		p := randDisjointPartition(r, rr, "P")
		f := randTotalMap(r, lemmaRegionSize)

		img := region.Image("fS(P)", p, f, ss)
		expanded := region.Preimage("fR-1(fS(P))", rr, f, img)
		foreign := region.Subtract("foreign", expanded, p)
		shared := region.Image("fS(foreign)", foreign, f, ss)
		priv := region.Subtract("priv", img, shared)

		if !priv.SubsetOf(img) {
			t.Fatal("Theorem 5.1 violated: private part escapes the image partition")
		}
		if !priv.IsDisjoint() {
			t.Fatal("Theorem 5.1 violated: private sub-partition not disjoint")
		}
		// Stronger: an element of priv[i] must not be the image of any
		// element of P[j], j ≠ i.
		for i := 0; i < p.NumSubs(); i++ {
			for j := 0; j < p.NumSubs(); j++ {
				if i == j {
					continue
				}
				otherImg := geometry.Image(p.Sub(j), f, ss.Space())
				if !priv.Sub(i).Disjoint(otherImg) {
					t.Fatalf("Theorem 5.1 violated: priv[%d] receives contributions from P[%d]", i, j)
				}
			}
		}
	})
}
