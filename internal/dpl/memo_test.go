package dpl

import (
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/region"
)

func memoCtx() *Context {
	ctx := NewContext(4)
	ctx.AddRegion(region.New("R", 256))
	ctx.AddRegion(region.New("S", 256))
	ctx.AddMap("f", geometry.AffineMap{Name: "f", Stride: 1, Offset: 1, Modulo: 256})
	return ctx
}

// TestEvalMemoizesSharedSubexpressions asserts the memo returns the very
// same partition for a repeated subexpression, and that the memoized
// result matches an uncached evaluation.
func TestEvalMemoizesSharedSubexpressions(t *testing.T) {
	ctx := memoCtx()
	img := ImageExpr{Of: EqualExpr{Region: "R"}, Func: "f", Region: "S"}
	first, err := ctx.Eval(img)
	if err != nil {
		t.Fatal(err)
	}
	second, err := ctx.Eval(img)
	if err != nil {
		t.Fatal(err)
	}
	if first != second {
		t.Error("repeated Eval should return the cached partition pointer")
	}
	uncached, err := ctx.evalUncached(img)
	if err != nil {
		t.Fatal(err)
	}
	if !first.SamePartition(uncached) {
		t.Error("memoized result differs from uncached evaluation")
	}
}

// TestEvalMemoSkipsVars: Var lookups must track the live binding, never a
// cached copy.
func TestEvalMemoSkipsVars(t *testing.T) {
	ctx := memoCtx()
	r, _ := ctx.Region("R")
	p1 := region.Equal("p1", r, 4)
	p2 := region.Equal("p2", r, 4)
	ctx.Bind("P", p1)
	if got, _ := ctx.Eval(Var{Name: "P"}); got != p1 {
		t.Fatal("Var eval should return the binding")
	}
	ctx.Bind("P", p2)
	if got, _ := ctx.Eval(Var{Name: "P"}); got != p2 {
		t.Fatal("Var eval should see the new binding")
	}
}

// TestEvalMemoInvalidation covers the invalidation rule: re-binding a
// bound symbol and re-registering a map clear the cache; a first-time
// Bind keeps it.
func TestEvalMemoInvalidation(t *testing.T) {
	ctx := memoCtx()
	r, _ := ctx.Region("R")
	e := ImageExpr{Of: Var{Name: "P"}, Func: "f", Region: "S"}

	ctx.Bind("P", region.Equal("p", r, 4))
	first, err := ctx.Eval(e)
	if err != nil {
		t.Fatal(err)
	}

	// First-time Bind of an unrelated symbol: cache survives.
	ctx.Bind("Q", region.Equal("q", r, 4))
	if got, _ := ctx.Eval(e); got != first {
		t.Error("first-time Bind must not clear the memo")
	}

	// Re-binding P: the cached image depended on the old binding.
	ctx.Bind("P", region.Equal("p2", r, 4))
	if got, _ := ctx.Eval(e); got == first {
		t.Error("re-bind must clear the memo")
	}

	// Re-registering the map f invalidates again.
	before, _ := ctx.Eval(e)
	ctx.AddMap("f", geometry.AffineMap{Name: "f", Stride: 1, Offset: 2, Modulo: 256})
	after, err := ctx.Eval(e)
	if err != nil {
		t.Fatal(err)
	}
	if after == before {
		t.Error("AddMap must clear the memo")
	}
	if before.SamePartition(after) {
		t.Error("new map should change the image")
	}
}
