package dpl

import (
	"fmt"
	"strings"

	"autopart/internal/region"
)

// Stmt is a DPL statement P = E.
type Stmt struct {
	Name string
	Expr Expr
}

func (s Stmt) String() string { return fmt.Sprintf("%s = %s", s.Name, s.Expr) }

// Program is a sequence of DPL statements, evaluated in order; later
// statements may reference partitions bound by earlier ones.
type Program struct {
	Stmts []Stmt
}

func (p Program) String() string {
	lines := make([]string, len(p.Stmts))
	for i, s := range p.Stmts {
		lines[i] = s.String()
	}
	return strings.Join(lines, "\n")
}

// Append adds a statement.
func (p *Program) Append(name string, e Expr) {
	p.Stmts = append(p.Stmts, Stmt{Name: name, Expr: e})
}

// Lookup returns the defining expression for a partition symbol.
func (p Program) Lookup(name string) (Expr, bool) {
	for _, s := range p.Stmts {
		if s.Name == name {
			return s.Expr, true
		}
	}
	return nil, false
}

// Eval runs the program in ctx, binding each statement's result, and
// returns the bindings for the program's statement names. Pre-existing
// bindings in ctx (external partitions) are visible to the program.
func (p Program) Eval(ctx *Context) (map[string]*region.Partition, error) {
	out := make(map[string]*region.Partition, len(p.Stmts))
	for _, s := range p.Stmts {
		part, err := ctx.Eval(s.Expr)
		if err != nil {
			return nil, fmt.Errorf("evaluating %s: %w", s, err)
		}
		part = part.Rename(s.Name)
		ctx.Bind(s.Name, part)
		out[s.Name] = part
	}
	return out, nil
}

// NumPartitionOps counts the partition-constructing operations in the
// program after aliasing (statements whose RHS is a bare Var are free).
// This is the quantity the solver's fewest-partitions heuristic minimizes.
func (p Program) NumPartitionOps() int {
	n := 0
	for _, s := range p.Stmts {
		if _, isVar := s.Expr.(Var); !isVar {
			n += Size(s.Expr)
		}
	}
	return n
}

// CSE rewrites the program so that structurally identical right-hand
// sides are computed once: later duplicates become aliases (P = Q). The
// paper performs the same cleanup after resolution (Example 2 "after
// performing common subexpression elimination").
func (p Program) CSE() Program {
	byKey := map[string]string{} // canonical expr key -> first defining name
	alias := map[string]string{} // symbol -> canonical symbol
	var out Program
	for _, s := range p.Stmts {
		// Rewrite uses of aliased symbols first.
		e := s.Expr
		for from, to := range alias {
			e = Subst(e, from, Var{Name: to})
		}
		if v, isVar := e.(Var); isVar {
			// A pure alias statement: record and keep (cheap, documents
			// the equality), but canonicalize future references.
			alias[s.Name] = canonical(alias, v.Name)
			out.Stmts = append(out.Stmts, Stmt{Name: s.Name, Expr: Var{Name: alias[s.Name]}})
			continue
		}
		k := Key(e)
		if first, ok := byKey[k]; ok {
			alias[s.Name] = first
			out.Stmts = append(out.Stmts, Stmt{Name: s.Name, Expr: Var{Name: first}})
			continue
		}
		byKey[k] = s.Name
		out.Stmts = append(out.Stmts, Stmt{Name: s.Name, Expr: e})
	}
	return out
}

func canonical(alias map[string]string, name string) string {
	for {
		next, ok := alias[name]
		if !ok {
			return name
		}
		name = next
	}
}

// TopoCheck verifies that every symbol used by a statement is defined by
// an earlier statement or is among the provided external symbols. It
// returns the first violation.
func (p Program) TopoCheck(external map[string]bool) error {
	defined := map[string]bool{}
	for name := range external {
		defined[name] = true
	}
	for _, s := range p.Stmts {
		for _, v := range FreeVars(s.Expr) {
			if !defined[v] {
				return fmt.Errorf("statement %q uses undefined partition %q", s, v)
			}
		}
		defined[s.Name] = true
	}
	return nil
}
