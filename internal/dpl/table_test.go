package dpl

import (
	"fmt"
	"sync"
	"testing"
)

// TestTableInstanceIsolation pins that Table instances are independent:
// interning into one never shows up in another, and stats toggles are
// per-instance.
func TestTableInstanceIsolation(t *testing.T) {
	a, b := NewTable(), NewTable()
	e := ImageExpr{Of: Var{Name: "TP"}, Func: "tf", Region: "TR"}
	idA := a.ID(e)
	if got := a.Entries(); got != 2 { // Var child + ImageExpr
		t.Fatalf("a.Entries() = %d, want 2", got)
	}
	if got := b.Entries(); got != 0 {
		t.Fatalf("b.Entries() = %d, want 0 (tables must be isolated)", got)
	}
	a.EnableStats(true)
	a.ID(e)
	b.ID(e) // b has stats off; must not tick a's counters beyond a's own lookups
	var aImgHits uint64
	for _, st := range a.Stats() {
		if st.Shard == "image" {
			aImgHits = st.Hits
		}
	}
	if aImgHits != 1 {
		t.Errorf("a image hits = %d, want exactly 1 (b's lookups must not leak in)", aImgHits)
	}
	if b.ID(e) != idA {
		// Same insertion order in both tables gives the same dense ids;
		// this is incidental but catches cross-table state bleed if it
		// ever diverges unexpectedly.
		t.Logf("note: ids differ across tables (allowed): a=%d b=%d", idA, b.ID(e))
	}
	if a.Key(e) != b.Key(e) {
		t.Errorf("canonical keys differ across tables: %q vs %q", a.Key(e), b.Key(e))
	}
}

// TestEpochDefersReclamation proves the epoch contract: a table over its
// bound does not reclaim while an epoch is active, and reclaims as soon
// as the last epoch leaves.
func TestEpochDefersReclamation(t *testing.T) {
	tab := NewTable()
	tab.SetMaxEntries(4)
	ep := tab.Enter()
	for i := 0; i < 8; i++ {
		tab.ID(Var{Name: fmt.Sprintf("E%d", i)})
	}
	if tab.Reclaims() != 0 {
		t.Fatalf("table reclaimed with an active epoch (reclaims=%d)", tab.Reclaims())
	}
	if tab.Entries() < 8 {
		t.Fatalf("entries = %d, want >= 8 before reclamation", tab.Entries())
	}
	if tab.Generation() != ep.Generation() {
		t.Fatalf("generation advanced under an active epoch")
	}
	ep.Leave()
	if tab.Reclaims() != 1 {
		t.Fatalf("reclaims = %d after last Leave, want 1", tab.Reclaims())
	}
	if tab.Entries() != 0 {
		t.Fatalf("entries = %d after reclamation, want 0", tab.Entries())
	}
	if tab.Generation() != ep.Generation()+1 {
		t.Fatalf("generation = %d, want %d", tab.Generation(), ep.Generation()+1)
	}
	// Leave is idempotent: a second Leave must not unbalance the count.
	ep.Leave()
	ep2 := tab.Enter()
	defer ep2.Leave()
	if tab.Generation() != ep2.Generation() {
		t.Fatalf("second epoch pinned stale generation")
	}
}

// TestEpochIDCoherence pins why epochs exist: ids observed inside one
// epoch stay coherent (same expression, same id), and after an
// epoch-bounded reclamation the fresh generation reassigns ids while
// content hashes stay identical.
func TestEpochIDCoherence(t *testing.T) {
	tab := NewTable()
	tab.SetMaxEntries(2)
	e1 := BinExpr{Op: OpUnion, L: Var{Name: "GA"}, R: Var{Name: "GB"}}

	ep := tab.Enter()
	first := tab.ID(e1)
	for i := 0; i < 6; i++ { // overflow the bound inside the epoch
		tab.ID(Var{Name: fmt.Sprintf("G%d", i)})
	}
	if tab.ID(e1) != first {
		t.Fatal("id changed within one epoch")
	}
	h := Hash128(e1)
	ep.Leave() // reclamation fires here

	ep2 := tab.Enter()
	defer ep2.Leave()
	if tab.Entries() != 0 && tab.Reclaims() == 0 {
		t.Fatal("expected a reclamation between epochs")
	}
	if got := tab.info(e1).h; got != h {
		t.Errorf("content hash changed across generations: %v vs %v", got, h)
	}
}

// TestTableReset covers the explicit Reset path used by cold-cache
// benchmark batches.
func TestTableReset(t *testing.T) {
	tab := NewTable()
	tab.ID(Var{Name: "RP"})
	ep := tab.Enter()
	if tab.Reset() {
		t.Fatal("Reset succeeded with an active epoch")
	}
	ep.Leave()
	if !tab.Reset() {
		t.Fatal("Reset refused with no active epochs")
	}
	if tab.Entries() != 0 || tab.Reclaims() != 1 {
		t.Fatalf("after Reset: entries=%d reclaims=%d", tab.Entries(), tab.Reclaims())
	}
}

// TestStatsToggleRace hammers EnableStats flips against concurrent
// interning on a private table; under -race this pins the fix for the
// old package-global toggle (compilebench's stats-enabled rerun used to
// flip a global that in-flight compiles observed mid-run). Counters are
// per-instance atomics and Stats() retries across resets, so the worst
// outcome is an undercount, never a torn read.
func TestStatsToggleRace(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				tab.ID(ImageExpr{Of: Var{Name: fmt.Sprintf("S%d_%d", g, i%32)}, Func: "f", Region: "R"})
			}
		}()
	}
	for i := 0; i < 200; i++ {
		tab.EnableStats(i%2 == 0)
		stats := tab.Stats()
		if len(stats) != numShards {
			t.Errorf("Stats returned %d shards, want %d", len(stats), numShards)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestStatsSnapshotConsistent checks that a Stats() snapshot taken right
// after EnableStats(true) never reports stale counters from the previous
// enable window.
func TestStatsSnapshotConsistent(t *testing.T) {
	tab := NewTable()
	e := Var{Name: "SC"}
	tab.ID(e)
	tab.EnableStats(true)
	for i := 0; i < 50; i++ {
		tab.ID(e)
	}
	tab.EnableStats(true) // reset window
	for _, st := range tab.Stats() {
		if st.Shard == "var" && st.Hits > 0 {
			t.Errorf("var hits = %d immediately after reset, want 0", st.Hits)
		}
	}
}

// TestConcurrentEpochs checks Enter/Leave balance under concurrency:
// interleaved epochs with a pending reclamation reclaim exactly once,
// after the last leave.
func TestConcurrentEpochs(t *testing.T) {
	tab := NewTable()
	tab.SetMaxEntries(1)
	const n = 16
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			ep := tab.Enter()
			defer ep.Leave()
			for i := 0; i < 32; i++ {
				tab.ID(Var{Name: fmt.Sprintf("C%d_%d", g, i)})
			}
		}()
	}
	wg.Wait()
	if tab.Reclaims() == 0 {
		t.Error("no reclamation despite overflow and all epochs left")
	}
	if tab.Entries() != 0 {
		t.Errorf("entries = %d after final reclamation, want 0", tab.Entries())
	}
}
