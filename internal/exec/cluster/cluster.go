// Package cluster is the multi-process deployment layer for the
// executor: a coordinator that distributes a compiled program to worker
// processes and assembles their results, plus the worker loop that
// cmd/node runs. Where internal/exec runs all n nodes as goroutines in
// one process, cluster runs each node in its own OS process (spawned
// locally via Spawn, or pre-started anywhere reachable via Join) and
// carries the bootstrap over the same versioned, length-prefixed wire
// format the data plane uses.
//
// Bootstrap sequence, per worker, over its control connection:
//
//	coordinator                                worker
//	    | -- hello (node id, n, steps, bpe) -->  |
//	    | <-- hello (data-plane address) -------  |
//	    | -- topology (all n data addresses) -->  |
//	    | -- program (serialized blob) ---------> |   builds mesh,
//	    | <-- ready ----------------------------  |   dials peers
//	    | -- start ----------------------------> |   runs node
//	    | <-- result (stats + final shards) ----  |   or abort (reason)
//
// Every frame carries a protocol version byte; a worker from a
// different build is refused at the first frame. Failure semantics:
// each phase is bounded by a handshake timeout, a worker that dies is
// detected by its control connection closing (Spawn mode additionally
// reaps the process and attaches its exit status and stderr tail), and
// the first failure makes the coordinator broadcast an abort frame so
// surviving workers tear down their meshes and exit instead of blocking
// on a peer that will never send.
package cluster

import (
	"fmt"
	"net"
	"sort"
	"time"

	"autopart/internal/exec"
)

// Options bounds the coordinator's patience.
type Options struct {
	// HandshakeTimeout bounds each bootstrap phase per worker: reading
	// the hello reply, and reaching ready after topology + program
	// delivery (default 10s).
	HandshakeTimeout time.Duration
	// DialBudget bounds dialing a worker's control address, including
	// retries while the process is still starting (default 10s). Workers
	// inherit it for their data-plane dials via the hello frame's
	// contract (they apply their own default if unset).
	DialBudget time.Duration
	// AbortDrain bounds how long the coordinator waits, after the first
	// failure, for the remaining workers' own failure reports before
	// classifying the root cause (default 2s, at least HandshakeTimeout).
	AbortDrain time.Duration
}

func (o Options) withDefaults() Options {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.DialBudget <= 0 {
		o.DialBudget = 10 * time.Second
	}
	if o.AbortDrain <= 0 {
		o.AbortDrain = 2 * time.Second
	}
	if o.AbortDrain < o.HandshakeTimeout {
		o.AbortDrain = o.HandshakeTimeout
	}
	return o
}

// worker is the coordinator's handle on one node's process: its control
// connection, and in Spawn mode the process bookkeeping used to turn a
// dead connection into an exit status and stderr tail.
type worker struct {
	id       int
	conn     net.Conn
	br       *ctrlReader
	dataAddr string

	// Spawn mode only.
	tail *tailBuffer   // ring buffer over the process's stderr
	died chan struct{} // closed once the process is reaped
	exit func() string // exit description, valid after died closes
	kill func()        // hard-kill the process
}

// ctrlReader is the buffered side of a control connection. Buffering
// must persist across phases (a frame boundary can land mid-buffer), so
// each worker owns exactly one.
type ctrlReader struct {
	conn net.Conn
	r    interface {
		Read([]byte) (int, error)
	}
}

func (c *ctrlReader) Read(p []byte) (int, error) { return c.r.Read(p) }

// readCtrl reads one control frame, bounding the wait when timeout > 0.
func (c *ctrlReader) readCtrl(timeout time.Duration) (exec.Ctrl, error) {
	if timeout > 0 {
		c.conn.SetReadDeadline(time.Now().Add(timeout))
		defer c.conn.SetReadDeadline(time.Time{})
	}
	return exec.ReadCtrl(c)
}

// writeCtrl writes one control frame, bounding the wait when timeout > 0
// (an abort broadcast must not block on a wedged worker).
func (w *worker) writeCtrl(c *exec.Ctrl, timeout time.Duration) error {
	if timeout > 0 {
		w.conn.SetWriteDeadline(time.Now().Add(timeout))
		defer w.conn.SetWriteDeadline(time.Time{})
	}
	return exec.WriteCtrl(w.conn, c)
}

// Join runs prog on cfg.Nodes pre-started workers whose control
// addresses are given in node-id order (ServeWorker or cmd/node
// instances, possibly on other hosts). The caller keeps ownership of
// the worker processes; Join owns only the connections.
func Join(prog *exec.Program, cfg exec.Config, addrs []string, opts Options) (*exec.Result, error) {
	opts = opts.withDefaults()
	if len(addrs) != cfg.Nodes {
		return nil, fmt.Errorf("cluster: %d worker addresses for %d nodes", len(addrs), cfg.Nodes)
	}
	ws := make([]*worker, cfg.Nodes)
	for id, addr := range addrs {
		conn, err := dialRetry(addr, opts.DialBudget)
		if err != nil {
			closeAll(ws[:id])
			return nil, fmt.Errorf("cluster: dial worker %d (%s): %w", id, addr, err)
		}
		ws[id] = newWorker(id, conn)
	}
	defer closeAll(ws)
	return runCluster(prog, cfg, ws, opts)
}

func newWorker(id int, conn net.Conn) *worker {
	return &worker{id: id, conn: conn, br: &ctrlReader{conn: conn, r: newBufReader(conn)}}
}

func closeAll(ws []*worker) {
	for _, w := range ws {
		if w != nil && w.conn != nil {
			w.conn.Close()
		}
	}
}

// dialRetry dials addr until it succeeds or the budget is spent,
// backing off between attempts (a just-spawned worker may not be
// listening yet; mirrors the mesh's data-plane dial policy).
func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := 10 * time.Millisecond
	for {
		attempt := time.Until(deadline)
		if attempt <= 0 {
			return nil, fmt.Errorf("dial budget of %v exhausted", budget)
		}
		if attempt > time.Second {
			attempt = time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

// runCluster drives the bootstrap and the run over an already-connected
// worker set, then assembles the per-node results into one Result.
func runCluster(prog *exec.Program, cfg exec.Config, ws []*worker, opts Options) (*exec.Result, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	blob, err := exec.EncodeProgram(prog)
	if err != nil {
		return nil, fmt.Errorf("cluster: serialize program: %w", err)
	}

	// Phase 1: hello exchange. Each worker learns its identity and run
	// shape, and replies with the data-plane address it listens on.
	err = phase(ws, func(w *worker) error {
		hello := &exec.Ctrl{
			Kind:         exec.CtrlHello,
			Node:         w.id,
			Nodes:        cfg.Nodes,
			Steps:        cfg.Steps,
			BytesPerElem: cfg.BytesPerElem,
		}
		if err := w.writeCtrl(hello, opts.HandshakeTimeout); err != nil {
			return fmt.Errorf("send hello: %w", err)
		}
		reply, err := w.br.readCtrl(opts.HandshakeTimeout)
		if err != nil {
			return fmt.Errorf("read hello reply: %w", w.deathErr(err, opts))
		}
		if reply.Kind == exec.CtrlAbort {
			return fmt.Errorf("worker refused hello: %s", reply.Text)
		}
		if reply.Kind != exec.CtrlHello || reply.Node != w.id || reply.Text == "" {
			return fmt.Errorf("bad hello reply (kind=%v, node=%d, addr=%q)", reply.Kind, reply.Node, reply.Text)
		}
		w.dataAddr = reply.Text
		return nil
	})
	if err != nil {
		abortAll(ws, opts)
		return nil, err
	}

	// Phase 2: topology + program. Workers build their meshes (dialing
	// each other full-mesh) and acknowledge with ready.
	addrs := make([]string, len(ws))
	for _, w := range ws {
		addrs[w.id] = w.dataAddr
	}
	err = phase(ws, func(w *worker) error {
		if err := w.writeCtrl(&exec.Ctrl{Kind: exec.CtrlTopology, Addrs: addrs}, opts.HandshakeTimeout); err != nil {
			return fmt.Errorf("send topology: %w", err)
		}
		if err := w.writeCtrl(&exec.Ctrl{Kind: exec.CtrlProgram, Blob: blob}, opts.HandshakeTimeout); err != nil {
			return fmt.Errorf("send program: %w", err)
		}
		// Ready waits on the worker's n-1 peer dials, themselves bounded
		// by the mesh dial budget; allow for both.
		wait := opts.HandshakeTimeout + opts.DialBudget
		reply, err := w.br.readCtrl(wait)
		if err != nil {
			return fmt.Errorf("await ready: %w", w.deathErr(err, opts))
		}
		if reply.Kind == exec.CtrlAbort {
			return fmt.Errorf("worker aborted during bootstrap: %s", reply.Text)
		}
		if reply.Kind != exec.CtrlReady {
			return fmt.Errorf("expected ready, got %v", reply.Kind)
		}
		return nil
	})
	if err != nil {
		abortAll(ws, opts)
		return nil, err
	}

	// Phase 3: start. Only after every worker is ready, so no node runs
	// against a mesh whose peers might still refuse dials.
	err = phase(ws, func(w *worker) error {
		if err := w.writeCtrl(&exec.Ctrl{Kind: exec.CtrlStart}, opts.HandshakeTimeout); err != nil {
			return fmt.Errorf("send start: %w", err)
		}
		return nil
	})
	if err != nil {
		abortAll(ws, opts)
		return nil, err
	}

	// Phase 4: collect one result (or failure) per worker. Runs are
	// unbounded in time, so there is no read deadline here; a worker
	// that dies closes its connection, which is what ends the read.
	results, err := collect(ws, opts)
	if err != nil {
		return nil, err
	}
	res, err := exec.AssembleResult(prog, cfg, results)
	if err != nil {
		return nil, fmt.Errorf("cluster: %w", err)
	}
	return res, nil
}

// phase runs fn against every worker concurrently and returns the
// lowest-id failure, tagged with the worker's identity.
func phase(ws []*worker, fn func(*worker) error) error {
	errs := make([]error, len(ws))
	done := make(chan int, len(ws))
	for i, w := range ws {
		go func(i int, w *worker) {
			errs[i] = fn(w)
			done <- i
		}(i, w)
	}
	for range ws {
		<-done
	}
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("cluster: worker %d: %w", ws[i].id, err)
		}
	}
	return nil
}

// event is one worker's terminal report: a result, an abort frame it
// sent, or a connection failure (death).
type event struct {
	node  int
	res   *exec.NodeResult
	abort string // abort frame text, when the worker reported its own failure
	err   error  // connection or protocol failure otherwise
}

// collect reads each worker's terminal frame. On the first failure it
// broadcasts abort, drains the remaining workers' reports (bounded by
// AbortDrain), and classifies the root cause.
func collect(ws []*worker, opts Options) ([]*exec.NodeResult, error) {
	events := make(chan event, len(ws))
	for _, w := range ws {
		go func(w *worker) { events <- readTerminal(w, opts) }(w)
	}

	results := make([]*exec.NodeResult, len(ws))
	var failures []event
	outstanding := len(ws)
	for outstanding > 0 {
		ev := <-events
		outstanding--
		if ev.res != nil {
			results[ev.node] = ev.res
			continue
		}
		failures = append(failures, ev)
		break
	}
	if len(failures) == 0 {
		return results, nil
	}

	// Someone failed: tell everyone to stop, then give the survivors a
	// bounded window to report their side before classifying.
	abortAll(ws, opts)
	deadline := time.After(opts.AbortDrain)
	for outstanding > 0 {
		select {
		case ev := <-events:
			outstanding--
			if ev.res == nil {
				failures = append(failures, ev)
			}
		case <-deadline:
			outstanding = 0
		}
	}
	return nil, classify(failures)
}

// readTerminal reads one worker's terminal frame: result, abort, or a
// dead connection.
func readTerminal(w *worker, opts Options) event {
	c, err := w.br.readCtrl(0)
	if err != nil {
		return event{node: w.id, err: w.deathErr(err, opts)}
	}
	switch c.Kind {
	case exec.CtrlResult:
		nr, err := exec.DecodeNodeResult(c.Blob)
		if err != nil {
			return event{node: w.id, err: fmt.Errorf("bad result frame: %w", err)}
		}
		if nr.ID != w.id {
			return event{node: w.id, err: fmt.Errorf("result frame names node %d", nr.ID)}
		}
		return event{node: w.id, res: nr}
	case exec.CtrlAbort:
		return event{node: w.id, abort: c.Text}
	default:
		return event{node: w.id, err: fmt.Errorf("expected result or abort frame, got %v", c.Kind)}
	}
}

// deathErr enriches a dead-connection error with the process's exit
// status and stderr tail when this coordinator spawned the process.
func (w *worker) deathErr(err error, opts Options) error {
	if w.died == nil {
		return err
	}
	select {
	case <-w.died:
	case <-time.After(opts.AbortDrain):
		return err
	}
	msg := w.exit()
	if tail := w.tail.String(); tail != "" {
		msg += "; stderr tail:\n" + tail
	}
	return fmt.Errorf("%s (%v)", msg, err)
}

// abortAll broadcasts the abort frame; write errors are ignored (the
// worker may already be gone, which is why we are aborting).
func abortAll(ws []*worker, opts Options) {
	for _, w := range ws {
		w.writeCtrl(&exec.Ctrl{Kind: exec.CtrlAbort, Text: "coordinator abort"}, opts.HandshakeTimeout)
	}
}

// classify picks the root cause from the collected failures: a worker
// that died without reporting its own abort is the culprit (its peers'
// aborts are consequences); otherwise the lowest-id abort frame speaks.
func classify(failures []event) error {
	sort.SliceStable(failures, func(i, j int) bool { return failures[i].node < failures[j].node })
	reported := make(map[int]bool)
	for _, ev := range failures {
		if ev.abort != "" {
			reported[ev.node] = true
		}
	}
	for _, ev := range failures {
		if ev.err != nil && !reported[ev.node] {
			return fmt.Errorf("cluster: node %d died: %w", ev.node, ev.err)
		}
	}
	for _, ev := range failures {
		if ev.abort != "" {
			return fmt.Errorf("cluster: node %d aborted the run: %s", ev.node, ev.abort)
		}
	}
	ev := failures[0]
	return fmt.Errorf("cluster: node %d failed: %w", ev.node, ev.err)
}
