package cluster_test

import (
	"encoding/binary"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"autopart/internal/apps/circuit"
	"autopart/internal/exec"
	"autopart/internal/exec/cluster"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

var (
	compileMu sync.Mutex
	compiledC *autopart.Compiled
)

// prog builds the circuit app at test scale — the same configuration
// cmd/run -size small uses, so the multi-process drills here exercise
// exactly what CI runs through the binaries.
func prog(t *testing.T, nodes int) *exec.Program {
	t.Helper()
	compileMu.Lock()
	if compiledC == nil {
		c, err := autopart.Compile(circuit.Source, autopart.Options{})
		if err != nil {
			compileMu.Unlock()
			t.Fatalf("compile circuit: %v", err)
		}
		compiledC = c
	}
	c := compiledC
	compileMu.Unlock()
	cfg := circuit.Config{WiresPerCluster: 200, NodesPerCluster: 100, SharedFraction: 0.02, CrossFraction: 0.20}
	p, err := circuit.Executable(cfg, c, nodes, false)
	if err != nil {
		t.Fatalf("build circuit: %v", err)
	}
	return p
}

// startWorkers runs n in-process workers (the same ServeWorker loop
// cmd/node wraps), returning their control addresses in node-id order
// and a bounded wait for their exit errors.
func startWorkers(t *testing.T, n int, optsFor func(id int) cluster.WorkerOptions) ([]string, func() []error) {
	t.Helper()
	addrs := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("worker %d: listen: %v", i, err)
		}
		addrs[i] = ln.Addr().String()
		wg.Add(1)
		go func(i int, ln net.Listener) {
			defer wg.Done()
			errs[i] = cluster.ServeWorker(ln, optsFor(i))
		}(i, ln)
	}
	return addrs, func() []error {
		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("workers did not exit within 60s")
		}
		return errs
	}
}

// checkNoGoroutineLeak polls until the goroutine count returns to its
// baseline (the pipe-leak idiom: teardown is asynchronous, so give it a
// bounded window rather than a single sample).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

// TestJoinBitIdentityAndSimCrossCheck is the cluster's headline
// guarantee, mirroring the in-process executor's: a 4-worker
// multi-process run is bit-identical to the sequential reference, and
// every per-node, per-launch communication counter matches the analytic
// model exactly.
func TestJoinBitIdentityAndSimCrossCheck(t *testing.T) {
	const nodes, steps = 4, 2
	before := runtime.NumGoroutine()
	p := prog(t, nodes)
	addrs, wait := startWorkers(t, nodes, func(int) cluster.WorkerOptions { return cluster.WorkerOptions{} })
	res, err := cluster.Join(p, exec.Config{Nodes: nodes, Steps: steps}, addrs, cluster.Options{})
	for i, werr := range wait() {
		if werr != nil {
			t.Errorf("worker %d error: %v", i, werr)
		}
	}
	if err != nil {
		t.Fatalf("join run: %v", err)
	}

	want, err := exec.RunSequentialReference(p, steps)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	for name, wr := range want.Regions {
		if same, diff := wr.SameData(res.Machine.Regions[name]); !same {
			t.Errorf("region %s diverges from sequential: %s", name, diff)
		}
	}
	if res.TotalBytes() == 0 {
		t.Error("no bytes moved; the multi-process path is vacuous")
	}

	model := sim.Default()
	launches := p.Plan.Launches()
	for step := 0; step < steps; step++ {
		its, err := model.RunIteration(launches, p.Parts, p.Owners)
		if err != nil {
			t.Fatalf("step %d: sim: %v", step, err)
		}
		for li, ls := range its.Launches {
			measured := res.Steps[step].Launches[li]
			for j := range ls.Nodes {
				want, got := ls.Nodes[j], measured.Nodes[j]
				want.ComputeUnits, got.ComputeUnits = 0, 0
				if want != got {
					t.Errorf("step %d launch %s node %d: sim predicts %+v, cluster measured %+v",
						step, ls.Name, j, want, got)
				}
			}
		}
	}
	checkNoGoroutineLeak(t, before)
}

// writeRawCtrl frames a control body with an arbitrary version byte —
// how a peer from a different build would look on the wire.
func writeRawCtrl(t *testing.T, conn net.Conn, version uint8, c *exec.Ctrl) {
	t.Helper()
	body, err := exec.AppendCtrl(nil, version, c)
	if err != nil {
		t.Fatalf("append ctrl: %v", err)
	}
	frame := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	if _, err := conn.Write(append(frame, body...)); err != nil {
		t.Fatalf("write ctrl: %v", err)
	}
}

// TestWorkerRejectsWrongProtocolVersion: a coordinator from a foreign
// build is refused at its first frame, with the version named.
func TestWorkerRejectsWrongProtocolVersion(t *testing.T) {
	before := runtime.NumGoroutine()
	addrs, wait := startWorkers(t, 1, func(int) cluster.WorkerOptions {
		return cluster.WorkerOptions{HandshakeTimeout: 5 * time.Second}
	})
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatalf("dial worker: %v", err)
	}
	writeRawCtrl(t, conn, exec.WireProtoVersion+1, &exec.Ctrl{Kind: exec.CtrlHello, Node: 0, Nodes: 1, Steps: 1})
	werr := wait()[0]
	conn.Close()
	if werr == nil || !strings.Contains(werr.Error(), "version") {
		t.Fatalf("worker error = %v, want protocol version mismatch", werr)
	}
	checkNoGoroutineLeak(t, before)
}

// TestCoordinatorRejectsWrongProtocolVersion: the converse — a worker
// from a foreign build replies to hello with its version byte, and Join
// refuses it, identifying the worker.
func TestCoordinatorRejectsWrongProtocolVersion(t *testing.T) {
	before := runtime.NumGoroutine()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		if _, err := exec.ReadCtrl(conn); err != nil {
			return
		}
		writeRawCtrl(t, conn, exec.WireProtoVersion+1, &exec.Ctrl{Kind: exec.CtrlHello, Node: 0, Text: "127.0.0.1:1"})
		// Linger so the coordinator's read sees the frame, not a reset.
		buf := make([]byte, 1)
		conn.Read(buf)
	}()
	p := prog(t, 1)
	_, err = cluster.Join(p, exec.Config{Nodes: 1, Steps: 1}, []string{ln.Addr().String()},
		cluster.Options{HandshakeTimeout: 5 * time.Second, AbortDrain: time.Second})
	if err == nil || !strings.Contains(err.Error(), "version") || !strings.Contains(err.Error(), "worker 0") {
		t.Fatalf("join error = %v, want worker 0 version mismatch", err)
	}
	checkNoGoroutineLeak(t, before)
}

// TestHandshakeTimeout: a worker that connects but never completes the
// handshake fails the run within the configured timeout instead of
// hanging, and the error names it. The silent worker here also checks
// the worker side's own patience: ServeWorker gives up when no
// coordinator frame arrives.
func TestHandshakeTimeout(t *testing.T) {
	before := runtime.NumGoroutine()
	// A listener that accepts and then says nothing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		<-stop
	}()
	p := prog(t, 1)
	start := time.Now()
	_, err = cluster.Join(p, exec.Config{Nodes: 1, Steps: 1}, []string{ln.Addr().String()},
		cluster.Options{HandshakeTimeout: 300 * time.Millisecond, AbortDrain: 300 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "worker 0") {
		t.Fatalf("join error = %v, want worker 0 timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("timeout took %v; the deadline did not bite", elapsed)
	}

	// Worker side: a coordinator that never sends the hello frame.
	addrs, wait := startWorkers(t, 1, func(int) cluster.WorkerOptions {
		return cluster.WorkerOptions{HandshakeTimeout: 300 * time.Millisecond}
	})
	conn, err := net.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if werr := wait()[0]; werr == nil {
		t.Fatal("silent coordinator: worker returned nil, want handshake timeout")
	}
	checkNoGoroutineLeak(t, before)
}

// TestWorkerKilledMidLaunch is the failure-semantics drill: one of four
// workers dies abruptly mid-run (its launch-1 sends never happen, its
// sockets slam shut). The coordinator must identify the dead node and
// abort the whole run — no hang — and the survivors must exit, leaving
// no goroutines behind.
func TestWorkerKilledMidLaunch(t *testing.T) {
	const nodes = 4
	const victim = 2
	before := runtime.NumGoroutine()
	p := prog(t, nodes)
	addrs, wait := startWorkers(t, nodes, func(id int) cluster.WorkerOptions {
		if id == victim {
			// Default CrashFn: drop the control connection and abort the
			// mesh without a report — a process death in miniature.
			crashAt := 1
			return cluster.WorkerOptions{CrashAtLaunch: &crashAt}
		}
		return cluster.WorkerOptions{}
	})
	_, err := cluster.Join(p, exec.Config{Nodes: nodes, Steps: 1}, addrs,
		cluster.Options{AbortDrain: 2 * time.Second})
	if err == nil {
		t.Fatal("join succeeded despite a killed worker")
	}
	if !strings.Contains(err.Error(), "node 2 died") {
		t.Fatalf("join error = %v, want the dead node identified (node 2 died)", err)
	}
	errs := wait()
	if errs[victim] == nil {
		t.Error("crashed worker reported success")
	}
	checkNoGoroutineLeak(t, before)
}
