package cluster

import (
	"bufio"
	"fmt"
	"io"
	osexec "os/exec"
	"strings"
	"sync"
	"time"

	"autopart/internal/exec"
)

// AnnouncePrefix starts the one stdout line a spawned worker must print
// once its control listener is up: "NODE_LISTEN <host:port>". The
// coordinator scans stdout for it, so workers may log other lines first.
const AnnouncePrefix = "NODE_LISTEN "

// SpawnOptions configures Spawn.
type SpawnOptions struct {
	Options
	// Command is the worker argv. Each process must listen for one
	// control connection and print AnnouncePrefix + its address on
	// stdout (cmd/node does; so does cmd/run re-execing itself).
	Command []string
	// ExtraArgs, when non-nil, appends per-worker argv (the failure
	// drills use it to arm one worker's crash flag).
	ExtraArgs func(id int) []string
	// StderrTail bounds the per-worker stderr ring buffer attached to
	// crash reports (default 4096 bytes).
	StderrTail int
}

// Spawn starts cfg.Nodes worker processes, bootstraps them, runs prog,
// and reaps every process before returning. A worker that crashes is
// reported with its node id, exit status, and stderr tail; the
// remaining workers are aborted and killed rather than left to hang.
func Spawn(prog *exec.Program, cfg exec.Config, opts SpawnOptions) (*exec.Result, error) {
	opts.Options = opts.Options.withDefaults()
	if len(opts.Command) == 0 {
		return nil, fmt.Errorf("cluster: spawn: empty worker command")
	}
	if opts.StderrTail <= 0 {
		opts.StderrTail = 4096
	}
	ws := make([]*worker, 0, cfg.Nodes)
	defer func() {
		closeAll(ws)
		for _, w := range ws {
			reap(w)
		}
	}()
	for id := 0; id < cfg.Nodes; id++ {
		argv := append([]string(nil), opts.Command...)
		if opts.ExtraArgs != nil {
			argv = append(argv, opts.ExtraArgs(id)...)
		}
		w, err := startWorker(id, argv, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: worker %d: %w", id, err)
		}
		ws = append(ws, w)
	}
	return runCluster(prog, cfg, ws, opts.Options)
}

// startWorker launches one process, waits for its announce line, and
// dials its control address.
func startWorker(id int, argv []string, opts SpawnOptions) (*worker, error) {
	cmd := osexec.Command(argv[0], argv[1:]...)
	tail := &tailBuffer{max: opts.StderrTail}
	cmd.Stderr = tail
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("start %q: %w", argv[0], err)
	}

	died := make(chan struct{})
	var exitErr error
	go func() {
		exitErr = cmd.Wait()
		close(died)
	}()
	w := &worker{
		id:   id,
		tail: tail,
		died: died,
		exit: func() string {
			if exitErr != nil {
				return fmt.Sprintf("process exited: %v", exitErr)
			}
			return "process exited: status 0"
		},
		kill: func() {
			if cmd.Process != nil {
				cmd.Process.Kill()
			}
		},
	}

	addr, err := awaitAnnounce(stdout, died, opts.HandshakeTimeout)
	if err != nil {
		w.kill()
		reap(w)
		return nil, err
	}
	conn, err := dialRetry(addr, opts.DialBudget)
	if err != nil {
		w.kill()
		reap(w)
		return nil, fmt.Errorf("dial control %s: %w", addr, err)
	}
	w.conn = conn
	w.br = &ctrlReader{conn: conn, r: newBufReader(conn)}
	return w, nil
}

// awaitAnnounce scans the process's stdout for the announce line, then
// leaves a goroutine draining the rest of the stream so the child never
// blocks on a full stdout pipe.
func awaitAnnounce(stdout io.Reader, died <-chan struct{}, timeout time.Duration) (string, error) {
	type lineOrErr struct {
		addr string
		err  error
	}
	ch := make(chan lineOrErr, 1)
	go func() {
		br := bufio.NewReader(stdout)
		for {
			line, err := br.ReadString('\n')
			if s := strings.TrimSpace(line); strings.HasPrefix(s, AnnouncePrefix) {
				ch <- lineOrErr{addr: strings.TrimSpace(strings.TrimPrefix(s, AnnouncePrefix))}
				io.Copy(io.Discard, br)
				return
			}
			if err != nil {
				ch <- lineOrErr{err: fmt.Errorf("stdout closed before announce line: %w", err)}
				return
			}
		}
	}()
	select {
	case le := <-ch:
		if le.err != nil {
			return "", le.err
		}
		if le.addr == "" {
			return "", fmt.Errorf("empty announce line")
		}
		return le.addr, nil
	case <-died:
		// Give the scanner a moment to surface any partial line context.
		select {
		case le := <-ch:
			if le.addr != "" {
				return le.addr, nil
			}
		case <-time.After(100 * time.Millisecond):
		}
		return "", fmt.Errorf("process exited before announcing its address")
	case <-time.After(timeout):
		return "", fmt.Errorf("no announce line within %v", timeout)
	}
}

// reap waits briefly for a worker's process to exit on its own (it
// should: its control connection just closed), then hard-kills it. A
// nil or non-spawned worker is a no-op.
func reap(w *worker) {
	if w == nil || w.died == nil {
		return
	}
	select {
	case <-w.died:
		return
	case <-time.After(5 * time.Second):
	}
	w.kill()
	<-w.died
}

// tailBuffer keeps the last max bytes written to it: enough stderr to
// diagnose a crashed worker without buffering an unbounded log.
type tailBuffer struct {
	mu  sync.Mutex
	max int
	buf []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.max {
		t.buf = append(t.buf[:0], t.buf[len(t.buf)-t.max:]...)
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return strings.TrimSpace(string(t.buf))
}

func newBufReader(r io.Reader) io.Reader { return bufio.NewReader(r) }
