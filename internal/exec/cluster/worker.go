package cluster

import (
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"autopart/internal/exec"
)

// WorkerOptions configures one worker's run of the bootstrap protocol.
type WorkerOptions struct {
	// HandshakeTimeout bounds each bootstrap frame read (default 30s —
	// the coordinator may be compiling or spawning siblings between
	// frames).
	HandshakeTimeout time.Duration
	// DialBudget bounds each data-plane peer dial (default 10s).
	DialBudget time.Duration
	// CrashAtLaunch, when non-nil, crashes this worker the first time
	// its node sends a step-0 message for that launch index — a
	// deterministic mid-run death for the failure drills. The crash is
	// CrashFn, or an abrupt connection teardown when CrashFn is nil
	// (cmd/node installs os.Exit so the process genuinely dies). A
	// pointer so the zero value is unambiguously "never crash".
	CrashAtLaunch *int
	// CrashFn overrides how CrashAtLaunch crashes (nil = drop the
	// control connection and abort the mesh without reporting).
	CrashFn func()
	// Logf, when non-nil, receives progress lines (cmd/node wires it to
	// stderr).
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 30 * time.Second
	}
	return o
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// WorkerMain is the whole life of a worker process: listen on
// listenAddr (host:port, port 0 for ephemeral), print the announce line
// on stdout, serve exactly one run, and return. cmd/node is a thin
// wrapper over it.
func WorkerMain(listenAddr string, stdout io.Writer, opts WorkerOptions) error {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("cluster: worker: listen %s: %w", listenAddr, err)
	}
	fmt.Fprintf(stdout, "%s%s\n", AnnouncePrefix, ln.Addr())
	return ServeWorker(ln, opts)
}

// ServeWorker accepts one coordinator connection on ln, runs the
// bootstrap protocol and the node it assigns, reports the result (or an
// abort frame naming the failure), and returns once the coordinator is
// done with the connection. It owns ln and closes it.
func ServeWorker(ln net.Listener, opts WorkerOptions) error {
	opts = opts.withDefaults()
	defer ln.Close()
	if tl, ok := ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Now().Add(opts.HandshakeTimeout))
	}
	conn, err := ln.Accept()
	if err != nil {
		return fmt.Errorf("cluster: worker: accept coordinator: %w", err)
	}
	ln.Close()
	defer conn.Close()
	return serveConn(conn, opts)
}

func serveConn(conn net.Conn, opts WorkerOptions) error {
	br := &ctrlReader{conn: conn, r: newBufReader(conn)}

	// refuse reports a bootstrap failure to the coordinator (so it can
	// name this worker's reason rather than just a dead connection) and
	// returns the error for the caller.
	refuse := func(err error) error {
		wc := &exec.Ctrl{Kind: exec.CtrlAbort, Text: err.Error()}
		writeCtrlTimeout(conn, wc, opts.HandshakeTimeout)
		return err
	}

	// Hello: identity and run shape.
	hello, err := br.readCtrl(opts.HandshakeTimeout)
	if err != nil {
		return fmt.Errorf("cluster: worker: read hello: %w", err)
	}
	if hello.Kind != exec.CtrlHello {
		return refuse(fmt.Errorf("cluster: worker: expected hello, got %v", hello.Kind))
	}
	if hello.Nodes < 1 || hello.Node < 0 || hello.Node >= hello.Nodes {
		return refuse(fmt.Errorf("cluster: worker: bad identity: node %d of %d", hello.Node, hello.Nodes))
	}
	id := hello.Node
	cfg := exec.Config{Nodes: hello.Nodes, Steps: hello.Steps, BytesPerElem: hello.BytesPerElem}
	opts.logf("node %d/%d: hello (steps=%d)", id, cfg.Nodes, cfg.Steps)

	// Data-plane listener on the same interface the coordinator reached
	// us by, so the advertised address works across hosts.
	dataLn, err := net.Listen("tcp", net.JoinHostPort(localHost(conn), "0"))
	if err != nil {
		return refuse(fmt.Errorf("cluster: worker %d: data listener: %w", id, err))
	}
	closeDataLn := true
	defer func() {
		if closeDataLn {
			dataLn.Close()
		}
	}()
	reply := &exec.Ctrl{Kind: exec.CtrlHello, Node: id, Text: dataLn.Addr().String()}
	if err := writeCtrlTimeout(conn, reply, opts.HandshakeTimeout); err != nil {
		return fmt.Errorf("cluster: worker %d: send hello reply: %w", id, err)
	}

	// Topology, then the program blob.
	topo, err := br.readCtrl(opts.HandshakeTimeout)
	if err != nil {
		return fmt.Errorf("cluster: worker %d: read topology: %w", id, err)
	}
	if topo.Kind != exec.CtrlTopology || len(topo.Addrs) != cfg.Nodes {
		return refuse(fmt.Errorf("cluster: worker %d: bad topology frame (kind=%v, %d addrs for %d nodes)",
			id, topo.Kind, len(topo.Addrs), cfg.Nodes))
	}
	progFrame, err := br.readCtrl(opts.HandshakeTimeout)
	if err != nil {
		return fmt.Errorf("cluster: worker %d: read program: %w", id, err)
	}
	if progFrame.Kind != exec.CtrlProgram {
		return refuse(fmt.Errorf("cluster: worker %d: expected program frame, got %v", id, progFrame.Kind))
	}
	prog, err := exec.DecodeProgram(progFrame.Blob)
	if err != nil {
		return refuse(fmt.Errorf("cluster: worker %d: decode program: %w", id, err))
	}
	opts.logf("node %d: program received (%d bytes), building mesh", id, len(progFrame.Blob))

	// Build the data plane: accept peers on dataLn, dial everyone else.
	var (
		meshMu sync.Mutex
		mesh   *exec.Mesh
	)
	var crashOnce sync.Once
	var hook func(to, step, launch int)
	if opts.CrashAtLaunch != nil {
		crashLaunch := *opts.CrashAtLaunch
		hook = func(to, step, launch int) {
			if step == 0 && launch == crashLaunch {
				crashOnce.Do(func() {
					if opts.CrashFn != nil {
						opts.CrashFn()
						return
					}
					// Abrupt death without a report: the control
					// connection drops and the mesh streams slam shut,
					// exactly what a crashed process looks like.
					conn.Close()
					meshMu.Lock()
					m := mesh
					meshMu.Unlock()
					if m != nil {
						m.Abort()
					}
				})
			}
		}
	}
	m, err := exec.NewMesh(exec.MeshConfig{
		Self:       id,
		Nodes:      cfg.Nodes,
		Listener:   dataLn,
		Peers:      topo.Addrs,
		DialBudget: opts.DialBudget,
		SendHook:   hook,
	})
	if err != nil {
		return refuse(fmt.Errorf("cluster: worker %d: mesh: %w", id, err))
	}
	closeDataLn = false // the mesh owns it now
	meshMu.Lock()
	mesh = m
	meshMu.Unlock()

	// teardown releases the mesh on every exit path. RunNode's receiver
	// consumes the inbox when it runs; the drain goroutine covers paths
	// where it never did (it exits as soon as the aborted streams EOF).
	teardown := func() {
		m.Abort()
		m.CloseSend(id)
		go func() {
			for range m.Inbox(id) {
			}
		}()
		m.Close()
	}

	if err := writeCtrlTimeout(conn, &exec.Ctrl{Kind: exec.CtrlReady}, opts.HandshakeTimeout); err != nil {
		teardown()
		return fmt.Errorf("cluster: worker %d: send ready: %w", id, err)
	}
	start, err := br.readCtrl(opts.HandshakeTimeout)
	if err != nil {
		teardown()
		return fmt.Errorf("cluster: worker %d: read start: %w", id, err)
	}
	if start.Kind == exec.CtrlAbort {
		teardown()
		return fmt.Errorf("cluster: worker %d: aborted before start: %s", id, start.Text)
	}
	if start.Kind != exec.CtrlStart {
		teardown()
		return refuse(fmt.Errorf("cluster: worker %d: expected start frame, got %v", id, start.Kind))
	}

	// The monitor watches the control connection during the run: an
	// abort frame (or the coordinator dying) tears the mesh down so the
	// node fails fast instead of waiting on peers that were told to
	// stop. On a clean run it ends when the coordinator closes the
	// connection after collecting every result.
	monDone := make(chan struct{})
	var monMu sync.Mutex
	var monReason string
	go func() {
		defer close(monDone)
		c, err := br.readCtrl(0)
		monMu.Lock()
		switch {
		case err == nil && c.Kind == exec.CtrlAbort:
			monReason = c.Text
		case err == nil:
			monReason = fmt.Sprintf("unexpected %v frame mid-run", c.Kind)
		default:
			monReason = fmt.Sprintf("coordinator connection lost: %v", err)
		}
		monMu.Unlock()
		m.Abort()
	}()

	opts.logf("node %d: running", id)
	res, runErr := exec.RunNode(prog, cfg, id, m)
	if runErr == nil {
		// Waits for the stream goroutines, surfacing any deferred
		// socket failure the same way exec.Run checks its transport.
		m.Close()
		if err := m.Err(); err != nil {
			runErr = err
		}
	}
	if runErr != nil {
		monMu.Lock()
		reason := monReason
		monMu.Unlock()
		if reason != "" {
			// The coordinator stopped us; our node error is the
			// consequence, not the cause.
			runErr = fmt.Errorf("cluster: worker %d: run aborted (%s): %w", id, reason, runErr)
		} else {
			runErr = fmt.Errorf("cluster: worker %d: %w", id, runErr)
		}
		writeCtrlTimeout(conn, &exec.Ctrl{Kind: exec.CtrlAbort, Node: id, Text: runErr.Error()}, opts.HandshakeTimeout)
		teardown()
		conn.Close()
		<-monDone
		return runErr
	}

	blob, err := exec.EncodeNodeResult(res)
	if err != nil {
		err = fmt.Errorf("cluster: worker %d: serialize result: %w", id, err)
		writeCtrlTimeout(conn, &exec.Ctrl{Kind: exec.CtrlAbort, Node: id, Text: err.Error()}, opts.HandshakeTimeout)
		conn.Close()
		<-monDone
		return err
	}
	if err := writeCtrlTimeout(conn, &exec.Ctrl{Kind: exec.CtrlResult, Node: id, Blob: blob}, opts.HandshakeTimeout); err != nil {
		conn.Close()
		<-monDone
		return fmt.Errorf("cluster: worker %d: send result: %w", id, err)
	}
	opts.logf("node %d: result sent (%d bytes)", id, len(blob))

	// Linger until the coordinator closes the connection: that is the
	// acknowledgment that the result frame was consumed, so closing our
	// side cannot revoke it.
	select {
	case <-monDone:
	case <-time.After(opts.HandshakeTimeout):
	}
	conn.Close()
	<-monDone
	return nil
}

func writeCtrlTimeout(conn net.Conn, c *exec.Ctrl, timeout time.Duration) error {
	if timeout > 0 {
		conn.SetWriteDeadline(time.Now().Add(timeout))
		defer conn.SetWriteDeadline(time.Time{})
	}
	return exec.WriteCtrl(conn, c)
}

// localHost is the host half of the connection's local address — the
// interface the coordinator actually reached, which is therefore a
// reasonable one to advertise for the data plane.
func localHost(conn net.Conn) string {
	host, _, err := net.SplitHostPort(conn.LocalAddr().String())
	if err != nil || host == "" {
		return "127.0.0.1"
	}
	return host
}
