// Package exec is the distributed SPMD executor: it actually runs a
// compiled program's task plan on N goroutine-backed nodes, where the
// rest of the repo only models that execution (package sim prices it,
// package rewrite checks it sequentially).
//
// Each node owns the subregions the solved partitions assign to its
// color and holds a full-size local copy of every region, of which only
// the owned elements (plus freshly fetched ghosts) are valid.
// Valid-instance tracking mirrors package sim exactly: a field's owner
// partition says which node holds each element's up-to-date value,
// writes move ownership to the writing partition, and ghosts are
// refetched every launch. Before a launch, every ReadOnly/ReadWrite
// requirement pulls its subregion's remote-owned part from the owners;
// after it, §5.1 guarded reductions ship remote-owned results back and
// unguarded reductions merge per-node buffers to the owners in a fixed
// color order (see rewrite.MergeShardReductions) — which is why results
// are bit-identical to the sequential executor on any node count.
//
// All data moves as messages over per-pair FIFO pipes; nodes never
// share mutable memory. Each node computes the full send/receive
// schedule from replicated read-only metadata (partitions and its own
// copy of the owner map, updated identically everywhere), so no
// barriers are needed: bulk synchrony emerges from FIFO matching. The
// executor measures the traffic it generates in the same units sim
// predicts (sim.NodeStats), making prediction error directly testable.
package exec

import (
	"fmt"
	"sort"
	"sync"

	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/runtime"
	"autopart/internal/sim"
)

// Config parameterizes a run.
type Config struct {
	// Nodes is the number of executor nodes (colors). Every partition in
	// the program must have exactly this many subregions.
	Nodes int
	// Steps is the number of main-loop iterations (default 1).
	Steps int
	// BytesPerElem is the accounting size of one element of one field,
	// matching sim.Model.BytesPerElem (default 8).
	BytesPerElem float64
}

// Program is an executable instance: a machine holding the initial
// data, the task plan, the evaluated partitions, and the initial
// valid-instance distribution.
type Program struct {
	Machine *ir.Machine
	Plan    *runtime.Plan
	Parts   map[string]*region.Partition
	// Owners is the initial owner partition per field (the same state a
	// sim run starts from). Run does not mutate it.
	Owners *sim.State
}

// LaunchComm is the measured communication of one launch, in the units
// sim.LaunchStats predicts. ComputeUnits stays zero: compute cost is
// analytic-only in the model and has no measured counterpart.
type LaunchComm struct {
	Name       string
	Nodes      []sim.NodeStats
	TotalBytes float64
	TotalMsgs  int
}

// StepComm is the measured communication of one main-loop iteration.
type StepComm struct {
	Launches   []LaunchComm
	TotalBytes float64
	TotalMsgs  int
}

// Result is the outcome of a run: the gathered final data and the
// measured per-step communication.
type Result struct {
	Machine *ir.Machine
	Steps   []StepComm
}

// TotalBytes sums shipped bytes over all steps.
func (r *Result) TotalBytes() float64 {
	var total float64
	for _, s := range r.Steps {
		total += s.TotalBytes
	}
	return total
}

// TotalMsgs sums messages over all steps.
func (r *Result) TotalMsgs() int {
	total := 0
	for _, s := range r.Steps {
		total += s.TotalMsgs
	}
	return total
}

// cloneMachine deep-clones region data, sharing the immutable funcs and
// extern partitions.
func cloneMachine(m *ir.Machine) *ir.Machine {
	out := &ir.Machine{
		Regions:    map[string]*region.Region{},
		Funcs:      m.Funcs,
		Partitions: m.Partitions,
	}
	for name, r := range m.Regions {
		out.Regions[name] = r.CloneData()
	}
	return out
}

// cloneOwners copies the owner map so each node can evolve its replica
// independently (they stay identical by determinism).
func cloneOwners(st *sim.State) map[sim.FieldKey]*region.Partition {
	out := make(map[sim.FieldKey]*region.Partition, len(st.Owners))
	for k, p := range st.Owners {
		out[k] = p
	}
	return out
}

// validate checks the program against the config before spawning nodes.
func validate(prog *Program, cfg Config) error {
	if cfg.Nodes < 1 {
		return fmt.Errorf("exec: need at least 1 node, got %d", cfg.Nodes)
	}
	for sym, p := range prog.Parts {
		if p.NumSubs() != cfg.Nodes {
			return fmt.Errorf("exec: partition %q has %d colors, want %d", sym, p.NumSubs(), cfg.Nodes)
		}
	}
	if prog.Owners == nil {
		return fmt.Errorf("exec: program has no initial owner state")
	}
	for fk, p := range prog.Owners.Owners {
		if p.NumSubs() != cfg.Nodes {
			return fmt.Errorf("exec: owner of %s.%s has %d colors, want %d", fk.Region, fk.Field, p.NumSubs(), cfg.Nodes)
		}
		r := prog.Machine.Regions[fk.Region]
		if r == nil || !r.HasField(fk.Field) {
			return fmt.Errorf("exec: owner declared for unknown field %s.%s", fk.Region, fk.Field)
		}
	}
	for _, t := range prog.Plan.Tasks {
		if _, ok := prog.Parts[t.Launch.IterSym]; !ok {
			return fmt.Errorf("exec: launch %s: unbound iteration partition %q", t.Launch.Name, t.Launch.IterSym)
		}
		for _, req := range t.Launch.Reqs {
			if _, ok := prog.Parts[req.Sym]; !ok {
				return fmt.Errorf("exec: launch %s: unbound partition %q", t.Launch.Name, req.Sym)
			}
			if req.PrivateSym != "" {
				if _, ok := prog.Parts[req.PrivateSym]; !ok {
					return fmt.Errorf("exec: launch %s: unbound private partition %q", t.Launch.Name, req.PrivateSym)
				}
			}
			if req.TouchedSym != "" {
				if _, ok := prog.Parts[req.TouchedSym]; !ok {
					return fmt.Errorf("exec: launch %s: unbound touched partition %q", t.Launch.Name, req.TouchedSym)
				}
			}
		}
	}
	return nil
}

// Run executes the program's plan cfg.Steps times on cfg.Nodes nodes
// and gathers the distributed final state back into one machine.
func Run(prog *Program, cfg Config) (*Result, error) {
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	if cfg.BytesPerElem == 0 {
		cfg.BytesPerElem = sim.Default().BytesPerElem
	}
	if err := validate(prog, cfg); err != nil {
		return nil, err
	}
	n := cfg.Nodes

	// Per-pair FIFO pipes with unbounded elasticity (see pipe).
	ins := make([][]chan message, n)
	outs := make([][]chan message, n)
	for from := 0; from < n; from++ {
		ins[from] = make([]chan message, n)
		outs[from] = make([]chan message, n)
		for to := 0; to < n; to++ {
			if to == from {
				continue
			}
			ins[from][to] = make(chan message)
			outs[from][to] = make(chan message)
			go pipe(ins[from][to], outs[from][to])
		}
	}

	nodes := make([]*node, n)
	for j := 0; j < n; j++ {
		nodes[j] = &node{
			id:     j,
			cfg:    cfg,
			prog:   prog,
			m:      cloneMachine(prog.Machine),
			owners: cloneOwners(prog.Owners),
			sendTo: ins[j],
			recvAt: make([]chan message, n),
			stats:  make([][]sim.NodeStats, cfg.Steps),
		}
		for from := 0; from < n; from++ {
			if from == j {
				continue
			}
			nodes[j].recvAt[from] = outs[from][j]
		}
	}

	errs := make([]error, n)
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(nd *node) {
			defer wg.Done()
			// Closing the node's send pipes on exit (normal or error)
			// unblocks peers: pipes drain, then receivers see EOF and
			// fail loudly instead of deadlocking.
			defer func() {
				for _, ch := range nd.sendTo {
					if ch != nil {
						close(ch)
					}
				}
			}()
			errs[nd.id] = nd.run()
		}(nodes[j])
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exec: node %d: %w", j, err)
		}
	}

	final, err := gather(prog, nodes)
	if err != nil {
		return nil, err
	}
	res := &Result{Machine: final}
	for step := 0; step < cfg.Steps; step++ {
		sc := StepComm{}
		for li, t := range prog.Plan.Tasks {
			lc := LaunchComm{Name: t.Launch.Name, Nodes: make([]sim.NodeStats, n)}
			for j := 0; j < n; j++ {
				ns := nodes[j].stats[step][li]
				lc.Nodes[j] = ns
				lc.TotalBytes += ns.BytesOut
				lc.TotalMsgs += ns.MsgsOut
			}
			sc.TotalBytes += lc.TotalBytes
			sc.TotalMsgs += lc.TotalMsgs
			sc.Launches = append(sc.Launches, lc)
		}
		res.Steps = append(res.Steps, sc)
	}
	return res, nil
}

// gather assembles the final global state: for every field, each
// element's value comes from its final owner's local copy, in ascending
// color order. Elements outside the final owner's union keep their
// initial values — under the coherence protocol they have no valid copy
// anywhere, and reading them in a later launch would have failed loudly.
func gather(prog *Program, nodes []*node) (*ir.Machine, error) {
	out := cloneMachine(prog.Machine)
	// Replay the deterministic ownership evolution to its final state.
	owners := cloneOwners(prog.Owners)
	for step := 0; step < len(nodes[0].stats); step++ {
		for _, t := range prog.Plan.Tasks {
			for _, req := range t.Launch.Reqs {
				if req.Priv != runtime.ReadWrite && req.Priv != runtime.WriteDiscard {
					continue
				}
				for _, f := range req.Fields {
					owners[sim.FieldKey{Region: req.Region, Field: f}] = prog.Parts[req.Sym]
				}
			}
		}
	}
	fks := make([]sim.FieldKey, 0, len(owners))
	for fk := range owners {
		fks = append(fks, fk)
	}
	sort.Slice(fks, func(i, j int) bool {
		if fks[i].Region != fks[j].Region {
			return fks[i].Region < fks[j].Region
		}
		return fks[i].Field < fks[j].Field
	})
	for _, fk := range fks {
		owner := owners[fk]
		for c := 0; c < len(nodes); c++ {
			r := nodes[c].m.Regions[fk.Region]
			if r == nil {
				return nil, fmt.Errorf("exec: gather: owner declared for unknown region %q", fk.Region)
			}
			msg, err := packField(r, fk.Field, owner.Sub(c))
			if err != nil {
				return nil, err
			}
			if err := installField(out.Regions[fk.Region], fk.Field, &msg); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// RunSequentialReference executes the same plan with the sequential
// parallel-semantics executor (rewrite.Executor) for steps iterations:
// the bit-exact reference the distributed run must reproduce.
func RunSequentialReference(prog *Program, steps int) (*ir.Machine, error) {
	if steps <= 0 {
		steps = 1
	}
	m := cloneMachine(prog.Machine)
	ex := rewrite.NewExecutor(m)
	for sym, p := range prog.Parts {
		ex.Bind(sym, p)
	}
	for s := 0; s < steps; s++ {
		for _, t := range prog.Plan.Tasks {
			if err := ex.RunLaunch(t.Loop); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}
