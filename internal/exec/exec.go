// Package exec is the distributed SPMD executor: it actually runs a
// compiled program's task plan on N goroutine-backed nodes, where the
// rest of the repo only models that execution (package sim prices it,
// package rewrite checks it sequentially).
//
// Each node owns the subregions the solved partitions assign to its
// color and holds a full-size local copy of every region, of which only
// the owned elements (plus freshly fetched ghosts) are valid.
// Valid-instance tracking mirrors package sim exactly: a field's owner
// partition says which node holds each element's up-to-date value,
// writes move ownership to the writing partition, and ghosts are
// refetched every launch. Before a launch, every ReadOnly/ReadWrite
// requirement pulls its subregion's remote-owned part from the owners;
// after it, §5.1 guarded reductions ship remote-owned results back and
// unguarded reductions merge per-node buffers to the owners in a fixed
// color order (see rewrite.MergeShardReductions) — which is why results
// are bit-identical to the sequential executor on any node count.
//
// Execution is dependency-driven, not bulk-synchronous. Each node
// derives, from replicated read-only metadata (partitions and its own
// replica of the owner map, updated identically everywhere), the exact
// set of messages every (step, launch) pair will receive (see
// buildSched), issues all of a launch's sends before blocking on any
// receive, and starts the shard the moment its last ghost dependency
// lands. Write-back receives and reduction folds are deferred until a
// later launch touches the fields they write (or the run ends), so a
// launch whose fields are disjoint from in-flight write-backs computes
// while that communication is still in the air. Deadlock freedom:
// sends never block (transports buffer unboundedly), so the only waits
// are receives, and every expected message is sent by a peer running
// the identical replicated schedule. Determinism survives because
// deliveries are matched by tag rather than arrival order, and every
// same-field write sequence (ghost installs, ship installs, ordered
// folds) happens in the launch order the sequential executor uses.
//
// All data moves as messages through a Transport (in-process queues by
// default, loopback TCP, or a latency-injecting chaos transport); nodes
// never share mutable memory. The executor measures the traffic it
// generates in the same units sim predicts (sim.NodeStats), making
// prediction error directly testable, and times each launch's compute
// and communication overlap (NodeTiming).
package exec

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/runtime"
	"autopart/internal/sim"
)

// Config parameterizes a run.
type Config struct {
	// Nodes is the number of executor nodes (colors). Every partition in
	// the program must have exactly this many subregions.
	Nodes int
	// Steps is the number of main-loop iterations (default 1).
	Steps int
	// BytesPerElem is the accounting size of one element of one field,
	// matching sim.Model.BytesPerElem (default 8).
	BytesPerElem float64
	// Transport builds the message fabric (default InprocTransport()).
	Transport TransportFactory
}

// Program is an executable instance: a machine holding the initial
// data, the task plan, the evaluated partitions, and the initial
// valid-instance distribution.
type Program struct {
	Machine *ir.Machine
	Plan    *runtime.Plan
	Parts   map[string]*region.Partition
	// Owners is the initial owner partition per field (the same state a
	// sim run starts from). Run does not mutate it.
	Owners *sim.State
}

// NodeTiming is one node's measured wall-clock for one launch.
type NodeTiming struct {
	// WallNS is time spent driving this launch: scheduling, sends,
	// receives, compute, plus any deferred finish work later settled on
	// its behalf.
	WallNS int64
	// ComputeNS is the shard execution window.
	ComputeNS int64
	// OverlapNS is the part of the compute window during which at least
	// one expected write-back message (this launch's or an earlier
	// deferred one's) had not yet arrived — compute genuinely hiding
	// communication latency.
	OverlapNS int64
}

// LaunchComm is the measured communication of one launch, in the units
// sim.LaunchStats predicts. ComputeUnits stays zero: compute cost is
// analytic-only in the model and has no measured counterpart.
type LaunchComm struct {
	Name       string
	Nodes      []sim.NodeStats
	Times      []NodeTiming
	TotalBytes float64
	TotalMsgs  int
}

// StepComm is the measured communication of one main-loop iteration.
type StepComm struct {
	Launches   []LaunchComm
	TotalBytes float64
	TotalMsgs  int
}

// Result is the outcome of a run: the gathered final data and the
// measured per-step communication.
type Result struct {
	Machine *ir.Machine
	Steps   []StepComm
}

// TotalBytes sums shipped bytes over all steps.
func (r *Result) TotalBytes() float64 {
	var total float64
	for _, s := range r.Steps {
		total += s.TotalBytes
	}
	return total
}

// TotalMsgs sums messages over all steps.
func (r *Result) TotalMsgs() int {
	total := 0
	for _, s := range r.Steps {
		total += s.TotalMsgs
	}
	return total
}

// cloneMachine deep-clones region data, sharing the immutable funcs and
// extern partitions.
func cloneMachine(m *ir.Machine) *ir.Machine {
	out := &ir.Machine{
		Regions:    map[string]*region.Region{},
		Funcs:      m.Funcs,
		Partitions: m.Partitions,
	}
	for name, r := range m.Regions {
		out.Regions[name] = r.CloneData()
	}
	return out
}

// cloneOwners copies the owner map so each node can evolve its replica
// independently (they stay identical by determinism).
func cloneOwners(st *sim.State) map[sim.FieldKey]*region.Partition {
	out := make(map[sim.FieldKey]*region.Partition, len(st.Owners))
	for k, p := range st.Owners {
		out[k] = p
	}
	return out
}

// validate checks the program against the config before spawning nodes.
func validate(prog *Program, cfg Config) error {
	if cfg.Nodes < 1 {
		return fmt.Errorf("exec: need at least 1 node, got %d", cfg.Nodes)
	}
	for sym, p := range prog.Parts {
		if p.NumSubs() != cfg.Nodes {
			return fmt.Errorf("exec: partition %q has %d colors, want %d", sym, p.NumSubs(), cfg.Nodes)
		}
	}
	if prog.Owners == nil {
		return fmt.Errorf("exec: program has no initial owner state")
	}
	for fk, p := range prog.Owners.Owners {
		if p.NumSubs() != cfg.Nodes {
			return fmt.Errorf("exec: owner of %s.%s has %d colors, want %d", fk.Region, fk.Field, p.NumSubs(), cfg.Nodes)
		}
		r := prog.Machine.Regions[fk.Region]
		if r == nil || !r.HasField(fk.Field) {
			return fmt.Errorf("exec: owner declared for unknown field %s.%s", fk.Region, fk.Field)
		}
	}
	for _, t := range prog.Plan.Tasks {
		if _, ok := prog.Parts[t.Launch.IterSym]; !ok {
			return fmt.Errorf("exec: launch %s: unbound iteration partition %q", t.Launch.Name, t.Launch.IterSym)
		}
		for _, req := range t.Launch.Reqs {
			if _, ok := prog.Parts[req.Sym]; !ok {
				return fmt.Errorf("exec: launch %s: unbound partition %q", t.Launch.Name, req.Sym)
			}
			if req.PrivateSym != "" {
				if _, ok := prog.Parts[req.PrivateSym]; !ok {
					return fmt.Errorf("exec: launch %s: unbound private partition %q", t.Launch.Name, req.PrivateSym)
				}
			}
			if req.TouchedSym != "" {
				if _, ok := prog.Parts[req.TouchedSym]; !ok {
					return fmt.Errorf("exec: launch %s: unbound touched partition %q", t.Launch.Name, req.TouchedSym)
				}
			}
		}
	}
	return nil
}

// applyDefaults fills the zero-value Config fields in place.
func applyDefaults(cfg *Config) {
	if cfg.Steps <= 0 {
		cfg.Steps = 1
	}
	if cfg.BytesPerElem == 0 {
		cfg.BytesPerElem = sim.Default().BytesPerElem
	}
}

// NodeResult is one node's share of a run's outcome: its per-step,
// per-launch measured statistics and timings, plus the final values of
// the elements it owns (packed per field in the deterministic gather
// order). RunNode produces one; AssembleResult recombines one per node
// into a Result; EncodeNodeResult moves one across a process boundary.
type NodeResult struct {
	ID    int
	Stats [][]sim.NodeStats
	Times [][]NodeTiming
	// final holds one packed piece per entry of finalOwners (sorted
	// field keys): this node's owned slice of the field, with the
	// region/field names stamped for cross-process validation.
	final []message
}

// RunNode executes node id's share of the program against tr: the
// single-node body of Run, exported so a worker process can run exactly
// one color of a multi-process deployment. It drives the node's launch
// loop and its inbox receiver, then packs the node's finally-owned data.
// The caller owns the transport's lifecycle (deferred Err, Close).
func RunNode(prog *Program, cfg Config, id int, tr Transport) (*NodeResult, error) {
	applyDefaults(&cfg)
	if err := validate(prog, cfg); err != nil {
		return nil, err
	}
	if id < 0 || id >= cfg.Nodes {
		return nil, fmt.Errorf("exec: node id %d out of range [0, %d)", id, cfg.Nodes)
	}
	nd := &node{
		id:     id,
		cfg:    cfg,
		prog:   prog,
		m:      cloneMachine(prog.Machine),
		owners: cloneOwners(prog.Owners),
		tr:     tr,
		mb:     newMailbox(),
		stats:  make([][]sim.NodeStats, cfg.Steps),
		times:  make([][]NodeTiming, cfg.Steps),
	}

	// The receiver drains the merged inbox into the mailbox; eof
	// sentinels become peer-death marks so a blocked take fails instead
	// of hanging.
	var rwg sync.WaitGroup
	rwg.Add(1)
	go func() {
		defer rwg.Done()
		for m := range tr.Inbox(id) {
			if m.kind == eofMsg {
				nd.mb.peerDead(m.from)
				continue
			}
			nd.mb.put(m)
		}
		nd.mb.close()
	}()

	runErr := nd.run()
	// Closing the send side on exit (normal or error) unblocks peers:
	// queued messages drain, then receivers see the death and fail
	// loudly instead of deadlocking.
	tr.CloseSend(id)
	rwg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if err := nd.mb.leftoverErr(); err != nil {
		return nil, err
	}

	nr := &NodeResult{ID: id, Stats: nd.stats, Times: nd.times}
	for _, fo := range finalOwners(prog, cfg.Steps) {
		r := nd.m.Regions[fo.key.Region]
		if r == nil {
			return nil, fmt.Errorf("exec: gather: owner declared for unknown region %q", fo.key.Region)
		}
		msg, err := packField(r, fo.key.Field, fo.owner.Sub(id))
		if err != nil {
			return nil, err
		}
		msg.region, msg.field = fo.key.Region, fo.key.Field
		nr.final = append(nr.final, msg)
	}
	return nr, nil
}

// finalOwner pairs a field with its owner partition after the run's
// deterministic ownership evolution.
type finalOwner struct {
	key   sim.FieldKey
	owner *region.Partition
}

// finalOwners replays the ownership evolution to its final state and
// returns (field, owner) pairs in sorted field-key order — the shared
// gather order both RunNode (packing) and AssembleResult (installing)
// iterate in.
func finalOwners(prog *Program, steps int) []finalOwner {
	owners := cloneOwners(prog.Owners)
	for step := 0; step < steps; step++ {
		for _, t := range prog.Plan.Tasks {
			for _, req := range t.Launch.Reqs {
				if req.Priv != runtime.ReadWrite && req.Priv != runtime.WriteDiscard {
					continue
				}
				// Mirror the nodes' move exactly, including the
				// disjointification of aliased writing partitions.
				for _, f := range req.Fields {
					owners[sim.FieldKey{Region: req.Region, Field: f}] = sim.OwnerView(prog.Parts[req.Sym])
				}
			}
		}
	}
	out := make([]finalOwner, 0, len(owners))
	for fk, p := range owners {
		out = append(out, finalOwner{fk, p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].key.Region != out[j].key.Region {
			return out[i].key.Region < out[j].key.Region
		}
		return out[i].key.Field < out[j].key.Field
	})
	return out
}

// AssembleResult combines one NodeResult per color into the run's
// Result: for every field, each element's final value comes from its
// final owner's packed piece, installed in ascending color order (the
// same order gather always used, so assembly is bit-identical whether
// the results crossed a process boundary or not). Elements outside the
// final owner's union keep their initial values — under the coherence
// protocol they have no valid copy anywhere.
func AssembleResult(prog *Program, cfg Config, results []*NodeResult) (*Result, error) {
	applyDefaults(&cfg)
	n := cfg.Nodes
	if len(results) != n {
		return nil, fmt.Errorf("exec: assemble: %d node results for %d nodes", len(results), n)
	}
	fos := finalOwners(prog, cfg.Steps)
	for j, nr := range results {
		if nr == nil {
			return nil, fmt.Errorf("exec: assemble: missing result for node %d", j)
		}
		if nr.ID != j {
			return nil, fmt.Errorf("exec: assemble: result %d claims node id %d", j, nr.ID)
		}
		if len(nr.Stats) != cfg.Steps || len(nr.Times) != cfg.Steps {
			return nil, fmt.Errorf("exec: assemble: node %d reports %d/%d steps, want %d", j, len(nr.Stats), len(nr.Times), cfg.Steps)
		}
		if len(nr.final) != len(fos) {
			return nil, fmt.Errorf("exec: assemble: node %d packed %d field pieces, want %d", j, len(nr.final), len(fos))
		}
	}

	final := cloneMachine(prog.Machine)
	for i, fo := range fos {
		out := final.Regions[fo.key.Region]
		if out == nil {
			return nil, fmt.Errorf("exec: gather: owner declared for unknown region %q", fo.key.Region)
		}
		for c := 0; c < n; c++ {
			piece := &results[c].final[i]
			if piece.region != fo.key.Region || piece.field != fo.key.Field || !piece.set.Equal(fo.owner.Sub(c)) {
				return nil, fmt.Errorf("exec: assemble: node %d piece %d is %s.%s %s, want %s.%s %s",
					c, i, piece.region, piece.field, piece.set, fo.key.Region, fo.key.Field, fo.owner.Sub(c))
			}
			if err := installField(out, fo.key.Field, piece); err != nil {
				return nil, err
			}
		}
	}

	res := &Result{Machine: final}
	for step := 0; step < cfg.Steps; step++ {
		sc := StepComm{}
		for li, t := range prog.Plan.Tasks {
			lc := LaunchComm{
				Name:  t.Launch.Name,
				Nodes: make([]sim.NodeStats, n),
				Times: make([]NodeTiming, n),
			}
			for j := 0; j < n; j++ {
				if len(results[j].Stats[step]) != len(prog.Plan.Tasks) {
					return nil, fmt.Errorf("exec: assemble: node %d step %d reports %d launches, want %d",
						j, step, len(results[j].Stats[step]), len(prog.Plan.Tasks))
				}
				ns := results[j].Stats[step][li]
				lc.Nodes[j] = ns
				lc.Times[j] = results[j].Times[step][li]
				lc.TotalBytes += ns.BytesOut
				lc.TotalMsgs += ns.MsgsOut
			}
			sc.TotalBytes += lc.TotalBytes
			sc.TotalMsgs += lc.TotalMsgs
			sc.Launches = append(sc.Launches, lc)
		}
		res.Steps = append(res.Steps, sc)
	}
	return res, nil
}

// Run executes the program's plan cfg.Steps times on cfg.Nodes nodes
// and gathers the distributed final state back into one machine. All
// nodes run in this process as goroutines; package exec/cluster runs
// the same RunNode bodies in separate worker processes.
func Run(prog *Program, cfg Config) (*Result, error) {
	applyDefaults(&cfg)
	if cfg.Transport == nil {
		cfg.Transport = InprocTransport()
	}
	if err := validate(prog, cfg); err != nil {
		return nil, err
	}
	n := cfg.Nodes

	tr, err := cfg.Transport(n)
	if err != nil {
		return nil, fmt.Errorf("exec: transport: %w", err)
	}

	results := make([]*NodeResult, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for j := 0; j < n; j++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id], errs[id] = RunNode(prog, cfg, id, tr)
		}(j)
	}
	wg.Wait()
	for j, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("exec: node %d: %w", j, err)
		}
	}
	if rep, ok := tr.(errReporter); ok {
		if err := rep.Err(); err != nil {
			return nil, err
		}
	}
	if c, ok := tr.(io.Closer); ok {
		if err := c.Close(); err != nil {
			return nil, fmt.Errorf("exec: transport close: %w", err)
		}
	}
	return AssembleResult(prog, cfg, results)
}

// RunSequentialReference executes the same plan with the sequential
// parallel-semantics executor (rewrite.Executor) for steps iterations:
// the bit-exact reference the distributed run must reproduce.
func RunSequentialReference(prog *Program, steps int) (*ir.Machine, error) {
	if steps <= 0 {
		steps = 1
	}
	m := cloneMachine(prog.Machine)
	ex := rewrite.NewExecutor(m)
	for sym, p := range prog.Parts {
		ex.Bind(sym, p)
	}
	for s := 0; s < steps; s++ {
		for _, t := range prog.Plan.Tasks {
			if err := ex.RunLaunch(t.Loop); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}
