package exec_test

import (
	"sync"
	"testing"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/exec"
	"autopart/internal/runtime"
	"autopart/internal/sim"
	"autopart/pkg/autopart"
)

// appCase builds an executable program for one builtin at a node count.
type appCase struct {
	name  string
	build func(nodes int) (*exec.Program, error)
}

var (
	compileMu    sync.Mutex
	compileCache = map[string]*autopart.Compiled{}
)

// compiled compiles a source once per test binary (miniaero takes a
// visible fraction of a second; the differential matrix would recompile
// it per node count otherwise).
func compiled(t *testing.T, key, src string) *autopart.Compiled {
	t.Helper()
	compileMu.Lock()
	defer compileMu.Unlock()
	if c, ok := compileCache[key]; ok {
		return c
	}
	c, err := autopart.Compile(src, autopart.Options{})
	if err != nil {
		t.Fatalf("compile %s: %v", key, err)
	}
	compileCache[key] = c
	return c
}

// appCases is every builtin the executor must reproduce bit-exactly,
// including the hinted circuit variant (its solution differs from the
// unhinted one only in which partitions are externs, but it is the
// §5.2 configuration the paper discusses).
func appCases(t *testing.T) []appCase {
	t.Helper()
	return []appCase{
		{"stencil", func(n int) (*exec.Program, error) {
			return stencil.Executable(stencil.DefaultConfig(), compiled(t, "stencil", stencil.Source()), n)
		}},
		{"circuit", func(n int) (*exec.Program, error) {
			return circuit.Executable(circuit.DefaultConfig(), compiled(t, "circuit", circuit.Source), n, false)
		}},
		{"circuit-hint", func(n int) (*exec.Program, error) {
			return circuit.Executable(circuit.DefaultConfig(), compiled(t, "circuit-hint", circuit.HintSource), n, true)
		}},
		{"spmv", func(n int) (*exec.Program, error) {
			return spmv.Executable(spmv.DefaultConfig(), compiled(t, "spmv", spmv.Source), n)
		}},
		{"miniaero", func(n int) (*exec.Program, error) {
			return miniaero.Executable(miniaero.DefaultConfig(), compiled(t, "miniaero", miniaero.Source()), n)
		}},
		{"pennant-h2", func(n int) (*exec.Program, error) {
			return pennant.Executable(pennant.DefaultConfig(), compiled(t, "pennant-h2", pennant.HintSource(2)), n, 2)
		}},
	}
}

// TestDistributedMatchesSequential is the executor's headline guarantee:
// for every builtin, running the compiled plan on 1..N goroutine nodes
// with message-passing ghost exchange produces data bit-identical to the
// sequential parallel-semantics executor. Two steps so ownership
// evolution (stencil's vin/vout ping-pong, circuit's WriteDiscard
// updates) forces real ghost re-exchange in the second step.
func TestDistributedMatchesSequential(t *testing.T) {
	const steps = 2
	for _, app := range appCases(t) {
		for _, nodes := range []int{1, 2, 3, 8} {
			app, nodes := app, nodes
			t.Run(app.name+"/nodes="+itoa(nodes), func(t *testing.T) {
				prog, err := app.build(nodes)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				want, err := exec.RunSequentialReference(prog, steps)
				if err != nil {
					t.Fatalf("sequential reference: %v", err)
				}
				res, err := exec.Run(prog, exec.Config{Nodes: nodes, Steps: steps})
				if err != nil {
					t.Fatalf("distributed run: %v", err)
				}
				for name, wr := range want.Regions {
					same, diff := wr.SameData(res.Machine.Regions[name])
					if !same {
						t.Errorf("region %s diverges from sequential: %s", name, diff)
					}
				}
				if nodes > 1 && res.TotalBytes() == 0 {
					t.Errorf("expected nonzero communication on %d nodes", nodes)
				}
				if nodes == 1 && res.TotalBytes() != 0 {
					t.Errorf("single node should not communicate, shipped %.0f bytes", res.TotalBytes())
				}
			})
		}
	}
}

// TestGuardedRelaxationActive pins down that the miniaero differential
// case really exercises §5.1: its plan carries guarded reduction
// requirements (several per field, through different face partitions),
// so the bit-identity above covers the guarded ship path.
func TestGuardedRelaxationActive(t *testing.T) {
	prog, err := miniaero.Executable(miniaero.DefaultConfig(), compiled(t, "miniaero", miniaero.Source()), 4)
	if err != nil {
		t.Fatal(err)
	}
	guarded := 0
	for _, task := range prog.Plan.Tasks {
		for _, req := range task.Launch.Reqs {
			if req.Priv == runtime.Reduce && req.Guarded {
				guarded++
			}
		}
	}
	if guarded == 0 {
		t.Fatal("miniaero plan has no guarded reductions; the §5.1 differential case is vacuous")
	}
}

// TestPrivateSubPartitionShrinksBuffers pins down that the hinted cases
// really exercise §5.2: unguarded reductions carry a private
// sub-partition, and the measured reduction-buffer allocation is
// strictly smaller than the full instance subregions would be. The two
// cases shrink differently: circuit-hint's node instances are partly
// shared, so buffers shrink but survive; pennant's hints prove the
// reduction instances entirely private, so the buffers vanish outright
// (contributions reduce directly into the local instances).
func TestPrivateSubPartitionShrinksBuffers(t *testing.T) {
	cases := []struct {
		appCase
		wantZero bool
	}{
		{appCase{"circuit-hint", func(n int) (*exec.Program, error) {
			return circuit.Executable(circuit.DefaultConfig(), compiled(t, "circuit-hint", circuit.HintSource), n, true)
		}}, false},
		{appCase{"pennant-h2", func(n int) (*exec.Program, error) {
			return pennant.Executable(pennant.DefaultConfig(), compiled(t, "pennant-h2", pennant.HintSource(2)), n, 2)
		}}, true},
	}
	const nodes = 4
	for _, app := range cases {
		t.Run(app.name, func(t *testing.T) {
			prog, err := app.build(nodes)
			if err != nil {
				t.Fatal(err)
			}
			private := 0
			var full float64 // buffer elems if §5.2 were off
			for _, task := range prog.Plan.Tasks {
				for _, req := range task.Launch.Reqs {
					if req.Priv != runtime.Reduce || req.Guarded {
						continue
					}
					if req.PrivateSym != "" {
						private++
					}
					p := prog.Parts[req.Sym]
					for j := 0; j < nodes; j++ {
						if !p.Sub(j).Empty() {
							full += float64(p.Sub(j).Len()) * float64(len(req.Fields))
						}
					}
				}
			}
			if private == 0 {
				t.Fatal("no reduction requirement carries a private sub-partition; the §5.2 case is vacuous")
			}
			res, err := exec.Run(prog, exec.Config{Nodes: nodes, Steps: 1})
			if err != nil {
				t.Fatal(err)
			}
			var measured float64
			for _, lc := range res.Steps[0].Launches {
				for _, ns := range lc.Nodes {
					measured += ns.BufferElems
				}
			}
			if app.wantZero {
				if measured != 0 {
					t.Errorf("expected fully-private instances to need no buffers, measured %.0f elems", measured)
				}
			} else if measured <= 0 {
				t.Error("no reduction buffers were allocated")
			}
			if measured >= full {
				t.Errorf("private sub-partitions did not shrink buffers: measured %.0f elems, full instances %.0f", measured, full)
			}
		})
	}
}

// TestCommMatchesSim cross-checks the executor's measured communication
// against the analytic model: for stencil and circuit, every per-node,
// per-launch counter sim predicts must match what the executor actually
// shipped, exactly — bytes, messages, fragments, and reduction-buffer
// elements. ComputeUnits is excluded by design: the model prices compute
// analytically (work-per-element times elements) while the executor
// reports zero, since wall-clock compute has no place in a determinism
// test. That is the only intentional divergence.
func TestCommMatchesSim(t *testing.T) {
	const nodes, steps = 4, 2
	cases := []appCase{
		{"stencil", func(n int) (*exec.Program, error) {
			return stencil.Executable(stencil.DefaultConfig(), compiled(t, "stencil", stencil.Source()), n)
		}},
		{"circuit", func(n int) (*exec.Program, error) {
			return circuit.Executable(circuit.DefaultConfig(), compiled(t, "circuit", circuit.Source), n, false)
		}},
	}
	for _, app := range cases {
		t.Run(app.name, func(t *testing.T) {
			prog, err := app.build(nodes)
			if err != nil {
				t.Fatal(err)
			}
			res, err := exec.Run(prog, exec.Config{Nodes: nodes, Steps: steps})
			if err != nil {
				t.Fatal(err)
			}
			// Run does not mutate prog.Owners, so the same state seeds the
			// model; RunIteration then evolves it step by step exactly as
			// the executor's replicas did.
			model := sim.Default()
			launches := prog.Plan.Launches()
			for step := 0; step < steps; step++ {
				its, err := model.RunIteration(launches, prog.Parts, prog.Owners)
				if err != nil {
					t.Fatalf("step %d: sim: %v", step, err)
				}
				for li, ls := range its.Launches {
					measured := res.Steps[step].Launches[li]
					for j := range ls.Nodes {
						want, got := ls.Nodes[j], measured.Nodes[j]
						want.ComputeUnits, got.ComputeUnits = 0, 0
						if want != got {
							t.Errorf("step %d launch %s node %d: sim predicts %+v, executor measured %+v",
								step, ls.Name, j, want, got)
						}
					}
				}
			}
			if res.TotalBytes() == 0 {
				t.Error("cross-check is vacuous: no bytes moved")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}
