package exec

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// Mesh is the cross-process data plane: the transport one worker
// process uses for its single node of a multi-process run. Where
// tcpTransport holds all n nodes' endpoints inside one process, a Mesh
// holds exactly one node's slice of the same full-mesh topology — n-1
// inbound streams accepted on the worker's data listener and n-1
// outbound streams dialed to the peer addresses the coordinator's
// topology frame announced. Streams reuse wire.go's data frames behind
// a preamble of one protocol version byte plus the hello frame naming
// the sender, so a peer from a different build is refused at stream
// setup rather than misparsed mid-run.
//
// Send keeps the executor's never-blocks contract via the same elastic
// pipe + flush-before-blocking writer the TCP transport uses. Failures
// latch into Err; Abort hard-closes every stream so a node blocked in a
// mailbox take fails fast instead of waiting out a dead peer.
type Mesh struct {
	self  int
	nodes int
	inbox *inboxQueue
	// sends[to] feeds the pair's writer goroutine (nil for self).
	sends []chan message
	hook  func(to, step, launch int)

	mu      sync.Mutex
	err     error
	ln      net.Listener
	conns   []net.Conn
	aborted bool
	wg      sync.WaitGroup // writer + reader + accept goroutines
}

// MeshConfig configures one node's slice of the mesh.
type MeshConfig struct {
	// Self is this process's node id (color).
	Self int
	// Nodes is the run's node count.
	Nodes int
	// Listener accepts the n-1 inbound peer streams; the Mesh takes
	// ownership and closes it.
	Listener net.Listener
	// Peers holds every node's data address, indexed by node id
	// (Peers[Self] is ignored).
	Peers []string
	// DialBudget bounds each outbound dial including retries (default
	// 10s). Peers build their meshes concurrently, so early dials may
	// find nobody listening yet; retry with backoff covers the window.
	DialBudget time.Duration
	// SendHook, when non-nil, observes every outgoing message (its
	// destination, step, and launch) before it is enqueued. The failure
	// drills use it to kill a worker mid-launch at a deterministic
	// protocol point.
	SendHook func(to, step, launch int)
}

// NewMesh builds one node's mesh: it starts accepting inbound peer
// streams and dials every peer. It returns once all n-1 outbound
// streams are established (inbound streams finish handshaking in the
// background; a peer that never arrives surfaces as that sender's EOF).
func NewMesh(cfg MeshConfig) (*Mesh, error) {
	if cfg.Self < 0 || cfg.Self >= cfg.Nodes {
		return nil, fmt.Errorf("exec: mesh: node id %d out of range [0, %d)", cfg.Self, cfg.Nodes)
	}
	if len(cfg.Peers) != cfg.Nodes {
		return nil, fmt.Errorf("exec: mesh: %d peer addresses for %d nodes", len(cfg.Peers), cfg.Nodes)
	}
	if cfg.Listener == nil {
		return nil, fmt.Errorf("exec: mesh: nil listener")
	}
	budget := cfg.DialBudget
	if budget <= 0 {
		budget = 10 * time.Second
	}
	m := &Mesh{
		self:  cfg.Self,
		nodes: cfg.Nodes,
		inbox: newInboxQueue(cfg.Nodes - 1),
		sends: make([]chan message, cfg.Nodes),
		hook:  cfg.SendHook,
		ln:    cfg.Listener,
	}

	// Accept n-1 inbound streams; each starts a reader that demuxes
	// frames into the inbox (the preamble identifies the sender, so
	// accept order is irrelevant).
	for i := 0; i < cfg.Nodes-1; i++ {
		m.wg.Add(1)
	}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		for i := 0; i < cfg.Nodes-1; i++ {
			conn, err := cfg.Listener.Accept()
			if err != nil {
				m.fail(fmt.Errorf("exec: mesh: accept at node %d: %w", cfg.Self, err))
				for ; i < cfg.Nodes-1; i++ {
					m.inbox.senderEOF(-1)
					m.wg.Done()
				}
				return
			}
			m.track(conn)
			go m.readLoop(conn)
		}
		cfg.Listener.Close()
	}()

	// Dial every peer and start its elastic writer.
	for to := 0; to < cfg.Nodes; to++ {
		if to == cfg.Self {
			continue
		}
		conn, err := dialRetry(cfg.Peers[to], budget)
		if err != nil {
			m.Abort()
			return nil, fmt.Errorf("exec: mesh: dial node %d (%s): %w", to, cfg.Peers[to], err)
		}
		m.track(conn)
		in := make(chan message)
		out := make(chan message)
		go pipe(in, out)
		m.sends[to] = in
		m.wg.Add(1)
		go m.writeLoop(conn, out)
	}
	return m, nil
}

// dialRetry dials addr until it succeeds or the budget is spent,
// backing off between attempts (peers bootstrap concurrently, so the
// first attempts may race a listener that is not up yet).
func dialRetry(addr string, budget time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(budget)
	backoff := 10 * time.Millisecond
	for {
		attempt := time.Until(deadline)
		if attempt <= 0 {
			return nil, fmt.Errorf("dial budget of %v exhausted", budget)
		}
		if attempt > time.Second {
			attempt = time.Second
		}
		conn, err := net.DialTimeout("tcp", addr, attempt)
		if err == nil {
			return conn, nil
		}
		if time.Now().Add(backoff).After(deadline) {
			return nil, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 500*time.Millisecond {
			backoff = 500 * time.Millisecond
		}
	}
}

func (m *Mesh) track(conn net.Conn) {
	m.mu.Lock()
	if m.aborted {
		m.mu.Unlock()
		conn.Close()
		return
	}
	m.conns = append(m.conns, conn)
	m.mu.Unlock()
}

func (m *Mesh) fail(err error) {
	m.mu.Lock()
	if m.err == nil {
		m.err = err
	}
	m.mu.Unlock()
}

// Err reports the first stream or decode failure, if any. An abort
// surfaces as such a failure on every stream it tore down.
func (m *Mesh) Err() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Abort hard-closes the listener and every stream. Readers fail and
// mark their senders dead, so a node blocked in a mailbox take errors
// out promptly; writers drain to /dev/null. Safe to call from any
// goroutine, more than once.
func (m *Mesh) Abort() {
	m.mu.Lock()
	if m.aborted {
		m.mu.Unlock()
		return
	}
	m.aborted = true
	if m.err == nil {
		m.err = fmt.Errorf("exec: mesh: node %d aborted", m.self)
	}
	ln, cs := m.ln, m.conns
	m.conns = nil
	m.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range cs {
		c.Close()
	}
}

// Close waits for the stream goroutines and releases every socket. Call
// after RunNode returns; Abort first if the run is being torn down.
func (m *Mesh) Close() error {
	m.wg.Wait()
	m.mu.Lock()
	ln, cs := m.ln, m.conns
	m.ln, m.conns = nil, nil
	m.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range cs {
		c.Close()
	}
	return nil
}

// writeLoop drains one outbound pipe onto its socket behind the version
// byte + hello preamble, flushing before blocking (the peer this stream
// serves may be the very node our sender blocks on). On completion it
// half-closes so the peer's reader sees a clean end of stream.
func (m *Mesh) writeLoop(conn net.Conn, out <-chan message) {
	defer m.wg.Done()
	w := bufio.NewWriter(conn)
	var err error
	if wErr := w.WriteByte(WireProtoVersion); wErr != nil {
		err = wErr
	}
	if err == nil {
		hello := message{kind: helloMsg, from: m.self}
		err = writeFrame(w, &hello)
	}
	for {
		var msg message
		var ok bool
		select {
		case msg, ok = <-out:
		default:
			if err == nil {
				err = w.Flush()
			}
			msg, ok = <-out
		}
		if !ok {
			break
		}
		if err != nil {
			continue // drain on error so pipe() can exit
		}
		err = writeFrame(w, &msg)
	}
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		m.fail(fmt.Errorf("exec: mesh: send from node %d: %w", m.self, err))
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		conn.Close()
	}
}

// readLoop verifies one inbound stream's preamble, then decodes frames
// into the inbox until EOF. A stream that dies before its hello frame
// reports an anonymous EOF (from = -1).
func (m *Mesh) readLoop(conn net.Conn) {
	defer m.wg.Done()
	from := -1
	defer func() { m.inbox.senderEOF(from) }()
	r := bufio.NewReader(conn)
	v, err := r.ReadByte()
	if err != nil {
		m.fail(fmt.Errorf("exec: mesh: node %d: stream preamble: %w", m.self, err))
		return
	}
	if v != WireProtoVersion {
		m.fail(fmt.Errorf("%w: node %d: peer stream speaks version %d, this build speaks %d",
			ErrWireVersion, m.self, v, WireProtoVersion))
		return
	}
	hello, err := readFrame(r)
	if err != nil || hello.kind != helloMsg {
		m.fail(fmt.Errorf("exec: mesh: node %d: bad stream preamble (err=%v, kind=%v)", m.self, err, hello.kind))
		return
	}
	from = hello.from
	for {
		msg, err := readFrame(r)
		if err != nil {
			if err != io.EOF {
				m.fail(fmt.Errorf("exec: mesh: recv at node %d from %d: %w", m.self, from, err))
			}
			return
		}
		m.inbox.push(msg)
	}
}

// Send implements Transport for the mesh's own node.
func (m *Mesh) Send(from, to int, msg message) {
	if m.hook != nil {
		m.hook(to, msg.step, msg.launch)
	}
	msg.from = from
	m.sends[to] <- msg
}

// Inbox implements Transport; only the mesh's own node has one.
func (m *Mesh) Inbox(to int) <-chan message {
	if to != m.self {
		panic(fmt.Sprintf("exec: mesh: node %d asked for node %d's inbox", m.self, to))
	}
	return m.inbox.out
}

// CloseSend closes the outbound pipes; writers drain, flush, and
// half-close their sockets.
func (m *Mesh) CloseSend(from int) {
	for to, ch := range m.sends {
		if ch != nil {
			close(ch)
			m.sends[to] = nil
		}
	}
}
