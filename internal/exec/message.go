package exec

import (
	"fmt"

	"autopart/internal/geometry"
	"autopart/internal/region"
)

// msgKind distinguishes the three transfers of the coherence protocol.
type msgKind int

const (
	// ghostMsg carries valid data from an owner into a reader's ghost
	// cells before a launch.
	ghostMsg msgKind = iota
	// shipMsg writes a §5.1 guarded reduction's remote-owned results back
	// to their owners after a launch.
	shipMsg
	// mergeMsg moves a reduction buffer's remote-owned contributions to
	// their owners for the ordered fold.
	mergeMsg
	// helloMsg is the TCP transport's stream preamble: the first frame
	// on each connection, identifying the sender. Never delivered to a
	// node.
	helloMsg
	// eofMsg is a transport-internal sentinel marking one sender's end
	// of stream, so receivers can fail takes from a dead peer instead
	// of deadlocking. Never crosses the wire.
	eofMsg
)

func (k msgKind) String() string {
	switch k {
	case ghostMsg:
		return "ghost"
	case shipMsg:
		return "ship"
	case mergeMsg:
		return "merge"
	case helloMsg:
		return "hello"
	case eofMsg:
		return "eof"
	default:
		return fmt.Sprintf("msgKind(%d)", int(k))
	}
}

// message is one piece of one field moving between a node pair. The
// element set is carried redundantly (the receiver derives the same set
// from replicated metadata) so protocol mismatches surface as loud
// errors instead of silent data corruption.
type message struct {
	kind          msgKind
	from          int // sender color, stamped by the transport layer
	step, launch  int
	req           int
	region, field string
	set           geometry.IndexSet
	// Payload, one slot per element of set in ascending index order;
	// exactly one slice is non-nil, matching the field's kind.
	scalars []float64
	indexes []int64
	ranges  []geometry.Interval
	// present marks which slots of a mergeMsg carry a real contribution
	// (reduction buffers are sparse; the wire format is the dense
	// instance copy the cost model prices).
	present []bool
}

// checkTag verifies a received message is the one the deterministic
// protocol schedule expects.
func (m *message) checkTag(kind msgKind, step, launch, req int, regionName, field string, set geometry.IndexSet) error {
	if m.kind != kind || m.step != step || m.launch != launch || m.req != req ||
		m.region != regionName || m.field != field || !m.set.Equal(set) {
		return fmt.Errorf("exec: protocol mismatch: got %s step=%d launch=%d req=%d %s.%s %s, want %s step=%d launch=%d req=%d %s.%s %s",
			m.kind, m.step, m.launch, m.req, m.region, m.field, m.set,
			kind, step, launch, req, regionName, field, set)
	}
	return nil
}

// packField copies r's values over set into a fresh payload.
func packField(r *region.Region, field string, set geometry.IndexSet) (msg message, err error) {
	kind, ok := r.FieldKindOf(field)
	if !ok {
		return msg, fmt.Errorf("exec: pack: unknown field %s.%s", r.Name(), field)
	}
	n := int(set.Len())
	switch kind {
	case region.ScalarField:
		data := r.Scalar(field)
		out := make([]float64, 0, n)
		set.EachInterval(func(iv geometry.Interval) bool {
			out = append(out, data[iv.Lo:iv.Hi]...)
			return true
		})
		msg.scalars = out
	case region.IndexField:
		data := r.Index(field)
		out := make([]int64, 0, n)
		set.EachInterval(func(iv geometry.Interval) bool {
			out = append(out, data[iv.Lo:iv.Hi]...)
			return true
		})
		msg.indexes = out
	case region.RangeField:
		data := r.Ranges(field)
		out := make([]geometry.Interval, 0, n)
		set.EachInterval(func(iv geometry.Interval) bool {
			out = append(out, data[iv.Lo:iv.Hi]...)
			return true
		})
		msg.ranges = out
	}
	msg.set = set
	return msg, nil
}

// installField writes a received payload into r's values over msg.set.
func installField(r *region.Region, field string, msg *message) error {
	kind, ok := r.FieldKindOf(field)
	if !ok {
		return fmt.Errorf("exec: install: unknown field %s.%s", r.Name(), field)
	}
	pos := 0
	switch kind {
	case region.ScalarField:
		if msg.scalars == nil {
			return fmt.Errorf("exec: install %s.%s: payload kind mismatch", r.Name(), field)
		}
		data := r.Scalar(field)
		msg.set.EachInterval(func(iv geometry.Interval) bool {
			pos += copy(data[iv.Lo:iv.Hi], msg.scalars[pos:])
			return true
		})
	case region.IndexField:
		if msg.indexes == nil {
			return fmt.Errorf("exec: install %s.%s: payload kind mismatch", r.Name(), field)
		}
		data := r.Index(field)
		msg.set.EachInterval(func(iv geometry.Interval) bool {
			pos += copy(data[iv.Lo:iv.Hi], msg.indexes[pos:])
			return true
		})
	case region.RangeField:
		if msg.ranges == nil {
			return fmt.Errorf("exec: install %s.%s: payload kind mismatch", r.Name(), field)
		}
		data := r.Ranges(field)
		msg.set.EachInterval(func(iv geometry.Interval) bool {
			pos += copy(data[iv.Lo:iv.Hi], msg.ranges[pos:])
			return true
		})
	}
	return nil
}

// packBuffer copies a sparse reduction buffer's values over set into the
// dense wire format: one slot per element, present marking real
// contributions.
func packBuffer(values map[int64]float64, set geometry.IndexSet) (scalars []float64, present []bool) {
	n := int(set.Len())
	scalars = make([]float64, 0, n)
	present = make([]bool, 0, n)
	set.Each(func(k int64) bool {
		v, ok := values[k]
		scalars = append(scalars, v)
		present = append(present, ok)
		return true
	})
	return scalars, present
}

// unpackBuffer rebuilds the sparse contribution map from a mergeMsg.
func unpackBuffer(msg *message) map[int64]float64 {
	out := map[int64]float64{}
	pos := 0
	msg.set.Each(func(k int64) bool {
		if msg.present[pos] {
			out[k] = msg.scalars[pos]
		}
		pos++
		return true
	})
	return out
}
