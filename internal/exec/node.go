package exec

import (
	"fmt"

	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/runtime"
	"autopart/internal/sim"
)

// node is one SPMD executor node. It holds a full-size local copy of
// every region (valid only on owned elements and fresh ghosts), its own
// replica of the owner map (all replicas evolve identically), and its
// rows of the per-launch statistics. Nodes communicate exclusively
// through the pipes; no mutable state is shared.
type node struct {
	id     int
	cfg    Config
	prog   *Program
	m      *ir.Machine
	owners map[sim.FieldKey]*region.Partition
	sendTo []chan message // sendTo[k]: pipe input toward node k (nil for self)
	recvAt []chan message // recvAt[k]: pipe output from node k (nil for self)
	stats  [][]sim.NodeStats
}

// run executes all steps of the plan.
func (n *node) run() error {
	for step := 0; step < n.cfg.Steps; step++ {
		n.stats[step] = make([]sim.NodeStats, len(n.prog.Plan.Tasks))
		for li, t := range n.prog.Plan.Tasks {
			if err := n.runLaunch(step, li, t); err != nil {
				return fmt.Errorf("step %d, launch %s: %w", step, t.Launch.Name, err)
			}
		}
	}
	return nil
}

func (n *node) send(to int, msg message) {
	n.sendTo[to] <- msg
}

// recv takes the next message from node `from`, failing if the peer
// exited (its pipe closed) before sending it.
func (n *node) recv(from int) (message, error) {
	msg, ok := <-n.recvAt[from]
	if !ok {
		return message{}, fmt.Errorf("peer %d exited before sending", from)
	}
	return msg, nil
}

// needsFetch reports whether a requirement pulls ghost data before the
// launch: reads do, and §5.1 guarded reductions read-modify-write their
// targets in place. WriteDiscard and buffered reductions never fetch.
func needsFetch(req runtime.Requirement) bool {
	switch req.Priv {
	case runtime.ReadOnly, runtime.ReadWrite:
		return true
	case runtime.Reduce:
		return req.Guarded
	}
	return false
}

// runLaunch is one bulk-synchronous launch on this node:
//
//  1. ghost exchange — serve peers' remote needs from owned data, then
//     install the pieces peers serve us (valid-instance tracking decides
//     both sides, exactly as sim charges them);
//  2. shard execution — run the rewritten loop over this color only,
//     then flush its private writes into the local arrays;
//  3. write-back — ship guarded-reduction results on remote-owned
//     targets to their owners, and merge reduction buffers to owners in
//     ascending color order;
//  4. ownership update — writes move each written field's owner to the
//     writing partition, replicated identically on every node.
//
// Sends within a phase never block (pipes buffer unboundedly), so
// enqueueing all sends before blocking on receives makes the exchange
// deadlock-free with no barriers.
func (n *node) runLaunch(step, li int, t runtime.Task) error {
	l := t.Launch
	st := &n.stats[step][li]
	parts := n.prog.Parts
	j := n.id
	bpe := n.cfg.BytesPerElem

	// --- Phase 1a: enqueue outgoing ghosts. ---
	for ri, req := range l.Reqs {
		if !needsFetch(req) {
			continue
		}
		p := parts[req.Sym]
		for _, f := range req.Fields {
			owner, err := n.ownerOf(req.Region, f)
			if err != nil {
				return err
			}
			for k := range n.sendTo {
				if k == j {
					continue
				}
				need := p.Sub(k).Subtract(owner.Sub(k))
				piece := need.Intersect(owner.Sub(j))
				if piece.Empty() {
					continue
				}
				msg, err := packField(n.m.Regions[req.Region], f, piece)
				if err != nil {
					return err
				}
				msg.kind, msg.step, msg.launch, msg.req = ghostMsg, step, li, ri
				msg.region, msg.field = req.Region, f
				n.send(k, msg)
				st.BytesOut += float64(piece.Len()) * bpe
				st.FragsOut += piece.NumIntervals()
				st.MsgsOut++
			}
		}
	}

	// --- Phase 1b: receive and install incoming ghosts. ---
	for ri, req := range l.Reqs {
		if !needsFetch(req) {
			continue
		}
		p := parts[req.Sym]
		for _, f := range req.Fields {
			owner, err := n.ownerOf(req.Region, f)
			if err != nil {
				return err
			}
			remote := p.Sub(j).Subtract(owner.Sub(j))
			if remote.Empty() {
				continue
			}
			st.BytesIn += float64(remote.Len()) * bpe
			st.FragsIn += remote.NumIntervals()
			covered := geometry.IndexSet{}
			for _, pc := range region.SplitByOwner(remote, owner) {
				msg, err := n.recv(pc.Color)
				if err != nil {
					return err
				}
				if err := msg.checkTag(ghostMsg, step, li, ri, req.Region, f, pc.Set); err != nil {
					return err
				}
				if err := installField(n.m.Regions[req.Region], f, &msg); err != nil {
					return err
				}
				st.MsgsIn++
				covered = covered.Union(pc.Set)
			}
			if !covered.Equal(remote) {
				return fmt.Errorf("no valid copy of %s.%s for ghost set %s (owner covers only %s)",
					req.Region, f, remote, covered)
			}
		}
	}

	// --- Phase 2: run this color's shard and flush private writes. ---
	res, err := rewrite.RunShard(n.m, parts, t.Loop, j)
	if err != nil {
		return err
	}
	for k, vals := range res.Scalars {
		data := n.m.Regions[k.Region].Scalar(k.Field)
		for idx, v := range vals {
			data[idx] = v
		}
	}
	for k, vals := range res.Indexes {
		data := n.m.Regions[k.Region].Index(k.Field)
		for idx, v := range vals {
			data[idx] = v
		}
	}

	// Reduction-instance accounting: the buffer covers the instance
	// subregion minus the §5.2 private sub-partition (private elements
	// reduce directly into the local instance).
	for _, req := range l.Reqs {
		if req.Priv != runtime.Reduce || req.Guarded {
			continue
		}
		sub := parts[req.Sym].Sub(j)
		if sub.Empty() {
			continue
		}
		alloc := sub
		if req.PrivateSym != "" {
			alloc = sub.Subtract(parts[req.PrivateSym].Sub(j))
		}
		st.BufferElems += float64(alloc.Len()) * float64(len(req.Fields))
	}

	// --- Phase 3a: enqueue write-backs (guarded ships, buffer merges). ---
	// A launch may carry several unguarded reduction requirements on the
	// same field through different instance partitions (circuit reduces
	// into Nodes.charge via both wire endpoints). Sends and statistics
	// stay per-requirement — that is how sim charges them — but the shard
	// buffer is shared per field, so reachability is checked against the
	// union of the requirements' reach sets, and the owner-side fold
	// dedupes by sender before folding each contribution exactly once.
	mergeReach := map[rewrite.FieldKey]geometry.IndexSet{}
	var mergeOrder []rewrite.FieldKey
	for ri, req := range l.Reqs {
		if req.Priv != runtime.Reduce {
			continue
		}
		p := parts[req.Sym]
		if req.Guarded {
			for _, f := range req.Fields {
				owner, err := n.ownerOf(req.Region, f)
				if err != nil {
					return err
				}
				remote := p.Sub(j).Subtract(owner.Sub(j))
				if remote.Empty() {
					continue
				}
				st.BytesOut += float64(remote.Len()) * bpe
				st.FragsOut += remote.NumIntervals()
				covered := geometry.IndexSet{}
				for _, pc := range region.SplitByOwner(remote, owner) {
					msg, err := packField(n.m.Regions[req.Region], f, pc.Set)
					if err != nil {
						return err
					}
					msg.kind, msg.step, msg.launch, msg.req = shipMsg, step, li, ri
					msg.region, msg.field = req.Region, f
					n.send(pc.Color, msg)
					st.MsgsOut++
					covered = covered.Union(pc.Set)
				}
				if !covered.Equal(remote) {
					return fmt.Errorf("guarded write-back of %s.%s would lose updates on unowned set %s",
						req.Region, f, remote.Subtract(covered))
				}
			}
			continue
		}
		touched := p
		if req.TouchedSym != "" {
			touched = parts[req.TouchedSym]
		}
		if p.Sub(j).Empty() {
			continue
		}
		for _, f := range req.Fields {
			owner, err := n.ownerOf(req.Region, f)
			if err != nil {
				return err
			}
			fk := rewrite.FieldKey{Region: req.Region, Field: f}
			buf := res.Reductions[fk]
			if _, ok := mergeReach[fk]; !ok {
				mergeOrder = append(mergeOrder, fk)
			}
			reach := mergeReach[fk].Union(owner.Sub(j))
			remote := touched.Sub(j).Subtract(owner.Sub(j))
			if !remote.Empty() {
				st.BytesOut += float64(remote.Len()) * bpe
				st.FragsOut += remote.NumIntervals()
				for _, pc := range region.SplitByOwner(remote, owner) {
					var msg message
					if buf != nil {
						msg.scalars, msg.present = packBuffer(buf.Values, pc.Set)
					} else {
						msg.scalars, msg.present = packBuffer(nil, pc.Set)
					}
					msg.set = pc.Set
					msg.kind, msg.step, msg.launch, msg.req = mergeMsg, step, li, ri
					msg.region, msg.field = req.Region, f
					n.send(pc.Color, msg)
					st.MsgsOut++
				}
				reach = reach.Union(remote.Intersect(owner.UnionAll()))
			}
			mergeReach[fk] = reach
		}
	}
	// Contributions neither local nor shipped under any requirement would
	// silently vanish; the coherence protocol treats that as unsound.
	for _, fk := range mergeOrder {
		buf := res.Reductions[fk]
		if buf == nil {
			continue
		}
		reach := mergeReach[fk]
		for idx := range buf.Values {
			if !reach.Contains(idx) {
				return fmt.Errorf("reduction contribution to %s.%s[%d] has no owner to merge into",
					fk.Region, fk.Field, idx)
			}
		}
	}

	// --- Phase 3b: receive write-backs; fold merges in color order. ---
	// folds accumulates, per reduced field, one contribution map per
	// sender color. Duplicate elements arriving from the same sender
	// under different requirements carry identical values (both pack the
	// sender's one shard buffer), so overwriting dedupes them and each
	// (sender, element) contribution folds exactly once.
	type foldState struct {
		op       string
		perColor []map[int64]float64
	}
	folds := map[rewrite.FieldKey]*foldState{}
	var foldOrder []rewrite.FieldKey
	for ri, req := range l.Reqs {
		if req.Priv != runtime.Reduce {
			continue
		}
		p := parts[req.Sym]
		if req.Guarded {
			for _, f := range req.Fields {
				owner, err := n.ownerOf(req.Region, f)
				if err != nil {
					return err
				}
				for k := range n.recvAt {
					if k == j {
						continue
					}
					piece := p.Sub(k).Subtract(owner.Sub(k)).Intersect(owner.Sub(j))
					if piece.Empty() {
						continue
					}
					msg, err := n.recv(k)
					if err != nil {
						return err
					}
					if err := msg.checkTag(shipMsg, step, li, ri, req.Region, f, piece); err != nil {
						return err
					}
					if err := installField(n.m.Regions[req.Region], f, &msg); err != nil {
						return err
					}
					st.BytesIn += float64(piece.Len()) * bpe
					st.FragsIn += piece.NumIntervals()
					st.MsgsIn++
				}
			}
			continue
		}
		touched := p
		if req.TouchedSym != "" {
			touched = parts[req.TouchedSym]
		}
		for _, f := range req.Fields {
			owner, err := n.ownerOf(req.Region, f)
			if err != nil {
				return err
			}
			fk := rewrite.FieldKey{Region: req.Region, Field: f}
			fs := folds[fk]
			if fs == nil {
				fs = &foldState{
					op:       req.ReduceOp,
					perColor: make([]map[int64]float64, len(n.recvAt)),
				}
				folds[fk] = fs
				foldOrder = append(foldOrder, fk)
				// Our own shard's contributions on elements we own fold
				// locally; they join the field's per-color maps once, no
				// matter how many requirements cover the field.
				if buf := res.Reductions[fk]; buf != nil {
					own := owner.Sub(j)
					for idx, v := range buf.Values {
						if own.Contains(idx) {
							if fs.perColor[j] == nil {
								fs.perColor[j] = map[int64]float64{}
							}
							fs.perColor[j][idx] = v
						}
					}
				}
			}
			for k := range n.recvAt {
				if k == j {
					continue
				}
				if p.Sub(k).Empty() {
					continue
				}
				piece := touched.Sub(k).Subtract(owner.Sub(k)).Intersect(owner.Sub(j))
				if piece.Empty() {
					continue
				}
				msg, err := n.recv(k)
				if err != nil {
					return err
				}
				if err := msg.checkTag(mergeMsg, step, li, ri, req.Region, f, piece); err != nil {
					return err
				}
				for idx, v := range unpackBuffer(&msg) {
					if fs.perColor[k] == nil {
						fs.perColor[k] = map[int64]float64{}
					}
					fs.perColor[k][idx] = v
				}
				st.BytesIn += float64(piece.Len()) * bpe
				st.FragsIn += piece.NumIntervals()
				st.MsgsIn++
			}
		}
	}
	// Fold each reduced field's deduped contributions exactly once. The
	// fold is rewrite.MergeShardReductions restricted to owner.Sub(j), so
	// the distributed merge reproduces the sequential one piecewise.
	for _, fk := range foldOrder {
		fs := folds[fk]
		perColor := make([]map[rewrite.FieldKey]*rewrite.ReduceBuffer, len(n.recvAt))
		for k, vals := range fs.perColor {
			if len(vals) > 0 {
				perColor[k] = map[rewrite.FieldKey]*rewrite.ReduceBuffer{
					fk: {Op: fs.op, Values: vals},
				}
			}
		}
		rewrite.MergeShardReductions(n.m, perColor)
	}

	// --- Phase 4: writes move ownership to the writing partition. ---
	for _, req := range l.Reqs {
		if req.Priv != runtime.ReadWrite && req.Priv != runtime.WriteDiscard {
			continue
		}
		for _, f := range req.Fields {
			n.owners[sim.FieldKey{Region: req.Region, Field: f}] = parts[req.Sym]
		}
	}
	return nil
}

func (n *node) ownerOf(regionName, field string) (*region.Partition, error) {
	owner := n.owners[sim.FieldKey{Region: regionName, Field: field}]
	if owner == nil {
		return nil, fmt.Errorf("no owner for %s.%s", regionName, field)
	}
	return owner, nil
}
