package exec

import (
	"fmt"
	"time"

	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/runtime"
	"autopart/internal/sim"
)

// node is one SPMD executor node. It holds a full-size local copy of
// every region (valid only on owned elements and fresh ghosts), its own
// replica of the owner map (all replicas evolve identically), and its
// rows of the per-launch statistics. Nodes communicate exclusively
// through the transport; no mutable state is shared.
//
// Execution is dependency-driven, not bulk-synchronous: each launch's
// incoming messages are known in advance (buildSched), all outgoing
// messages are issued before any receive blocks, the shard runs the
// moment its last ghost dependency lands, and the launch's write-back
// receives and reduction folds are deferred — queued as a pendingFinish
// and settled only when a later launch (or the final gather) touches
// one of the fields they write. A launch over fields disjoint from
// every pending finish therefore computes while those receives are
// still in flight; that compute-communication overlap is what the
// timing columns measure.
type node struct {
	id      int
	cfg     Config
	prog    *Program
	m       *ir.Machine
	owners  map[sim.FieldKey]*region.Partition
	tr      Transport
	mb      *mailbox
	stats   [][]sim.NodeStats
	times   [][]NodeTiming
	pending []*pendingFinish
}

// pendingFinish is a launch whose shard has run and whose sends are out,
// but whose write-back receives and folds have not been applied yet.
type pendingFinish struct {
	sched *launchSched
	res   *rewrite.ShardResult
}

func (n *node) nodes() int { return n.cfg.Nodes }

// run executes all steps of the plan, then settles every deferred
// finish so gather reads fully merged data.
func (n *node) run() error {
	for step := 0; step < n.cfg.Steps; step++ {
		n.stats[step] = make([]sim.NodeStats, len(n.prog.Plan.Tasks))
		n.times[step] = make([]NodeTiming, len(n.prog.Plan.Tasks))
		for li, t := range n.prog.Plan.Tasks {
			if err := n.runLaunch(step, li, t); err != nil {
				return fmt.Errorf("step %d, launch %s: %w", step, t.Launch.Name, err)
			}
		}
	}
	return n.settle(len(n.pending))
}

func (n *node) send(to int, msg message) {
	n.tr.Send(n.id, to, msg)
}

// take blocks until the dependency's message lands, then verifies the
// full tag (including the metadata-derived element set) before
// returning it.
func (n *node) take(d depSpec) (message, time.Time, error) {
	msg, at, err := n.mb.take(d.key)
	if err != nil {
		return msg, at, err
	}
	k := d.key
	if err := msg.checkTag(k.kind, k.step, k.launch, k.req, k.region, k.field, d.set); err != nil {
		return msg, at, err
	}
	return msg, at, nil
}

// needsFetch reports whether a requirement pulls ghost data before the
// launch: reads do, and §5.1 guarded reductions read-modify-write their
// targets in place. WriteDiscard and buffered reductions never fetch.
func needsFetch(req runtime.Requirement) bool {
	switch req.Priv {
	case runtime.ReadOnly, runtime.ReadWrite:
		return true
	case runtime.Reduce:
		return req.Guarded
	}
	return false
}

// settle applies the first count pending finishes, oldest first: take
// the deferred write-back messages, install guarded ships, fold merge
// buffers in canonical order. Settling in queue order keeps every
// same-field write sequence identical to the bulk-synchronous executor.
func (n *node) settle(count int) error {
	for i := 0; i < count; i++ {
		pf := n.pending[i]
		start := time.Now()
		if err := n.finish(pf); err != nil {
			return fmt.Errorf("finishing step %d, launch %s: %w",
				pf.sched.step, pf.sched.task.Launch.Name, err)
		}
		n.times[pf.sched.step][pf.sched.li].WallNS += time.Since(start).Nanoseconds()
	}
	n.pending = append([]*pendingFinish{}, n.pending[count:]...)
	return nil
}

// settleTouching settles every pending finish up to (and including) the
// last one whose writes intersect fields — later launches must observe
// those folds, and pending finishes on the same field must stay
// ordered, so the settle is a queue prefix, never a subset.
func (n *node) settleTouching(fields map[rewrite.FieldKey]bool) error {
	last := -1
	for i, pf := range n.pending {
		for fk := range pf.sched.touches {
			if fields[fk] {
				last = i
				break
			}
		}
	}
	return n.settle(last + 1)
}

// runLaunch drives one launch on this node:
//
//  1. settle pending finishes that conflict with this launch's fields;
//  2. build the dependency schedule from replicated metadata;
//  3. issue every outgoing ghost piece (sends never block);
//  4. take ghost dependencies as they land and install them — the
//     shard starts the moment the last one arrives;
//  5. run the shard (rewrite.RunShard) and flush its private writes;
//  6. issue every write-back send (guarded ships, buffer merges);
//  7. defer the write-back receives and folds as a pendingFinish;
//  8. move ownership of written fields (metadata, applied immediately
//     so later schedules see it).
//
// Bit-identity survives the reordering because writes stay canonically
// ordered where it matters: folds run per field in requirement order
// via rewrite.MergeShardReductions, settles run in launch order, and
// everything else lands on disjoint element sets.
func (n *node) runLaunch(step, li int, t runtime.Task) error {
	l := t.Launch
	if err := n.settleTouching(launchFields(l)); err != nil {
		return err
	}
	lt := &n.times[step][li]
	start := time.Now()

	sched, err := n.buildSched(step, li, t)
	if err != nil {
		return err
	}
	st := &n.stats[step][li]
	parts := n.prog.Parts
	j := n.id
	bpe := n.cfg.BytesPerElem

	// Outgoing ghosts: serve peers' remote needs from owned data.
	for ri, req := range l.Reqs {
		if !needsFetch(req) {
			continue
		}
		p := parts[req.Sym]
		for _, f := range req.Fields {
			owner, err := n.ownerOf(req.Region, f)
			if err != nil {
				return err
			}
			for k := 0; k < n.nodes(); k++ {
				if k == j {
					continue
				}
				need := p.Sub(k).Subtract(owner.Sub(k))
				piece := need.Intersect(owner.Sub(j))
				if piece.Empty() {
					continue
				}
				msg, err := packField(n.m.Regions[req.Region], f, piece)
				if err != nil {
					return err
				}
				msg.kind, msg.step, msg.launch, msg.req = ghostMsg, step, li, ri
				msg.region, msg.field = req.Region, f
				n.send(k, msg)
				st.BytesOut += float64(piece.Len()) * bpe
				st.FragsOut += piece.NumIntervals()
				st.MsgsOut++
			}
		}
	}

	// Incoming ghosts: the shard's compute dependencies. Install each
	// as it is taken; after the last take the shard is ready.
	for _, d := range sched.ghosts {
		msg, _, err := n.take(d)
		if err != nil {
			return err
		}
		if err := installField(n.m.Regions[d.key.region], d.key.field, &msg); err != nil {
			return err
		}
	}

	// Shard execution over this color only.
	t0 := time.Now()
	res, err := rewrite.RunShard(n.m, parts, t.Loop, j)
	if err != nil {
		return err
	}
	rewrite.FlushShard(n.m, res)
	t1 := time.Now()

	// Reduction-instance accounting: the buffer covers the instance
	// subregion minus the §5.2 private sub-partition (private elements
	// reduce directly into the local instance).
	for _, req := range l.Reqs {
		if req.Priv != runtime.Reduce || req.Guarded {
			continue
		}
		sub := parts[req.Sym].Sub(j)
		if sub.Empty() {
			continue
		}
		alloc := sub
		if req.PrivateSym != "" {
			alloc = sub.Subtract(parts[req.PrivateSym].Sub(j))
		}
		st.BufferElems += float64(alloc.Len()) * float64(len(req.Fields))
	}

	// Outgoing write-backs (guarded ships, buffer merges). A launch may
	// carry several unguarded reduction requirements on the same field
	// through different instance partitions (circuit reduces into
	// Nodes.charge via both wire endpoints). Sends and statistics stay
	// per-requirement — that is how sim charges them — but the shard
	// buffer is shared per field, so reachability is checked against the
	// union of the requirements' reach sets, and the owner-side fold
	// dedupes by sender before folding each contribution exactly once.
	mergeReach := map[rewrite.FieldKey]geometry.IndexSet{}
	var mergeOrder []rewrite.FieldKey
	for ri, req := range l.Reqs {
		if req.Priv != runtime.Reduce {
			continue
		}
		p := parts[req.Sym]
		if req.Guarded {
			for _, f := range req.Fields {
				owner, err := n.postOwnerOf(l, req.Region, f)
				if err != nil {
					return err
				}
				remote := p.Sub(j).Subtract(owner.Sub(j))
				if remote.Empty() {
					continue
				}
				st.BytesOut += float64(remote.Len()) * bpe
				st.FragsOut += remote.NumIntervals()
				covered := geometry.IndexSet{}
				for _, pc := range region.SplitByOwner(remote, owner) {
					msg, err := packField(n.m.Regions[req.Region], f, pc.Set)
					if err != nil {
						return err
					}
					msg.kind, msg.step, msg.launch, msg.req = shipMsg, step, li, ri
					msg.region, msg.field = req.Region, f
					n.send(pc.Color, msg)
					st.MsgsOut++
					covered = covered.Union(pc.Set)
				}
				if !covered.Equal(remote) {
					return fmt.Errorf("guarded write-back of %s.%s would lose updates on unowned set %s",
						req.Region, f, remote.Subtract(covered))
				}
			}
			continue
		}
		touched := p
		if req.TouchedSym != "" {
			touched = parts[req.TouchedSym]
		}
		if p.Sub(j).Empty() {
			continue
		}
		for _, f := range req.Fields {
			owner, err := n.postOwnerOf(l, req.Region, f)
			if err != nil {
				return err
			}
			fk := rewrite.FieldKey{Region: req.Region, Field: f}
			buf := res.Reductions[fk]
			if _, ok := mergeReach[fk]; !ok {
				mergeOrder = append(mergeOrder, fk)
			}
			reach := mergeReach[fk].Union(owner.Sub(j))
			remote := touched.Sub(j).Subtract(owner.Sub(j))
			if !remote.Empty() {
				st.BytesOut += float64(remote.Len()) * bpe
				st.FragsOut += remote.NumIntervals()
				for _, pc := range region.SplitByOwner(remote, owner) {
					var msg message
					if buf != nil {
						msg.scalars, msg.present = packBuffer(buf.Values, pc.Set)
					} else {
						msg.scalars, msg.present = packBuffer(nil, pc.Set)
					}
					msg.set = pc.Set
					msg.kind, msg.step, msg.launch, msg.req = mergeMsg, step, li, ri
					msg.region, msg.field = req.Region, f
					n.send(pc.Color, msg)
					st.MsgsOut++
				}
				reach = reach.Union(remote.Intersect(owner.UnionAll()))
			}
			mergeReach[fk] = reach
		}
	}
	// Contributions neither local nor shipped under any requirement would
	// silently vanish; the coherence protocol treats that as unsound.
	for _, fk := range mergeOrder {
		buf := res.Reductions[fk]
		if buf == nil {
			continue
		}
		reach := mergeReach[fk]
		for idx := range buf.Values {
			if !reach.Contains(idx) {
				return fmt.Errorf("reduction contribution to %s.%s[%d] has no owner to merge into",
					fk.Region, fk.Field, idx)
			}
		}
	}

	// Defer the write-back receives and folds; a later launch touching
	// the same fields (or the end of the run) settles them.
	n.pending = append(n.pending, &pendingFinish{sched: sched, res: res})

	// Writes move ownership to the writing partition (metadata; every
	// replica applies the same move at the same launch). The owner map
	// must stay a true partition: an aliased writer (e.g. an overlapping
	// user extern reused as a write partition) would give an element two
	// owners, and fold routing, ghost need-sets, and the final gather all
	// assume exactly one. Duplicated writers compute identical values
	// under snapshot semantics, so keeping the first color's copy is
	// sound — differential fuzzing caught a reduction fold landing on a
	// non-gathered replica before this disjointification.
	for _, req := range l.Reqs {
		if req.Priv != runtime.ReadWrite && req.Priv != runtime.WriteDiscard {
			continue
		}
		for _, f := range req.Fields {
			n.owners[sim.FieldKey{Region: req.Region, Field: f}] = sim.OwnerView(parts[req.Sym])
		}
	}

	// Timing: the launch overlapped communication with compute for the
	// part of the shard's window during which at least one expected
	// write-back (this launch's or an earlier pending one's) had not
	// yet arrived.
	var outstanding []tagKey
	for _, pf := range n.pending {
		for _, d := range pf.sched.backs {
			outstanding = append(outstanding, d.key)
		}
	}
	lt.ComputeNS = t1.Sub(t0).Nanoseconds()
	lt.OverlapNS = n.overlapWindow(t0, t1, outstanding).Nanoseconds()
	lt.WallNS += time.Since(start).Nanoseconds()
	return nil
}

// overlapWindow measures how much of the window [t0, t1] passed while
// at least one of deps had not yet arrived. Arrivals only accumulate,
// so the outstanding count is non-increasing over the window: the
// answer is the time to the last arrival, clamped to the window.
func (n *node) overlapWindow(t0, t1 time.Time, deps []tagKey) time.Duration {
	if len(deps) == 0 {
		return 0
	}
	last := t0
	for _, k := range deps {
		at, ok := n.mb.arrivedAt(k)
		if !ok || at.After(t1) {
			// Still outstanding (or landed after the window): the whole
			// window overlapped.
			return t1.Sub(t0)
		}
		if at.After(last) {
			last = at
		}
	}
	if last.After(t1) {
		return t1.Sub(t0)
	}
	return last.Sub(t0)
}

// finish applies one deferred launch completion: take every write-back
// dependency, install guarded ships, collect merge contributions per
// sender, then fold each reduced field in canonical order. folds
// accumulate, per reduced field, one contribution map per sender color;
// duplicate elements arriving from the same sender under different
// requirements carry identical values (both pack the sender's one shard
// buffer), so overwriting dedupes them and each (sender, element)
// contribution folds exactly once.
func (n *node) finish(pf *pendingFinish) error {
	sc := pf.sched
	perField := map[rewrite.FieldKey][]map[int64]float64{}
	for _, fs := range sc.folds {
		perField[fs.fk] = make([]map[int64]float64, n.nodes())
	}
	for _, d := range sc.backs {
		msg, _, err := n.take(d)
		if err != nil {
			return err
		}
		if d.key.kind == shipMsg {
			if err := installField(n.m.Regions[d.key.region], d.key.field, &msg); err != nil {
				return err
			}
			continue
		}
		perColor := perField[d.fk]
		if perColor == nil {
			return fmt.Errorf("merge message %s has no fold", d.key)
		}
		for idx, v := range unpackBuffer(&msg) {
			if perColor[d.key.from] == nil {
				perColor[d.key.from] = map[int64]float64{}
			}
			perColor[d.key.from][idx] = v
		}
	}
	// Our own shard's contributions on elements we own fold locally;
	// they join the field's per-color maps once, no matter how many
	// requirements cover the field. The fold is
	// rewrite.MergeShardReductions restricted to owner.Sub(j), so the
	// distributed merge reproduces the sequential one piecewise.
	for _, fs := range sc.folds {
		perColor := perField[fs.fk]
		if buf := pf.res.Reductions[fs.fk]; buf != nil {
			for idx, v := range buf.Values {
				if fs.own.Contains(idx) {
					if perColor[n.id] == nil {
						perColor[n.id] = map[int64]float64{}
					}
					perColor[n.id][idx] = v
				}
			}
		}
		merged := make([]map[rewrite.FieldKey]*rewrite.ReduceBuffer, len(perColor))
		for k, vals := range perColor {
			if len(vals) > 0 {
				merged[k] = map[rewrite.FieldKey]*rewrite.ReduceBuffer{
					fs.fk: {Op: fs.op, Values: vals},
				}
			}
		}
		rewrite.MergeShardReductions(n.m, merged)
	}
	return nil
}

func (n *node) ownerOf(regionName, field string) (*region.Partition, error) {
	owner := n.owners[sim.FieldKey{Region: regionName, Field: field}]
	if owner == nil {
		return nil, fmt.Errorf("no owner for %s.%s", regionName, field)
	}
	return owner, nil
}

// postOwnerOf returns the owner partition of a field as it will stand
// AFTER the launch's ownership moves. Reduction write-backs (ships and
// merges) must land on the copies that later launches and the final
// gather read: when the same launch also writes the field through an
// RW/WD requirement, routing them by the owner at launch entry folds
// contributions into replicas that stop being authoritative the moment
// the launch completes — differential fuzzing caught exactly that with
// a centered and an uncentered reduction of one field sharing a launch.
// The last write requirement wins, matching the ownership-move loop.
func (n *node) postOwnerOf(l *runtime.Launch, regionName, field string) (*region.Partition, error) {
	owner, err := n.ownerOf(regionName, field)
	if err != nil {
		return nil, err
	}
	for _, req := range l.Reqs {
		if req.Priv != runtime.ReadWrite && req.Priv != runtime.WriteDiscard {
			continue
		}
		if req.Region != regionName {
			continue
		}
		for _, f := range req.Fields {
			if f == field {
				owner = sim.OwnerView(n.prog.Parts[req.Sym])
			}
		}
	}
	return owner, nil
}
