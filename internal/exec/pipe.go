package exec

// pipe forwards messages from in to out in FIFO order with an unbounded
// elastic buffer between them. One pipe backs each ordered node pair, so
// a sender never blocks on a slow receiver: enqueueing all of a phase's
// outgoing messages before blocking on the phase's receives is what
// makes the exchange deadlock-free without barriers (a cycle of waiting
// nodes would require some send to block, and none can).
//
// The forwarder exits and closes out when in is closed and the buffer
// has drained.
func pipe(in <-chan message, out chan<- message) {
	var q []message
	for in != nil || len(q) > 0 {
		var outc chan<- message
		var head message
		if len(q) > 0 {
			outc = out
			head = q[0]
		}
		select {
		case m, ok := <-in:
			if !ok {
				in = nil
				continue
			}
			q = append(q, m)
		case outc <- head:
			q = q[1:]
		}
	}
	close(out)
}
