package exec

import (
	"runtime"
	"testing"
	"time"
)

// TestPipeFIFOUnderContention drives a pipe with a fast producer and a
// deliberately slow consumer, so the elastic buffer grows and shrinks
// while deliveries continue: every message must come out exactly once,
// in send order, and the producer must never be blocked by the
// consumer's pace (the never-blocks contract the executor's deadlock
// freedom rests on).
func TestPipeFIFOUnderContention(t *testing.T) {
	const n = 5000
	in := make(chan message)
	out := make(chan message)
	go pipe(in, out)

	sent := make(chan struct{})
	go func() {
		defer close(sent)
		for i := 0; i < n; i++ {
			in <- message{step: i}
		}
		close(in)
	}()

	for i := 0; i < n; i++ {
		if i%500 == 0 {
			time.Sleep(time.Millisecond) // let the buffer accumulate
		}
		m, ok := <-out
		if !ok {
			t.Fatalf("pipe closed after %d of %d messages", i, n)
		}
		if m.step != i {
			t.Fatalf("message %d arrived out of order (step=%d)", i, m.step)
		}
	}
	if _, ok := <-out; ok {
		t.Fatal("pipe delivered an extra message")
	}
	<-sent
}

// TestPipeDrainsBufferOnClose closes the input while the buffer still
// holds undelivered messages: the pipe must deliver every one before
// closing its output.
func TestPipeDrainsBufferOnClose(t *testing.T) {
	const n = 1000
	in := make(chan message)
	out := make(chan message)
	go pipe(in, out)
	for i := 0; i < n; i++ {
		in <- message{step: i}
	}
	close(in)
	for i := 0; i < n; i++ {
		m, ok := <-out
		if !ok {
			t.Fatalf("pipe closed with %d messages still buffered", n-i)
		}
		if m.step != i {
			t.Fatalf("drain reordered message %d (step=%d)", i, m.step)
		}
	}
	if _, ok := <-out; ok {
		t.Fatal("pipe delivered a message that was never sent")
	}
}

// TestPipeNoGoroutineLeak spins up many pipes, runs traffic through
// them, closes them, and checks the goroutine count returns to (about)
// its baseline — a forwarder that fails to exit would accumulate across
// the executor's many short runs.
func TestPipeNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	const pipes = 200
	outs := make([]chan message, pipes)
	for i := range outs {
		in := make(chan message)
		outs[i] = make(chan message)
		go pipe(in, outs[i])
		go func(in chan message) {
			for j := 0; j < 10; j++ {
				in <- message{step: j}
			}
			close(in)
		}(in)
	}
	for _, out := range outs {
		for range out {
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after drain", before, runtime.NumGoroutine())
}
