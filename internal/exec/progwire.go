package exec

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"

	"autopart/internal/geometry"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/runtime"
	"autopart/internal/sim"
)

// Program wire format: the serialized form of an executable Program that
// the coordinator ships to every worker process during bootstrap. It
// reuses wire.go's primitives (little-endian, length-prefixed counts,
// bounds-checked reads) and its safety contract: DecodeProgram never
// panics on corrupt input, never allocates more than the input's own
// size allows, rejects trailing bytes, and rejects any version byte it
// does not speak.
//
// Layout (one blob, no outer frame — the control plane frames it):
//
//	u8  progWireVersion
//	u32 region count, then per region (sorted by name):
//	    str name, u64 size, and per field kind (sorted field names):
//	    u32 count { str field, size × payload }
//	u32 func count { str name, u8 kind, kind-specific body }
//	u32 extern partition count { partition }   (machine.Partitions)
//	u32 partition count { str sym, partition } (prog.Parts)
//	u32 owner count { str region, str field, partition }
//	u32 task count { launch, parallel loop }
//
// A partition is its name, its parent region's name, and its subregion
// index sets; decode re-parents it onto the already-decoded region and
// verifies every subregion stays inside the parent's index space (the
// invariant region.NewPartition would otherwise enforce by panicking).
// A parallel loop's Access map is keyed by statement pointers, which
// cannot cross the wire: statements are numbered by pre-order walk of
// the loop body, and access entries are written as (index, info) pairs
// re-associated after the statement tree is rebuilt.
const progWireVersion = 1

// maxProgDepth bounds statement and scalar-expression nesting during
// decode: real programs are a handful of levels deep, and the limit
// keeps fuzzed inputs from overflowing the decoder's stack.
const maxProgDepth = 200

// ErrProgWireVersion is wrapped by decode errors caused by a version
// byte mismatch, so callers can distinguish "foreign version" from
// "corrupt blob".
var errProgWireVersion = fmt.Errorf("exec: progwire: version mismatch")

func appendStr(buf []byte, s string) ([]byte, error) {
	if len(s) > math.MaxUint16 {
		return nil, fmt.Errorf("exec: progwire: string of %d bytes too long", len(s))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(s)))
	return append(buf, s...), nil
}

func (r *wireReader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	b, err := r.bytes(int(n))
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func appendSet(buf []byte, set geometry.IndexSet) []byte {
	ivs := set.Intervals()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ivs)))
	for _, iv := range ivs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Lo))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Hi))
	}
	return buf
}

func (r *wireReader) set() (geometry.IndexSet, error) {
	n, err := r.count(16)
	if err != nil {
		return geometry.IndexSet{}, err
	}
	ivs := make([]geometry.Interval, n)
	for i := range ivs {
		lo, err := r.u64()
		if err != nil {
			return geometry.IndexSet{}, err
		}
		hi, err := r.u64()
		if err != nil {
			return geometry.IndexSet{}, err
		}
		ivs[i] = geometry.Interval{Lo: int64(lo), Hi: int64(hi)}
	}
	return geometry.FromIntervals(ivs...), nil
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeProgram serializes prog for distribution to worker processes.
// The encoding is deterministic: maps are written in sorted key order,
// so the same program always produces the same bytes.
func EncodeProgram(prog *Program) ([]byte, error) {
	if prog == nil || prog.Machine == nil || prog.Plan == nil || prog.Owners == nil {
		return nil, fmt.Errorf("exec: progwire: incomplete program")
	}
	buf := []byte{progWireVersion}
	var err error
	if buf, err = appendRegions(buf, prog.Machine); err != nil {
		return nil, err
	}
	if buf, err = appendFuncs(buf, prog.Machine); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(prog.Machine.Partitions)))
	for _, name := range sortedKeys(prog.Machine.Partitions) {
		if buf, err = appendPartition(buf, prog.Machine.Partitions[name]); err != nil {
			return nil, err
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(prog.Parts)))
	for _, sym := range sortedKeys(prog.Parts) {
		if buf, err = appendStr(buf, sym); err != nil {
			return nil, err
		}
		if buf, err = appendPartition(buf, prog.Parts[sym]); err != nil {
			return nil, err
		}
	}
	fks := make([]sim.FieldKey, 0, len(prog.Owners.Owners))
	for fk := range prog.Owners.Owners {
		fks = append(fks, fk)
	}
	sort.Slice(fks, func(i, j int) bool {
		if fks[i].Region != fks[j].Region {
			return fks[i].Region < fks[j].Region
		}
		return fks[i].Field < fks[j].Field
	})
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(fks)))
	for _, fk := range fks {
		if buf, err = appendStr(buf, fk.Region); err != nil {
			return nil, err
		}
		if buf, err = appendStr(buf, fk.Field); err != nil {
			return nil, err
		}
		if buf, err = appendPartition(buf, prog.Owners.Owners[fk]); err != nil {
			return nil, err
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(prog.Plan.Tasks)))
	for _, t := range prog.Plan.Tasks {
		if buf, err = appendLaunch(buf, t.Launch); err != nil {
			return nil, err
		}
		if buf, err = appendParallelLoop(buf, t.Loop); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// DecodeProgram rebuilds a Program from EncodeProgram's output. The
// result shares nothing with the encoder's program: regions, partitions,
// and the plan are freshly built, ready for a worker's RunNode.
func DecodeProgram(data []byte) (*Program, error) {
	r := &wireReader{data: data}
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != progWireVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", errProgWireVersion, v, progWireVersion)
	}
	m := ir.NewMachine()
	if err := readRegions(r, m); err != nil {
		return nil, err
	}
	if err := readFuncs(r, m); err != nil {
		return nil, err
	}
	nparts, err := r.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nparts; i++ {
		p, err := readPartition(r, m)
		if err != nil {
			return nil, err
		}
		if _, dup := m.Partitions[p.Name()]; dup {
			return nil, fmt.Errorf("exec: progwire: duplicate extern partition %q", p.Name())
		}
		m.Partitions[p.Name()] = p
	}
	prog := &Program{Machine: m, Plan: &runtime.Plan{}, Parts: map[string]*region.Partition{}, Owners: sim.NewState()}
	nsyms, err := r.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nsyms; i++ {
		sym, err := r.str()
		if err != nil {
			return nil, err
		}
		p, err := readPartition(r, m)
		if err != nil {
			return nil, err
		}
		if _, dup := prog.Parts[sym]; dup {
			return nil, fmt.Errorf("exec: progwire: duplicate partition symbol %q", sym)
		}
		prog.Parts[sym] = p
	}
	nowners, err := r.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nowners; i++ {
		regionName, err := r.str()
		if err != nil {
			return nil, err
		}
		field, err := r.str()
		if err != nil {
			return nil, err
		}
		p, err := readPartition(r, m)
		if err != nil {
			return nil, err
		}
		fk := sim.FieldKey{Region: regionName, Field: field}
		if _, dup := prog.Owners.Owners[fk]; dup {
			return nil, fmt.Errorf("exec: progwire: duplicate owner for %s.%s", regionName, field)
		}
		prog.Owners.Owners[fk] = p
	}
	ntasks, err := r.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < ntasks; i++ {
		launch, err := readLaunch(r)
		if err != nil {
			return nil, err
		}
		loop, err := readParallelLoop(r)
		if err != nil {
			return nil, err
		}
		prog.Plan.Tasks = append(prog.Plan.Tasks, runtime.Task{Launch: launch, Loop: loop})
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("exec: progwire: %d trailing bytes after program", r.remaining())
	}
	return prog, nil
}

func appendRegions(buf []byte, m *ir.Machine) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Regions)))
	var err error
	for _, name := range sortedKeys(m.Regions) {
		reg := m.Regions[name]
		if buf, err = appendStr(buf, reg.Name()); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint64(buf, uint64(reg.Size()))
		var scalars, indexes, ranges []string
		for _, f := range reg.FieldNames() {
			switch kind, _ := reg.FieldKindOf(f); kind {
			case region.ScalarField:
				scalars = append(scalars, f)
			case region.IndexField:
				indexes = append(indexes, f)
			case region.RangeField:
				ranges = append(ranges, f)
			}
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(scalars)))
		for _, f := range scalars {
			if buf, err = appendStr(buf, f); err != nil {
				return nil, err
			}
			for _, v := range reg.Scalar(f) {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(indexes)))
		for _, f := range indexes {
			if buf, err = appendStr(buf, f); err != nil {
				return nil, err
			}
			for _, v := range reg.Index(f) {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ranges)))
		for _, f := range ranges {
			if buf, err = appendStr(buf, f); err != nil {
				return nil, err
			}
			for _, iv := range reg.Ranges(f) {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Lo))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Hi))
			}
		}
	}
	return buf, nil
}

func readRegions(r *wireReader, m *ir.Machine) error {
	nregions, err := r.count(1)
	if err != nil {
		return err
	}
	for i := 0; i < nregions; i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		if _, dup := m.Regions[name]; dup {
			return fmt.Errorf("exec: progwire: duplicate region %q", name)
		}
		rawSize, err := r.u64()
		if err != nil {
			return err
		}
		size := int64(rawSize)
		if size < 0 {
			return fmt.Errorf("exec: progwire: region %q has negative size", name)
		}
		reg := region.New(name, size)
		// Each field kind reads: field count, then per field a name and
		// exactly size elements. The per-element count guard is the
		// region size itself, checked against the remaining frame.
		for kind := region.ScalarField; kind <= region.RangeField; kind++ {
			elem := 8
			if kind == region.RangeField {
				elem = 16
			}
			nfields, err := r.count(1)
			if err != nil {
				return err
			}
			for j := 0; j < nfields; j++ {
				f, err := r.str()
				if err != nil {
					return err
				}
				if f == "" || reg.HasField(f) {
					return fmt.Errorf("exec: progwire: region %q: bad or duplicate field %q", name, f)
				}
				if size > int64(r.remaining()/elem) {
					return fmt.Errorf("exec: progwire: region %q field %q: %d elements exceed frame remainder %d", name, f, size, r.remaining())
				}
				switch kind {
				case region.ScalarField:
					reg.AddScalarField(f)
					data := reg.Scalar(f)
					for k := range data {
						v, err := r.u64()
						if err != nil {
							return err
						}
						data[k] = math.Float64frombits(v)
					}
				case region.IndexField:
					reg.AddIndexField(f)
					data := reg.Index(f)
					for k := range data {
						v, err := r.u64()
						if err != nil {
							return err
						}
						data[k] = int64(v)
					}
				case region.RangeField:
					reg.AddRangeField(f)
					data := reg.Ranges(f)
					for k := range data {
						lo, err := r.u64()
						if err != nil {
							return err
						}
						hi, err := r.u64()
						if err != nil {
							return err
						}
						data[k] = geometry.Interval{Lo: int64(lo), Hi: int64(hi)}
					}
				}
			}
		}
		m.AddRegion(reg)
	}
	return nil
}

// Index function kinds on the wire.
const (
	funcIdentity = iota
	funcAffine
	funcTable
)

func appendFuncs(buf []byte, m *ir.Machine) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Funcs)))
	var err error
	for _, name := range sortedKeys(m.Funcs) {
		if buf, err = appendStr(buf, name); err != nil {
			return nil, err
		}
		switch f := m.Funcs[name].(type) {
		case geometry.IdentityMap:
			buf = append(buf, funcIdentity)
		case geometry.AffineMap:
			buf = append(buf, funcAffine)
			if buf, err = appendStr(buf, f.Name); err != nil {
				return nil, err
			}
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Stride))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Offset))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Modulo))
			if f.Clamp != nil {
				buf = append(buf, 1)
				buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Clamp.Lo))
				buf = binary.LittleEndian.AppendUint64(buf, uint64(f.Clamp.Hi))
			} else {
				buf = append(buf, 0)
			}
		case geometry.TableMap:
			buf = append(buf, funcTable)
			if buf, err = appendStr(buf, f.Name); err != nil {
				return nil, err
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Table)))
			for _, v := range f.Table {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		default:
			return nil, fmt.Errorf("exec: progwire: index function %q has unserializable type %T", name, m.Funcs[name])
		}
	}
	return buf, nil
}

func readFuncs(r *wireReader, m *ir.Machine) error {
	nfuncs, err := r.count(1)
	if err != nil {
		return err
	}
	for i := 0; i < nfuncs; i++ {
		name, err := r.str()
		if err != nil {
			return err
		}
		if _, dup := m.Funcs[name]; dup {
			return fmt.Errorf("exec: progwire: duplicate index function %q", name)
		}
		kind, err := r.u8()
		if err != nil {
			return err
		}
		switch kind {
		case funcIdentity:
			m.Funcs[name] = geometry.IdentityMap{}
		case funcAffine:
			f := geometry.AffineMap{}
			if f.Name, err = r.str(); err != nil {
				return err
			}
			fields := [3]*int64{&f.Stride, &f.Offset, &f.Modulo}
			for _, dst := range fields {
				v, err := r.u64()
				if err != nil {
					return err
				}
				*dst = int64(v)
			}
			hasClamp, err := r.u8()
			if err != nil {
				return err
			}
			if hasClamp != 0 {
				lo, err := r.u64()
				if err != nil {
					return err
				}
				hi, err := r.u64()
				if err != nil {
					return err
				}
				f.Clamp = &geometry.Interval{Lo: int64(lo), Hi: int64(hi)}
			}
			m.Funcs[name] = f
		case funcTable:
			f := geometry.TableMap{}
			if f.Name, err = r.str(); err != nil {
				return err
			}
			n, err := r.count(8)
			if err != nil {
				return err
			}
			f.Table = make([]int64, n)
			for k := range f.Table {
				v, err := r.u64()
				if err != nil {
					return err
				}
				f.Table[k] = int64(v)
			}
			m.Funcs[name] = f
		default:
			return fmt.Errorf("exec: progwire: unknown index function kind %d", kind)
		}
	}
	return nil
}

func appendPartition(buf []byte, p *region.Partition) ([]byte, error) {
	if p == nil || p.Parent() == nil {
		return nil, fmt.Errorf("exec: progwire: partition without a parent region")
	}
	buf, err := appendStr(buf, p.Name())
	if err != nil {
		return nil, err
	}
	if buf, err = appendStr(buf, p.Parent().Name()); err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.NumSubs()))
	for _, s := range p.Subs() {
		buf = appendSet(buf, s)
	}
	return buf, nil
}

// readPartition decodes a partition and re-parents it onto m's region of
// the recorded name, rejecting (rather than panicking on) subregions
// that escape the parent's index space.
func readPartition(r *wireReader, m *ir.Machine) (*region.Partition, error) {
	name, err := r.str()
	if err != nil {
		return nil, err
	}
	parentName, err := r.str()
	if err != nil {
		return nil, err
	}
	parent := m.Regions[parentName]
	if parent == nil {
		return nil, fmt.Errorf("exec: progwire: partition %q references unknown region %q", name, parentName)
	}
	nsubs, err := r.count(4)
	if err != nil {
		return nil, err
	}
	space := parent.Space()
	subs := make([]geometry.IndexSet, nsubs)
	for i := range subs {
		s, err := r.set()
		if err != nil {
			return nil, err
		}
		if !s.SubsetOf(space) {
			return nil, fmt.Errorf("exec: progwire: partition %q: subregion %d escapes region %q", name, i, parentName)
		}
		subs[i] = s
	}
	return region.NewPartition(name, parent, subs), nil
}

func appendLaunch(buf []byte, l *runtime.Launch) ([]byte, error) {
	if l == nil {
		return nil, fmt.Errorf("exec: progwire: task without a launch")
	}
	var err error
	for _, s := range []string{l.Name, l.IterSym, l.WorkSym} {
		if buf, err = appendStr(buf, s); err != nil {
			return nil, err
		}
	}
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(l.WorkPerElement))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(l.Reqs)))
	for _, req := range l.Reqs {
		if buf, err = appendStr(buf, req.Region); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(req.Fields)))
		for _, f := range req.Fields {
			if buf, err = appendStr(buf, f); err != nil {
				return nil, err
			}
		}
		buf = append(buf, byte(req.Priv))
		for _, s := range []string{req.Sym, req.ReduceOp, req.PrivateSym, req.TouchedSym} {
			if buf, err = appendStr(buf, s); err != nil {
				return nil, err
			}
		}
		buf = append(buf, boolByte(req.Guarded))
	}
	return buf, nil
}

func readLaunch(r *wireReader) (*runtime.Launch, error) {
	l := &runtime.Launch{}
	for _, dst := range []*string{&l.Name, &l.IterSym, &l.WorkSym} {
		s, err := r.str()
		if err != nil {
			return nil, err
		}
		*dst = s
	}
	bits, err := r.u64()
	if err != nil {
		return nil, err
	}
	l.WorkPerElement = math.Float64frombits(bits)
	nreqs, err := r.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nreqs; i++ {
		var req runtime.Requirement
		if req.Region, err = r.str(); err != nil {
			return nil, err
		}
		nfields, err := r.count(2)
		if err != nil {
			return nil, err
		}
		for j := 0; j < nfields; j++ {
			f, err := r.str()
			if err != nil {
				return nil, err
			}
			req.Fields = append(req.Fields, f)
		}
		priv, err := r.u8()
		if err != nil {
			return nil, err
		}
		if priv > byte(runtime.Reduce) {
			return nil, fmt.Errorf("exec: progwire: launch %s: unknown privilege %d", l.Name, priv)
		}
		req.Priv = runtime.Privilege(priv)
		for _, dst := range []*string{&req.Sym, &req.ReduceOp, &req.PrivateSym, &req.TouchedSym} {
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			*dst = s
		}
		guarded, err := r.u8()
		if err != nil {
			return nil, err
		}
		req.Guarded = guarded != 0
		l.Reqs = append(l.Reqs, req)
	}
	return l, nil
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// walkStmts visits the statement tree in pre-order, the traversal both
// sides of the wire use to number statements for the Access map.
func walkStmts(stmts []ir.Stmt, fn func(ir.Stmt)) {
	for _, s := range stmts {
		fn(s)
		switch st := s.(type) {
		case *ir.Inner:
			walkStmts(st.Body, fn)
		case *ir.IfIn:
			walkStmts(st.Then, fn)
			walkStmts(st.Else, fn)
		case *ir.IfCmp:
			walkStmts(st.Then, fn)
			walkStmts(st.Else, fn)
		}
	}
}

func appendParallelLoop(buf []byte, pl *rewrite.ParallelLoop) ([]byte, error) {
	if pl == nil || pl.Loop == nil {
		return nil, fmt.Errorf("exec: progwire: task without a loop")
	}
	var err error
	if buf, err = appendStr(buf, pl.IterSym); err != nil {
		return nil, err
	}
	buf = append(buf, boolByte(pl.Relaxed))
	if buf, err = appendStr(buf, pl.Loop.Var); err != nil {
		return nil, err
	}
	if buf, err = appendStr(buf, pl.Loop.Region); err != nil {
		return nil, err
	}
	if buf, err = appendStmts(buf, pl.Loop.Stmts); err != nil {
		return nil, err
	}
	// Access entries, keyed by the statement's pre-order index and
	// written in index order for determinism.
	index := map[ir.Stmt]int{}
	walkStmts(pl.Loop.Stmts, func(s ir.Stmt) { index[s] = len(index) })
	type entry struct {
		idx  int
		info *rewrite.AccessInfo
	}
	entries := make([]entry, 0, len(pl.Access))
	for s, info := range pl.Access {
		idx, ok := index[s]
		if !ok {
			return nil, fmt.Errorf("exec: progwire: access entry for statement outside the loop body (%s)", s)
		}
		entries = append(entries, entry{idx, info})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].idx < entries[j].idx })
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.idx))
		info := e.info
		for _, s := range []string{info.Sym, string(info.Op), info.Region, info.Field, info.PrivateSym} {
			if buf, err = appendStr(buf, s); err != nil {
				return nil, err
			}
		}
		buf = append(buf, byte(info.Kind))
		var flags byte
		if info.Centered {
			flags |= 1
		}
		if info.Guarded {
			flags |= 2
		}
		if info.Buffered {
			flags |= 4
		}
		buf = append(buf, flags)
	}
	return buf, nil
}

func readParallelLoop(r *wireReader) (*rewrite.ParallelLoop, error) {
	pl := &rewrite.ParallelLoop{Loop: &ir.Loop{}, Access: map[ir.Stmt]*rewrite.AccessInfo{}}
	var err error
	if pl.IterSym, err = r.str(); err != nil {
		return nil, err
	}
	relaxed, err := r.u8()
	if err != nil {
		return nil, err
	}
	pl.Relaxed = relaxed != 0
	if pl.Loop.Var, err = r.str(); err != nil {
		return nil, err
	}
	if pl.Loop.Region, err = r.str(); err != nil {
		return nil, err
	}
	if pl.Loop.Stmts, err = readStmts(r, 0); err != nil {
		return nil, err
	}
	var order []ir.Stmt
	walkStmts(pl.Loop.Stmts, func(s ir.Stmt) { order = append(order, s) })
	naccess, err := r.count(4)
	if err != nil {
		return nil, err
	}
	for i := 0; i < naccess; i++ {
		idx, err := r.u32()
		if err != nil {
			return nil, err
		}
		if int(idx) >= len(order) {
			return nil, fmt.Errorf("exec: progwire: access entry for statement %d of %d", idx, len(order))
		}
		st := order[idx]
		if _, dup := pl.Access[st]; dup {
			return nil, fmt.Errorf("exec: progwire: duplicate access entry for statement %d", idx)
		}
		info := &rewrite.AccessInfo{}
		var op string
		for _, dst := range []*string{&info.Sym, &op, &info.Region, &info.Field, &info.PrivateSym} {
			s, err := r.str()
			if err != nil {
				return nil, err
			}
			*dst = s
		}
		info.Op = lang.ReduceOp(op)
		kind, err := r.u8()
		if err != nil {
			return nil, err
		}
		if kind > byte(infer.RangeAccess) {
			return nil, fmt.Errorf("exec: progwire: unknown access kind %d", kind)
		}
		info.Kind = infer.AccessKind(kind)
		flags, err := r.u8()
		if err != nil {
			return nil, err
		}
		info.Centered = flags&1 != 0
		info.Guarded = flags&2 != 0
		info.Buffered = flags&4 != 0
		pl.Access[st] = info
	}
	return pl, nil
}

// Statement tags on the wire.
const (
	stmtLoad = iota + 1
	stmtStore
	stmtApply
	stmtAlias
	stmtInner
	stmtIfIn
	stmtIfCmp
	stmtLet
)

func appendPos(buf []byte, p lang.Pos) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(p.Line))
	return binary.LittleEndian.AppendUint32(buf, uint32(p.Col))
}

func (r *wireReader) srcPos() (lang.Pos, error) {
	line, err := r.u32()
	if err != nil {
		return lang.Pos{}, err
	}
	col, err := r.u32()
	if err != nil {
		return lang.Pos{}, err
	}
	return lang.Pos{Line: int(int32(line)), Col: int(int32(col))}, nil
}

func appendStmts(buf []byte, stmts []ir.Stmt) ([]byte, error) {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(stmts)))
	var err error
	for _, s := range stmts {
		if buf, err = appendStmt(buf, s); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendStmt(buf []byte, s ir.Stmt) ([]byte, error) {
	var err error
	appendAll := func(tag byte, pos lang.Pos, strs ...string) error {
		buf = append(buf, tag)
		buf = appendPos(buf, pos)
		for _, str := range strs {
			if buf, err = appendStr(buf, str); err != nil {
				return err
			}
		}
		return nil
	}
	switch st := s.(type) {
	case *ir.Load:
		return buf, appendAll(stmtLoad, st.Pos, st.Var, st.Region, st.Field, st.Idx)
	case *ir.Store:
		if err := appendAll(stmtStore, st.Pos, st.Region, st.Field, st.Idx, string(st.Op)); err != nil {
			return nil, err
		}
		buf, err = appendScalarExpr(buf, st.Rhs)
		return buf, err
	case *ir.Apply:
		return buf, appendAll(stmtApply, st.Pos, st.Var, st.Func, st.Arg)
	case *ir.Alias:
		return buf, appendAll(stmtAlias, st.Pos, st.Var, st.Src)
	case *ir.Inner:
		if err := appendAll(stmtInner, st.Pos, st.Var, st.RangeRegion, st.RangeField, st.Idx); err != nil {
			return nil, err
		}
		buf, err = appendStmts(buf, st.Body)
		return buf, err
	case *ir.IfIn:
		if err := appendAll(stmtIfIn, st.Pos, st.Idx, st.Space); err != nil {
			return nil, err
		}
		if buf, err = appendStmts(buf, st.Then); err != nil {
			return nil, err
		}
		buf, err = appendStmts(buf, st.Else)
		return buf, err
	case *ir.IfCmp:
		if err := appendAll(stmtIfCmp, st.Pos, st.Op); err != nil {
			return nil, err
		}
		if buf, err = appendScalarExpr(buf, st.L); err != nil {
			return nil, err
		}
		if buf, err = appendScalarExpr(buf, st.R); err != nil {
			return nil, err
		}
		if buf, err = appendStmts(buf, st.Then); err != nil {
			return nil, err
		}
		buf, err = appendStmts(buf, st.Else)
		return buf, err
	case *ir.LetScalar:
		if err := appendAll(stmtLet, st.Pos, st.Var); err != nil {
			return nil, err
		}
		buf, err = appendScalarExpr(buf, st.Rhs)
		return buf, err
	default:
		return nil, fmt.Errorf("exec: progwire: unserializable statement type %T", s)
	}
}

func readStmts(r *wireReader, depth int) ([]ir.Stmt, error) {
	if depth > maxProgDepth {
		return nil, fmt.Errorf("exec: progwire: statement nesting exceeds %d", maxProgDepth)
	}
	// A statement is at least tag + pos = 9 bytes.
	n, err := r.count(9)
	if err != nil {
		return nil, err
	}
	var out []ir.Stmt
	for i := 0; i < n; i++ {
		s, err := readStmt(r, depth)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

func readStmt(r *wireReader, depth int) (ir.Stmt, error) {
	tag, err := r.u8()
	if err != nil {
		return nil, err
	}
	pos, err := r.srcPos()
	if err != nil {
		return nil, err
	}
	strs := func(dsts ...*string) error {
		for _, dst := range dsts {
			s, err := r.str()
			if err != nil {
				return err
			}
			*dst = s
		}
		return nil
	}
	switch tag {
	case stmtLoad:
		st := &ir.Load{Pos: pos}
		return st, strs(&st.Var, &st.Region, &st.Field, &st.Idx)
	case stmtStore:
		st := &ir.Store{Pos: pos}
		var op string
		if err := strs(&st.Region, &st.Field, &st.Idx, &op); err != nil {
			return nil, err
		}
		st.Op = lang.ReduceOp(op)
		if st.Rhs, err = readScalarExpr(r, depth+1); err != nil {
			return nil, err
		}
		return st, nil
	case stmtApply:
		st := &ir.Apply{Pos: pos}
		return st, strs(&st.Var, &st.Func, &st.Arg)
	case stmtAlias:
		st := &ir.Alias{Pos: pos}
		return st, strs(&st.Var, &st.Src)
	case stmtInner:
		st := &ir.Inner{Pos: pos}
		if err := strs(&st.Var, &st.RangeRegion, &st.RangeField, &st.Idx); err != nil {
			return nil, err
		}
		if st.Body, err = readStmts(r, depth+1); err != nil {
			return nil, err
		}
		return st, nil
	case stmtIfIn:
		st := &ir.IfIn{Pos: pos}
		if err := strs(&st.Idx, &st.Space); err != nil {
			return nil, err
		}
		if st.Then, err = readStmts(r, depth+1); err != nil {
			return nil, err
		}
		if st.Else, err = readStmts(r, depth+1); err != nil {
			return nil, err
		}
		return st, nil
	case stmtIfCmp:
		st := &ir.IfCmp{Pos: pos}
		if err := strs(&st.Op); err != nil {
			return nil, err
		}
		if st.L, err = readScalarExpr(r, depth+1); err != nil {
			return nil, err
		}
		if st.R, err = readScalarExpr(r, depth+1); err != nil {
			return nil, err
		}
		if st.Then, err = readStmts(r, depth+1); err != nil {
			return nil, err
		}
		if st.Else, err = readStmts(r, depth+1); err != nil {
			return nil, err
		}
		return st, nil
	case stmtLet:
		st := &ir.LetScalar{Pos: pos}
		if err := strs(&st.Var); err != nil {
			return nil, err
		}
		if st.Rhs, err = readScalarExpr(r, depth+1); err != nil {
			return nil, err
		}
		return st, nil
	default:
		return nil, fmt.Errorf("exec: progwire: unknown statement tag %d", tag)
	}
}

// Scalar expression tags on the wire.
const (
	exprConst = iota + 1
	exprVar
	exprCall
	exprBin
)

func appendScalarExpr(buf []byte, e ir.ScalarExpr) ([]byte, error) {
	var err error
	switch x := e.(type) {
	case ir.Const:
		buf = append(buf, exprConst)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x.V))
		return buf, nil
	case ir.VarExpr:
		buf = append(buf, exprVar)
		return appendStr(buf, x.Name)
	case ir.CallExpr:
		buf = append(buf, exprCall)
		if buf, err = appendStr(buf, x.Func); err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(x.Args)))
		for _, a := range x.Args {
			if buf, err = appendScalarExpr(buf, a); err != nil {
				return nil, err
			}
		}
		return buf, nil
	case ir.BinExpr:
		buf = append(buf, exprBin)
		if buf, err = appendStr(buf, x.Op); err != nil {
			return nil, err
		}
		if buf, err = appendScalarExpr(buf, x.L); err != nil {
			return nil, err
		}
		return appendScalarExpr(buf, x.R)
	default:
		return nil, fmt.Errorf("exec: progwire: unserializable scalar expression type %T", e)
	}
}

func readScalarExpr(r *wireReader, depth int) (ir.ScalarExpr, error) {
	if depth > maxProgDepth {
		return nil, fmt.Errorf("exec: progwire: expression nesting exceeds %d", maxProgDepth)
	}
	tag, err := r.u8()
	if err != nil {
		return nil, err
	}
	switch tag {
	case exprConst:
		bits, err := r.u64()
		if err != nil {
			return nil, err
		}
		return ir.Const{V: math.Float64frombits(bits)}, nil
	case exprVar:
		name, err := r.str()
		if err != nil {
			return nil, err
		}
		return ir.VarExpr{Name: name}, nil
	case exprCall:
		x := ir.CallExpr{}
		if x.Func, err = r.str(); err != nil {
			return nil, err
		}
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		for i := 0; i < n; i++ {
			a, err := readScalarExpr(r, depth+1)
			if err != nil {
				return nil, err
			}
			x.Args = append(x.Args, a)
		}
		return x, nil
	case exprBin:
		x := ir.BinExpr{}
		if x.Op, err = r.str(); err != nil {
			return nil, err
		}
		if x.L, err = readScalarExpr(r, depth+1); err != nil {
			return nil, err
		}
		if x.R, err = readScalarExpr(r, depth+1); err != nil {
			return nil, err
		}
		return x, nil
	default:
		return nil, fmt.Errorf("exec: progwire: unknown expression tag %d", tag)
	}
}

// EncodeNodeResult serializes one node's share of a run's outcome for
// the worker → coordinator result frame.
func EncodeNodeResult(nr *NodeResult) ([]byte, error) {
	buf := []byte{progWireVersion}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(nr.ID))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nr.Stats)))
	if len(nr.Times) != len(nr.Stats) {
		return nil, fmt.Errorf("exec: progwire: node result has %d stat steps but %d timing steps", len(nr.Stats), len(nr.Times))
	}
	for step, launches := range nr.Stats {
		if len(nr.Times[step]) != len(launches) {
			return nil, fmt.Errorf("exec: progwire: node result step %d has %d stat launches but %d timing launches", step, len(launches), len(nr.Times[step]))
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(launches)))
		for li, ns := range launches {
			for _, v := range []float64{ns.ComputeUnits, ns.BufferElems, ns.BytesIn, ns.BytesOut} {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
			}
			for _, v := range []int{ns.MsgsIn, ns.MsgsOut, ns.FragsIn, ns.FragsOut} {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
			nt := nr.Times[step][li]
			for _, v := range []int64{nt.WallNS, nt.ComputeNS, nt.OverlapNS} {
				buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
			}
		}
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(nr.final)))
	for i := range nr.final {
		body, err := appendMessage(nil, &nr.final[i])
		if err != nil {
			return nil, err
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(body)))
		buf = append(buf, body...)
	}
	return buf, nil
}

// DecodeNodeResult parses EncodeNodeResult's output.
func DecodeNodeResult(data []byte) (*NodeResult, error) {
	r := &wireReader{data: data}
	v, err := r.u8()
	if err != nil {
		return nil, err
	}
	if v != progWireVersion {
		return nil, fmt.Errorf("%w: got %d, want %d", errProgWireVersion, v, progWireVersion)
	}
	nr := &NodeResult{}
	id, err := r.u32()
	if err != nil {
		return nil, err
	}
	nr.ID = int(id)
	nsteps, err := r.count(4)
	if err != nil {
		return nil, err
	}
	for step := 0; step < nsteps; step++ {
		nlaunches, err := r.count(88)
		if err != nil {
			return nil, err
		}
		stats := make([]sim.NodeStats, nlaunches)
		times := make([]NodeTiming, nlaunches)
		for li := range stats {
			ns := &stats[li]
			for _, dst := range []*float64{&ns.ComputeUnits, &ns.BufferElems, &ns.BytesIn, &ns.BytesOut} {
				bits, err := r.u64()
				if err != nil {
					return nil, err
				}
				*dst = math.Float64frombits(bits)
			}
			for _, dst := range []*int{&ns.MsgsIn, &ns.MsgsOut, &ns.FragsIn, &ns.FragsOut} {
				v, err := r.u64()
				if err != nil {
					return nil, err
				}
				*dst = int(int64(v))
			}
			nt := &times[li]
			for _, dst := range []*int64{&nt.WallNS, &nt.ComputeNS, &nt.OverlapNS} {
				v, err := r.u64()
				if err != nil {
					return nil, err
				}
				*dst = int64(v)
			}
		}
		nr.Stats = append(nr.Stats, stats)
		nr.Times = append(nr.Times, times)
	}
	npieces, err := r.count(4)
	if err != nil {
		return nil, err
	}
	for i := 0; i < npieces; i++ {
		n, err := r.count(1)
		if err != nil {
			return nil, err
		}
		body, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		m, err := decodeMessage(body)
		if err != nil {
			return nil, err
		}
		nr.final = append(nr.final, m)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("exec: progwire: %d trailing bytes after node result", r.remaining())
	}
	return nr, nil
}
