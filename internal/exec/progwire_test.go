package exec_test

import (
	"bytes"
	"strings"
	"testing"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/exec"
	"autopart/pkg/autopart"
)

// progCases is the serialization coverage set: stencil (affine maps,
// identity), spmv (a launch whose WorkSym was mutated after NewPlan —
// the case that forces launches to travel fully serialized), and
// circuit-hint (extern partitions, table maps, §5.2 private
// sub-partitions). Together they exercise every statement and index-map
// kind the builtins produce.
func progCases(t *testing.T) []appCase {
	t.Helper()
	return []appCase{
		{"stencil", func(n int) (*exec.Program, error) {
			return stencil.Executable(stencil.Config{Width: 128, RowsPerNode: 4}, compiled(t, "stencil", stencil.Source()), n)
		}},
		{"spmv", func(n int) (*exec.Program, error) {
			return spmv.Executable(spmv.Config{RowsPerNode: 64, NnzPerRow: 8}, compiled(t, "spmv", spmv.Source), n)
		}},
		{"circuit-hint", func(n int) (*exec.Program, error) {
			return circuit.Executable(circuit.Config{WiresPerCluster: 100, NodesPerCluster: 50, SharedFraction: 0.02, CrossFraction: 0.2}, compiled(t, "circuit-hint", circuit.HintSource), n, true)
		}},
	}
}

// TestProgramRoundTrip is the serialization contract: decode(encode(p))
// re-encodes to the identical bytes (a fixed point, so nothing is lost
// or reordered), and the decoded program *runs* bit-identically to the
// original — the property the multi-process executor depends on, since
// workers only ever see the decoded copy.
func TestProgramRoundTrip(t *testing.T) {
	const nodes, steps = 3, 2
	for _, app := range progCases(t) {
		app := app
		t.Run(app.name, func(t *testing.T) {
			prog, err := app.build(nodes)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			blob, err := exec.EncodeProgram(prog)
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			decoded, err := exec.DecodeProgram(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			blob2, err := exec.EncodeProgram(decoded)
			if err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(blob, blob2) {
				t.Fatalf("encode/decode/encode is not a fixed point: %d vs %d bytes", len(blob), len(blob2))
			}

			want, err := exec.RunSequentialReference(prog, steps)
			if err != nil {
				t.Fatalf("sequential reference: %v", err)
			}
			res, err := exec.Run(decoded, exec.Config{Nodes: nodes, Steps: steps})
			if err != nil {
				t.Fatalf("run decoded program: %v", err)
			}
			for name, wr := range want.Regions {
				if same, diff := wr.SameData(res.Machine.Regions[name]); !same {
					t.Errorf("decoded program's region %s diverges: %s", name, diff)
				}
			}
		})
	}
}

// TestProgramDecodeRejects pins the decoder's refusal paths: a foreign
// version byte, trailing garbage, and truncation at every byte boundary
// must all error (never panic, never silently accept).
func TestProgramDecodeRejects(t *testing.T) {
	prog, err := progCases(t)[0].build(2)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	blob, err := exec.EncodeProgram(prog)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}

	t.Run("version", func(t *testing.T) {
		bad := append([]byte(nil), blob...)
		bad[0]++
		_, err := exec.DecodeProgram(bad)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("foreign version byte: got %v, want version error", err)
		}
	})
	t.Run("trailing", func(t *testing.T) {
		bad := append(append([]byte(nil), blob...), 0)
		if _, err := exec.DecodeProgram(bad); err == nil {
			t.Fatal("trailing byte accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := exec.DecodeProgram(nil); err == nil {
			t.Fatal("empty blob accepted")
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every strict prefix must fail: the format has no optional tail.
		stride := 1
		if len(blob) > 4096 {
			stride = len(blob) / 4096
		}
		for n := 0; n < len(blob); n += stride {
			if _, err := exec.DecodeProgram(blob[:n]); err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", n, len(blob))
			}
		}
	})
}

// TestNodeResultRoundTrip checks the stats/final-shard report a worker
// streams back: RunNode's output re-encodes to a fixed point, and a
// result assembled from decoded per-node reports is bit-identical to
// the in-process run.
func TestNodeResultRoundTrip(t *testing.T) {
	const nodes, steps = 3, 2
	prog, err := progCases(t)[0].build(nodes)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	tr, err := exec.InprocTransport()(nodes)
	if err != nil {
		t.Fatalf("transport: %v", err)
	}
	cfg := exec.Config{Nodes: nodes, Steps: steps}
	type out struct {
		nr  *exec.NodeResult
		err error
	}
	outs := make([]out, nodes)
	done := make(chan int, nodes)
	for id := 0; id < nodes; id++ {
		go func(id int) {
			nr, err := exec.RunNode(prog, cfg, id, tr)
			outs[id] = out{nr, err}
			done <- id
		}(id)
	}
	for i := 0; i < nodes; i++ {
		<-done
	}
	results := make([]*exec.NodeResult, nodes)
	for id, o := range outs {
		if o.err != nil {
			t.Fatalf("node %d: %v", id, o.err)
		}
		blob, err := exec.EncodeNodeResult(o.nr)
		if err != nil {
			t.Fatalf("node %d: encode result: %v", id, err)
		}
		decoded, err := exec.DecodeNodeResult(blob)
		if err != nil {
			t.Fatalf("node %d: decode result: %v", id, err)
		}
		blob2, err := exec.EncodeNodeResult(decoded)
		if err != nil {
			t.Fatalf("node %d: re-encode result: %v", id, err)
		}
		if !bytes.Equal(blob, blob2) {
			t.Fatalf("node %d: result encode/decode/encode is not a fixed point", id)
		}
		if _, err := exec.DecodeNodeResult(append(append([]byte(nil), blob...), 0)); err == nil {
			t.Fatalf("node %d: trailing byte accepted on result blob", id)
		}
		results[id] = decoded
	}

	res, err := exec.AssembleResult(prog, cfg, results)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	want, err := exec.RunSequentialReference(prog, steps)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	for name, wr := range want.Regions {
		if same, diff := wr.SameData(res.Machine.Regions[name]); !same {
			t.Errorf("assembled region %s diverges: %s", name, diff)
		}
	}
}

// FuzzDecodeProgram hammers the program decoder with mutated blobs: it
// must never panic, and anything it accepts must canonicalize — one
// decode/encode pass later, the encoding is a fixed point (the program
// analogue of FuzzDecodeMessage's property for data frames; the first
// pass is allowed to reorder a mutated-but-decodable blob into
// canonical form, the second must change nothing).
func FuzzDecodeProgram(f *testing.F) {
	if c, err := autopart.Compile(stencil.Source(), autopart.Options{}); err == nil {
		if prog, err := stencil.Executable(stencil.Config{Width: 64, RowsPerNode: 4}, c, 2); err == nil {
			if blob, err := exec.EncodeProgram(prog); err == nil {
				f.Add(blob)
			}
		}
	}
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Fuzz(func(t *testing.T, data []byte) {
		prog, err := exec.DecodeProgram(data)
		if err != nil {
			return
		}
		canon, err := exec.EncodeProgram(prog)
		if err != nil {
			t.Fatalf("re-encode of accepted blob failed: %v", err)
		}
		prog2, err := exec.DecodeProgram(canon)
		if err != nil {
			t.Fatalf("canonical re-encoding rejected: %v", err)
		}
		canon2, err := exec.EncodeProgram(prog2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(canon, canon2) {
			t.Fatalf("canonical encoding is not a fixed point: %d vs %d bytes", len(canon), len(canon2))
		}
	})
}
