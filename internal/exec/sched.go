package exec

import (
	"fmt"
	"sync"
	"time"

	"autopart/internal/geometry"
	"autopart/internal/region"
	"autopart/internal/rewrite"
	"autopart/internal/runtime"
)

// This file is the dependency machinery that replaces the old
// bulk-synchronous launch phases: every (step, launch) gets a schedule
// of the exact messages it must receive, computed purely from
// replicated metadata before any data moves, and a mailbox matches
// deliveries to expectations by tag in whatever order the transport
// produces them. Because matching is content-addressed — never
// positional — any delivery schedule yields the same data, which the
// flaky transport's chaos testing relies on.

// tagKey identifies one protocol message: every field a sender stamps,
// plus the sender itself. Unique per message — within one launch a
// (req, field) pair produces at most one piece per peer.
type tagKey struct {
	kind          msgKind
	step, launch  int
	req           int
	region, field string
	from          int
}

func keyOf(m *message) tagKey {
	return tagKey{
		kind: m.kind, step: m.step, launch: m.launch, req: m.req,
		region: m.region, field: m.field, from: m.from,
	}
}

func (k tagKey) String() string {
	return fmt.Sprintf("%s step=%d launch=%d req=%d %s.%s from peer %d",
		k.kind, k.step, k.launch, k.req, k.region, k.field, k.from)
}

// arrival is one delivered message plus its receive timestamp (the
// overlap accounting reads the timestamps).
type arrival struct {
	msg message
	at  time.Time
}

// mailbox is a node's tag-addressed receive buffer. One receiver
// goroutine puts deliveries in; the node goroutine takes them out by
// tag, blocking until the matching message lands. Messages for future
// launches buffer here until their schedule claims them.
type mailbox struct {
	mu      sync.Mutex
	arrived map[tagKey]arrival
	wake    chan struct{} // broadcast: closed and replaced on every event
	dead    map[int]bool  // peers that closed their send side
	anyDead bool          // an unattributable peer death (transport failure)
	closed  bool          // all peers done; nothing more will arrive
	err     error         // first protocol violation (e.g. duplicate tag)
}

func newMailbox() *mailbox {
	return &mailbox{
		arrived: map[tagKey]arrival{},
		wake:    make(chan struct{}),
		dead:    map[int]bool{},
	}
}

func (mb *mailbox) broadcastLocked() {
	close(mb.wake)
	mb.wake = make(chan struct{})
}

// put records a delivery. A duplicate tag means a peer violated the
// protocol; it is latched as an error rather than silently overwritten.
func (mb *mailbox) put(m message) {
	at := time.Now()
	k := keyOf(&m)
	mb.mu.Lock()
	if _, dup := mb.arrived[k]; dup {
		if mb.err == nil {
			mb.err = fmt.Errorf("duplicate message %s", k)
		}
	} else {
		mb.arrived[k] = arrival{msg: m, at: at}
	}
	mb.broadcastLocked()
	mb.mu.Unlock()
}

// peerDead marks one sender as finished (from = -1: unknown sender).
func (mb *mailbox) peerDead(from int) {
	mb.mu.Lock()
	if from < 0 {
		mb.anyDead = true
	} else {
		mb.dead[from] = true
	}
	mb.broadcastLocked()
	mb.mu.Unlock()
}

// close marks the whole inbox drained (every sender finished).
func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	mb.broadcastLocked()
	mb.mu.Unlock()
}

// take removes and returns the message with tag k, blocking until it
// arrives. It fails fast if the sender (or the transport) died first.
func (mb *mailbox) take(k tagKey) (message, time.Time, error) {
	for {
		mb.mu.Lock()
		if a, ok := mb.arrived[k]; ok {
			delete(mb.arrived, k)
			mb.mu.Unlock()
			return a.msg, a.at, nil
		}
		if mb.err != nil {
			err := mb.err
			mb.mu.Unlock()
			return message{}, time.Time{}, err
		}
		if mb.closed || mb.anyDead || mb.dead[k.from] {
			mb.mu.Unlock()
			return message{}, time.Time{}, fmt.Errorf("peer %d exited before sending %s", k.from, k)
		}
		wake := mb.wake
		mb.mu.Unlock()
		<-wake
	}
}

// arrivedAt reports whether the keyed message has landed (it may not
// have been taken yet) and when. Non-blocking; used by the overlap
// accounting only.
func (mb *mailbox) arrivedAt(k tagKey) (time.Time, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	a, ok := mb.arrived[k]
	return a.at, ok
}

// leftoverErr reports messages that were delivered but never claimed by
// any schedule — each one is a protocol violation.
func (mb *mailbox) leftoverErr() error {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.err != nil {
		return mb.err
	}
	for k := range mb.arrived {
		return fmt.Errorf("unclaimed message %s (%d total)", k, len(mb.arrived))
	}
	return nil
}

// depSpec is one expected incoming message: its tag and the element
// set the replicated metadata says it must carry.
type depSpec struct {
	key tagKey
	set geometry.IndexSet
	fk  rewrite.FieldKey
}

// foldSpec is one reduced field's owner-side fold: the §5.2 merge of
// per-color contributions into the elements this node owns, applied in
// first-requirement-encounter order exactly as the bulk-synchronous
// executor did.
type foldSpec struct {
	fk  rewrite.FieldKey
	op  string
	own geometry.IndexSet // owner.Sub(j) at launch entry: the seed restriction
}

// launchSched is one (step, launch) dependency schedule on one node:
// which messages must land before the shard can run (ghosts), which
// must land before the launch can finish (write-backs), and the folds
// the finish performs. Both sides derive it independently from the
// same replicated metadata, which is what makes tag-matching sound.
type launchSched struct {
	step, li int
	task     runtime.Task
	// ghosts are the before-compute dependencies in canonical
	// (requirement, field, owner-piece) order.
	ghosts []depSpec
	// backs are the write-back dependencies (guarded ships and buffer
	// merges), canonical order.
	backs []depSpec
	// folds lists the reduced fields in fold order.
	folds []foldSpec
	// touches are the fields the deferred finish will write (ship
	// installs and folds): a later launch touching any of them must
	// settle this one first.
	touches map[rewrite.FieldKey]bool
}

// buildSched computes the launch's dependency schedule and charges all
// incoming-side statistics (the executor knows what it will receive
// before receiving it). It must run before the launch's ownership
// update: ghost sets are relative to owners at launch entry (where
// valid data IS), while write-back sets use postOwnerOf (where valid
// data will be READ after the launch), mirroring the send side.
func (n *node) buildSched(step, li int, t runtime.Task) (*launchSched, error) {
	l := t.Launch
	st := &n.stats[step][li]
	parts := n.prog.Parts
	j := n.id
	bpe := n.cfg.BytesPerElem
	sc := &launchSched{step: step, li: li, task: t, touches: map[rewrite.FieldKey]bool{}}

	// Ghost dependencies: every remote-owned piece of a read set.
	for ri, req := range l.Reqs {
		if !needsFetch(req) {
			continue
		}
		p := parts[req.Sym]
		for _, f := range req.Fields {
			owner, err := n.ownerOf(req.Region, f)
			if err != nil {
				return nil, err
			}
			remote := p.Sub(j).Subtract(owner.Sub(j))
			if remote.Empty() {
				continue
			}
			st.BytesIn += float64(remote.Len()) * bpe
			st.FragsIn += remote.NumIntervals()
			covered := geometry.IndexSet{}
			for _, pc := range region.SplitByOwner(remote, owner) {
				sc.ghosts = append(sc.ghosts, depSpec{
					key: tagKey{ghostMsg, step, li, ri, req.Region, f, pc.Color},
					set: pc.Set,
					fk:  rewrite.FieldKey{Region: req.Region, Field: f},
				})
				st.MsgsIn++
				covered = covered.Union(pc.Set)
			}
			if !covered.Equal(remote) {
				return nil, fmt.Errorf("no valid copy of %s.%s for ghost set %s (owner covers only %s)",
					req.Region, f, remote, covered)
			}
		}
	}

	// Write-back dependencies: guarded ships and buffer merges landing
	// on elements this node owns, plus the folds that consume them.
	foldSeen := map[rewrite.FieldKey]bool{}
	for ri, req := range l.Reqs {
		if req.Priv != runtime.Reduce {
			continue
		}
		p := parts[req.Sym]
		if req.Guarded {
			for _, f := range req.Fields {
				owner, err := n.postOwnerOf(l, req.Region, f)
				if err != nil {
					return nil, err
				}
				fk := rewrite.FieldKey{Region: req.Region, Field: f}
				for k := 0; k < n.nodes(); k++ {
					if k == j {
						continue
					}
					piece := p.Sub(k).Subtract(owner.Sub(k)).Intersect(owner.Sub(j))
					if piece.Empty() {
						continue
					}
					sc.backs = append(sc.backs, depSpec{
						key: tagKey{shipMsg, step, li, ri, req.Region, f, k},
						set: piece,
						fk:  fk,
					})
					sc.touches[fk] = true
					st.BytesIn += float64(piece.Len()) * bpe
					st.FragsIn += piece.NumIntervals()
					st.MsgsIn++
				}
			}
			continue
		}
		touched := p
		if req.TouchedSym != "" {
			touched = parts[req.TouchedSym]
		}
		for _, f := range req.Fields {
			owner, err := n.postOwnerOf(l, req.Region, f)
			if err != nil {
				return nil, err
			}
			fk := rewrite.FieldKey{Region: req.Region, Field: f}
			if !foldSeen[fk] {
				foldSeen[fk] = true
				sc.folds = append(sc.folds, foldSpec{fk: fk, op: req.ReduceOp, own: owner.Sub(j)})
				sc.touches[fk] = true
			}
			for k := 0; k < n.nodes(); k++ {
				if k == j {
					continue
				}
				if p.Sub(k).Empty() {
					continue
				}
				piece := touched.Sub(k).Subtract(owner.Sub(k)).Intersect(owner.Sub(j))
				if piece.Empty() {
					continue
				}
				sc.backs = append(sc.backs, depSpec{
					key: tagKey{mergeMsg, step, li, ri, req.Region, f, k},
					set: piece,
					fk:  fk,
				})
				st.BytesIn += float64(piece.Len()) * bpe
				st.FragsIn += piece.NumIntervals()
				st.MsgsIn++
			}
		}
	}
	return sc, nil
}

// launchFields collects every field a launch's requirements name, in
// any privilege — the conflict set against pending finishes.
func launchFields(l *runtime.Launch) map[rewrite.FieldKey]bool {
	out := map[rewrite.FieldKey]bool{}
	for _, req := range l.Reqs {
		for _, f := range req.Fields {
			out[rewrite.FieldKey{Region: req.Region, Field: f}] = true
		}
	}
	return out
}
