package exec

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
)

// tcpTransport runs the coherence protocol over real sockets on
// loopback: one listener per node, one connection per ordered sender →
// receiver pair (established eagerly at construction, so inbox
// end-of-stream is simply "all n-1 peers sent EOF"), frames encoded by
// wire.go. A per-pair elastic pipe sits in front of each socket writer
// so Send keeps the never-blocks contract even when the kernel buffer
// fills; readers decode frames straight into the receiver's inbox
// queue. Socket failures are latched into err and surfaced through
// Err() after the run — mid-run they show up as closed inboxes, which
// the nodes already treat as a peer loss.
type tcpTransport struct {
	nodes   int
	inboxes []*inboxQueue
	// sends[from][to] feeds the pair's writer goroutine (nil diagonal).
	sends [][]chan message

	mu        sync.Mutex
	err       error
	listeners []net.Listener
	conns     []net.Conn
	wg        sync.WaitGroup // writer + reader goroutines
}

// TCPTransport returns the factory for the loopback TCP transport.
// Note the connection count is quadratic in nodes: fine for the
// correctness matrix and modest runs, not for 256-node sweeps (use
// inproc there; the wire cost model is identical).
func TCPTransport() TransportFactory {
	return func(nodes int) (Transport, error) {
		return newTCPTransport(nodes)
	}
}

func newTCPTransport(nodes int) (*tcpTransport, error) {
	t := &tcpTransport{
		nodes:   nodes,
		inboxes: make([]*inboxQueue, nodes),
		sends:   make([][]chan message, nodes),
	}
	for j := 0; j < nodes; j++ {
		t.inboxes[j] = newInboxQueue(nodes - 1)
		t.sends[j] = make([]chan message, nodes)
	}

	listeners := make([]net.Listener, nodes)
	for j := 0; j < nodes; j++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.close()
			return nil, fmt.Errorf("exec: tcp: listen: %w", err)
		}
		listeners[j] = ln
		t.listeners = append(t.listeners, ln)
	}

	// Accept n-1 inbound streams per node; each starts a reader that
	// demuxes frames into the inbox (the frame's from field identifies
	// the sender, so accept order is irrelevant).
	for j := 0; j < nodes; j++ {
		for i := 0; i < nodes-1; i++ {
			t.wg.Add(1)
		}
		go func(to int, ln net.Listener) {
			for i := 0; i < nodes-1; i++ {
				conn, err := ln.Accept()
				if err != nil {
					t.fail(fmt.Errorf("exec: tcp: accept for node %d: %w", to, err))
					for ; i < nodes-1; i++ {
						t.inboxes[to].senderEOF(-1)
						t.wg.Done()
					}
					return
				}
				t.track(conn)
				go t.readLoop(to, conn)
			}
			ln.Close()
		}(j, listeners[j])
	}

	// Dial every ordered pair and start its elastic writer.
	for from := 0; from < nodes; from++ {
		for to := 0; to < nodes; to++ {
			if to == from {
				continue
			}
			conn, err := net.Dial("tcp", listeners[to].Addr().String())
			if err != nil {
				t.close()
				return nil, fmt.Errorf("exec: tcp: dial %d→%d: %w", from, to, err)
			}
			t.track(conn)
			in := make(chan message)
			out := make(chan message)
			go pipe(in, out)
			t.sends[from][to] = in
			t.wg.Add(1)
			go t.writeLoop(from, conn, out)
		}
	}
	return t, nil
}

func (t *tcpTransport) track(conn net.Conn) {
	t.mu.Lock()
	t.conns = append(t.conns, conn)
	t.mu.Unlock()
}

func (t *tcpTransport) fail(err error) {
	t.mu.Lock()
	if t.err == nil {
		t.err = err
	}
	t.mu.Unlock()
}

// Err reports the first socket or decode failure, if any.
func (t *tcpTransport) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Close waits for the in-flight writer and reader goroutines, then
// releases every socket. Run calls it after all inboxes have drained.
func (t *tcpTransport) Close() error {
	t.wg.Wait()
	t.close()
	return nil
}

func (t *tcpTransport) close() {
	t.mu.Lock()
	ls, cs := t.listeners, t.conns
	t.listeners, t.conns = nil, nil
	t.mu.Unlock()
	for _, ln := range ls {
		ln.Close()
	}
	for _, c := range cs {
		c.Close()
	}
}

// writeLoop drains one pair's elastic pipe onto its socket — after a
// hello frame naming the sender, so the reader can attribute its EOF —
// then half-closes so the peer's reader sees a clean end of stream.
func (t *tcpTransport) writeLoop(from int, conn net.Conn, out <-chan message) {
	defer t.wg.Done()
	w := bufio.NewWriter(conn)
	hello := message{kind: helloMsg, from: from}
	err := writeFrame(w, &hello)
	for {
		var m message
		var ok bool
		select {
		case m, ok = <-out:
		default:
			// Nothing immediately ready: flush buffered frames before
			// blocking, or the peer waits on bytes stuck here (the node
			// it is serving may be the one this stream's sender blocks
			// on — a cycle the unbounded pipes exist to prevent).
			if err == nil {
				err = w.Flush()
			}
			m, ok = <-out
		}
		if !ok {
			break
		}
		if err != nil {
			continue // drain on error so pipe() can exit
		}
		err = writeFrame(w, &m)
	}
	if err == nil {
		err = w.Flush()
	}
	if err != nil {
		t.fail(fmt.Errorf("exec: tcp: send from node %d: %w", from, err))
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.CloseWrite()
	} else {
		conn.Close()
	}
}

// readLoop decodes one inbound stream into node to's inbox until EOF.
// The sender's identity comes from the stream's hello frame; a stream
// that dies before its hello reports an anonymous EOF (from = -1).
func (t *tcpTransport) readLoop(to int, conn net.Conn) {
	defer t.wg.Done()
	from := -1
	defer func() { t.inboxes[to].senderEOF(from) }()
	r := bufio.NewReader(conn)
	hello, err := readFrame(r)
	if err != nil || hello.kind != helloMsg {
		t.fail(fmt.Errorf("exec: tcp: node %d: bad stream preamble (err=%v, kind=%v)", to, err, hello.kind))
		return
	}
	from = hello.from
	for {
		m, err := readFrame(r)
		if err != nil {
			if err != io.EOF {
				t.fail(fmt.Errorf("exec: tcp: recv at node %d from %d: %w", to, from, err))
			}
			return
		}
		t.inboxes[to].push(m)
	}
}

func (t *tcpTransport) Send(from, to int, msg message) {
	msg.from = from
	t.sends[from][to] <- msg
}

func (t *tcpTransport) Inbox(to int) <-chan message { return t.inboxes[to].out }

// CloseSend closes the sender's pair pipes; writers drain, flush, and
// half-close their sockets.
func (t *tcpTransport) CloseSend(from int) {
	for to, ch := range t.sends[from] {
		if ch != nil {
			close(ch)
			t.sends[from][to] = nil
		}
	}
}
