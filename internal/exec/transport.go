package exec

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Transport moves messages between the executor's nodes. The contract
// every implementation must honor:
//
//   - Send never blocks indefinitely: the transport buffers unboundedly
//     between sender and receiver, which is what lets a node enqueue all
//     of a launch's outgoing messages before blocking on any receive
//     (the deadlock-freedom argument in package exec's doc comment).
//   - Inbox(j) is node j's single merged delivery stream; messages from
//     different senders interleave arbitrarily, and no per-pair order is
//     promised either. The dependency scheduler matches deliveries by
//     tag, never by position, so any interleaving yields the same
//     result — the flaky transport exists to prove that.
//   - Each delivered message carries its sender in msg.from.
//   - CloseSend(j) declares node j will send no more; once every node
//     has closed, each inbox drains and then closes.
//
// Implementations may also expose Err() error, which Run checks after
// the nodes exit (the TCP transport reports socket failures this way).
type Transport interface {
	Send(from, to int, msg message)
	Inbox(to int) <-chan message
	CloseSend(from int)
}

// TransportFactory builds a transport for a node count. Config carries
// one so drivers can pick a transport without exec re-exporting the
// implementations' knobs.
type TransportFactory func(nodes int) (Transport, error)

// errReporter is the optional deferred-error surface of a transport.
type errReporter interface {
	Err() error
}

// TransportByName maps the driver-facing names {inproc, tcp, flaky} to
// factories with default knobs (flaky seeds from 1 with 2ms max delay).
func TransportByName(name string) (TransportFactory, error) {
	switch name {
	case "", "inproc":
		return InprocTransport(), nil
	case "tcp":
		return TCPTransport(), nil
	case "flaky":
		return FlakyTransport(1, 2*time.Millisecond), nil
	default:
		return nil, fmt.Errorf("exec: unknown transport %q (have inproc, tcp, flaky)", name)
	}
}

// inboxQueue is one receiver's unbounded elastic mailbox feed: Send
// appends under a lock (never blocking), a single forwarder goroutine
// drains into the delivery channel, and the channel closes once every
// sender has called CloseSend and the queue is empty.
type inboxQueue struct {
	mu      sync.Mutex
	q       []message
	wake    chan struct{} // 1-buffered doorbell
	senders int
	out     chan message
}

func newInboxQueue(senders int) *inboxQueue {
	iq := &inboxQueue{
		wake:    make(chan struct{}, 1),
		senders: senders,
		out:     make(chan message),
	}
	go iq.forward()
	return iq
}

func (iq *inboxQueue) push(m message) {
	iq.mu.Lock()
	iq.q = append(iq.q, m)
	iq.mu.Unlock()
	iq.ring()
}

// senderEOF marks one sender's end of stream: an eofMsg sentinel is
// enqueued behind the sender's earlier messages (so a receiver never
// sees the death notice before the data), then the live-sender count
// drops; the inbox closes once it reaches zero and the queue drains.
// from may be -1 when the dead sender's identity is unknown (a TCP
// stream that failed before its hello frame).
func (iq *inboxQueue) senderEOF(from int) {
	iq.mu.Lock()
	iq.q = append(iq.q, message{kind: eofMsg, from: from})
	iq.senders--
	iq.mu.Unlock()
	iq.ring()
}

func (iq *inboxQueue) ring() {
	select {
	case iq.wake <- struct{}{}:
	default:
	}
}

func (iq *inboxQueue) forward() {
	for {
		iq.mu.Lock()
		q, senders := iq.q, iq.senders
		iq.q = nil
		iq.mu.Unlock()
		for _, m := range q {
			iq.out <- m
		}
		if len(q) == 0 && senders <= 0 {
			close(iq.out)
			return
		}
		if len(q) == 0 {
			<-iq.wake
		}
	}
}

// inprocTransport is the in-process default: per-receiver elastic
// queues, no copies beyond the message structs themselves.
type inprocTransport struct {
	inboxes []*inboxQueue
}

// InprocTransport returns the factory for the in-process transport.
func InprocTransport() TransportFactory {
	return func(nodes int) (Transport, error) {
		t := &inprocTransport{inboxes: make([]*inboxQueue, nodes)}
		for j := 0; j < nodes; j++ {
			t.inboxes[j] = newInboxQueue(nodes - 1)
		}
		return t, nil
	}
}

func (t *inprocTransport) Send(from, to int, msg message) {
	msg.from = from
	t.inboxes[to].push(msg)
}

func (t *inprocTransport) Inbox(to int) <-chan message { return t.inboxes[to].out }

func (t *inprocTransport) CloseSend(from int) {
	for to, iq := range t.inboxes {
		if to == from {
			continue
		}
		iq.senderEOF(from)
	}
}

// flakyTransport wraps another transport and injects seeded random
// per-message latency, which reorders deliveries across — and within —
// sender pairs. Delivery stays reliable (the coherence protocol has no
// retransmission; a lost message is a protocol error by design), so
// what the chaos proves is that the dependency tracking is
// schedule-independent: any arrival order produces bit-identical data.
type flakyTransport struct {
	inner    Transport
	mu       sync.Mutex
	rng      *rand.Rand
	maxDelay time.Duration
	pending  [](*sync.WaitGroup)
}

// FlakyTransport returns a factory injecting up to maxDelay of seeded
// random latency per message on top of the in-process transport.
func FlakyTransport(seed int64, maxDelay time.Duration) TransportFactory {
	return func(nodes int) (Transport, error) {
		inner, err := InprocTransport()(nodes)
		if err != nil {
			return nil, err
		}
		t := &flakyTransport{
			inner:    inner,
			rng:      rand.New(rand.NewSource(seed)),
			maxDelay: maxDelay,
			pending:  make([]*sync.WaitGroup, nodes),
		}
		for j := range t.pending {
			t.pending[j] = &sync.WaitGroup{}
		}
		return t, nil
	}
}

func (t *flakyTransport) Send(from, to int, msg message) {
	t.mu.Lock()
	delay := time.Duration(t.rng.Int63n(int64(t.maxDelay) + 1))
	t.mu.Unlock()
	wg := t.pending[from]
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(delay)
		t.inner.Send(from, to, msg)
	}()
}

func (t *flakyTransport) Inbox(to int) <-chan message { return t.inner.Inbox(to) }

// CloseSend waits for the sender's in-flight delayed messages so the
// inner inbox never closes ahead of a delivery.
func (t *flakyTransport) CloseSend(from int) {
	t.pending[from].Wait()
	t.inner.CloseSend(from)
}
