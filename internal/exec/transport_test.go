package exec_test

import (
	"testing"
	"time"

	"autopart/internal/apps/circuit"
	"autopart/internal/apps/miniaero"
	"autopart/internal/apps/pennant"
	"autopart/internal/apps/spmv"
	"autopart/internal/apps/stencil"
	"autopart/internal/exec"
)

// smallAppCases shrinks every builtin far below its default size so the
// wide differential matrix (up to 64 nodes, chaos latency, -race) stays
// affordable: the point here is protocol coverage across node counts
// and transports, not workload realism — the default-size matrix in
// exec_test.go keeps covering that.
func smallAppCases(t *testing.T) []appCase {
	t.Helper()
	return []appCase{
		{"stencil", func(n int) (*exec.Program, error) {
			return stencil.Executable(stencil.Config{Width: 128, RowsPerNode: 4}, compiled(t, "stencil", stencil.Source()), n)
		}},
		{"circuit", func(n int) (*exec.Program, error) {
			cfg := circuit.Config{WiresPerCluster: 200, NodesPerCluster: 100, SharedFraction: 0.02, CrossFraction: 0.20}
			return circuit.Executable(cfg, compiled(t, "circuit", circuit.Source), n, false)
		}},
		{"circuit-hint", func(n int) (*exec.Program, error) {
			cfg := circuit.Config{WiresPerCluster: 200, NodesPerCluster: 100, SharedFraction: 0.02, CrossFraction: 0.20}
			return circuit.Executable(cfg, compiled(t, "circuit-hint", circuit.HintSource), n, true)
		}},
		{"spmv", func(n int) (*exec.Program, error) {
			return spmv.Executable(spmv.Config{RowsPerNode: 128, NnzPerRow: 8}, compiled(t, "spmv", spmv.Source), n)
		}},
		{"miniaero", func(n int) (*exec.Program, error) {
			return miniaero.Executable(miniaero.Config{DX: 4, DY: 4, DZ: 4}, compiled(t, "miniaero", miniaero.Source()), n)
		}},
		{"pennant-h2", func(n int) (*exec.Program, error) {
			return pennant.Executable(pennant.Config{W: 16, ZonesPerPiece: 128, Jitter: 16}, compiled(t, "pennant-h2", pennant.HintSource(2)), n, 2)
		}},
	}
}

// checkBitIdentical runs the program distributed under the transport
// and diffs every region against the sequential reference.
func checkBitIdentical(t *testing.T, prog *exec.Program, nodes, steps int, tr exec.TransportFactory) {
	t.Helper()
	want, err := exec.RunSequentialReference(prog, steps)
	if err != nil {
		t.Fatalf("sequential reference: %v", err)
	}
	res, err := exec.Run(prog, exec.Config{Nodes: nodes, Steps: steps, Transport: tr})
	if err != nil {
		t.Fatalf("distributed run: %v", err)
	}
	for name, wr := range want.Regions {
		same, diff := wr.SameData(res.Machine.Regions[name])
		if !same {
			t.Errorf("region %s diverges from sequential: %s", name, diff)
		}
	}
}

// TestDistributedMatchesSequentialFlaky widens the differential matrix
// to node counts the default-size matrix cannot afford ({5, 7, 64}) and
// runs every case over the latency-injecting transport: seeded random
// per-message delays reorder deliveries across and within sender pairs,
// so bit-identity here demonstrates the dependency tracking is
// schedule-independent — no hidden reliance on arrival order survives
// this matrix under -race.
func TestDistributedMatchesSequentialFlaky(t *testing.T) {
	const steps = 2
	for _, app := range smallAppCases(t) {
		for _, nodes := range []int{5, 7, 64} {
			app, nodes := app, nodes
			t.Run(app.name+"/nodes="+itoa(nodes), func(t *testing.T) {
				prog, err := app.build(nodes)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				// Seed varies per case so the matrix explores different
				// delivery schedules; 200µs of jitter is enough to scramble
				// ordering without stretching the test's wall clock.
				seed := int64(nodes*1000 + len(app.name))
				checkBitIdentical(t, prog, nodes, steps, exec.FlakyTransport(seed, 200*time.Microsecond))
			})
		}
	}
}

// TestDistributedMatchesSequentialTCP runs the matrix over real
// loopback sockets: frames encode through wire.go, streams attribute
// senders via hello preambles, and end-of-stream propagates as peer
// EOFs. Node counts stay small because the transport dials a quadratic
// number of connections.
func TestDistributedMatchesSequentialTCP(t *testing.T) {
	const steps = 2
	for _, app := range smallAppCases(t) {
		for _, nodes := range []int{2, 3} {
			app, nodes := app, nodes
			t.Run(app.name+"/nodes="+itoa(nodes), func(t *testing.T) {
				prog, err := app.build(nodes)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				checkBitIdentical(t, prog, nodes, steps, exec.TCPTransport())
			})
		}
	}
}

// TestTransportByName pins the driver-facing names.
func TestTransportByName(t *testing.T) {
	for _, name := range []string{"", "inproc", "tcp", "flaky"} {
		if _, err := exec.TransportByName(name); err != nil {
			t.Errorf("transport %q: %v", name, err)
		}
	}
	if _, err := exec.TransportByName("carrier-pigeon"); err == nil {
		t.Error("unknown transport name was accepted")
	}
}

// TestOverlapMeasured pins the tentpole's payoff: on a multi-launch app
// at several nodes, some launch must report a nonzero overlap window —
// compute that ran while write-back communication was still in flight.
// PENNANT is the reliable witness: its point-force reductions send
// merge messages whose folds defer past the next launches' compute.
// (MiniAero's guarded reduction targets are owner-aligned at these
// configurations, so it generates no write-backs to defer.)
func TestOverlapMeasured(t *testing.T) {
	prog, err := pennant.Executable(pennant.Config{W: 16, ZonesPerPiece: 128, Jitter: 16}, compiled(t, "pennant-h2", pennant.HintSource(2)), 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := exec.Run(prog, exec.Config{Nodes: 8, Steps: 2,
		Transport: exec.FlakyTransport(11, 500*time.Microsecond)})
	if err != nil {
		t.Fatal(err)
	}
	var overlap, compute int64
	for _, sc := range res.Steps {
		for _, lc := range sc.Launches {
			for _, nt := range lc.Times {
				overlap += nt.OverlapNS
				compute += nt.ComputeNS
			}
		}
	}
	if compute <= 0 {
		t.Fatal("no compute time measured")
	}
	if overlap <= 0 {
		t.Error("no compute-communication overlap measured on a multi-launch app")
	}
}
