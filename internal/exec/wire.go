package exec

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"autopart/internal/geometry"
)

// Wire format: a compact length-prefixed binary encoding of message,
// used by the TCP transport. One frame per message:
//
//	u32 payload length (not counting the prefix)
//	u8  kind
//	u32 from, step, launch, req
//	u16 len(region) + bytes, u16 len(field) + bytes
//	u32 interval count, then (i64 lo, i64 hi) per interval
//	u8  payload flags (bit0 scalars, bit1 indexes, bit2 ranges,
//	    bit3 present)
//	per flagged payload: u32 element count, then the data — f64 bits
//	    for scalars, i64 for indexes, (i64, i64) per range, and a
//	    packed bitset (ceil(n/8) bytes) for present
//
// All integers are little-endian. Nothing in the format depends on the
// host; decode validates every length against the remaining frame so
// corrupt or fuzzed input fails with an error instead of a panic or an
// unbounded allocation.

const (
	wireFlagScalars = 1 << iota
	wireFlagIndexes
	wireFlagRanges
	wireFlagPresent
)

// maxWireFrame bounds a frame's declared size (1 GiB): anything larger
// is a corrupt prefix, not a plausible field piece.
const maxWireFrame = 1 << 30

// appendMessage appends m's wire encoding (without the frame prefix).
func appendMessage(buf []byte, m *message) ([]byte, error) {
	if len(m.region) > math.MaxUint16 || len(m.field) > math.MaxUint16 {
		return nil, fmt.Errorf("exec: wire: region/field name too long (%d/%d bytes)", len(m.region), len(m.field))
	}
	buf = append(buf, byte(m.kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.from))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.step))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.launch))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.req))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.region)))
	buf = append(buf, m.region...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.field)))
	buf = append(buf, m.field...)
	ivs := m.set.Intervals()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(ivs)))
	for _, iv := range ivs {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Lo))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Hi))
	}
	var flags byte
	if m.scalars != nil {
		flags |= wireFlagScalars
	}
	if m.indexes != nil {
		flags |= wireFlagIndexes
	}
	if m.ranges != nil {
		flags |= wireFlagRanges
	}
	if m.present != nil {
		flags |= wireFlagPresent
	}
	buf = append(buf, flags)
	if m.scalars != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.scalars)))
		for _, v := range m.scalars {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
		}
	}
	if m.indexes != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.indexes)))
		for _, v := range m.indexes {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
		}
	}
	if m.ranges != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.ranges)))
		for _, iv := range m.ranges {
			buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Lo))
			buf = binary.LittleEndian.AppendUint64(buf, uint64(iv.Hi))
		}
	}
	if m.present != nil {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.present)))
		var acc byte
		for i, b := range m.present {
			if b {
				acc |= 1 << (i % 8)
			}
			if i%8 == 7 {
				buf = append(buf, acc)
				acc = 0
			}
		}
		if len(m.present)%8 != 0 {
			buf = append(buf, acc)
		}
	}
	return buf, nil
}

// wireReader consumes a frame with bounds checks on every read.
type wireReader struct {
	data []byte
	pos  int
}

func (r *wireReader) remaining() int { return len(r.data) - r.pos }

func (r *wireReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("exec: wire: truncated frame (want %d bytes, have %d)", n, r.remaining())
	}
	b := r.data[r.pos : r.pos+n]
	r.pos += n
	return b, nil
}

func (r *wireReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *wireReader) u16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint16(b), nil
}

func (r *wireReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *wireReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// count reads a u32 element count and rejects any that could not fit in
// the remaining frame at elemSize bytes per element (the alloc guard).
func (r *wireReader) count(elemSize int) (int, error) {
	n, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(n)*int64(elemSize) > int64(r.remaining()) {
		return 0, fmt.Errorf("exec: wire: count %d exceeds frame remainder %d", n, r.remaining())
	}
	return int(n), nil
}

// decodeMessage parses one frame body. It never panics on corrupt
// input and never allocates more than the frame's own size.
func decodeMessage(data []byte) (message, error) {
	var m message
	r := &wireReader{data: data}
	kind, err := r.u8()
	if err != nil {
		return m, err
	}
	m.kind = msgKind(kind)
	header := [4]*int{&m.from, &m.step, &m.launch, &m.req}
	for _, dst := range header {
		v, err := r.u32()
		if err != nil {
			return m, err
		}
		*dst = int(v)
	}
	for _, dst := range [2]*string{&m.region, &m.field} {
		n, err := r.u16()
		if err != nil {
			return m, err
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return m, err
		}
		*dst = string(b)
	}
	nivs, err := r.count(16)
	if err != nil {
		return m, err
	}
	ivs := make([]geometry.Interval, nivs)
	for i := range ivs {
		lo, err := r.u64()
		if err != nil {
			return m, err
		}
		hi, err := r.u64()
		if err != nil {
			return m, err
		}
		ivs[i] = geometry.Interval{Lo: int64(lo), Hi: int64(hi)}
	}
	// FromIntervals canonicalizes, so fuzzed overlapping or unsorted
	// intervals decode to a valid set (tag verification rejects any set
	// the schedule does not expect).
	m.set = geometry.FromIntervals(ivs...)
	flags, err := r.u8()
	if err != nil {
		return m, err
	}
	if flags&wireFlagScalars != 0 {
		n, err := r.count(8)
		if err != nil {
			return m, err
		}
		m.scalars = make([]float64, n)
		for i := range m.scalars {
			v, err := r.u64()
			if err != nil {
				return m, err
			}
			m.scalars[i] = math.Float64frombits(v)
		}
	}
	if flags&wireFlagIndexes != 0 {
		n, err := r.count(8)
		if err != nil {
			return m, err
		}
		m.indexes = make([]int64, n)
		for i := range m.indexes {
			v, err := r.u64()
			if err != nil {
				return m, err
			}
			m.indexes[i] = int64(v)
		}
	}
	if flags&wireFlagRanges != 0 {
		n, err := r.count(16)
		if err != nil {
			return m, err
		}
		m.ranges = make([]geometry.Interval, n)
		for i := range m.ranges {
			lo, err := r.u64()
			if err != nil {
				return m, err
			}
			hi, err := r.u64()
			if err != nil {
				return m, err
			}
			m.ranges[i] = geometry.Interval{Lo: int64(lo), Hi: int64(hi)}
		}
	}
	if flags&wireFlagPresent != 0 {
		n, err := r.count(0)
		if err != nil {
			return m, err
		}
		packed, err := r.bytes((n + 7) / 8)
		if err != nil {
			return m, err
		}
		m.present = make([]bool, n)
		for i := range m.present {
			m.present[i] = packed[i/8]&(1<<(i%8)) != 0
		}
	}
	if r.remaining() != 0 {
		return m, fmt.Errorf("exec: wire: %d trailing bytes after message", r.remaining())
	}
	return m, nil
}

// writeFrame writes one length-prefixed frame.
func writeFrame(w *bufio.Writer, m *message) error {
	body, err := appendMessage(nil, m)
	if err != nil {
		return err
	}
	if len(body) > maxWireFrame {
		return fmt.Errorf("exec: wire: frame of %d bytes exceeds limit", len(body))
	}
	var prefix [4]byte
	binary.LittleEndian.PutUint32(prefix[:], uint32(len(body)))
	if _, err := w.Write(prefix[:]); err != nil {
		return err
	}
	_, err = w.Write(body)
	return err
}

// readFrame reads one length-prefixed frame; io.EOF (clean, at a frame
// boundary) means the peer closed.
func readFrame(r *bufio.Reader) (message, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("exec: wire: truncated frame prefix")
		}
		return message{}, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n > maxWireFrame {
		return message{}, fmt.Errorf("exec: wire: frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return message{}, fmt.Errorf("exec: wire: truncated frame: %w", err)
	}
	return decodeMessage(body)
}

// Control plane: the bootstrap and lifecycle frames of a multi-process
// deployment (package exec/cluster). Unlike data frames — which flow
// between workers that already agreed on a protocol during bootstrap —
// every control frame carries an explicit protocol version byte right
// after the length prefix, so a coordinator and worker from different
// builds fail the handshake with a version error instead of
// misinterpreting each other's bytes.
//
//	u32 payload length (not counting the prefix)
//	u8  WireProtoVersion
//	u8  kind
//	u32 node, nodes, steps
//	f64 bytes-per-elem
//	u16 len(text) + bytes
//	u32 address count { u16 len + bytes }
//	u32 blob length + bytes
//
// The same struct serves every kind; unused fields stay zero. Frames
// are small (the program blob is the one large payload) and infrequent,
// so uniformity beats per-kind compactness.

// WireProtoVersion is the cross-process protocol version. Bump it on
// any change to the control frames, the data frames, or the program
// encoding; mismatched peers refuse each other during bootstrap.
const WireProtoVersion = 1

// CtrlKind enumerates the control-plane frame types.
type CtrlKind uint8

// Control frame kinds, in rough bootstrap order.
const (
	// CtrlHello opens the handshake: coordinator → worker it assigns
	// the node id and run shape; worker → coordinator it answers with
	// the worker's data-plane address in Text.
	CtrlHello CtrlKind = iota + 1
	// CtrlTopology broadcasts every worker's data-plane address so the
	// workers can dial each other full-mesh.
	CtrlTopology
	// CtrlProgram carries the serialized program (EncodeProgram) in
	// Blob.
	CtrlProgram
	// CtrlReady reports a worker has decoded the program and built its
	// mesh: all peer streams are up.
	CtrlReady
	// CtrlStart releases the workers into the launch loop.
	CtrlStart
	// CtrlResult returns a worker's EncodeNodeResult blob.
	CtrlResult
	// CtrlAbort tears the run down: coordinator → worker on any peer
	// failure; worker → coordinator when the worker's own run errors.
	// Text carries the reason.
	CtrlAbort
)

func (k CtrlKind) String() string {
	switch k {
	case CtrlHello:
		return "hello"
	case CtrlTopology:
		return "topology"
	case CtrlProgram:
		return "program"
	case CtrlReady:
		return "ready"
	case CtrlStart:
		return "start"
	case CtrlResult:
		return "result"
	case CtrlAbort:
		return "abort"
	default:
		return fmt.Sprintf("CtrlKind(%d)", uint8(k))
	}
}

// Ctrl is one control-plane frame.
type Ctrl struct {
	Kind         CtrlKind
	Node         int
	Nodes        int
	Steps        int
	BytesPerElem float64
	Text         string
	Addrs        []string
	Blob         []byte
}

// ErrWireVersion marks a control frame (or stream preamble) whose
// protocol version byte does not match this build's WireProtoVersion.
var ErrWireVersion = fmt.Errorf("exec: wire: protocol version mismatch")

// AppendCtrl appends c's frame body under an explicit version byte.
// Exported tests use a foreign version to exercise rejection; real
// senders pass WireProtoVersion.
func AppendCtrl(buf []byte, version uint8, c *Ctrl) ([]byte, error) {
	buf = append(buf, version, byte(c.Kind))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Node))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Nodes))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(c.Steps))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(c.BytesPerElem))
	if len(c.Text) > math.MaxUint16 {
		return nil, fmt.Errorf("exec: wire: ctrl text of %d bytes too long", len(c.Text))
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Text)))
	buf = append(buf, c.Text...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Addrs)))
	for _, a := range c.Addrs {
		if len(a) > math.MaxUint16 {
			return nil, fmt.Errorf("exec: wire: ctrl address of %d bytes too long", len(a))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(a)))
		buf = append(buf, a...)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(c.Blob)))
	return append(buf, c.Blob...), nil
}

// decodeCtrl parses one control frame body. Corrupt input errors out;
// it never panics and never over-allocates.
func decodeCtrl(data []byte) (Ctrl, error) {
	var c Ctrl
	r := &wireReader{data: data}
	v, err := r.u8()
	if err != nil {
		return c, err
	}
	if v != WireProtoVersion {
		return c, fmt.Errorf("%w: peer speaks version %d, this build speaks %d", ErrWireVersion, v, WireProtoVersion)
	}
	kind, err := r.u8()
	if err != nil {
		return c, err
	}
	if kind < byte(CtrlHello) || kind > byte(CtrlAbort) {
		return c, fmt.Errorf("exec: wire: unknown ctrl kind %d", kind)
	}
	c.Kind = CtrlKind(kind)
	for _, dst := range [3]*int{&c.Node, &c.Nodes, &c.Steps} {
		v, err := r.u32()
		if err != nil {
			return c, err
		}
		*dst = int(int32(v))
	}
	bits, err := r.u64()
	if err != nil {
		return c, err
	}
	c.BytesPerElem = math.Float64frombits(bits)
	n, err := r.u16()
	if err != nil {
		return c, err
	}
	text, err := r.bytes(int(n))
	if err != nil {
		return c, err
	}
	c.Text = string(text)
	naddrs, err := r.count(2)
	if err != nil {
		return c, err
	}
	for i := 0; i < naddrs; i++ {
		an, err := r.u16()
		if err != nil {
			return c, err
		}
		a, err := r.bytes(int(an))
		if err != nil {
			return c, err
		}
		c.Addrs = append(c.Addrs, string(a))
	}
	blobLen, err := r.count(1)
	if err != nil {
		return c, err
	}
	blob, err := r.bytes(blobLen)
	if err != nil {
		return c, err
	}
	if blobLen > 0 {
		c.Blob = append([]byte(nil), blob...)
	}
	if r.remaining() != 0 {
		return c, fmt.Errorf("exec: wire: %d trailing bytes after ctrl frame", r.remaining())
	}
	return c, nil
}

// WriteCtrl writes one length-prefixed control frame and flushes it to
// w in a single Write (control conns have one writer at a time, so the
// frame lands atomically enough for interleaved readers).
func WriteCtrl(w io.Writer, c *Ctrl) error {
	return writeCtrlVersion(w, WireProtoVersion, c)
}

// writeCtrlVersion is WriteCtrl with an explicit version byte; tests
// use it to present a foreign protocol version.
func writeCtrlVersion(w io.Writer, version uint8, c *Ctrl) error {
	body, err := AppendCtrl(nil, version, c)
	if err != nil {
		return err
	}
	if len(body) > maxWireFrame {
		return fmt.Errorf("exec: wire: ctrl frame of %d bytes exceeds limit", len(body))
	}
	frame := make([]byte, 4, 4+len(body))
	binary.LittleEndian.PutUint32(frame, uint32(len(body)))
	frame = append(frame, body...)
	_, err = w.Write(frame)
	return err
}

// ReadCtrl reads one length-prefixed control frame. io.EOF (clean, at a
// frame boundary) means the peer closed the control conn.
func ReadCtrl(r io.Reader) (Ctrl, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("exec: wire: truncated ctrl frame prefix")
		}
		return Ctrl{}, err
	}
	n := binary.LittleEndian.Uint32(prefix[:])
	if n > maxWireFrame {
		return Ctrl{}, fmt.Errorf("exec: wire: ctrl frame of %d bytes exceeds limit", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Ctrl{}, fmt.Errorf("exec: wire: truncated ctrl frame: %w", err)
	}
	return decodeCtrl(body)
}
