package exec

import (
	"bufio"
	"bytes"
	"io"
	"math"
	"reflect"
	"testing"

	"autopart/internal/geometry"
)

func wireMessages() []message {
	set := geometry.FromIntervals(geometry.Interval{Lo: 3, Hi: 8}, geometry.Interval{Lo: 12, Hi: 15})
	return []message{
		{kind: helloMsg, from: 7},
		{
			kind: ghostMsg, from: 1, step: 2, launch: 3, req: 4,
			region: "cells", field: "rho", set: set,
			scalars: []float64{1.5, -2, 0, math.Inf(1), math.NaN(), 6, 7, 8},
		},
		{
			kind: ghostMsg, from: 0, step: 0, launch: 1, req: 0,
			region: "wires", field: "in", set: geometry.FromIntervals(geometry.Interval{Lo: 0, Hi: 3}),
			indexes: []int64{-1, 42, 1 << 40},
		},
		{
			kind: shipMsg, from: 2, step: 1, launch: 0, req: 2,
			region: "zones", field: "span",
			set:    geometry.FromIntervals(geometry.Interval{Lo: 5, Hi: 7}),
			ranges: []geometry.Interval{{Lo: 0, Hi: 4}, {Lo: 4, Hi: 9}},
		},
		{
			kind: mergeMsg, from: 3, step: 4, launch: 5, req: 6,
			region: "nodes", field: "charge",
			set:     geometry.FromIntervals(geometry.Interval{Lo: 0, Hi: 9}),
			scalars: []float64{1, 2, 3, 4, 5, 6, 7, 8, 9},
			present: []bool{true, false, true, true, false, false, true, false, true},
		},
		{kind: mergeMsg, set: geometry.IndexSet{}, scalars: []float64{}, present: []bool{}},
	}
}

// scalarsEqual compares payloads bit for bit: the wire format moves
// float bits verbatim, so NaNs (which == and reflect.DeepEqual both
// reject against themselves) must survive exactly.
func scalarsEqual(a, b []float64) bool {
	if (a == nil) != (b == nil) || len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

func messagesEqual(a, b *message) bool {
	return a.kind == b.kind && a.from == b.from && a.step == b.step &&
		a.launch == b.launch && a.req == b.req &&
		a.region == b.region && a.field == b.field &&
		a.set.Equal(b.set) &&
		scalarsEqual(a.scalars, b.scalars) &&
		reflect.DeepEqual(a.indexes, b.indexes) &&
		reflect.DeepEqual(a.ranges, b.ranges) &&
		reflect.DeepEqual(a.present, b.present)
}

func TestWireRoundTrip(t *testing.T) {
	for i, m := range wireMessages() {
		buf, err := appendMessage(nil, &m)
		if err != nil {
			t.Fatalf("message %d: encode: %v", i, err)
		}
		got, err := decodeMessage(buf)
		if err != nil {
			t.Fatalf("message %d: decode: %v", i, err)
		}
		if !messagesEqual(&m, &got) {
			t.Errorf("message %d: round trip diverged:\n sent %+v\n got  %+v", i, m, got)
		}
	}
}

// TestWireFrameRoundTrip streams every test message through the framed
// reader/writer pair and expects a clean io.EOF at the end — the signal
// the TCP read loop uses for an orderly close.
func TestWireFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	msgs := wireMessages()
	for i := range msgs {
		if err := writeFrame(w, &msgs[i]); err != nil {
			t.Fatalf("frame %d: write: %v", i, err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(&buf)
	for i := range msgs {
		got, err := readFrame(r)
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if !messagesEqual(&msgs[i], &got) {
			t.Errorf("frame %d diverged:\n sent %+v\n got  %+v", i, msgs[i], got)
		}
	}
	if _, err := readFrame(r); err != io.EOF {
		t.Errorf("want io.EOF after last frame, got %v", err)
	}
}

// TestWireDecodeRejectsCorruptInput feeds decode hostile frames: every
// one must return an error — never panic, never allocate beyond the
// frame's own size.
func TestWireDecodeRejectsCorruptInput(t *testing.T) {
	m := wireMessages()[1]
	valid, err := appendMessage(nil, &m)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"kind only":      valid[:1],
		"truncated body": valid[:len(valid)-3],
		"trailing bytes": append(append([]byte{}, valid...), 0xff),
		// u32 interval count of ~4e9 directly after the header: the alloc
		// guard must reject it against the empty remainder.
		"huge count": append(append([]byte{}, valid[:22]...), 0xff, 0xff, 0xff, 0xff),
	}
	for name, data := range cases {
		if _, err := decodeMessage(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff}))); err == nil {
		t.Error("readFrame accepted an oversized frame prefix")
	}
	if _, err := readFrame(bufio.NewReader(bytes.NewReader([]byte{8, 0, 0, 0, 1, 2}))); err == nil {
		t.Error("readFrame accepted a truncated frame")
	}
}

// FuzzDecodeMessage hammers the decoder with mutated frames. For any
// input, decode must not panic; when it succeeds, the decoded message
// must re-encode and decode to a fixed point (the canonical form).
func FuzzDecodeMessage(f *testing.F) {
	for _, m := range wireMessages() {
		buf, err := appendMessage(nil, &m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMessage(data)
		if err != nil {
			return
		}
		buf, err := appendMessage(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to encode: %v", err)
		}
		again, err := decodeMessage(buf)
		if err != nil {
			t.Fatalf("re-encoded message failed to decode: %v", err)
		}
		if !messagesEqual(&m, &again) {
			t.Errorf("canonical round trip diverged:\n first  %+v\n second %+v", m, again)
		}
	})
}
