package gen

import (
	"fmt"
	"math/rand"
)

// Tier bounds the shape of generated programs. Tiny keeps index spaces
// small enough for the brute-force solver oracle to enumerate; Small
// adds room for the execution oracle to exercise ghost exchange and
// reduction buffers across more data.
type Tier struct {
	MaxRoots     int
	MaxSharers   int // extra same-space regions per root
	MaxFields    int // fields per region
	MaxFuncs     int
	MaxExterns   int
	MaxLoops     int
	MaxStmts     int // statements per loop body
	MinSize      int64
	MaxSize      int64 // extent per space root
	AllowInner   bool
	AllowCompare bool
}

// Tiny is the solver-oracle tier: few constraint symbols per loop and
// single-digit extents, so brute-force enumeration stays cheap.
var Tiny = Tier{
	MaxRoots: 2, MaxSharers: 1, MaxFields: 3,
	MaxFuncs: 2, MaxExterns: 2, MaxLoops: 3, MaxStmts: 3,
	MinSize: 3, MaxSize: 8,
	AllowInner: false, AllowCompare: true,
}

// Small is the execution-oracle tier: bigger extents and the full
// construct set, including inner loops over range fields.
var Small = Tier{
	MaxRoots: 2, MaxSharers: 2, MaxFields: 4,
	MaxFuncs: 3, MaxExterns: 2, MaxLoops: 4, MaxStmts: 5,
	MinSize: 6, MaxSize: 24,
	AllowInner: true, AllowCompare: true,
}

// Generate builds the scenario for a seed deterministically: equal
// seeds and tiers produce byte-identical scenarios.
func Generate(seed int64, tier Tier) *Scenario {
	g := &generator{
		rng:  rand.New(rand.NewSource(seed)),
		tier: tier,
		prog: &Program{},
	}
	g.genRegions()
	g.genFuncs()
	g.genExterns()
	g.genLoops()
	spec := Spec{
		Sizes:    map[string]int64{},
		DataSeed: seed ^ 0x5eed5eed,
		Nodes:    2 + g.rng.Intn(2),
		Steps:    1 + g.rng.Intn(2),
	}
	for _, r := range g.prog.Regions {
		if r.Space == "" {
			spec.Sizes[r.Name] = r.Size
		}
	}
	return &Scenario{Seed: seed, Prog: g.prog, Src: g.prog.Print(), Spec: spec}
}

type generator struct {
	rng  *rand.Rand
	tier Tier
	prog *Program

	fieldN, funcN, varN int
}

func (g *generator) genRegions() {
	roots := 1 + g.rng.Intn(g.tier.MaxRoots)
	for ri := 0; ri < roots; ri++ {
		size := g.tier.MinSize + g.rng.Int63n(g.tier.MaxSize-g.tier.MinSize+1)
		root := &Region{Name: fmt.Sprintf("R%d", len(g.prog.Regions)), Size: size}
		g.prog.Regions = append(g.prog.Regions, root)
		for si := g.rng.Intn(g.tier.MaxSharers + 1); si > 0; si-- {
			g.prog.Regions = append(g.prog.Regions, &Region{
				Name:  fmt.Sprintf("R%d", len(g.prog.Regions)),
				Space: root.Name,
			})
		}
	}
	// Fields second, so index/range targets can point anywhere.
	for _, r := range g.prog.Regions {
		n := 1 + g.rng.Intn(g.tier.MaxFields)
		for i := 0; i < n; i++ {
			r.Fields = append(r.Fields, g.genField())
		}
	}
}

func (g *generator) genField() *Field {
	f := &Field{Name: fmt.Sprintf("f%d", g.fieldN)}
	g.fieldN++
	roll := g.rng.Float64()
	switch {
	case roll < 0.62:
		f.Kind = ScalarField
		switch r := g.rng.Float64(); {
		case r < 0.40:
			f.Role = RoleInput
		case r < 0.70:
			f.Role = RoleOutput
		default:
			f.Role = RoleAccum
			f.Op = pick(g.rng, []string{"+=", "+=", "max=", "min=", "*="})
		}
	case roll < 0.88 || !g.tier.AllowInner:
		f.Kind = IndexField
		f.Role = RoleInput
		f.Target = g.anyRegion().Name
	default:
		f.Kind = RangeField
		f.Role = RoleInput
		f.Target = g.anyRegion().Name
	}
	return f
}

func (g *generator) genFuncs() {
	n := g.rng.Intn(g.tier.MaxFuncs + 1)
	for i := 0; i < n; i++ {
		f := &FuncSpec{
			Name: fmt.Sprintf("h%d", g.funcN),
			Dom:  g.anyRegion().Name,
			Cod:  g.anyRegion().Name,
		}
		g.funcN++
		if g.rng.Float64() < 0.7 {
			f.Affine = true
			f.Stride = pick(g.rng, []int64{1, 1, 1, -1, 2})
			f.Offset = g.rng.Int63n(5) - 2
			f.Total = g.rng.Float64() < 0.5
		} else {
			f.TablePartial = g.rng.Float64() < 0.3
		}
		g.prog.Funcs = append(g.prog.Funcs, f)
	}
}

func (g *generator) genExterns() {
	n := g.rng.Intn(g.tier.MaxExterns + 1)
	for i := 0; i < n; i++ {
		e := &Extern{
			Name:   fmt.Sprintf("E%d", i),
			Region: g.anyRegion().Name,
			Flavor: ExternFlavor(g.rng.Intn(3)),
		}
		switch e.Flavor {
		case FlavorBlock:
			e.AssertDisj = g.rng.Float64() < 0.8
			e.AssertComp = g.rng.Float64() < 0.8
		case FlavorGapped:
			e.AssertDisj = g.rng.Float64() < 0.9
		case FlavorOverlap:
			e.AssertComp = g.rng.Float64() < 0.9
		}
		// A gapped partition is derived from the block partition of the
		// same region by trimming, so asserting containment in an
		// earlier block/overlap extern over the same region is sound.
		if e.Flavor == FlavorGapped && g.rng.Float64() < 0.5 {
			for _, prev := range g.prog.Externs {
				if prev.Region == e.Region && prev.Flavor != FlavorGapped {
					e.SubsetOf = prev.Name
					break
				}
			}
		}
		g.prog.Externs = append(g.prog.Externs, e)
	}
}

func (g *generator) genLoops() {
	n := 1 + g.rng.Intn(g.tier.MaxLoops)
	for i := 0; i < n; i++ {
		l := &Loop{Var: fmt.Sprintf("i%d", i), Region: g.anyRegion().Name}
		lg := &loopGen{g: g, loop: l}
		stmts := 1 + g.rng.Intn(g.tier.MaxStmts)
		for s := 0; s < stmts; s++ {
			if st := lg.genStmt(0); st != nil {
				l.Body = append(l.Body, st)
			}
		}
		if len(l.Body) > 0 {
			g.prog.Loops = append(g.prog.Loops, l)
		}
	}
	if len(g.prog.Loops) == 0 {
		// Degenerate seeds still produce one trivial loop so every
		// scenario exercises the full pipeline.
		r := g.prog.Regions[0]
		l := &Loop{Var: "i0", Region: r.Name}
		if f := firstScalar(r); f != nil {
			l.Body = []Stmt{Store{Region: r.Name, Idx: "i0", Field: f.Name, Op: "=", RHS: "1"}}
		} else {
			r.Fields = append(r.Fields, &Field{Name: "fz", Kind: ScalarField, Role: RoleOutput})
			l.Body = []Stmt{Store{Region: r.Name, Idx: "i0", Field: "fz", Op: "=", RHS: "1"}}
		}
		g.prog.Loops = append(g.prog.Loops, l)
	}
}

func firstScalar(r *Region) *Field {
	for _, f := range r.Fields {
		if f.Kind == ScalarField {
			return f
		}
	}
	return nil
}

func (g *generator) anyRegion() *Region {
	return g.prog.Regions[g.rng.Intn(len(g.prog.Regions))]
}

// guardReq is a membership guard a statement must sit under before a
// partial index application may be dereferenced: `if (text in <region
// of root>)`. Guards must nest in creation order (outermost first),
// because a later partial application's own guard condition evaluates
// the earlier application.
type guardReq struct {
	text string
	root string
}

// indexExpr is a generated index-typed expression: its text, the space
// root it indexes into, the membership guards its partial steps
// require, and whether it is the bare loop variable (the only shape the
// inference pass treats as centered).
type indexExpr struct {
	text     string
	root     string
	guards   []guardReq
	centered bool
}

// loopGen carries the per-loop generation scope.
type loopGen struct {
	g    *generator
	loop *Loop
	vars []string // bound scalar variables
}

// genIndex builds an index expression reachable from the loop variable:
// the variable itself, optionally extended by pointer-field hops and
// index-function applications. Every partial application contributes a
// guard requirement at the hop where it appears; pointer-field data is
// valid by construction and adds none.
func (lg *loopGen) genIndex(maxHops int) indexExpr {
	g := lg.g
	e := indexExpr{text: lg.loop.Var, root: g.prog.SpaceRoot(lg.loop.Region), centered: true}
	hops := g.rng.Intn(maxHops + 1)
	for h := 0; h < hops; h++ {
		type ext struct {
			viaFunc *FuncSpec
			region  string // pointer hop: region holding the field
			field   *Field
		}
		var exts []ext
		for _, r := range g.prog.Regions {
			if g.prog.SpaceRoot(r.Name) != e.root {
				continue
			}
			for _, f := range r.Fields {
				if f.Kind == IndexField {
					exts = append(exts, ext{region: r.Name, field: f})
				}
			}
		}
		for _, f := range g.prog.Funcs {
			if g.prog.SpaceRoot(f.Dom) == e.root {
				exts = append(exts, ext{viaFunc: f})
			}
		}
		if len(exts) == 0 {
			break
		}
		x := exts[g.rng.Intn(len(exts))]
		if x.viaFunc != nil {
			next := indexExpr{
				text:   fmt.Sprintf("%s(%s)", x.viaFunc.Name, e.text),
				root:   g.prog.SpaceRoot(x.viaFunc.Cod),
				guards: e.guards,
			}
			if x.viaFunc.Partial() {
				next.guards = append(next.guards, guardReq{text: next.text, root: next.root})
			}
			e = next
		} else {
			e = indexExpr{
				text:   fmt.Sprintf("%s[%s].%s", x.region, e.text, x.field.Name),
				root:   g.prog.SpaceRoot(x.field.Target),
				guards: e.guards,
			}
		}
	}
	return e
}

// regionIn picks a region of a given space root.
func (lg *loopGen) regionIn(root string) *Region {
	var cands []*Region
	for _, r := range lg.g.prog.Regions {
		if lg.g.prog.SpaceRoot(r.Name) == root {
			cands = append(cands, r)
		}
	}
	if len(cands) == 0 {
		return nil
	}
	return cands[lg.g.rng.Intn(len(cands))]
}

// scalarAtom generates one leaf of a scalar expression; loads append
// the membership guards their index expressions require.
func (lg *loopGen) scalarAtom(needGuards *[]guardReq) string {
	g := lg.g
	roll := g.rng.Float64()
	switch {
	case roll < 0.3:
		return fmt.Sprintf("%d", g.rng.Intn(10))
	case roll < 0.4 && len(lg.vars) > 0:
		return lg.vars[g.rng.Intn(len(lg.vars))]
	default:
		for try := 0; try < 4; try++ {
			e := lg.genIndex(2)
			r := lg.regionIn(e.root)
			if r == nil {
				continue
			}
			var scalars []*Field
			for _, f := range r.Fields {
				// Mostly read input fields; occasionally read outputs and
				// accumulators to exercise the exclusivity rejections.
				if f.Kind == ScalarField && (f.Role == RoleInput || g.rng.Float64() < 0.03) {
					scalars = append(scalars, f)
				}
			}
			if len(scalars) == 0 {
				continue
			}
			f := scalars[g.rng.Intn(len(scalars))]
			*needGuards = append(*needGuards, e.guards...)
			return fmt.Sprintf("%s[%s].%s", r.Name, e.text, f.Name)
		}
		return fmt.Sprintf("%d", g.rng.Intn(10))
	}
}

// genScalar generates a scalar expression of bounded depth.
func (lg *loopGen) genScalar(depth int, needGuards *[]guardReq) string {
	g := lg.g
	if depth <= 0 || g.rng.Float64() < 0.4 {
		return lg.scalarAtom(needGuards)
	}
	if g.rng.Float64() < 0.35 {
		// Opaque call: deterministic small-integer result, the
		// float-exactness anchor for stored values.
		n := 1 + g.rng.Intn(3)
		args := make([]string, n)
		for i := range args {
			args[i] = lg.genScalar(depth-1, needGuards)
		}
		return fmt.Sprintf("g%d(%s)", g.rng.Intn(4), join(args))
	}
	op := pick(g.rng, []string{"+", "-", "*", "/"})
	return fmt.Sprintf("(%s %s %s)", lg.genScalar(depth-1, needGuards), op, lg.genScalar(depth-1, needGuards))
}

// opaqueScalar generates a pure opaque-call expression: the only RHS
// form allowed for uncentered reductions, where reassociation by the
// reduction buffers must stay bit-exact (opaque results are small
// integers, so +, max, min commute exactly in float64).
func (lg *loopGen) opaqueScalar(needGuards *[]guardReq) string {
	n := 1 + lg.g.rng.Intn(3)
	args := make([]string, n)
	for i := range args {
		args[i] = lg.scalarAtom(needGuards)
	}
	return fmt.Sprintf("g%d(%s)", lg.g.rng.Intn(4), join(args))
}

// guardWrap wraps a statement in the membership guards its partial
// index applications require (the stencil idiom: `if (h(i) in R)`).
// Guards wrap in reverse so the earliest requirement is outermost: a
// later guard's condition may evaluate an earlier partial application.
func (lg *loopGen) guardWrap(st Stmt, needGuards []guardReq) Stmt {
	seen := map[string]bool{}
	var uniq []guardReq
	for _, gr := range needGuards {
		if !seen[gr.text] {
			seen[gr.text] = true
			uniq = append(uniq, gr)
		}
	}
	for i := len(uniq) - 1; i >= 0; i-- {
		r := lg.regionIn(uniq[i].root)
		if r == nil {
			continue
		}
		st = Guard{Cond: fmt.Sprintf("%s in %s", uniq[i].text, r.Name), Then: []Stmt{st}}
	}
	return st
}

func (lg *loopGen) genStmt(depth int) Stmt {
	g := lg.g
	roll := g.rng.Float64()
	switch {
	case roll < 0.15 && depth == 0:
		// Scalar binding. Only at the top level: a variable bound inside
		// a guard branch would be unbound on the other path.
		var needGuards []guardReq
		v := fmt.Sprintf("x%d", g.varN)
		g.varN++
		rhs := lg.genScalar(2, &needGuards)
		if len(needGuards) > 0 {
			// The binding itself cannot sit under a guard; fall back to a
			// total expression.
			rhs = fmt.Sprintf("%d", g.rng.Intn(10))
		}
		lg.vars = append(lg.vars, v)
		return VarBind{Var: v, RHS: rhs}

	case roll < 0.30 && depth < 2:
		// Guard with generated condition.
		var cond string
		var needGuards []guardReq
		if g.rng.Float64() < 0.6 || !g.tier.AllowCompare {
			e := lg.genIndex(2)
			space := lg.spaceName(e.root)
			cond = fmt.Sprintf("%s in %s", e.text, space)
			// Guards for partial steps other than the condition itself
			// must still wrap outside.
			for _, gr := range e.guards {
				if gr.text != e.text {
					needGuards = append(needGuards, gr)
				}
			}
		} else {
			op := pick(g.rng, []string{"==", "!="})
			cond = fmt.Sprintf("%s %s %d", lg.scalarAtom(&needGuards), op, g.rng.Intn(5))
		}
		var then []Stmt
		for n := 1 + g.rng.Intn(2); n > 0; n-- {
			if st := lg.genStmt(depth + 1); st != nil {
				then = append(then, st)
			}
		}
		if len(then) == 0 {
			return nil
		}
		gd := Guard{Cond: cond, Then: then}
		if g.rng.Float64() < 0.3 {
			if st := lg.genStmt(depth + 1); st != nil {
				gd.Else = []Stmt{st}
			}
		}
		return lg.guardWrap(gd, needGuards)

	case roll < 0.42 && g.tier.AllowInner && depth < 2:
		if st := lg.genInner(depth); st != nil {
			return st
		}
		return lg.genStore()

	default:
		return lg.genStore()
	}
}

// spaceName picks a membership space for a guard over a space root:
// usually a region of that space, sometimes an extern partition over
// it.
func (lg *loopGen) spaceName(root string) string {
	g := lg.g
	var externs []string
	for _, e := range g.prog.Externs {
		if g.prog.SpaceRoot(e.Region) == root {
			externs = append(externs, e.Name)
		}
	}
	if len(externs) > 0 && g.rng.Float64() < 0.5 {
		return externs[g.rng.Intn(len(externs))]
	}
	if r := lg.regionIn(root); r != nil {
		return r.Name
	}
	return root
}

// genStore generates a plain store or a reduction, mostly following
// field roles.
func (lg *loopGen) genStore() Stmt {
	g := lg.g
	var needGuards []guardReq
	if g.rng.Float64() < 0.5 {
		// Centered plain store to an output field of the loop's region.
		r := g.prog.RegionByName(lg.loop.Region)
		var outs []*Field
		for _, f := range r.Fields {
			if f.Kind == ScalarField && (f.Role == RoleOutput || g.rng.Float64() < 0.02) {
				outs = append(outs, f)
			}
		}
		if len(outs) > 0 {
			f := outs[g.rng.Intn(len(outs))]
			rhs := lg.genScalar(2, &needGuards)
			st := Store{Region: r.Name, Idx: lg.loop.Var, Field: f.Name, Op: "=", RHS: rhs}
			return lg.guardWrap(st, needGuards)
		}
	}
	// Reduction to an accumulator field, anywhere reachable.
	for try := 0; try < 4; try++ {
		e := lg.genIndex(2)
		r := lg.regionIn(e.root)
		if r == nil {
			continue
		}
		var accums []*Field
		for _, f := range r.Fields {
			if f.Kind == ScalarField && (f.Role == RoleAccum || g.rng.Float64() < 0.02) {
				accums = append(accums, f)
			}
		}
		if len(accums) == 0 {
			continue
		}
		f := accums[g.rng.Intn(len(accums))]
		op := f.Op
		if op == "" {
			op = "+="
		}
		centered := e.centered && r.Name == lg.loop.Region
		if op == "*=" && !centered {
			// Uncentered *= reassociates inexactly; keep it centered.
			r = g.prog.RegionByName(lg.loop.Region)
			if !hasField(r, f.Name) {
				continue
			}
			e = indexExpr{text: lg.loop.Var, root: g.prog.SpaceRoot(lg.loop.Region), centered: true}
			centered = true
		}
		var rhs string
		if centered {
			rhs = lg.genScalar(2, &needGuards)
		} else {
			rhs = lg.opaqueScalar(&needGuards)
		}
		needGuards = append(needGuards, e.guards...)
		st := Store{Region: r.Name, Idx: e.text, Field: f.Name, Op: op, RHS: rhs}
		return lg.guardWrap(st, needGuards)
	}
	// Fall back to a constant store on the loop region's first scalar.
	r := g.prog.RegionByName(lg.loop.Region)
	if f := firstScalar(r); f != nil {
		return Store{Region: r.Name, Idx: lg.loop.Var, Field: f.Name, Op: "=", RHS: fmt.Sprintf("%d", g.rng.Intn(10))}
	}
	return nil
}

func hasField(r *Region, name string) bool {
	for _, f := range r.Fields {
		if f.Name == name {
			return true
		}
	}
	return false
}

// genInner generates an inner loop over a range field reachable from
// the loop variable, mirroring the SpMV pattern: accumulate inner-space
// loads into a centered accumulator.
func (lg *loopGen) genInner(depth int) Stmt {
	g := lg.g
	root := g.prog.SpaceRoot(lg.loop.Region)
	type cand struct {
		region string
		field  *Field
	}
	var cands []cand
	for _, r := range g.prog.Regions {
		if g.prog.SpaceRoot(r.Name) != root {
			continue
		}
		for _, f := range r.Fields {
			if f.Kind == RangeField {
				cands = append(cands, cand{r.Name, f})
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	c := cands[g.rng.Intn(len(cands))]
	kv := fmt.Sprintf("k%d", g.varN)
	g.varN++
	inner := Inner{Var: kv, RangeRegion: c.region, Idx: lg.loop.Var, RangeField: c.field.Name}

	// Body: reduce loads of the inner space into a centered accumulator
	// on the outer loop's region.
	innerRoot := g.prog.SpaceRoot(c.field.Target)
	ir := lg.regionIn(innerRoot)
	if ir == nil {
		return nil
	}
	var loads []string
	for _, f := range ir.Fields {
		if f.Kind == ScalarField && f.Role == RoleInput {
			loads = append(loads, fmt.Sprintf("%s[%s].%s", ir.Name, kv, f.Name))
		}
	}
	arg := fmt.Sprintf("%d", g.rng.Intn(10))
	if len(loads) > 0 {
		arg = loads[g.rng.Intn(len(loads))]
	}
	or := g.prog.RegionByName(lg.loop.Region)
	var accums []*Field
	for _, f := range or.Fields {
		if f.Kind == ScalarField && f.Role == RoleAccum && f.Op != "*=" {
			accums = append(accums, f)
		}
	}
	if len(accums) == 0 {
		return nil
	}
	af := accums[g.rng.Intn(len(accums))]
	inner.Body = []Stmt{Store{
		Region: or.Name, Idx: lg.loop.Var, Field: af.Name, Op: af.Op,
		RHS: fmt.Sprintf("g%d(%s)", g.rng.Intn(4), arg),
	}}
	return inner
}

func pick[T any](rng *rand.Rand, xs []T) T { return xs[rng.Intn(len(xs))] }

func join(xs []string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += ", "
		}
		out += x
	}
	return out
}
