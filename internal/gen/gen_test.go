package gen

import (
	"testing"
)

// The seed ranges here are fixed deliberately: CI runs this test under
// -race as a gate, so the corpus must be reproducible run to run. New
// coverage comes from widening the range in a commit, not from
// randomizing it.

// TestExecOracleSeeds differentially executes 200 Small-tier scenarios:
// every accepted program must run bit-identically under the true
// sequential interpreter, the sequential parallel-semantics reference,
// and the distributed executor.
func TestExecOracleSeeds(t *testing.T) {
	counts := map[string]int{}
	for seed := int64(0); seed < 200; seed++ {
		sc := Generate(seed, Small)
		r := RunExecOracle(sc)
		switch r.Verdict {
		case ExecOK:
			counts["ok"]++
		case ExecRejected:
			counts[r.Code]++
		default:
			t.Errorf("seed %d: %s\nreproducer:\n%s", seed, r, sc.Repro())
		}
	}
	if counts["ok"] == 0 {
		t.Fatalf("no scenario compiled: %v", counts)
	}
	t.Logf("verdicts: %v", counts)
}

// TestSolverOracleSeeds semantically cross-checks the solver on 200
// Tiny-tier scenarios: accepted systems re-verified conjunct by
// conjunct on concrete partitions, S001 rejections re-searched by the
// brute-force enumerator.
func TestSolverOracleSeeds(t *testing.T) {
	counts := map[string]int{}
	for seed := int64(0); seed < 200; seed++ {
		sc := Generate(seed, Tiny)
		r := RunSolverOracle(sc)
		switch r.Verdict {
		case SolverOK:
			counts["ok"]++
		case SolverRejected:
			counts[r.Code]++
		case SolverUndecided:
			counts["undecided"]++
		default:
			t.Errorf("seed %d: %s\nreproducer:\n%s", seed, r, sc.Repro())
		}
	}
	if counts["ok"] == 0 {
		t.Fatalf("no scenario validity-checked: %v", counts)
	}
	t.Logf("verdicts: %v", counts)
}

// TestGeneratorDeterminism pins the generator's core contract: equal
// (seed, tier) yields byte-identical scenarios, and the oracle verdict
// is a pure function of the scenario. The exec oracle's distributed leg
// runs real goroutine scheduling, so verdict stability across runs is
// not vacuous.
func TestGeneratorDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 42, 166, 267, 278, 1013} {
		a, b := Generate(seed, Small), Generate(seed, Small)
		if a.Repro() != b.Repro() {
			t.Fatalf("seed %d: two generations differ", seed)
		}
		ra, rb := RunExecOracle(a), RunExecOracle(b)
		if ra.String() != rb.String() {
			t.Fatalf("seed %d: oracle not deterministic: %s vs %s", seed, ra, rb)
		}
	}
}

// TestReproRoundTrip proves reproducer files are self-contained: a
// scenario rendered by Repro and re-read by ParseRepro reaches the same
// oracle verdict. This is what makes the committed regress_*.dsl files
// trustworthy.
func TestReproRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		sc := Generate(seed, Small)
		back, err := ParseRepro(sc.Repro())
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a, b := RunExecOracle(sc), RunExecOracle(back)
		if a.String() != b.String() {
			t.Fatalf("seed %d: original %s vs reparsed %s", seed, a, b)
		}
	}
}

// TestShrinkKeepsPredicate checks the shrinker's invariant on a
// rejected scenario: the minimized scenario still satisfies the
// predicate it was shrunk under, and is no larger than the original.
func TestShrinkKeepsPredicate(t *testing.T) {
	sc := Generate(166, Small)
	orig := RunExecOracle(sc)
	if orig.Code != "I009" {
		t.Fatalf("seed 166 drifted: %s", orig)
	}
	pred := func(c *Scenario) bool {
		r := RunExecOracle(c)
		return r.Verdict == ExecRejected && r.Code == "I009"
	}
	min := Shrink(sc, pred)
	if !pred(min) {
		t.Fatal("shrunk scenario no longer satisfies the predicate")
	}
	if len(min.Src) > len(sc.Src) {
		t.Fatalf("shrinking grew the program: %d > %d bytes", len(min.Src), len(sc.Src))
	}
}
