package gen

import (
	"fmt"
	"hash/fnv"

	"autopart/internal/geometry"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/internal/sim"
)

// This file instantiates a generated program as a concrete machine:
// regions with seed-derived data, index maps realizing the declared
// functions, extern partitions realized so that every emitted assert is
// actually true of them, and an owner state for the distributed
// executor.

// mix derives a deterministic small nonneg integer from the data seed
// and a key path. All generated data flows through it, so a scenario is
// fully determined by (seed, tier).
func mix(seed int64, parts ...string) int64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d", seed)
	for _, p := range parts {
		h.Write([]byte{0})
		h.Write([]byte(p))
	}
	v := int64(h.Sum64() % (1 << 40))
	if v < 0 {
		v = -v
	}
	return v
}

// BuildMachine realizes a generated program on concrete data. It
// returns the machine, the external partition bindings keyed by extern
// name, and the owner state for the distributed executor.
func BuildMachine(prog *Program, spec Spec) (*ir.Machine, map[string]*region.Partition, *sim.State, error) {
	m := ir.NewMachine()
	owners := sim.NewState()
	seed := spec.DataSeed

	regions := map[string]*region.Region{}
	for _, rd := range prog.Regions {
		size := spec.Sizes[prog.SpaceRoot(rd.Name)]
		if size <= 0 {
			return nil, nil, nil, fmt.Errorf("region %s: no size for space root %s", rd.Name, prog.SpaceRoot(rd.Name))
		}
		r := region.New(rd.Name, size)
		regions[rd.Name] = r
		m.AddRegion(r)
	}

	// Field data. Scalars get small integers (exact in float64 under any
	// reassociation the reduction buffers perform); index fields always
	// hold valid targets (partiality enters only through declared partial
	// functions); range fields hold small in-bounds intervals.
	for _, rd := range prog.Regions {
		r := regions[rd.Name]
		var fieldNames []string
		for _, f := range rd.Fields {
			fieldNames = append(fieldNames, f.Name)
			switch f.Kind {
			case ScalarField:
				r.AddScalarField(f.Name)
				data := r.Scalar(f.Name)
				for i := range data {
					data[i] = float64(mix(seed, rd.Name, f.Name, fmt.Sprint(i)) % 10)
				}
			case IndexField:
				r.AddIndexField(f.Name)
				tgt := spec.Sizes[prog.SpaceRoot(f.Target)]
				data := r.Index(f.Name)
				for i := range data {
					data[i] = mix(seed, rd.Name, f.Name, fmt.Sprint(i)) % tgt
				}
			case RangeField:
				r.AddRangeField(f.Name)
				tgt := spec.Sizes[prog.SpaceRoot(f.Target)]
				data := r.Ranges(f.Name)
				for i := range data {
					lo := mix(seed, rd.Name, f.Name, fmt.Sprint(i)) % tgt
					n := mix(seed, rd.Name, f.Name, "len", fmt.Sprint(i)) % 3
					hi := lo + n
					if hi > tgt {
						hi = tgt
					}
					data[i] = geometry.Interval{Lo: lo, Hi: hi}
				}
			}
		}
		// Every region is block-owned for the transfer simulator.
		owners.OwnAll(rd.Name, fieldNames, region.Equal("own_"+rd.Name, r, spec.Nodes))
	}

	for _, f := range prog.Funcs {
		codSize := spec.Sizes[prog.SpaceRoot(f.Cod)]
		if f.Affine {
			am := geometry.AffineMap{Name: f.Name, Stride: f.Stride, Offset: f.Offset}
			if f.Total {
				am.Modulo = codSize
			} else {
				am.Clamp = &geometry.Interval{Lo: 0, Hi: codSize}
			}
			m.AddFunc(f.Name, am)
		} else {
			domSize := spec.Sizes[prog.SpaceRoot(f.Dom)]
			table := make([]int64, domSize)
			for k := range table {
				table[k] = mix(seed, "fn", f.Name, fmt.Sprint(k)) % codSize
				if f.TablePartial && mix(seed, "fnundef", f.Name, fmt.Sprint(k))%3 == 0 {
					table[k] = -1
				}
			}
			m.AddFunc(f.Name, geometry.TableMap{Name: f.Name, Table: table})
		}
	}

	external := map[string]*region.Partition{}
	for _, e := range prog.Externs {
		r := regions[e.Region]
		p := realizeExtern(e, r, spec.Nodes)
		external[e.Name] = p
		m.AddPartition(e.Name, p)
	}

	return m, external, owners, nil
}

// realizeExtern builds an extern partition whose realized shape makes
// every assert the generator emits about it true: block partitions are
// disjoint and complete; gapped ones trim each block's tail (disjoint,
// incomplete, and a subset of the block partition over the same
// region); overlapping ones extend each block by one element (complete,
// and aliased whenever the region has more than one nonempty block).
func realizeExtern(e *Extern, r *region.Region, nodes int) *region.Partition {
	size := r.Size()
	subs := make([]geometry.IndexSet, nodes)
	chunk := size / int64(nodes)
	rem := size % int64(nodes)
	var lo int64
	for i := 0; i < nodes; i++ {
		hi := lo + chunk
		if int64(i) < rem {
			hi++
		}
		slo, shi := lo, hi
		switch e.Flavor {
		case FlavorGapped:
			if shi > slo {
				shi--
			}
		case FlavorOverlap:
			if shi < size {
				shi++
			}
		}
		subs[i] = geometry.Range(slo, shi)
		lo = hi
	}
	return region.NewPartition(e.Name, r, subs)
}
