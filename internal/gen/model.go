// Package gen is the differential fuzzing harness for the compiler: a
// seeded, deterministic random generator over the internal/lang DSL, a
// machine builder that instantiates generated programs on concrete
// data, two oracles (a brute-force partition enumerator checked against
// the solver, and bit-identity of distributed execution against the
// sequential reference semantics), and a greedy shrinker that minimizes
// failing scenarios to committed regression files.
package gen

import (
	"fmt"
	"sort"
	"strings"

	"autopart/internal/lang"
)

// FieldKind mirrors the DSL's three field kinds.
type FieldKind int

// Field kinds.
const (
	ScalarField FieldKind = iota
	IndexField
	RangeField
)

// Role steers statement generation toward programs the inference pass
// accepts: fields are mostly used according to the role they were
// created with, with a small deliberate violation rate to exercise the
// rejection paths.
type Role int

// Field roles.
const (
	// RoleInput fields are read-only: initialized at machine build and
	// loaded freely (centered or not).
	RoleInput Role = iota
	// RoleOutput fields are centered plain-store targets.
	RoleOutput
	// RoleAccum fields are reduction targets with a fixed operator.
	RoleAccum
)

// Field is one region field of a generated program.
type Field struct {
	Name   string
	Kind   FieldKind
	Target string // pointed-to region, for IndexField and RangeField
	Role   Role
	// Op is the reduction operator of a RoleAccum field ("+=", "max=",
	// "min=", "*=").
	Op string
}

// Region is one region declaration. Size is meaningful only on space
// roots (Space == ""); space sharers inherit the root's extent.
type Region struct {
	Name   string
	Space  string
	Size   int64
	Fields []*Field
}

// FuncSpec is one declared index function with its concrete map. Affine
// functions use f(k) = Stride*k+Offset, wrapped modulo the codomain
// when Total, clamped to it (partial at the edges) otherwise. Table
// functions get seed-derived valid entries, with TablePartial marking
// some entries undefined.
type FuncSpec struct {
	Name, Dom, Cod string
	Affine         bool
	Stride, Offset int64
	Total          bool
	TablePartial   bool
}

// Partial reports whether applying the function can be undefined, which
// forces every generated use under an `if (f(x) in R)` guard.
func (f *FuncSpec) Partial() bool {
	if f.Affine {
		return !f.Total
	}
	return f.TablePartial
}

// ExternFlavor selects how the machine builder realizes an extern
// partition, which determines which asserts are true of it.
type ExternFlavor int

// Extern flavors.
const (
	// FlavorBlock is an equal block partition: disjoint and complete.
	FlavorBlock ExternFlavor = iota
	// FlavorGapped trims each block's tail: disjoint, not complete.
	FlavorGapped
	// FlavorOverlap extends each block by one element: complete, not
	// disjoint (for >1 subregion).
	FlavorOverlap
)

// Extern is one extern partition declaration plus the asserts emitted
// about it.
type Extern struct {
	Name, Region string
	Flavor       ExternFlavor
	AssertDisj   bool
	AssertComp   bool
	// SubsetOf optionally names another extern over the same region
	// asserted as a superset (emitted as `assert Name <= SubsetOf`).
	SubsetOf string
}

// Stmt is one generated loop-body statement.
type Stmt interface{ isStmt() }

// VarBind is `x = <scalar expr>`.
type VarBind struct {
	Var string
	RHS string
}

// Store is `Region[Idx].Field <op> RHS` with op one of =, +=, *=,
// max=, min=.
type Store struct {
	Region, Idx, Field, Op, RHS string
}

// Guard is `if (Cond) { Then } else { Else }`; Else may be empty.
type Guard struct {
	Cond string
	Then []Stmt
	Else []Stmt
}

// Inner is `for Var in RangeRegion[Idx].RangeField { Body }`.
type Inner struct {
	Var, RangeRegion, Idx, RangeField string
	Body                              []Stmt
}

func (VarBind) isStmt() {}
func (Store) isStmt()   {}
func (Guard) isStmt()   {}
func (Inner) isStmt()   {}

// Loop is one top-level for loop.
type Loop struct {
	Var    string
	Region string
	Body   []Stmt
}

// Program is a generated DSL program plus the machine geometry needed
// to instantiate it. It is the unit the shrinker edits.
type Program struct {
	Regions []*Region
	Funcs   []*FuncSpec
	Externs []*Extern
	Loops   []*Loop
}

// RegionByName finds a region declaration.
func (p *Program) RegionByName(name string) *Region {
	for _, r := range p.Regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// SpaceRoot returns the name of the space root of a region (itself when
// it is a root).
func (p *Program) SpaceRoot(name string) string {
	seen := 0
	for cur := p.RegionByName(name); cur != nil && seen < len(p.Regions)+1; seen++ {
		if cur.Space == "" {
			return cur.Name
		}
		cur = p.RegionByName(cur.Space)
	}
	return name
}

// SizeOf returns the extent of a region (its space root's size).
func (p *Program) SizeOf(name string) int64 {
	if r := p.RegionByName(p.SpaceRoot(name)); r != nil {
		return r.Size
	}
	return 0
}

// FuncByName finds a function spec.
func (p *Program) FuncByName(name string) *FuncSpec {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// Print renders the program as DSL source text.
func (p *Program) Print() string {
	var sb strings.Builder
	for _, r := range p.Regions {
		sb.WriteString("region ")
		sb.WriteString(r.Name)
		if r.Space != "" {
			sb.WriteString(" : ")
			sb.WriteString(r.Space)
		}
		sb.WriteString(" { ")
		for i, f := range r.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Name)
			sb.WriteString(": ")
			switch f.Kind {
			case ScalarField:
				sb.WriteString("scalar")
			case IndexField:
				fmt.Fprintf(&sb, "index(%s)", f.Target)
			case RangeField:
				fmt.Fprintf(&sb, "range(%s)", f.Target)
			}
		}
		sb.WriteString(" }\n")
	}
	for _, f := range p.Funcs {
		// The machine realizes partial maps (clamped affine, table gaps)
		// exactly when FuncSpec.Partial(); the declaration must say so,
		// or the solver would be entitled to totality lemmas the runtime
		// map violates.
		marker := ""
		if f.Partial() {
			marker = " partial"
		}
		fmt.Fprintf(&sb, "function %s : %s -> %s%s\n", f.Name, f.Dom, f.Cod, marker)
	}
	for _, e := range p.Externs {
		fmt.Fprintf(&sb, "extern partition %s of %s\n", e.Name, e.Region)
	}
	for _, e := range p.Externs {
		if e.AssertDisj {
			fmt.Fprintf(&sb, "assert disjoint(%s)\n", e.Name)
		}
		if e.AssertComp {
			fmt.Fprintf(&sb, "assert complete(%s, %s)\n", e.Name, e.Region)
		}
		if e.SubsetOf != "" {
			fmt.Fprintf(&sb, "assert %s <= %s\n", e.Name, e.SubsetOf)
		}
	}
	for _, l := range p.Loops {
		fmt.Fprintf(&sb, "for %s in %s {\n", l.Var, l.Region)
		printStmts(&sb, l.Body, "  ")
		sb.WriteString("}\n")
	}
	return sb.String()
}

func printStmts(sb *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch st := s.(type) {
		case VarBind:
			fmt.Fprintf(sb, "%s%s = %s\n", indent, st.Var, st.RHS)
		case Store:
			fmt.Fprintf(sb, "%s%s[%s].%s %s %s\n", indent, st.Region, st.Idx, st.Field, st.Op, st.RHS)
		case Guard:
			fmt.Fprintf(sb, "%sif (%s) {\n", indent, st.Cond)
			printStmts(sb, st.Then, indent+"  ")
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				printStmts(sb, st.Else, indent+"  ")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case Inner:
			fmt.Fprintf(sb, "%sfor %s in %s[%s].%s {\n", indent, st.Var, st.RangeRegion, st.Idx, st.RangeField)
			printStmts(sb, st.Body, indent+"  ")
			fmt.Fprintf(sb, "%s}\n", indent)
		}
	}
}

// Spec carries everything beyond the source text a replay needs: the
// machine geometry and data seed. It round-trips through `#gen`
// directive comments so shrunk reproducers are self-contained .dsl
// files.
type Spec struct {
	// Sizes maps each space-root region to its extent.
	Sizes map[string]int64
	// DataSeed derives all concrete field data and table-map entries.
	DataSeed int64
	// Nodes is the partition color count the oracles run at.
	Nodes int
	// Steps is the main-loop iteration count of the exec oracle.
	Steps int
}

// Directives renders the spec as `#gen` comment lines.
func (s Spec) Directives() string {
	var sb strings.Builder
	roots := make([]string, 0, len(s.Sizes))
	for r := range s.Sizes {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	sb.WriteString("#gen sizes")
	for _, r := range roots {
		fmt.Fprintf(&sb, " %s=%d", r, s.Sizes[r])
	}
	sb.WriteString("\n")
	fmt.Fprintf(&sb, "#gen dataseed %d\n", s.DataSeed)
	fmt.Fprintf(&sb, "#gen nodes %d\n", s.Nodes)
	fmt.Fprintf(&sb, "#gen steps %d\n", s.Steps)
	return sb.String()
}

// ParseSpec extracts `#gen` directives from a .dsl file's text. Lines
// that are not directives are left for the DSL frontend (which skips
// all `#` comments anyway, so the full text stays compilable).
func ParseSpec(text string) (Spec, error) {
	spec := Spec{Sizes: map[string]int64{}, Nodes: 2, Steps: 1}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#gen ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "#gen "))
		if len(fields) == 0 {
			return spec, fmt.Errorf("line %d: empty #gen directive", ln+1)
		}
		switch fields[0] {
		case "sizes":
			for _, kv := range fields[1:] {
				eq := strings.IndexByte(kv, '=')
				if eq < 0 {
					return spec, fmt.Errorf("line %d: bad size %q", ln+1, kv)
				}
				var n int64
				if _, err := fmt.Sscanf(kv[eq+1:], "%d", &n); err != nil {
					return spec, fmt.Errorf("line %d: bad size %q", ln+1, kv)
				}
				spec.Sizes[kv[:eq]] = n
			}
		case "dataseed":
			if len(fields) != 2 {
				return spec, fmt.Errorf("line %d: dataseed wants one value", ln+1)
			}
			if _, err := fmt.Sscanf(fields[1], "%d", &spec.DataSeed); err != nil {
				return spec, fmt.Errorf("line %d: bad dataseed %q", ln+1, fields[1])
			}
		case "nodes":
			if _, err := fmt.Sscanf(fields[1], "%d", &spec.Nodes); err != nil {
				return spec, fmt.Errorf("line %d: bad nodes", ln+1)
			}
		case "steps":
			if _, err := fmt.Sscanf(fields[1], "%d", &spec.Steps); err != nil {
				return spec, fmt.Errorf("line %d: bad steps", ln+1)
			}
		case "expect", "func", "extern":
			// Handled by Expectation and ParseRepro, not the spec.
		default:
			return spec, fmt.Errorf("line %d: unknown #gen directive %q", ln+1, fields[0])
		}
	}
	return spec, nil
}

// Scenario is one generated test case: the structured program (for
// shrinking), its printed source, and the machine spec.
type Scenario struct {
	Seed int64
	Prog *Program
	Src  string
	Spec Spec
}

// Repro renders a scenario as a self-contained .dsl reproducer: the
// DSL source carries the program, while `#gen` directives carry the
// machine realization the source cannot express (sizes, data seed, how
// each function and extern partition is concretely realized).
func (sc *Scenario) Repro() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# generated by internal/gen (seed %d)\n", sc.Seed)
	sb.WriteString(sc.Spec.Directives())
	for _, f := range sc.Prog.Funcs {
		if f.Affine {
			kind := "total"
			if !f.Total {
				kind = "clamped"
			}
			fmt.Fprintf(&sb, "#gen func %s affine %d %d %s\n", f.Name, f.Stride, f.Offset, kind)
		} else {
			kind := "total"
			if f.TablePartial {
				kind = "partial"
			}
			fmt.Fprintf(&sb, "#gen func %s table %s\n", f.Name, kind)
		}
	}
	for _, e := range sc.Prog.Externs {
		flavor := "block"
		switch e.Flavor {
		case FlavorGapped:
			flavor = "gapped"
		case FlavorOverlap:
			flavor = "overlap"
		}
		fmt.Fprintf(&sb, "#gen extern %s %s\n", e.Name, flavor)
	}
	sb.WriteString(sc.Src)
	return sb.String()
}

// ParseRepro reconstructs a runnable scenario from a reproducer file:
// the DSL text supplies the program structure, the `#gen` directives
// the machine realization. The returned scenario's Prog holds only what
// BuildMachine consumes (regions, functions, externs); loops live in
// Src, which the oracles compile directly.
func ParseRepro(text string) (*Scenario, error) {
	spec, err := ParseSpec(text)
	if err != nil {
		return nil, err
	}
	ast, err := lang.ParseSource(text)
	if err != nil {
		return nil, fmt.Errorf("reproducer source: %w", err)
	}
	funcReal := map[string][]string{}
	externReal := map[string]string{}
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "#gen ") {
			continue
		}
		fields := strings.Fields(strings.TrimPrefix(line, "#gen "))
		switch fields[0] {
		case "func":
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: short func directive", ln+1)
			}
			funcReal[fields[1]] = fields[2:]
		case "extern":
			if len(fields) != 3 {
				return nil, fmt.Errorf("line %d: extern directive wants name and flavor", ln+1)
			}
			externReal[fields[1]] = fields[2]
		}
	}

	prog := &Program{}
	for _, rd := range ast.Regions {
		r := &Region{Name: rd.Name, Space: rd.Space}
		for _, fd := range rd.Fields {
			kind := ScalarField
			switch fd.Kind {
			case lang.IndexKind:
				kind = IndexField
			case lang.RangeKind:
				kind = RangeField
			}
			r.Fields = append(r.Fields, &Field{Name: fd.Name, Kind: kind, Target: fd.Target})
		}
		prog.Regions = append(prog.Regions, r)
	}
	for _, r := range prog.Regions {
		if r.Space == "" {
			r.Size = spec.Sizes[r.Name]
			if r.Size <= 0 {
				return nil, fmt.Errorf("reproducer: no size for space root %s", r.Name)
			}
		}
	}
	for _, fd := range ast.Funcs {
		fs := &FuncSpec{Name: fd.Name, Dom: fd.From, Cod: fd.To}
		real, ok := funcReal[fd.Name]
		if !ok {
			return nil, fmt.Errorf("reproducer: no #gen func directive for %s", fd.Name)
		}
		switch real[0] {
		case "affine":
			if len(real) != 4 {
				return nil, fmt.Errorf("reproducer: func %s: affine wants stride, offset, kind", fd.Name)
			}
			fs.Affine = true
			if _, err := fmt.Sscanf(real[1], "%d", &fs.Stride); err != nil {
				return nil, fmt.Errorf("reproducer: func %s: bad stride %q", fd.Name, real[1])
			}
			if _, err := fmt.Sscanf(real[2], "%d", &fs.Offset); err != nil {
				return nil, fmt.Errorf("reproducer: func %s: bad offset %q", fd.Name, real[2])
			}
			fs.Total = real[3] == "total"
		case "table":
			if len(real) != 2 {
				return nil, fmt.Errorf("reproducer: func %s: table wants kind", fd.Name)
			}
			fs.TablePartial = real[1] == "partial"
		default:
			return nil, fmt.Errorf("reproducer: func %s: unknown realization %q", fd.Name, real[0])
		}
		// The declaration's partiality must match the realization, or the
		// reproducer would test a different program than it claims.
		if fs.Partial() != fd.Partial {
			return nil, fmt.Errorf("reproducer: func %s: declared partial=%v but realized partial=%v", fd.Name, fd.Partial, fs.Partial())
		}
		prog.Funcs = append(prog.Funcs, fs)
	}
	for _, ed := range ast.Externs {
		flavorName, ok := externReal[ed.Name]
		if !ok {
			return nil, fmt.Errorf("reproducer: no #gen extern directive for %s", ed.Name)
		}
		flavor := FlavorBlock
		switch flavorName {
		case "block":
		case "gapped":
			flavor = FlavorGapped
		case "overlap":
			flavor = FlavorOverlap
		default:
			return nil, fmt.Errorf("reproducer: extern %s: unknown flavor %q", ed.Name, flavorName)
		}
		prog.Externs = append(prog.Externs, &Extern{Name: ed.Name, Region: ed.Region, Flavor: flavor})
	}
	return &Scenario{Prog: prog, Src: text, Spec: spec}, nil
}

// Expectation extracts the `#gen expect` directive of a reproducer:
// ("ok", "") for programs that must compile and pass all oracles, or
// ("reject", CODE) for programs that must be rejected with a specific
// diagnostic. Empty verdict means no directive present.
func Expectation(text string) (verdict, code string) {
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(strings.TrimSpace(line))
		if len(fields) >= 3 && fields[0] == "#gen" && fields[1] == "expect" {
			if fields[2] == "reject" && len(fields) >= 4 {
				return "reject", fields[3]
			}
			return fields[2], ""
		}
	}
	return "", ""
}
