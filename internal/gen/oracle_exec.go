package gen

import (
	"fmt"
	"math"
	"sort"

	"autopart/internal/apps/apputil"
	"autopart/internal/diag"
	"autopart/internal/exec"
	"autopart/internal/ir"
	"autopart/internal/region"
	"autopart/pkg/autopart"
)

// The execution oracle runs every generated program that compiles three
// ways and demands bit-identical region data:
//
//   - mTrue: the true-sequential interpreter (ir.Machine.RunSequential),
//     which interleaves every statement in loop order — the semantics
//     the paper's compiler promises to preserve;
//   - mRef: the sequential parallel-semantics executor
//     (exec.RunSequentialReference), which snapshots reads at launch
//     entry and folds uncentered reductions through buffers;
//   - mDist: the distributed executor (exec.Run) over in-process
//     message-passing nodes.
//
// mTrue ≠ mRef means the inference/solver pipeline accepted a loop whose
// parallel semantics differ from sequential semantics — a soundness
// bug. mRef ≠ mDist means the distributed executor mis-ships data — an
// executor bug. The rewrite executor additionally containment-checks
// every access against the solved partitions, so a solver validity bug
// surfaces here as a launch abort rather than silent corruption.
//
// The mRef-vs-mDist comparison is bit-exact. The mTrue-vs-mRef
// comparison allows reassocULP of float slack on scalar fields because
// reduction buffering legitimately reassociates float sums (see
// reassocULP below); everything else is exact there too.

// ExecVerdict classifies one scenario's trip through the oracle.
type ExecVerdict int

// Exec oracle verdicts.
const (
	// ExecOK: compiled, ran, all three executions agree.
	ExecOK ExecVerdict = iota
	// ExecRejected: the compiler rejected the program with a coded
	// diagnostic. Not a failure — the generator deliberately emits a
	// small rate of role violations to exercise rejection paths.
	ExecRejected
	// ExecDivergence: executions disagree, or an execution failed in a
	// way the others did not. Always a bug.
	ExecDivergence
)

// ExecReport is the outcome of the execution oracle on one scenario.
type ExecReport struct {
	Verdict ExecVerdict
	// Code is the diagnostic code for ExecRejected.
	Code string
	// Class partitions divergences for shrinking and triage:
	// "true-vs-ref", "ref-vs-dist", "run-error", "instantiate-error".
	Class  string
	Detail string
}

func (r *ExecReport) String() string {
	switch r.Verdict {
	case ExecOK:
		return "ok"
	case ExecRejected:
		return "rejected " + r.Code
	default:
		return fmt.Sprintf("DIVERGENCE [%s]: %s", r.Class, r.Detail)
	}
}

// Failed reports whether the oracle found a bug.
func (r *ExecReport) Failed() bool { return r.Verdict == ExecDivergence }

// RunExecOracle compiles and differentially executes one scenario.
func RunExecOracle(sc *Scenario) *ExecReport {
	c, err := autopart.Compile(sc.Src, autopart.Options{})
	if err != nil {
		return &ExecReport{Verdict: ExecRejected, Code: diag.From(err, "X000").Code, Detail: err.Error()}
	}
	if len(c.Parallel) != len(c.Loops) {
		return &ExecReport{
			Verdict: ExecDivergence, Class: "instantiate-error",
			Detail: fmt.Sprintf("compiler parallelized %d of %d loops without a diagnostic", len(c.Parallel), len(c.Loops)),
		}
	}

	m, external, owners, err := BuildMachine(sc.Prog, sc.Spec)
	if err != nil {
		return &ExecReport{Verdict: ExecDivergence, Class: "instantiate-error", Detail: err.Error()}
	}
	auto, err := apputil.InstantiateAuto(c, m, sc.Spec.Nodes, external)
	if err != nil {
		return &ExecReport{Verdict: ExecDivergence, Class: "instantiate-error", Detail: err.Error()}
	}

	// True-sequential execution on a private clone of the initial data.
	mTrue := cloneMachine(m)
	var trueErr error
	for s := 0; s < sc.Spec.Steps && trueErr == nil; s++ {
		trueErr = c.RunSequential(mTrue)
	}

	prog := &exec.Program{Machine: m, Plan: auto.Plan, Parts: auto.Parts, Owners: owners}
	mRef, refErr := exec.RunSequentialReference(prog, sc.Spec.Steps)

	// A program the compiler accepted must run identically under both
	// sequential semantics — including whether it runs at all. The
	// generator's guard discipline makes runtime errors unreachable for
	// valid programs, so any error here is a finding, not noise.
	if trueErr != nil || refErr != nil {
		if trueErr != nil && refErr != nil {
			// Both semantics trap, so they still agree; kept as its own
			// class so shrinking an asymmetric failure cannot drift here.
			return &ExecReport{
				Verdict: ExecDivergence, Class: "run-error-both",
				Detail: fmt.Sprintf("both sequential executions fail: true=%v ref=%v", trueErr, refErr),
			}
		}
		return &ExecReport{
			Verdict: ExecDivergence, Class: "run-error",
			Detail: fmt.Sprintf("one sequential execution fails: true=%v ref=%v", trueErr, refErr),
		}
	}

	if diff := diffMachinesULP(mTrue, mRef, reassocULP); diff != "" {
		return &ExecReport{Verdict: ExecDivergence, Class: "true-vs-ref", Detail: diff}
	}

	res, err := exec.Run(prog, exec.Config{Nodes: sc.Spec.Nodes, Steps: sc.Spec.Steps})
	if err != nil {
		return &ExecReport{Verdict: ExecDivergence, Class: "ref-vs-dist", Detail: "distributed run failed: " + err.Error()}
	}
	if diff := diffMachines(mRef, res.Machine); diff != "" {
		return &ExecReport{Verdict: ExecDivergence, Class: "ref-vs-dist", Detail: diff}
	}
	return &ExecReport{Verdict: ExecOK}
}

// diffMachines compares all region data of two machines; empty means
// bit-identical.
func diffMachines(a, b *ir.Machine) string {
	names := make([]string, 0, len(a.Regions))
	for name := range a.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		br, ok := b.Regions[name]
		if !ok {
			return fmt.Sprintf("region %s missing", name)
		}
		if same, diff := a.Regions[name].SameData(br); !same {
			return fmt.Sprintf("region %s: %s", name, diff)
		}
	}
	return ""
}

// reassocULP is the float slack for the true-vs-ref comparison only.
// Launch semantics fold buffered reduction contributions in a different
// association order than strict program order, and float + is not
// associative — that reordering is exactly what the paper's parallel
// reduction semantics licenses, so it is not a finding. At the
// generator's extents (≤24 elements, ≤2 steps) legitimate reassociation
// drift stays within a couple of ULPs; real logic bugs produce wholly
// different values (the relaxation and fold-routing bugs diverged in
// the integer part). ref-vs-dist stays bit-exact: the distributed
// executor is required to reproduce the reference's fold order.
const reassocULP = 4

// diffMachinesULP is diffMachines with reassocULP of slack on scalar
// fields; index and range fields stay exact.
func diffMachinesULP(a, b *ir.Machine, maxULP int64) string {
	names := make([]string, 0, len(a.Regions))
	for name := range a.Regions {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		br, ok := b.Regions[name]
		if !ok {
			return fmt.Sprintf("region %s missing", name)
		}
		ar := a.Regions[name]
		if ar.Size() != br.Size() {
			return fmt.Sprintf("region %s: size %d vs %d", name, ar.Size(), br.Size())
		}
		for _, field := range ar.FieldNames() {
			kind, _ := ar.FieldKindOf(field)
			if !br.HasField(field) {
				return fmt.Sprintf("region %s: missing field %s", name, field)
			}
			switch kind {
			case region.ScalarField:
				av, bv := ar.Scalar(field), br.Scalar(field)
				for i := range av {
					if !withinULP(av[i], bv[i], maxULP) {
						return fmt.Sprintf("region %s: %s.%s[%d]: %v vs %v", name, name, field, i, av[i], bv[i])
					}
				}
			case region.IndexField:
				av, bv := ar.Index(field), br.Index(field)
				for i := range av {
					if av[i] != bv[i] {
						return fmt.Sprintf("region %s: %s.%s[%d]: %v vs %v", name, name, field, i, av[i], bv[i])
					}
				}
			case region.RangeField:
				av, bv := ar.Ranges(field), br.Ranges(field)
				for i := range av {
					if av[i] != bv[i] {
						return fmt.Sprintf("region %s: %s.%s[%d]: %v vs %v", name, name, field, i, av[i], bv[i])
					}
				}
			}
		}
	}
	return ""
}

// withinULP reports whether two float64s are equal or separated by at
// most maxULP representable values. NaN never matches anything, and
// opposite signs only match at ±0.
func withinULP(x, y float64, maxULP int64) bool {
	if x == y {
		return true
	}
	if math.IsNaN(x) || math.IsNaN(y) {
		return false
	}
	if math.Signbit(x) != math.Signbit(y) {
		return false
	}
	ux, uy := int64(math.Float64bits(x)), int64(math.Float64bits(y))
	d := ux - uy
	if d < 0 {
		d = -d
	}
	return d <= maxULP
}

// cloneMachine deep-clones region data, sharing immutable funcs and
// partitions.
func cloneMachine(m *ir.Machine) *ir.Machine {
	out := ir.NewMachine()
	for name, r := range m.Regions {
		out.Regions[name] = r.CloneData()
	}
	out.Funcs = m.Funcs
	out.Partitions = m.Partitions
	return out
}
