package gen

import (
	"fmt"
	"sort"
	"strings"

	"autopart/internal/constraint"
	"autopart/internal/diag"
	"autopart/internal/dpl"
	"autopart/internal/geometry"
	"autopart/internal/lang"
	"autopart/internal/region"
	"autopart/pkg/autopart"
)

// The solver oracle cross-checks the constraint solver against concrete
// set semantics, in both directions:
//
//   - Validity: when the solver accepts a program, every conjunct of
//     every loop's (possibly relaxed) obligation system is re-checked
//     semantically — partitions evaluated on the concrete machine,
//     DISJ/COMP/PART/⊆ decided by interval arithmetic instead of the
//     prover's lemmas. A violated conjunct means the prover derived
//     something false (this is how the L7-on-partial-functions
//     unsoundness would have surfaced had it not first corrupted an
//     execution).
//
//   - Completeness: when the solver rejects with S001 ("no solution"),
//     a brute-force enumerator tries every assignment of the unsolved
//     symbols from the solver's own candidate language (equal(R),
//     extern partitions, and a bounded image/preimage/union closure).
//     A semantically valid assignment the solver missed is a
//     completeness bug. The enumerator is budgeted; exhausting the
//     budget yields Undecided, not a finding.

// SolverVerdict classifies one scenario's trip through the solver
// oracle.
type SolverVerdict int

// Solver oracle verdicts.
const (
	// SolverOK: accepted and semantically valid, or rejected and the
	// enumerator agrees no candidate assignment works.
	SolverOK SolverVerdict = iota
	// SolverRejected: rejected before the solver ran (parse/type/infer
	// diagnostics) — outside this oracle's scope.
	SolverRejected
	// SolverUndecided: rejected with S001 and the enumerator ran out of
	// budget before deciding.
	SolverUndecided
	// SolverDivergence: a validity or completeness finding. Always a bug.
	SolverDivergence
)

// SolverReport is the outcome of the solver oracle on one scenario.
type SolverReport struct {
	Verdict SolverVerdict
	// Code is the diagnostic code for SolverRejected.
	Code string
	// Class is "solver-validity" or "solver-completeness" for
	// SolverDivergence.
	Class  string
	Detail string
}

func (r *SolverReport) String() string {
	switch r.Verdict {
	case SolverOK:
		return "ok"
	case SolverRejected:
		return "rejected " + r.Code
	case SolverUndecided:
		return "undecided (budget exhausted)"
	default:
		return fmt.Sprintf("DIVERGENCE [%s]: %s", r.Class, r.Detail)
	}
}

// Failed reports whether the oracle found a bug.
func (r *SolverReport) Failed() bool { return r.Verdict == SolverDivergence }

// bruteBudget bounds the enumerator: candidate constructions plus
// search-tree nodes. Tiny-tier systems decide well within it.
const bruteBudget = 20000

// RunSolverOracle compiles one scenario and cross-checks the solver
// semantically. Intended for the Tiny tier, where extents keep
// enumeration cheap; it is correct (just slower) on any tier.
func RunSolverOracle(sc *Scenario) *SolverReport {
	c, sess, err := autopart.CompileSession(sc.Src, autopart.Options{})
	if err != nil {
		code := diag.From(err, "X000").Code
		if code != "S001" || sess == nil || sess.Program == nil {
			return &SolverReport{Verdict: SolverRejected, Code: code}
		}
		// The solver's fallback obligations are the unrelaxed per-loop
		// systems; externals are assumptions, realized on the machine.
		obligations := &constraint.System{}
		for _, r := range sess.Inference {
			obligations.And(r.Sys)
		}
		return bruteForceCheck(sc, sess.Program, obligations, sess.ExternalSyms)
	}
	return validityCheck(sc, c)
}

// validityCheck re-proves every accepted conjunct on concrete data.
func validityCheck(sc *Scenario, c *autopart.Compiled) *SolverReport {
	m, external, _, err := BuildMachine(sc.Prog, sc.Spec)
	if err != nil {
		return &SolverReport{Verdict: SolverDivergence, Class: "solver-validity", Detail: "machine build: " + err.Error()}
	}
	ctx, err := c.NewContext(sc.Spec.Nodes, m)
	if err != nil {
		return &SolverReport{Verdict: SolverDivergence, Class: "solver-validity", Detail: err.Error()}
	}
	for sym, p := range external {
		ctx.Bind(sym, p)
	}
	parts, err := c.Evaluate(ctx)
	if err != nil {
		return &SolverReport{Verdict: SolverDivergence, Class: "solver-validity", Detail: "evaluate: " + err.Error()}
	}
	// The obligation systems name original access symbols; bind each to
	// its canonical partition so conjuncts evaluate directly.
	for _, plan := range c.Plans {
		for _, sym := range plan.Sys.Symbols() {
			if _, ok := ctx.Binding(sym); ok {
				continue
			}
			p, ok := parts[c.Solution.Resolve(sym)]
			if !ok {
				return &SolverReport{
					Verdict: SolverDivergence, Class: "solver-validity",
					Detail: fmt.Sprintf("accepted symbol %s has no evaluated partition", sym),
				}
			}
			ctx.Bind(sym, p)
		}
	}
	for li, plan := range c.Plans {
		if bad := checkSystem(ctx, plan.Sys); bad != "" {
			return &SolverReport{
				Verdict: SolverDivergence, Class: "solver-validity",
				Detail: fmt.Sprintf("loop %d: %s", li, bad),
			}
		}
	}
	return &SolverReport{Verdict: SolverOK}
}

// checkSystem semantically verifies every conjunct against the
// context's concrete bindings; empty means all hold.
func checkSystem(ctx *dpl.Context, sys *constraint.System) string {
	for _, p := range sys.Preds {
		part, err := ctx.Eval(p.E)
		if err != nil {
			return fmt.Sprintf("%s: %v", p, err)
		}
		switch p.Kind {
		case constraint.Disj:
			if !part.IsDisjoint() {
				return fmt.Sprintf("%s violated: %s", p, part)
			}
		case constraint.Comp:
			r, ok := ctx.Region(p.Region)
			if !ok {
				return fmt.Sprintf("%s: unknown region", p)
			}
			if !r.Space().SubsetOf(part.UnionAll()) {
				return fmt.Sprintf("%s violated: %s", p, part)
			}
		case constraint.Part:
			r, ok := ctx.Region(p.Region)
			if !ok {
				return fmt.Sprintf("%s: unknown region", p)
			}
			if !part.UnionAll().SubsetOf(r.Space()) {
				return fmt.Sprintf("%s violated: %s", p, part)
			}
		}
	}
	for _, c := range sys.Subsets {
		l, err := ctx.Eval(c.L)
		if err != nil {
			return fmt.Sprintf("%s: %v", c, err)
		}
		r, err := ctx.Eval(c.R)
		if err != nil {
			return fmt.Sprintf("%s: %v", c, err)
		}
		if l.NumSubs() != r.NumSubs() {
			return fmt.Sprintf("%s violated: color counts %d vs %d", c, l.NumSubs(), r.NumSubs())
		}
		for i := 0; i < l.NumSubs(); i++ {
			if !l.Sub(i).SubsetOf(r.Sub(i)) {
				return fmt.Sprintf("%s violated at color %d: %s ⊄ %s", c, i, l.Sub(i), r.Sub(i))
			}
		}
	}
	return ""
}

// bruteForceCheck enumerates candidate assignments for an S001-rejected
// program. The session carries the frontend artifacts of the failed
// compile; the unrelaxed per-loop systems are the obligations the
// solver ultimately fell back to, so a valid assignment for them is a
// completeness finding.
func bruteForceCheck(sc *Scenario, src *lang.Program, sys *constraint.System, externalSyms []string) *SolverReport {
	m, external, _, err := BuildMachine(sc.Prog, sc.Spec)
	if err != nil {
		// An unbuildable scenario cannot indict the solver.
		return &SolverReport{Verdict: SolverRejected, Code: "S001"}
	}
	ctx := dpl.NewContext(sc.Spec.Nodes)
	for _, decl := range src.Regions {
		r, ok := m.Regions[decl.Name]
		if !ok {
			return &SolverReport{Verdict: SolverRejected, Code: "S001"}
		}
		ctx.AddRegion(r)
		for _, f := range decl.Fields {
			name := fmt.Sprintf("%s[·].%s", decl.Name, f.Name)
			switch f.Kind {
			case lang.IndexKind:
				ctx.AddMap(name, r.PointerMap(f.Name))
			case lang.RangeKind:
				ctx.AddMultiMap(name, r.RangeMap(f.Name))
			}
		}
	}
	for _, f := range src.Funcs {
		if fn, ok := m.Funcs[f.Name]; ok {
			ctx.AddMap(f.Name, fn)
		}
	}
	for sym, p := range external {
		ctx.Bind(sym, p)
	}

	budget := bruteBudget
	cands := candidateUniverse(ctx, sys, &budget)
	fixed := map[string]bool{}
	for _, sym := range externalSyms {
		fixed[sym] = true
	}
	var syms []string
	for _, sym := range sys.Symbols() {
		if !fixed[sym] {
			syms = append(syms, sym)
		}
	}
	sort.Strings(syms)

	prebound := map[string]bool{}
	for _, sym := range sys.Symbols() {
		if _, ok := ctx.Binding(sym); ok {
			prebound[sym] = true
		}
	}
	e := &enumerator{ctx: ctx, sys: sys, syms: syms, cands: cands, budget: &budget, prebound: prebound}
	switch e.search(0) {
	case searchFound:
		var b strings.Builder
		for _, sym := range syms {
			p, _ := ctx.Binding(sym)
			fmt.Fprintf(&b, " %s=%s", sym, p.Name())
		}
		return &SolverReport{
			Verdict: SolverDivergence, Class: "solver-completeness",
			Detail: "solver said S001 but a candidate assignment satisfies all obligations:" + b.String(),
		}
	case searchExhausted:
		return &SolverReport{Verdict: SolverUndecided}
	default:
		return &SolverReport{Verdict: SolverOK, Code: "S001"}
	}
}

// candidateUniverse builds the concrete candidate partitions per region,
// mirroring the solver's assignment language: equal(R), the extern
// partitions, one level of every image/preimage operator appearing in
// the obligations applied to each base candidate, and pairwise unions.
func candidateUniverse(ctx *dpl.Context, sys *constraint.System, budget *int) map[string][]*region.Partition {
	type application struct {
		img          bool
		multi        bool
		fn, toRegion string
		domRegion    string // preimage source region
	}
	var apps []application
	seenApp := map[string]bool{}
	var collect func(e dpl.Expr)
	collect = func(e dpl.Expr) {
		switch x := e.(type) {
		case dpl.ImageExpr:
			k := "i\x00" + x.Func + "\x00" + x.Region
			if !seenApp[k] {
				seenApp[k] = true
				apps = append(apps, application{img: true, fn: x.Func, toRegion: x.Region})
			}
			collect(x.Of)
		case dpl.PreimageExpr:
			k := "p\x00" + x.Func + "\x00" + x.Region
			if !seenApp[k] {
				seenApp[k] = true
				apps = append(apps, application{fn: x.Func, domRegion: x.Region})
			}
			collect(x.Of)
		case dpl.ImageMultiExpr:
			k := "I\x00" + x.Func + "\x00" + x.Region
			if !seenApp[k] {
				seenApp[k] = true
				apps = append(apps, application{img: true, multi: true, fn: x.Func, toRegion: x.Region})
			}
			collect(x.Of)
		case dpl.PreimageMultiExpr:
			k := "P\x00" + x.Func + "\x00" + x.Region
			if !seenApp[k] {
				seenApp[k] = true
				apps = append(apps, application{multi: true, fn: x.Func, domRegion: x.Region})
			}
			collect(x.Of)
		case dpl.BinExpr:
			collect(x.L)
			collect(x.R)
		}
	}
	for _, p := range sys.Preds {
		collect(p.E)
	}
	for _, c := range sys.Subsets {
		collect(c.L)
		collect(c.R)
	}

	add := func(out map[string][]*region.Partition, p *region.Partition) {
		if p == nil || p.Parent() == nil {
			return
		}
		r := p.Parent().Name()
		for _, q := range out[r] {
			if q.SamePartition(p) {
				return
			}
		}
		out[r] = append(out[r], p)
	}

	out := map[string][]*region.Partition{}
	regions := map[string]bool{}
	for _, sym := range sys.Symbols() {
		if r, ok := sys.RegionOfSym(sym); ok {
			regions[r] = true
		}
		if p, ok := ctx.Binding(sym); ok {
			add(out, p)
		}
	}
	for _, p := range sys.Preds {
		if p.Region != "" {
			regions[p.Region] = true
		}
	}
	sorted := make([]string, 0, len(regions))
	for r := range regions {
		sorted = append(sorted, r)
	}
	sort.Strings(sorted)
	for _, r := range sorted {
		if p, err := ctx.Eval(dpl.EqualExpr{Region: r}); err == nil {
			add(out, p)
		}
	}

	// Two rounds of operator application (depth-2 closure), then unions.
	for round := 0; round < 2; round++ {
		frontier := map[string][]*region.Partition{}
		for r, ps := range out {
			frontier[r] = append([]*region.Partition(nil), ps...)
		}
		for _, base := range sorted {
			for _, p := range frontier[base] {
				for _, a := range apps {
					if *budget <= 0 {
						return out
					}
					*budget--
					var e dpl.Expr
					bindName := "brute_" + p.Name()
					ctx.Bind(bindName, p)
					if a.img {
						if a.multi {
							e = dpl.ImageMultiExpr{Of: dpl.Var{Name: bindName}, Func: a.fn, Region: a.toRegion}
						} else {
							e = dpl.ImageExpr{Of: dpl.Var{Name: bindName}, Func: a.fn, Region: a.toRegion}
						}
					} else {
						if a.multi {
							e = dpl.PreimageMultiExpr{Region: a.domRegion, Func: a.fn, Of: dpl.Var{Name: bindName}}
						} else {
							e = dpl.PreimageExpr{Region: a.domRegion, Func: a.fn, Of: dpl.Var{Name: bindName}}
						}
					}
					if q, err := ctx.Eval(e); err == nil {
						add(out, q)
					}
				}
			}
		}
	}
	for _, r := range sorted {
		ps := out[r]
		for i := 0; i < len(ps); i++ {
			for j := i + 1; j < len(ps); j++ {
				if *budget <= 0 {
					return out
				}
				*budget--
				add(out, unionParts(ps[i], ps[j]))
			}
		}
	}
	return out
}

// unionParts is the color-wise union of two partitions of one region.
func unionParts(a, b *region.Partition) *region.Partition {
	if a.NumSubs() != b.NumSubs() {
		return nil
	}
	union := make([]geometry.IndexSet, a.NumSubs())
	for i := range union {
		union[i] = a.Sub(i).Union(b.Sub(i))
	}
	return region.NewPartition(fmt.Sprintf("(%s∪%s)", a.Name(), b.Name()), a.Parent(), union)
}

type searchOutcome int

const (
	searchNone searchOutcome = iota
	searchFound
	searchExhausted
)

// enumerator is the DFS over sym→candidate assignments with eager
// conjunct pruning: after each binding, every conjunct whose free
// symbols are all bound is checked semantically.
type enumerator struct {
	ctx    *dpl.Context
	sys    *constraint.System
	syms   []string
	cands  map[string][]*region.Partition
	budget *int
	// prebound are the symbols bound before the search started (the
	// externals). The context accumulates stale bindings from abandoned
	// branches, so "is v assigned" must consult this set and the bound
	// prefix, never the context.
	prebound map[string]bool
}

func (e *enumerator) search(depth int) searchOutcome {
	if *e.budget <= 0 {
		return searchExhausted
	}
	if depth == len(e.syms) {
		if checkSystem(e.ctx, e.sys) == "" {
			return searchFound
		}
		return searchNone
	}
	sym := e.syms[depth]
	reg, _ := e.sys.RegionOfSym(sym)
	exhausted := false
	for _, cand := range e.cands[reg] {
		*e.budget--
		if *e.budget <= 0 {
			return searchExhausted
		}
		e.ctx.Bind(sym, cand)
		if !e.boundConjunctsHold(depth) {
			continue
		}
		switch e.search(depth + 1) {
		case searchFound:
			return searchFound
		case searchExhausted:
			exhausted = true
		}
	}
	if exhausted {
		return searchExhausted
	}
	return searchNone
}

// boundConjunctsHold checks the conjuncts that became fully bound with
// the depth-th symbol (their free symbols are a subset of the bound
// prefix and include the newest symbol), pruning dead branches early.
func (e *enumerator) boundConjunctsHold(depth int) bool {
	bound := map[string]bool{}
	for i := 0; i <= depth; i++ {
		bound[e.syms[i]] = true
	}
	newest := e.syms[depth]
	ready := func(fvs []string) bool {
		sawNew := false
		for _, v := range fvs {
			if v == newest {
				sawNew = true
			}
			if !e.prebound[v] && !bound[v] {
				return false
			}
		}
		return sawNew
	}
	sub := &constraint.System{}
	for _, p := range e.sys.Preds {
		if ready(dpl.FreeVars(p.E)) {
			sub.AddPred(p)
		}
	}
	for _, c := range e.sys.Subsets {
		if ready(append(dpl.FreeVars(c.L), dpl.FreeVars(c.R)...)) {
			sub.AddSubset(c)
		}
	}
	return checkSystem(e.ctx, sub) == ""
}
