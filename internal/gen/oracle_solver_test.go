package gen

import (
	"testing"

	"autopart/internal/constraint"
	"autopart/pkg/autopart"
)

// TestBruteForceFindsKnownSolution exercises the completeness leg's
// sharp edge directly: the brute-force enumerator is handed obligation
// systems the solver actually solved and must find a satisfying
// assignment itself (reported as a would-be completeness divergence,
// since the caller claims the solver said S001). If the enumerator
// could never reach searchFound, the completeness check would silently
// agree with every S001 — this test keeps that leg honest while the
// generator's corpus produces no natural S001s.
func TestBruteForceFindsKnownSolution(t *testing.T) {
	found := 0
	for seed := int64(0); seed < 80 && found < 3; seed++ {
		sc := Generate(seed, Tiny)
		c, sess, err := autopart.CompileSession(sc.Src, autopart.Options{})
		if err != nil || sess == nil || sess.Program == nil {
			continue
		}
		relaxed := false
		for _, plan := range c.Plans {
			relaxed = relaxed || plan.Relaxed
		}
		if relaxed {
			// The unrelaxed obligations below are not what the solver
			// discharged for a relaxed loop; skip to keep the test exact.
			continue
		}
		obligations := &constraint.System{}
		for _, r := range sess.Inference {
			obligations.And(r.Sys)
		}
		ext := map[string]bool{}
		for _, sym := range sess.ExternalSyms {
			ext[sym] = true
		}
		free := 0
		for _, sym := range obligations.Symbols() {
			if !ext[sym] {
				free++
			}
		}
		if free == 0 {
			continue
		}
		rep := bruteForceCheck(sc, sess.Program, obligations, sess.ExternalSyms)
		switch rep.Verdict {
		case SolverDivergence:
			if rep.Class != "solver-completeness" {
				t.Fatalf("seed %d: unexpected class %q: %s", seed, rep.Class, rep)
			}
			found++
		case SolverUndecided:
			// Budget exhaustion is allowed per seed, not in aggregate.
		case SolverOK:
			// The solver solved these obligations, so "no candidate
			// assignment works" means the enumerator's candidate language
			// is missing a construction the solver uses; tolerated per
			// seed (depth-2 closure vs the solver's deeper search) but the
			// test requires real finds overall.
		default:
			t.Fatalf("seed %d: %s", seed, rep)
		}
	}
	if found < 3 {
		t.Fatalf("enumerator found only %d of 3 required known-solvable assignments", found)
	}
}
