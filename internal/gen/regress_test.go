package gen

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRegressions replays every committed reproducer under the full
// execution oracle. Each testdata/regress_*.dsl file is the shrunk form
// of a program that once triggered a compiler or executor bug (found by
// the differential fuzzing harness), annotated with a `#gen expect`
// directive:
//
//	#gen expect ok           — must compile and pass all three executions
//	#gen expect reject CODE  — must be rejected with exactly that code
//
// The files are self-contained: `#gen` directives carry the machine
// realization (sizes, data seed, function and extern shapes) that the
// DSL text cannot express.
func TestRegressions(t *testing.T) {
	files, err := filepath.Glob("testdata/regress_*.dsl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no regression reproducers found")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			text, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			verdict, code := Expectation(string(text))
			if verdict == "" {
				t.Fatal("reproducer lacks a #gen expect directive")
			}
			sc, err := ParseRepro(string(text))
			if err != nil {
				t.Fatal(err)
			}
			r := RunExecOracle(sc)
			switch verdict {
			case "ok":
				if r.Verdict != ExecOK {
					t.Errorf("expected ok, got %s", r)
				}
			case "reject":
				if r.Verdict != ExecRejected || r.Code != code {
					t.Errorf("expected reject %s, got %s", code, r)
				}
			default:
				t.Errorf("unknown expectation %q", verdict)
			}
		})
	}
}
