package gen

// The shrinker reduces a failing scenario by greedy deletion: loops,
// statements (recursively, including hoisting guard bodies), asserts,
// externs, declarations, and finally node/step/extent counts are
// removed one at a time, keeping any edit under which the failure
// predicate still holds. Edits that break name references simply fail
// to compile, so the predicate rejects them without special casing.

// Shrink greedily minimizes sc while pred holds. pred must be true of
// sc itself; the result is 1-minimal with respect to the edit set (no
// single remaining edit preserves the failure).
func Shrink(sc *Scenario, pred func(*Scenario) bool) *Scenario {
	cur := sc
	for {
		improved := false
		for _, cand := range candidates(cur) {
			if pred(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			return cur
		}
	}
}

// rebuild re-prints a modified program into a scenario, dropping sizes
// of deleted space roots.
func rebuild(sc *Scenario, p *Program, spec Spec) *Scenario {
	sizes := map[string]int64{}
	for _, r := range p.Regions {
		if r.Space == "" {
			if sz, ok := spec.Sizes[r.Name]; ok {
				sizes[r.Name] = sz
			} else {
				sizes[r.Name] = r.Size
			}
		}
	}
	spec.Sizes = sizes
	return &Scenario{Seed: sc.Seed, Prog: p, Src: p.Print(), Spec: spec}
}

// candidates enumerates every single-edit reduction of sc, cheapest
// (most source removed) first.
func candidates(sc *Scenario) []*Scenario {
	var out []*Scenario
	add := func(p *Program, spec Spec) {
		out = append(out, rebuild(sc, p, spec))
	}

	// Drop a whole loop.
	for i := range sc.Prog.Loops {
		p := copyProg(sc.Prog)
		p.Loops = append(p.Loops[:i:i], p.Loops[i+1:]...)
		if len(p.Loops) > 0 {
			add(p, sc.Spec)
		}
	}

	// Drop or simplify one statement anywhere.
	nEdits := countStmtEdits(sc.Prog)
	for e := 0; e < nEdits; e++ {
		p := copyProg(sc.Prog)
		applyStmtEdit(p, e)
		ok := false
		for _, l := range p.Loops {
			if len(l.Body) > 0 {
				ok = true
			}
		}
		if ok {
			add(p, sc.Spec)
		}
	}

	// Drop asserts, then whole externs.
	for i, ex := range sc.Prog.Externs {
		if ex.AssertDisj {
			p := copyProg(sc.Prog)
			p.Externs[i].AssertDisj = false
			add(p, sc.Spec)
		}
		if ex.AssertComp {
			p := copyProg(sc.Prog)
			p.Externs[i].AssertComp = false
			add(p, sc.Spec)
		}
		if ex.SubsetOf != "" {
			p := copyProg(sc.Prog)
			p.Externs[i].SubsetOf = ""
			add(p, sc.Spec)
		}
	}
	for i := range sc.Prog.Externs {
		p := copyProg(sc.Prog)
		p.Externs = append(p.Externs[:i:i], p.Externs[i+1:]...)
		for _, e := range p.Externs {
			if e.SubsetOf != "" && sc.Prog.Externs[i].Name == e.SubsetOf {
				e.SubsetOf = ""
			}
		}
		add(p, sc.Spec)
	}

	// Drop declarations. Broken references fail to compile and are
	// rejected by the predicate.
	for i := range sc.Prog.Funcs {
		p := copyProg(sc.Prog)
		p.Funcs = append(p.Funcs[:i:i], p.Funcs[i+1:]...)
		add(p, sc.Spec)
	}
	for ri, r := range sc.Prog.Regions {
		for fi := range r.Fields {
			p := copyProg(sc.Prog)
			p.Regions[ri].Fields = append(p.Regions[ri].Fields[:fi:fi], p.Regions[ri].Fields[fi+1:]...)
			add(p, sc.Spec)
		}
	}
	for i := range sc.Prog.Regions {
		p := copyProg(sc.Prog)
		p.Regions = append(p.Regions[:i:i], p.Regions[i+1:]...)
		if len(p.Regions) > 0 {
			add(p, sc.Spec)
		}
	}

	// Shrink the run shape: fewer steps, fewer nodes, smaller extents.
	if sc.Spec.Steps > 1 {
		spec := sc.Spec
		spec.Steps = 1
		add(copyProg(sc.Prog), spec)
	}
	if sc.Spec.Nodes > 2 {
		spec := sc.Spec
		spec.Nodes = 2
		add(copyProg(sc.Prog), spec)
	}
	for root, sz := range sortedSizes(sc.Spec.Sizes) {
		_ = root
		for _, next := range []int64{sz / 2, sz - 1} {
			if next >= 2 && next < sz {
				spec := sc.Spec
				spec.Sizes = map[string]int64{}
				for k, v := range sc.Spec.Sizes {
					spec.Sizes[k] = v
				}
				spec.Sizes[sortedRoots(sc.Spec.Sizes)[root]] = next
				add(copyProg(sc.Prog), spec)
			}
		}
	}
	return out
}

func sortedRoots(sizes map[string]int64) []string {
	roots := make([]string, 0, len(sizes))
	for r := range sizes {
		roots = append(roots, r)
	}
	for i := 1; i < len(roots); i++ {
		for j := i; j > 0 && roots[j] < roots[j-1]; j-- {
			roots[j], roots[j-1] = roots[j-1], roots[j]
		}
	}
	return roots
}

func sortedSizes(sizes map[string]int64) []int64 {
	roots := sortedRoots(sizes)
	out := make([]int64, len(roots))
	for i, r := range roots {
		out[i] = sizes[r]
	}
	return out
}

// copyProg deep-copies a program so candidate edits never alias.
func copyProg(p *Program) *Program {
	out := &Program{}
	for _, r := range p.Regions {
		nr := &Region{Name: r.Name, Space: r.Space, Size: r.Size}
		for _, f := range r.Fields {
			nf := *f
			nr.Fields = append(nr.Fields, &nf)
		}
		out.Regions = append(out.Regions, nr)
	}
	for _, f := range p.Funcs {
		nf := *f
		out.Funcs = append(out.Funcs, &nf)
	}
	for _, e := range p.Externs {
		ne := *e
		out.Externs = append(out.Externs, &ne)
	}
	for _, l := range p.Loops {
		out.Loops = append(out.Loops, &Loop{Var: l.Var, Region: l.Region, Body: copyStmts(l.Body)})
	}
	return out
}

func copyStmts(stmts []Stmt) []Stmt {
	out := make([]Stmt, len(stmts))
	for i, s := range stmts {
		switch st := s.(type) {
		case Guard:
			out[i] = Guard{Cond: st.Cond, Then: copyStmts(st.Then), Else: copyStmts(st.Else)}
		case Inner:
			out[i] = Inner{Var: st.Var, RangeRegion: st.RangeRegion, Idx: st.Idx, RangeField: st.RangeField, Body: copyStmts(st.Body)}
		default:
			out[i] = s
		}
	}
	return out
}

// Statement edits are enumerated by a preorder walk: each statement
// contributes "delete me", guards additionally contribute "hoist my
// then-body" and "drop my else", inner loops "hoist my body".

func countStmtEdits(p *Program) int {
	n := 0
	for _, l := range p.Loops {
		n += countEditsIn(l.Body)
	}
	return n
}

func countEditsIn(stmts []Stmt) int {
	n := 0
	for _, s := range stmts {
		n++ // delete
		switch st := s.(type) {
		case Guard:
			n++ // hoist then
			if len(st.Else) > 0 {
				n++ // drop else
			}
			n += countEditsIn(st.Then) + countEditsIn(st.Else)
		case Inner:
			n++ // hoist body
			n += countEditsIn(st.Body)
		}
	}
	return n
}

// applyStmtEdit applies the k-th edit of the preorder enumeration.
func applyStmtEdit(p *Program, k int) {
	for _, l := range p.Loops {
		var done bool
		l.Body, k, done = editIn(l.Body, k)
		if done {
			return
		}
	}
}

func editIn(stmts []Stmt, k int) (out []Stmt, rest int, done bool) {
	for i := 0; i < len(stmts); i++ {
		if k == 0 {
			return append(stmts[:i:i], stmts[i+1:]...), 0, true
		}
		k--
		switch st := stmts[i].(type) {
		case Guard:
			if k == 0 { // hoist then-body in place of the guard
				repl := append(stmts[:i:i], st.Then...)
				return append(repl, stmts[i+1:]...), 0, true
			}
			k--
			if len(st.Else) > 0 {
				if k == 0 {
					stmts[i] = Guard{Cond: st.Cond, Then: st.Then}
					return stmts, 0, true
				}
				k--
			}
			var d bool
			st.Then, k, d = editIn(st.Then, k)
			if d {
				stmts[i] = st
				return stmts, 0, true
			}
			st.Else, k, d = editIn(st.Else, k)
			if d {
				stmts[i] = st
				return stmts, 0, true
			}
		case Inner:
			if k == 0 { // hoist body (inner indices rarely survive, but
				// the predicate arbitrates)
				repl := append(stmts[:i:i], st.Body...)
				return append(repl, stmts[i+1:]...), 0, true
			}
			k--
			var d bool
			st.Body, k, d = editIn(st.Body, k)
			if d {
				stmts[i] = st
				return stmts, 0, true
			}
		}
	}
	return stmts, k, false
}
