package geometry

import "testing"

// Benchmark fixtures sized to resemble an evaluated benchmark
// partition: a fragmented million-element set.
func benchSet() IndexSet {
	var b Builder
	for lo := int64(0); lo < 1<<20; lo += 64 {
		b.AddInterval(Interval{lo, lo + 48})
	}
	return b.Build()
}

func BenchmarkImageAffine(b *testing.B) {
	s := benchSet()
	cod := Range(0, 1<<20)
	m := AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: 1 << 20}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imageAffine(s, m, cod)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imageGeneric(s, m, cod)
		}
	})
}

func BenchmarkPreimageAffine(b *testing.B) {
	dom := Range(0, 1<<20)
	target := benchSet()
	m := AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: 1 << 20}
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			preimageAffine(dom, m, target)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			preimageGeneric(dom, m, target)
		}
	})
}

// BenchmarkImageTable uses a banded (SpMV-like) table: values are
// locally ascending, so the Builder coalesces them into few intervals.
func BenchmarkImageTable(b *testing.B) {
	const rows, band = 1 << 17, 8
	table := make([]int64, rows*band)
	for i := range table {
		table[i] = int64(i/band + i%band)
	}
	m := TableMap{Name: "ind", Table: table}
	s := Range(0, rows*band)
	cod := Range(0, rows+band)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imageTable(s, m, cod)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imageGeneric(s, m, cod)
		}
	})
}

func BenchmarkPreimageTable(b *testing.B) {
	const n = 1 << 20
	table := make([]int64, n)
	for i := range table {
		table[i] = int64((i * 7) % n)
	}
	m := TableMap{Name: "t", Table: table}
	dom := Range(0, n)
	target := Range(0, n/4)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			preimageTable(dom, m, target)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			preimageGeneric(dom, m, target)
		}
	})
}

func BenchmarkImageRangeTable(b *testing.B) {
	const n = 1 << 18
	ranges := make([]Interval, n)
	for i := range ranges {
		lo := int64(i * 8)
		ranges[i] = Interval{lo, lo + 8}
	}
	m := RangeTableMap{Name: "r", Ranges: ranges}
	s := Range(0, n)
	cod := Range(0, n*8)
	b.Run("fast", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imageRangeTable(s, m, cod)
		}
	})
	b.Run("generic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			imageMultiGeneric(s, m, cod)
		}
	})
}

// BenchmarkUnionAll compares the k-way merge against the pairwise fold
// it replaced, over 256 interleaved striped sets.
func BenchmarkUnionAll(b *testing.B) {
	const k = 256
	sets := make([]IndexSet, k)
	for c := range sets {
		var bld Builder
		for lo := int64(c * 16); lo < 1<<20; lo += k * 16 {
			bld.AddInterval(Interval{lo, lo + 8})
		}
		sets[c] = bld.Build()
	}
	b.Run("kway", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			UnionAll(sets)
		}
	})
	b.Run("pairwise", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			var u IndexSet
			for _, s := range sets {
				u = u.Union(s)
			}
		}
	})
}
