package geometry

import "slices"

// This file holds the interval-native fast paths of the evaluation
// engine. The public Image/Preimage/ImageMulti/PreimageMulti entry
// points in map.go dispatch here when the map's concrete type admits
// whole-interval arithmetic; the per-element implementations remain as
// the generic fallback and as the reference the differential tests
// compare against.

// imageIdentity computes the image under the identity map: s ∩ codomain.
func imageIdentity(s, codomain IndexSet) IndexSet { return s.Intersect(codomain) }

// affineIntervalImage returns the image of one non-empty interval under
// f(k) = Stride*k + Offset before modulo wrapping, for Stride ∈ {-1, 0, 1}.
func affineIntervalImage(m AffineMap, iv Interval) Interval {
	switch m.Stride {
	case 1:
		return Interval{iv.Lo + m.Offset, iv.Hi + m.Offset}
	case -1:
		// Values -Hi+1+Offset .. -Lo+Offset.
		return Interval{m.Offset - iv.Hi + 1, m.Offset - iv.Lo + 1}
	default: // Stride == 0: every index maps to Offset.
		return Interval{m.Offset, m.Offset + 1}
	}
}

// wrapInterval appends iv wrapped into [0, mod) to out. An interval
// covering a full period collapses to [0, mod).
func wrapInterval(out []Interval, iv Interval, mod int64) []Interval {
	if iv.Len() >= mod {
		return append(out, Interval{0, mod})
	}
	lo := iv.Lo % mod
	if lo < 0 {
		lo += mod
	}
	hi := lo + iv.Len()
	if hi <= mod {
		return append(out, Interval{lo, hi})
	}
	return append(out, Interval{lo, mod}, Interval{0, hi - mod})
}

// affineFastPath reports whether the affine map admits interval-native
// image/preimage computation.
func affineFastPath(m AffineMap) bool {
	return m.Stride == 1 || m.Stride == -1 || m.Stride == 0
}

// imageAffine computes Image(s, m, codomain) one interval at a time.
func imageAffine(s IndexSet, m AffineMap, codomain IndexSet) IndexSet {
	ivs := make([]Interval, 0, len(s.ivs)+1)
	for _, iv := range s.ivs {
		out := affineIntervalImage(m, iv)
		if m.Modulo > 0 {
			ivs = wrapInterval(ivs, out, m.Modulo)
		} else {
			ivs = append(ivs, out)
		}
	}
	img := FromIntervals(ivs...)
	if m.Clamp != nil {
		img = img.Intersect(FromIntervals(*m.Clamp))
	}
	return img.Intersect(codomain)
}

// preimageAffine computes Preimage(domain, m, target) by pulling every
// target interval back through f.
func preimageAffine(domain IndexSet, m AffineMap, target IndexSet) IndexSet {
	// Only values inside the clamp are ever produced.
	if m.Clamp != nil {
		target = target.Intersect(FromIntervals(*m.Clamp))
	}
	if target.Empty() || domain.Empty() {
		return IndexSet{}
	}
	if m.Stride == 0 {
		// f(k) = Offset (mod Modulo) for every k.
		v := m.Offset
		if m.Modulo > 0 {
			v %= m.Modulo
			if v < 0 {
				v += m.Modulo
			}
		}
		if target.Contains(v) {
			return domain
		}
		return IndexSet{}
	}
	if m.Modulo <= 0 {
		ivs := make([]Interval, 0, len(target.ivs))
		for _, t := range target.ivs {
			ivs = append(ivs, pullbackAffine(m, t))
		}
		return FromIntervals(ivs...).Intersect(domain)
	}
	// Periodic case: f(k) = (Stride*k + Offset) mod Modulo. The preimage
	// of each target interval is a period-Modulo family of intervals;
	// enumerate only the periods overlapping the domain's bounds.
	mod := m.Modulo
	target = target.Intersect(Range(0, mod))
	bounds, _ := domain.Bounds()
	var ivs []Interval
	for _, t := range target.ivs {
		base := pullbackAffine(m, t)
		// base + j*Modulo must intersect [bounds.Lo, bounds.Hi).
		jLo := floorDiv(bounds.Lo-base.Hi+1, mod)
		jHi := floorDiv(bounds.Hi-base.Lo-1, mod)
		for j := jLo; j <= jHi; j++ {
			ivs = append(ivs, Interval{base.Lo + j*mod, base.Hi + j*mod})
		}
	}
	return FromIntervals(ivs...).Intersect(domain)
}

// pullbackAffine returns { k | Stride*k + Offset ∈ t } for Stride ∈ {1, -1}.
func pullbackAffine(m AffineMap, t Interval) Interval {
	if m.Stride == 1 {
		return Interval{t.Lo - m.Offset, t.Hi - m.Offset}
	}
	// Stride == -1: -k + Offset ∈ [Lo, Hi) ⇔ k ∈ (Offset-Hi, Offset-Lo].
	return Interval{m.Offset - t.Hi + 1, m.Offset - t.Lo + 1}
}

// floorDiv returns ⌊a/b⌋ for b > 0.
func floorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// imageTable computes Image(s, m, codomain) for a TableMap by walking
// the backing slice directly per interval, avoiding the per-element
// interface dispatch of the generic path. Hits go straight into a
// Builder: ascending runs (the common case for locality-preserving
// tables) coalesce in place, so the Build-time sort is over intervals,
// not elements.
func imageTable(s IndexSet, m TableMap, codomain IndexSet) IndexSet {
	n := int64(len(m.Table))
	var b Builder
	for _, iv := range s.ivs {
		lo, hi := iv.Lo, iv.Hi
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			if v := m.Table[k]; v >= 0 {
				b.Add(v)
			}
		}
	}
	return b.Build().Intersect(codomain)
}

// preimageTable computes Preimage(domain, m, target) for a TableMap by
// walking the backing slice directly; hits arrive in ascending order so
// each insert is O(1).
func preimageTable(domain IndexSet, m TableMap, target IndexSet) IndexSet {
	n := int64(len(m.Table))
	var b Builder
	for _, iv := range domain.ivs {
		lo, hi := iv.Lo, iv.Hi
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			if v := m.Table[k]; v >= 0 && target.Contains(v) {
				b.Add(k)
			}
		}
	}
	return b.Build()
}

// imageRangeTable computes ImageMulti(s, m, codomain) for a
// RangeTableMap: gather every per-index range, then sort-and-merge once.
func imageRangeTable(s IndexSet, m RangeTableMap, codomain IndexSet) IndexSet {
	n := int64(len(m.Ranges))
	var ivs []Interval
	for _, iv := range s.ivs {
		lo, hi := iv.Lo, iv.Hi
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			if r := m.Ranges[k]; !r.Empty() {
				ivs = append(ivs, r)
			}
		}
	}
	return FromIntervals(ivs...).Intersect(codomain)
}

// preimageRangeTable computes PreimageMulti(domain, m, target) for a
// RangeTableMap using a per-index overlap test instead of materializing
// F(k) as a set.
func preimageRangeTable(domain IndexSet, m RangeTableMap, target IndexSet) IndexSet {
	n := int64(len(m.Ranges))
	var b Builder
	for _, iv := range domain.ivs {
		lo, hi := iv.Lo, iv.Hi
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for k := lo; k < hi; k++ {
			if target.OverlapsInterval(m.Ranges[k]) {
				b.Add(k)
			}
		}
	}
	return b.Build()
}

// UnionAll returns the union of every set in one k-way merge: all
// intervals are collected, sorted, and coalesced once, instead of the
// O(k²) interval copying of a pairwise-union fold.
func UnionAll(sets []IndexSet) IndexSet {
	total := 0
	last := -1
	for i, s := range sets {
		if !s.Empty() {
			total += len(s.ivs)
			last = i
		}
	}
	if total == 0 {
		return IndexSet{}
	}
	if len(sets[last].ivs) == total {
		return sets[last] // only one non-empty input
	}
	ivs := make([]Interval, 0, total)
	for _, s := range sets {
		ivs = append(ivs, s.ivs...)
	}
	slices.SortFunc(ivs, func(a, b Interval) int {
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		default:
			return 0
		}
	})
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		if prev := &out[len(out)-1]; iv.Lo <= prev.Hi {
			if iv.Hi > prev.Hi {
				prev.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return IndexSet{ivs: out}
}

// DisjointAll reports whether the sets are pairwise disjoint, in one
// sorted sweep over all intervals instead of an O(k²) comparison (or a
// fold of quadratic-copy unions).
func DisjointAll(sets []IndexSet) bool {
	total := 0
	for _, s := range sets {
		total += len(s.ivs)
	}
	if total <= 1 {
		return true
	}
	ivs := make([]Interval, 0, total)
	for _, s := range sets {
		ivs = append(ivs, s.ivs...)
	}
	slices.SortFunc(ivs, func(a, b Interval) int {
		switch {
		case a.Lo < b.Lo:
			return -1
		case a.Lo > b.Lo:
			return 1
		default:
			return 0
		}
	})
	for i := 1; i < len(ivs); i++ {
		// Within one set intervals never touch, so any overlap between
		// sorted neighbors is a cross-set overlap.
		if ivs[i].Lo < ivs[i-1].Hi {
			return false
		}
	}
	return true
}
