package geometry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randSet builds a bounded random index set from generator-provided
// bytes: each byte pair becomes an interval inside [-8, 56).
func randSet(spec []byte) IndexSet {
	var b Builder
	for i := 0; i+1 < len(spec); i += 2 {
		lo := int64(spec[i]%64) - 8
		b.AddInterval(Interval{lo, lo + int64(spec[i+1]%9)})
	}
	return b.Build()
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 400, Rand: rand.New(rand.NewSource(1))}
}

// TestImagePreimageAffineDifferential asserts the interval-native
// affine paths match the per-element reference for every stride the
// fast path claims, with random clamps and moduli (including partial
// maps via clamp and out-of-codomain values via a random codomain).
func TestImagePreimageAffineDifferential(t *testing.T) {
	prop := func(sSpec, codSpec []byte, offset int8, strideSel, clampSel uint8, clampLo int8, clampLen, modSel uint8) bool {
		s := randSet(sSpec)
		cod := randSet(codSpec)
		m := AffineMap{Name: "f", Offset: int64(offset)}
		m.Stride = int64(strideSel%3) - 1 // -1, 0, 1
		if clampSel%2 == 0 {
			m.Clamp = &Interval{int64(clampLo), int64(clampLo) + int64(clampLen%24)}
		}
		if modSel%3 == 0 {
			m.Modulo = int64(modSel%29) + 1
		}
		if !affineFastPath(m) {
			t.Fatalf("stride %d should take the fast path", m.Stride)
		}
		img := imageAffine(s, m, cod)
		if want := imageGeneric(s, m, cod); !img.Equal(want) {
			t.Logf("image mismatch: map=%+v s=%s cod=%s got=%s want=%s", m, s, cod, img, want)
			return false
		}
		pre := preimageAffine(s, m, cod)
		if want := preimageGeneric(s, m, cod); !pre.Equal(want) {
			t.Logf("preimage mismatch: map=%+v dom=%s target=%s got=%s want=%s", m, s, cod, pre, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestImagePreimageTableDifferential covers TableMap batched paths,
// including negative (out-of-domain) entries and indices outside the
// table bounds.
func TestImagePreimageTableDifferential(t *testing.T) {
	prop := func(sSpec, codSpec, tableSpec []byte) bool {
		s := randSet(sSpec)
		cod := randSet(codSpec)
		table := make([]int64, len(tableSpec))
		for i, v := range tableSpec {
			table[i] = int64(v%40) - 4 // ~10% out of domain
		}
		m := TableMap{Name: "t", Table: table}
		if got, want := imageTable(s, m, cod), imageGeneric(s, m, cod); !got.Equal(want) {
			t.Logf("image mismatch: s=%s got=%s want=%s", s, got, want)
			return false
		}
		if got, want := preimageTable(s, m, cod), preimageGeneric(s, m, cod); !got.Equal(want) {
			t.Logf("preimage mismatch: dom=%s got=%s want=%s", s, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestRangeTableDifferential covers the batched RangeTableMap paths,
// including empty per-index ranges and out-of-table indices.
func TestRangeTableDifferential(t *testing.T) {
	prop := func(sSpec, codSpec, rangeSpec []byte) bool {
		s := randSet(sSpec)
		cod := randSet(codSpec)
		ranges := make([]Interval, len(rangeSpec)/2)
		for i := range ranges {
			lo := int64(rangeSpec[2*i]%48) - 4
			ranges[i] = Interval{lo, lo + int64(rangeSpec[2*i+1]%7) - 1} // sometimes empty
		}
		m := RangeTableMap{Name: "r", Ranges: ranges}
		if got, want := imageRangeTable(s, m, cod), imageMultiGeneric(s, m, cod); !got.Equal(want) {
			t.Logf("IMAGE mismatch: s=%s got=%s want=%s", s, got, want)
			return false
		}
		if got, want := preimageRangeTable(s, m, cod), preimageMultiGeneric(s, m, cod); !got.Equal(want) {
			t.Logf("PREIMAGE mismatch: dom=%s got=%s want=%s", s, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestLiftedMultiDispatch asserts the MultiMap entry points route
// lifted single-valued maps through the same results as the generic
// multi evaluation.
func TestLiftedMultiDispatch(t *testing.T) {
	prop := func(sSpec, codSpec []byte, offset int8, modSel uint8) bool {
		s := randSet(sSpec)
		cod := randSet(codSpec)
		m := AffineMap{Name: "f", Stride: 1, Offset: int64(offset)}
		if modSel%2 == 0 {
			m.Modulo = int64(modSel%17) + 1
		}
		lifted := Lift(m)
		if got, want := ImageMulti(s, lifted, cod), imageMultiGeneric(s, lifted, cod); !got.Equal(want) {
			return false
		}
		if got, want := PreimageMulti(s, lifted, cod), preimageMultiGeneric(s, lifted, cod); !got.Equal(want) {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestUnionAllDisjointAllDifferential compares the k-way merge helpers
// against pairwise folds, including empty inputs and empty members.
func TestUnionAllDisjointAllDifferential(t *testing.T) {
	prop := func(specs [][]byte) bool {
		sets := make([]IndexSet, len(specs))
		for i, spec := range specs {
			sets[i] = randSet(spec)
		}
		var union IndexSet
		for _, s := range sets {
			union = union.Union(s)
		}
		if got := UnionAll(sets); !got.Equal(union) {
			t.Logf("UnionAll mismatch: got=%s want=%s", got, union)
			return false
		}
		pairwise := true
	outer:
		for i := range sets {
			for j := i + 1; j < len(sets); j++ {
				if !sets[i].Disjoint(sets[j]) {
					pairwise = false
					break outer
				}
			}
		}
		if got := DisjointAll(sets); got != pairwise {
			t.Logf("DisjointAll = %v, pairwise = %v (sets %v)", got, pairwise, sets)
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestUnionAllEdgeCases(t *testing.T) {
	if !UnionAll(nil).Empty() {
		t.Error("UnionAll(nil) should be empty")
	}
	if !UnionAll([]IndexSet{{}, {}}).Empty() {
		t.Error("UnionAll of empties should be empty")
	}
	one := Range(3, 9)
	if got := UnionAll([]IndexSet{{}, one, {}}); !got.Equal(one) {
		t.Errorf("UnionAll single = %s", got)
	}
	if !DisjointAll(nil) || !DisjointAll([]IndexSet{{}, {}}) {
		t.Error("empty inputs are trivially disjoint")
	}
}

func TestOverlapsInterval(t *testing.T) {
	s := FromIntervals(Interval{0, 4}, Interval{10, 12})
	cases := []struct {
		iv   Interval
		want bool
	}{
		{Interval{4, 10}, false},
		{Interval{3, 5}, true},
		{Interval{11, 11}, false}, // empty
		{Interval{-5, 0}, false},
		{Interval{12, 20}, false},
		{Interval{0, 1}, true},
		{Interval{11, 12}, true},
	}
	for _, c := range cases {
		if got := s.OverlapsInterval(c.iv); got != c.want {
			t.Errorf("OverlapsInterval(%s) = %v, want %v", c.iv, got, c.want)
		}
	}
}
