// Package geometry provides the index-space primitives used throughout the
// partitioning system: points, intervals, and sparse index sets represented
// as sorted interval lists.
//
// Regions are indexed by dense or sparse sets of int64 indices. An IndexSet
// is the fundamental value manipulated by the DPL operators (image,
// preimage, union, intersection, difference); it is immutable once built.
package geometry

import (
	"fmt"
	"slices"
	"sort"
	"strings"
)

// Interval is a half-open range [Lo, Hi) of indices. An Interval with
// Lo >= Hi is empty.
type Interval struct {
	Lo, Hi int64
}

// Empty reports whether the interval contains no indices.
func (iv Interval) Empty() bool { return iv.Lo >= iv.Hi }

// Len returns the number of indices in the interval.
func (iv Interval) Len() int64 {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo
}

// Contains reports whether k lies in the interval.
func (iv Interval) Contains(k int64) bool { return k >= iv.Lo && k < iv.Hi }

// Intersect returns the overlap of two intervals (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	lo, hi := iv.Lo, iv.Hi
	if other.Lo > lo {
		lo = other.Lo
	}
	if other.Hi < hi {
		hi = other.Hi
	}
	return Interval{lo, hi}
}

// Overlaps reports whether the two intervals share at least one index.
func (iv Interval) Overlaps(other Interval) bool {
	return !iv.Intersect(other).Empty()
}

func (iv Interval) String() string {
	if iv.Empty() {
		return "[)"
	}
	return fmt.Sprintf("[%d,%d)", iv.Lo, iv.Hi)
}

// IndexSet is an immutable set of int64 indices stored as a sorted list of
// disjoint, non-adjacent, non-empty intervals. The zero value is the empty
// set and is ready to use.
type IndexSet struct {
	ivs []Interval
}

// EmptySet returns the empty index set.
func EmptySet() IndexSet { return IndexSet{} }

// Range returns the dense index set [lo, hi).
func Range(lo, hi int64) IndexSet {
	if lo >= hi {
		return IndexSet{}
	}
	return IndexSet{ivs: []Interval{{lo, hi}}}
}

// FromIntervals builds an index set from arbitrary (possibly overlapping,
// unsorted, empty) intervals.
func FromIntervals(ivs ...Interval) IndexSet {
	var b Builder
	for _, iv := range ivs {
		b.AddInterval(iv)
	}
	return b.Build()
}

// FromSlice builds an index set from arbitrary (possibly duplicated,
// unsorted) indices.
func FromSlice(ks []int64) IndexSet {
	var b Builder
	for _, k := range ks {
		b.Add(k)
	}
	return b.Build()
}

// Empty reports whether the set has no elements.
func (s IndexSet) Empty() bool { return len(s.ivs) == 0 }

// Len returns the number of indices in the set.
func (s IndexSet) Len() int64 {
	var n int64
	for _, iv := range s.ivs {
		n += iv.Len()
	}
	return n
}

// NumIntervals returns the number of maximal runs in the set; a measure of
// the set's sparsity/fragmentation used by the cost model.
func (s IndexSet) NumIntervals() int { return len(s.ivs) }

// Intervals returns the underlying interval list. The caller must not
// modify the returned slice.
func (s IndexSet) Intervals() []Interval { return s.ivs }

// Bounds returns the smallest interval covering the set. The second result
// is false when the set is empty.
func (s IndexSet) Bounds() (Interval, bool) {
	if len(s.ivs) == 0 {
		return Interval{}, false
	}
	return Interval{s.ivs[0].Lo, s.ivs[len(s.ivs)-1].Hi}, true
}

// Contains reports whether k is a member of the set.
func (s IndexSet) Contains(k int64) bool {
	// Binary search for the first interval with Hi > k.
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > k })
	return i < len(s.ivs) && s.ivs[i].Contains(k)
}

// OverlapsInterval reports whether the set shares at least one index
// with iv, by binary search.
func (s IndexSet) OverlapsInterval(iv Interval) bool {
	if iv.Empty() {
		return false
	}
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].Hi > iv.Lo })
	return i < len(s.ivs) && s.ivs[i].Lo < iv.Hi
}

// Equal reports whether the two sets contain exactly the same indices.
func (s IndexSet) Equal(other IndexSet) bool {
	if len(s.ivs) != len(other.ivs) {
		return false
	}
	for i, iv := range s.ivs {
		if iv != other.ivs[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every index of s is also in other.
func (s IndexSet) SubsetOf(other IndexSet) bool {
	j := 0
	for _, iv := range s.ivs {
		for j < len(other.ivs) && other.ivs[j].Hi <= iv.Lo {
			j++
		}
		if j >= len(other.ivs) || other.ivs[j].Lo > iv.Lo || other.ivs[j].Hi < iv.Hi {
			return false
		}
	}
	return true
}

// Disjoint reports whether the two sets share no index.
func (s IndexSet) Disjoint(other IndexSet) bool {
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		if s.ivs[i].Overlaps(other.ivs[j]) {
			return false
		}
		if s.ivs[i].Hi <= other.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return true
}

// Union returns the set of indices in either set.
func (s IndexSet) Union(other IndexSet) IndexSet {
	if s.Empty() {
		return other
	}
	if other.Empty() {
		return s
	}
	var b Builder
	b.grow(len(s.ivs) + len(other.ivs))
	i, j := 0, 0
	for i < len(s.ivs) || j < len(other.ivs) {
		switch {
		case j >= len(other.ivs) || (i < len(s.ivs) && s.ivs[i].Lo <= other.ivs[j].Lo):
			b.AddInterval(s.ivs[i])
			i++
		default:
			b.AddInterval(other.ivs[j])
			j++
		}
	}
	return b.Build()
}

// Intersect returns the set of indices in both sets.
func (s IndexSet) Intersect(other IndexSet) IndexSet {
	var b Builder
	i, j := 0, 0
	for i < len(s.ivs) && j < len(other.ivs) {
		if ov := s.ivs[i].Intersect(other.ivs[j]); !ov.Empty() {
			b.AddInterval(ov)
		}
		if s.ivs[i].Hi <= other.ivs[j].Hi {
			i++
		} else {
			j++
		}
	}
	return b.Build()
}

// Subtract returns the set of indices in s but not in other.
func (s IndexSet) Subtract(other IndexSet) IndexSet {
	if other.Empty() {
		return s
	}
	var b Builder
	j := 0
	for _, iv := range s.ivs {
		lo := iv.Lo
		for j < len(other.ivs) && other.ivs[j].Hi <= lo {
			j++
		}
		k := j
		for k < len(other.ivs) && other.ivs[k].Lo < iv.Hi {
			if other.ivs[k].Lo > lo {
				b.AddInterval(Interval{lo, other.ivs[k].Lo})
			}
			if other.ivs[k].Hi > lo {
				lo = other.ivs[k].Hi
			}
			k++
		}
		if lo < iv.Hi {
			b.AddInterval(Interval{lo, iv.Hi})
		}
	}
	return b.Build()
}

// Each calls fn for every index in the set in ascending order; it stops
// early if fn returns false.
func (s IndexSet) Each(fn func(k int64) bool) {
	for _, iv := range s.ivs {
		for k := iv.Lo; k < iv.Hi; k++ {
			if !fn(k) {
				return
			}
		}
	}
}

// EachInterval calls fn for every maximal interval of the set in
// ascending order; it stops early if fn returns false. Bulk consumers
// (payload packing, array copies) should prefer this over Each.
func (s IndexSet) EachInterval(fn func(iv Interval) bool) {
	for _, iv := range s.ivs {
		if !fn(iv) {
			return
		}
	}
}

// Slice returns all indices of the set in ascending order. Intended for
// tests and small sets.
func (s IndexSet) Slice() []int64 {
	out := make([]int64, 0, s.Len())
	s.Each(func(k int64) bool {
		out = append(out, k)
		return true
	})
	return out
}

func (s IndexSet) String() string {
	if s.Empty() {
		return "{}"
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, iv := range s.ivs {
		if i > 0 {
			sb.WriteByte(' ')
		}
		if iv.Len() == 1 {
			fmt.Fprintf(&sb, "%d", iv.Lo)
		} else {
			fmt.Fprintf(&sb, "%d..%d", iv.Lo, iv.Hi-1)
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// Builder accumulates indices and intervals into an IndexSet. Adding in
// ascending order is O(1) amortized per add; out-of-order adds are
// reconciled at Build time.
type Builder struct {
	ivs    []Interval
	sorted bool // true when ivs is known sorted/disjoint/canonical
	dirty  bool
}

func (b *Builder) grow(n int) {
	if cap(b.ivs)-len(b.ivs) < n {
		next := make([]Interval, len(b.ivs), len(b.ivs)+n)
		copy(next, b.ivs)
		b.ivs = next
	}
}

// Add inserts a single index.
func (b *Builder) Add(k int64) { b.AddInterval(Interval{k, k + 1}) }

// AddInterval inserts every index of iv.
func (b *Builder) AddInterval(iv Interval) {
	if iv.Empty() {
		return
	}
	if n := len(b.ivs); n > 0 {
		last := &b.ivs[n-1]
		switch {
		case iv.Lo <= last.Hi && iv.Lo >= last.Lo:
			// Extends or is contained in the last interval: merge in place.
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			return
		case iv.Lo < last.Lo:
			b.dirty = true
		}
	}
	b.ivs = append(b.ivs, iv)
}

// AddSet inserts every index of s.
func (b *Builder) AddSet(s IndexSet) {
	b.grow(len(s.ivs))
	for _, iv := range s.ivs {
		b.AddInterval(iv)
	}
}

// Build returns the accumulated set and resets the builder.
func (b *Builder) Build() IndexSet {
	ivs := b.ivs
	dirty := b.dirty
	b.ivs = nil
	b.dirty = false
	if len(ivs) == 0 {
		return IndexSet{}
	}
	if dirty {
		slices.SortFunc(ivs, func(a, b Interval) int {
			switch {
			case a.Lo < b.Lo:
				return -1
			case a.Lo > b.Lo:
				return 1
			default:
				return 0
			}
		})
	}
	// Coalesce adjacent/overlapping intervals.
	out := ivs[:1]
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
		} else {
			out = append(out, iv)
		}
	}
	return IndexSet{ivs: out}
}
