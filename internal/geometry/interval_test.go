package geometry

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIntervalBasics(t *testing.T) {
	iv := Interval{3, 7}
	if iv.Empty() {
		t.Fatal("interval [3,7) should not be empty")
	}
	if got := iv.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	for _, k := range []int64{3, 4, 6} {
		if !iv.Contains(k) {
			t.Errorf("Contains(%d) = false, want true", k)
		}
	}
	for _, k := range []int64{2, 7, 100} {
		if iv.Contains(k) {
			t.Errorf("Contains(%d) = true, want false", k)
		}
	}
	if !(Interval{5, 5}).Empty() {
		t.Error("interval [5,5) should be empty")
	}
	if (Interval{5, 3}).Len() != 0 {
		t.Error("inverted interval should have length 0")
	}
}

func TestIntervalIntersect(t *testing.T) {
	tests := []struct {
		a, b, want Interval
	}{
		{Interval{0, 10}, Interval{5, 15}, Interval{5, 10}},
		{Interval{0, 5}, Interval{5, 10}, Interval{5, 5}},
		{Interval{0, 10}, Interval{2, 4}, Interval{2, 4}},
		{Interval{0, 2}, Interval{8, 10}, Interval{8, 2}},
	}
	for _, tc := range tests {
		got := tc.a.Intersect(tc.b)
		if got.Empty() != tc.want.Empty() || (!got.Empty() && got != tc.want) {
			t.Errorf("%v ∩ %v = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		if tc.a.Overlaps(tc.b) != !tc.want.Empty() {
			t.Errorf("Overlaps(%v, %v) inconsistent with intersection", tc.a, tc.b)
		}
	}
}

func TestEmptySet(t *testing.T) {
	s := EmptySet()
	if !s.Empty() || s.Len() != 0 || s.NumIntervals() != 0 {
		t.Fatal("EmptySet is not empty")
	}
	if s.Contains(0) {
		t.Error("empty set contains 0")
	}
	if _, ok := s.Bounds(); ok {
		t.Error("empty set has bounds")
	}
	if s.String() != "{}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestRange(t *testing.T) {
	s := Range(2, 6)
	if got := s.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4", got)
	}
	if !reflect.DeepEqual(s.Slice(), []int64{2, 3, 4, 5}) {
		t.Errorf("Slice = %v", s.Slice())
	}
	if !Range(5, 5).Empty() || !Range(7, 2).Empty() {
		t.Error("degenerate ranges should be empty")
	}
}

func TestFromSliceCanonicalizes(t *testing.T) {
	s := FromSlice([]int64{5, 1, 2, 2, 3, 9, 0})
	if got, want := s.String(), "{0..3 5 9}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if s.NumIntervals() != 3 {
		t.Errorf("NumIntervals = %d, want 3", s.NumIntervals())
	}
	if s.Len() != 6 {
		t.Errorf("Len = %d, want 6", s.Len())
	}
}

func TestFromIntervalsCoalesces(t *testing.T) {
	s := FromIntervals(Interval{0, 3}, Interval{3, 5}, Interval{10, 12}, Interval{4, 6}, Interval{8, 8})
	if got, want := s.String(), "{0..5 10..11}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestContainsBinarySearch(t *testing.T) {
	s := FromIntervals(Interval{0, 10}, Interval{20, 30}, Interval{40, 50})
	for k := int64(-5); k < 60; k++ {
		want := (k >= 0 && k < 10) || (k >= 20 && k < 30) || (k >= 40 && k < 50)
		if got := s.Contains(k); got != want {
			t.Errorf("Contains(%d) = %v, want %v", k, got, want)
		}
	}
}

func TestSetAlgebraSmall(t *testing.T) {
	a := FromSlice([]int64{1, 2, 3, 7, 8})
	b := FromSlice([]int64{3, 4, 8, 9})
	if got, want := a.Union(b).String(), "{1..4 7..9}"; got != want {
		t.Errorf("Union = %q, want %q", got, want)
	}
	if got, want := a.Intersect(b).String(), "{3 8}"; got != want {
		t.Errorf("Intersect = %q, want %q", got, want)
	}
	if got, want := a.Subtract(b).String(), "{1..2 7}"; got != want {
		t.Errorf("Subtract = %q, want %q", got, want)
	}
	if got, want := b.Subtract(a).String(), "{4 9}"; got != want {
		t.Errorf("Subtract = %q, want %q", got, want)
	}
}

func TestSubsetDisjoint(t *testing.T) {
	a := FromIntervals(Interval{2, 5}, Interval{9, 11})
	sup := FromIntervals(Interval{0, 6}, Interval{8, 12})
	if !a.SubsetOf(sup) {
		t.Error("a should be a subset of sup")
	}
	if sup.SubsetOf(a) {
		t.Error("sup should not be a subset of a")
	}
	if !EmptySet().SubsetOf(a) {
		t.Error("empty set is a subset of everything")
	}
	if !a.SubsetOf(a) {
		t.Error("subset should be reflexive")
	}
	c := FromIntervals(Interval{6, 8}, Interval{20, 22})
	if !a.Disjoint(c) || !c.Disjoint(a) {
		t.Error("a and c should be disjoint")
	}
	if a.Disjoint(sup) {
		t.Error("a and sup should not be disjoint")
	}
	if !a.Disjoint(EmptySet()) {
		t.Error("everything is disjoint from the empty set")
	}
}

func TestEachEarlyStop(t *testing.T) {
	s := Range(0, 100)
	var seen []int64
	s.Each(func(k int64) bool {
		seen = append(seen, k)
		return k < 3
	})
	if !reflect.DeepEqual(seen, []int64{0, 1, 2, 3, 4}) {
		// Each stops after fn returns false: the element for which fn
		// returned false is the last one visited.
		if !reflect.DeepEqual(seen, []int64{0, 1, 2, 3}) {
			t.Errorf("seen = %v", seen)
		}
	}
}

func TestBuilderOutOfOrder(t *testing.T) {
	var b Builder
	b.AddInterval(Interval{10, 15})
	b.AddInterval(Interval{0, 5})
	b.Add(12)
	b.AddInterval(Interval{4, 11})
	s := b.Build()
	if got, want := s.String(), "{0..14}"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	// The builder must be reusable after Build.
	b.Add(1)
	if got := b.Build().String(); got != "{1}" {
		t.Errorf("reused builder = %q, want {1}", got)
	}
}

func TestBuilderAddSet(t *testing.T) {
	var b Builder
	b.AddSet(FromSlice([]int64{1, 2}))
	b.AddSet(FromSlice([]int64{0, 5}))
	if got, want := b.Build().String(), "{0..2 5}"; got != want {
		t.Errorf("got %q, want %q", got, want)
	}
}

// randomSet draws a random index set within [0, bound).
func randomSet(r *rand.Rand, bound int64) IndexSet {
	var b Builder
	n := r.Intn(8)
	for i := 0; i < n; i++ {
		lo := r.Int63n(bound)
		hi := lo + r.Int63n(bound/4+1)
		if hi > bound {
			hi = bound
		}
		b.AddInterval(Interval{lo, hi})
	}
	return b.Build()
}

// setGen adapts randomSet for testing/quick.
type quickSet struct{ S IndexSet }

func (quickSet) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(quickSet{randomSet(r, 200)})
}

func TestQuickSetAlgebraAgreesWithModel(t *testing.T) {
	// Model: map[int64]bool semantics for union/intersect/subtract.
	model := func(a, b IndexSet, op func(IndexSet, IndexSet) IndexSet, keep func(inA, inB bool) bool) bool {
		got := op(a, b)
		want := map[int64]bool{}
		for k := int64(0); k < 200; k++ {
			if keep(a.Contains(k), b.Contains(k)) {
				want[k] = true
			}
		}
		if got.Len() != int64(len(want)) {
			return false
		}
		ok := true
		got.Each(func(k int64) bool {
			if !want[k] {
				ok = false
			}
			return ok
		})
		return ok
	}
	f := func(qa, qb quickSet) bool {
		a, b := qa.S, qb.S
		return model(a, b, IndexSet.Union, func(x, y bool) bool { return x || y }) &&
			model(a, b, IndexSet.Intersect, func(x, y bool) bool { return x && y }) &&
			model(a, b, IndexSet.Subtract, func(x, y bool) bool { return x && !y })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSetLaws(t *testing.T) {
	f := func(qa, qb, qc quickSet) bool {
		a, b, c := qa.S, qb.S, qc.S
		// Commutativity and associativity of union/intersection.
		if !a.Union(b).Equal(b.Union(a)) {
			return false
		}
		if !a.Intersect(b).Equal(b.Intersect(a)) {
			return false
		}
		if !a.Union(b.Union(c)).Equal(a.Union(b).Union(c)) {
			return false
		}
		// De Morgan-ish: a - (b ∪ c) == (a-b) ∩ (a-c).
		if !a.Subtract(b.Union(c)).Equal(a.Subtract(b).Intersect(a.Subtract(c))) {
			return false
		}
		// Subset/disjoint coherence.
		if !a.Intersect(b).SubsetOf(a) || !a.Subtract(b).SubsetOf(a) {
			return false
		}
		if !a.Subtract(b).Disjoint(b) {
			return false
		}
		if !a.SubsetOf(a.Union(b)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubsetMatchesElementwise(t *testing.T) {
	f := func(qa, qb quickSet) bool {
		a, b := qa.S, qb.S
		want := true
		a.Each(func(k int64) bool {
			if !b.Contains(k) {
				want = false
			}
			return want
		})
		return a.SubsetOf(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDisjointMatchesIntersect(t *testing.T) {
	f := func(qa, qb quickSet) bool {
		a, b := qa.S, qb.S
		return a.Disjoint(b) == a.Intersect(b).Empty()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBoundsAndIntervals(t *testing.T) {
	s := FromIntervals(Interval{5, 8}, Interval{1, 2})
	b, ok := s.Bounds()
	if !ok || b != (Interval{1, 8}) {
		t.Errorf("Bounds = %v, %v", b, ok)
	}
	ivs := s.Intervals()
	if len(ivs) != 2 || ivs[0] != (Interval{1, 2}) || ivs[1] != (Interval{5, 8}) {
		t.Errorf("Intervals = %v", ivs)
	}
}
