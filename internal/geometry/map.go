package geometry

// IndexMap is a (possibly partial) function from indices to indices. It is
// the f in image(E, f, R) and preimage(R, f, E): pointer fields of regions
// (Particles[·].cell), affine neighbor functions (h(c) = c+1), and the
// identity map all implement it.
type IndexMap interface {
	// MapName identifies the function in diagnostics and printed DPL code.
	MapName() string
	// Apply returns f(k). The second result is false when k is outside the
	// domain of f (e.g. a null pointer field).
	Apply(k int64) (int64, bool)
}

// MultiMap is a function from indices to sets of indices; the F in the
// generalized IMAGE and PREIMAGE operators of §4 (e.g. the CSR Ranges
// region mapping each row to its run of nonzero slots).
type MultiMap interface {
	MapName() string
	// ApplyMulti returns F(k), the set of indices k maps to.
	ApplyMulti(k int64) IndexSet
}

// IdentityMap is the identity function on indices.
type IdentityMap struct{}

// MapName implements IndexMap.
func (IdentityMap) MapName() string { return "id" }

// Apply implements IndexMap.
func (IdentityMap) Apply(k int64) (int64, bool) { return k, true }

// AffineMap is the function f(k) = Stride*k + Offset, restricted to
// results within Domain when Domain is non-empty. It models stencil
// neighbor accesses such as h(c) = c + 1.
type AffineMap struct {
	Name           string
	Stride, Offset int64
	// Clamp restricts results: when non-nil, out-of-set results are
	// treated as out of domain rather than wrapped.
	Clamp *Interval
	// Modulo, when > 0, wraps the result into [0, Modulo) (periodic
	// boundary conditions).
	Modulo int64
}

// MapName implements IndexMap.
func (m AffineMap) MapName() string { return m.Name }

// Apply implements IndexMap.
func (m AffineMap) Apply(k int64) (int64, bool) {
	v := m.Stride*k + m.Offset
	if m.Modulo > 0 {
		v %= m.Modulo
		if v < 0 {
			v += m.Modulo
		}
	}
	if m.Clamp != nil && !m.Clamp.Contains(v) {
		return 0, false
	}
	return v, true
}

// TableMap is an IndexMap backed by an explicit table; entries < 0 are out
// of domain. It is primarily used by tests and by region pointer fields.
type TableMap struct {
	Name  string
	Table []int64
}

// MapName implements IndexMap.
func (m TableMap) MapName() string { return m.Name }

// Apply implements IndexMap.
func (m TableMap) Apply(k int64) (int64, bool) {
	if k < 0 || k >= int64(len(m.Table)) || m.Table[k] < 0 {
		return 0, false
	}
	return m.Table[k], true
}

// RangeTableMap is a MultiMap backed by per-index intervals, the shape of
// the CSR Ranges region in Fig. 10a.
type RangeTableMap struct {
	Name   string
	Ranges []Interval
}

// MapName implements MultiMap.
func (m RangeTableMap) MapName() string { return m.Name }

// ApplyMulti implements MultiMap.
func (m RangeTableMap) ApplyMulti(k int64) IndexSet {
	if k < 0 || k >= int64(len(m.Ranges)) {
		return IndexSet{}
	}
	iv := m.Ranges[k]
	return Range(iv.Lo, iv.Hi)
}

// Lift converts an IndexMap into a MultiMap via f↑(x) = {f(x)} (§4).
func Lift(f IndexMap) MultiMap { return liftedMap{f} }

type liftedMap struct{ f IndexMap }

func (l liftedMap) MapName() string { return l.f.MapName() }

func (l liftedMap) ApplyMulti(k int64) IndexSet {
	v, ok := l.f.Apply(k)
	if !ok {
		return IndexSet{}
	}
	return Range(v, v+1)
}

// Image computes { f(k) | k ∈ s, f(k) defined } ∩ codomain. A nil codomain
// check is expressed by passing the full region set. Identity, affine
// (stride 0/±1), and table maps take interval-native fast paths; other
// maps fall back to the per-element evaluation.
func Image(s IndexSet, f IndexMap, codomain IndexSet) IndexSet {
	switch m := f.(type) {
	case IdentityMap:
		return imageIdentity(s, codomain)
	case AffineMap:
		if affineFastPath(m) {
			return imageAffine(s, m, codomain)
		}
	case TableMap:
		return imageTable(s, m, codomain)
	}
	return imageGeneric(s, f, codomain)
}

func imageGeneric(s IndexSet, f IndexMap, codomain IndexSet) IndexSet {
	var b Builder
	s.Each(func(k int64) bool {
		if v, ok := f.Apply(k); ok && codomain.Contains(v) {
			b.Add(v)
		}
		return true
	})
	return b.Build()
}

// Preimage computes { k ∈ domain | f(k) ∈ target }, with the same
// fast-path dispatch as Image.
func Preimage(domain IndexSet, f IndexMap, target IndexSet) IndexSet {
	switch m := f.(type) {
	case IdentityMap:
		return domain.Intersect(target)
	case AffineMap:
		if affineFastPath(m) {
			return preimageAffine(domain, m, target)
		}
	case TableMap:
		return preimageTable(domain, m, target)
	}
	return preimageGeneric(domain, f, target)
}

func preimageGeneric(domain IndexSet, f IndexMap, target IndexSet) IndexSet {
	var b Builder
	domain.Each(func(k int64) bool {
		if v, ok := f.Apply(k); ok && target.Contains(v) {
			b.Add(k)
		}
		return true
	})
	return b.Build()
}

// ImageMulti computes ⋃{ F(k) | k ∈ s } ∩ codomain — the generalized IMAGE
// of §4. Range-table maps take a batched sort-and-merge path; lifted
// single-valued maps route through Image's fast paths.
func ImageMulti(s IndexSet, f MultiMap, codomain IndexSet) IndexSet {
	switch m := f.(type) {
	case RangeTableMap:
		return imageRangeTable(s, m, codomain)
	case liftedMap:
		return Image(s, m.f, codomain)
	}
	return imageMultiGeneric(s, f, codomain)
}

func imageMultiGeneric(s IndexSet, f MultiMap, codomain IndexSet) IndexSet {
	var b Builder
	s.Each(func(k int64) bool {
		b.AddSet(f.ApplyMulti(k).Intersect(codomain))
		return true
	})
	return b.Build()
}

// PreimageMulti computes { l ∈ domain | F(l) ∩ target ≠ ∅ } — the
// generalized PREIMAGE of §4: the domain indices whose image under F meets
// the target set. Range-table maps use a per-index binary-search overlap
// test; lifted single-valued maps route through Preimage's fast paths.
func PreimageMulti(domain IndexSet, f MultiMap, target IndexSet) IndexSet {
	switch m := f.(type) {
	case RangeTableMap:
		return preimageRangeTable(domain, m, target)
	case liftedMap:
		return Preimage(domain, m.f, target)
	}
	return preimageMultiGeneric(domain, f, target)
}

func preimageMultiGeneric(domain IndexSet, f MultiMap, target IndexSet) IndexSet {
	var b Builder
	domain.Each(func(l int64) bool {
		if !f.ApplyMulti(l).Disjoint(target) {
			b.Add(l)
		}
		return true
	})
	return b.Build()
}
