package geometry

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestIdentityMap(t *testing.T) {
	var id IdentityMap
	if id.MapName() != "id" {
		t.Errorf("MapName = %q", id.MapName())
	}
	v, ok := id.Apply(42)
	if !ok || v != 42 {
		t.Errorf("Apply(42) = %d, %v", v, ok)
	}
}

func TestAffineMap(t *testing.T) {
	h := AffineMap{Name: "h", Stride: 1, Offset: 1}
	v, ok := h.Apply(4)
	if !ok || v != 5 {
		t.Errorf("h(4) = %d, %v", v, ok)
	}

	clamped := AffineMap{Name: "h", Stride: 1, Offset: 1, Clamp: &Interval{0, 5}}
	if _, ok := clamped.Apply(4); ok {
		t.Error("clamped h(4)=5 should be out of domain")
	}
	if v, ok := clamped.Apply(3); !ok || v != 4 {
		t.Errorf("clamped h(3) = %d, %v", v, ok)
	}

	wrap := AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: 5}
	if v, ok := wrap.Apply(4); !ok || v != 0 {
		t.Errorf("wrap h(4) = %d, %v, want 0", v, ok)
	}
	neg := AffineMap{Name: "g", Stride: 1, Offset: -1, Modulo: 5}
	if v, ok := neg.Apply(0); !ok || v != 4 {
		t.Errorf("neg g(0) = %d, %v, want 4", v, ok)
	}
}

func TestTableMap(t *testing.T) {
	m := TableMap{Name: "cell", Table: []int64{2, 2, -1, 0}}
	if v, ok := m.Apply(0); !ok || v != 2 {
		t.Errorf("Apply(0) = %d, %v", v, ok)
	}
	if _, ok := m.Apply(2); ok {
		t.Error("negative table entry should be out of domain")
	}
	if _, ok := m.Apply(-1); ok {
		t.Error("negative index should be out of domain")
	}
	if _, ok := m.Apply(4); ok {
		t.Error("out-of-range index should be out of domain")
	}
}

func TestRangeTableMapAndLift(t *testing.T) {
	rt := RangeTableMap{Name: "Ranges", Ranges: []Interval{{0, 3}, {3, 3}, {3, 7}}}
	if got := rt.ApplyMulti(0).String(); got != "{0..2}" {
		t.Errorf("ApplyMulti(0) = %s", got)
	}
	if !rt.ApplyMulti(1).Empty() {
		t.Error("empty range should give empty set")
	}
	if !rt.ApplyMulti(9).Empty() {
		t.Error("out-of-range index should give empty set")
	}

	lifted := Lift(AffineMap{Name: "h", Stride: 1, Offset: 2})
	if lifted.MapName() != "h" {
		t.Errorf("lifted name = %q", lifted.MapName())
	}
	if got := lifted.ApplyMulti(3).String(); got != "{5}" {
		t.Errorf("lifted ApplyMulti(3) = %s", got)
	}
	clamped := Lift(AffineMap{Name: "h", Stride: 1, Offset: 2, Clamp: &Interval{0, 4}})
	if !clamped.ApplyMulti(3).Empty() {
		t.Error("lifted out-of-domain should give empty set")
	}
}

func TestImagePreimageSmall(t *testing.T) {
	// The worked example of Fig. 3: f(i) = (i+1)%5 on a 5-element region.
	f := AffineMap{Name: "f", Stride: 1, Offset: 1, Modulo: 5}
	all := Range(0, 5)
	p0 := FromSlice([]int64{0, 1, 2})
	p1 := FromSlice([]int64{3, 4})

	// Fig. 3a: image of P under f.
	if got := Image(p0, f, all).String(); got != "{1..3}" {
		t.Errorf("image(P[0]) = %s, want {1..3}", got)
	}
	if got := Image(p1, f, all).String(); got != "{0 4}" {
		t.Errorf("image(P[1]) = %s, want {0 4}", got)
	}

	// Fig. 3b: preimage of P' under f, with P'[0] = {0,1,2}, P'[1] = {3,4}.
	if got := Preimage(all, f, p0).String(); got != "{0..1 4}" {
		t.Errorf("preimage(P'[0]) = %s, want {0..1 4}", got)
	}
	if got := Preimage(all, f, p1).String(); got != "{2..3}" {
		t.Errorf("preimage(P'[1]) = %s, want {2..3}", got)
	}
}

func TestImageRespectsCodomain(t *testing.T) {
	f := AffineMap{Name: "f", Stride: 2, Offset: 0}
	got := Image(Range(0, 10), f, Range(0, 7))
	if gotS := got.String(); gotS != "{0 2 4 6}" {
		t.Errorf("Image = %s", gotS)
	}
}

func TestImageMultiPreimageMulti(t *testing.T) {
	rt := RangeTableMap{Name: "Ranges", Ranges: []Interval{{0, 2}, {2, 5}, {5, 6}}}
	mat := Range(0, 6)
	if got := ImageMulti(Range(0, 2), rt, mat).String(); got != "{0..4}" {
		t.Errorf("ImageMulti = %s", got)
	}
	// Rows whose ranges intersect {3,4,5}: rows 1 and 2.
	if got := PreimageMulti(Range(0, 3), rt, FromSlice([]int64{3, 4, 5})).String(); got != "{1..2}" {
		t.Errorf("PreimageMulti = %s", got)
	}
}

// quickTable generates a random total TableMap on [0, 200) for quick tests.
type quickTable struct{ M TableMap }

func (quickTable) Generate(r *rand.Rand, _ int) reflect.Value {
	tbl := make([]int64, 200)
	for i := range tbl {
		tbl[i] = r.Int63n(200)
	}
	return reflect.ValueOf(quickTable{TableMap{Name: "t", Table: tbl}})
}

func TestQuickImagePreimageGaloisConnection(t *testing.T) {
	// image(S) ⊆ T  ⇔  S ⊆ preimage(T) for total functions.
	domain := Range(0, 200)
	codomain := Range(0, 200)
	f := func(qs, qt quickSet, qm quickTable) bool {
		s := qs.S.Intersect(domain)
		tset := qt.S.Intersect(codomain)
		left := Image(s, qm.M, codomain).SubsetOf(tset)
		right := s.SubsetOf(Preimage(domain, qm.M, tset))
		return left == right
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickImageOfPreimageContained(t *testing.T) {
	domain := Range(0, 200)
	codomain := Range(0, 200)
	f := func(qt quickSet, qm quickTable) bool {
		tset := qt.S.Intersect(codomain)
		// image(preimage(T)) ⊆ T
		return Image(Preimage(domain, qm.M, tset), qm.M, codomain).SubsetOf(tset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPreimageOfImageContains(t *testing.T) {
	domain := Range(0, 200)
	codomain := Range(0, 200)
	f := func(qs quickSet, qm quickTable) bool {
		s := qs.S.Intersect(domain)
		// S ⊆ preimage(image(S)) for total functions.
		return s.SubsetOf(Preimage(domain, qm.M, Image(s, qm.M, codomain)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLiftAgreesWithImage(t *testing.T) {
	domain := Range(0, 200)
	codomain := Range(0, 200)
	f := func(qs quickSet, qm quickTable) bool {
		s := qs.S.Intersect(domain)
		a := Image(s, qm.M, codomain)
		b := ImageMulti(s, Lift(qm.M), codomain)
		return a.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
