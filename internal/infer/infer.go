// Package infer implements the constraint inference of Algorithm 1: it
// walks a normalized parallelizable loop, maintains an environment
// mapping index variables to image-expression lambdas, assigns a fresh
// partition symbol to every region access, and emits the partitioning
// constraints under which the loop can be executed on subregions.
//
// It also enforces the paper's syntactic parallelizability conditions:
// all writes centered; a region field with an uncentered reduction has no
// other read and a single reduction operator; a region field with an
// uncentered read has no write.
package infer

import (
	"fmt"
	"sort"
	"strconv"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/ir"
	"autopart/internal/lang"
)

// AccessKind classifies a region access.
type AccessKind int

// Access kinds.
const (
	// ReadAccess is a load.
	ReadAccess AccessKind = iota
	// WriteAccess is a plain store.
	WriteAccess
	// ReduceAccess is a reduction store.
	ReduceAccess
	// RangeAccess is the read of a range field by an inner loop (§4).
	RangeAccess
)

func (k AccessKind) String() string {
	switch k {
	case ReadAccess:
		return "read"
	case WriteAccess:
		return "write"
	case ReduceAccess:
		return "reduce"
	case RangeAccess:
		return "range"
	default:
		return fmt.Sprintf("AccessKind(%d)", int(k))
	}
}

// Access records one region access and the partition symbol assigned to
// it.
type Access struct {
	Sym      string
	Region   string
	Field    string
	Kind     AccessKind
	Op       lang.ReduceOp // for ReduceAccess
	Centered bool          // index is the loop variable or an alias
	// Lower is the inferred lower-bound expression for the partition
	// (the E in E ⊆ P).
	Lower dpl.Expr
	// Stmt is the IR statement performing the access.
	Stmt ir.Stmt
}

// Result is the inference output for one loop.
type Result struct {
	Loop *ir.Loop
	// Sys is the system of partitioning constraints.
	Sys *constraint.System
	// IterSym is the partition symbol of the iteration space (P_R).
	IterSym string
	// Accesses lists every region access with its symbol.
	Accesses []*Access
	// NeedsDisjointIter reports whether an uncentered reduction forced
	// DISJ(IterSym).
	NeedsDisjointIter bool
}

// SymbolOf finds the access record for an IR statement.
func (r *Result) SymbolOf(stmt ir.Stmt) (*Access, bool) {
	for _, a := range r.Accesses {
		if a.Stmt == stmt {
			return a, true
		}
	}
	return nil, false
}

// Symbols used by the generated constraints are drawn from a
// program-global counter so systems from different loops never collide.
type symGen struct{ n int }

func (g *symGen) fresh() string {
	g.n++
	return "P" + strconv.Itoa(g.n)
}

// env maps an index variable to a lambda producing the image expression
// of the variable's values inside an arbitrary region (Algorithm 1's
// environment).
type env map[string]func(regionName string) dpl.Expr

// Inferencer runs Algorithm 1 over the loops of one program with a
// shared symbol generator.
type Inferencer struct {
	prog *lang.Program
	gen  symGen
}

// New creates an Inferencer for a program.
func New(prog *lang.Program) *Inferencer { return &Inferencer{prog: prog} }

// SymCounter returns the number of partition symbols handed out so far.
// A loop's inference output depends only on its IR, the program header,
// and this counter's value when InferLoop starts — the basis of
// incremental reuse: a retained Result is valid for an unedited loop
// exactly when the counter at its position matches the retained base.
func (inf *Inferencer) SymCounter() int { return inf.gen.n }

// SetSymCounter forces the symbol counter, letting the incremental
// frontend skip clean loops while keeping the symbols of later loops
// identical to a cold compile's.
func (inf *Inferencer) SetSymCounter(n int) { inf.gen.n = n }

// InferProgram infers constraints for every loop.
func (inf *Inferencer) InferProgram(loops []*ir.Loop) ([]*Result, error) {
	out := make([]*Result, 0, len(loops))
	for i, l := range loops {
		res, err := inf.InferLoop(l)
		if err != nil {
			return nil, fmt.Errorf("loop %d (for %s in %s): %w", i, l.Var, l.Region, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// fieldAccessKey identifies a region field for the exclusivity checks.
type fieldAccessKey struct{ region, field string }

type fieldUse struct {
	reads  int
	writes int // plain writes AND reductions
	// plainWrites counts only op-free stores. A field with both a plain
	// write and a buffered reduction cannot parallelize: the sequential
	// semantics interleave them per iteration, while the parallel form
	// applies all writes at task end and folds the buffered
	// contributions afterwards.
	plainWrites       int
	uncenteredReads   int
	uncenteredReduces int
	// bufferedReduces counts reductions that are uncentered in the
	// rewriter's sense (not indexed by the loop variable), i.e. the ones
	// executed through a reduction buffer rather than in place.
	bufferedReduces int
	reduceOps       map[lang.ReduceOp]bool
	// pos is the source position of the first access to the field,
	// anchoring the exclusivity-check diagnostics.
	pos lang.Pos
}

// InferLoop runs Algorithm 1 on one normalized loop.
func (inf *Inferencer) InferLoop(l *ir.Loop) (*Result, error) {
	res := &Result{Loop: l, Sys: &constraint.System{}}
	iterSym := inf.gen.fresh()
	res.IterSym = iterSym

	// Line 7-8: the loop variable maps to the identity image of the
	// iteration-space partition; PART and COMP predicates are emitted.
	res.Sys.AddPred(constraint.Pred{Kind: constraint.Part, E: dpl.Var{Name: iterSym}, Region: l.Region})
	res.Sys.AddPred(constraint.Pred{Kind: constraint.Comp, E: dpl.Var{Name: iterSym}, Region: l.Region})

	e := env{}
	e[l.Var] = func(r string) dpl.Expr {
		if r == l.Region {
			// image(P_R, f_ID, R) = P_R.
			return dpl.Var{Name: iterSym}
		}
		return dpl.ImageExpr{Of: dpl.Var{Name: iterSym}, Func: "id", Region: r}
	}

	centered := map[string]bool{l.Var: true}
	uses := map[fieldAccessKey]*fieldUse{}

	walker := &loopWalker{inf: inf, res: res, uses: uses, storedIndexFields: map[fieldAccessKey]bool{}}
	if err := walker.walk(l.Stmts, e, centered); err != nil {
		return nil, err
	}

	// Exclusivity checks (parallelizability conditions). The uses map is
	// walked in source order (position, then region/field): with several
	// violating fields in one loop, map order would make the reported
	// diagnostic code vary between processes — differential fuzzing
	// flagged the instability.
	keys := make([]fieldAccessKey, 0, len(uses))
	for key := range uses {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := uses[keys[i]].pos, uses[keys[j]].pos
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if keys[i].region != keys[j].region {
			return keys[i].region < keys[j].region
		}
		return keys[i].field < keys[j].field
	})
	for _, key := range keys {
		u := uses[key]
		if u.uncenteredReduces > 0 {
			if u.reads > 0 {
				return nil, errorAt("I001", u.pos, "region %s.%s has an uncentered reduction and a read access; not parallelizable", key.region, key.field)
			}
			if len(u.reduceOps) > 1 {
				return nil, errorAt("I002", u.pos, "region %s.%s mixes reduction operators; not parallelizable", key.region, key.field)
			}
		}
		if u.uncenteredReads > 0 && u.writes > 0 {
			return nil, errorAt("I003", u.pos, "region %s.%s has an uncentered read and a write access; not parallelizable", key.region, key.field)
		}
		if u.bufferedReduces > 0 && u.plainWrites > 0 {
			// Caught by differential fuzzing (internal/gen): a loop with
			// a centered plain store and an uncentered reduction to the
			// same field passed every check above — the plain store is
			// not a read, and a single reduction operator is legal — yet
			// sequential execution interleaves store and contributions in
			// iteration order, while the parallel form applies stores at
			// task end and folds the reduction buffer after them.
			return nil, errorAt("I009", u.pos, "region %s.%s has both a plain write and an uncentered reduction; not parallelizable", key.region, key.field)
		}
	}
	return res, nil
}

type loopWalker struct {
	inf  *Inferencer
	res  *Result
	uses map[fieldAccessKey]*fieldUse
	// storedIndexFields tracks index fields written earlier in the loop:
	// a later load would observe values newer than the ones the DPL
	// partitions were computed from, so such loops are rejected. Writes
	// after loads (the Fig. 4 pattern) remain legal.
	storedIndexFields map[fieldAccessKey]bool
}

func (w *loopWalker) use(region, field string, pos lang.Pos) *fieldUse {
	key := fieldAccessKey{region, field}
	u, ok := w.uses[key]
	if !ok {
		u = &fieldUse{reduceOps: map[lang.ReduceOp]bool{}, pos: pos}
		w.uses[key] = u
	}
	return u
}

// access performs lines 11–13 of Algorithm 1: assign a fresh symbol to a
// region access and emit PART(P, S) ∧ E ⊆ P.
func (w *loopWalker) access(e env, idx, regionName, field string, kind AccessKind, op lang.ReduceOp, st ir.Stmt, centered map[string]bool) (*Access, error) {
	lookup, ok := e[idx]
	if !ok {
		return nil, errorAt("I004", st.Position(), "no environment entry for index %q (not derived from the loop variable?)", idx)
	}
	lower := lookup(regionName)
	sym := w.inf.gen.fresh()
	w.res.Sys.AddPred(constraint.Pred{Kind: constraint.Part, E: dpl.Var{Name: sym}, Region: regionName})
	w.res.Sys.AddSubset(constraint.Subset{L: lower, R: dpl.Var{Name: sym}})
	a := &Access{
		Sym: sym, Region: regionName, Field: field, Kind: kind, Op: op,
		Centered: centered[idx], Lower: lower, Stmt: st,
	}
	w.res.Accesses = append(w.res.Accesses, a)

	// Access tightening: once an uncentered access through x has a
	// partition symbol P, the values of x per task lie inside P's
	// subregions, so later derivations anchor at P. This is what makes
	// the constraint graph of Example 5 have the edge image(P2, h, Cells)
	// ⊆ P3 (from the access symbol) rather than a re-expanded image
	// chain. Centered variables keep their iteration-partition anchor.
	if !a.Centered {
		anchor := dpl.Var{Name: sym}
		e[idx] = func(r string) dpl.Expr {
			if r == regionName {
				return anchor
			}
			return dpl.ImageExpr{Of: anchor, Func: "id", Region: r}
		}
	}
	return a, nil
}

func (w *loopWalker) walk(stmts []ir.Stmt, e env, centered map[string]bool) error {
	for _, s := range stmts {
		if err := w.step(s, e, centered); err != nil {
			return err
		}
	}
	return nil
}

func (w *loopWalker) step(s ir.Stmt, e env, centered map[string]bool) error {
	iterVar := dpl.Var{Name: w.res.IterSym}
	switch st := s.(type) {
	case *ir.Load:
		a, err := w.access(e, st.Idx, st.Region, st.Field, ReadAccess, "", st, centered)
		if err != nil {
			return err
		}
		u := w.use(st.Region, st.Field, st.Pos)
		u.reads++
		if !a.Centered {
			u.uncenteredReads++
		}
		// Lines 14-15: index-field loads extend the environment.
		decl, _ := w.inf.prog.RegionByName(st.Region)
		field, _ := decl.FieldByName(st.Field)
		if field.Kind == lang.IndexKind {
			if w.storedIndexFields[fieldAccessKey{st.Region, st.Field}] {
				return errorAt("I005", st.Pos, "index field %s.%s is loaded after being stored in the same loop; partitions computed before the launch would be stale", st.Region, st.Field)
			}
			lower := a.Lower
			fn := fmt.Sprintf("%s[·].%s", st.Region, st.Field)
			e[st.Var] = func(r string) dpl.Expr {
				return dpl.ImageExpr{Of: lower, Func: fn, Region: r}
			}
			centered[st.Var] = false
		}
		return nil

	case *ir.Store:
		kind := WriteAccess
		if st.Op != lang.OpSet {
			kind = ReduceAccess
		}
		a, err := w.access(e, st.Idx, st.Region, st.Field, kind, st.Op, st, centered)
		if err != nil {
			return err
		}
		u := w.use(st.Region, st.Field, st.Pos)
		u.writes++
		if decl, ok := w.inf.prog.RegionByName(st.Region); ok {
			if field, ok := decl.FieldByName(st.Field); ok && field.Kind == lang.IndexKind {
				w.storedIndexFields[fieldAccessKey{st.Region, st.Field}] = true
			}
		}
		if kind == WriteAccess {
			if !a.Centered {
				return errorAt("I006", st.Pos, "uncentered write to %s[%s].%s; not parallelizable", st.Region, st.Idx, st.Field)
			}
			u.plainWrites++
			return nil
		}
		if !a.Centered {
			u.bufferedReduces++
		}
		u.reduceOps[st.Op] = true
		// Lines 16-17: an uncentered reduction (E ≠ P_R) forces a
		// disjoint iteration-space partition.
		if !dpl.Equal(a.Lower, iterVar) {
			u.uncenteredReduces++
			w.res.Sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: iterVar})
			w.res.NeedsDisjointIter = true
		}
		return nil

	case *ir.Apply:
		// Lines 18-19: y = f(x).
		decl, ok := w.inf.prog.FuncByName(st.Func)
		if !ok {
			return errorAt("I007", st.Pos, "unknown index function %q", st.Func)
		}
		argLookup, ok := e[st.Arg]
		if !ok {
			return errorAt("I004", st.Pos, "no environment entry for %q", st.Arg)
		}
		src := argLookup(decl.From)
		fn := st.Func
		e[st.Var] = func(r string) dpl.Expr {
			return dpl.ImageExpr{Of: src, Func: fn, Region: r}
		}
		centered[st.Var] = false
		return nil

	case *ir.Alias:
		// Lines 20-21: y = x.
		src, ok := e[st.Src]
		if !ok {
			return errorAt("I004", st.Pos, "no environment entry for %q", st.Src)
		}
		e[st.Var] = src
		centered[st.Var] = centered[st.Src]
		return nil

	case *ir.LetScalar:
		return nil

	case *ir.Inner:
		// §4: the inner iteration space is the IMAGE of the range field.
		a, err := w.access(e, st.Idx, st.RangeRegion, st.RangeField, RangeAccess, "", st, centered)
		if err != nil {
			return err
		}
		w.use(st.RangeRegion, st.RangeField, st.Pos).reads++
		lower := dpl.Var{Name: a.Sym}
		fn := fmt.Sprintf("%s[·].%s", st.RangeRegion, st.RangeField)
		e[st.Var] = func(r string) dpl.Expr {
			return dpl.ImageMultiExpr{Of: lower, Func: fn, Region: r}
		}
		centered[st.Var] = false
		return w.walk(st.Body, e, centered)

	case *ir.IfIn:
		// Guards have no partitioning effect of their own; constraints
		// from both branches are accumulated (conservative).
		if err := w.walk(st.Then, e, centered); err != nil {
			return err
		}
		return w.walk(st.Else, e, centered)

	case *ir.IfCmp:
		if err := w.walk(st.Then, e, centered); err != nil {
			return err
		}
		return w.walk(st.Else, e, centered)

	default:
		return errorAt("I008", s.Position(), "unknown IR statement %T", s)
	}
}

func errorAt(code string, pos lang.Pos, format string, args ...any) error {
	return lang.Errorf(code, lang.SpanAt(pos), format, args...)
}

// ExternalSystem converts extern partition declarations and assert
// statements into an assumption system (§3.3): PART for every extern
// partition plus the asserted predicates and subsets. It returns the
// extern symbol names alongside.
func ExternalSystem(prog *lang.Program) (*constraint.System, []string) {
	sys := &constraint.System{}
	var syms []string
	for _, ext := range prog.Externs {
		sys.AddPred(constraint.Pred{Kind: constraint.Part, E: dpl.Var{Name: ext.Name}, Region: ext.Region})
		syms = append(syms, ext.Name)
	}
	for _, a := range prog.Asserts {
		switch a.Kind {
		case lang.AssertSubset:
			sys.AddSubset(constraint.Subset{L: a.L, R: a.R})
		case lang.AssertDisjoint:
			sys.AddPred(constraint.Pred{Kind: constraint.Disj, E: a.L})
		case lang.AssertComplete:
			sys.AddPred(constraint.Pred{Kind: constraint.Comp, E: a.L, Region: a.Region})
		}
	}
	return sys, syms
}
