package infer

import (
	"strings"
	"testing"

	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/ir"
	"autopart/internal/lang"
)

func setup(t *testing.T, src string) (*lang.Program, []*ir.Loop) {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loops, err := ir.NormalizeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	return prog, loops
}

func inferAll(t *testing.T, src string) (*lang.Program, []*Result) {
	t.Helper()
	prog, loops := setup(t, src)
	results, err := New(prog).InferProgram(loops)
	if err != nil {
		t.Fatal(err)
	}
	return prog, results
}

func TestInferFigure6(t *testing.T) {
	// The example of Fig. 6: single-argument variant of the first loop.
	_, results := inferAll(t, `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar }
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel)
}
`)
	res := results[0]
	got := res.Sys.String()
	wantFragments := []string{
		"PART(P1, Particles)",
		"COMP(P1, Particles)",
		"PART(P2, Particles)",
		"P1 ⊆ P2",
		"PART(P3, Cells)",
		"image(P1, Particles[·].cell, Cells) ⊆ P3",
		"PART(P4, Particles)",
		"P1 ⊆ P4",
	}
	for _, f := range wantFragments {
		if !strings.Contains(got, f) {
			t.Errorf("system missing %q:\n%s", f, got)
		}
	}
	// No disjointness requirement: the only reduction is centered.
	if strings.Contains(got, "DISJ") {
		t.Errorf("unexpected DISJ predicate:\n%s", got)
	}
	if res.NeedsDisjointIter {
		t.Error("NeedsDisjointIter should be false")
	}
	if res.IterSym != "P1" {
		t.Errorf("IterSym = %s", res.IterSym)
	}
	if len(res.Accesses) != 3 {
		t.Fatalf("accesses = %d", len(res.Accesses))
	}
	// Access kinds and centering.
	if res.Accesses[0].Kind != ReadAccess || !res.Accesses[0].Centered {
		t.Errorf("access 0 = %+v", res.Accesses[0])
	}
	if res.Accesses[1].Kind != ReadAccess || res.Accesses[1].Centered {
		t.Errorf("access 1 = %+v", res.Accesses[1])
	}
	if res.Accesses[2].Kind != ReduceAccess || !res.Accesses[2].Centered {
		t.Errorf("access 2 = %+v", res.Accesses[2])
	}
}

func TestInferFigure7Disjointness(t *testing.T) {
	// Fig. 7: uncentered reduction S[g(i)] += R[i] forces DISJ(P1).
	_, results := inferAll(t, `
region R { v: scalar }
region S { w: scalar }
function g : R -> S
for i in R {
  S[g(i)].w += R[i].v
}
`)
	res := results[0]
	got := res.Sys.String()
	// Note: our normalizer numbers the RHS read (P2) before the store
	// (P3); the paper's Fig. 7 numbers them the other way around.
	for _, f := range []string{
		"PART(P1, R)", "COMP(P1, R)", "DISJ(P1)",
		"PART(P3, S)", "image(P1, g, S) ⊆ P3",
		"PART(P2, R)", "P1 ⊆ P2",
	} {
		if !strings.Contains(got, f) {
			t.Errorf("system missing %q:\n%s", f, got)
		}
	}
	if !res.NeedsDisjointIter {
		t.Error("NeedsDisjointIter should be true")
	}
}

func TestInferFigure1BothLoops(t *testing.T) {
	_, results := inferAll(t, `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells
for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`)
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	// Loop 1: symbols P1 (iter), P2 (cell read), P3 (Cells[c].vel),
	// P4 (Cells[h(c)].vel), P5 (centered reduce).
	got0 := results[0].Sys.String()
	for _, f := range []string{
		"image(P1, Particles[·].cell, Cells) ⊆ P3",
		"image(P3, h, Cells) ⊆ P4", // Example 5: anchored at the access symbol
	} {
		if !strings.Contains(got0, f) {
			t.Errorf("loop 1 system missing %q:\n%s", f, got0)
		}
	}
	// Loop 2 symbols continue globally (P6 iter, ...): uncentered read of
	// Cells[h(c)].acc yields image(P6, h, Cells).
	got1 := results[1].Sys.String()
	if results[1].IterSym != "P6" {
		t.Errorf("loop 2 IterSym = %s", results[1].IterSym)
	}
	if !strings.Contains(got1, "image(P6, h, Cells) ⊆ P8") {
		t.Errorf("loop 2 system:\n%s", got1)
	}
	// Centered reduction on the iteration region: no DISJ.
	if strings.Contains(got1, "DISJ") {
		t.Errorf("loop 2 should not require DISJ:\n%s", got1)
	}
}

func TestInferSpMV(t *testing.T) {
	// Fig. 10: the inner loop's iteration space is data dependent.
	_, results := inferAll(t, `
region Y { val: scalar }
region Ranges : Y { span: range(Mat) }
region Mat { val: scalar, ind: index(X) }
region X { val: scalar }
for i in Y {
  for k in Ranges[i].span {
    Y[i].val += Mat[k].val * X[Mat[k].ind].val
  }
}
`)
	res := results[0]
	got := res.Sys.String()
	for _, f := range []string{
		"PART(P1, Y)",
		"COMP(P1, Y)",
		"PART(P2, Ranges)",
		"image(P1, id, Ranges) ⊆ P2",
		"PART(P3, Mat)",
		"IMAGE(P2, Ranges[·].span, Mat) ⊆ P3",
		"PART(P5, X)",
		"image(P3, Mat[·].ind, X) ⊆ P5", // anchored at the Mat access symbol
	} {
		if !strings.Contains(got, f) {
			t.Errorf("system missing %q:\n%s", f, got)
		}
	}
	// The range access is recorded.
	var sawRange bool
	for _, a := range res.Accesses {
		if a.Kind == RangeAccess && a.Region == "Ranges" {
			sawRange = true
		}
	}
	if !sawRange {
		t.Error("no RangeAccess recorded")
	}
}

func TestInferMultipleUncenteredReductions(t *testing.T) {
	// Fig. 11a: two uncentered reductions with different functions.
	_, results := inferAll(t, `
region R { v: scalar }
region S { w: scalar }
function f : R -> S
function g : R -> S
for i in R {
  S[f(i)].w += R[i].v
  S[g(i)].w += R[i].v
}
`)
	res := results[0]
	got := res.Sys.String()
	if !strings.Contains(got, "DISJ(P1)") {
		t.Errorf("system missing DISJ(P1):\n%s", got)
	}
	if !strings.Contains(got, "image(P1, f, S) ⊆ P3") ||
		!strings.Contains(got, "image(P1, g, S) ⊆ P5") {
		t.Errorf("system:\n%s", got)
	}
}

func TestInferRejectsNonParallelizable(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"uncentered write",
			`region R { p: index(R), v: scalar }
for i in R {
  q = R[i].p
  R[q].v = 1
}`,
			"uncentered write",
		},
		{
			"uncentered reduction with read",
			`region R { p: index(R), v: scalar }
for i in R {
  q = R[i].p
  x = R[q].v
  R[q].v += x
}`,
			"uncentered reduction and a read",
		},
		{
			"mixed reduction operators",
			`region R { v: scalar }
region S { w: scalar }
function f : R -> S
for i in R {
  S[f(i)].w += R[i].v
  S[f(i)].w *= R[i].v
}`,
			"mixes reduction operators",
		},
		{
			"uncentered read with write",
			`region R { p: index(R), v: scalar }
for i in R {
  q = R[i].p
  x = R[q].v
  R[i].v = x
}`,
			"uncentered read and a write",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, loops := setup(t, tc.src)
			_, err := New(prog).InferProgram(loops)
			if err == nil {
				t.Fatal("expected inference to reject the loop")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestInferCenteredReductionOnOtherRegionNeedsDisj(t *testing.T) {
	// A centered reduction into a different region of the same space has
	// E = image(P1, id, S) ≠ P1, so Algorithm 1 line 16 adds DISJ(P1).
	_, results := inferAll(t, `
region R { v: scalar }
region S : R { w: scalar }
for i in R {
  S[i].w += R[i].v
}
`)
	if !results[0].NeedsDisjointIter {
		t.Error("reduction with E ≠ P_R must force DISJ per Algorithm 1")
	}
}

func TestInferGuardedAccesses(t *testing.T) {
	// Relaxed-form loops (Fig. 11b) still infer constraints from guarded
	// bodies.
	_, results := inferAll(t, `
region R { v: scalar }
region S { w: scalar }
function f : R -> S
for i in R {
  if (f(i) in S) {
    S[f(i)].w += R[i].v
  }
}
`)
	got := results[0].Sys.String()
	if !strings.Contains(got, "image(P1, f, S) ⊆ P3") {
		t.Errorf("guarded reduction constraint missing:\n%s", got)
	}
}

func TestSymbolOf(t *testing.T) {
	_, results := inferAll(t, `
region R { v: scalar }
for i in R {
  R[i].v += 1
}
`)
	res := results[0]
	store := res.Loop.Stmts[0]
	a, ok := res.SymbolOf(store)
	if !ok || a.Sym != "P2" {
		t.Errorf("SymbolOf = %+v, %v", a, ok)
	}
	if _, ok := res.SymbolOf(nil); ok {
		t.Error("SymbolOf(nil) should fail")
	}
}

func TestExternalSystem(t *testing.T) {
	prog, _ := setup(t, `
region Particles { cell: index(Cells) }
region Cells { v: scalar }
extern partition pParticles of Particles
extern partition pCells of Cells
assert image(pParticles, Particles.cell, Cells) <= pCells
assert disjoint(pCells)
assert complete(pCells, Cells)
`)
	sys, syms := ExternalSystem(prog)
	if len(syms) != 2 || syms[0] != "pParticles" || syms[1] != "pCells" {
		t.Errorf("syms = %v", syms)
	}
	got := sys.String()
	for _, f := range []string{
		"PART(pParticles, Particles)",
		"PART(pCells, Cells)",
		"image(pParticles, Particles[·].cell, Cells) ⊆ pCells",
		"DISJ(pCells)",
		"COMP(pCells, Cells)",
	} {
		if !strings.Contains(got, f) {
			t.Errorf("external system missing %q:\n%s", f, got)
		}
	}
	// The external system is internally consistent as assumptions.
	p := constraint.NewProver(sys)
	if !p.ProveDisj(dpl.Var{Name: "pCells"}) {
		t.Error("assumption DISJ(pCells) should hold")
	}
}

func TestAccessKindString(t *testing.T) {
	if ReadAccess.String() != "read" || WriteAccess.String() != "write" ||
		ReduceAccess.String() != "reduce" || RangeAccess.String() != "range" {
		t.Error("kind strings wrong")
	}
	if !strings.Contains(AccessKind(9).String(), "9") {
		t.Error("unknown kind")
	}
}
