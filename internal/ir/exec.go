package ir

import (
	"fmt"
	"hash/fnv"

	"autopart/internal/geometry"
	"autopart/internal/region"
)

// Machine binds the runtime entities a loop executes against: concrete
// regions, the declared index functions, and any extern partitions
// referenced by guards.
type Machine struct {
	Regions    map[string]*region.Region
	Funcs      map[string]geometry.IndexMap
	Partitions map[string]*region.Partition
}

// NewMachine creates an empty machine.
func NewMachine() *Machine {
	return &Machine{
		Regions:    map[string]*region.Region{},
		Funcs:      map[string]geometry.IndexMap{},
		Partitions: map[string]*region.Partition{},
	}
}

// AddRegion registers a region under its name.
func (m *Machine) AddRegion(r *region.Region) *Machine {
	m.Regions[r.Name()] = r
	return m
}

// AddFunc registers an index function.
func (m *Machine) AddFunc(name string, f geometry.IndexMap) *Machine {
	m.Funcs[name] = f
	return m
}

// AddPartition registers an extern partition for guard membership tests.
func (m *Machine) AddPartition(name string, p *region.Partition) *Machine {
	m.Partitions[name] = p
	return m
}

// Value is a runtime value: a scalar or an index. An index may be
// invalid (out of a partial function's domain); using an invalid index in
// an access is an error, but guards may test it.
type Value struct {
	IsIndex bool
	Valid   bool
	F       float64
	I       int64
}

// ScalarValue makes a scalar value.
func ScalarValue(f float64) Value { return Value{F: f, Valid: true} }

// IndexValue makes a valid index value.
func IndexValue(i int64) Value { return Value{IsIndex: true, Valid: true, I: i} }

// InvalidIndex is the result of applying a partial index function outside
// its domain.
func InvalidIndex() Value { return Value{IsIndex: true} }

// AsScalar converts for use in arithmetic: indices coerce to their
// numeric value.
func (v Value) AsScalar() float64 {
	if v.IsIndex {
		return float64(v.I)
	}
	return v.F
}

// Env is a variable environment for one loop iteration.
type Env map[string]Value

// RunSequential executes the loop with sequential semantics: iterations
// in ascending index order over the loop region's full index space. This
// is the semantic reference that parallel executions must reproduce.
func (m *Machine) RunSequential(l *Loop) error {
	r, ok := m.Regions[l.Region]
	if !ok {
		return fmt.Errorf("ir: unknown loop region %q", l.Region)
	}
	var runErr error
	r.Space().Each(func(k int64) bool {
		env := Env{l.Var: IndexValue(k)}
		if err := m.RunBody(l.Stmts, env); err != nil {
			runErr = fmt.Errorf("iteration %d: %w", k, err)
			return false
		}
		return true
	})
	return runErr
}

// RunIteration executes one iteration of the loop at index k (used by
// parallel executors that drive iterations from subregions).
func (m *Machine) RunIteration(l *Loop, k int64) error {
	env := Env{l.Var: IndexValue(k)}
	return m.RunBody(l.Stmts, env)
}

// RunBody executes a statement list under an environment.
func (m *Machine) RunBody(stmts []Stmt, env Env) error {
	for _, s := range stmts {
		if err := m.step(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (m *Machine) step(s Stmt, env Env) error {
	switch st := s.(type) {
	case *Load:
		k, err := m.indexOf(env, st.Idx)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		r := m.Regions[st.Region]
		if r == nil {
			return fmt.Errorf("%s: unknown region", st)
		}
		if k < 0 || k >= r.Size() {
			return fmt.Errorf("%s: index %d out of range [0,%d)", st, k, r.Size())
		}
		kind, _ := r.FieldKindOf(st.Field)
		switch kind {
		case region.ScalarField:
			env[st.Var] = ScalarValue(r.Scalar(st.Field)[k])
		case region.IndexField:
			v := r.Index(st.Field)[k]
			if v < 0 {
				env[st.Var] = InvalidIndex()
			} else {
				env[st.Var] = IndexValue(v)
			}
		default:
			return fmt.Errorf("%s: cannot load range field", st)
		}
		return nil

	case *Store:
		k, err := m.indexOf(env, st.Idx)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		r := m.Regions[st.Region]
		if r == nil {
			return fmt.Errorf("%s: unknown region", st)
		}
		if k < 0 || k >= r.Size() {
			return fmt.Errorf("%s: index %d out of range [0,%d)", st, k, r.Size())
		}
		rhs, err := m.scalar(st.Rhs, env)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		kind, _ := r.FieldKindOf(st.Field)
		if kind == region.IndexField {
			// Stores to pointer fields rebind the pointer (Fig. 4 line 5).
			r.Index(st.Field)[k] = int64(rhs)
			return nil
		}
		slot := &r.Scalar(st.Field)[k]
		*slot = ApplyReduce(string(st.Op), *slot, rhs)
		return nil

	case *LetScalar:
		v, err := m.scalar(st.Rhs, env)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		env[st.Var] = ScalarValue(v)
		return nil

	case *Apply:
		f, ok := m.Funcs[st.Func]
		if !ok {
			return fmt.Errorf("%s: unknown index function", st)
		}
		arg, err := m.indexOf(env, st.Arg)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		if v, ok := f.Apply(arg); ok {
			env[st.Var] = IndexValue(v)
		} else {
			env[st.Var] = InvalidIndex()
		}
		return nil

	case *Alias:
		v, ok := env[st.Src]
		if !ok {
			return fmt.Errorf("%s: unbound source", st)
		}
		env[st.Var] = v
		return nil

	case *Inner:
		k, err := m.indexOf(env, st.Idx)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		r := m.Regions[st.RangeRegion]
		if r == nil {
			return fmt.Errorf("%s: unknown region", st)
		}
		iv := r.Ranges(st.RangeField)[k]
		for j := iv.Lo; j < iv.Hi; j++ {
			env[st.Var] = IndexValue(j)
			if err := m.RunBody(st.Body, env); err != nil {
				return err
			}
		}
		return nil

	case *IfIn:
		v, ok := env[st.Idx]
		if !ok {
			return fmt.Errorf("%s: unbound index", st)
		}
		in := false
		if v.Valid {
			if r, isRegion := m.Regions[st.Space]; isRegion {
				in = v.I >= 0 && v.I < r.Size()
			} else if p, isPart := m.Partitions[st.Space]; isPart {
				in = p.UnionAll().Contains(v.I)
			} else {
				return fmt.Errorf("%s: unknown space", st)
			}
		}
		if in {
			return m.RunBody(st.Then, env)
		}
		return m.RunBody(st.Else, env)

	case *IfCmp:
		l, err := m.scalar(st.L, env)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		r, err := m.scalar(st.R, env)
		if err != nil {
			return fmt.Errorf("%s: %w", st, err)
		}
		var cond bool
		switch st.Op {
		case "==":
			cond = l == r
		case "!=":
			cond = l != r
		default:
			return fmt.Errorf("%s: unknown comparison", st)
		}
		if cond {
			return m.RunBody(st.Then, env)
		}
		return m.RunBody(st.Else, env)

	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

func (m *Machine) indexOf(env Env, name string) (int64, error) {
	v, ok := env[name]
	if !ok {
		return 0, fmt.Errorf("unbound variable %q", name)
	}
	if !v.IsIndex {
		return 0, fmt.Errorf("variable %q is not an index", name)
	}
	if !v.Valid {
		return 0, fmt.Errorf("variable %q holds an invalid index (partial function applied outside its domain)", name)
	}
	return v.I, nil
}

func (m *Machine) scalar(e ScalarExpr, env Env) (float64, error) {
	switch x := e.(type) {
	case Const:
		return x.V, nil
	case VarExpr:
		v, ok := env[x.Name]
		if !ok {
			return 0, fmt.Errorf("unbound variable %q", x.Name)
		}
		return v.AsScalar(), nil
	case CallExpr:
		args := make([]float64, len(x.Args))
		for i, a := range x.Args {
			v, err := m.scalar(a, env)
			if err != nil {
				return 0, err
			}
			args[i] = v
		}
		return OpaqueFn(x.Func, args), nil
	case BinExpr:
		l, err := m.scalar(x.L, env)
		if err != nil {
			return 0, err
		}
		r, err := m.scalar(x.R, env)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case "+":
			return l + r, nil
		case "-":
			return l - r, nil
		case "*":
			return l * r, nil
		case "/":
			if r == 0 {
				return 0, nil
			}
			return l / r, nil
		default:
			return 0, fmt.Errorf("unknown operator %q", x.Op)
		}
	default:
		return 0, fmt.Errorf("unknown scalar expression %T", e)
	}
}

// ApplyReduce applies an assignment operator: "=" overwrites, the others
// fold. Reduction operators are associative and commutative so parallel
// executions may apply contributions in any grouping; to keep
// differential tests exact we stick to values that are exactly
// representable.
func ApplyReduce(op string, old, contrib float64) float64 {
	switch op {
	case "=":
		return contrib
	case "+=":
		return old + contrib
	case "*=":
		return old * contrib
	case "max=":
		if contrib > old {
			return contrib
		}
		return old
	case "min=":
		if contrib < old {
			return contrib
		}
		return old
	default:
		panic(fmt.Sprintf("unknown reduction operator %q", op))
	}
}

// ReduceIdentity returns the identity element of a reduction operator
// (used to initialize reduction buffers).
func ReduceIdentity(op string) float64 {
	switch op {
	case "+=":
		return 0
	case "*=":
		return 1
	case "max=":
		return negInf
	case "min=":
		return posInf
	default:
		panic(fmt.Sprintf("reduction operator %q has no identity", op))
	}
}

var (
	posInf = inf(1)
	negInf = inf(-1)
)

func inf(sign int) float64 {
	// Avoid importing math for two constants.
	v := float64(sign)
	for i := 0; i < 2000; i++ {
		v *= 2
	}
	return v
}

// OpaqueFn is the deterministic semantics of opaque scalar functions
// (the f and g of Fig. 1a). The value is an integer-valued mixing of the
// function name and arguments so that reductions stay exact under
// reassociation in parallel executions.
func OpaqueFn(name string, args []float64) float64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	seed := int64(h.Sum32() % 97)
	acc := seed
	for i, a := range args {
		// Truncate arguments to integers and mix; stays well within the
		// exact integer range of float64 for test-sized data.
		acc = acc*3 + int64(a)*(int64(i)+2)
		acc %= 1000003
		if acc < 0 {
			acc += 1000003
		}
	}
	return float64(acc % 4093)
}
