package ir

import (
	"math/rand"
	"strings"
	"testing"

	"autopart/internal/geometry"
	"autopart/internal/region"
)

func TestRunSequentialSimpleStore(t *testing.T) {
	loops := mustNormalize(t, `
region R { v: scalar }
for i in R {
  R[i].v = 2 + 3
}
`)
	r := region.New("R", 4)
	r.AddScalarField("v")
	m := NewMachine().AddRegion(r)
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	for i, v := range r.Scalar("v") {
		if v != 5 {
			t.Errorf("v[%d] = %v", i, v)
		}
	}
}

func TestRunSequentialGatherWithFunction(t *testing.T) {
	// R[i].v += R[h(i)].w with h(i) = i+1 mod 8.
	loops := mustNormalize(t, `
region R { v: scalar, w: scalar }
function h : R -> R
for i in R {
  R[i].v += R[h(i)].w
}
`)
	r := region.New("R", 8)
	r.AddScalarField("v")
	r.AddScalarField("w")
	for i := range r.Scalar("w") {
		r.Scalar("w")[i] = float64(i)
	}
	m := NewMachine().AddRegion(r)
	m.AddFunc("h", geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Modulo: 8})
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 8; i++ {
		want := float64((i + 1) % 8)
		if got := r.Scalar("v")[i]; got != want {
			t.Errorf("v[%d] = %v, want %v", i, got, want)
		}
	}
}

func TestRunSequentialIndirection(t *testing.T) {
	// Scatter-reduce through a pointer field: S[R[i].ptr].acc += R[i].v.
	loops := mustNormalize(t, `
region R { ptr: index(S), v: scalar }
region S { acc: scalar }
for i in R {
  p = R[i].ptr
  S[p].acc += R[i].v
}
`)
	r := region.New("R", 6)
	r.AddIndexField("ptr")
	r.AddScalarField("v")
	s := region.New("S", 3)
	s.AddScalarField("acc")
	copy(r.Index("ptr"), []int64{0, 0, 1, 1, 2, 2})
	for i := range r.Scalar("v") {
		r.Scalar("v")[i] = float64(i + 1)
	}
	m := NewMachine().AddRegion(r).AddRegion(s)
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 7, 11} // 1+2, 3+4, 5+6
	for i, w := range want {
		if got := s.Scalar("acc")[i]; got != w {
			t.Errorf("acc[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestRunSequentialInnerLoopSpMV(t *testing.T) {
	loops := mustNormalize(t, `
region Y { val: scalar }
region Ranges : Y { span: range(Mat) }
region Mat { val: scalar, ind: index(X) }
region X { val: scalar }
for i in Y {
  for k in Ranges[i].span {
    Y[i].val += Mat[k].val * X[Mat[k].ind].val
  }
}
`)
	// 2x2 identity-ish matrix in CSR: row 0 -> entries 0..1, row 1 -> 2.
	y := region.New("Y", 2)
	y.AddScalarField("val")
	ranges := region.New("Ranges", 2)
	ranges.AddRangeField("span")
	ranges.Ranges("span")[0] = geometry.Interval{Lo: 0, Hi: 2}
	ranges.Ranges("span")[1] = geometry.Interval{Lo: 2, Hi: 3}
	mat := region.New("Mat", 3)
	mat.AddScalarField("val")
	mat.AddIndexField("ind")
	copy(mat.Scalar("val"), []float64{2, 3, 4})
	copy(mat.Index("ind"), []int64{0, 1, 1})
	x := region.New("X", 2)
	x.AddScalarField("val")
	copy(x.Scalar("val"), []float64{10, 100})

	m := NewMachine().AddRegion(y).AddRegion(ranges).AddRegion(mat).AddRegion(x)
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	// y0 = 2*10 + 3*100 = 320; y1 = 4*100 = 400.
	if y.Scalar("val")[0] != 320 || y.Scalar("val")[1] != 400 {
		t.Errorf("y = %v", y.Scalar("val"))
	}
}

func TestRunSequentialGuards(t *testing.T) {
	// Clamped neighbor: h is partial at the boundary.
	loops := mustNormalize(t, `
region R { v: scalar, w: scalar }
function h : R -> R
for i in R {
  if (h(i) in R) {
    R[i].v += R[h(i)].w
  } else {
    R[i].v += 100
  }
}
`)
	clamp := geometry.Interval{Lo: 0, Hi: 4}
	r := region.New("R", 4)
	r.AddScalarField("v")
	r.AddScalarField("w")
	for i := range r.Scalar("w") {
		r.Scalar("w")[i] = float64(i + 1)
	}
	m := NewMachine().AddRegion(r)
	m.AddFunc("h", geometry.AffineMap{Name: "h", Stride: 1, Offset: 1, Clamp: &clamp})
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, 4, 100}
	for i, w := range want {
		if got := r.Scalar("v")[i]; got != w {
			t.Errorf("v[%d] = %v, want %v", i, got, w)
		}
	}
}

func TestRunSequentialIfCmpAndPointerStore(t *testing.T) {
	loops := mustNormalize(t, `
region P { cell: index(C), moved: scalar }
region C { v: scalar }
function locate : P -> C
for i in P {
  new_cell = locate(i)
  c = P[i].cell
  if (c != new_cell) {
    P[i].cell = new_cell
    P[i].moved = 1
  }
}
`)
	p := region.New("P", 4)
	p.AddIndexField("cell")
	p.AddScalarField("moved")
	c := region.New("C", 4)
	c.AddScalarField("v")
	copy(p.Index("cell"), []int64{0, 1, 0, 3})
	m := NewMachine().AddRegion(p).AddRegion(c)
	// locate(i) = i: particles 0,1,3 already home; particle 2 moves.
	m.AddFunc("locate", geometry.IdentityMap{})
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	if got := p.Index("cell"); got[2] != 2 {
		t.Errorf("cell = %v", got)
	}
	if got := p.Scalar("moved"); got[0] != 0 || got[2] != 1 {
		t.Errorf("moved = %v", got)
	}
}

func TestRunSequentialReductionOps(t *testing.T) {
	loops := mustNormalize(t, `
region R { a: scalar, b: scalar, mx: scalar, mn: scalar }
for i in R {
  R[i].a += 2
  R[i].b *= 3
  R[i].mx max= 5
  R[i].mn min= 1
}
`)
	r := region.New("R", 2)
	for _, f := range []string{"a", "b", "mx", "mn"} {
		r.AddScalarField(f)
	}
	r.Scalar("a")[0] = 1
	r.Scalar("b")[0] = 2
	r.Scalar("mx")[0] = 9
	r.Scalar("mn")[0] = 0.5
	m := NewMachine().AddRegion(r)
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	if r.Scalar("a")[0] != 3 || r.Scalar("b")[0] != 6 || r.Scalar("mx")[0] != 9 || r.Scalar("mn")[0] != 0.5 {
		t.Errorf("a=%v b=%v mx=%v mn=%v",
			r.Scalar("a")[0], r.Scalar("b")[0], r.Scalar("mx")[0], r.Scalar("mn")[0])
	}
	if r.Scalar("mx")[1] != 5 || r.Scalar("mn")[1] != 0 {
		t.Errorf("mx[1]=%v mn[1]=%v", r.Scalar("mx")[1], r.Scalar("mn")[1])
	}
}

func TestRunErrors(t *testing.T) {
	loops := mustNormalize(t, `
region R { v: scalar, p: index(R) }
function h : R -> R
for i in R {
  q = R[i].p
  R[q].v = 1
}
`)
	r := region.New("R", 2)
	r.AddScalarField("v")
	r.AddIndexField("p") // all null
	m := NewMachine().AddRegion(r)
	m.AddFunc("h", geometry.IdentityMap{})
	err := m.RunSequential(loops[0])
	if err == nil || !strings.Contains(err.Error(), "invalid index") {
		t.Errorf("null pointer deref: err = %v", err)
	}

	// Unknown loop region.
	bad := &Loop{Var: "i", Region: "Nope"}
	if err := m.RunSequential(bad); err == nil {
		t.Error("unknown region should fail")
	}
}

func TestApplyReduceAndIdentity(t *testing.T) {
	if ApplyReduce("=", 1, 2) != 2 ||
		ApplyReduce("+=", 1, 2) != 3 ||
		ApplyReduce("*=", 2, 3) != 6 ||
		ApplyReduce("max=", 1, 2) != 2 ||
		ApplyReduce("max=", 3, 2) != 3 ||
		ApplyReduce("min=", 1, 2) != 1 ||
		ApplyReduce("min=", 3, 2) != 2 {
		t.Error("ApplyReduce wrong")
	}
	if ReduceIdentity("+=") != 0 || ReduceIdentity("*=") != 1 {
		t.Error("identities wrong")
	}
	if !(ReduceIdentity("max=") < -1e300) || !(ReduceIdentity("min=") > 1e300) {
		t.Error("max/min identities should be infinite")
	}
	mustPanic := func(fn func()) {
		defer func() { _ = recover() }()
		fn()
		t.Error("expected panic")
	}
	mustPanic(func() { ApplyReduce("?", 0, 0) })
	mustPanic(func() { ReduceIdentity("=") })
}

func TestOpaqueFnDeterministicAndIntegral(t *testing.T) {
	a := OpaqueFn("f", []float64{1, 2, 3})
	b := OpaqueFn("f", []float64{1, 2, 3})
	if a != b {
		t.Error("OpaqueFn must be deterministic")
	}
	if OpaqueFn("f", []float64{1}) == OpaqueFn("g", []float64{1}) {
		t.Error("different function names should (generically) differ")
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		args := []float64{float64(rng.Intn(1000)), float64(rng.Intn(1000))}
		v := OpaqueFn("f", args)
		if v != float64(int64(v)) || v < 0 || v >= 4093 {
			t.Fatalf("OpaqueFn out of integral range: %v", v)
		}
	}
}

func TestValueHelpers(t *testing.T) {
	s := ScalarValue(2.5)
	if s.IsIndex || !s.Valid || s.AsScalar() != 2.5 {
		t.Error("ScalarValue wrong")
	}
	i := IndexValue(7)
	if !i.IsIndex || !i.Valid || i.AsScalar() != 7 {
		t.Error("IndexValue wrong")
	}
	bad := InvalidIndex()
	if !bad.IsIndex || bad.Valid {
		t.Error("InvalidIndex wrong")
	}
}

func TestRunIterationSingle(t *testing.T) {
	loops := mustNormalize(t, `
region R { v: scalar }
for i in R {
  R[i].v = 7
}
`)
	r := region.New("R", 4)
	r.AddScalarField("v")
	m := NewMachine().AddRegion(r)
	if err := m.RunIteration(loops[0], 2); err != nil {
		t.Fatal(err)
	}
	if r.Scalar("v")[2] != 7 || r.Scalar("v")[1] != 0 {
		t.Errorf("v = %v", r.Scalar("v"))
	}
}

func TestGuardWithExternPartition(t *testing.T) {
	loops := mustNormalize(t, `
region R { v: scalar }
extern partition pR of R
for i in R {
  if (i in pR) {
    R[i].v = 1
  }
}
`)
	r := region.New("R", 6)
	r.AddScalarField("v")
	p := region.NewPartition("pR", r, []geometry.IndexSet{geometry.Range(0, 2), geometry.Range(4, 6)})
	m := NewMachine().AddRegion(r).AddPartition("pR", p)
	if err := m.RunSequential(loops[0]); err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0, 0, 1, 1}
	for i, w := range want {
		if got := r.Scalar("v")[i]; got != w {
			t.Errorf("v[%d] = %v, want %v", i, got, w)
		}
	}
}
