// Package ir defines the normalized loop intermediate representation the
// constraint inference algorithm works on (Algorithm 1's statement forms):
//
//	y = S[x].f    (Load)
//	S[x].f = e    (Store with OpSet)
//	S[x].f op= e  (Store with a reduction operator)
//	y = f(x)      (Apply: declared index function)
//	y = x         (Alias)
//	for k in S[x].f { ... }   (Inner: data-dependent inner loop, §4)
//	if (x in S) / if (e ? e)  (IfIn / IfCmp: guards)
//
// Index computations are flattened into single-assignment temporaries so
// that every region access is indexed by a plain variable; scalar
// computation remains as opaque expression trees. The package also
// provides a sequential interpreter used as the semantic reference for
// differential tests against parallel execution.
package ir

import (
	"fmt"
	"strings"

	"autopart/internal/lang"
)

// Loop is a normalized top-level loop: `for Var in Region { Stmts }`.
type Loop struct {
	Var    string
	Region string
	Stmts  []Stmt
}

func (l *Loop) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "for %s in %s {\n", l.Var, l.Region)
	writeStmts(&sb, l.Stmts, "  ")
	sb.WriteString("}")
	return sb.String()
}

func writeStmts(sb *strings.Builder, stmts []Stmt, indent string) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *Inner:
			fmt.Fprintf(sb, "%sfor %s in %s[%s].%s {\n", indent, st.Var, st.RangeRegion, st.Idx, st.RangeField)
			writeStmts(sb, st.Body, indent+"  ")
			fmt.Fprintf(sb, "%s}\n", indent)
		case *IfIn:
			fmt.Fprintf(sb, "%sif (%s in %s) {\n", indent, st.Idx, st.Space)
			writeStmts(sb, st.Then, indent+"  ")
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				writeStmts(sb, st.Else, indent+"  ")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		case *IfCmp:
			fmt.Fprintf(sb, "%sif (%s %s %s) {\n", indent, st.L, st.Op, st.R)
			writeStmts(sb, st.Then, indent+"  ")
			if len(st.Else) > 0 {
				fmt.Fprintf(sb, "%s} else {\n", indent)
				writeStmts(sb, st.Else, indent+"  ")
			}
			fmt.Fprintf(sb, "%s}\n", indent)
		default:
			fmt.Fprintf(sb, "%s%s\n", indent, s)
		}
	}
}

// Stmt is a normalized statement. Position returns the source position
// of the originating DSL statement or expression (the zero Pos when the
// statement was synthesized without one).
type Stmt interface {
	fmt.Stringer
	stmtNode()
	Position() lang.Pos
}

// Load is `Var = Region[Idx].Field`. Kind records the field's declared
// kind: loads of index fields bind index-valued variables.
type Load struct {
	Var    string
	Region string
	Field  string
	Idx    string
	Pos    lang.Pos
}

// Store is `Region[Idx].Field Op Rhs` — a plain store when Op is OpSet,
// otherwise a reduction.
type Store struct {
	Region string
	Field  string
	Idx    string
	Op     lang.ReduceOp
	Rhs    ScalarExpr
	Pos    lang.Pos
}

// Apply is `Var = Func(Arg)` for a declared index function.
type Apply struct {
	Var  string
	Func string
	Arg  string
	Pos  lang.Pos
}

// Alias is `Var = Src` between index variables.
type Alias struct {
	Var string
	Src string
	Pos lang.Pos
}

// Inner is a data-dependent inner loop `for Var in RangeRegion[Idx].RangeField`.
type Inner struct {
	Var         string
	RangeRegion string
	RangeField  string
	Idx         string
	Body        []Stmt
	Pos         lang.Pos
}

// IfIn is a membership guard `if (Idx in Space)`; Space names a region or
// an extern partition.
type IfIn struct {
	Idx   string
	Space string
	Then  []Stmt
	Else  []Stmt
	Pos   lang.Pos
}

// IfCmp is a scalar comparison guard.
type IfCmp struct {
	Op   string
	L, R ScalarExpr
	Then []Stmt
	Else []Stmt
	Pos  lang.Pos
}

func (*Load) stmtNode() {}

// Position implements Stmt.
func (s *Load) Position() lang.Pos { return s.Pos }

// Position implements Stmt.
func (s *Store) Position() lang.Pos { return s.Pos }

// Position implements Stmt.
func (s *Apply) Position() lang.Pos { return s.Pos }

// Position implements Stmt.
func (s *Alias) Position() lang.Pos { return s.Pos }

// Position implements Stmt.
func (s *Inner) Position() lang.Pos { return s.Pos }

// Position implements Stmt.
func (s *IfIn) Position() lang.Pos { return s.Pos }

// Position implements Stmt.
func (s *IfCmp) Position() lang.Pos { return s.Pos }
func (*Store) stmtNode()            {}
func (*Apply) stmtNode()            {}
func (*Alias) stmtNode()            {}
func (*Inner) stmtNode()            {}
func (*IfIn) stmtNode()             {}
func (*IfCmp) stmtNode()            {}

func (s *Load) String() string {
	return fmt.Sprintf("%s = %s[%s].%s", s.Var, s.Region, s.Idx, s.Field)
}
func (s *Store) String() string {
	return fmt.Sprintf("%s[%s].%s %s %s", s.Region, s.Idx, s.Field, s.Op, s.Rhs)
}
func (s *Apply) String() string { return fmt.Sprintf("%s = %s(%s)", s.Var, s.Func, s.Arg) }
func (s *Alias) String() string { return fmt.Sprintf("%s = %s", s.Var, s.Src) }
func (s *Inner) String() string {
	return fmt.Sprintf("for %s in %s[%s].%s {...}", s.Var, s.RangeRegion, s.Idx, s.RangeField)
}
func (s *IfIn) String() string  { return fmt.Sprintf("if (%s in %s) {...}", s.Idx, s.Space) }
func (s *IfCmp) String() string { return fmt.Sprintf("if (%s %s %s) {...}", s.L, s.Op, s.R) }

// ScalarExpr is an opaque scalar computation over already-bound variables.
type ScalarExpr interface {
	fmt.Stringer
	scalarNode()
}

// Const is a numeric literal.
type Const struct {
	V float64
}

// VarExpr reads a variable (scalar- or index-valued).
type VarExpr struct {
	Name string
}

// CallExpr is an opaque scalar function application.
type CallExpr struct {
	Func string
	Args []ScalarExpr
}

// BinExpr is scalar arithmetic.
type BinExpr struct {
	Op   string
	L, R ScalarExpr
}

func (Const) scalarNode()    {}
func (VarExpr) scalarNode()  {}
func (CallExpr) scalarNode() {}
func (BinExpr) scalarNode()  {}

func (e Const) String() string   { return fmt.Sprintf("%g", e.V) }
func (e VarExpr) String() string { return e.Name }
func (e CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Func, strings.Join(args, ", "))
}
func (e BinExpr) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }
