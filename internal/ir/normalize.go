package ir

import (
	"fmt"
	"strconv"

	"autopart/internal/lang"
)

// VarKind classifies a normalized variable.
type VarKind int

// Variable kinds.
const (
	// ScalarVar holds a float64 value.
	ScalarVar VarKind = iota
	// IndexVar holds an index into a specific region.
	IndexVar
)

// VarInfo describes a variable bound in a normalized loop.
type VarInfo struct {
	Kind VarKind
	// Region is the indexed region for IndexVar.
	Region string
}

// LetScalar is `Var = Rhs` for a scalar-valued right-hand side. It has no
// partitioning effect but is required to execute loops.
type LetScalar struct {
	Var string
	Rhs ScalarExpr
	Pos lang.Pos
}

func (*LetScalar) stmtNode() {}

// Position implements Stmt.
func (s *LetScalar) Position() lang.Pos { return s.Pos }

func (s *LetScalar) String() string { return fmt.Sprintf("%s = %s", s.Var, s.Rhs) }

// Normalizer converts parsed loops into normalized IR, performing the
// kind checking that decides which expressions are index computations.
type Normalizer struct {
	prog *lang.Program
	vars map[string]VarInfo
	tmp  int
}

// NormalizeProgram normalizes every top-level loop of a parsed program.
func NormalizeProgram(prog *lang.Program) ([]*Loop, error) {
	out := make([]*Loop, 0, len(prog.Loops))
	for i, l := range prog.Loops {
		nl, err := NormalizeLoop(prog, l)
		if err != nil {
			return nil, fmt.Errorf("loop %d (for %s in %s): %w", i, l.Var, l.Region, err)
		}
		out = append(out, nl)
	}
	return out, nil
}

// NormalizeLoop normalizes a single loop.
func NormalizeLoop(prog *lang.Program, l *lang.Loop) (*Loop, error) {
	n := &Normalizer{prog: prog, vars: map[string]VarInfo{}}
	n.vars[l.Var] = VarInfo{Kind: IndexVar, Region: l.Region}
	var stmts []Stmt
	if err := n.block(l.Body, &stmts); err != nil {
		return nil, err
	}
	return &Loop{Var: l.Var, Region: l.Region, Stmts: stmts}, nil
}

// Vars returns variable information recorded during the last
// normalization (primarily for tests).
func (n *Normalizer) Vars() map[string]VarInfo { return n.vars }

func (n *Normalizer) fresh() string {
	n.tmp++
	// '%' cannot appear in source identifiers, so temporaries never
	// collide with user variables.
	return "%t" + strconv.Itoa(n.tmp)
}

func (n *Normalizer) block(stmts []lang.Stmt, out *[]Stmt) error {
	for _, s := range stmts {
		if err := n.stmt(s, out); err != nil {
			return err
		}
	}
	return nil
}

func (n *Normalizer) stmt(s lang.Stmt, out *[]Stmt) error {
	switch st := s.(type) {
	case *lang.VarAssign:
		return n.varAssign(st, out)

	case *lang.FieldAssign:
		idx, err := n.indexExpr(st.Access.Index, out)
		if err != nil {
			return err
		}
		if err := n.checkIndexInto(idx, st.Access.Region, st.Access.Pos); err != nil {
			return err
		}
		decl, _ := n.prog.RegionByName(st.Access.Region)
		field, _ := decl.FieldByName(st.Access.Field)
		if field.Kind == lang.RangeKind {
			return errorAt("N001", st.Pos, "cannot assign to range field %s", st.Access)
		}
		rhs, err := n.scalarExpr(st.Rhs, out)
		if err != nil {
			return err
		}
		*out = append(*out, &Store{
			Region: st.Access.Region, Field: st.Access.Field,
			Idx: idx, Op: st.Op, Rhs: rhs, Pos: st.Pos,
		})
		return nil

	case *lang.InnerFor:
		idx, err := n.indexExpr(st.Range.Index, out)
		if err != nil {
			return err
		}
		if err := n.checkIndexInto(idx, st.Range.Region, st.Pos); err != nil {
			return err
		}
		decl, _ := n.prog.RegionByName(st.Range.Region)
		field, ok := decl.FieldByName(st.Range.Field)
		if !ok || field.Kind != lang.RangeKind {
			return errorAt("N002", st.Pos, "inner loop range %s is not a range field", st.Range)
		}
		n.vars[st.Var] = VarInfo{Kind: IndexVar, Region: field.Target}
		inner := &Inner{
			Var: st.Var, RangeRegion: st.Range.Region,
			RangeField: st.Range.Field, Idx: idx, Pos: st.Pos,
		}
		if err := n.block(st.Body, &inner.Body); err != nil {
			return err
		}
		*out = append(*out, inner)
		return nil

	case *lang.If:
		switch cond := st.Cond.(type) {
		case *lang.InTest:
			idx, err := n.indexExpr(cond.Index, out)
			if err != nil {
				return err
			}
			guard := &IfIn{Idx: idx, Space: cond.Space, Pos: st.Pos}
			if err := n.block(st.Then, &guard.Then); err != nil {
				return err
			}
			if err := n.block(st.Else, &guard.Else); err != nil {
				return err
			}
			*out = append(*out, guard)
			return nil
		case *lang.Compare:
			l, err := n.scalarExpr(cond.L, out)
			if err != nil {
				return err
			}
			r, err := n.scalarExpr(cond.R, out)
			if err != nil {
				return err
			}
			guard := &IfCmp{Op: cond.Op, L: l, R: r, Pos: st.Pos}
			if err := n.block(st.Then, &guard.Then); err != nil {
				return err
			}
			if err := n.block(st.Else, &guard.Else); err != nil {
				return err
			}
			*out = append(*out, guard)
			return nil
		default:
			return errorAt("N003", st.Pos, "unsupported condition")
		}

	default:
		return errorAt("N004", s.StmtPos(), "unsupported statement %T", s)
	}
}

func (n *Normalizer) varAssign(st *lang.VarAssign, out *[]Stmt) error {
	// Try to interpret the right-hand side as an index computation first;
	// if it is, the variable becomes an index variable usable in region
	// subscripts.
	if info, ok := n.tryIndexRhs(st, out); ok {
		n.vars[st.Name] = info
		return nil
	}
	rhs, err := n.scalarExpr(st.Rhs, out)
	if err != nil {
		return err
	}
	n.vars[st.Name] = VarInfo{Kind: ScalarVar}
	*out = append(*out, &LetScalar{Var: st.Name, Rhs: rhs, Pos: st.Pos})
	return nil
}

// tryIndexRhs recognizes the three index-producing right-hand sides of
// Algorithm 1 (y = x, y = f(x), y = S[x].f for an index field) and emits
// the corresponding normalized statement directly into the target
// variable.
func (n *Normalizer) tryIndexRhs(st *lang.VarAssign, out *[]Stmt) (VarInfo, bool) {
	switch rhs := st.Rhs.(type) {
	case *lang.VarRef:
		if info, ok := n.vars[rhs.Name]; ok && info.Kind == IndexVar {
			*out = append(*out, &Alias{Var: st.Name, Src: rhs.Name, Pos: st.Pos})
			return info, true
		}
	case *lang.Call:
		if decl, ok := n.prog.FuncByName(rhs.Func); ok && len(rhs.Args) == 1 {
			arg, err := n.indexExpr(rhs.Args[0], out)
			if err != nil {
				return VarInfo{}, false
			}
			if !n.prog.SameSpace(n.vars[arg].Region, decl.From) {
				return VarInfo{}, false
			}
			*out = append(*out, &Apply{Var: st.Name, Func: rhs.Func, Arg: arg, Pos: st.Pos})
			return VarInfo{Kind: IndexVar, Region: decl.To}, true
		}
	case *lang.FieldAccess:
		decl, ok := n.prog.RegionByName(rhs.Region)
		if !ok {
			return VarInfo{}, false
		}
		field, ok := decl.FieldByName(rhs.Field)
		if !ok || field.Kind != lang.IndexKind {
			return VarInfo{}, false
		}
		idx, err := n.indexExpr(rhs.Index, out)
		if err != nil {
			return VarInfo{}, false
		}
		if err := n.checkIndexInto(idx, rhs.Region, rhs.Pos); err != nil {
			return VarInfo{}, false
		}
		*out = append(*out, &Load{Var: st.Name, Region: rhs.Region, Field: rhs.Field, Idx: idx, Pos: st.Pos})
		return VarInfo{Kind: IndexVar, Region: field.Target}, true
	}
	return VarInfo{}, false
}

// indexExpr normalizes an expression used as a region subscript to a
// variable name, emitting Load/Apply temporaries as needed.
func (n *Normalizer) indexExpr(e lang.Expr, out *[]Stmt) (string, error) {
	switch x := e.(type) {
	case *lang.VarRef:
		info, ok := n.vars[x.Name]
		if !ok {
			return "", errorAt("N005", x.Pos, "use of undefined variable %q", x.Name)
		}
		if info.Kind != IndexVar {
			return "", errorAt("N006", x.Pos, "variable %q is not an index", x.Name)
		}
		return x.Name, nil

	case *lang.Call:
		decl, ok := n.prog.FuncByName(x.Func)
		if !ok {
			return "", errorAt("N007", x.Pos, "call to undeclared index function %q in index position", x.Func)
		}
		if len(x.Args) != 1 {
			return "", errorAt("N008", x.Pos, "index function %q takes exactly one argument", x.Func)
		}
		arg, err := n.indexExpr(x.Args[0], out)
		if err != nil {
			return "", err
		}
		if got := n.vars[arg].Region; !n.prog.SameSpace(got, decl.From) {
			return "", errorAt("N009", x.Pos, "index function %q expects an index into %s, got %s", x.Func, decl.From, got)
		}
		t := n.fresh()
		n.vars[t] = VarInfo{Kind: IndexVar, Region: decl.To}
		*out = append(*out, &Apply{Var: t, Func: x.Func, Arg: arg, Pos: x.Pos})
		return t, nil

	case *lang.FieldAccess:
		decl, ok := n.prog.RegionByName(x.Region)
		if !ok {
			return "", errorAt("N010", x.Pos, "unknown region %q", x.Region)
		}
		field, ok := decl.FieldByName(x.Field)
		if !ok {
			return "", errorAt("N011", x.Pos, "region %q has no field %q", x.Region, x.Field)
		}
		if field.Kind != lang.IndexKind {
			return "", errorAt("N012", x.Pos, "field %s.%s is not an index field", x.Region, x.Field)
		}
		idx, err := n.indexExpr(x.Index, out)
		if err != nil {
			return "", err
		}
		if err := n.checkIndexInto(idx, x.Region, x.Pos); err != nil {
			return "", err
		}
		t := n.fresh()
		n.vars[t] = VarInfo{Kind: IndexVar, Region: field.Target}
		*out = append(*out, &Load{Var: t, Region: x.Region, Field: x.Field, Idx: idx, Pos: x.Pos})
		return t, nil

	default:
		return "", errorAt("N013", e.ExprPos(), "expression %s cannot be used as an index", e)
	}
}

// scalarExpr normalizes a scalar expression, hoisting region loads and
// index-function applications into temporaries.
func (n *Normalizer) scalarExpr(e lang.Expr, out *[]Stmt) (ScalarExpr, error) {
	switch x := e.(type) {
	case *lang.NumLit:
		v, err := strconv.ParseFloat(x.Text, 64)
		if err != nil {
			return nil, errorAt("N014", x.Pos, "malformed number %q", x.Text)
		}
		return Const{V: v}, nil

	case *lang.VarRef:
		if _, ok := n.vars[x.Name]; !ok {
			return nil, errorAt("N005", x.Pos, "use of undefined variable %q", x.Name)
		}
		return VarExpr{Name: x.Name}, nil

	case *lang.FieldAccess:
		decl, ok := n.prog.RegionByName(x.Region)
		if !ok {
			return nil, errorAt("N010", x.Pos, "unknown region %q", x.Region)
		}
		field, ok := decl.FieldByName(x.Field)
		if !ok {
			return nil, errorAt("N011", x.Pos, "region %q has no field %q", x.Region, x.Field)
		}
		if field.Kind == lang.RangeKind {
			return nil, errorAt("N015", x.Pos, "range field %s cannot be read as a scalar", x)
		}
		idx, err := n.indexExpr(x.Index, out)
		if err != nil {
			return nil, err
		}
		if err := n.checkIndexInto(idx, x.Region, x.Pos); err != nil {
			return nil, err
		}
		t := n.fresh()
		kind := ScalarVar
		if field.Kind == lang.IndexKind {
			kind = IndexVar
		}
		n.vars[t] = VarInfo{Kind: kind, Region: field.Target}
		*out = append(*out, &Load{Var: t, Region: x.Region, Field: x.Field, Idx: idx, Pos: x.Pos})
		return VarExpr{Name: t}, nil

	case *lang.Call:
		if decl, ok := n.prog.FuncByName(x.Func); ok {
			// Index function in a scalar position: hoist and read the
			// resulting index as a value.
			if len(x.Args) != 1 {
				return nil, errorAt("N008", x.Pos, "index function %q takes exactly one argument", x.Func)
			}
			arg, err := n.indexExpr(x.Args[0], out)
			if err != nil {
				return nil, err
			}
			if got := n.vars[arg].Region; !n.prog.SameSpace(got, decl.From) {
				return nil, errorAt("N009", x.Pos, "index function %q expects an index into %s, got %s", x.Func, decl.From, got)
			}
			t := n.fresh()
			n.vars[t] = VarInfo{Kind: IndexVar, Region: decl.To}
			*out = append(*out, &Apply{Var: t, Func: x.Func, Arg: arg, Pos: x.Pos})
			return VarExpr{Name: t}, nil
		}
		args := make([]ScalarExpr, len(x.Args))
		for i, a := range x.Args {
			na, err := n.scalarExpr(a, out)
			if err != nil {
				return nil, err
			}
			args[i] = na
		}
		return CallExpr{Func: x.Func, Args: args}, nil

	case *lang.Binary:
		l, err := n.scalarExpr(x.L, out)
		if err != nil {
			return nil, err
		}
		r, err := n.scalarExpr(x.R, out)
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: x.Op, L: l, R: r}, nil

	default:
		return nil, errorAt("N016", e.ExprPos(), "unsupported expression %T", e)
	}
}

// checkIndexInto verifies that variable idx indexes region reg.
func (n *Normalizer) checkIndexInto(idx, reg string, pos lang.Pos) error {
	info := n.vars[idx]
	if !n.prog.SameSpace(info.Region, reg) {
		return errorAt("N017", pos, "index %q points into region %s, not %s", idx, info.Region, reg)
	}
	return nil
}

func errorAt(code string, pos lang.Pos, format string, args ...any) error {
	return lang.Errorf(code, lang.SpanAt(pos), format, args...)
}
