package ir

import (
	"strings"
	"testing"

	"autopart/internal/lang"
)

func mustParse(t *testing.T, src string) *lang.Program {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func mustNormalize(t *testing.T, src string) []*Loop {
	t.Helper()
	prog := mustParse(t, src)
	loops, err := NormalizeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	return loops
}

const figure1Src = `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells

for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`

func TestNormalizeFigure1(t *testing.T) {
	loops := mustNormalize(t, figure1Src)
	if len(loops) != 2 {
		t.Fatalf("%d loops", len(loops))
	}
	got := loops[0].String()
	want := `for p in Particles {
  c = Particles[p].cell
  %t1 = Cells[c].vel
  %t2 = h(c)
  %t3 = Cells[%t2].vel
  Particles[p].pos += f(%t1, %t3)
}`
	if got != want {
		t.Errorf("loop 0:\n%s\nwant:\n%s", got, want)
	}

	got1 := loops[1].String()
	want1 := `for c in Cells {
  %t1 = Cells[c].acc
  %t2 = h(c)
  %t3 = Cells[%t2].acc
  Cells[c].vel += g(%t1, %t3)
}`
	if got1 != want1 {
		t.Errorf("loop 1:\n%s\nwant:\n%s", got1, want1)
	}
}

func TestNormalizeSpMV(t *testing.T) {
	src := `
region Y { val: scalar }
region Ranges : Y { span: range(Mat) }
region Mat { val: scalar, ind: index(X) }
region X { val: scalar }

for i in Y {
  for k in Ranges[i].span {
    Y[i].val += Mat[k].val * X[Mat[k].ind].val
  }
}
`
	loops := mustNormalize(t, src)
	got := loops[0].String()
	want := `for i in Y {
  for k in Ranges[i].span {
    %t1 = Mat[k].val
    %t2 = Mat[k].ind
    %t3 = X[%t2].val
    Y[i].val += (%t1 * %t3)
  }
}`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
	// Ranges shares Y's index space, so the inner loop's range is indexed
	// by the outer loop variable directly.
	inner := loops[0].Stmts[0].(*Inner)
	if inner.Idx != "i" {
		t.Errorf("inner Idx = %q", inner.Idx)
	}
}

func TestNormalizeSharedSpaceAcrossRegions(t *testing.T) {
	src := `
region A { v: scalar }
region B : A { w: scalar }
for i in A {
  B[i].w = A[i].v
}
`
	loops := mustNormalize(t, src)
	st, ok := loops[0].Stmts[1].(*Store)
	if !ok || st.Region != "B" || st.Idx != "i" {
		t.Fatalf("stmt = %#v", loops[0].Stmts[1])
	}
}

func TestSpaceSharingValidation(t *testing.T) {
	if _, err := lang.Parse("region A : B { v: scalar }"); err == nil ||
		!strings.Contains(err.Error(), "unknown region") {
		t.Errorf("unknown space target: err = %v", err)
	}
	if _, err := lang.Parse("region A : B { v: scalar } region B : A { w: scalar }"); err == nil ||
		!strings.Contains(err.Error(), "cycle") {
		t.Errorf("space cycle: err = %v", err)
	}
	prog := mustParse(t, "region A { v: scalar } region B : A { w: scalar } region C : B { x: scalar }")
	if prog.SpaceOf("C") != "A" || prog.SpaceOf("B") != "A" || prog.SpaceOf("A") != "A" {
		t.Error("SpaceOf should resolve transitively")
	}
	if !prog.SameSpace("C", "B") || prog.SameSpace("C", "D") {
		t.Error("SameSpace wrong")
	}
}

func TestNormalizeAliasAndApplyChains(t *testing.T) {
	src := `
region R { next: index(R), v: scalar }
function f : R -> R

for i in R {
  j = i
  k = f(j)
  l = R[k].next
  R[i].v += R[l].v
}
`
	loops := mustNormalize(t, src)
	got := loops[0].String()
	want := `for i in R {
  j = i
  k = f(j)
  l = R[k].next
  %t1 = R[l].v
  R[i].v += %t1
}`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestNormalizeGuards(t *testing.T) {
	src := `
region R { v: scalar }
region S { v: scalar }
function f : R -> S

for i in R {
  if (f(i) in S) {
    S[f(i)].v += R[i].v
  }
  if (R[i].v != 0) {
    R[i].v = 1
  } else {
    R[i].v = 2
  }
}
`
	loops := mustNormalize(t, src)
	s := loops[0].String()
	for _, frag := range []string{
		"%t1 = f(i)",
		"if (%t1 in S)",
		"%t2 = f(i)",
		"if (%t4 != 0)",
		"} else {",
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("normalized loop missing %q:\n%s", frag, s)
		}
	}
	// The IfCmp condition hoists the load before the guard.
	var sawCmp bool
	for _, st := range loops[0].Stmts {
		if _, ok := st.(*IfCmp); ok {
			sawCmp = true
		}
	}
	if !sawCmp {
		t.Error("expected an IfCmp statement")
	}
}

func TestNormalizeScalarLet(t *testing.T) {
	src := `
region R { v: scalar }
for i in R {
  x = R[i].v * 2
  R[i].v = x + 1
}
`
	loops := mustNormalize(t, src)
	got := loops[0].String()
	want := `for i in R {
  %t1 = R[i].v
  x = (%t1 * 2)
  R[i].v = (x + 1)
}`
	if got != want {
		t.Errorf("got:\n%s\nwant:\n%s", got, want)
	}
}

func TestNormalizeIndexFieldStore(t *testing.T) {
	// Fig. 4 line 5: pointer fields can be reassigned.
	src := `
region Particles { cell: index(Cells) }
region Cells { v: scalar }
function locate : Particles -> Cells

for p in Particles {
  new_cell = locate(p)
  Particles[p].cell = new_cell
}
`
	loops := mustNormalize(t, src)
	st, ok := loops[0].Stmts[1].(*Store)
	if !ok || st.Field != "cell" || st.Op != lang.OpSet {
		t.Fatalf("stmt = %#v", loops[0].Stmts[1])
	}
}

func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{
			"undefined variable",
			"region R { v: scalar }\nfor i in R { R[j].v = 1 }",
			"undefined variable",
		},
		{
			"scalar as index",
			"region R { v: scalar }\nfor i in R { x = R[i].v R[x].v = 1 }",
			"not an index",
		},
		{
			"wrong function domain",
			"region R { v: scalar }\nregion S { v: scalar }\nfunction f : S -> S\nfor i in R { S[f(i)].v = 1 }",
			"expects an index into S",
		},
		{
			"wrong region for index",
			"region R { v: scalar }\nregion S { v: scalar }\nfor i in R { S[i].v = 1 }",
			"points into region R, not S",
		},
		{
			"assign to range field",
			"region R { g: range(R), v: scalar }\nfor i in R { R[i].g = 1 }",
			"cannot assign to range field",
		},
		{
			"opaque call as index",
			"region R { v: scalar }\nfor i in R { R[opaque(i)].v = 1 }",
			"undeclared index function",
		},
		{
			"multi-arg index function",
			"region R { v: scalar }\nfunction f : R -> R\nfor i in R { R[f(i, i)].v = 1 }",
			"exactly one argument",
		},
		{
			"number as index",
			"region R { v: scalar }\nfor i in R { R[3].v = 1 }",
			"cannot be used as an index",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := lang.Parse(tc.src)
			if err != nil {
				// Some cases are rejected by the frontend already.
				return
			}
			_, err = NormalizeProgram(prog)
			if err == nil {
				t.Fatalf("NormalizeProgram(%q) should fail", tc.src)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestNormalizeRangeFieldAsScalarErrors(t *testing.T) {
	src := "region R { g: range(R), v: scalar }\nfor i in R { x = R[i].g R[i].v = x }"
	prog := mustParse(t, src)
	if _, err := NormalizeProgram(prog); err == nil || !strings.Contains(err.Error(), "range field") {
		t.Errorf("err = %v", err)
	}
}
