package lang

import (
	"fmt"
	"strings"

	"autopart/internal/dpl"
)

// Program is a parsed DSL source file: region and function declarations,
// external partition declarations, top-level parallelizable-candidate
// loops, and external constraint assertions.
type Program struct {
	Regions []*RegionDecl
	Funcs   []*FuncDecl
	Externs []*ExternDecl
	Loops   []*Loop
	Asserts []*Assert
}

// RegionByName finds a region declaration.
func (p *Program) RegionByName(name string) (*RegionDecl, bool) {
	for _, r := range p.Regions {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// FuncByName finds an index-function declaration.
func (p *Program) FuncByName(name string) (*FuncDecl, bool) {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f, true
		}
	}
	return nil, false
}

// PartialFuncs collects the names of functions declared `partial`, the
// set the solver's totality-dependent lemmas must refuse. Nil when every
// declared function is total.
func (p *Program) PartialFuncs() map[string]bool {
	var out map[string]bool
	for _, f := range p.Funcs {
		if f.Partial {
			if out == nil {
				out = map[string]bool{}
			}
			out[f.Name] = true
		}
	}
	return out
}

// SpaceOf resolves the root index space of a region: the name of the
// region at the end of its `: shares` chain (or the region itself).
func (p *Program) SpaceOf(regionName string) string {
	for {
		r, ok := p.RegionByName(regionName)
		if !ok || r.Space == "" {
			return regionName
		}
		regionName = r.Space
	}
}

// SameSpace reports whether two regions share an index space.
func (p *Program) SameSpace(a, b string) bool {
	return p.SpaceOf(a) == p.SpaceOf(b)
}

// ExternByName finds an external partition declaration.
func (p *Program) ExternByName(name string) (*ExternDecl, bool) {
	for _, e := range p.Externs {
		if e.Name == name {
			return e, true
		}
	}
	return nil, false
}

// FieldKind is the declared kind of a region field.
type FieldKind int

// Field kinds.
const (
	ScalarKind FieldKind = iota
	IndexKind            // pointer into a target region
	RangeKind            // range of indices of a target region (§4)
)

// FieldDecl declares one field of a region.
type FieldDecl struct {
	Name   string
	Kind   FieldKind
	Target string // pointee region for IndexKind/RangeKind
}

// RegionDecl declares a region and its fields. Space, when non-empty,
// names another region whose index space this region shares (written
// `region Ranges : Y { ... }`): the two regions have the same size and an
// index into one is a valid index into the other, connected by the
// identity map (as in the SpMV example of §4, where Ranges is indexed by
// Y's loop variable).
type RegionDecl struct {
	Name   string
	Space  string
	Fields []FieldDecl
	Pos    Pos
}

// FieldByName finds a field declaration.
func (r *RegionDecl) FieldByName(name string) (FieldDecl, bool) {
	for _, f := range r.Fields {
		if f.Name == name {
			return f, true
		}
	}
	return FieldDecl{}, false
}

// FuncDecl declares an opaque index function between two regions' index
// spaces (e.g. the neighbor function h in Fig. 1). Following the
// paper's convention, a declared function is a total map unless marked
// `partial`; the solver's completeness lemma for preimages (L7) is only
// valid for total functions, so the marker is load-bearing — a program
// whose runtime map can be undefined anywhere must declare it.
type FuncDecl struct {
	Name     string
	From, To string
	// Partial marks the function as possibly undefined on part of its
	// domain (`function h : A -> B partial`).
	Partial bool
	Pos     Pos
}

// ExternDecl declares a partition created outside the scope of
// auto-parallelization (§3.3); its subregions are provided at runtime.
type ExternDecl struct {
	Name   string
	Region string
	Pos    Pos
}

// Loop is a top-level `for (i in R)` loop, the unit of parallelization.
type Loop struct {
	Var    string
	Region string
	Body   []Stmt
	Pos    Pos
}

// Stmt is a statement in a loop body.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// VarAssign is `x = expr`.
type VarAssign struct {
	Name string
	Rhs  Expr
	Pos  Pos
}

// ReduceOp identifies an assignment operator on a region field.
type ReduceOp string

// Assignment operators.
const (
	OpSet ReduceOp = "="
	OpAdd ReduceOp = "+="
	OpMul ReduceOp = "*="
	OpMax ReduceOp = "max="
	OpMin ReduceOp = "min="
)

// FieldAssign is `R[idx].f <op> expr` — a store (OpSet) or a reduction.
type FieldAssign struct {
	Access *FieldAccess
	Op     ReduceOp
	Rhs    Expr
	Pos    Pos
}

// InnerFor is an inner loop with a data-dependent iteration space:
// `for (k in Ranges[i].span) { ... }` (§4).
type InnerFor struct {
	Var   string
	Range *FieldAccess
	Body  []Stmt
	Pos   Pos
}

// If is a guarded block; guards appear in relaxed loops (§5.1) and in
// manually parallelized code (Fig. 4).
type If struct {
	Cond Cond
	Then []Stmt
	Else []Stmt
	Pos  Pos
}

func (*VarAssign) stmtNode()   {}
func (*FieldAssign) stmtNode() {}
func (*InnerFor) stmtNode()    {}
func (*If) stmtNode()          {}

// StmtPos implements Stmt.
func (s *VarAssign) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *FieldAssign) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *InnerFor) StmtPos() Pos { return s.Pos }

// StmtPos implements Stmt.
func (s *If) StmtPos() Pos { return s.Pos }

// Cond is a guard condition.
type Cond interface {
	condNode()
	String() string
}

// InTest is `expr in S` where S is a region or partition name.
type InTest struct {
	Index Expr
	Space string
}

// Compare is `expr == expr` or `expr != expr`; it has no partitioning
// effect but appears in real kernels.
type Compare struct {
	Op   string
	L, R Expr
}

func (*InTest) condNode()  {}
func (*Compare) condNode() {}

func (c *InTest) String() string  { return fmt.Sprintf("%s in %s", c.Index, c.Space) }
func (c *Compare) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// Expr is an expression.
type Expr interface {
	exprNode()
	ExprPos() Pos
	String() string
}

// NumLit is a numeric literal.
type NumLit struct {
	Text string
	Pos  Pos
}

// VarRef references a loop variable or a let-bound variable.
type VarRef struct {
	Name string
	Pos  Pos
}

// FieldAccess is `R[idx].f`.
type FieldAccess struct {
	Region string
	Index  Expr
	Field  string
	Pos    Pos
}

// Call is `f(args...)`: an index-function application when f is a
// declared function with a single argument, otherwise an opaque scalar
// computation.
type Call struct {
	Func string
	Args []Expr
	Pos  Pos
}

// Binary is an arithmetic expression; opaque to partitioning.
type Binary struct {
	Op   string
	L, R Expr
	Pos  Pos
}

func (*NumLit) exprNode()      {}
func (*VarRef) exprNode()      {}
func (*FieldAccess) exprNode() {}
func (*Call) exprNode()        {}
func (*Binary) exprNode()      {}

// ExprPos implements Expr.
func (e *NumLit) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *VarRef) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *FieldAccess) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Call) ExprPos() Pos { return e.Pos }

// ExprPos implements Expr.
func (e *Binary) ExprPos() Pos { return e.Pos }

func (e *NumLit) String() string { return e.Text }
func (e *VarRef) String() string { return e.Name }
func (e *FieldAccess) String() string {
	return fmt.Sprintf("%s[%s].%s", e.Region, e.Index, e.Field)
}
func (e *Call) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", e.Func, strings.Join(args, ", "))
}
func (e *Binary) String() string { return fmt.Sprintf("(%s %s %s)", e.L, e.Op, e.R) }

// AssertKind distinguishes the three external-constraint forms.
type AssertKind int

// Assertion kinds.
const (
	// AssertSubset is `assert E1 <= E2`.
	AssertSubset AssertKind = iota
	// AssertDisjoint is `assert disjoint(E)`.
	AssertDisjoint
	// AssertComplete is `assert complete(E, R)`.
	AssertComplete
)

// Assert is an external partitioning constraint (§3.3). Its expressions
// are DPL expressions over extern partition symbols.
type Assert struct {
	Kind   AssertKind
	L, R   dpl.Expr // R is nil except for AssertSubset
	Region string   // for AssertComplete
	Pos    Pos
}

func (a *Assert) String() string {
	switch a.Kind {
	case AssertSubset:
		return fmt.Sprintf("assert %s <= %s", a.L, a.R)
	case AssertDisjoint:
		return fmt.Sprintf("assert disjoint(%s)", a.L)
	case AssertComplete:
		return fmt.Sprintf("assert complete(%s, %s)", a.L, a.Region)
	default:
		return "assert ?"
	}
}
