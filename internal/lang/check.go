package lang

import (
	"autopart/internal/dpl"
)

// Check performs the semantic checks that do not require inference:
// name uniqueness, region/field existence, field kinds, and assert symbol
// resolution (the pipeline's check pass).
func Check(prog *Program) error {
	regions, externs, err := checkDecls(prog)
	if err != nil {
		return err
	}
	for _, l := range prog.Loops {
		if err := checkLoop(prog, l, regions, externs); err != nil {
			return err
		}
	}
	return checkAsserts(prog, regions, externs)
}

// CheckLoop checks a single loop against a program whose declarations
// and asserts are already known to be valid. The incremental frontend
// re-checks only the dirty loops of an edited program this way; a loop
// whose tokens and header are unchanged cannot newly fail, so skipping
// clean loops preserves Check's verdict exactly.
func CheckLoop(prog *Program, l *Loop) error {
	regions := map[string]*RegionDecl{}
	for _, r := range prog.Regions {
		regions[r.Name] = r
	}
	externs := map[string]*ExternDecl{}
	for _, e := range prog.Externs {
		externs[e.Name] = e
	}
	return checkLoop(prog, l, regions, externs)
}

func checkLoop(prog *Program, l *Loop, regions map[string]*RegionDecl, externs map[string]*ExternDecl) error {
	if _, ok := regions[l.Region]; !ok {
		return errorf("C011", l.Pos, "loop iterates over unknown region %q", l.Region)
	}
	return checkStmts(prog, l.Body, regions, externs)
}

// checkDecls validates the declaration header (regions, functions,
// externs) and returns the name maps the loop and assert checks consult.
func checkDecls(prog *Program) (map[string]*RegionDecl, map[string]*ExternDecl, error) {
	regions := map[string]*RegionDecl{}
	for _, r := range prog.Regions {
		if _, dup := regions[r.Name]; dup {
			return nil, nil, errorf("C001", r.Pos, "duplicate region %q", r.Name)
		}
		fields := map[string]bool{}
		for _, f := range r.Fields {
			if fields[f.Name] {
				return nil, nil, errorf("C002", r.Pos, "region %q: duplicate field %q", r.Name, f.Name)
			}
			fields[f.Name] = true
		}
		regions[r.Name] = r
	}
	// Space-sharing chains must reference declared regions and be acyclic.
	for _, r := range prog.Regions {
		if r.Space == "" {
			continue
		}
		seen := map[string]bool{r.Name: true}
		cur := r.Space
		for cur != "" {
			if seen[cur] {
				return nil, nil, errorf("C003", r.Pos, "region %q: index-space sharing cycle through %q", r.Name, cur)
			}
			seen[cur] = true
			next, ok := regions[cur]
			if !ok {
				return nil, nil, errorf("C004", r.Pos, "region %q shares index space with unknown region %q", r.Name, cur)
			}
			cur = next.Space
		}
	}
	// Field targets must reference declared regions.
	for _, r := range prog.Regions {
		for _, f := range r.Fields {
			if f.Kind != ScalarKind {
				if _, ok := regions[f.Target]; !ok {
					return nil, nil, errorf("C005", r.Pos, "region %q: field %q targets unknown region %q", r.Name, f.Name, f.Target)
				}
			}
		}
	}

	if _, err := funcsOf(prog, regions); err != nil {
		return nil, nil, err
	}

	externs := map[string]*ExternDecl{}
	for _, e := range prog.Externs {
		if _, dup := externs[e.Name]; dup {
			return nil, nil, errorf("C009", e.Pos, "duplicate extern partition %q", e.Name)
		}
		if _, ok := regions[e.Region]; !ok {
			return nil, nil, errorf("C010", e.Pos, "extern partition %q: unknown region %q", e.Name, e.Region)
		}
		externs[e.Name] = e
	}
	return regions, externs, nil
}

// funcsOf validates function declarations and returns their name map.
func funcsOf(prog *Program, regions map[string]*RegionDecl) (map[string]*FuncDecl, error) {
	funcs := map[string]*FuncDecl{}
	for _, f := range prog.Funcs {
		if _, dup := funcs[f.Name]; dup {
			return nil, errorf("C006", f.Pos, "duplicate function %q", f.Name)
		}
		if _, ok := regions[f.From]; !ok {
			return nil, errorf("C007", f.Pos, "function %q: unknown domain region %q", f.Name, f.From)
		}
		if _, ok := regions[f.To]; !ok {
			return nil, errorf("C008", f.Pos, "function %q: unknown codomain region %q", f.Name, f.To)
		}
		funcs[f.Name] = f
	}
	return funcs, nil
}

func checkAsserts(prog *Program, regions map[string]*RegionDecl, externs map[string]*ExternDecl) error {
	funcs, err := funcsOf(prog, regions)
	if err != nil {
		return err
	}
	for _, a := range prog.Asserts {
		if err := checkAssertExpr(a, a.L, regions, externs, funcs); err != nil {
			return err
		}
		if a.Kind == AssertSubset {
			if err := checkAssertExpr(a, a.R, regions, externs, funcs); err != nil {
				return err
			}
		}
		if a.Kind == AssertComplete {
			if _, ok := regions[a.Region]; !ok {
				return errorf("C016", a.Pos, "assert references unknown region %q", a.Region)
			}
		}
	}
	return nil
}

func checkStmts(prog *Program, stmts []Stmt, regions map[string]*RegionDecl, externs map[string]*ExternDecl) error {
	for _, s := range stmts {
		switch st := s.(type) {
		case *VarAssign:
			if err := checkExpr(st.Rhs, regions); err != nil {
				return err
			}
		case *FieldAssign:
			if err := checkExpr(st.Access, regions); err != nil {
				return err
			}
			if err := checkExpr(st.Rhs, regions); err != nil {
				return err
			}
		case *InnerFor:
			if err := checkExpr(st.Range, regions); err != nil {
				return err
			}
			r := regions[st.Range.Region]
			f, ok := r.FieldByName(st.Range.Field)
			if !ok || f.Kind != RangeKind {
				return errorf("C012", st.Pos, "inner loop range %s must be a range field", st.Range)
			}
			if err := checkStmts(prog, st.Body, regions, externs); err != nil {
				return err
			}
		case *If:
			if in, ok := st.Cond.(*InTest); ok {
				if err := checkExpr(in.Index, regions); err != nil {
					return err
				}
				_, isRegion := regions[in.Space]
				_, isExtern := externs[in.Space]
				if !isRegion && !isExtern {
					return errorf("C013", st.Pos, "guard tests membership in unknown region or partition %q", in.Space)
				}
			} else if cmp, ok := st.Cond.(*Compare); ok {
				if err := checkExpr(cmp.L, regions); err != nil {
					return err
				}
				if err := checkExpr(cmp.R, regions); err != nil {
					return err
				}
			}
			if err := checkStmts(prog, st.Then, regions, externs); err != nil {
				return err
			}
			if err := checkStmts(prog, st.Else, regions, externs); err != nil {
				return err
			}
		}
	}
	return nil
}

func checkExpr(e Expr, regions map[string]*RegionDecl) error {
	switch x := e.(type) {
	case *FieldAccess:
		r, ok := regions[x.Region]
		if !ok {
			return errorf("C014", x.Pos, "access to unknown region %q", x.Region)
		}
		if _, ok := r.FieldByName(x.Field); !ok {
			return errorf("C015", x.Pos, "region %q has no field %q", x.Region, x.Field)
		}
		return checkExpr(x.Index, regions)
	case *Call:
		for _, a := range x.Args {
			if err := checkExpr(a, regions); err != nil {
				return err
			}
		}
	case *Binary:
		if err := checkExpr(x.L, regions); err != nil {
			return err
		}
		return checkExpr(x.R, regions)
	}
	return nil
}

func checkAssertExpr(a *Assert, e dpl.Expr, regions map[string]*RegionDecl, externs map[string]*ExternDecl, funcs map[string]*FuncDecl) error {
	checkRegion := func(name string) error {
		if _, ok := regions[name]; !ok {
			return errorf("C016", a.Pos, "assert references unknown region %q", name)
		}
		return nil
	}
	// Function references: declared functions or Region[·].field maps are
	// resolved later against region field declarations; here we only
	// check plain names.
	switch x := e.(type) {
	case dpl.Var:
		if _, ok := externs[x.Name]; !ok {
			return errorf("C017", a.Pos, "assert references unknown partition %q (declare it with 'extern partition')", x.Name)
		}
	case dpl.ImageExpr:
		if err := checkRegion(x.Region); err != nil {
			return err
		}
		return checkAssertExpr(a, x.Of, regions, externs, funcs)
	case dpl.PreimageExpr:
		if err := checkRegion(x.Region); err != nil {
			return err
		}
		return checkAssertExpr(a, x.Of, regions, externs, funcs)
	case dpl.ImageMultiExpr:
		if err := checkRegion(x.Region); err != nil {
			return err
		}
		return checkAssertExpr(a, x.Of, regions, externs, funcs)
	case dpl.PreimageMultiExpr:
		if err := checkRegion(x.Region); err != nil {
			return err
		}
		return checkAssertExpr(a, x.Of, regions, externs, funcs)
	case dpl.BinExpr:
		if err := checkAssertExpr(a, x.L, regions, externs, funcs); err != nil {
			return err
		}
		return checkAssertExpr(a, x.R, regions, externs, funcs)
	}
	return nil
}
