package lang_test

// Regression tests for the parser's recursion-depth guard (P012). Each
// input nests one of the parser's recursive productions 10k deep —
// enough to overflow a goroutine stack without the guard — and must
// come back as a coded diagnostic, not a crash.

import (
	"strings"
	"testing"

	"autopart/internal/lang"
)

func TestParserDepthGuard(t *testing.T) {
	const n = 10000
	cases := []struct {
		name string
		src  string
	}{
		{
			// parsePrimary ↔ parseExpr via parenthesized expressions.
			"parens",
			"region R { a: scalar }\nfor i in R { R[i].a = " +
				strings.Repeat("(", n) + "1" + strings.Repeat(")", n) + " }\n",
		},
		{
			// parseBlock ↔ parseStmt via nested guards.
			"blocks",
			"region R { a: scalar }\nfor i in R { " +
				strings.Repeat("if (1 == 1) { ", n) + "R[i].a = 1" + strings.Repeat(" }", n) + " }\n",
		},
		{
			// parsePartitionExpr ↔ parsePartitionTerm via nested image().
			"assert",
			"region R { a: scalar }\nextern partition E of R\nassert " +
				strings.Repeat("image(", n) + "E" + strings.Repeat(", f, R)", n) + " <= E\n",
		},
		{
			// Unary minus recurses into parsePrimary directly.
			"unary-minus",
			"region R { a: scalar }\nfor i in R { R[i].a = " +
				strings.Repeat("-", n) + "1 }\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := lang.ParseSource(tc.src)
			if err == nil {
				t.Fatalf("want P012 for %d-deep %s nesting, got success", n, tc.name)
			}
			le, ok := err.(*lang.Error)
			if !ok {
				t.Fatalf("want *lang.Error, got %T: %v", err, err)
			}
			if le.Code != "P012" {
				t.Fatalf("want code P012, got %s: %v", le.Code, err)
			}
		})
	}
}

// TestParserDepthGuardAllowsDeepButLegalNesting pins the guard's
// threshold: nesting below the limit still parses.
func TestParserDepthGuardAllowsDeepButLegalNesting(t *testing.T) {
	const n = 50
	src := "region R { a: scalar }\nfor i in R { R[i].a = " +
		strings.Repeat("(", n) + "1" + strings.Repeat(")", n) + " }\n"
	if _, err := lang.ParseSource(src); err != nil {
		t.Fatalf("%d-deep nesting should parse: %v", n, err)
	}
}

// TestSplitSourceRejectsEmbeddedControlBytes pins the segmenter fix for
// the fingerprint-aliasing bug: a NUL inside a run used to hash
// identically to a run separator, so "ab\x00c" and "ab c" shared a
// fingerprint while lexing differently — breaking the fingerprint ⇒
// token-equality invariant. Control bytes now refuse to segment.
func TestSplitSourceRejectsEmbeddedControlBytes(t *testing.T) {
	cases := []string{
		"region R { a\x00b: scalar }",   // NUL mid-run: the aliasing case
		"region R { a\x01b: scalar }",   // 0x01 aliases the header terminator
		"\x00region R { a: scalar }",    // control byte at construct start
		"region R { a: scalar }\x0bfor", // vertical tab between runs
	}
	for _, src := range cases {
		if _, err := lang.SplitSource(src); err == nil {
			t.Fatalf("SplitSource accepted control-byte input %q", src)
		}
	}
	// Tab, CR, LF remain ordinary whitespace.
	if _, err := lang.SplitSource("region\tR\r\n{ a: scalar }\n"); err != nil {
		t.Fatalf("SplitSource rejected tab/CR/LF whitespace: %v", err)
	}
}

// TestSplitSourceRejectsKeywordInUnbracedConstruct pins the fuzz-found
// slicing bug (corpus entry 0101d7ffb3e84a21): "region for {}" used to
// split into a brace-less "region" fragment that no reparse of the
// segment could accept. A construct keyword before the previous braced
// construct opens its brace now refuses to segment.
func TestSplitSourceRejectsKeywordInUnbracedConstruct(t *testing.T) {
	for _, src := range []string{
		"region for {}",
		"for region R { a: scalar }",
		"region R for i in R {}",
	} {
		if _, err := lang.SplitSource(src); err == nil {
			t.Fatalf("SplitSource accepted %q", src)
		}
	}
	// The legitimate adjacency still splits.
	sg, err := lang.SplitSource("region R { a: scalar } for i in R { R[i].a = 1 }")
	if err != nil || len(sg.Segments) != 2 {
		t.Fatalf("legitimate region+for failed to split: %v", err)
	}
}
