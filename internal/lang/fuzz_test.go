package lang_test

// Frontend fuzzing. Two targets:
//
//   - FuzzParseSource: the full cold frontend (lex, parse, check) must
//     never panic or hang on arbitrary bytes, and must be deterministic.
//   - FuzzSplitSource: the incremental frontend's segmenter. Its
//     run-based fingerprints underwrite the incremental-recompile
//     correctness argument: equal fingerprint must imply equal token
//     stream. The target checks that invariant directly by rebuilding
//     each segment from its runs with normalized whitespace — the
//     fingerprints agree by construction, so the token streams must too.
//
// The external test package (lang_test) lets us seed from the builtin
// applications without an import cycle.

import (
	"strings"
	"testing"

	"autopart/internal/apps/builtins"
	"autopart/internal/lang"
)

// seedCorpus returns the five builtin programs plus crafted edge cases
// covering the historical segmenter/lexer trouble spots.
func seedCorpus() []string {
	var seeds []string
	for _, name := range builtins.Names() {
		src, _, ok := builtins.Source(name)
		if !ok {
			continue
		}
		seeds = append(seeds, src)
	}
	seeds = append(seeds,
		"region R { a: scalar }\r\nfor i in R { R[i].a = 1 }\r\n",         // CRLF line endings
		"region R { a: scalar }\rfor i in R { R[i].a = 1 }",               // bare CR
		"# comment only\n// and another\n",                                // comments, no constructs
		"region R {",                                                      // unterminated construct
		"region R { a: scalar } for i in R { R[i].a = R[i].a + 1 }",       // single line
		"assert disjoint(E)",                                              // braceless construct
		"region \xc3\xa9 { a: scalar }",                                   // non-ASCII identifier bytes
		"region R { a: scalar }\x00for i in R {}",                         // NUL between constructs
		"for i in R { if (i in R) { R[i].a = 1 } else { R[i].a = 2 } }",   // guards
		"function f : A -> B\nextern partition E of R\nassert E <= E",     // header constructs
		"for i in R { for j in R[i].nbr { R[j].a += image(i, f, R) } }\n", // nested loop
		"region R { a: scalar } for i in R { R[i].a max= 0 - 1 }",         // max= and unary minus
	)
	return seeds
}

// FuzzParseSource asserts the cold frontend is total: any byte string
// either parses (and then checks without panicking) or returns a coded
// *lang.Error, deterministically.
func FuzzParseSource(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := lang.ParseSource(src)
		if err != nil {
			le, ok := err.(*lang.Error)
			if !ok {
				t.Fatalf("ParseSource returned non-coded error %T: %v", err, err)
			}
			if le.Code == "" {
				t.Fatalf("ParseSource error has empty diagnostic code: %v", err)
			}
		} else {
			// Semantic checking must be total on anything that parses.
			_ = lang.Check(prog)
		}
		// Determinism: a second run must agree exactly.
		_, err2 := lang.ParseSource(src)
		if (err == nil) != (err2 == nil) || (err != nil && err.Error() != err2.Error()) {
			t.Fatalf("ParseSource nondeterministic:\n first: %v\nsecond: %v", err, err2)
		}
	})
}

// extractRuns mirrors the segmenter's run discipline: maximal byte
// sequences delimited by whitespace, comments, or control bytes. It is
// the reference implementation the fuzz target uses to build a
// whitespace-normalized variant of each segment.
func extractRuns(src string) ([]string, bool) {
	var runs []string
	i := 0
	for i < len(src) {
		c := src[i]
		if c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			i++
			continue
		}
		if c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/') {
			for i < len(src) && src[i] != '\n' {
				i++
			}
			continue
		}
		if c < 0x20 {
			return nil, false // segmenter rejects control bytes
		}
		j := i
		for j < len(src) {
			b := src[j]
			if b == ' ' || b == '\t' || b == '\r' || b == '\n' || b == '#' || b < 0x20 {
				break
			}
			if b == '/' && j+1 < len(src) && src[j+1] == '/' {
				break
			}
			j++
		}
		runs = append(runs, src[i:j])
		i = j
	}
	return runs, true
}

// sameTokens compares two token streams ignoring positions.
func sameTokens(a, b []lang.Token) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Kind != b[i].Kind || a[i].Text != b[i].Text {
			return false
		}
	}
	return true
}

// FuzzSplitSource asserts the segmenter never panics, is deterministic,
// and upholds the fingerprint ⇒ token-stream-equality invariant that
// incremental recompilation depends on.
func FuzzSplitSource(f *testing.F) {
	for _, s := range seedCorpus() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sg, err := lang.SplitSource(src)
		sg2, err2 := lang.SplitSource(src)
		if (err == nil) != (err2 == nil) {
			t.Fatalf("SplitSource nondeterministic: %v vs %v", err, err2)
		}
		if err != nil {
			if le, ok := err.(*lang.Error); !ok || le.Code == "" {
				t.Fatalf("SplitSource returned non-coded error %T: %v", err, err)
			}
			return
		}
		if len(sg.Segments) != len(sg2.Segments) || sg.HeaderFP != sg2.HeaderFP {
			t.Fatalf("SplitSource nondeterministic segment structure")
		}

		for si, seg := range sg.Segments {
			if seg.Start < 0 || seg.End > len(src) || seg.Start > seg.End {
				t.Fatalf("segment %d has bad byte range [%d,%d) of %d", si, seg.Start, seg.End, len(src))
			}
			text := src[seg.Start:seg.End]

			// Re-splitting a segment's own text must yield exactly that
			// segment with an identical fingerprint: extraction is stable.
			sub, err := lang.SplitSource(text)
			if err != nil {
				t.Fatalf("segment %d (%q...) does not re-split: %v", si, head(text), err)
			}
			if len(sub.Segments) != 1 || sub.Segments[0].Kind != seg.Kind || sub.Segments[0].FP != seg.FP {
				t.Fatalf("segment %d unstable under extraction: got %d segments", si, len(sub.Segments))
			}

			// Whitespace-normalized variant: same runs joined by single
			// spaces. Its fingerprint matches by construction, so the
			// invariant demands an identical token stream.
			runs, ok := extractRuns(text)
			if !ok {
				t.Fatalf("segment %d contains control bytes the splitter should have rejected", si)
			}
			variant := strings.Join(runs, " ")
			vsg, err := lang.SplitSource(variant)
			if err != nil {
				t.Fatalf("segment %d normalized variant does not split: %v", si, err)
			}
			if len(vsg.Segments) != 1 || vsg.Segments[0].FP != seg.FP {
				t.Fatalf("segment %d: normalized variant fingerprint diverges (runs not the hash unit?)", si)
			}
			origToks, origErr := lang.LexAll(text)
			varToks, varErr := lang.LexAll(variant)
			if (origErr == nil) != (varErr == nil) {
				t.Fatalf("segment %d: equal fingerprints but lexing disagrees: %v vs %v", si, origErr, varErr)
			}
			if origErr == nil && !sameTokens(origToks, varToks) {
				t.Fatalf("segment %d: equal fingerprints but different token streams\n orig: %q\n variant: %q", si, text, variant)
			}
		}

		// Segment concatenation must re-split to the same fingerprints:
		// segmentation loses nothing between constructs.
		var parts []string
		for _, seg := range sg.Segments {
			parts = append(parts, src[seg.Start:seg.End])
		}
		joined := strings.Join(parts, "\n")
		jsg, err := lang.SplitSource(joined)
		if err != nil {
			t.Fatalf("concatenated segments do not re-split: %v", err)
		}
		if len(jsg.Segments) != len(sg.Segments) || jsg.HeaderFP != sg.HeaderFP {
			t.Fatalf("concatenated segments re-split differently: %d vs %d segments", len(jsg.Segments), len(sg.Segments))
		}
		for i := range jsg.Segments {
			if jsg.Segments[i].FP != sg.Segments[i].FP {
				t.Fatalf("segment %d fingerprint changed across concatenation", i)
			}
		}
	})
}

func head(s string) string {
	if len(s) > 24 {
		return s[:24]
	}
	return s
}
