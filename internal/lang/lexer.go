package lang

import (
	"strings"
	"unicode"
)

// Lexer splits DSL source text into tokens. Comments run from '#' or '//'
// to end of line.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer creates a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// NewLexerAt creates a lexer over a fragment of a larger file, reporting
// positions as if the fragment started at base. The incremental frontend
// uses it to reparse a single dirty loop with positions identical to a
// full parse of the whole file.
func NewLexerAt(src string, base Pos) *Lexer {
	if !base.Valid() {
		return NewLexer(src)
	}
	return &Lexer{src: src, line: base.Line, col: base.Col}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	// Hot path of segmentation and parsing: scan bytes with local
	// position state instead of per-byte advance() calls. Columns only
	// need adjusting at the end of a same-line run; newlines reset them.
	src, i, line, col := l.src, l.off, l.line, l.col
	for i < len(src) {
		switch c := src[i]; {
		case c == '\n':
			i++
			line++
			col = 1
		case c == ' ' || c == '\t' || c == '\r':
			i++
			col++
		case c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/'):
			for i < len(src) && src[i] != '\n' {
				i++
				col++
			}
		default:
			l.off, l.line, l.col = i, line, col
			return
		}
	}
	l.off, l.line, l.col = i, line, col
}

func isIdentStart(c byte) bool {
	return c == '_' || ('a' <= c && c <= 'z') || ('A' <= c && c <= 'Z') ||
		(c >= 0x80 && unicode.IsLetter(rune(c)))
}

func isIdentCont(c byte) bool {
	return isIdentStart(c) || ('0' <= c && c <= '9')
}

func isDigit(c byte) bool { return '0' <= c && c <= '9' }

// oneCharText maps single-character token bytes to static strings so
// Next never allocates for punctuation (the bulk of tokens in dense
// numeric code).
var oneCharText [256]string

func init() {
	for _, c := range "{}[](),:.+-*/<=!" {
		oneCharText[byte(c)] = string(c)
	}
}

// Next returns the next token; it returns EOF forever once exhausted.
func (l *Lexer) Next() (Token, error) {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		// Identifiers never contain newlines, so the column advances by
		// the scanned length in one step.
		start := l.off
		i := l.off
		for i < len(l.src) && isIdentCont(l.src[i]) {
			i++
		}
		l.col += i - l.off
		l.off = i
		text := l.src[start:l.off]
		// max= / min= reduction operators.
		if (text == "max" || text == "min") && l.peek() == '=' && l.peek2() != '=' {
			l.advance()
			if text == "max" {
				return Token{Kind: MaxEq, Text: "max=", Pos: pos}, nil
			}
			return Token{Kind: MinEq, Text: "min=", Pos: pos}, nil
		}
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Text: text, Pos: pos}, nil
		}
		return Token{Kind: IDENT, Text: text, Pos: pos}, nil

	case isDigit(c):
		start := l.off
		i := l.off
		for i < len(l.src) && (isDigit(l.src[i]) || l.src[i] == '.') {
			i++
		}
		l.col += i - l.off
		l.off = i
		text := l.src[start:l.off]
		if strings.Count(text, ".") > 1 {
			return Token{}, errorf("L001", pos, "malformed number %q", text)
		}
		return Token{Kind: NUMBER, Text: text, Pos: pos}, nil
	}

	two := func(k Kind, text string) (Token, error) {
		l.advance()
		l.advance()
		return Token{Kind: k, Text: text, Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		l.advance()
		return Token{Kind: k, Text: oneCharText[c], Pos: pos}, nil
	}

	switch c {
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case ',':
		return one(Comma)
	case ':':
		return one(Colon)
	case '.':
		return one(Dot)
	case '+':
		if l.peek2() == '=' {
			return two(PlusEq, "+=")
		}
		return one(Plus)
	case '*':
		if l.peek2() == '=' {
			return two(StarEq, "*=")
		}
		return one(Star)
	case '/':
		return one(Slash)
	case '-':
		if l.peek2() == '>' {
			return two(Arrow, "->")
		}
		return one(Minus)
	case '<':
		if l.peek2() == '=' {
			return two(SubsetEq, "<=")
		}
		return Token{}, errorf("L002", pos, "unexpected character %q (only '<=' is supported)", string(c))
	case '=':
		if l.peek2() == '=' {
			return two(EqEq, "==")
		}
		return one(Assign)
	case '!':
		if l.peek2() == '=' {
			return two(NotEq, "!=")
		}
		return Token{}, errorf("L003", pos, "unexpected character %q (did you mean '!=')", string(c))
	default:
		return Token{}, errorf("L004", pos, "unexpected character %q", string(c))
	}
}

// LexAll tokenizes the whole input (excluding the final EOF); useful for
// tests.
func LexAll(src string) ([]Token, error) {
	l := NewLexer(src)
	var out []Token
	for {
		tok, err := l.Next()
		if err != nil {
			return nil, err
		}
		if tok.Kind == EOF {
			return out, nil
		}
		out = append(out, tok)
	}
}
