package lang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasics(t *testing.T) {
	toks, err := LexAll("for p in Particles { x = 1.5 }")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwFor, IDENT, KwIn, IDENT, LBrace, IDENT, Assign, NUMBER, RBrace}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	toks, err := LexAll("+= *= max= min= <= -> + - * / != == = ==")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{PlusEq, StarEq, MaxEq, MinEq, SubsetEq, Arrow, Plus, Minus, Star, Slash, NotEq, EqEq, Assign, EqEq}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexMaxIdentifierNotReduction(t *testing.T) {
	// "max == x" must lex max as IDENT, not max=.
	toks, err := LexAll("max == x maximum = 2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{IDENT, EqEq, IDENT, IDENT, Assign, NUMBER}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %v, want %v (%v)", i, got[i], want[i], toks)
		}
	}
}

func TestLexComments(t *testing.T) {
	src := `
# a hash comment
for i in R { // trailing comment
  x = 1 # another
}
`
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwFor, IDENT, KwIn, IDENT, LBrace, IDENT, Assign, NUMBER, RBrace}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := LexAll("ab\n  cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != (Pos{Line: 1, Col: 1}) {
		t.Errorf("first token pos = %v", toks[0].Pos)
	}
	if toks[1].Pos != (Pos{Line: 2, Col: 3}) {
		t.Errorf("second token pos = %v", toks[1].Pos)
	}
	if toks[1].Pos.String() != "2:3" {
		t.Errorf("Pos.String = %q", toks[1].Pos.String())
	}
}

func TestLexKeywords(t *testing.T) {
	src := "region function extern partition for in if else assert scalar index range disjoint complete of"
	toks, err := LexAll(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []Kind{KwRegion, KwFunction, KwExtern, KwPartition, KwFor, KwIn, KwIf, KwElse,
		KwAssert, KwScalar, KwIndex, KwRange, KwDisjoint, KwComplete, KwOf}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("keyword %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{"x = 1.2.3", "a < b", "a ! b", "a @ b"} {
		if _, err := LexAll(src); err == nil {
			t.Errorf("LexAll(%q) should fail", src)
		} else if !strings.Contains(err.Error(), ":") {
			t.Errorf("error should carry a position: %v", err)
		}
	}
}

func TestLexEOFIsSticky(t *testing.T) {
	l := NewLexer("x")
	if tok, _ := l.Next(); tok.Kind != IDENT {
		t.Fatal("expected IDENT")
	}
	for i := 0; i < 3; i++ {
		tok, err := l.Next()
		if err != nil || tok.Kind != EOF {
			t.Fatalf("Next after end = %v, %v", tok, err)
		}
	}
}

func TestTokenString(t *testing.T) {
	if got := (Token{Kind: IDENT, Text: "abc"}).String(); !strings.Contains(got, "abc") {
		t.Errorf("Token.String = %q", got)
	}
	if got := (Token{Kind: LBrace}).String(); got != "'{'" {
		t.Errorf("Token.String = %q", got)
	}
	if Kind(999).String() != "Kind(999)" {
		t.Error("unknown kind string")
	}
}
