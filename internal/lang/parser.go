package lang

import (
	"fmt"

	"autopart/internal/dpl"
)

// Parser is a recursive-descent parser for the loop DSL.
type Parser struct {
	lex  *Lexer
	tok  Token // current token
	next Token // one token of lookahead
	err  error
	// depth counts the current recursion depth across blocks,
	// expressions, and assert expressions; enter rejects input nested
	// beyond maxParseDepth so adversarial sources (e.g. ten thousand
	// opening parentheses) produce a coded diagnostic instead of
	// overflowing the goroutine stack.
	depth int
}

// maxParseDepth bounds parser recursion, mirroring the depth>200
// rejection of the progwire decoder.
const maxParseDepth = 200

// enter increments the recursion depth, failing on overflow. Callers
// must pair it with leave (deferred) on the success path; on error the
// parser is abandoned wholesale, so a missed leave is harmless.
func (p *Parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return errorf("P012", p.tok.Pos, "nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *Parser) leave() { p.depth-- }

// Parse parses and semantically validates a complete DSL source file.
// It is ParseSource followed by Check; the pass pipeline runs the two
// stages separately.
func Parse(src string) (*Program, error) {
	prog, err := ParseSource(src)
	if err != nil {
		return nil, err
	}
	return prog, Check(prog)
}

// ParseSource parses a complete DSL source file without the semantic
// checks of Check (the pipeline's parse pass).
func ParseSource(src string) (*Program, error) {
	p := &Parser{lex: NewLexer(src)}
	// Prime current and lookahead.
	p.advance()
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	return p.parseProgram()
}

// ParseLoopAt parses a single top-level loop from a fragment of a larger
// file, with positions reported as if the fragment started at base (the
// segment's Pos from SplitSource). The incremental frontend reparses
// exactly the dirty loops this way, so their AST positions — and any
// parse error — match a full parse of the edited file byte for byte.
func ParseLoopAt(fragment string, base Pos) (*Loop, error) {
	p := &Parser{lex: NewLexerAt(fragment, base)}
	p.advance()
	p.advance()
	if p.err != nil {
		return nil, p.err
	}
	l, err := p.parseLoop()
	if err != nil {
		return nil, err
	}
	if p.err == nil && p.tok.Kind != EOF {
		return nil, errorf("P002", p.tok.Pos, "expected declaration, loop, or assert; found %s", p.tok)
	}
	return l, p.err
}

func (p *Parser) advance() {
	if p.err != nil {
		return
	}
	p.tok = p.next
	tok, err := p.lex.Next()
	if err != nil {
		p.err = err
		return
	}
	p.next = tok
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.err != nil {
		return Token{}, p.err
	}
	if p.tok.Kind != k {
		return Token{}, errorf("P001", p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	p.advance()
	if p.err != nil {
		return Token{}, p.err
	}
	return t, nil
}

func (p *Parser) accept(k Kind) bool {
	if p.err == nil && p.tok.Kind == k {
		p.advance()
		return p.err == nil
	}
	return false
}

func (p *Parser) parseProgram() (*Program, error) {
	prog := &Program{}
	for {
		if p.err != nil {
			return nil, p.err
		}
		switch p.tok.Kind {
		case EOF:
			return prog, nil
		case KwRegion:
			d, err := p.parseRegionDecl()
			if err != nil {
				return nil, err
			}
			prog.Regions = append(prog.Regions, d)
		case KwFunction:
			d, err := p.parseFuncDecl()
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, d)
		case KwExtern:
			d, err := p.parseExternDecl()
			if err != nil {
				return nil, err
			}
			prog.Externs = append(prog.Externs, d)
		case KwFor:
			l, err := p.parseLoop()
			if err != nil {
				return nil, err
			}
			prog.Loops = append(prog.Loops, l)
		case KwAssert:
			a, err := p.parseAssert()
			if err != nil {
				return nil, err
			}
			prog.Asserts = append(prog.Asserts, a)
		default:
			return nil, errorf("P002", p.tok.Pos, "expected declaration, loop, or assert; found %s", p.tok)
		}
	}
}

func (p *Parser) parseRegionDecl() (*RegionDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(KwRegion); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	var space string
	if p.accept(Colon) {
		spaceTok, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		space = spaceTok.Text
	}
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	d := &RegionDecl{Name: name.Text, Space: space, Pos: pos}
	for !p.accept(RBrace) {
		if len(d.Fields) > 0 {
			if _, err := p.expect(Comma); err != nil {
				return nil, err
			}
		}
		f, err := p.parseFieldDecl()
		if err != nil {
			return nil, err
		}
		d.Fields = append(d.Fields, f)
	}
	return d, p.err
}

func (p *Parser) parseFieldDecl() (FieldDecl, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return FieldDecl{}, err
	}
	if _, err := p.expect(Colon); err != nil {
		return FieldDecl{}, err
	}
	switch p.tok.Kind {
	case KwScalar:
		p.advance()
		return FieldDecl{Name: name.Text, Kind: ScalarKind}, p.err
	case KwIndex, KwRange:
		kind := IndexKind
		if p.tok.Kind == KwRange {
			kind = RangeKind
		}
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return FieldDecl{}, err
		}
		target, err := p.expect(IDENT)
		if err != nil {
			return FieldDecl{}, err
		}
		if _, err := p.expect(RParen); err != nil {
			return FieldDecl{}, err
		}
		return FieldDecl{Name: name.Text, Kind: kind, Target: target.Text}, nil
	default:
		return FieldDecl{}, errorf("P003", p.tok.Pos, "expected field kind ('scalar', 'index(R)', or 'range(R)'), found %s", p.tok)
	}
}

func (p *Parser) parseFuncDecl() (*FuncDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(KwFunction); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Colon); err != nil {
		return nil, err
	}
	from, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Arrow); err != nil {
		return nil, err
	}
	to, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	// `partial` is a contextual keyword: only meaningful right after the
	// codomain, so it stays usable as an ordinary identifier elsewhere.
	partial := false
	if p.tok.Kind == IDENT && p.tok.Text == "partial" {
		partial = true
		p.advance()
	}
	return &FuncDecl{Name: name.Text, From: from.Text, To: to.Text, Partial: partial, Pos: pos}, nil
}

func (p *Parser) parseExternDecl() (*ExternDecl, error) {
	pos := p.tok.Pos
	if _, err := p.expect(KwExtern); err != nil {
		return nil, err
	}
	if _, err := p.expect(KwPartition); err != nil {
		return nil, err
	}
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwOf); err != nil {
		return nil, err
	}
	reg, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	return &ExternDecl{Name: name.Text, Region: reg.Text, Pos: pos}, nil
}

func (p *Parser) parseLoop() (*Loop, error) {
	pos := p.tok.Pos
	if _, err := p.expect(KwFor); err != nil {
		return nil, err
	}
	v, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(KwIn); err != nil {
		return nil, err
	}
	reg, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	return &Loop{Var: v.Text, Region: reg.Text, Body: body, Pos: pos}, nil
}

func (p *Parser) parseBlock() ([]Stmt, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	if _, err := p.expect(LBrace); err != nil {
		return nil, err
	}
	var stmts []Stmt
	for !p.accept(RBrace) {
		if p.err != nil {
			return nil, p.err
		}
		if p.tok.Kind == EOF {
			return nil, errorf("P004", p.tok.Pos, "unexpected end of input in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
	}
	return stmts, p.err
}

func (p *Parser) parseStmt() (Stmt, error) {
	pos := p.tok.Pos
	switch p.tok.Kind {
	case KwFor:
		p.advance()
		v, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwIn); err != nil {
			return nil, err
		}
		// The inner iteration space must be a range-field access.
		rangeExpr, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		fa, ok := rangeExpr.(*FieldAccess)
		if !ok {
			return nil, errorf("P005", rangeExpr.ExprPos(), "inner loop range must be a field access (e.g. Ranges[i].span), found %s", rangeExpr)
		}
		body, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		return &InnerFor{Var: v.Text, Range: fa, Body: body, Pos: pos}, nil

	case KwIf:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseCond()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseBlock()
		if err != nil {
			return nil, err
		}
		var els []Stmt
		if p.accept(KwElse) {
			els, err = p.parseBlock()
			if err != nil {
				return nil, err
			}
		}
		return &If{Cond: cond, Then: then, Else: els, Pos: pos}, nil

	case IDENT:
		if p.next.Kind == LBracket {
			// Field assignment or reduction.
			access, err := p.parsePrimary()
			if err != nil {
				return nil, err
			}
			fa, ok := access.(*FieldAccess)
			if !ok {
				return nil, errorf("P006", access.ExprPos(), "expected field access on left-hand side, found %s", access)
			}
			var op ReduceOp
			switch p.tok.Kind {
			case Assign:
				op = OpSet
			case PlusEq:
				op = OpAdd
			case StarEq:
				op = OpMul
			case MaxEq:
				op = OpMax
			case MinEq:
				op = OpMin
			default:
				return nil, errorf("P007", p.tok.Pos, "expected assignment operator, found %s", p.tok)
			}
			p.advance()
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			return &FieldAssign{Access: fa, Op: op, Rhs: rhs, Pos: pos}, nil
		}
		// Variable binding.
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Assign); err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &VarAssign{Name: name.Text, Rhs: rhs, Pos: pos}, nil

	default:
		return nil, errorf("P008", pos, "expected statement, found %s", p.tok)
	}
}

func (p *Parser) parseCond() (Cond, error) {
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case KwIn:
		p.advance()
		space, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		return &InTest{Index: l, Space: space.Text}, nil
	case NotEq, EqEq:
		op := p.tok.Text
		p.advance()
		r, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &Compare{Op: op, L: l, R: r}, nil
	default:
		return nil, errorf("P009", p.tok.Pos, "expected 'in', '==', or '!=' in condition, found %s", p.tok)
	}
}

// Expression grammar: expr := term (('+'|'-') term)*; term := primary
// (('*'|'/') primary)*.
func (p *Parser) parseExpr() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == Plus || p.tok.Kind == Minus {
		op := p.tok.Text
		pos := p.tok.Pos
		p.advance()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Pos: pos}
	}
	return l, p.err
}

func (p *Parser) parseTerm() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == Star || p.tok.Kind == Slash {
		op := p.tok.Text
		pos := p.tok.Pos
		p.advance()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r, Pos: pos}
	}
	return l, p.err
}

func (p *Parser) parsePrimary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	pos := p.tok.Pos
	switch p.tok.Kind {
	case NUMBER:
		t := p.tok
		p.advance()
		return &NumLit{Text: t.Text, Pos: pos}, p.err

	case Minus:
		p.advance()
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Binary{Op: "-", L: &NumLit{Text: "0", Pos: pos}, R: inner, Pos: pos}, nil

	case LParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return e, nil

	case IDENT:
		name := p.tok
		p.advance()
		switch p.tok.Kind {
		case LBracket:
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			if _, err := p.expect(Dot); err != nil {
				return nil, err
			}
			field, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			return &FieldAccess{Region: name.Text, Index: idx, Field: field.Text, Pos: pos}, nil
		case LParen:
			p.advance()
			var args []Expr
			if p.tok.Kind != RParen {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					args = append(args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			return &Call{Func: name.Text, Args: args, Pos: pos}, nil
		default:
			return &VarRef{Name: name.Text, Pos: pos}, p.err
		}

	default:
		return nil, errorf("P010", pos, "expected expression, found %s", p.tok)
	}
}

// parseAssert parses external constraints (§3.3):
//
//	assert disjoint(E)
//	assert complete(E, R)
//	assert E1 <= E2
func (p *Parser) parseAssert() (*Assert, error) {
	pos := p.tok.Pos
	if _, err := p.expect(KwAssert); err != nil {
		return nil, err
	}
	switch p.tok.Kind {
	case KwDisjoint:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		e, err := p.parsePartitionExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &Assert{Kind: AssertDisjoint, L: e, Pos: pos}, nil
	case KwComplete:
		p.advance()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		e, err := p.parsePartitionExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
		reg, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return &Assert{Kind: AssertComplete, L: e, Region: reg.Text, Pos: pos}, nil
	default:
		l, err := p.parsePartitionExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(SubsetEq); err != nil {
			return nil, err
		}
		r, err := p.parsePartitionExpr()
		if err != nil {
			return nil, err
		}
		return &Assert{Kind: AssertSubset, L: l, R: r, Pos: pos}, nil
	}
}

// parsePartitionExpr parses the DPL expression sublanguage used in
// asserts: symbols, image/preimage applications, and '+' for
// subregion-wise union.
func (p *Parser) parsePartitionExpr() (dpl.Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.parsePartitionTerm()
	if err != nil {
		return nil, err
	}
	for p.accept(Plus) {
		r, err := p.parsePartitionTerm()
		if err != nil {
			return nil, err
		}
		l = dpl.BinExpr{Op: dpl.OpUnion, L: l, R: r}
	}
	return l, p.err
}

func (p *Parser) parsePartitionTerm() (dpl.Expr, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != LParen {
		return dpl.Var{Name: name.Text}, nil
	}
	switch name.Text {
	case "image", "IMAGE":
		p.advance()
		of, err := p.parsePartitionExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
		fn, err := p.parseFuncRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
		reg, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if name.Text == "IMAGE" {
			return dpl.ImageMultiExpr{Of: of, Func: fn, Region: reg.Text}, nil
		}
		return dpl.ImageExpr{Of: of, Func: fn, Region: reg.Text}, nil
	case "preimage", "PREIMAGE":
		p.advance()
		reg, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
		fn, err := p.parseFuncRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Comma); err != nil {
			return nil, err
		}
		of, err := p.parsePartitionExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if name.Text == "PREIMAGE" {
			return dpl.PreimageMultiExpr{Region: reg.Text, Func: fn, Of: of}, nil
		}
		return dpl.PreimageExpr{Region: reg.Text, Func: fn, Of: of}, nil
	default:
		return nil, errorf("P011", name.Pos, "unknown partition operator %q (expected image, preimage, IMAGE, or PREIMAGE)", name.Text)
	}
}

// parseFuncRef parses a function reference in an assert: either a declared
// function name (h) or a pointer-field map (Region.field), normalized to
// the canonical "Region[·].field" spelling.
func (p *Parser) parseFuncRef() (string, error) {
	name, err := p.expect(IDENT)
	if err != nil {
		return "", err
	}
	if p.accept(Dot) {
		field, err := p.expect(IDENT)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%s[·].%s", name.Text, field.Text), nil
	}
	return name.Text, nil
}
