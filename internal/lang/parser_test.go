package lang

import (
	"strings"
	"testing"
)

// figure1Src is the program of Fig. 1a in DSL syntax.
const figure1Src = `
region Particles { cell: index(Cells), pos: scalar }
region Cells { vel: scalar, acc: scalar }
function h : Cells -> Cells

for p in Particles {
  c = Particles[p].cell
  Particles[p].pos += f(Cells[c].vel, Cells[h(c)].vel)
}
for c in Cells {
  Cells[c].vel += g(Cells[c].acc, Cells[h(c)].acc)
}
`

func TestParseFigure1(t *testing.T) {
	prog, err := Parse(figure1Src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Regions) != 2 || len(prog.Funcs) != 1 || len(prog.Loops) != 2 {
		t.Fatalf("counts: %d regions, %d funcs, %d loops",
			len(prog.Regions), len(prog.Funcs), len(prog.Loops))
	}

	particles, ok := prog.RegionByName("Particles")
	if !ok {
		t.Fatal("missing region Particles")
	}
	cellField, ok := particles.FieldByName("cell")
	if !ok || cellField.Kind != IndexKind || cellField.Target != "Cells" {
		t.Errorf("cell field = %+v", cellField)
	}
	posField, _ := particles.FieldByName("pos")
	if posField.Kind != ScalarKind {
		t.Errorf("pos field = %+v", posField)
	}

	h, ok := prog.FuncByName("h")
	if !ok || h.From != "Cells" || h.To != "Cells" {
		t.Errorf("h = %+v", h)
	}

	loop := prog.Loops[0]
	if loop.Var != "p" || loop.Region != "Particles" {
		t.Errorf("loop header = for %s in %s", loop.Var, loop.Region)
	}
	if len(loop.Body) != 2 {
		t.Fatalf("loop body has %d statements", len(loop.Body))
	}
	va, ok := loop.Body[0].(*VarAssign)
	if !ok || va.Name != "c" {
		t.Fatalf("first stmt = %#v", loop.Body[0])
	}
	if va.Rhs.String() != "Particles[p].cell" {
		t.Errorf("rhs = %s", va.Rhs)
	}
	fa, ok := loop.Body[1].(*FieldAssign)
	if !ok || fa.Op != OpAdd {
		t.Fatalf("second stmt = %#v", loop.Body[1])
	}
	if fa.Access.String() != "Particles[p].pos" {
		t.Errorf("lhs = %s", fa.Access)
	}
	if got := fa.Rhs.String(); got != "f(Cells[c].vel, Cells[h(c)].vel)" {
		t.Errorf("rhs = %s", got)
	}
}

func TestParseSpMV(t *testing.T) {
	// Fig. 10a.
	src := `
region Y { val: scalar }
region Ranges { span: range(Mat) }
region Mat { val: scalar, ind: index(X) }
region X { val: scalar }

for i in Y {
  for k in Ranges[i].span {
    Y[i].val += Mat[k].val * X[Mat[k].ind].val
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Loops[0]
	inner, ok := loop.Body[0].(*InnerFor)
	if !ok {
		t.Fatalf("expected inner loop, got %#v", loop.Body[0])
	}
	if inner.Var != "k" || inner.Range.String() != "Ranges[i].span" {
		t.Errorf("inner = for %s in %s", inner.Var, inner.Range)
	}
	red, ok := inner.Body[0].(*FieldAssign)
	if !ok || red.Op != OpAdd {
		t.Fatalf("inner body = %#v", inner.Body[0])
	}
	if got := red.Rhs.String(); got != "(Mat[k].val * X[Mat[k].ind].val)" {
		t.Errorf("rhs = %s", got)
	}
}

func TestParseExternAndAsserts(t *testing.T) {
	src := `
region Particles { cell: index(Cells) }
region Cells { vel: scalar }
extern partition pParticles of Particles
extern partition pCells of Cells
assert image(pParticles, Particles.cell, Cells) <= pCells
assert disjoint(pParticles + pParticles)
assert complete(pCells, Cells)
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Externs) != 2 || len(prog.Asserts) != 3 {
		t.Fatalf("externs=%d asserts=%d", len(prog.Externs), len(prog.Asserts))
	}
	if prog.Externs[0].Name != "pParticles" || prog.Externs[0].Region != "Particles" {
		t.Errorf("extern[0] = %+v", prog.Externs[0])
	}
	if _, ok := prog.ExternByName("pCells"); !ok {
		t.Error("ExternByName(pCells) failed")
	}

	a0 := prog.Asserts[0]
	if a0.Kind != AssertSubset {
		t.Fatalf("assert0 kind = %v", a0.Kind)
	}
	if got := a0.String(); got != "assert image(pParticles, Particles[·].cell, Cells) <= pCells" {
		t.Errorf("assert0 = %q", got)
	}
	a1 := prog.Asserts[1]
	if a1.Kind != AssertDisjoint || !strings.Contains(a1.String(), "∪") {
		t.Errorf("assert1 = %q", a1.String())
	}
	a2 := prog.Asserts[2]
	if a2.Kind != AssertComplete || a2.Region != "Cells" {
		t.Errorf("assert2 = %+v", a2)
	}
}

func TestParseGuardsAndCompare(t *testing.T) {
	src := `
region R { val: scalar }
region S { val: scalar }
function f : R -> S
function g : R -> S

for i in R {
  if (f(i) in S) {
    S[f(i)].val += R[i].val
  } else {
    S[g(i)].val += R[i].val
  }
  if (R[i].val != 0) {
    R[i].val = 1
  }
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := prog.Loops[0]
	guard, ok := loop.Body[0].(*If)
	if !ok {
		t.Fatalf("expected if, got %#v", loop.Body[0])
	}
	in, ok := guard.Cond.(*InTest)
	if !ok || in.Space != "S" || in.Index.String() != "f(i)" {
		t.Errorf("cond = %s", guard.Cond)
	}
	if len(guard.Then) != 1 || len(guard.Else) != 1 {
		t.Errorf("then/else = %d/%d", len(guard.Then), len(guard.Else))
	}
	cmp, ok := loop.Body[1].(*If).Cond.(*Compare)
	if !ok || cmp.Op != "!=" {
		t.Errorf("compare = %s", loop.Body[1].(*If).Cond)
	}
}

func TestParseArithmetic(t *testing.T) {
	src := `
region R { a: scalar, b: scalar }
for i in R {
  R[i].a = R[i].b * 2 + 1 - 3 / 4
  R[i].b = -R[i].a
  R[i].a = (R[i].a + 1) * 2
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	body := prog.Loops[0].Body
	if got := body[0].(*FieldAssign).Rhs.String(); got != "(((R[i].b * 2) + 1) - (3 / 4))" {
		t.Errorf("precedence: %s", got)
	}
	if got := body[1].(*FieldAssign).Rhs.String(); got != "(0 - R[i].a)" {
		t.Errorf("negation: %s", got)
	}
	if got := body[2].(*FieldAssign).Rhs.String(); got != "((R[i].a + 1) * 2)" {
		t.Errorf("parens: %s", got)
	}
}

func TestParseReductionOps(t *testing.T) {
	src := `
region R { a: scalar }
for i in R {
  R[i].a += 1
  R[i].a *= 2
  R[i].a max= 3
  R[i].a min= 4
  R[i].a = 5
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ops := []ReduceOp{OpAdd, OpMul, OpMax, OpMin, OpSet}
	for i, want := range ops {
		if got := prog.Loops[0].Body[i].(*FieldAssign).Op; got != want {
			t.Errorf("stmt %d op = %q, want %q", i, got, want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown region in loop", "for i in R { }", "unknown region"},
		{"duplicate region", "region R { a: scalar } region R { a: scalar }", "duplicate region"},
		{"duplicate field", "region R { a: scalar, a: scalar }", "duplicate field"},
		{"bad field target", "region R { p: index(S) }", "unknown region"},
		{"duplicate function", "region R {a: scalar} function f : R -> R function f : R -> R", "duplicate function"},
		{"bad function domain", "function f : R -> R", "unknown domain"},
		{"bad extern region", "extern partition p of R", "unknown region"},
		{"duplicate extern", "region R {a: scalar} extern partition p of R extern partition p of R", "duplicate extern"},
		{"unknown field", "region R {a: scalar} for i in R { R[i].b = 1 }", "no field"},
		{"unknown access region", "region R {a: scalar} for i in R { S[i].a = 1 }", "unknown region"},
		{"bad inner range", "region R {a: scalar} for i in R { for k in R[i].a { } }", "range field"},
		{"bad guard space", "region R {a: scalar} for i in R { if (i in Q) { } }", "unknown region or partition"},
		{"assert unknown partition", "region R {a: scalar} assert p <= p", "unknown partition"},
		{"assert unknown region", "region R {a: scalar} extern partition p of R assert image(p, f, S) <= p", "unknown region"},
		{"bad statement", "region R {a: scalar} for i in R { 3 = 4 }", "expected statement"},
		{"bad toplevel", "region R {a: scalar} 17", "expected declaration"},
		{"bad field kind", "region R { a: blah }", "field kind"},
		{"unclosed block", "region R {a: scalar} for i in R { x = 1", "end of input"},
		{"bad partition op", "region R {a: scalar} extern partition p of R assert foo(p) <= p", "unknown partition operator"},
		{"bad cond op", "region R {a: scalar} for i in R { if (i + 1) { } }", "in condition"},
		{"lhs not access", "region R {a: scalar} for i in R { R[i] = 1 }", ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) should fail", tc.src)
			}
			if tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

func TestParseAssertPreimageForms(t *testing.T) {
	src := `
region Rs { mapsp1: index(Rp) }
region Rp { x: scalar }
extern partition rs_p of Rs
extern partition rp_p_private of Rp
assert preimage(Rs, Rs.mapsp1, rp_p_private) <= rs_p
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	got := prog.Asserts[0].String()
	want := "assert preimage(Rs, Rs[·].mapsp1, rp_p_private) <= rs_p"
	if got != want {
		t.Errorf("assert = %q, want %q", got, want)
	}
}

func TestParseAssertMultiOps(t *testing.T) {
	src := `
region Y { v: scalar }
region Ranges { span: range(Mat) }
region Mat { v: scalar }
extern partition pr of Ranges
extern partition pm of Mat
assert IMAGE(pr, Ranges.span, Mat) <= pm
assert PREIMAGE(Ranges, Ranges.span, pm) <= pr
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Asserts[0].String(); !strings.Contains(got, "IMAGE(pr, Ranges[·].span, Mat)") {
		t.Errorf("assert0 = %q", got)
	}
	if got := prog.Asserts[1].String(); !strings.Contains(got, "PREIMAGE(Ranges, Ranges[·].span, pm)") {
		t.Errorf("assert1 = %q", got)
	}
}

func TestParseEmptyProgram(t *testing.T) {
	prog, err := Parse("  # only a comment\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Regions)+len(prog.Loops) != 0 {
		t.Error("empty program should have no declarations")
	}
	if _, ok := prog.RegionByName("X"); ok {
		t.Error("RegionByName on empty program")
	}
	if _, ok := prog.FuncByName("X"); ok {
		t.Error("FuncByName on empty program")
	}
}

func TestParseCallNoArgs(t *testing.T) {
	src := `
region R { a: scalar }
for i in R {
  R[i].a = rand()
}
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Loops[0].Body[0].(*FieldAssign).Rhs.String(); got != "rand()" {
		t.Errorf("rhs = %s", got)
	}
}
