package lang

import (
	"autopart/internal/dpl"
)

// This file implements loop-granular source segmentation, the diffing
// substrate of incremental recompilation: a token-level scan splits a
// source file into its top-level constructs (region, function, extern,
// assert, for) and fingerprints each one over its token stream. Because
// the fingerprint sees tokens, not bytes, comment and whitespace edits
// leave it unchanged — a recompile after such an edit marks no loop
// dirty. Segmentation never validates grammar beyond brace balance;
// malformed input makes SplitSource fail, and callers fall back to a
// full cold parse so errors surface exactly as they always have.

// Segment is one top-level construct of a source file.
type Segment struct {
	// Kind is the construct's introducing keyword: KwRegion, KwFunction,
	// KwExtern, KwAssert, or KwFor.
	Kind Kind
	// Start and End are the byte offsets of the construct's first token
	// and of the end of its last token; src[Start:End] reparses the
	// construct (comments inside the range are skipped by the lexer).
	Start, End int
	// Pos is the source position of the first token, the base for
	// position-correct reparses of this segment alone.
	Pos Pos
	// FP is the 128-bit fingerprint of the construct's token stream.
	FP [2]uint64
}

// Segmented is the decomposition of a source file into top-level
// constructs plus the combined fingerprint of everything that is not a
// loop (the "header": declarations and asserts).
type Segmented struct {
	// Segments lists every construct in source order.
	Segments []Segment
	// Loops indexes the KwFor entries of Segments, in source order — the
	// per-loop diff units.
	Loops []int
	// HeaderFP fingerprints the token streams of all non-loop segments
	// in order. Any header change invalidates every retained artifact,
	// because declarations scope the meaning of every loop.
	HeaderFP [2]uint64
}

// LoopFP returns the fingerprint of the i-th top-level loop.
func (sg *Segmented) LoopFP(i int) [2]uint64 { return sg.Segments[sg.Loops[i]].FP }

// LoopSeg returns the segment of the i-th top-level loop.
func (sg *Segmented) LoopSeg(i int) Segment { return sg.Segments[sg.Loops[i]] }

// constructKwOf maps a raw word to its construct keyword, if it is one.
func constructKwOf(word string) (Kind, bool) {
	switch word {
	case "region":
		return KwRegion, true
	case "function":
		return KwFunction, true
	case "extern":
		return KwExtern, true
	case "assert":
		return KwAssert, true
	case "for":
		return KwFor, true
	}
	return 0, false
}

// SplitSource scans src into top-level construct segments with
// fingerprints. It fails on unbalanced braces or top-level content that
// cannot belong to any construct; callers treat failure as "not
// segmentable" and run the full frontend, which reports the
// authoritative error (SplitSource's own errors are never user-facing).
//
// The scan fingerprints "runs" — maximal byte sequences delimited by
// whitespace and comments — rather than lexed tokens. Tokens never span
// whitespace and lexing is deterministic per run, so equal run
// sequences lex to equal token streams: fingerprint equality still
// guarantees token-stream equality, at a fraction of full lexing's
// cost. The converse is weaker than with token fingerprints — an edit
// that only moves whitespace *inside* an expression ("a+b" → "a + b")
// changes the run structure and marks the loop dirty — which costs a
// recompile of that loop, never correctness. Line-level whitespace and
// comment edits keep every fingerprint unchanged, as before.
func SplitSource(src string) (*Segmented, error) {
	sg := &Segmented{}
	var (
		cur       *Segment
		curH      = dpl.NewHasher128()
		headerH   = dpl.NewHasher128()
		depth     int
		braced    bool // current construct is brace-delimited (region, for)
		closed    bool // current braced construct's outer brace has closed
		sawBraces bool // current braced construct has opened its brace
	)
	finish := func() {
		if cur == nil {
			return
		}
		cur.FP = curH.Sum128()
		if cur.Kind == KwFor {
			sg.Loops = append(sg.Loops, len(sg.Segments))
		} else {
			headerH.WriteByte(1)
		}
		sg.Segments = append(sg.Segments, *cur)
		cur = nil
		curH = dpl.NewHasher128()
	}
	fail := func(line, col int, format string, args ...any) (*Segmented, error) {
		return nil, errorf("P002", Pos{Line: line, Col: col}, format, args...)
	}

	i, line, col := 0, 1, 1
	for i < len(src) {
		c := src[i]
		if c == '\n' {
			i, line, col = i+1, line+1, 1
			continue
		}
		if c == ' ' || c == '\t' || c == '\r' {
			i++
			col++
			continue
		}
		if c == '#' || (c == '/' && i+1 < len(src) && src[i+1] == '/') {
			for i < len(src) && src[i] != '\n' {
				i++
				col++
			}
			continue
		}

		if c < 0x20 {
			// Control bytes other than tab/CR/LF (handled above) cannot
			// start or continue any token, and a NUL or 0x01 inside a run
			// would collide with the fingerprint's separator bytes: the
			// runs of "ab\x00c" would hash identically to those of "ab c"
			// while lexing completely differently. Refuse to segment;
			// the cold frontend reports the authoritative lexer error.
			return fail(line, col, "control byte %#x in source", c)
		}

		// A run: maximal bytes up to whitespace, a comment start, or a
		// control byte (rejected when the scan reaches it).
		start, startLine, startCol := i, line, col
		j := i
		for j < len(src) {
			b := src[j]
			if b == ' ' || b == '\t' || b == '\r' || b == '\n' || b == '#' || b < 0x20 {
				break
			}
			if b == '/' && j+1 < len(src) && src[j+1] == '/' {
				break
			}
			j++
		}
		run := src[i:j]
		col += j - i
		i = j

		isKw := false
		if depth == 0 {
			if kw, ok := constructKwOf(run); ok {
				if cur != nil && braced && !closed {
					// A construct keyword cannot start before the previous
					// region/for opened and closed its braces ("region for
					// {}"); slicing here would emit a brace-less fragment
					// that no reparse of the segment could accept.
					return fail(startLine, startCol, "construct %q inside unterminated construct", run)
				}
				finish()
				cur = &Segment{Kind: kw, Start: start, Pos: Pos{Line: startLine, Col: startCol}}
				braced = kw == KwRegion || kw == KwFor
				closed, sawBraces = false, false
				isKw = true
			}
		}
		if cur == nil {
			return fail(startLine, startCol, "expected declaration, loop, or assert; found %q", run)
		}
		if !isKw {
			// Track brace depth through the run, rejecting content after a
			// completed region/loop exactly where the token scan would: a
			// completed construct can only be followed by another
			// construct keyword.
			for k := 0; k < len(run); k++ {
				switch run[k] {
				case '{':
					if depth == 0 && braced && closed {
						return fail(startLine, startCol, "expected declaration, loop, or assert; found %q", run)
					}
					depth++
					sawBraces = true
				case '}':
					depth--
					if depth < 0 {
						return fail(startLine, startCol, "unmatched '}'")
					}
					if depth == 0 && braced && sawBraces {
						closed = true
					}
				default:
					if depth == 0 && braced && closed {
						return fail(startLine, startCol, "expected declaration, loop, or assert; found %q", run)
					}
				}
			}
		}
		cur.End = i
		curH.WriteString(run)
		curH.WriteByte(0)
		if cur.Kind != KwFor {
			// Header constructs also stream into the combined header
			// fingerprint; finish() appends a 1-byte terminator per
			// construct so adjacent constructs cannot alias.
			headerH.WriteString(run)
			headerH.WriteByte(0)
		}
	}
	if depth != 0 {
		return fail(line, col, "unexpected end of input in block")
	}
	if cur != nil && braced && !closed {
		return fail(line, col, "unexpected end of input in block")
	}
	finish()
	sg.HeaderFP = headerH.Sum128()
	return sg, nil
}
