package lang

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestErrorsCarrySpanAndCode asserts the frontend's structured-error
// contract: every lex, parse, and semantic-check failure is a *Error
// with a valid source span and a stable diagnostic code, and renders
// with a line:col prefix.
func TestErrorsCarrySpanAndCode(t *testing.T) {
	cases := []struct {
		name, src  string
		codePrefix string
	}{
		{"lex bad char", "region R { a: scalar }\nfor i in R { R[i].a = $ }", "L"},
		{"lex bad number", "region R { a: scalar }\nfor i in R { R[i].a = 1.2.3 }", "L"},
		{"lex lone bang", "region R { a: scalar }\nfor i in R { if (i ! 2) { } }", "L"},
		{"parse bad toplevel", "region R { a: scalar }\n17", "P"},
		{"parse bad field kind", "region R {\n  a: blah }", "P"},
		{"parse unclosed block", "region R { a: scalar }\nfor i in R { x = 1", "P"},
		{"parse bad statement", "region R { a: scalar }\nfor i in R { 3 = 4 }", "P"},
		{"check unknown loop region", "region R { a: scalar }\nfor i in Q { }", "C"},
		{"check duplicate region", "region R { a: scalar }\nregion R { a: scalar }", "C"},
		{"check unknown field", "region R { a: scalar }\nfor i in R { R[i].b = 1 }", "C"},
		{"check assert unknown partition", "region R { a: scalar }\nassert p <= p", "C"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) should fail", tc.src)
			}
			var le *Error
			if !errors.As(err, &le) {
				t.Fatalf("error is %T, want *lang.Error: %v", err, err)
			}
			if !le.Span.Valid() {
				t.Errorf("error has no source span: %v", err)
			}
			if !strings.HasPrefix(le.Code, tc.codePrefix) {
				t.Errorf("error code %q, want prefix %q: %v", le.Code, tc.codePrefix, err)
			}
			prefix := fmt.Sprintf("%d:%d: ", le.Span.Start.Line, le.Span.Start.Col)
			if !strings.HasPrefix(le.Error(), prefix) {
				t.Errorf("error %q does not start with position %q", le.Error(), prefix)
			}
		})
	}
}

// TestSpanHelpers covers the Span utility surface.
func TestSpanHelpers(t *testing.T) {
	if (Span{}).Valid() {
		t.Error("zero span should be invalid")
	}
	s := SpanAt(Pos{Line: 3, Col: 7})
	if !s.Valid() || s.String() != "3:7" {
		t.Errorf("SpanAt = %v", s)
	}
	tok := Token{Kind: IDENT, Text: "abcd", Pos: Pos{Line: 2, Col: 5}}
	ts := tok.Span()
	if ts.Start != (Pos{Line: 2, Col: 5}) || ts.End != (Pos{Line: 2, Col: 9}) {
		t.Errorf("Token.Span = %v", ts)
	}
	if e := Errorf("X001", Span{}, "no position"); e.Error() != "no position" {
		t.Errorf("unpositioned error renders %q", e.Error())
	}
}
