// Package lang implements the frontend for the loop DSL in which the
// benchmark programs are written: a lexer, an AST, and a recursive-descent
// parser. The language mirrors the paper's pseudocode (Figs. 1a, 4, 7,
// 10a, 11): region declarations, index-function declarations, sequential
// `for` loops over regions with field loads/stores/reductions, inner loops
// with data-dependent iteration spaces, guard conditionals, and `assert`
// statements carrying external partitioning constraints.
package lang

import "fmt"

// Kind identifies a token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwRegion
	KwFunction
	KwExtern
	KwPartition
	KwFor
	KwIn
	KwIf
	KwElse
	KwAssert
	KwScalar
	KwIndex
	KwRange
	KwDisjoint
	KwComplete
	KwOf

	// Punctuation and operators.
	LBrace
	RBrace
	LBracket
	RBracket
	LParen
	RParen
	Comma
	Colon
	Dot
	Assign   // =
	PlusEq   // +=
	StarEq   // *=
	MaxEq    // max=
	MinEq    // min=
	SubsetEq // <=
	Arrow    // ->
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	NotEq    // !=
	EqEq     // ==
)

var kindNames = map[Kind]string{
	EOF:         "end of input",
	IDENT:       "identifier",
	NUMBER:      "number",
	KwRegion:    "'region'",
	KwFunction:  "'function'",
	KwExtern:    "'extern'",
	KwPartition: "'partition'",
	KwFor:       "'for'",
	KwIn:        "'in'",
	KwIf:        "'if'",
	KwElse:      "'else'",
	KwAssert:    "'assert'",
	KwScalar:    "'scalar'",
	KwIndex:     "'index'",
	KwRange:     "'range'",
	KwDisjoint:  "'disjoint'",
	KwComplete:  "'complete'",
	KwOf:        "'of'",
	LBrace:      "'{'",
	RBrace:      "'}'",
	LBracket:    "'['",
	RBracket:    "']'",
	LParen:      "'('",
	RParen:      "')'",
	Comma:       "','",
	Colon:       "':'",
	Dot:         "'.'",
	Assign:      "'='",
	PlusEq:      "'+='",
	StarEq:      "'*='",
	MaxEq:       "'max='",
	MinEq:       "'min='",
	SubsetEq:    "'<='",
	Arrow:       "'->'",
	Plus:        "'+'",
	Minus:       "'-'",
	Star:        "'*'",
	Slash:       "'/'",
	NotEq:       "'!='",
	EqEq:        "'=='",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"region":    KwRegion,
	"function":  KwFunction,
	"extern":    KwExtern,
	"partition": KwPartition,
	"for":       KwFor,
	"in":        KwIn,
	"if":        KwIf,
	"else":      KwElse,
	"assert":    KwAssert,
	"scalar":    KwScalar,
	"index":     KwIndex,
	"range":     KwRange,
	"disjoint":  KwDisjoint,
	"complete":  KwComplete,
	"of":        KwOf,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Valid reports whether the position was actually set (the zero Pos means
// "no position").
func (p Pos) Valid() bool { return p.Line > 0 }

// Span is a half-open source range [Start, End). A zero-width span marks
// a single point; the zero Span means "no position".
type Span struct {
	Start, End Pos
}

// SpanAt returns a zero-width span at pos.
func SpanAt(pos Pos) Span { return Span{Start: pos, End: pos} }

// Valid reports whether the span carries a real position.
func (s Span) Valid() bool { return s.Start.Valid() }

func (s Span) String() string { return s.Start.String() }

// Token is a lexed token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// Span is the source range covered by the token's text (tokens never
// span lines).
func (t Token) Span() Span {
	end := t.Pos
	end.Col += len(t.Text)
	return Span{Start: t.Pos, End: end}
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a positioned frontend error carrying a stable diagnostic code
// (see internal/diag for the code registry and rendering).
type Error struct {
	Span  Span
	Code  string
	Msg   string
	Notes []string
}

func (e *Error) Error() string {
	if !e.Span.Valid() {
		return e.Msg
	}
	return fmt.Sprintf("%s: %s", e.Span.Start, e.Msg)
}

// DiagSpan exposes the source span for diagnostic conversion.
func (e *Error) DiagSpan() Span { return e.Span }

// DiagCode exposes the stable diagnostic code.
func (e *Error) DiagCode() string { return e.Code }

// DiagMessage exposes the bare message (no position prefix).
func (e *Error) DiagMessage() string { return e.Msg }

// DiagNotes exposes attached notes.
func (e *Error) DiagNotes() []string { return e.Notes }

// Errorf builds a positioned, coded error; packages layered on lang
// positions (ir, infer, solver) use it so every compile error renders
// with file:line:col and a stable code.
func Errorf(code string, span Span, format string, args ...any) *Error {
	return &Error{Span: span, Code: code, Msg: fmt.Sprintf(format, args...)}
}

func errorf(code string, pos Pos, format string, args ...any) *Error {
	return &Error{Span: SpanAt(pos), Code: code, Msg: fmt.Sprintf(format, args...)}
}
