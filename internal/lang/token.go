// Package lang implements the frontend for the loop DSL in which the
// benchmark programs are written: a lexer, an AST, and a recursive-descent
// parser. The language mirrors the paper's pseudocode (Figs. 1a, 4, 7,
// 10a, 11): region declarations, index-function declarations, sequential
// `for` loops over regions with field loads/stores/reductions, inner loops
// with data-dependent iteration spaces, guard conditionals, and `assert`
// statements carrying external partitioning constraints.
package lang

import "fmt"

// Kind identifies a token class.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	NUMBER

	// Keywords.
	KwRegion
	KwFunction
	KwExtern
	KwPartition
	KwFor
	KwIn
	KwIf
	KwElse
	KwAssert
	KwScalar
	KwIndex
	KwRange
	KwDisjoint
	KwComplete
	KwOf

	// Punctuation and operators.
	LBrace
	RBrace
	LBracket
	RBracket
	LParen
	RParen
	Comma
	Colon
	Dot
	Assign   // =
	PlusEq   // +=
	StarEq   // *=
	MaxEq    // max=
	MinEq    // min=
	SubsetEq // <=
	Arrow    // ->
	Plus     // +
	Minus    // -
	Star     // *
	Slash    // /
	NotEq    // !=
	EqEq     // ==
)

var kindNames = map[Kind]string{
	EOF:         "end of input",
	IDENT:       "identifier",
	NUMBER:      "number",
	KwRegion:    "'region'",
	KwFunction:  "'function'",
	KwExtern:    "'extern'",
	KwPartition: "'partition'",
	KwFor:       "'for'",
	KwIn:        "'in'",
	KwIf:        "'if'",
	KwElse:      "'else'",
	KwAssert:    "'assert'",
	KwScalar:    "'scalar'",
	KwIndex:     "'index'",
	KwRange:     "'range'",
	KwDisjoint:  "'disjoint'",
	KwComplete:  "'complete'",
	KwOf:        "'of'",
	LBrace:      "'{'",
	RBrace:      "'}'",
	LBracket:    "'['",
	RBracket:    "']'",
	LParen:      "'('",
	RParen:      "')'",
	Comma:       "','",
	Colon:       "':'",
	Dot:         "'.'",
	Assign:      "'='",
	PlusEq:      "'+='",
	StarEq:      "'*='",
	MaxEq:       "'max='",
	MinEq:       "'min='",
	SubsetEq:    "'<='",
	Arrow:       "'->'",
	Plus:        "'+'",
	Minus:       "'-'",
	Star:        "'*'",
	Slash:       "'/'",
	NotEq:       "'!='",
	EqEq:        "'=='",
}

func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"region":    KwRegion,
	"function":  KwFunction,
	"extern":    KwExtern,
	"partition": KwPartition,
	"for":       KwFor,
	"in":        KwIn,
	"if":        KwIf,
	"else":      KwElse,
	"assert":    KwAssert,
	"scalar":    KwScalar,
	"index":     KwIndex,
	"range":     KwRange,
	"disjoint":  KwDisjoint,
	"complete":  KwComplete,
	"of":        KwOf,
}

// Pos is a source position (1-based line and column).
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a positioned frontend error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errorf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
