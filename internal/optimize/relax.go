// Package optimize implements the reduction-buffer optimizations of §5:
//
//   - Disjointness relaxation (§5.1): a loop with uncentered reductions
//     normally requires a disjoint iteration-space partition. Relaxation
//     instead requires each reduction's target partition to be disjoint,
//     rewrites the loop with membership guards, and lets the iteration
//     space be an aliased union of preimages — eliminating reduction
//     buffers entirely.
//
//   - Private sub-partitions (§5.2, Theorem 5.1): when relaxation is not
//     applied, the disjoint "private" part of a reduction partition is
//     computed with DPL operators so a reduction buffer is only needed
//     for the remaining shared part.
package optimize

import (
	"autopart/internal/constraint"
	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/solver"
)

// LoopPlan pairs a loop's inference result with the (possibly relaxed)
// constraint system the solver should use.
type LoopPlan struct {
	Res *infer.Result
	// Sys is Res.Sys or its relaxed variant.
	Sys *constraint.System
	// Relaxed reports whether §5.1 applies: the rewriter must guard the
	// loop's uncentered reductions and the iteration partition may be
	// aliased.
	Relaxed bool
	// GuardedSyms are the reduction access symbols that received a DISJ
	// requirement during relaxation; their partitions bound the guards.
	GuardedSyms []string
}

// Relax applies §5.1 to every loop where it is possible and profitable:
// a loop is relaxable when every uncentered reduction's lower bound is a
// direct image of the iteration symbol under a single-valued function.
// Following the paper's heuristic, loops are relaxed only when all loops
// sharing the same iteration-space region can be relaxed — a loop
// without uncentered reductions blocks its group, because an aliased
// iteration partition would impose redundant computation on it (this is
// why Circuit keeps reduction buffers while MiniAero, whose face loops
// all reduce, relaxes completely).
func Relax(results []*infer.Result) []*LoopPlan {
	plans := make([]*LoopPlan, len(results))
	relaxable := make([]bool, len(results))
	// Group loops by iteration region.
	groupOK := map[string]bool{}
	for i, r := range results {
		plans[i] = &LoopPlan{Res: r, Sys: r.Sys}
		relaxable[i] = canRelax(r)
		region := r.Loop.Region
		if _, seen := groupOK[region]; !seen {
			groupOK[region] = true
		}
		if !(r.NeedsDisjointIter && relaxable[i]) {
			groupOK[region] = false
		}
	}
	for i, r := range results {
		if !r.NeedsDisjointIter || !relaxable[i] || !groupOK[r.Loop.Region] {
			continue
		}
		sys, guarded := relaxSystem(r)
		plans[i].Sys = sys
		plans[i].Relaxed = true
		plans[i].GuardedSyms = guarded
	}
	return plans
}

// canRelax reports whether every uncentered reduction of the loop has the
// form S[f(i)] op= e with f a single-valued function of the loop
// variable (directly, or through one access-symbol anchor that is the
// iteration symbol).
func canRelax(r *infer.Result) bool {
	if !r.NeedsDisjointIter {
		return false
	}
	// A field reduced both centered and uncentered cannot be guarded:
	// the centered update applies in place on the writing partition's
	// copies while the guarded update applies in place on the guard
	// partition's copies, and guarded write-backs ship whole values —
	// whichever copy ships last erases the other update. The buffered
	// path composes (buffer merges are deltas folded onto the written
	// copy), so such loops must keep their reduction buffers.
	// Differential fuzzing caught the distributed run losing a centered
	// contribution this way.
	centeredReduced := map[[2]string]bool{}
	for _, a := range r.Accesses {
		if a.Kind == infer.ReduceAccess && a.Centered {
			centeredReduced[[2]string{a.Region, a.Field}] = true
		}
	}
	sawUncentered := false
	for _, a := range r.Accesses {
		if a.Kind != infer.ReduceAccess {
			continue
		}
		if !a.Centered && centeredReduced[[2]string{a.Region, a.Field}] {
			return false
		}
		if a.Centered {
			// Centered reductions (including identity images into a
			// sibling region of the loop's space) are idempotent under an
			// aliased iteration partition: every task that runs iteration
			// i computes the same in-place result for element i. They
			// must keep their image constraints, so they are neither a
			// reason to relax nor an obstacle. Matching on the lower
			// bound instead (Var only) used to relax identity-image
			// reductions here while the rewriter still executed them
			// unguarded — the preimage constraint the relaxation leaves
			// behind does not bound the task's accesses, and the launch
			// escaped its subregion.
			continue
		}
		sawUncentered = true
		imgExpr, ok := a.Lower.(dpl.ImageExpr)
		if !ok {
			return false
		}
		if of, ok := imgExpr.Of.(dpl.Var); !ok || of.Name != r.IterSym {
			return false
		}
	}
	return sawUncentered
}

// relaxSystem builds the relaxed constraint system: DISJ moves from the
// iteration symbol to the reduction symbols, and each reduction's image
// constraint image(P1, f, S) ⊆ P becomes preimage(R, f, P) ⊆ P1 (each
// task executes at least the iterations whose reduction target it owns;
// the guard makes extra executions harmless).
func relaxSystem(r *infer.Result) (*constraint.System, []string) {
	iter := dpl.Var{Name: r.IterSym}
	var guarded []string

	type rewriteInfo struct {
		sym    string
		fn     string
		region string
		from   dpl.Expr // the image-lower to remove
	}
	var rewrites []rewriteInfo
	for _, a := range r.Accesses {
		// Skip centered reductions by the same criterion as canRelax:
		// their image constraints stay, and the rewriter executes them
		// unguarded in place.
		if a.Kind != infer.ReduceAccess || a.Centered {
			continue
		}
		imgExpr := a.Lower.(dpl.ImageExpr)
		rewrites = append(rewrites, rewriteInfo{sym: a.Sym, fn: imgExpr.Func, region: a.Region, from: a.Lower})
		guarded = append(guarded, a.Sym)
	}

	out := &constraint.System{}
	for _, p := range r.Sys.Preds {
		// Drop DISJ on the iteration symbol.
		if p.Kind == constraint.Disj && dpl.Equal(p.E, iter) {
			continue
		}
		out.AddPred(p)
	}
	for _, rw := range rewrites {
		// Each contribution must be applied exactly once: the guarded
		// target partition must be disjoint (at most once) AND complete
		// (at least once).
		out.AddPred(constraint.Pred{Kind: constraint.Disj, E: dpl.Var{Name: rw.sym}})
		out.AddPred(constraint.Pred{Kind: constraint.Comp, E: dpl.Var{Name: rw.sym}, Region: rw.region})
	}
	region := r.Loop.Region
	for _, c := range r.Sys.Subsets {
		replaced := false
		for _, rw := range rewrites {
			if to, ok := c.R.(dpl.Var); ok && to.Name == rw.sym && dpl.Equal(c.L, rw.from) {
				out.AddSubset(constraint.Subset{
					L: dpl.PreimageExpr{Region: region, Func: rw.fn, Of: dpl.Var{Name: rw.sym}},
					R: iter,
				})
				replaced = true
				break
			}
		}
		if !replaced {
			out.AddSubset(c)
		}
	}
	return out, guarded
}

// Systems extracts the constraint systems of the plans, for the solver.
func Systems(plans []*LoopPlan) []*constraint.System {
	out := make([]*constraint.System, len(plans))
	for i, p := range plans {
		out[i] = p.Sys
	}
	return out
}

// PrivateSubPartition builds the DPL expression of Theorem 5.1 for a
// reduction partition defined as img = image(src, f, targetRegion) where
// src is disjoint:
//
//	priv = img − image(preimage(srcRegion, f, img) − src, f, targetRegion)
//
// The caller is responsible for src's disjointness (checked against the
// solved system with the prover). Returns the private sub-partition
// expression.
func PrivateSubPartition(img dpl.ImageExpr, srcRegion string) dpl.Expr {
	expanded := dpl.PreimageExpr{Region: srcRegion, Func: img.Func, Of: img}
	foreign := dpl.BinExpr{Op: dpl.OpMinus, L: expanded, R: img.Of}
	shared := dpl.ImageExpr{Of: foreign, Func: img.Func, Region: img.Region}
	return dpl.BinExpr{Op: dpl.OpMinus, L: img, R: shared}
}

// PrivatePlan records the private sub-partitions derived for reduction
// symbols: extra DPL statements to evaluate and the mapping from each
// reduction partition symbol to its private sub-partition symbol.
type PrivatePlan struct {
	// Extra holds statements computing the private sub-partitions; they
	// reference symbols of the main program.
	Extra dpl.Program
	// PrivateOf maps a reduction partition symbol to the symbol of its
	// private sub-partition.
	PrivateOf map[string]string
}

// FindPrivateSubPartitions applies §5.2 to a solved program: for every
// uncentered, unrelaxed reduction access whose canonical partition is an
// image of a provably disjoint source, emit the Theorem 5.1 construction.
// When a reduction partition is an intersection of image partitions the
// paper's generalization (intersection of the individual private parts)
// applies; our solver produces single images, so that case is the only
// one handled.
func FindPrivateSubPartitions(plans []*LoopPlan, sol *solver.Solution, external *constraint.System) *PrivatePlan {
	pp := &PrivatePlan{PrivateOf: map[string]string{}}
	hyps := sol.System.Clone()
	if external != nil {
		hyps.And(external)
	}
	prover := constraint.NewProver(hyps)

	defs := map[string]dpl.Expr{}
	for _, st := range sol.Program.Stmts {
		defs[st.Name] = st.Expr
	}

	for _, plan := range plans {
		if plan.Relaxed {
			continue // §5.1 already removed the buffers
		}
		for _, a := range plan.Res.Accesses {
			if a.Kind != infer.ReduceAccess || a.Centered {
				continue
			}
			canonSym := sol.Resolve(a.Sym)
			if _, done := pp.PrivateOf[canonSym]; done {
				continue
			}
			expr := resolveExpr(canonSym, defs)
			img, ok := expr.(dpl.ImageExpr)
			if !ok {
				continue
			}
			srcRegion, ok := sourceRegion(img.Of, hyps, defs)
			if !ok {
				continue
			}
			// Theorem 5.1 requires the image source to be disjoint.
			if !prover.ProveDisj(substituteDefs(img.Of, defs)) {
				continue
			}
			privSym := canonSym + "_priv"
			pp.Extra.Append(privSym, PrivateSubPartition(img, srcRegion))
			pp.PrivateOf[canonSym] = privSym
		}
	}
	return pp
}

// resolveExpr chases Var aliases to the defining expression.
func resolveExpr(sym string, defs map[string]dpl.Expr) dpl.Expr {
	seen := map[string]bool{}
	for {
		e, ok := defs[sym]
		if !ok {
			return dpl.Var{Name: sym}
		}
		if v, isVar := e.(dpl.Var); isVar && !seen[v.Name] {
			seen[v.Name] = true
			sym = v.Name
			continue
		}
		return e
	}
}

// substituteDefs fully expands program-defined symbols inside an
// expression so the prover can reason structurally (e.g. equal(R) is
// disjoint by L1).
func substituteDefs(e dpl.Expr, defs map[string]dpl.Expr) dpl.Expr {
	for changed := true; changed; {
		changed = false
		for _, v := range dpl.FreeVars(e) {
			if def, ok := defs[v]; ok {
				e = dpl.Subst(e, v, def)
				changed = true
			}
		}
	}
	return e
}

// sourceRegion determines which region the image's source expression
// partitions.
func sourceRegion(of dpl.Expr, hyps *constraint.System, defs map[string]dpl.Expr) (string, bool) {
	partOf := hyps.PartOf()
	if r, ok := dpl.RegionOf(substituteDefs(of, defs), partOf); ok {
		return r, true
	}
	return dpl.RegionOf(of, partOf)
}
