package optimize

import (
	"strings"
	"testing"

	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
	"autopart/internal/solver"
)

func inferSrc(t *testing.T, src string) []*infer.Result {
	t.Helper()
	prog, err := lang.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	loops, err := ir.NormalizeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	results, err := infer.New(prog).InferProgram(loops)
	if err != nil {
		t.Fatal(err)
	}
	return results
}

const multiReduceSrc = `
region R { v: scalar }
region S { w: scalar }
function f : R -> S
function g : R -> S
for i in R {
  S[f(i)].w += R[i].v
  S[g(i)].w += R[i].v
}
`

func TestRelaxMultiReduce(t *testing.T) {
	results := inferSrc(t, multiReduceSrc)
	plans := Relax(results)
	if len(plans) != 1 || !plans[0].Relaxed {
		t.Fatalf("loop not relaxed: %+v", plans[0])
	}
	if len(plans[0].GuardedSyms) != 2 {
		t.Fatalf("guarded syms = %v", plans[0].GuardedSyms)
	}
	sysText := plans[0].Sys.String()
	// DISJ moved from the iteration symbol to the reduction targets.
	if strings.Contains(sysText, "DISJ(P1)") {
		t.Errorf("iteration DISJ not dropped:\n%s", sysText)
	}
	for _, sym := range plans[0].GuardedSyms {
		if !strings.Contains(sysText, "DISJ("+sym+")") {
			t.Errorf("missing DISJ(%s):\n%s", sym, sysText)
		}
		if !strings.Contains(sysText, "COMP("+sym+", S)") {
			t.Errorf("missing COMP(%s, S):\n%s", sym, sysText)
		}
	}
	// Image constraints replaced by preimage constraints into the
	// iteration symbol.
	if !strings.Contains(sysText, "preimage(R, f,") || !strings.Contains(sysText, "preimage(R, g,") {
		t.Errorf("missing preimage constraints:\n%s", sysText)
	}
	if strings.Contains(sysText, "image(P1, f, S) ⊆") {
		t.Errorf("image constraint not removed:\n%s", sysText)
	}
}

func TestRelaxedSystemSolves(t *testing.T) {
	results := inferSrc(t, multiReduceSrc)
	plans := Relax(results)
	sol, err := solver.SolveProgram(resultsWithSys(plans), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	text := sol.Program.String()
	if !strings.Contains(text, "∪") {
		t.Errorf("iteration partition should be a union of preimages:\n%s", text)
	}
}

func resultsWithSys(plans []*LoopPlan) []*infer.Result {
	out := make([]*infer.Result, len(plans))
	for i, p := range plans {
		clone := *p.Res
		clone.Sys = p.Sys
		out[i] = &clone
	}
	return out
}

func TestRelaxSkipsCenteredOnlyLoops(t *testing.T) {
	results := inferSrc(t, `
region R { v: scalar }
for i in R {
  R[i].v += 1
}
`)
	plans := Relax(results)
	if plans[0].Relaxed {
		t.Error("centered-only loop must not be relaxed")
	}
}

func TestRelaxGroupHeuristic(t *testing.T) {
	// Two loops over R: the first is relaxable, the second has an
	// unrelaxable uncentered reduction (through a pointer chain that is
	// not a direct image of the iteration symbol). Neither may be
	// relaxed ("only when all loops using the same region as the
	// iteration space can be relaxed").
	src := `
region R { p: index(S), v: scalar }
region S { w: scalar, q: index(T) }
region T { u: scalar }
function f : R -> S
for i in R {
  S[f(i)].w += R[i].v
}
for i in R {
  T[S[R[i].p].q].u += R[i].v
}
`
	results := inferSrc(t, src)
	plans := Relax(results)
	if plans[0].Relaxed || plans[1].Relaxed {
		t.Errorf("group heuristic violated: %v %v", plans[0].Relaxed, plans[1].Relaxed)
	}
}

func TestRelaxIndependentGroups(t *testing.T) {
	// Loops over different regions relax independently.
	src := `
region R { v: scalar }
region R2 { v2: scalar, p: index(S) }
region S { w: scalar, q: index(T) }
region T { u: scalar }
function f : R -> S
for i in R {
  S[f(i)].w += R[i].v
}
for j in R2 {
  T[S[R2[j].p].q].u += R2[j].v2
}
`
	results := inferSrc(t, src)
	plans := Relax(results)
	if !plans[0].Relaxed {
		t.Error("first loop should be relaxed")
	}
	if plans[1].Relaxed {
		t.Error("second loop cannot be relaxed (pointer chain)")
	}
}

func TestPrivateSubPartitionExpression(t *testing.T) {
	img := dpl.ImageExpr{Of: dpl.Var{Name: "P"}, Func: "f", Region: "S"}
	priv := PrivateSubPartition(img, "R")
	want := "(image(P, f, S) − image((preimage(R, f, image(P, f, S)) − P), f, S))"
	if priv.String() != want {
		t.Errorf("priv = %s, want %s", priv, want)
	}
}

func TestFindPrivateSubPartitions(t *testing.T) {
	// MiniAero-like loop with relaxation disabled: the reduction
	// partition is image(equal(Faces), c1, Cells) — its source is
	// disjoint, so Theorem 5.1 applies.
	src := `
region Faces { c1: index(Cells), flux: scalar }
region Cells { res: scalar }
for f in Faces {
  Cells[Faces[f].c1].res += Faces[f].flux
}
`
	results := inferSrc(t, src)
	// No relaxation.
	plans := make([]*LoopPlan, len(results))
	for i, r := range results {
		plans[i] = &LoopPlan{Res: r, Sys: r.Sys}
	}
	sol, err := solver.SolveProgram(resultsWithSys(plans), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pp := FindPrivateSubPartitions(plans, sol, nil)
	if len(pp.PrivateOf) != 1 {
		t.Fatalf("PrivateOf = %v\nprogram:\n%s", pp.PrivateOf, sol.Program)
	}
	if len(pp.Extra.Stmts) != 1 {
		t.Fatalf("Extra = %s", pp.Extra)
	}
	text := pp.Extra.String()
	if !strings.Contains(text, "−") || !strings.Contains(text, "preimage(Faces,") {
		t.Errorf("private sub-partition expression:\n%s", text)
	}
}

func TestFindPrivateSkipsRelaxedLoops(t *testing.T) {
	results := inferSrc(t, multiReduceSrc)
	plans := Relax(results)
	sol, err := solver.SolveProgram(resultsWithSys(plans), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	pp := FindPrivateSubPartitions(plans, sol, nil)
	if len(pp.PrivateOf) != 0 {
		t.Errorf("relaxed loops need no private sub-partitions: %v", pp.PrivateOf)
	}
}

func TestSystemsHelper(t *testing.T) {
	results := inferSrc(t, multiReduceSrc)
	plans := Relax(results)
	systems := Systems(plans)
	if len(systems) != 1 || systems[0] != plans[0].Sys {
		t.Error("Systems should extract plan systems")
	}
}

func TestRelaxKeepsOtherConstraints(t *testing.T) {
	// An uncentered read in the same loop must survive relaxation.
	src := `
region R { v: scalar }
region S { w: scalar, x: scalar }
function f : R -> S
function g : R -> S
for i in R {
  S[f(i)].w += R[i].v + S[g(i)].x
}
`
	results := inferSrc(t, src)
	plans := Relax(results)
	if !plans[0].Relaxed {
		t.Fatal("loop should relax")
	}
	if !strings.Contains(plans[0].Sys.String(), "image(P1, g, S)") {
		t.Errorf("read constraint dropped:\n%s", plans[0].Sys)
	}
}
