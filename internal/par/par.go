// Package par provides the bounded worker pool shared by the parallel
// evaluation engine (region partition operators, the sim scaling driver).
// It is a thin stdlib-only layer: a Do(n, fn) fan-out over GOMAXPROCS
// goroutines with deterministic result placement (callers index into
// pre-sized output slices), plus a process-wide sequential switch used to
// debug or to compare parallel and sequential evaluations bit-for-bit.
//
// Sequential mode is entered either programmatically (SetSequential) or
// by setting the AUTOPART_SEQUENTIAL environment variable to any
// non-empty value before the process starts.
package par

import (
	"os"
	"runtime"
	"sync"
	"sync/atomic"
)

var (
	sequential atomic.Bool
	// workers overrides the pool size when > 0; 0 means GOMAXPROCS.
	workers atomic.Int64
)

func init() {
	if os.Getenv("AUTOPART_SEQUENTIAL") != "" {
		sequential.Store(true)
	}
}

// SetSequential switches every subsequent Do call to inline sequential
// execution (true) or back to the worker pool (false). Process-wide.
func SetSequential(v bool) { sequential.Store(v) }

// Sequential reports whether sequential mode is active.
func Sequential() bool { return sequential.Load() }

// SetWorkers overrides the pool size; n <= 0 restores the default
// (GOMAXPROCS). Intended for tests that force the concurrent path on
// single-CPU machines.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers returns the pool size Do will use.
func Workers() int {
	if w := int(workers.Load()); w > 0 {
		return w
	}
	return runtime.GOMAXPROCS(0)
}

// Do runs fn(0), fn(1), ..., fn(n-1), each exactly once. In sequential
// mode (or when the pool has a single worker) the calls run inline in
// index order; otherwise they are distributed over min(n, Workers())
// goroutines. fn must therefore be safe for concurrent invocation with
// distinct indices; deterministic output is achieved by having fn write
// only to the i-th slot of pre-sized slices. A panic in any invocation
// is re-raised on the calling goroutine after all workers stop.
func Do(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if n == 1 || w <= 1 || Sequential() {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					mu.Lock()
					if panicked == nil {
						panicked = r
					}
					mu.Unlock()
				}
			}()
			for {
				i := next.Add(1) - 1
				if i >= int64(n) {
					return
				}
				fn(int(i))
			}
		}()
	}
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
}
