package par

import (
	"sync/atomic"
	"testing"
)

// withWorkers runs fn with the pool size forced to n, restoring the
// default afterwards.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, 7} {
		withWorkers(t, w, func() {
			for _, n := range []int{0, 1, 2, 5, 100} {
				counts := make([]atomic.Int64, n)
				Do(n, func(i int) { counts[i].Add(1) })
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Errorf("workers=%d n=%d: fn(%d) ran %d times", w, n, i, got)
					}
				}
			}
		})
	}
}

func TestDoSequentialRunsInOrder(t *testing.T) {
	SetSequential(true)
	defer SetSequential(false)
	var order []int
	Do(8, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order = %v", order)
		}
	}
	if len(order) != 8 {
		t.Fatalf("len(order) = %d", len(order))
	}
}

func TestDoPropagatesPanic(t *testing.T) {
	withWorkers(t, 4, func() {
		defer func() {
			if r := recover(); r != "boom" {
				t.Fatalf("recovered %v, want boom", r)
			}
		}()
		Do(16, func(i int) {
			if i == 5 {
				panic("boom")
			}
		})
	})
}

func TestWorkersDefault(t *testing.T) {
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
	SetWorkers(-3)
	if Workers() < 1 {
		t.Fatalf("Workers() after negative set = %d", Workers())
	}
}
