package pipeline

import (
	"fmt"

	"autopart/internal/dpl"
	"autopart/internal/infer"
	"autopart/internal/ir"
	"autopart/internal/lang"
)

// Incremental recompilation: a Session whose Config.Incremental is set
// retains the front-half artifacts of its last successful compile —
// per-loop AST, normalized IR, and inference results, keyed by the
// loop's token fingerprint (internal/lang SplitSource) — and diffs each
// new source against them. Clean loops reuse their artifacts wholesale;
// only dirty loops pay parse→check→normalize→infer. The solve pass then
// consumes the merged artifact set, where the shared solver.MemoCache
// already reuses verdicts, so an edit-heavy client pays roughly one
// loop's front half plus a warm solve per recompile.
//
// Reuse is sound because of three invariants:
//   - artifacts are immutable once built (the solver, relaxation, and
//     rewrite passes never mutate inference results or their systems);
//   - a loop's AST/IR depend only on its own tokens plus the header,
//     and any header change invalidates the whole retained state;
//   - a loop's inference output additionally depends on the program-
//     global symbol counter at its position, so a retained Result is
//     reused only when its recorded symbol base matches — guaranteeing
//     the incremental compile assigns byte-identical symbol names.
//
// Retained constraint systems cache dense dpl.Table ids internally, and
// those ids are only meaningful within one table generation; the state
// records the generation it was built under and is discarded wholesale
// if the table has been reclaimed since (Service compiles hold an epoch,
// so the generation cannot move mid-compile).

// cfgKey is the subset of Config that changes compilation semantics; a
// retained state is only reusable under an identical key.
type cfgKey struct {
	relax, private bool
}

func cfgKeyOf(c Config) cfgKey {
	return cfgKey{relax: !c.DisableRelaxation, private: !c.DisablePrivateSubPartitions}
}

// loopArtifact is one loop's retained front-half output.
type loopArtifact struct {
	fp  [2]uint64
	pos int // ordinal in the retained program, for stable claiming
	ast *lang.Loop
	irl *ir.Loop
	inf *infer.Result
	// symBase is the symbol counter when the loop's inference started;
	// symCount is how many symbols it consumed.
	symBase, symCount int
	claimed           bool
}

// IncrState is the retained artifact set of one successful compile.
type IncrState struct {
	gen      uint64 // dpl.Default() generation the artifacts were built under
	cfg      cfgKey
	headerFP [2]uint64
	program  *lang.Program
	loops    []*loopArtifact
	index    map[[2]uint64][]*loopArtifact
}

// usable reports whether the retained state can seed an incremental
// compile of a program with the given header fingerprint and config.
func (st *IncrState) usable(cfg Config, headerFP [2]uint64) bool {
	return st != nil &&
		st.gen == dpl.Default().Generation() &&
		st.cfg == cfgKeyOf(cfg) &&
		st.headerFP == headerFP &&
		st.program != nil
}

func (st *IncrState) resetClaims() {
	for _, a := range st.loops {
		a.claimed = false
	}
}

// claim hands out an unclaimed artifact with the given fingerprint,
// preferring one at the same loop position (symbol bases then line up,
// maximizing inference reuse when a program contains identical loops).
// Each artifact is claimed at most once so duplicate loops map
// one-to-one.
func (st *IncrState) claim(fp [2]uint64, pos int) *loopArtifact {
	var pick *loopArtifact
	for _, a := range st.index[fp] {
		if a.claimed {
			continue
		}
		if a.pos == pos {
			pick = a
			break
		}
		if pick == nil {
			pick = a
		}
	}
	if pick != nil {
		pick.claimed = true
	}
	return pick
}

// symSpan records one loop's symbol consumption during the infer pass.
type symSpan struct {
	base, count int
}

// retain snapshots the session's per-loop artifacts for the next
// compile on this session. Called by the Runner after every successful
// incremental compile; a failed compile leaves the previous retained
// state in place (it still describes the last successful compile, which
// is exactly what the next edit should be diffed against).
func (s *Session) retain() {
	if s.Seg == nil || s.Program == nil || s.Loops == nil || s.Inference == nil {
		s.Incr = nil
		return
	}
	n := len(s.Program.Loops)
	if len(s.Seg.Loops) != n || len(s.Loops) != n || len(s.Inference) != n || len(s.symSpans) != n {
		s.Incr = nil
		return
	}
	st := &IncrState{
		gen:      dpl.Default().Generation(),
		cfg:      cfgKeyOf(s.Config),
		headerFP: s.Seg.HeaderFP,
		program:  s.Program,
		index:    make(map[[2]uint64][]*loopArtifact, n),
	}
	for i := 0; i < n; i++ {
		a := &loopArtifact{
			fp:       s.Seg.LoopFP(i),
			pos:      i,
			ast:      s.Program.Loops[i],
			irl:      s.Loops[i],
			inf:      s.Inference[i],
			symBase:  s.symSpans[i].base,
			symCount: s.symSpans[i].count,
		}
		st.loops = append(st.loops, a)
		st.index[a.fp] = append(st.index[a.fp], a)
	}
	s.Incr = st
}

// claimedAt returns the artifact reused for loop i, nil when dirty.
func (s *Session) claimedAt(i int) *loopArtifact {
	if i < len(s.claimed) {
		return s.claimed[i]
	}
	return nil
}

// runParseIncremental is the parse pass under Config.Incremental:
// segment the source, diff loop fingerprints against the retained
// state, reuse clean loops' ASTs, and reparse only dirty loops (with
// positions identical to a full parse). Any condition that prevents
// diffing — unsegmentable source, no or stale retained state, header
// edits, config or intern-generation changes — falls back to the cold
// full parse, so results and errors are byte-identical to a fresh
// compile in every case.
func runParseIncremental(s *Session) error {
	seg, segErr := lang.SplitSource(s.Source)
	if segErr != nil {
		// Unsegmentable (lexically broken or malformed at top level):
		// the full parser is authoritative for the error, and there is
		// nothing to retain.
		s.incrCold = true
		prog, err := lang.ParseSource(s.Source)
		if err != nil {
			return err
		}
		s.Program = prog
		return nil
	}
	s.Seg = seg

	prev := s.Incr
	if !prev.usable(s.Config, seg.HeaderFP) {
		s.incrCold = true
		prog, err := lang.ParseSource(s.Source)
		if err != nil {
			return err
		}
		s.Program = prog
		s.claimed = make([]*loopArtifact, len(prog.Loops))
		return nil
	}

	prev.resetClaims()
	prog := &lang.Program{
		Regions: prev.program.Regions,
		Funcs:   prev.program.Funcs,
		Externs: prev.program.Externs,
		Asserts: prev.program.Asserts,
	}
	s.claimed = make([]*loopArtifact, len(seg.Loops))
	for i := range seg.Loops {
		sgm := seg.LoopSeg(i)
		if art := prev.claim(sgm.FP, i); art != nil {
			s.claimed[i] = art
			s.incrReusedAST++
			prog.Loops = append(prog.Loops, art.ast)
			continue
		}
		l, err := lang.ParseLoopAt(s.Source[sgm.Start:sgm.End], sgm.Pos)
		if err != nil {
			return err
		}
		prog.Loops = append(prog.Loops, l)
	}
	s.Program = prog
	return nil
}

// runCheckIncremental re-checks only dirty loops. The header is token-
// identical to one that passed Check, so declaration and assert checks
// cannot newly fail; clean loops are likewise guaranteed to pass.
func runCheckIncremental(s *Session) error {
	if s.incrCold || s.claimed == nil {
		return lang.Check(s.Program)
	}
	for i, l := range s.Program.Loops {
		if s.claimedAt(i) != nil {
			continue
		}
		if err := lang.CheckLoop(s.Program, l); err != nil {
			return err
		}
	}
	return nil
}

// runNormalizeIncremental reuses clean loops' IR and normalizes only
// dirty loops, preserving NormalizeProgram's error shape.
func runNormalizeIncremental(s *Session) error {
	loops := make([]*ir.Loop, 0, len(s.Program.Loops))
	for i, l := range s.Program.Loops {
		if art := s.claimedAt(i); art != nil {
			loops = append(loops, art.irl)
			s.incrReusedIR++
			continue
		}
		nl, err := ir.NormalizeLoop(s.Program, l)
		if err != nil {
			return fmt.Errorf("loop %d (for %s in %s): %w", i, l.Var, l.Region, err)
		}
		loops = append(loops, nl)
	}
	s.Loops = loops
	return nil
}

// runInferIncremental walks loops in order, reusing a retained Result
// whenever the loop is clean and the program-global symbol counter
// matches its retained base (so all symbol names match a cold compile),
// and re-running inference otherwise. It records every loop's symbol
// span for the next retention. The external assumption system is cheap
// and order-insensitive, so it is always rebuilt.
func runInferIncremental(s *Session) error {
	inf := infer.New(s.Program)
	results := make([]*infer.Result, len(s.Loops))
	s.symSpans = make([]symSpan, len(s.Loops))
	for i, l := range s.Loops {
		base := inf.SymCounter()
		if art := s.claimedAt(i); art != nil && art.inf != nil && art.symBase == base {
			results[i] = art.inf
			inf.SetSymCounter(base + art.symCount)
			s.symSpans[i] = symSpan{base: base, count: art.symCount}
			s.incrReusedInf++
			continue
		}
		res, err := inf.InferLoop(l)
		if err != nil {
			return fmt.Errorf("loop %d (for %s in %s): %w", i, l.Var, l.Region, err)
		}
		results[i] = res
		s.symSpans[i] = symSpan{base: base, count: inf.SymCounter() - base}
	}
	s.Inference = results
	s.External, s.ExternalSyms = infer.ExternalSystem(s.Program)
	return nil
}
