package pipeline

import (
	"testing"
)

const incrSrc = `
region A { x: scalar, y: scalar }
region B { v: scalar }
for i in A {
  A[i].x = A[i].y + 1
}
for j in B {
  B[j].v = 2
}
`

// compileIncr runs one incremental compile on s and returns the final
// metrics snapshot.
func compileIncr(t *testing.T, s *Session, src string) map[string]int {
	t.Helper()
	s.Reset(src, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatalf("compile: %v", err)
	}
	return s.Metrics()
}

func TestIncrementalFirstCompileIsCold(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m["incr_cold"] != 1 || m["incr_clean_loops"] != 0 {
		t.Errorf("first compile: cold=%d clean=%d, want 1/0", m["incr_cold"], m["incr_clean_loops"])
	}
	if s.Incr == nil {
		t.Fatal("no state retained after successful cold incremental compile")
	}
	if len(s.Incr.loops) != 2 {
		t.Fatalf("retained %d loop artifacts, want 2", len(s.Incr.loops))
	}
}

func TestIncrementalIdenticalSourceReusesEverything(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	m := compileIncr(t, s, incrSrc)
	if m["incr_cold"] != 0 {
		t.Errorf("recompile fell back to cold: %v", m)
	}
	if m["incr_clean_loops"] != 2 || m["incr_dirty_loops"] != 0 {
		t.Errorf("clean/dirty = %d/%d, want 2/0", m["incr_clean_loops"], m["incr_dirty_loops"])
	}
	if m["incr_reused_ir"] != 2 || m["incr_reused_infer"] != 2 {
		t.Errorf("reused ir/infer = %d/%d, want 2/2", m["incr_reused_ir"], m["incr_reused_infer"])
	}
}

func TestIncrementalSingleLoopEditMarksOneDirty(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	edited := incrSrc[:len(incrSrc)-2] + "  B[j].v = 3\n}\n"
	m := compileIncr(t, s, edited)
	if m["incr_cold"] != 0 {
		t.Fatalf("edit fell back to cold: %v", m)
	}
	if m["incr_clean_loops"] != 1 || m["incr_dirty_loops"] != 1 {
		t.Errorf("clean/dirty = %d/%d, want 1/1", m["incr_clean_loops"], m["incr_dirty_loops"])
	}
	// The edited (second) loop re-infers; it did not change its symbol
	// consumption, so the first loop's artifacts all reuse.
	if m["incr_reused_infer"] != 1 {
		t.Errorf("reused_infer = %d, want 1", m["incr_reused_infer"])
	}
}

func TestIncrementalCommentEditIsClean(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	commented := "// harmless banner\n" + incrSrc + "\n// trailing note\n"
	m := compileIncr(t, s, commented)
	if m["incr_cold"] != 0 || m["incr_dirty_loops"] != 0 {
		t.Errorf("comment-only edit: cold=%d dirty=%d, want 0/0", m["incr_cold"], m["incr_dirty_loops"])
	}
}

func TestIncrementalHeaderEditFallsBackCold(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	m := compileIncr(t, s, incrSrc+"\nregion C { w: scalar }\n")
	if m["incr_cold"] != 1 {
		t.Errorf("header edit did not fall back cold: %v", m)
	}
	if s.Incr == nil {
		t.Error("cold fallback should still retain new state")
	}
}

func TestIncrementalConfigChangeFallsBackCold(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	s.Reset(incrSrc, Config{Incremental: true, DisableRelaxation: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m["incr_cold"] != 1 {
		t.Errorf("config change did not fall back cold: %v", m)
	}
}

func TestIncrementalLoopReorderReuses(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	reordered := `
region A { x: scalar, y: scalar }
region B { v: scalar }
for j in B {
  B[j].v = 2
}
for i in A {
  A[i].x = A[i].y + 1
}
`
	m := compileIncr(t, s, reordered)
	if m["incr_cold"] != 0 || m["incr_clean_loops"] != 2 {
		t.Errorf("reorder: cold=%d clean=%d, want 0/2", m["incr_cold"], m["incr_clean_loops"])
	}
	// Reordered loops reuse AST and IR but not inference: each loop's
	// symbol base moved, so symbols must be re-assigned to stay byte-
	// identical to a cold compile. (Both loops here consume the same
	// number of symbols, but reuse keys on the base actually matching.)
	if m["incr_reused_ir"] != 2 {
		t.Errorf("reused_ir = %d, want 2", m["incr_reused_ir"])
	}
}

func TestIncrementalFailedCompileKeepsPriorState(t *testing.T) {
	s := NewSession(incrSrc, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	// A lexically broken edit fails the parse pass; the retained state
	// must survive so the next good compile still diffs incrementally.
	s.Reset(incrSrc+"\nfor k in A { A[k].x = $ }\n", Config{Incremental: true})
	if err := NewRunner().Run(s); err == nil {
		t.Fatal("broken source compiled")
	}
	m := compileIncr(t, s, incrSrc)
	if m["incr_cold"] != 0 || m["incr_clean_loops"] != 2 {
		t.Errorf("after failed compile: cold=%d clean=%d, want 0/2", m["incr_cold"], m["incr_clean_loops"])
	}
}

func TestIncrementalDuplicateLoopsClaimOnce(t *testing.T) {
	dup := `
region A { x: scalar }
for i in A {
  A[i].x = 1
}
for i in A {
  A[i].x = 1
}
`
	s := NewSession(dup, Config{Incremental: true})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	m := compileIncr(t, s, dup)
	if m["incr_clean_loops"] != 2 || m["incr_reused_infer"] != 2 {
		t.Errorf("duplicate loops: clean=%d reused_infer=%d, want 2/2", m["incr_clean_loops"], m["incr_reused_infer"])
	}
	// Dropping one duplicate claims exactly one artifact.
	one := `
region A { x: scalar }
for i in A {
  A[i].x = 1
}
`
	m = compileIncr(t, s, one)
	if m["incr_clean_loops"] != 1 || m["incr_dirty_loops"] != 0 {
		t.Errorf("dropped duplicate: clean=%d dirty=%d, want 1/0", m["incr_clean_loops"], m["incr_dirty_loops"])
	}
}

func TestNonIncrementalMetricsHaveNoIncrKeys(t *testing.T) {
	s := NewSession(incrSrc, Config{})
	if err := NewRunner().Run(s); err != nil {
		t.Fatal(err)
	}
	for k := range s.Metrics() {
		if len(k) >= 5 && k[:5] == "incr_" {
			t.Errorf("non-incremental compile emitted %s", k)
		}
	}
	if s.Incr != nil {
		t.Error("non-incremental compile retained state")
	}
}
