package pipeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// PassEvent is the observation delivered at the end of every pass.
type PassEvent struct {
	// Pass is the pass name; Index its position in the sequence.
	Pass  string
	Index int
	// Wall is the pass's wall-clock time.
	Wall time.Duration
	// Metrics snapshots Session.Metrics() after the pass ran: artifact
	// sizes (loops, constraints, accesses, partitions, launches, ...).
	Metrics map[string]int
	// Err is non-nil when the pass failed.
	Err error
}

// Observer receives pass lifecycle notifications from a Runner.
// Implementations must not mutate the session; they see each pass's
// wall time and the artifact metrics snapshot taken after it ran.
type Observer interface {
	OnPassStart(pass string, index int)
	OnPassEnd(ev PassEvent)
}

// TimingObserver accumulates per-pass wall times. The autopart façade
// derives its API-level Timing breakdown (Table 1's rows) from one of
// these. It is safe to attach one TimingObserver to runners on multiple
// goroutines; accumulation and Duration are mutex-guarded.
type TimingObserver struct {
	mu        sync.Mutex
	durations map[string]time.Duration
}

// NewTimingObserver returns an empty timing accumulator.
func NewTimingObserver() *TimingObserver {
	return &TimingObserver{durations: map[string]time.Duration{}}
}

// OnPassStart implements Observer.
func (t *TimingObserver) OnPassStart(string, int) {}

// OnPassEnd implements Observer.
func (t *TimingObserver) OnPassEnd(ev PassEvent) {
	t.mu.Lock()
	t.durations[ev.Pass] += ev.Wall
	t.mu.Unlock()
}

// Duration returns the accumulated wall time of one pass.
func (t *TimingObserver) Duration(pass string) time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.durations[pass]
}

// TraceObserver writes one JSON line per completed pass: pass name,
// index, wall time in microseconds, the metrics snapshot, and the error
// (if any). Lines are deterministic apart from the timing field —
// encoding/json marshals the metrics map with sorted keys.
//
// Writes are line-atomic even when concurrent Sessions trace to the
// same io.Writer (a Service points every compile at one trace file):
// the record is marshaled outside the lock and emitted as a single
// guarded Write, so interleaved compiles can reorder whole lines but
// never splice bytes mid-line.
type TraceObserver struct {
	W io.Writer
}

// traceMu serializes trace-line emission process-wide. Distinct
// TraceObserver values routinely wrap the same underlying writer
// (os.Stderr, a shared trace file), so the guard must span instances.
var traceMu sync.Mutex

// traceRecord is the JSON-lines schema of one pass-end event.
type traceRecord struct {
	Pass    string         `json:"pass"`
	Index   int            `json:"index"`
	WallUS  int64          `json:"wall_us"`
	Metrics map[string]int `json:"metrics"`
	Error   string         `json:"error,omitempty"`
}

// OnPassStart implements Observer.
func (t TraceObserver) OnPassStart(string, int) {}

// OnPassEnd implements Observer.
func (t TraceObserver) OnPassEnd(ev PassEvent) {
	rec := traceRecord{
		Pass:    ev.Pass,
		Index:   ev.Index,
		WallUS:  ev.Wall.Microseconds(),
		Metrics: ev.Metrics,
	}
	if ev.Err != nil {
		rec.Error = ev.Err.Error()
	}
	line, err := json.Marshal(rec)
	if err != nil {
		line = []byte(fmt.Sprintf(`{"pass":%q,"error":"trace: %s"}`, ev.Pass, err))
	}
	traceMu.Lock()
	t.W.Write(append(line, '\n'))
	traceMu.Unlock()
}
