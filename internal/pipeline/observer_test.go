package pipeline

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// chunkWriter makes interleaving visible: it writes its input one byte
// at a time, so any two unsynchronized writers splice each other's
// bytes. With the trace mutex in place every Write arrives whole.
type chunkWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *chunkWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, b := range p {
		w.buf.WriteByte(b)
		// Yield between bytes to give interleaving every chance to
		// manifest if the caller isn't holding the trace lock.
		if b == ',' {
			w.mu.Unlock()
			w.mu.Lock()
		}
	}
	return len(p), nil
}

// TestTraceObserverLineAtomic runs many concurrent pass streams through
// TraceObserver values sharing one writer and requires every emitted
// line to parse as a standalone JSON trace record. Before the trace
// mutex, concurrent Sessions tracing to one file spliced bytes mid-line.
func TestTraceObserverLineAtomic(t *testing.T) {
	w := &chunkWriter{}
	const goroutines = 8
	const events = 40
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			obs := TraceObserver{W: w} // distinct observer, shared writer
			for i := 0; i < events; i++ {
				obs.OnPassEnd(PassEvent{
					Pass:  fmt.Sprintf("pass%d", g),
					Index: i,
					Wall:  time.Duration(i) * time.Microsecond,
					Metrics: map[string]int{
						"loops": g, "constraints": i, "launches": g * i,
					},
				})
			}
		}()
	}
	wg.Wait()

	lines := 0
	sc := bufio.NewScanner(bytes.NewReader(w.buf.Bytes()))
	for sc.Scan() {
		lines++
		var rec struct {
			Pass    string         `json:"pass"`
			Metrics map[string]int `json:"metrics"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("line %d is not valid JSON (interleaved write): %q", lines, sc.Text())
		}
		if !strings.HasPrefix(rec.Pass, "pass") {
			t.Fatalf("line %d has mangled pass name %q", lines, rec.Pass)
		}
	}
	if lines != goroutines*events {
		t.Errorf("got %d trace lines, want %d", lines, goroutines*events)
	}
}

// TestTimingObserverConcurrent accumulates from several goroutines into
// one TimingObserver; under -race this pins the per-instance mutex.
func TestTimingObserverConcurrent(t *testing.T) {
	obs := NewTimingObserver()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				obs.OnPassEnd(PassEvent{Pass: "solve", Wall: time.Microsecond})
			}
		}()
	}
	wg.Wait()
	if got := obs.Duration("solve"); got != 800*time.Microsecond {
		t.Errorf("accumulated %v, want 800µs", got)
	}
}

// TestSessionReset checks the pooling contract: a reset session carries
// nothing over from its previous compile.
func TestSessionReset(t *testing.T) {
	s := NewSession(okSrc, Config{})
	if err := (&Runner{Passes: Default(), Observers: nil}).Run(s); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if s.Program == nil {
		t.Fatal("compile produced no program")
	}
	s.Reset("region S { v: scalar }", Config{DisableRelaxation: true})
	if s.Program != nil || s.Loops != nil || s.Solution != nil || s.Parallel != nil || len(s.Diags) != 0 {
		t.Error("Reset left artifacts behind")
	}
	if s.Source != "region S { v: scalar }" || !s.Config.DisableRelaxation || s.File != "<input>" {
		t.Errorf("Reset did not install new source/config: %+v", s.Config)
	}
}

var _ io.Writer = (*chunkWriter)(nil)
